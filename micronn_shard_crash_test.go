package micronn

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"
	"time"

	"micronn/internal/storage"
)

// shardCrashEnv drives the randomized-interleaving crash battery: a seeded
// random schedule of upserts, deletes and maintenance runs against a
// sharded DB while WAL failpoints trip at random frame offsets on random
// shards. Every injected crash closes all shards without checkpointing (as
// a power cut would), reopens them through recovery, reconciles the mirror
// against what actually committed, and re-checks the full invariant
// battery — per-shard index invariants plus the cross-shard placement and
// manifest topology checks.
type shardCrashEnv struct {
	t    *testing.T
	rng  *rand.Rand
	dir  string
	opts Options
	sdb  *ShardedDB
	// live mirrors the expected committed state; after an injected failure
	// the touched ids are reconciled against the recovered database.
	live   map[string][]float32
	nextID int
}

func newShardCrashEnv(t *testing.T, rng *rand.Rand, opts Options) *shardCrashEnv {
	e := &shardCrashEnv{
		t: t, rng: rng,
		dir:  filepath.Join(t.TempDir(), "crash.d"),
		opts: opts,
		live: make(map[string][]float32),
	}
	sdb, err := OpenSharded(e.dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.sdb = sdb
	t.Cleanup(func() { e.sdb.Close() })
	return e
}

// crash closes every shard without checkpointing and reopens the whole
// sharded database through recovery.
func (e *shardCrashEnv) crash() {
	e.t.Helper()
	for _, sh := range e.sdb.shards {
		sh.stopMaintainer()
		if err := sh.store.CloseWithoutCheckpoint(); err != nil {
			e.t.Fatal(err)
		}
	}
	reopened, err := OpenSharded(e.dir, e.opts)
	if err != nil {
		e.t.Fatalf("reopen after crash: %v", err)
	}
	e.sdb = reopened
}

func (e *shardCrashEnv) newVec() []float32 {
	v := make([]float32, e.opts.Dim)
	for j := range v {
		v[j] = float32(e.rng.NormFloat64())
	}
	return v
}

// armRandomFailpoint arms a one-shot torn-frame injection on one random
// shard at a random frame countdown, returning the armed shard.
func (e *shardCrashEnv) armRandomFailpoint() int {
	shard := e.rng.Intn(e.sdb.Shards())
	e.sdb.Shard(shard).InternalStore().SetWALFailpoint(e.rng.Intn(40) + 1)
	return shard
}

func (e *shardCrashEnv) disarmAll() {
	for _, sh := range e.sdb.shards {
		sh.store.SetWALFailpoint(-1)
	}
}

// opUpsert runs one randomized upsert batch (new ids mixed with re-upserts
// of live ids) and returns the items and the error.
func (e *shardCrashEnv) opUpsert() ([]Item, error) {
	n := e.rng.Intn(25) + 5
	items := make([]Item, 0, n)
	ids := e.liveIDs()
	for i := 0; i < n; i++ {
		var id string
		if len(ids) > 0 && e.rng.Intn(3) == 0 {
			id = ids[e.rng.Intn(len(ids))] // re-upsert moves an id
		} else {
			id = fmt.Sprintf("c-%05d", e.nextID)
			e.nextID++
		}
		items = append(items, Item{ID: id, Vector: e.newVec()})
	}
	err := e.sdb.UpsertBatch(items)
	if err == nil {
		for _, it := range items {
			e.live[it.ID] = it.Vector
		}
	}
	return items, err
}

// opDelete removes a random handful of live ids.
func (e *shardCrashEnv) opDelete() ([]string, error) {
	ids := e.liveIDs()
	if len(ids) == 0 {
		return nil, nil
	}
	n := e.rng.Intn(10) + 1
	if n > len(ids) {
		n = len(ids)
	}
	pick := make([]string, n)
	for i := range pick {
		pick[i] = ids[e.rng.Intn(len(ids))]
	}
	err := e.sdb.DeleteBatch(pick)
	if err == nil {
		for _, id := range pick {
			delete(e.live, id)
		}
	}
	return pick, err
}

func (e *shardCrashEnv) liveIDs() []string {
	ids := make([]string, 0, len(e.live))
	for id := range e.live {
		ids = append(ids, id)
	}
	// Map order is random but not seeded; sort for schedule determinism.
	sort.Strings(ids)
	return ids
}

// reconcileUpsert resolves what an injected-failure upsert batch actually
// committed. Sub-batches are per-shard transactions, so within one shard
// the batch must be all-or-nothing; the mirror adopts whichever outcome the
// recovered database shows.
func (e *shardCrashEnv) reconcileUpsert(items []Item) {
	e.t.Helper()
	byShard := make(map[int][]Item)
	for _, it := range items {
		s := e.sdb.shardOf(it.ID)
		byShard[s] = append(byShard[s], it)
	}
	for shard, group := range byShard {
		applied := 0
		for _, it := range group {
			got, err := e.sdb.Get(it.ID)
			switch {
			case err == nil && vecEqual(got.Vector, it.Vector):
				applied++
				e.live[it.ID] = it.Vector
			case err == nil:
				// Old value survived (or a later re-upsert in the same batch
				// targeted this id; the last write in the txn wins, which the
				// all-or-nothing check below tolerates only for duplicates).
			case errors.Is(err, ErrNotFound):
				delete(e.live, it.ID)
			default:
				e.t.Fatalf("reconcile Get(%q): %v", it.ID, err)
			}
		}
		if applied != 0 && applied != len(group) && !hasDuplicateIDs(group) {
			e.t.Fatalf("shard %d sub-batch partially applied: %d of %d items (per-shard atomicity broken)", shard, applied, len(group))
		}
	}
}

func hasDuplicateIDs(items []Item) bool {
	seen := make(map[string]bool, len(items))
	for _, it := range items {
		if seen[it.ID] {
			return true
		}
		seen[it.ID] = true
	}
	return false
}

// reconcileDelete resolves an injected-failure delete batch the same way.
func (e *shardCrashEnv) reconcileDelete(ids []string) {
	e.t.Helper()
	for _, id := range ids {
		_, err := e.sdb.Get(id)
		switch {
		case err == nil:
			// Delete did not commit; the mirror keeps its value.
		case errors.Is(err, ErrNotFound):
			delete(e.live, id)
		default:
			e.t.Fatalf("reconcile Get(%q): %v", id, err)
		}
	}
}

func vecEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verify runs the full sharded invariant battery plus mirror count, sample
// lookups and a working search.
func (e *shardCrashEnv) verify(step string) {
	e.t.Helper()
	if err := e.sdb.CheckInvariants(); err != nil {
		e.t.Fatalf("%s: %v", step, err)
	}
	st, err := e.sdb.Stats()
	if err != nil {
		e.t.Fatal(err)
	}
	if st.NumVectors != int64(len(e.live)) {
		e.t.Fatalf("%s: NumVectors = %d, mirror holds %d", step, st.NumVectors, len(e.live))
	}
	checked := 0
	for id, want := range e.live {
		if checked >= 10 {
			break
		}
		checked++
		got, err := e.sdb.Get(id)
		if err != nil {
			e.t.Fatalf("%s: Get(%q): %v", step, id, err)
		}
		if !vecEqual(got.Vector, want) {
			e.t.Fatalf("%s: Get(%q) returned a different vector", step, id)
		}
	}
	if len(e.live) > 0 {
		resp, err := e.sdb.Search(SearchRequest{Vector: e.newVec(), K: 5, NProbe: 4})
		if err != nil {
			e.t.Fatalf("%s: search: %v", step, err)
		}
		if len(resp.Results) == 0 {
			e.t.Fatalf("%s: search returned nothing over %d vectors", step, len(e.live))
		}
	}
}

// TestShardedCrashRandomInterleavings extends the PR 2 crash battery with
// seeded random schedules over the sharded DB: upsert/delete/maintain ops
// interleave while WAL failpoints trip at random frame offsets on random
// shards. Every injection crashes and recovers all shards, reconciles the
// expected state (asserting per-shard sub-batch atomicity), and re-runs
// ivf.CheckInvariants on every shard plus the cross-shard checks (no id in
// two shards, every id on its hash-designated shard, manifest topology
// matching the directories). The seed is logged for reproduction; override
// it with MICRONN_CRASH_SEED.
func TestShardedCrashRandomInterleavings(t *testing.T) {
	skipIfEphemeralBackend(t)
	baseSeed := time.Now().UnixNano()
	if s := os.Getenv("MICRONN_CRASH_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad MICRONN_CRASH_SEED %q: %v", s, err)
		}
		baseSeed = v
	}
	for _, qt := range []Quantization{QuantNone, QuantSQ8, QuantSQ4} {
		t.Run(qt.String(), func(t *testing.T) {
			seed := baseSeed + int64(qt)
			t.Logf("schedule seed: %d (rerun with MICRONN_CRASH_SEED=%d)", seed, baseSeed)
			rng := rand.New(rand.NewSource(seed))
			e := newShardCrashEnv(t, rng, Options{
				Dim: 8, Shards: 3, TargetPartitionSize: 20, Seed: 17,
				Quantization: qt,
			})

			// Bootstrap and build so maintenance has splits/merges to do.
			if _, err := e.opUpsert(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if _, err := e.opUpsert(); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.sdb.Rebuild(); err != nil {
				t.Fatal(err)
			}
			e.verify("bootstrap")

			ops := 60
			if testing.Short() {
				ops = 25
			}
			injected := 0
			for i := 0; i < ops; i++ {
				armed := rng.Intn(2) == 0
				if armed {
					e.armRandomFailpoint()
				}
				var err error
				var upserted []Item
				var deleted []string
				var op string
				switch rng.Intn(4) {
				case 0, 1:
					op = "upsert"
					upserted, err = e.opUpsert()
				case 2:
					op = "delete"
					deleted, err = e.opDelete()
				default:
					op = "maintain"
					_, err = e.sdb.Maintain()
				}
				e.disarmAll()
				switch {
				case err == nil:
				case errors.Is(err, storage.ErrInjected):
					injected++
					e.crash()
					// Maintenance never changes the logical content; write
					// batches are reconciled per shard.
					if op == "upsert" {
						e.reconcileUpsert(upserted)
					} else if op == "delete" {
						e.reconcileDelete(deleted)
					}
					e.verify(fmt.Sprintf("op %d (%s) post-crash", i, op))
				default:
					t.Fatalf("op %d (%s): %v", i, op, err)
				}
				if i%10 == 9 {
					e.verify(fmt.Sprintf("op %d checkpoint", i))
				}
			}

			// A schedule of small ops can finish without tripping any
			// failpoint; force one so every run exercises at least one
			// crash-recover-verify cycle (hair-trigger countdown, large
			// batches).
			for attempt := 0; injected == 0 && attempt < 20; attempt++ {
				e.sdb.Shard(rng.Intn(e.sdb.Shards())).InternalStore().SetWALFailpoint(1)
				upserted, err := e.opUpsert()
				e.disarmAll()
				if errors.Is(err, storage.ErrInjected) {
					injected++
					e.crash()
					e.reconcileUpsert(upserted)
					e.verify("forced-injection post-crash")
				} else if err != nil {
					t.Fatal(err)
				}
			}

			// The interrupted maintenance backlog must drain cleanly.
			if _, err := e.sdb.Maintain(); err != nil {
				t.Fatal(err)
			}
			e.verify("final")
			if injected == 0 {
				t.Error("no failpoint fired; the battery exercised nothing")
			}
		})
	}
}
