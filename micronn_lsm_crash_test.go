package micronn

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"micronn/internal/storage"
)

// crashLSM simulates a power cut on an LSM-ingest database: the committer
// is drained so every in-flight writer holds a definitive answer, then the
// store is dropped without a checkpoint — recovery must come entirely from
// pages + WAL.
func crashLSM(t *testing.T, db *DB) {
	t.Helper()
	db.closed.Store(true)
	db.ing.shutdown()
	db.stopMaintainer()
	if err := db.store.CloseWithoutCheckpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestLSMGroupCommitCrash kills the WAL mid-group-commit at a sweep of
// frame offsets while concurrent writers are being batched into shared
// transactions. The contract under test: a writer that got nil is durable
// across the crash, a writer that got an error left no trace, and a
// multi-item batch is all-or-nothing — never torn down the middle.
func TestLSMGroupCommitCrash(t *testing.T) {
	opts := Options{
		Dim: 8, Seed: 1,
		LSMIngest:        true,
		MemtableMaxItems: 1 << 20, // no seal txns during the failpoint window
	}
	sawFailure := false
	for n := 1; n <= 8; n++ {
		t.Run(fmt.Sprintf("fail%d", n), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "gc.mnn")
			db, err := Open(path, opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(n)))
			for i := 0; i < 4; i++ {
				if err := db.Upsert(Item{ID: fmt.Sprintf("seed%d", i), Vector: lsmVec(rng, 8)}); err != nil {
					t.Fatal(err)
				}
			}

			db.store.SetWALFailpoint(n)

			// 7 single-item writers plus one 3-item batch, all racing into
			// the committer. Per-writer vectors are derived from the id so
			// the reopened database can be checked without shared state.
			const singles = 7
			var wg sync.WaitGroup
			errs := make([]error, singles+1)
			for w := 0; w < singles; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					id := fmt.Sprintf("s%d", w)
					errs[w] = db.Upsert(Item{ID: id, Vector: idVec(id)})
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				batch := make([]Item, 3)
				for i := range batch {
					id := fmt.Sprintf("b%d", i)
					batch[i] = Item{ID: id, Vector: idVec(id)}
				}
				errs[singles] = db.UpsertBatch(batch)
			}()
			wg.Wait()
			db.store.SetWALFailpoint(-1)

			crashLSM(t, db)

			db2, err := Open(path, opts)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer db2.Close()
			checkSingleInvariants(t, db2)

			for i := 0; i < 4; i++ {
				if _, err := db2.Get(fmt.Sprintf("seed%d", i)); err != nil {
					t.Fatalf("pre-failpoint seed%d lost: %v", i, err)
				}
			}
			for w := 0; w < singles; w++ {
				id := fmt.Sprintf("s%d", w)
				assertDurability(t, db2, id, errs[w])
				if errs[w] != nil {
					sawFailure = true
				}
			}
			// The batch is one op in one group txn: every row or none.
			for i := 0; i < 3; i++ {
				assertDurability(t, db2, fmt.Sprintf("b%d", i), errs[singles])
			}
			if errs[singles] != nil {
				sawFailure = true
			}
		})
	}
	if !sawFailure {
		t.Fatal("failpoint sweep never injected a failure — battery exercised nothing")
	}
}

// assertDurability checks the group-commit contract for one writer after a
// crash-reopen: nil error means the row survived, an error means it never
// existed.
func assertDurability(t *testing.T, db *DB, id string, werr error) {
	t.Helper()
	item, err := db.Get(id)
	if werr == nil {
		if err != nil {
			t.Fatalf("writer of %s got nil but row is gone after reopen: %v", id, err)
		}
		want := idVec(id)
		for d := range want {
			if item.Vector[d] != want[d] {
				t.Fatalf("row %s survived with wrong vector at dim %d", id, d)
			}
		}
		return
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("writer of %s got %v but row state after reopen is (item=%v, err=%v) — torn commit", id, werr, item, err)
	}
}

// idVec derives a deterministic vector from an id, so crash tests can
// verify content without carrying state across the reopen.
func idVec(id string) []float32 {
	var h int64
	for _, c := range id {
		h = h*131 + int64(c)
	}
	return lsmVec(rand.New(rand.NewSource(h)), 8)
}

// TestLSMSealCrash kills the WAL mid-run-flush: the delta is sealed into a
// sorted run in its own transaction, and a crash inside that transaction
// must leave either the full delta or the full run — the 30 rows are
// always all present, never split or duplicated across a torn seal.
func TestLSMSealCrash(t *testing.T) {
	opts := Options{
		Dim: 8, Seed: 2,
		LSMIngest:        true,
		MemtableMaxItems: 1 << 20, // seal manually, under the failpoint
	}
	const rows = 30
	for n := 1; n <= 10; n++ {
		t.Run(fmt.Sprintf("fail%d", n), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "seal.mnn")
			db, err := Open(path, opts)
			if err != nil {
				t.Fatal(err)
			}
			batch := make([]Item, rows)
			for i := range batch {
				id := fmt.Sprintf("r%d", i)
				batch[i] = Item{ID: id, Vector: idVec(id)}
			}
			if err := db.UpsertBatch(batch); err != nil {
				t.Fatal(err)
			}

			db.store.SetWALFailpoint(n)
			sealErr := db.store.Update(func(wt *storage.WriteTxn) error {
				_, e := db.ix.SealDelta(wt)
				return e
			})
			db.store.SetWALFailpoint(-1)

			crashLSM(t, db)

			db2, err := Open(path, opts)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer db2.Close()
			checkSingleInvariants(t, db2)

			st, err := db2.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.NumVectors != rows {
				t.Fatalf("NumVectors = %d after crash, want %d (sealErr=%v)", st.NumVectors, rows, sealErr)
			}
			switch {
			case st.DeltaCount == rows && st.Ingest.RunRows == 0:
				// Seal never committed: delta intact.
			case st.DeltaCount == 0 && st.Ingest.RunRows == rows:
				// Seal committed atomically: run holds everything.
			default:
				t.Fatalf("torn seal: delta=%d runRows=%d (sealErr=%v)", st.DeltaCount, st.Ingest.RunRows, sealErr)
			}
			for i := 0; i < rows; i++ {
				id := fmt.Sprintf("r%d", i)
				if _, err := db2.Get(id); err != nil {
					t.Fatalf("row %s unreachable after seal crash: %v", id, err)
				}
			}
			// The surviving state must also still be searchable and
			// maintainable: drain everything into partitions.
			if _, err := db2.Rebuild(); err != nil {
				t.Fatal(err)
			}
			resp, err := db2.Search(SearchRequest{Vector: idVec("r7"), K: 1, Exact: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != 1 || resp.Results[0].ID != "r7" {
				t.Fatalf("post-recovery search returned %+v", resp.Results)
			}
		})
	}
}

// TestLSMCompactRunsCrash kills the WAL mid-multi-run-compaction. Three
// sealed runs (plus tombstones and a delta shadow over run rows) are merged
// by one CompactRuns transaction under a failpoint sweep; after the crash
// and reopen every source run must be either fully folded into the
// partitions or fully intact — the merge is a single transaction, so a torn
// state (some runs gone, some left) is a bug. Recovered state must pass the
// invariant battery (which audits the per-run zone metadata) and answer
// exact searches with the newest-wins contract preserved.
func TestLSMCompactRunsCrash(t *testing.T) {
	opts := Options{
		Dim: 8, Seed: 3,
		LSMIngest:        true,
		MemtableMaxItems: 1 << 20, // seal manually, compact under the failpoint
	}
	const base = 48
	const perRun = 10
	sawFailure := false
	for n := 1; n <= 10; n++ {
		t.Run(fmt.Sprintf("fail%d", n), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "compact.mnn")
			db, err := Open(path, opts)
			if err != nil {
				t.Fatal(err)
			}
			batch := make([]Item, base)
			for i := range batch {
				id := fmt.Sprintf("base%d", i)
				batch[i] = Item{ID: id, Vector: idVec(id)}
			}
			if err := db.UpsertBatch(batch); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Rebuild(); err != nil {
				t.Fatal(err)
			}

			// Three sealed runs with ids 1, 2, 3 (fresh store, ids are
			// assigned sequentially from 1).
			for s := 0; s < 3; s++ {
				runBatch := make([]Item, perRun)
				for i := range runBatch {
					id := fmt.Sprintf("run%d_%d", s, i)
					runBatch[i] = Item{ID: id, Vector: idVec(id)}
				}
				if err := db.UpsertBatch(runBatch); err != nil {
					t.Fatal(err)
				}
				if err := db.store.Update(func(wt *storage.WriteTxn) error {
					sealed, e := db.ix.SealDelta(wt)
					if e == nil && sealed != perRun {
						e = fmt.Errorf("sealed %d rows, want %d", sealed, perRun)
					}
					return e
				}); err != nil {
					t.Fatal(err)
				}
			}
			// Tombstones over run-resident rows plus a delta shadow: the
			// compaction must purge the dead rows and must not disturb the
			// newer delta version.
			if err := db.Delete("run0_0"); err != nil {
				t.Fatal(err)
			}
			if err := db.Delete("run1_5"); err != nil {
				t.Fatal(err)
			}
			shadow := idVec("run2_3-v2")
			if err := db.Upsert(Item{ID: "run2_3", Vector: shadow}); err != nil {
				t.Fatal(err)
			}

			db.store.SetWALFailpoint(n)
			compactErr := db.store.Update(func(wt *storage.WriteTxn) error {
				_, e := db.ix.CompactRuns(wt, []int64{1, 2, 3})
				return e
			})
			db.store.SetWALFailpoint(-1)
			if compactErr != nil {
				sawFailure = true
			}

			crashLSM(t, db)

			db2, err := Open(path, opts)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer db2.Close()
			checkSingleInvariants(t, db2)

			st, err := db2.Stats()
			if err != nil {
				t.Fatal(err)
			}
			const live = base + 3*perRun - 2
			if st.NumVectors != live {
				t.Fatalf("NumVectors = %d after crash, want %d (compactErr=%v)", st.NumVectors, live, compactErr)
			}
			// Two deletes and one shadow upsert each killed a run row, so
			// the intact runs hold 3*perRun-3 live rows.
			switch {
			case st.Ingest.RunCount == 3 && st.Ingest.RunRows == 3*perRun-3:
				// Compaction never committed: every run fully intact.
			case st.Ingest.RunCount == 0 && st.Ingest.RunRows == 0:
				// Compaction committed atomically: every run fully folded.
			default:
				t.Fatalf("torn compaction: runs=%d runRows=%d (compactErr=%v)",
					st.Ingest.RunCount, st.Ingest.RunRows, compactErr)
			}

			for i := 0; i < base; i++ {
				if _, err := db2.Get(fmt.Sprintf("base%d", i)); err != nil {
					t.Fatalf("base%d lost: %v", i, err)
				}
			}
			for s := 0; s < 3; s++ {
				for i := 0; i < perRun; i++ {
					id := fmt.Sprintf("run%d_%d", s, i)
					item, err := db2.Get(id)
					switch id {
					case "run0_0", "run1_5":
						if !errors.Is(err, ErrNotFound) {
							t.Fatalf("deleted %s resurfaced: item=%v err=%v", id, item, err)
						}
					case "run2_3":
						if err != nil {
							t.Fatalf("shadowed %s lost: %v", id, err)
						}
						for d := range shadow {
							if item.Vector[d] != shadow[d] {
								t.Fatalf("%s lost its newest version at dim %d", id, d)
							}
						}
					default:
						if err != nil {
							t.Fatalf("run row %s unreachable: %v", id, err)
						}
					}
				}
			}
			// The surviving state must stay maintainable and searchable.
			if _, err := db2.Rebuild(); err != nil {
				t.Fatal(err)
			}
			resp, err := db2.Search(SearchRequest{Vector: idVec("run1_7"), K: 1, Exact: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != 1 || resp.Results[0].ID != "run1_7" {
				t.Fatalf("post-recovery search returned %+v", resp.Results)
			}
		})
	}
	if !sawFailure {
		t.Fatal("failpoint sweep never injected a failure — battery exercised nothing")
	}
}
