// Photo-search reproduces the paper's Example 1 (interactive semantic
// search): a photo library with CLIP-style embeddings and structured
// attributes, hybrid queries combining similarity with location and date
// filters, and live inserts/deletes that are visible immediately through
// the delta-store.
//
//	go run ./examples/photo-search
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"micronn"
)

const (
	dim       = 128
	numPhotos = 20000
)

// locations with a skewed distribution: the user lives in Seattle, visited
// New York once (the paper's selectivity running example).
var locations = []struct {
	name   string
	weight int
}{
	{"Seattle", 90},
	{"Portland", 6},
	{"NewYork", 1},
	{"Tokyo", 3},
}

func pickLocation(rng *rand.Rand) string {
	r := rng.Intn(100)
	acc := 0
	for _, l := range locations {
		acc += l.weight
		if r < acc {
			return l.name
		}
	}
	return locations[0].name
}

// embed produces a synthetic "CLIP embedding": photos of the same scene
// type cluster together.
func embed(rng *rand.Rand, scene int) []float32 {
	v := make([]float32, dim)
	sceneRng := rand.New(rand.NewSource(int64(scene)))
	for j := range v {
		v[j] = float32(sceneRng.NormFloat64()*4 + rng.NormFloat64())
	}
	return v
}

func main() {
	dir, err := os.MkdirTemp("", "micronn-photos-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := micronn.Open(filepath.Join(dir, "photos.mnn"), micronn.Options{
		Dim:    dim,
		Metric: micronn.Cosine,
		Device: micronn.DeviceSmall, // a phone-like memory budget
		Attributes: []micronn.AttributeDef{
			{Name: "location", Type: micronn.AttrText, Indexed: true},
			{Name: "taken_at", Type: micronn.AttrInt, Indexed: true},
			{Name: "caption", Type: micronn.AttrText, FullText: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Import the photo library.
	rng := rand.New(rand.NewSource(7))
	base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	captions := []string{"black cat playing with yarn", "sunset over the water",
		"birthday cake with candles", "mountain hiking trail", "coffee on the desk"}
	items := make([]micronn.Item, 0, numPhotos)
	for i := 0; i < numPhotos; i++ {
		scene := rng.Intn(len(captions))
		items = append(items, micronn.Item{
			ID:     fmt.Sprintf("IMG_%05d", i),
			Vector: embed(rng, scene),
			Attributes: map[string]any{
				"location": pickLocation(rng),
				"taken_at": base + int64(i)*3600,
				"caption":  captions[scene],
			},
		})
	}
	start := time.Now()
	for lo := 0; lo < len(items); lo += 2000 {
		hi := lo + 2000
		if hi > len(items) {
			hi = len(items)
		}
		if err := db.UpsertBatch(items[lo:hi]); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := db.Rebuild(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d photos and built the index in %v\n\n",
		numPhotos, time.Since(start).Round(time.Millisecond))

	query := items[41].Vector // "photos like this one"

	// 1. Plain semantic search.
	run := func(label string, req micronn.SearchRequest) {
		start := time.Now()
		resp, err := db.Search(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%v, plan=%v):\n", label, time.Since(start).Round(time.Microsecond), resp.Plan.Plan)
		for i, r := range resp.Results {
			if i == 3 {
				fmt.Printf("   ... %d more\n", len(resp.Results)-3)
				break
			}
			item, err := db.Get(r.ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %-10s %-9s %q\n", r.ID, item.Attributes["location"], item.Attributes["caption"])
		}
		fmt.Println()
	}

	run("similar photos", micronn.SearchRequest{Vector: query, K: 10, NProbe: 8})

	// 2. Hybrid: the paper's "high selectivity" case — the one trip to
	// New York. The optimizer picks the pre-filter plan (100% recall).
	run("similar photos taken in NewYork", micronn.SearchRequest{
		Vector: query, K: 10, NProbe: 8,
		Filters: []micronn.Filter{micronn.Eq("location", "NewYork")},
	})

	// 3. Hybrid: "low selectivity" — most photos are from Seattle, so the
	// optimizer post-filters during the IVF scan.
	run("similar photos taken in Seattle", micronn.SearchRequest{
		Vector: query, K: 10, NProbe: 8,
		Filters: []micronn.Filter{micronn.Eq("location", "Seattle")},
	})

	// 4. Hybrid with a date range and full-text match.
	weekAgo := base + int64(numPhotos-168)*3600
	run("recent photos matching 'cat yarn'", micronn.SearchRequest{
		Vector: query, K: 10, NProbe: 8,
		Filters: []micronn.Filter{
			micronn.Match("caption", "cat yarn"),
			micronn.Gt("taken_at", weekAgo),
		},
	})

	// 5. Live updates: a new photo appears in results immediately (it
	// sits in the delta-store, which every query scans), and a deleted
	// photo disappears immediately.
	newPhoto := micronn.Item{
		ID:     "IMG_NEW",
		Vector: query, // identical embedding: must rank first
		Attributes: map[string]any{
			"location": "Seattle", "taken_at": base, "caption": "new photo",
		},
	}
	if err := db.Upsert(newPhoto); err != nil {
		log.Fatal(err)
	}
	resp, err := db.Search(micronn.SearchRequest{Vector: query, K: 1, NProbe: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after insert, top hit: %s (live, unindexed)\n", resp.Results[0].ID)

	if err := db.Delete("IMG_NEW"); err != nil {
		log.Fatal(err)
	}
	resp, err = db.Search(micronn.SearchRequest{Vector: query, K: 1, NProbe: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after delete, top hit: %s\n\n", resp.Results[0].ID)

	// 6. Background maintenance folds the delta-store into the index.
	rep, err := db.Maintain()
	if err != nil {
		log.Fatal(err)
	}
	st, _ := db.Stats()
	fmt.Printf("maintenance: %s; %d vectors, %d partitions, cache %.1f MiB\n",
		rep.Action, st.NumVectors, st.NumPartitions, float64(st.CacheBytes)/(1<<20))
}
