// Visual-analytics reproduces the paper's Example 2: a batch workload that
// processes many target assets to build topically-related groups, using
// BatchSearch's multi-query optimization to amortize partition scans.
//
//	go run ./examples/visual-analytics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"micronn"
)

const (
	dim    = 96
	assets = 30000
	topics = 40
)

func main() {
	dir, err := os.MkdirTemp("", "micronn-analytics-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := micronn.Open(filepath.Join(dir, "assets.mnn"), micronn.Options{
		Dim:    dim,
		Metric: micronn.Cosine,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest an asset collection with latent topics.
	rng := rand.New(rand.NewSource(3))
	topicCenters := make([][]float32, topics)
	for t := range topicCenters {
		c := make([]float32, dim)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 5)
		}
		topicCenters[t] = c
	}
	vectors := make([][]float32, assets)
	trueTopic := make([]int, assets)
	items := make([]micronn.Item, assets)
	for i := range items {
		t := rng.Intn(topics)
		trueTopic[i] = t
		v := make([]float32, dim)
		for j := range v {
			v[j] = topicCenters[t][j] + float32(rng.NormFloat64())
		}
		vectors[i] = v
		items[i] = micronn.Item{ID: fmt.Sprintf("asset-%05d", i), Vector: v}
	}
	for lo := 0; lo < assets; lo += 2000 {
		hi := lo + 2000
		if hi > assets {
			hi = assets
		}
		if err := db.UpsertBatch(items[lo:hi]); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := db.Rebuild(); err != nil {
		log.Fatal(err)
	}

	// The analytics job: for a batch of target assets, find their
	// related assets. First sequentially, then with MQO.
	const batchSize = 512
	targets := make([][]float32, batchSize)
	targetIdx := make([]int, batchSize)
	for i := range targets {
		targetIdx[i] = rng.Intn(assets)
		targets[i] = vectors[targetIdx[i]]
	}

	seqSample := 32
	start := time.Now()
	for i := 0; i < seqSample; i++ {
		if _, err := db.Search(micronn.SearchRequest{Vector: targets[i], K: 20, NProbe: 8}); err != nil {
			log.Fatal(err)
		}
	}
	perQuery := time.Since(start) / time.Duration(seqSample)

	start = time.Now()
	resp, err := db.BatchSearch(micronn.BatchSearchRequest{Vectors: targets, K: 20, NProbe: 8})
	if err != nil {
		log.Fatal(err)
	}
	batchTime := time.Since(start)

	fmt.Printf("sequential: %v/query  =>  batch of %d: %v total (%v/query amortized)\n",
		perQuery.Round(time.Microsecond), batchSize,
		batchTime.Round(time.Millisecond),
		(batchTime / batchSize).Round(time.Microsecond))
	fmt.Printf("partition scans: %d with MQO vs %d one-at-a-time (%.1fx I/O reduction)\n\n",
		resp.Info.PartitionScans, resp.Info.QueryPartitionPairs,
		float64(resp.Info.QueryPartitionPairs)/float64(resp.Info.PartitionScans))

	// Build related groups from the batch results and sanity-check topic
	// purity: neighbours should share the target's latent topic.
	pure, total := 0, 0
	groupSizes := make([]int, 0, batchSize)
	for qi, rs := range resp.Results {
		group := 0
		for _, r := range rs {
			var id int
			fmt.Sscanf(r.ID, "asset-%d", &id)
			if trueTopic[id] == trueTopic[targetIdx[qi]] {
				pure++
			}
			total++
			group++
		}
		groupSizes = append(groupSizes, group)
	}
	sort.Ints(groupSizes)
	fmt.Printf("built %d related-asset groups (median size %d)\n", batchSize, groupSizes[batchSize/2])
	fmt.Printf("topic purity of grouped neighbours: %.1f%%\n", 100*float64(pure)/float64(total))
}
