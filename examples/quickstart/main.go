// Quickstart: create a MicroNN database, insert a handful of vectors,
// build the IVF index and run a search.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"micronn"
)

func main() {
	dir, err := os.MkdirTemp("", "micronn-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open (and create) a database for 64-dimensional vectors.
	db, err := micronn.Open(filepath.Join(dir, "quickstart.mnn"), micronn.Options{
		Dim:    64,
		Metric: micronn.L2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Insert 5000 random vectors. In a real application these are
	// embeddings produced by a model.
	rng := rand.New(rand.NewSource(42))
	items := make([]micronn.Item, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := make([]float32, 64)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		items = append(items, micronn.Item{ID: fmt.Sprintf("doc-%04d", i), Vector: v})
	}
	if err := db.UpsertBatch(items); err != nil {
		log.Fatal(err)
	}

	// Build the IVF index (until then, queries scan the delta-store and
	// are still exact — just slower at scale).
	rep, err := db.Rebuild()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built index: %d partitions in %v\n", rep.Partitions, rep.Duration.Round(1e6))

	// Search: the query is one of the stored vectors, so it must come
	// back as its own nearest neighbour.
	query := items[1234].Vector
	resp, err := db.Search(micronn.SearchRequest{Vector: query, K: 5, NProbe: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 neighbours of doc-1234:")
	for i, r := range resp.Results {
		fmt.Printf("  %d. %-10s distance %.4f\n", i+1, r.ID, r.Distance)
	}

	st, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d vectors, %d partitions, cache %.1f MiB\n",
		st.NumVectors, st.NumPartitions, float64(st.CacheBytes)/(1<<20))
}
