// Streaming-updates demonstrates MicroNN's update path (paper §3.6): a
// vector collection that grows continuously while staying searchable. New
// vectors land in the delta-store and are visible immediately; the
// background maintainer (Options.AutoMaintain) flushes the delta and keeps
// every partition inside [MinPartitionSize, MaxPartitionSize] with
// incremental splits and merges — a built index is never stalled behind a
// full rebuild. The example tracks recall against exact search throughout.
//
// With -shards N the same stream runs against a sharded database: N
// independent stores, each with its own background maintainer, behind one
// scatter-gather handle. With -backend the stream runs over a different
// page-store engine: mmap serves hot reads straight from the OS page
// cache, memory keeps the whole store in RAM (a natural fit here — the
// example's database is scratch data anyway).
//
//	go run ./examples/streaming-updates [-shards 4] [-backend file|mmap|memory]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"
)

import "micronn"

const (
	dim       = 64
	bootstrap = 8000
	epochs    = 12
	perEpoch  = 600
)

func main() {
	shards := flag.Int("shards", 0, "hash-partition across N independent stores (0 = single store)")
	backendName := flag.String("backend", "", "page-store backend: file (default), mmap, memory")
	flag.Parse()
	backend, err := micronn.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "micronn-streaming-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := micronn.Options{
		Dim:                 dim,
		TargetPartitionSize: 100,
		FlushThreshold:      200, // flush the delta once it holds 200 vectors
		MaxPartitionSize:    200, // split partitions past 200 vectors
		MinPartitionSize:    25,  // merge partitions below 25 vectors
		AutoMaintain:        true,
		MaintainInterval:    50 * time.Millisecond,
		Shards:              *shards,
		Backend:             backend,
	}
	// micronn.Store runs the identical stream against either flavor.
	var db micronn.Store
	if *shards > 0 {
		db, err = micronn.OpenSharded(filepath.Join(dir, "stream.d"), opts)
	} else {
		db, err = micronn.Open(filepath.Join(dir, "stream.mnn"), opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close() // Close drains the background maintainer(s)

	// Embedding-like data: a Gaussian mixture (real embedding spaces are
	// clustered; isotropic noise would make any IVF index look bad).
	rng := rand.New(rand.NewSource(11))
	const centers = 30
	centerVecs := make([][]float32, centers)
	for c := range centerVecs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 8)
		}
		centerVecs[c] = v
	}
	var all [][]float32
	newVec := func() []float32 {
		c := centerVecs[rng.Intn(centers)]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())
		}
		all = append(all, v)
		return v
	}
	insert := func(n int) {
		items := make([]micronn.Item, n)
		for i := range items {
			items[i] = micronn.Item{ID: fmt.Sprintf("v%06d", len(all)), Vector: newVec()}
		}
		if err := db.UpsertBatch(items); err != nil {
			log.Fatal(err)
		}
	}

	// recallAt measures recall@10 of ANN search against exact search.
	recallAt := func(nprobe int) float64 {
		const samples = 20
		var total float64
		for s := 0; s < samples; s++ {
			q := all[rng.Intn(len(all))]
			exact, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, Exact: true})
			if err != nil {
				log.Fatal(err)
			}
			approx, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: nprobe})
			if err != nil {
				log.Fatal(err)
			}
			want := map[string]bool{}
			for _, r := range exact.Results {
				want[r.ID] = true
			}
			hits := 0
			for _, r := range approx.Results {
				if want[r.ID] {
					hits++
				}
			}
			total += float64(hits) / float64(len(exact.Results))
		}
		return total / samples
	}

	insert(bootstrap)
	if _, err := db.Rebuild(); err != nil {
		log.Fatal(err)
	}
	// Snapshot the totals now: the maintainer may already have auto-built
	// during the bootstrap inserts, so "rebuilds after build" below must be
	// a delta, not an absolute count.
	base, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped with %d vectors (backend=%s); background maintainer running\n\n", bootstrap, base.Backend)
	fmt.Println("epoch  vectors  delta  parts  sizes      flush/split/merge  recall@10")

	for epoch := 1; epoch <= epochs; epoch++ {
		insert(perEpoch)
		// Writers never wait on maintenance: it runs behind this sleep,
		// one short transaction per flush, split or merge.
		time.Sleep(150 * time.Millisecond)
		st, err := db.Stats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %7d  %5d  %5d  [%d, %d]  %5d/%d/%d          %.3f\n",
			epoch, st.NumVectors, st.DeltaCount, st.NumPartitions,
			st.SmallestPartition, st.LargestPartition,
			st.Maintenance.Flushes, st.Maintenance.Splits, st.Maintenance.Merges,
			recallAt(8))
	}

	st, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal: %d vectors in %d partitions sized [%d, %d]; "+
		"maintenance: %d flushes, %d splits, %d merges, %d rebuilds after build\n",
		st.NumVectors, st.NumPartitions, st.SmallestPartition, st.LargestPartition,
		st.Maintenance.Flushes, st.Maintenance.Splits, st.Maintenance.Merges,
		st.Maintenance.Rebuilds-base.Maintenance.Rebuilds)
}
