package micronn

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"micronn/internal/ivf"
	"micronn/internal/rescache"
	"micronn/internal/storage"
	"micronn/internal/topk"
	"micronn/internal/vec"
)

// Store is the method set shared by DB and ShardedDB — everything except
// the snapshot constructors, whose concrete snapshot types differ. Code
// that should run identically against a single store and a sharded one
// (the CLI, benchmarks, examples) programs against this interface.
type Store interface {
	Close() error
	Dim() int
	Upsert(Item) error
	UpsertBatch([]Item) error
	Delete(string) error
	DeleteBatch([]string) error
	Get(string) (*Item, error)
	Search(SearchRequest) (*SearchResponse, error)
	HybridSearch(HybridRequest) (*HybridResponse, error)
	BatchSearch(BatchSearchRequest) (*BatchSearchResponse, error)
	Rebuild() (*MaintenanceReport, error)
	FlushDelta() (*MaintenanceReport, error)
	Maintain() (*MaintenanceReport, error)
	Analyze() error
	Checkpoint() error
	DropCaches()
	Stats() (Stats, error)
}

// Both database flavors implement Store.
var (
	_ Store = (*DB)(nil)
	_ Store = (*ShardedDB)(nil)
)

// ShardedDB is a MicroNN database hash-partitioned across N fully
// independent stores. Each shard is a complete single-store database — its
// own page file, WAL, IVF index, SQ8 codebook and background maintainer —
// living under one directory whose manifest pins the shard count and hash
// seed (see storage.Manifest). Items route to shards by a seeded hash of
// their id: point operations (Upsert, Delete, Get) touch exactly one shard,
// searches scatter to every shard in parallel and merge the per-shard
// candidates, and maintenance runs per shard so a split in one shard never
// stalls writers in another.
//
// The probe budget is spread over the shard set: each shard scans
// ceil(NProbe/N) partitions plus its own delta, so the total scanned volume
// stays comparable to a single store at the same NProbe. On a quantized
// database the shards return approximate candidates (CandidatesOnly) which
// are pooled, cut to RerankFactor*K globally, and reranked exactly on their
// owning shards — recall therefore matches the single-store rerank contract
// rather than compounding per-shard approximations.
//
// Cross-shard guarantees are deliberately weaker than within a shard:
// UpsertBatch/DeleteBatch commit one transaction per shard (atomic per
// shard, not across shards), and a Snapshot pins each shard's own commit
// horizon (consistent per shard, concurrent cross-shard writes may straddle
// the horizons). All methods are safe for concurrent use.
type ShardedDB struct {
	dir      string
	manifest storage.Manifest
	shards   []*DB

	// closed flips once in Close; every later operation observes it and
	// returns ErrClosed (the same contract as DB.closed).
	closed atomic.Bool

	// cache is the router-level result cache (nil when disabled). One
	// cache serves the whole database; entries record one data generation
	// per shard plus the per-shard candidate sets, so a lookup whose
	// generations partially match can reuse the unchanged shards'
	// candidates and re-scan only the shards that moved.
	cache *rescache.Cache

	// hybridSearches counts router-level HybridSearch calls; ShardedDB.Stats
	// overlays it on the aggregated shard stats (shards are not bumped, so
	// the total is not double-counted).
	hybridSearches atomic.Uint64
}

// OpenSharded opens or creates a sharded database in dir. On creation
// Options.Shards (>= 1) and Options.Dim are required; the shard count and
// hash seed are persisted in the directory manifest and are immutable
// thereafter — reopening validates them and fails on any topology mismatch
// (a different Shards value, a missing shard directory, or a stray one).
// All other Options apply to every shard; a zero Device.Workers is divided
// across the shards so the scatter phase does not oversubscribe the cores,
// and the Device cache budget is split evenly so the documented budget
// bounds the whole database, not each shard.
func OpenSharded(dir string, opts Options) (*ShardedDB, error) {
	m, ok, err := storage.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	creating := !ok
	if creating {
		if opts.Shards < 1 {
			return nil, fmt.Errorf("micronn: Shards required to create a sharded database")
		}
		if opts.Dim <= 0 {
			return nil, fmt.Errorf("micronn: Dim required to create a sharded database")
		}
		m = storage.Manifest{Version: 1, Shards: opts.Shards, HashSeed: uint64(opts.Seed)}
		if opts.Backend != BackendDefault {
			// Record an explicit backend choice so every reopen runs the
			// same engine on every shard.
			m.Backend = opts.Backend.String()
		}
		if opts.Backend != BackendMemory {
			for i := 0; i < m.Shards; i++ {
				if err := os.MkdirAll(storage.ShardDir(dir, i), 0o755); err != nil {
					return nil, err
				}
			}
			// A create retried with a different Shards value must not adopt
			// a half-created directory's leftover shards: committing a
			// manifest that undercounts them would make every later open
			// fail the topology check, bricking the database.
			if err := storage.ValidateManifestDir(dir, m); err != nil {
				return nil, err
			}
		}
	} else {
		if opts.Shards != 0 && opts.Shards != m.Shards {
			return nil, fmt.Errorf("micronn: database has %d shards, Options.Shards = %d", m.Shards, opts.Shards)
		}
		if mk := m.BackendKindOf(); opts.Backend != BackendDefault && mk != BackendDefault && opts.Backend != mk {
			return nil, fmt.Errorf("micronn: database backend is %s, Options.Backend = %s", mk, opts.Backend)
		}
		if err := storage.ValidateManifestDir(dir, m); err != nil {
			return nil, err
		}
	}

	shOpts := opts
	shOpts.Shards = 0
	// Result caching happens at the router (with per-shard validation);
	// shard-level caches would never be consulted, so they stay off even
	// under the MICRONN_TEST_CACHE override.
	shOpts.ResultCache = ResultCacheOptions{ignoreEnv: true}
	if shOpts.Backend == BackendDefault {
		// A manifest-pinned backend applies to every shard; otherwise each
		// shard auto-detects from its own store header.
		shOpts.Backend = m.BackendKindOf()
	}
	if shOpts.Device.CacheBytes == 0 {
		shOpts.Device = DeviceLarge
	}
	if shOpts.Device.Workers == 0 {
		shOpts.Device.Workers = runtime.GOMAXPROCS(0) / m.Shards
		if shOpts.Device.Workers < 1 {
			shOpts.Device.Workers = 1
		}
	}
	shOpts.Device.CacheBytes /= int64(m.Shards)
	if shOpts.Device.CacheBytes < 1<<20 {
		shOpts.Device.CacheBytes = 1 << 20
	}
	if shOpts.Device.WriteBufferBytes > 0 {
		shOpts.Device.WriteBufferBytes /= int64(m.Shards)
		if shOpts.Device.WriteBufferBytes < 1<<20 {
			shOpts.Device.WriteBufferBytes = 1 << 20
		}
	}

	sdb := &ShardedDB{dir: dir, manifest: m, shards: make([]*DB, m.Shards), cache: opts.ResultCache.resolve()}
	for i := range sdb.shards {
		db, err := Open(storage.ShardDBPath(dir, i), shOpts)
		if err != nil {
			for j := 0; j < i; j++ {
				sdb.shards[j].Close()
			}
			return nil, fmt.Errorf("micronn: open shard %d: %w", i, err)
		}
		sdb.shards[i] = db
	}
	if creating && opts.Backend != BackendMemory {
		// The manifest is the commit record of creation, written only once
		// every shard store exists: a crash mid-create leaves a directory
		// with no manifest, which the same create call completes on retry
		// (existing shard stores just reopen). An explicitly memory-backed
		// database writes neither manifest nor shard directories — the
		// ephemeral contract is that nothing touches the filesystem, so a
		// "reopen" finds nothing and must be a full create again.
		if err := storage.WriteManifest(dir, m); err != nil {
			sdb.Close()
			return nil, err
		}
	}
	return sdb, nil
}

// ephemeral reports whether this sharded database was explicitly created
// on the memory backend (no manifest or shard directories on disk).
func (s *ShardedDB) ephemeral() bool {
	return s.manifest.BackendKindOf() == BackendMemory
}

// FNV-1a 64 parameters for the id hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// shardIndex routes an id: FNV-1a over the seed bytes then the id bytes,
// reduced modulo the shard count. The seed lives in the manifest, so every
// open of the same database routes identically.
func shardIndex(seed uint64, id string, n int) int {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

func (s *ShardedDB) shardOf(id string) int {
	return shardIndex(s.manifest.HashSeed, id, len(s.shards))
}

// Shards returns the shard count.
func (s *ShardedDB) Shards() int { return len(s.shards) }

// Shard exposes one underlying single-store database (benchmarks, tools and
// the invariant battery).
func (s *ShardedDB) Shard(i int) *DB { return s.shards[i] }

// Manifest returns the pinned topology.
func (s *ShardedDB) Manifest() storage.Manifest { return s.manifest }

// Dim returns the configured vector dimensionality.
func (s *ShardedDB) Dim() int { return s.shards[0].Dim() }

// Close drains every shard's background maintainer in parallel, then
// checkpoints and closes each shard. All shards are closed even if some
// fail; the joined error is returned.
func (s *ShardedDB) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *DB) {
			defer wg.Done()
			errs[i] = sh.Close()
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// checkOpen returns ErrClosed once Close has been called.
func (s *ShardedDB) checkOpen() error {
	if s.closed.Load() {
		return ErrClosed
	}
	return nil
}

// scatter runs fn once per shard concurrently and returns the first error.
func (s *ShardedDB) scatter(fn func(i int, sh *DB) error) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *DB) {
			defer wg.Done()
			errs[i] = fn(i, sh)
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// scatterCancel is scatter for the search paths: the first shard to fail
// closes the shared cancel channel, so still-running sibling scans abandon
// their remaining partitions instead of completing work whose result the
// gather will discard. fn forwards cancel into its scan's SearchOptions/
// BatchOptions; a sibling reaped this way reports ivf.ErrCanceled, which
// is an echo of the original failure, never the returned error.
func (s *ShardedDB) scatterCancel(fn func(i int, sh *DB, cancel <-chan struct{}) error) error {
	cancel := make(chan struct{})
	var once sync.Once
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *DB) {
			defer wg.Done()
			err := fn(i, sh, cancel)
			errs[i] = err
			if err != nil && !errors.Is(err, ivf.ErrCanceled) {
				once.Do(func() { close(cancel) })
			}
		}(i, sh)
	}
	wg.Wait()
	var echo error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ivf.ErrCanceled) {
			return err
		}
		echo = err
	}
	return echo
}

// --- point operations: route by hash ---

// Upsert inserts or replaces one item on its hash-designated shard.
func (s *ShardedDB) Upsert(item Item) error {
	return s.shards[s.shardOf(item.ID)].Upsert(item)
}

// UpsertBatch groups the items by shard and commits one transaction per
// shard, in parallel. Atomicity is per shard: a failure on one shard does
// not roll back sub-batches already committed on others.
func (s *ShardedDB) UpsertBatch(items []Item) error {
	if len(s.shards) == 1 {
		return s.shards[0].UpsertBatch(items)
	}
	groups := make([][]Item, len(s.shards))
	for _, item := range items {
		i := s.shardOf(item.ID)
		groups[i] = append(groups[i], item)
	}
	return s.scatter(func(i int, sh *DB) error {
		if len(groups[i]) == 0 {
			return nil
		}
		return sh.UpsertBatch(groups[i])
	})
}

// Delete removes the item from its hash-designated shard.
func (s *ShardedDB) Delete(id string) error {
	return s.shards[s.shardOf(id)].Delete(id)
}

// DeleteBatch groups ids by shard and commits one transaction per shard, in
// parallel; absent ids are ignored. Atomicity is per shard.
func (s *ShardedDB) DeleteBatch(ids []string) error {
	if len(s.shards) == 1 {
		return s.shards[0].DeleteBatch(ids)
	}
	groups := make([][]string, len(s.shards))
	for _, id := range ids {
		i := s.shardOf(id)
		groups[i] = append(groups[i], id)
	}
	return s.scatter(func(i int, sh *DB) error {
		if len(groups[i]) == 0 {
			return nil
		}
		return sh.DeleteBatch(groups[i])
	})
}

// Get returns the stored item from its hash-designated shard.
func (s *ShardedDB) Get(id string) (*Item, error) {
	return s.shards[s.shardOf(id)].Get(id)
}

// --- scatter-gather search ---

// shardCand tags a per-shard candidate with its source shard: vector ids
// are only unique within a shard, so the merge orders ties by (distance,
// shard, vid) to stay deterministic.
type shardCand struct {
	topk.Result
	shard int
}

func sortShardCands(cs []shardCand) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Distance != cs[j].Distance {
			return cs[i].Distance < cs[j].Distance
		}
		if cs[i].shard != cs[j].shard {
			return cs[i].shard < cs[j].shard
		}
		return cs[i].VectorID < cs[j].VectorID
	})
}

// perShardProbe spreads the query's probe budget across the shards: each
// shard holds ~1/N of the data in proportionally fewer partitions, so
// probing ceil(NProbe/N) per shard scans about the same number of vectors
// as a single store probing NProbe.
func (s *ShardedDB) perShardProbe(nprobe int) int {
	if nprobe <= 0 {
		nprobe = 8
	}
	per := (nprobe + len(s.shards) - 1) / len(s.shards)
	if per < 1 {
		per = 1
	}
	return per
}

// rerankBudget resolves the global rerank multiplier times K.
func (s *ShardedDB) rerankBudget(k, override int) int {
	rr := override
	if rr <= 0 {
		rr = s.shards[0].ix.Config().RerankFactor
	}
	if rr < 1 {
		rr = 1
	}
	return k * rr
}

// Search scatters the query to every shard in parallel and merges the
// per-shard results (same semantics as DB.Search). On a quantized database
// the shards return approximate candidates; the pooled top RerankFactor*K
// are reranked exactly on their owning shards before the final top-K cut.
// With the result cache enabled, a repeat whose per-shard data generations
// all still match is served without touching any shard, and a repeat where
// only some shards changed re-scans just those shards, merging their fresh
// candidates with the cached ones.
func (s *ShardedDB) Search(req SearchRequest) (*SearchResponse, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if err := s.normalizeSearch(&req); err != nil {
		return nil, err
	}
	rts, err := s.beginReads()
	if err != nil {
		return nil, err
	}
	defer closeReads(rts)
	if s.cache == nil || req.NoCache {
		return s.searchOn(rts, req)
	}
	key := s.shards[0].searchCacheKey(req)
	gens, err := s.readGens(rts)
	if err != nil {
		return nil, err
	}
	// Fast path: a fully valid entry serves without entering the flight.
	if v, _, out := s.cache.Get(key, gens); out == rescache.Hit {
		return cloneSearchResponse(v.(*shardSearchEntry).resp), nil
	}
	// Miss or stale: concurrent identical live queries coalesce into one
	// scatter; a joiner revalidates the shared result against its own
	// pinned generations (read-your-writes — see cachedShardedQuery).
	return cachedShardedQuery(s, key, gens, cloneSearchResponse, func() (*SearchResponse, []int64, error) {
		return s.cachedSearchOn(rts, req, key, gens, false, true)
	})
}

// cachedShardedQuery is the singleflight half of the sharded cached-query
// protocol (the counterpart of the single-store cachedQuery, for callers
// that hold pinned per-shard read transactions): the leader computes at
// its own snapshots; a joiner serves the shared response only when its
// recorded generations equal the ones the joiner read from its OWN pinned
// transactions, and otherwise recomputes there — a flight started before
// this caller's write committed must not answer for it. compute closes
// over the caller's transactions, so it is always safe to re-run locally.
func cachedShardedQuery[T any](s *ShardedDB, key rescache.Key, gens []int64, clone func(T) T, compute func() (T, []int64, error)) (T, error) {
	var zero T
	v, shared, err := s.cache.Do(key, func() (any, error) {
		resp, fgens, err := compute()
		if err != nil {
			return nil, err
		}
		return flightResult[T]{resp: resp, gens: fgens}, nil
	})
	if err != nil {
		return zero, err
	}
	fr := v.(flightResult[T])
	if shared && !rescache.GensEqual(fr.gens, gens) {
		resp, _, err := compute()
		if err != nil {
			return zero, err
		}
		return clone(resp), nil
	}
	return clone(fr.resp), nil
}

// readGens reads each shard's data generation at its pinned snapshot.
func (s *ShardedDB) readGens(rts []*storage.ReadTxn) ([]int64, error) {
	gens := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		g, err := sh.ix.DataGeneration(rts[i])
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	return gens, nil
}

// beginReads opens one read transaction per shard. Each pins its own
// shard's commit horizon; see the type comment for the cross-shard
// consistency contract.
func (s *ShardedDB) beginReads() ([]*storage.ReadTxn, error) {
	rts := make([]*storage.ReadTxn, len(s.shards))
	for i, sh := range s.shards {
		rt, err := sh.store.BeginRead()
		if err != nil {
			closeReads(rts[:i])
			return nil, err
		}
		rts[i] = rt
	}
	return rts, nil
}

func closeReads(rts []*storage.ReadTxn) {
	for _, rt := range rts {
		if rt != nil {
			rt.Close()
		}
	}
}

// shardOut is one shard's scan contribution to a scatter-gather search:
// the (possibly approximate) candidate set and its execution info. Cached
// entries retain these per shard so a later query can reuse the unchanged
// shards' candidates; both fields are treated as immutable once produced.
type shardOut struct {
	res  []topk.Result
	info *ivf.PlanInfo
}

// shardSearchEntry is the cached form of one scatter-gather search: the
// per-shard pre-merge candidates for partial reuse plus the merged
// response served verbatim on a full generation match.
type shardSearchEntry struct {
	outs []shardOut
	resp *SearchResponse
}

// searchOn is the scatter-gather core, running against pinned per-shard
// read transactions (shared by Search and ShardedSnapshot.Search). The
// result cache, when enabled, is consulted against the generations visible
// at exactly these transactions — so snapshot searches can only be served
// entries matching their pinned horizon.
func (s *ShardedDB) searchOn(rts []*storage.ReadTxn, req SearchRequest) (*SearchResponse, error) {
	if err := s.normalizeSearch(&req); err != nil {
		return nil, err
	}
	if s.cache == nil || req.NoCache {
		outs, err := s.searchScatter(rts, req, nil)
		if err != nil {
			return nil, err
		}
		return s.searchMerge(rts, req, outs)
	}
	// Snapshot path (live searches go through ShardedDB.Search): consult
	// the cache against the pinned horizons but store=false — an entry
	// stamped with an old snapshot's generations would displace entries
	// the live traffic still needs.
	gens, err := s.readGens(rts)
	if err != nil {
		return nil, err
	}
	resp, _, err := s.cachedSearchOn(rts, req, s.shards[0].searchCacheKey(req), gens, true, false)
	if err != nil {
		return nil, err
	}
	return cloneSearchResponse(resp), nil
}

// cachedSearchOn validates, serves or recomputes a search at rts'
// snapshots, whose per-shard data generations the caller read as gens. It
// returns the shared (cached) response plus the generations it answers
// for — callers clone before handing the response out. counted controls
// stats accounting (the singleflight path passes false; its caller already
// recorded the first outcome). store=false consults the cache without
// writing it (snapshot searches).
func (s *ShardedDB) cachedSearchOn(rts []*storage.ReadTxn, req SearchRequest, key rescache.Key, gens []int64, counted, store bool) (*SearchResponse, []int64, error) {
	var v any
	var stored []int64
	var out rescache.Outcome
	if counted {
		v, stored, out = s.cache.Get(key, gens)
	} else {
		v, stored, out = s.cache.Lookup(key, gens)
	}
	if out == rescache.Hit {
		return v.(*shardSearchEntry).resp, gens, nil
	}
	var reuse []*shardOut
	if out == rescache.Stale {
		reuse = reusableOuts(v.(*shardSearchEntry).outs, stored, gens, s.cache)
	}
	outs, err := s.searchScatter(rts, req, reuse)
	if err != nil {
		return nil, nil, err
	}
	resp, err := s.searchMerge(rts, req, outs)
	if err != nil {
		return nil, nil, err
	}
	if store {
		entry := &shardSearchEntry{outs: outs, resp: resp}
		s.cache.PutWithPolicy(key, gens, entry, shardSearchEntrySize(entry),
			searchPutPolicy(len(req.Filters), resp))
	}
	return resp, gens, nil
}

// reusableOuts maps a stale entry's per-shard outputs onto the current
// generations: position i is reusable iff shard i's generation did not
// move. Returns nil when nothing is reusable (or the shapes disagree, e.g.
// an entry recorded under a different topology).
func reusableOuts[T any](outs []T, stored, gens []int64, c *rescache.Cache) []*T {
	if len(stored) != len(gens) || len(outs) != len(gens) {
		return nil
	}
	reuse := make([]*T, len(gens))
	skipped := 0
	for i := range gens {
		if stored[i] == gens[i] {
			reuse[i] = &outs[i]
			skipped++
		}
	}
	if skipped == 0 {
		return nil
	}
	c.NoteSkipped(skipped)
	return reuse
}

// searchScatter runs the per-shard scans. reuse, when non-nil, supplies
// cached outputs for shards whose data generation has not moved — those
// shards are not scanned.
func (s *ShardedDB) searchScatter(rts []*storage.ReadTxn, req SearchRequest, reuse []*shardOut) ([]shardOut, error) {
	sopts := ivf.SearchOptions{
		K: req.K, NProbe: s.perShardProbe(req.NProbe), Filters: req.Filters,
		Exact: req.Exact, Plan: req.Plan, RerankFactor: req.RerankFactor,
		CandidatesOnly: true,
	}
	outs := make([]shardOut, len(s.shards))
	err := s.scatterCancel(func(i int, sh *DB, cancel <-chan struct{}) error {
		if reuse != nil && reuse[i] != nil {
			outs[i] = *reuse[i]
			return nil
		}
		so := sopts
		so.Cancel = cancel
		res, info, err := sh.ix.Search(rts[i], req.Vector, so)
		if err != nil {
			return err
		}
		outs[i] = shardOut{res: res, info: info}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// searchMerge pools the per-shard candidates into the final response (the
// gather half of searchOn). It never mutates outs — cached candidate sets
// flow through here on every partial reuse.
func (s *ShardedDB) searchMerge(rts []*storage.ReadTxn, req SearchRequest, outs []shardOut) (*SearchResponse, error) {
	// Gather: shards on exact paths (float32 scans, pre-filter plans,
	// Exact queries) contribute final results directly; shards that
	// returned approximate SQ8 candidates feed the global rerank pool.
	var exact, approx []shardCand
	info := outs[0].info
	agg := *info
	agg.CandidatesApprox = false
	for i, o := range outs {
		if i > 0 {
			agg.PartitionsScanned += o.info.PartitionsScanned
			agg.VectorsScanned += o.info.VectorsScanned
			agg.RowsFiltered += o.info.RowsFiltered
			agg.BytesScanned += o.info.BytesScanned
			agg.Reranked += o.info.Reranked
		}
		for _, r := range o.res {
			if o.info.CandidatesApprox {
				approx = append(approx, shardCand{Result: r, shard: i})
			} else {
				exact = append(exact, shardCand{Result: r, shard: i})
			}
		}
	}

	if len(approx) > 0 {
		// Pool the approximate candidates, cut to the single-store rerank
		// budget, and rerank each survivor on the shard whose raw store
		// holds its exact vector.
		sortShardCands(approx)
		if budget := s.rerankBudget(req.K, req.RerankFactor); len(approx) > budget {
			approx = approx[:budget]
		}
		groups := make([][]topk.Result, len(s.shards))
		for _, c := range approx {
			groups[c.shard] = append(groups[c.shard], c.Result)
		}
		reranked := make([][]topk.Result, len(s.shards))
		var mu sync.Mutex
		err := s.scatter(func(i int, sh *DB) error {
			if len(groups[i]) == 0 {
				return nil
			}
			res, rb, err := sh.ix.RerankCandidates(rts[i], req.Vector, groups[i], len(groups[i]))
			if err != nil {
				return err
			}
			mu.Lock()
			agg.Reranked += len(groups[i])
			agg.BytesScanned += rb
			mu.Unlock()
			reranked[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, res := range reranked {
			for _, r := range res {
				exact = append(exact, shardCand{Result: r, shard: i})
			}
		}
	}

	sortShardCands(exact)
	if len(exact) > req.K {
		exact = exact[:req.K]
	}
	out := make([]Result, len(exact))
	for i, c := range exact {
		out[i] = Result{ID: c.AssetID, Distance: c.Distance}
	}
	return &SearchResponse{Results: out, Plan: agg}, nil
}

// batchShardOut is one shard's contribution to a scatter-gather batch:
// per-query candidate sets plus execution info, immutable once produced
// (cached entries retain them for partial reuse exactly like shardOut).
type batchShardOut struct {
	res  [][]topk.Result
	info *ivf.BatchInfo
}

// shardBatchEntry is the cached form of one scatter-gather batch search.
type shardBatchEntry struct {
	outs []batchShardOut
	resp *BatchSearchResponse
}

// BatchSearch scatters the whole batch to every shard — each shard runs its
// own multi-query-optimized BatchSearch over the full query set, so the MQO
// partition-scan sharing is preserved within every shard — then merges the
// per-shard per-query candidates exactly like Search does. Caching follows
// Search too: a repeated identical batch serves from the cache on a full
// per-shard generation match and re-scans only the changed shards on a
// partial one.
func (s *ShardedDB) BatchSearch(req BatchSearchRequest) (*BatchSearchResponse, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if err := s.normalizeBatchSearch(&req); err != nil {
		return nil, err
	}
	rts, err := s.beginReads()
	if err != nil {
		return nil, err
	}
	defer closeReads(rts)
	if s.cache == nil || req.NoCache || len(req.Vectors) == 0 {
		return s.batchSearchOn(rts, req)
	}
	queries := s.batchMatrix(req)
	key := s.shards[0].batchCacheKey(req)
	gens, err := s.readGens(rts)
	if err != nil {
		return nil, err
	}
	if v, _, out := s.cache.Get(key, gens); out == rescache.Hit {
		return cloneBatchSearchResponse(v.(*shardBatchEntry).resp), nil
	}
	return cachedShardedQuery(s, key, gens, cloneBatchSearchResponse, func() (*BatchSearchResponse, []int64, error) {
		return s.cachedBatchSearchOn(rts, req, queries, key, gens, false, true)
	})
}

// batchMatrix packs the batch into a query matrix. Dimensions were already
// validated by the shared normalization path.
func (s *ShardedDB) batchMatrix(req BatchSearchRequest) *vec.Matrix {
	queries := vec.NewMatrix(len(req.Vectors), s.Dim())
	for i, q := range req.Vectors {
		queries.SetRow(i, q)
	}
	return queries
}

func (s *ShardedDB) batchSearchOn(rts []*storage.ReadTxn, req BatchSearchRequest) (*BatchSearchResponse, error) {
	if err := s.normalizeBatchSearch(&req); err != nil {
		return nil, err
	}
	if len(req.Vectors) == 0 {
		return &BatchSearchResponse{}, nil
	}
	queries := s.batchMatrix(req)
	if s.cache == nil || req.NoCache {
		outs, err := s.batchScatter(rts, req, queries, nil)
		if err != nil {
			return nil, err
		}
		return s.batchMerge(rts, req, queries, outs)
	}
	// Snapshot path: consult but never store (see searchOn).
	gens, err := s.readGens(rts)
	if err != nil {
		return nil, err
	}
	resp, _, err := s.cachedBatchSearchOn(rts, req, queries, s.shards[0].batchCacheKey(req), gens, true, false)
	if err != nil {
		return nil, err
	}
	return cloneBatchSearchResponse(resp), nil
}

// cachedBatchSearchOn is cachedSearchOn for batches: it returns the shared
// cached response plus the generations it answers for; callers clone.
func (s *ShardedDB) cachedBatchSearchOn(rts []*storage.ReadTxn, req BatchSearchRequest, queries *vec.Matrix, key rescache.Key, gens []int64, counted, store bool) (*BatchSearchResponse, []int64, error) {
	var v any
	var stored []int64
	var out rescache.Outcome
	if counted {
		v, stored, out = s.cache.Get(key, gens)
	} else {
		v, stored, out = s.cache.Lookup(key, gens)
	}
	if out == rescache.Hit {
		return v.(*shardBatchEntry).resp, gens, nil
	}
	var reuse []*batchShardOut
	if out == rescache.Stale {
		reuse = reusableOuts(v.(*shardBatchEntry).outs, stored, gens, s.cache)
	}
	outs, err := s.batchScatter(rts, req, queries, reuse)
	if err != nil {
		return nil, nil, err
	}
	resp, err := s.batchMerge(rts, req, queries, outs)
	if err != nil {
		return nil, nil, err
	}
	if store {
		entry := &shardBatchEntry{outs: outs, resp: resp}
		s.cache.PutWithPolicy(key, gens, entry, shardBatchEntrySize(entry), batchPutPolicy(resp))
	}
	return resp, gens, nil
}

// batchScatter runs the per-shard batch scans, reusing cached outputs for
// shards whose generation has not moved.
func (s *ShardedDB) batchScatter(rts []*storage.ReadTxn, req BatchSearchRequest, queries *vec.Matrix, reuse []*batchShardOut) ([]batchShardOut, error) {
	bopts := ivf.BatchOptions{
		K: req.K, NProbe: s.perShardProbe(req.NProbe),
		RerankFactor: req.RerankFactor, CandidatesOnly: true,
	}
	outs := make([]batchShardOut, len(s.shards))
	err := s.scatterCancel(func(i int, sh *DB, cancel <-chan struct{}) error {
		if reuse != nil && reuse[i] != nil {
			outs[i] = *reuse[i]
			return nil
		}
		bo := bopts
		bo.Cancel = cancel
		res, info, err := sh.ix.BatchSearch(rts[i], queries, bo)
		if err != nil {
			return err
		}
		outs[i] = batchShardOut{res: res, info: info}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// batchMerge pools the per-shard per-query candidates into the final
// response; it never mutates outs.
func (s *ShardedDB) batchMerge(rts []*storage.ReadTxn, req BatchSearchRequest, queries *vec.Matrix, outs []batchShardOut) (*BatchSearchResponse, error) {
	nq := queries.Rows
	agg := *outs[0].info
	agg.CandidatesApprox = false
	for _, o := range outs[1:] {
		agg.PartitionScans += o.info.PartitionScans
		agg.QueryPartitionPairs += o.info.QueryPartitionPairs
		agg.VectorsScanned += o.info.VectorsScanned
		agg.DistancePairs += o.info.DistancePairs
		agg.BytesScanned += o.info.BytesScanned
		agg.Reranked += o.info.Reranked
	}

	// Gather per query, separating shards that returned final exact results
	// from shards that returned approximate SQ8 candidates (same contract
	// as searchOn: only approximate candidates owe a rerank). Approximate
	// pools are cut to the single-store rerank budget before grouping back
	// onto their owning shards. groups[shard][query] keeps order intact.
	merged := make([][]shardCand, nq)
	groups := make([]map[int][]topk.Result, len(s.shards))
	for i := range groups {
		groups[i] = make(map[int][]topk.Result)
	}
	anyApprox := false
	for qi := 0; qi < nq; qi++ {
		var exact, approx []shardCand
		for i, o := range outs {
			for _, r := range o.res[qi] {
				c := shardCand{Result: r, shard: i}
				if o.info.CandidatesApprox {
					approx = append(approx, c)
				} else {
					exact = append(exact, c)
				}
			}
		}
		merged[qi] = exact
		if len(approx) > 0 {
			anyApprox = true
			sortShardCands(approx)
			if budget := s.rerankBudget(req.K, req.RerankFactor); len(approx) > budget {
				approx = approx[:budget]
			}
			for _, c := range approx {
				groups[c.shard][qi] = append(groups[c.shard][qi], c.Result)
			}
		}
	}

	if anyApprox {
		reranked := make([]map[int][]topk.Result, len(s.shards))
		var mu sync.Mutex
		err := s.scatter(func(i int, sh *DB) error {
			if len(groups[i]) == 0 {
				return nil
			}
			out := make(map[int][]topk.Result, len(groups[i]))
			var rerankedN, bytesRead int64
			for qi, cands := range groups[i] {
				res, rb, err := sh.ix.RerankCandidates(rts[i], queries.Row(qi), cands, len(cands))
				if err != nil {
					return err
				}
				rerankedN += int64(len(cands))
				bytesRead += rb
				out[qi] = res
			}
			mu.Lock()
			agg.Reranked += rerankedN
			agg.BytesScanned += bytesRead
			mu.Unlock()
			reranked[i] = out
			return nil
		})
		if err != nil {
			return nil, err
		}
		for qi := 0; qi < nq; qi++ {
			for i, byQuery := range reranked {
				if byQuery == nil {
					continue
				}
				for _, r := range byQuery[qi] {
					merged[qi] = append(merged[qi], shardCand{Result: r, shard: i})
				}
			}
		}
	}

	out := make([][]Result, nq)
	for qi, pool := range merged {
		sortShardCands(pool)
		if len(pool) > req.K {
			pool = pool[:req.K]
		}
		out[qi] = make([]Result, len(pool))
		for i, c := range pool {
			out[qi][i] = Result{ID: c.AssetID, Distance: c.Distance}
		}
	}
	return &BatchSearchResponse{Results: out, Info: agg}, nil
}

// --- cache entry sizing ---

// candsSize estimates the footprint of one candidate slice.
func candsSize(rs []topk.Result) int64 {
	n := int64(24)
	for _, r := range rs {
		n += 40 + int64(len(r.AssetID))
	}
	return n
}

func shardSearchEntrySize(e *shardSearchEntry) int64 {
	n := searchResponseSize(e.resp)
	for _, o := range e.outs {
		n += 96 + candsSize(o.res)
	}
	return n
}

func shardBatchEntrySize(e *shardBatchEntry) int64 {
	n := batchSearchResponseSize(e.resp)
	for _, o := range e.outs {
		n += 96
		for _, rs := range o.res {
			n += candsSize(rs)
		}
	}
	return n
}

// ResultCacheStats returns the router-level result cache counters (zeros
// when the cache is disabled).
func (s *ShardedDB) ResultCacheStats() CacheStats { return cacheStatsOf(s.cache) }

// --- maintenance and stats: aggregate over the shard set ---

// mergeReports folds per-shard maintenance reports into one.
func mergeReports(reps []*MaintenanceReport) *MaintenanceReport {
	out := &MaintenanceReport{Action: "none"}
	for _, rep := range reps {
		if rep == nil {
			continue
		}
		if rep.Action != "" && rep.Action != "none" {
			if out.Action == "none" {
				out.Action = rep.Action
			} else if out.Action != rep.Action {
				out.Action += "+" + rep.Action
			}
		}
		out.Steps += rep.Steps
		out.Rebuilds += rep.Rebuilds
		out.Flushes += rep.Flushes
		out.Splits += rep.Splits
		out.Merges += rep.Merges
		out.Compactions += rep.Compactions
		out.Duration += rep.Duration
		out.RowChanges += rep.RowChanges
		out.VectorsAssigned += rep.VectorsAssigned
		out.Partitions += rep.Partitions
	}
	return out
}

// Rebuild retrains every shard's IVF index in parallel and merges the
// reports.
func (s *ShardedDB) Rebuild() (*MaintenanceReport, error) {
	reps := make([]*MaintenanceReport, len(s.shards))
	err := s.scatter(func(i int, sh *DB) error {
		rep, err := sh.Rebuild()
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeReports(reps), nil
}

// FlushDelta flushes every shard's delta-store in parallel.
func (s *ShardedDB) FlushDelta() (*MaintenanceReport, error) {
	reps := make([]*MaintenanceReport, len(s.shards))
	err := s.scatter(func(i int, sh *DB) error {
		rep, err := sh.FlushDelta()
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeReports(reps), nil
}

// Maintain runs the incremental maintenance policy on every shard in
// parallel (each step in its own short per-shard write transaction) and
// merges the reports.
func (s *ShardedDB) Maintain() (*MaintenanceReport, error) {
	reps := make([]*MaintenanceReport, len(s.shards))
	err := s.scatter(func(i int, sh *DB) error {
		rep, err := sh.Maintain()
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeReports(reps), nil
}

// Analyze refreshes every shard's attribute statistics.
func (s *ShardedDB) Analyze() error {
	return s.scatter(func(i int, sh *DB) error { return sh.Analyze() })
}

// Checkpoint folds every shard's WAL into its main file.
func (s *ShardedDB) Checkpoint() error {
	return s.scatter(func(i int, sh *DB) error { return sh.Checkpoint() })
}

// DropCaches empties every shard's buffer pool and in-memory centroid
// cache in parallel, plus the router-level result cache, simulating the
// paper's ColdStart scenario across the whole database — the cold-start
// legs of the bench scenarios drive sharded databases through this exactly
// like single stores, and a cold query must pay the scatter, not replay a
// cached response.
func (s *ShardedDB) DropCaches() {
	if s.cache != nil {
		s.cache.Clear()
	}
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *DB) {
			defer wg.Done()
			sh.DropCaches()
		}(sh)
	}
	wg.Wait()
}

// AggregateStats folds per-shard stats into whole-database numbers: counts,
// cache and file sizes sum; the partition-size bounds are the min/max over
// shards; NeedsRebuild is true if any shard needs one. ShardedDB.Stats is
// AggregateStats over ShardStats; callers that already hold the per-shard
// slice (e.g. to print a breakdown) can aggregate it without a second
// scatter.
func AggregateStats(per []Stats) Stats {
	var out Stats
	for _, st := range per {
		out.NumVectors += st.NumVectors
		out.DeltaCount += st.DeltaCount
		out.NumPartitions += st.NumPartitions
		if st.SmallestPartition > 0 && (out.SmallestPartition == 0 || st.SmallestPartition < out.SmallestPartition) {
			out.SmallestPartition = st.SmallestPartition
		}
		if st.LargestPartition > out.LargestPartition {
			out.LargestPartition = st.LargestPartition
		}
		out.NeedsRebuild = out.NeedsRebuild || st.NeedsRebuild
		out.Maintenance.Passes += st.Maintenance.Passes
		out.Maintenance.Rebuilds += st.Maintenance.Rebuilds
		out.Maintenance.Flushes += st.Maintenance.Flushes
		out.Maintenance.Splits += st.Maintenance.Splits
		out.Maintenance.Merges += st.Maintenance.Merges
		out.Maintenance.Compactions += st.Maintenance.Compactions
		out.Maintenance.StaleRetries += st.Maintenance.StaleRetries
		out.Maintenance.RowChanges += st.Maintenance.RowChanges
		out.Maintenance.Errors += st.Maintenance.Errors
		out.Ingest.Enabled = out.Ingest.Enabled || st.Ingest.Enabled
		out.Ingest.GroupCommits += st.Ingest.GroupCommits
		out.Ingest.GroupedOps += st.Ingest.GroupedOps
		if st.Ingest.MaxGroupSize > out.Ingest.MaxGroupSize {
			out.Ingest.MaxGroupSize = st.Ingest.MaxGroupSize
		}
		out.Ingest.Seals += st.Ingest.Seals
		out.Ingest.SealedRows += st.Ingest.SealedRows
		out.Ingest.SealFailures += st.Ingest.SealFailures
		if out.Ingest.LastSealError == "" {
			out.Ingest.LastSealError = st.Ingest.LastSealError
		}
		out.Ingest.RunCount += st.Ingest.RunCount
		out.Ingest.RunRows += st.Ingest.RunRows
		out.Ingest.TombstoneRows += st.Ingest.TombstoneRows
		out.Ingest.UnmergedItems += st.Ingest.UnmergedItems
		out.Ingest.BackpressureTriggers += st.Ingest.BackpressureTriggers
		out.Ingest.BackpressureWaits += st.Ingest.BackpressureWaits
		out.Ingest.BackpressureWaitNs += st.Ingest.BackpressureWaitNs
		out.Ingest.ZonePruneChecks += st.Ingest.ZonePruneChecks
		out.Ingest.ZonePrunedRuns += st.Ingest.ZonePrunedRuns
		out.GateWaits += st.GateWaits
		out.GateWaitNs += st.GateWaitNs
		if st.LastMaintainAction != "" {
			out.LastMaintainAction = st.LastMaintainAction
		}
		if st.Backend != "" {
			// All shards run one engine (the manifest pins any explicit
			// choice), so the last one stands for the database.
			out.Backend = st.Backend
		}
		if st.Quantization != QuantNone {
			// Like Backend: every shard shares one quantization config.
			out.Quantization = st.Quantization
			out.ClipPercentile = st.ClipPercentile
		}
		out.CacheBytes += st.CacheBytes
		out.CacheBudget += st.CacheBudget
		out.CacheHits += st.CacheHits
		out.CacheMisses += st.CacheMisses
		out.CacheEvictions += st.CacheEvictions
		out.WALBytes += st.WALBytes
		out.FileBytes += st.FileBytes
		out.PagesWritten += st.PagesWritten
		out.HybridSearches += st.HybridSearches
	}
	if out.NumPartitions > 0 {
		out.AvgPartitionSize = float64(out.NumVectors-out.DeltaCount-out.Ingest.RunRows) / float64(out.NumPartitions)
	}
	return out
}

// SetZonePruning toggles per-run zone/Bloom pruning on every shard (see
// DB.SetZonePruning).
func (s *ShardedDB) SetZonePruning(enabled bool) {
	for _, sh := range s.shards {
		sh.SetZonePruning(enabled)
	}
}

// ShardStats returns each shard's stats, indexed by shard.
func (s *ShardedDB) ShardStats() ([]Stats, error) {
	per := make([]Stats, len(s.shards))
	err := s.scatter(func(i int, sh *DB) error {
		st, err := sh.Stats()
		per[i] = st
		return err
	})
	if err != nil {
		return nil, err
	}
	return per, nil
}

// Stats aggregates operational statistics over the shard set. The result
// cache lives at the router, not in the shards, so its stats are overlaid
// after aggregation (per-shard Stats.Cache is always zero).
func (s *ShardedDB) Stats() (Stats, error) {
	per, err := s.ShardStats()
	if err != nil {
		return Stats{}, err
	}
	out := AggregateStats(per)
	out.Cache = cacheStatsOf(s.cache)
	// Hybrid queries run at the router, never on individual shards, so the
	// per-shard sum is zero and this overlay is the whole count.
	out.HybridSearches += s.hybridSearches.Load()
	return out, nil
}

// CheckInvariants runs the whole sharded invariant battery: the manifest
// must match the directory topology, every shard must pass the single-store
// index invariants, and the id placement must be globally consistent — no
// asset id present in two shards, and every id stored on exactly the shard
// its hash designates. O(total rows); used by the crash battery and tests.
func (s *ShardedDB) CheckInvariants() error {
	if !s.ephemeral() {
		m, ok, err := storage.ReadManifest(s.dir)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("micronn: sharded invariant: manifest missing from %s", s.dir)
		}
		if m != s.manifest {
			return fmt.Errorf("micronn: sharded invariant: manifest %+v changed since open (%+v)", m, s.manifest)
		}
		if err := storage.ValidateManifestDir(s.dir, m); err != nil {
			return fmt.Errorf("micronn: sharded invariant: %w", err)
		}
	}
	seen := make(map[string]int)
	for i, sh := range s.shards {
		err := sh.store.View(func(rt *storage.ReadTxn) error {
			if err := sh.ix.CheckInvariants(rt); err != nil {
				return fmt.Errorf("micronn: shard %d: %w", i, err)
			}
			return sh.ix.ForEachAsset(rt, func(asset string) error {
				if j, dup := seen[asset]; dup {
					return fmt.Errorf("micronn: sharded invariant: asset %q present in shards %d and %d", asset, j, i)
				}
				seen[asset] = i
				if want := s.shardOf(asset); want != i {
					return fmt.Errorf("micronn: sharded invariant: asset %q stored in shard %d but hashes to shard %d", asset, i, want)
				}
				return nil
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// --- snapshots ---

// ShardedSnapshot is a read-only view pinning one read transaction per
// shard. Each shard's view is a consistent commit horizon; the horizons are
// captured shard by shard, so a cross-shard write racing Snapshot may be
// visible on one shard and not another (per-shard consistency, as
// documented on ShardedDB). Close releases every pinned transaction.
type ShardedSnapshot struct {
	db  *ShardedDB
	rts []*storage.ReadTxn
}

// Snapshot opens a read view across all shards. Callers must Close it.
func (s *ShardedDB) Snapshot() (*ShardedSnapshot, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	rts, err := s.beginReads()
	if err != nil {
		return nil, err
	}
	return &ShardedSnapshot{db: s, rts: rts}, nil
}

// Close releases the snapshot. Idempotent.
func (s *ShardedSnapshot) Close() {
	closeReads(s.rts)
}

// Search runs a query against the pinned per-shard state.
func (s *ShardedSnapshot) Search(req SearchRequest) (*SearchResponse, error) {
	return s.db.searchOn(s.rts, req)
}

// BatchSearch runs a query batch against the pinned per-shard state.
func (s *ShardedSnapshot) BatchSearch(req BatchSearchRequest) (*BatchSearchResponse, error) {
	return s.db.batchSearchOn(s.rts, req)
}

// Get returns the item as of its shard's pinned horizon.
func (s *ShardedSnapshot) Get(id string) (*Item, error) {
	i := s.db.shardOf(id)
	return getItem(s.db.shards[i].ix, s.rts[i], id)
}

// Stats aggregates index counters as of the pinned horizons.
func (s *ShardedSnapshot) Stats() (Stats, error) {
	per := make([]Stats, len(s.db.shards))
	for i, sh := range s.db.shards {
		st, err := sh.ix.Stats(s.rts[i])
		if err != nil {
			return Stats{}, err
		}
		per[i] = Stats{
			NumVectors:    st.NumVectors,
			DeltaCount:    st.DeltaCount,
			NumPartitions: st.NumPartitions,
		}
	}
	return AggregateStats(per), nil
}
