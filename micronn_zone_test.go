package micronn

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"micronn/internal/storage"
)

// zoneStore is the slice of the DB/ShardedDB surface the zone property
// test drives — both types satisfy it as-is.
type zoneStore interface {
	Upsert(Item) error
	UpsertBatch([]Item) error
	Delete(string) error
	Get(string) (*Item, error)
	Search(SearchRequest) (*SearchResponse, error)
	Rebuild() (*MaintenanceReport, error)
	SetZonePruning(bool)
	Stats() (Stats, error)
	Close() error
}

// zoneSealAll drains every shard's delta into a sorted run synchronously,
// so the test controls run layout instead of racing the async sealer.
func zoneSealAll(t *testing.T, shards []*DB) {
	t.Helper()
	for _, sh := range shards {
		if err := sh.store.Update(func(wt *storage.WriteTxn) error {
			_, e := sh.ix.SealDelta(wt)
			return e
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestZonePruningEquivalence is the seeded property test for run-zone
// pruning: across quantization schemes and shard counts, every search
// (filtered and not), Get, and exact query must return byte-identical
// results whether zone pruning is enabled or disabled. Pruning is a pure
// optimization — Blooms have no false negatives, so a skipped run can
// never have held a result.
func TestZonePruningEquivalence(t *testing.T) {
	quants := []struct {
		name string
		q    Quantization
	}{
		{"float32", QuantNone},
		{"sq8", QuantSQ8},
		{"sq4", QuantSQ4},
	}
	for _, qc := range quants {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards%d", qc.name, shards), func(t *testing.T) {
				opts := Options{
					Dim: 8, Seed: 7,
					LSMIngest:        true,
					MemtableMaxItems: 1 << 20, // seal manually
					Quantization:     qc.q,
					Attributes: []AttributeDef{
						{Name: "color", Type: AttrText, Indexed: true},
						{Name: "cat", Type: AttrInt, Indexed: true},
						{Name: "note", Type: AttrText}, // unindexed: never prunable
					},
				}
				opts.Backend = BackendMemory
				var db zoneStore
				var perShard []*DB
				if shards == 1 {
					d, err := Open("", opts)
					if err != nil {
						t.Fatal(err)
					}
					db = d
					perShard = []*DB{d}
				} else {
					o := opts
					o.Shards = shards
					s, err := OpenSharded("", o)
					if err != nil {
						t.Fatal(err)
					}
					db = s
					for i := 0; i < s.Shards(); i++ {
						perShard = append(perShard, s.Shard(i))
					}
				}
				defer db.Close()

				rng := rand.New(rand.NewSource(42))
				item := func(id, color string, cat int) Item {
					return Item{
						ID: id, Vector: lsmVec(rng, 8),
						Attributes: map[string]any{
							"color": color, "cat": cat,
							"note": fmt.Sprintf("n%d", rng.Intn(4)),
						},
					}
				}

				// Base load into the partitions.
				base := make([]Item, 90)
				colors := []string{"red", "green", "blue"}
				for i := range base {
					base[i] = item(fmt.Sprintf("a%d", i), colors[i%3], i%5)
				}
				if err := db.UpsertBatch(base); err != nil {
					t.Fatal(err)
				}
				if _, err := db.Rebuild(); err != nil {
					t.Fatal(err)
				}

				// Three sealed waves with disjoint color palettes, so an
				// equality filter from one wave can prune the others' runs.
				palettes := [][]string{
					{"red", "orange"},
					{"green", "teal"},
					{"blue", "violet"},
				}
				for w, pal := range palettes {
					wave := make([]Item, 30)
					for i := range wave {
						wave[i] = item(fmt.Sprintf("w%d_%d", w, i), pal[i%2], 10+w)
					}
					if err := db.UpsertBatch(wave); err != nil {
						t.Fatal(err)
					}
					zoneSealAll(t, perShard)
				}

				// Tombstones and shadows over run-resident rows: pruning
				// must not disturb newest-wins resolution.
				for _, id := range []string{"w0_2", "w1_11", "a7"} {
					if err := db.Delete(id); err != nil {
						t.Fatal(err)
					}
				}
				if err := db.Upsert(item("w2_5", "violet", 99)); err != nil {
					t.Fatal(err)
				}

				// The query battery: seeded vectors across unfiltered,
				// single-equality, OR-of-equalities, unindexed-attr,
				// absent-value, and exact queries.
				type query struct {
					req SearchRequest
				}
				qrng := rand.New(rand.NewSource(99))
				var queries []query
				addQ := func(fs []Filter, exact bool, plan PlanType) {
					queries = append(queries, query{SearchRequest{
						Vector: lsmVec(qrng, 8), K: 12, Filters: fs,
						Exact: exact, Plan: plan, NoCache: true,
					}})
				}
				for i := 0; i < 6; i++ {
					addQ(nil, false, PlanAuto)
					addQ([]Filter{Eq("color", "red")}, false, PlanAuto)
					addQ([]Filter{Eq("color", "teal")}, false, PlanAuto)
					addQ([]Filter{Eq("color", "magenta")}, false, PlanAuto) // absent everywhere
					addQ([]Filter{Eq("cat", 10+i%3)}, false, PlanAuto)
					addQ([]Filter{Any(Eq("color", "orange"), Eq("color", "violet"))}, false, PlanAuto)
					addQ([]Filter{Eq("color", "blue"), Eq("cat", 2)}, false, PlanAuto)
					addQ([]Filter{Eq("note", "n1")}, false, PlanAuto) // unindexed: no pruning
					addQ([]Filter{Eq("color", "red")}, true, PlanAuto)
					// Post-filter pins the partition-scan path so run-zone
					// pruning is exercised even where the optimizer would
					// pick pre-filter (e.g. quantized stores).
					addQ([]Filter{Eq("color", "red")}, false, PlanPostFilter)
					addQ([]Filter{Eq("color", "violet")}, false, PlanPostFilter)
					addQ([]Filter{Eq("cat", 11)}, false, PlanPostFilter)
				}
				gets := []string{"a0", "a7", "w0_2", "w1_3", "w2_5", "absent"}

				run := func() ([]*SearchResponse, []*Item, []error) {
					resps := make([]*SearchResponse, len(queries))
					for i, q := range queries {
						r, err := db.Search(q.req)
						if err != nil {
							t.Fatalf("query %d: %v", i, err)
						}
						resps[i] = r
					}
					items := make([]*Item, len(gets))
					errs := make([]error, len(gets))
					for i, id := range gets {
						items[i], errs[i] = db.Get(id)
					}
					return resps, items, errs
				}

				db.SetZonePruning(true)
				onResps, onItems, onErrs := run()
				stOn, err := db.Stats()
				if err != nil {
					t.Fatal(err)
				}
				db.SetZonePruning(false)
				offResps, offItems, offErrs := run()

				for i := range queries {
					if !reflect.DeepEqual(onResps[i].Results, offResps[i].Results) {
						t.Fatalf("query %d (filters=%+v exact=%v): pruned results differ\n  on:  %+v\n  off: %+v",
							i, queries[i].req.Filters, queries[i].req.Exact,
							onResps[i].Results, offResps[i].Results)
					}
					if on, off := onResps[i].Plan.VectorsScanned, offResps[i].Plan.VectorsScanned; on > off {
						t.Fatalf("query %d: pruning scanned MORE vectors (%d > %d)", i, on, off)
					}
				}
				for i, id := range gets {
					if (onErrs[i] == nil) != (offErrs[i] == nil) {
						t.Fatalf("get %s: err mismatch on=%v off=%v", id, onErrs[i], offErrs[i])
					}
					if onErrs[i] != nil {
						if !errors.Is(onErrs[i], ErrNotFound) || !errors.Is(offErrs[i], ErrNotFound) {
							t.Fatalf("get %s: unexpected errors on=%v off=%v", id, onErrs[i], offErrs[i])
						}
						continue
					}
					if !reflect.DeepEqual(onItems[i], offItems[i]) {
						t.Fatalf("get %s: items differ\n  on:  %+v\n  off: %+v", id, onItems[i], offItems[i])
					}
				}

				// The disjoint palettes guarantee genuine skips: a "red"
				// equality can never hit the green/teal or blue/violet
				// runs' attribute Blooms (false positives aside, three
				// runs x dozens of queries make all-misses vanishing).
				if stOn.Ingest.ZonePruneChecks == 0 {
					t.Fatal("ZonePruneChecks = 0 after filtered searches over sealed runs")
				}
				if stOn.Ingest.ZonePrunedRuns == 0 {
					t.Fatal("ZonePrunedRuns = 0, want pruned run scans with disjoint palettes")
				}
			})
		}
	}
}
