package micronn

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

func openTest(t testing.TB, opts Options) *DB {
	t.Helper()
	if opts.Dim == 0 {
		opts.Dim = 8
	}
	db, err := Open(filepath.Join(t.TempDir(), "test.mnn"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func randomVecs(seed int64, n, dim int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

func TestOpenRequiresDim(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "x.mnn"), Options{}); err == nil {
		t.Error("Open without Dim should fail for a new database")
	}
}

func TestUpsertSearchRoundTrip(t *testing.T) {
	db := openTest(t, Options{Dim: 4})
	if err := db.Upsert(Item{ID: "a", Vector: []float32{1, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(Item{ID: "b", Vector: []float32{0, 1, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	resp, err := db.Search(SearchRequest{Vector: []float32{1, 0.1, 0, 0}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != "a" {
		t.Errorf("results = %+v", resp.Results)
	}
}

func TestGetAndAttributes(t *testing.T) {
	db := openTest(t, Options{
		Dim: 4,
		Attributes: []AttributeDef{
			{Name: "location", Type: AttrText, Indexed: true},
			{Name: "ts", Type: AttrInt},
		},
	})
	err := db.Upsert(Item{
		ID:         "x",
		Vector:     []float32{1, 2, 3, 4},
		Attributes: map[string]any{"location": "Seattle", "ts": 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	item, err := db.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if item.Vector[2] != 3 {
		t.Errorf("vector = %v", item.Vector)
	}
	if item.Attributes["location"] != "Seattle" || item.Attributes["ts"] != int64(42) {
		t.Errorf("attributes = %v", item.Attributes)
	}
	if _, err := db.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v", err)
	}
}

func TestDeleteAndBatch(t *testing.T) {
	db := openTest(t, Options{Dim: 4})
	items := make([]Item, 10)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("i%d", i), Vector: []float32{float32(i), 0, 0, 0}}
	}
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("i3"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("i3"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	if err := db.DeleteBatch([]string{"i4", "i4", "nope"}); err != nil {
		t.Errorf("DeleteBatch with absent ids = %v", err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVectors != 8 {
		t.Errorf("NumVectors = %d, want 8", st.NumVectors)
	}
}

func TestRebuildMaintainFlow(t *testing.T) {
	db := openTest(t, Options{Dim: 8, TargetPartitionSize: 20, Seed: 1, FlushThreshold: 10})
	vecs := randomVecs(1, 300, 8)
	items := make([]Item, len(vecs))
	for i, v := range vecs {
		items[i] = Item{ID: fmt.Sprintf("v%d", i), Vector: v}
	}
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}

	// Maintain on a never-built index performs the initial build.
	rep, err := db.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != "rebuild" {
		t.Errorf("action = %s, want rebuild", rep.Action)
	}
	if rep.Partitions != 15 {
		t.Errorf("partitions = %d, want 15", rep.Partitions)
	}

	// Nothing to do right after a build.
	rep, err = db.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != "none" {
		t.Errorf("action = %s, want none", rep.Action)
	}

	// A dozen inserts exceed FlushThreshold -> incremental flush.
	extra := randomVecs(2, 12, 8)
	for i, v := range extra {
		if err := db.Upsert(Item{ID: fmt.Sprintf("e%d", i), Vector: v}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = db.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != "flush" {
		t.Errorf("action = %s, want flush", rep.Action)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DeltaCount != 0 {
		t.Errorf("delta after flush = %d", st.DeltaCount)
	}
}

func TestHybridFilterAPI(t *testing.T) {
	db := openTest(t, Options{
		Dim: 4, TargetPartitionSize: 10, Seed: 2,
		Attributes: []AttributeDef{
			{Name: "kind", Type: AttrText, Indexed: true},
			{Name: "score", Type: AttrFloat, Indexed: true},
			{Name: "tags", Type: AttrText, FullText: true},
		},
	})
	for i := 0; i < 100; i++ {
		kind := "photo"
		if i%10 == 0 {
			kind = "video"
		}
		err := db.Upsert(Item{
			ID:     fmt.Sprintf("a%d", i),
			Vector: []float32{float32(i), 1, 0, 0},
			Attributes: map[string]any{
				"kind":  kind,
				"score": float64(i) / 100,
				"tags":  fmt.Sprintf("tag%d common", i%5),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}

	q := []float32{50, 1, 0, 0}
	resp, err := db.Search(SearchRequest{
		Vector: q, K: 100,
		Filters: []Filter{Eq("kind", "video")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 10 {
		t.Errorf("video results = %d, want 10", len(resp.Results))
	}

	resp, err = db.Search(SearchRequest{
		Vector: q, K: 100,
		Filters: []Filter{Match("tags", "tag3"), Gt("score", 0.5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Results {
		var id int
		fmt.Sscanf(r.ID, "a%d", &id)
		if id%5 != 3 || id <= 50 {
			t.Errorf("result %s violates filters", r.ID)
		}
	}

	// OR group via Any.
	resp, err = db.Search(SearchRequest{
		Vector: q, K: 100, Exact: true,
		Filters: []Filter{Any(Eq("kind", "video"), Gt("score", 0.95))},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for i := 0; i < 100; i++ {
		if i%10 == 0 || float64(i)/100 > 0.95 {
			want[fmt.Sprintf("a%d", i)] = true
		}
	}
	if len(resp.Results) != len(want) {
		t.Errorf("OR results = %d, want %d", len(resp.Results), len(want))
	}
}

func TestBatchSearchAPI(t *testing.T) {
	db := openTest(t, Options{Dim: 8, TargetPartitionSize: 20, Seed: 3})
	vecs := randomVecs(5, 400, 8)
	items := make([]Item, len(vecs))
	for i, v := range vecs {
		items[i] = Item{ID: fmt.Sprintf("v%d", i), Vector: v}
	}
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	queries := [][]float32{vecs[1], vecs[100], vecs[399]}
	resp, err := db.BatchSearch(BatchSearchRequest{Vectors: queries, K: 5, NProbe: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch results = %d", len(resp.Results))
	}
	for qi, want := range []string{"v1", "v100", "v399"} {
		if resp.Results[qi][0].ID != want {
			t.Errorf("query %d top = %s, want %s", qi, resp.Results[qi][0].ID, want)
		}
	}
	if resp.Info.PartitionScans == 0 || resp.Info.PartitionScans > resp.Info.QueryPartitionPairs {
		t.Errorf("batch info = %+v", resp.Info)
	}
	// Empty batch.
	empty, err := db.BatchSearch(BatchSearchRequest{})
	if err != nil || len(empty.Results) != 0 {
		t.Errorf("empty batch = %+v, %v", empty, err)
	}
}

func TestConcurrentSearchesAndWrites(t *testing.T) {
	db := openTest(t, Options{Dim: 8, TargetPartitionSize: 25, Seed: 4})
	vecs := randomVecs(7, 500, 8)
	items := make([]Item, len(vecs))
	for i, v := range vecs {
		items[i] = Item{ID: fmt.Sprintf("v%d", i), Vector: v}
	}
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				q := vecs[rng.Intn(len(vecs))]
				if _, err := db.Search(SearchRequest{Vector: q, K: 10, NProbe: 4}); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(r))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		extra := randomVecs(9, 50, 8)
		for i, v := range extra {
			if err := db.Upsert(Item{ID: fmt.Sprintf("w%d", i), Vector: v}); err != nil {
				errCh <- err
				return
			}
		}
		if _, err := db.FlushDelta(); err != nil {
			errCh <- err
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVectors != 550 {
		t.Errorf("NumVectors = %d, want 550", st.NumVectors)
	}
}

func TestReopenKeepsEverything(t *testing.T) {
	skipIfEphemeralBackend(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mnn")
	db, err := Open(path, Options{Dim: 4, TargetPartitionSize: 10, Seed: 5,
		Attributes: []AttributeDef{{Name: "k", Type: AttrText, Indexed: true}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		err := db.Upsert(Item{
			ID: fmt.Sprintf("v%d", i), Vector: []float32{float32(i), 0, 0, 0},
			Attributes: map[string]any{"k": fmt.Sprintf("g%d", i%3)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{}) // config restored from disk
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Dim() != 4 {
		t.Errorf("Dim = %d", db2.Dim())
	}
	st, err := db2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVectors != 50 || st.NumPartitions != 5 {
		t.Errorf("stats = %+v", st)
	}
	resp, err := db2.Search(SearchRequest{
		Vector: []float32{7, 0, 0, 0}, K: 3,
		Filters: []Filter{Eq("k", "g1")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || resp.Results[0].ID != "v7" {
		t.Errorf("results = %+v", resp.Results)
	}
}

func TestStatsFields(t *testing.T) {
	db := openTest(t, Options{Dim: 4, Device: DeviceSmall})
	if err := db.Upsert(Item{ID: "a", Vector: []float32{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheBudget != DeviceSmall.CacheBytes {
		t.Errorf("CacheBudget = %d", st.CacheBudget)
	}
	if st.FileBytes == 0 {
		t.Error("FileBytes = 0")
	}
	if st.NumVectors != 1 || st.DeltaCount != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDropCachesThenSearch(t *testing.T) {
	db := openTest(t, Options{Dim: 8, TargetPartitionSize: 10, Seed: 6})
	vecs := randomVecs(11, 200, 8)
	items := make([]Item, len(vecs))
	for i, v := range vecs {
		items[i] = Item{ID: fmt.Sprintf("v%d", i), Vector: v}
	}
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	db.DropCaches() // cold start
	resp, err := db.Search(SearchRequest{Vector: vecs[5], K: 1, NProbe: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != "v5" {
		t.Errorf("cold search = %+v", resp.Results)
	}
}

func TestSQ8OptionEndToEnd(t *testing.T) {
	const dim, n = 16, 400
	db := openTest(t, Options{Dim: dim, TargetPartitionSize: 40, Seed: 9, Quantization: QuantSQ8})
	vecs := randomVecs(42, n, dim)
	items := make([]Item, n)
	for i, v := range vecs {
		items[i] = Item{ID: fmt.Sprintf("v%d", i), Vector: v}
	}
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}

	resp, err := db.Search(SearchRequest{Vector: vecs[7], K: 5, NProbe: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || resp.Results[0].ID != "v7" {
		t.Fatalf("self-query results = %+v", resp.Results)
	}
	if resp.Plan.Reranked == 0 {
		t.Error("quantized search reported no reranked candidates")
	}
	// One byte per dimension scanned (plus the float32 delta, empty here).
	if resp.Plan.BytesScanned >= resp.Plan.VectorsScanned*int64(dim)*4 {
		t.Errorf("BytesScanned %d not reduced for %d scanned vectors", resp.Plan.BytesScanned, resp.Plan.VectorsScanned)
	}

	// Get must return the exact float32 vector despite quantized storage.
	item, err := db.Get("v7")
	if err != nil {
		t.Fatal(err)
	}
	for d := range item.Vector {
		if item.Vector[d] != vecs[7][d] {
			t.Fatalf("Get dim %d = %v, want exact %v", d, item.Vector[d], vecs[7][d])
		}
	}

	// Per-query rerank override, also through a pinned snapshot.
	if _, err := db.Search(SearchRequest{Vector: vecs[3], K: 5, RerankFactor: 10}); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sresp, err := snap.Search(SearchRequest{Vector: vecs[3], K: 5, RerankFactor: 10})
	snap.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sresp.Plan.Reranked != 50 {
		t.Errorf("snapshot Reranked = %d, want 50 (K=5 * RerankFactor=10)", sresp.Plan.Reranked)
	}
	bresp, err := db.BatchSearch(BatchSearchRequest{Vectors: vecs[:8], K: 5, NProbe: 6})
	if err != nil {
		t.Fatal(err)
	}
	for qi, rs := range bresp.Results {
		if len(rs) == 0 || rs[0].ID != fmt.Sprintf("v%d", qi) {
			t.Fatalf("batch query %d results = %+v", qi, rs)
		}
	}
}

func TestSQ8ReopenKeepsCodebook(t *testing.T) {
	skipIfEphemeralBackend(t)
	const dim = 8
	dir := t.TempDir()
	path := filepath.Join(dir, "q.mnn")
	db, err := Open(path, Options{Dim: dim, TargetPartitionSize: 20, Seed: 4, Quantization: QuantSQ8})
	if err != nil {
		t.Fatal(err)
	}
	vecs := randomVecs(77, 100, dim)
	for i, v := range vecs {
		if err := db.Upsert(Item{ID: fmt.Sprintf("v%d", i), Vector: v}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Quantization is restored from disk; RerankFactor is a search-time
	// default and must be honored on reopen.
	db2, err := Open(path, Options{RerankFactor: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	resp, err := db2.Search(SearchRequest{Vector: vecs[13], K: 1, NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || resp.Results[0].ID != "v13" {
		t.Fatalf("post-reopen results = %+v", resp.Results)
	}
	if resp.Plan.Reranked != 8 {
		t.Errorf("Reranked = %d, want 8 (reopen RerankFactor override)", resp.Plan.Reranked)
	}
}
