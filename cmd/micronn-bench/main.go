// Command micronn-bench regenerates the tables and figures of the MicroNN
// paper's evaluation on synthetic workloads.
//
// Usage:
//
//	micronn-bench -exp fig4              # one experiment
//	micronn-bench -exp all -scale 0.02   # everything, 2% of paper scale
//	micronn-bench -list                  # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"micronn/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see -list), or 'all'")
		scale    = flag.Float64("scale", 0.01, "dataset scale relative to the paper (1.0 = full)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: representative set)")
		k        = flag.Int("k", 100, "result list size (paper reports top-100)")
		recall   = flag.Float64("recall", 0.9, "target recall for nprobe selection")
		queries  = flag.Int("queries", 50, "timed queries per configuration")
		dir      = flag.String("dir", "", "scratch directory for database files (default: temp)")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("  %-20s %s\n", e.Name, e.Desc)
		}
		return
	}

	cfg := bench.Config{
		Out:          os.Stdout,
		Scale:        *scale,
		K:            *k,
		TargetRecall: *recall,
		QuerySample:  *queries,
		Dir:          *dir,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	var err error
	if *exp == "all" {
		err = bench.RunAll(cfg)
	} else {
		var e bench.Experiment
		e, err = bench.Lookup(*exp)
		if err == nil {
			err = e.Run(cfg)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "micronn-bench:", err)
		os.Exit(1)
	}
}
