// Command micronn is a small CLI for inspecting and exercising MicroNN
// databases: create an index, load random or CSV vectors, search, and show
// stats. It is a demonstration tool; the library API (package micronn) is
// the product.
//
// Usage:
//
//	micronn -db photos.mnn create -dim 128 -metric L2
//	micronn -db photos.mnn load -n 10000
//	micronn -db photos.mnn rebuild
//	micronn -db photos.mnn search -id v00000042 -k 10
//	micronn -db photos.mnn stats
//
// With create -shards N the path becomes a sharded database directory (one
// independent store per shard plus a topology manifest); every other
// command detects the manifest and routes through the sharded API
// automatically.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"micronn"
	"micronn/internal/storage"
	"micronn/internal/workload"
)

// Exit codes. Each typed library error maps to its own code so scripts can
// branch on the failure class without parsing stderr.
const (
	exitErr         = 1 // untyped failure
	exitUsage       = 2 // bad command line
	exitNotFound    = 3 // micronn.ErrNotFound
	exitBadRequest  = 4 // micronn.ErrBadRequest
	exitDimMismatch = 5 // micronn.ErrDimMismatch
	exitClosed      = 6 // micronn.ErrClosed
)

// exitCode translates a command error into the process exit code.
func exitCode(err error) int {
	switch {
	case errors.Is(err, micronn.ErrNotFound):
		return exitNotFound
	case errors.Is(err, micronn.ErrBadRequest):
		return exitBadRequest
	case errors.Is(err, micronn.ErrDimMismatch):
		return exitDimMismatch
	case errors.Is(err, micronn.ErrClosed):
		return exitClosed
	}
	return exitErr
}

// openDB opens path as a sharded database when it is a directory carrying a
// topology manifest, and as a single-store database otherwise.
func openDB(path string, opts micronn.Options) (micronn.Store, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		if _, ok, err := storage.ReadManifest(path); err != nil {
			return nil, err
		} else if ok {
			return micronn.OpenSharded(path, opts)
		}
	}
	return micronn.Open(path, opts)
}

func main() {
	db := flag.String("db", "micronn.mnn", "database path")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(exitUsage)
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "create":
		err = cmdCreate(*db, rest)
	case "load":
		err = cmdLoad(*db, rest)
	case "rebuild":
		err = cmdRebuild(*db)
	case "flush":
		err = cmdFlush(*db)
	case "maintain":
		err = cmdMaintain(*db, rest)
	case "search":
		err = cmdSearch(*db, rest)
	case "stats":
		err = cmdStats(*db)
	case "delete":
		err = cmdDelete(*db, rest)
	default:
		usage()
		os.Exit(exitUsage)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "micronn:", err)
		os.Exit(exitCode(err))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: micronn -db <path> <command> [flags]

commands:
  create  -dim N [-metric L2|cosine|dot] [-partition-size N]
          [-quant none|sq8|sq4] [-clip P] [-shards N] [-backend file|mmap|memory]
  load    [-n N] [-seed N] [-lsm]   load N random vectors (ids vNNNNNNNN);
                                    -lsm routes writes through the memtable
                                    group-commit path
  rebuild                           full index rebuild
  flush                             incremental delta flush
  maintain [-flush-threshold N] [-min N] [-max N] [-watch D]
                                    incremental maintenance: flush the delta,
                                    split/merge partitions outside [min, max];
                                    -watch repeats every interval (e.g. 5s)
  search  -id <asset> | -vec "f,f,..."  [-k N] [-nprobe N] [-exact] [-rerank N]
          [-repeat N] [-no-cache]       -repeat re-runs the query (repeats hit
                                        the result cache; -no-cache bypasses it)
          [-text "query"] [-text-col C] [-fusion K]
                                        -text adds a BM25 lexical leg fused
                                        with the vector leg by reciprocal-rank
                                        fusion (constant K, default 60);
                                        -text-col picks the full-text attribute
  delete  -id <asset>
  stats

exit codes: 1 error, 2 usage, 3 not found, 4 bad request, 5 dimension
mismatch, 6 database closed`)
}

func cmdCreate(path string, args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	dim := fs.Int("dim", 0, "vector dimensionality (required)")
	metric := fs.String("metric", "L2", "distance metric: L2, cosine, dot")
	partSize := fs.Int("partition-size", 100, "target IVF partition size")
	quantName := fs.String("quant", "none", "partition-scan quantization: none, sq8, sq4")
	clip := fs.Float64("clip", 0, "codebook quantile clip percentile (0 = scheme default; sq4 defaults to 0.005)")
	shards := fs.Int("shards", 0, "hash-partition across N independent stores (path becomes a directory)")
	backendName := fs.String("backend", "", "page-store backend: file (default), mmap, memory; recorded in the store for reopen")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dim <= 0 {
		return fmt.Errorf("create: -dim is required")
	}
	var m micronn.Metric
	switch strings.ToLower(*metric) {
	case "l2":
		m = micronn.L2
	case "cosine":
		m = micronn.Cosine
	case "dot":
		m = micronn.Dot
	default:
		return fmt.Errorf("create: unknown metric %q", *metric)
	}
	q, err := micronn.ParseQuantization(strings.ToLower(*quantName))
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	backend, err := micronn.ParseBackend(strings.ToLower(*backendName))
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	if backend == micronn.BackendMemory {
		fmt.Fprintln(os.Stderr, "note: the memory backend is ephemeral; the database vanishes when this command exits")
	}
	opts := micronn.Options{Dim: *dim, Metric: m, TargetPartitionSize: *partSize, Quantization: q, ClipPercentile: *clip, Backend: backend}
	if *shards > 0 {
		opts.Shards = *shards
		sd, err := micronn.OpenSharded(path, opts)
		if err != nil {
			return err
		}
		defer sd.Close()
		st, err := sd.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("created %s (dim=%d, metric=%s, quant=%s, shards=%d, backend=%s)\n", path, *dim, *metric, st.Quantization, *shards, st.Backend)
		return nil
	}
	d, err := micronn.Open(path, opts)
	if err != nil {
		return err
	}
	defer d.Close()
	st, err := d.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("created %s (dim=%d, metric=%s, quant=%s, backend=%s)\n", path, *dim, *metric, st.Quantization, st.Backend)
	return nil
}

func cmdLoad(path string, args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	n := fs.Int("n", 10000, "number of random vectors")
	seed := fs.Int64("seed", 1, "random seed")
	lsm := fs.Bool("lsm", false, "route writes through the LSM memtable / group-commit path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := openDB(path, micronn.Options{LSMIngest: *lsm})
	if err != nil {
		return err
	}
	defer d.Close()
	dim := d.Dim()
	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	const chunk = 1000
	items := make([]micronn.Item, 0, chunk)
	for i := 0; i < *n; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: v})
		if len(items) == chunk || i == *n-1 {
			if err := d.UpsertBatch(items); err != nil {
				return err
			}
			items = items[:0]
		}
	}
	fmt.Printf("loaded %d vectors in %v\n", *n, time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdRebuild(path string) error {
	d, err := openDB(path, micronn.Options{})
	if err != nil {
		return err
	}
	defer d.Close()
	rep, err := d.Rebuild()
	if err != nil {
		return err
	}
	fmt.Printf("rebuilt: %d partitions, %d vectors assigned, %d row changes, %v\n",
		rep.Partitions, rep.VectorsAssigned, rep.RowChanges, rep.Duration.Round(time.Millisecond))
	return nil
}

func cmdFlush(path string) error {
	d, err := openDB(path, micronn.Options{})
	if err != nil {
		return err
	}
	defer d.Close()
	rep, err := d.FlushDelta()
	if err != nil {
		return err
	}
	fmt.Printf("flushed: %d vectors assigned, %d row changes, %v\n",
		rep.VectorsAssigned, rep.RowChanges, rep.Duration.Round(time.Millisecond))
	return nil
}

func cmdMaintain(path string, args []string) error {
	fs := flag.NewFlagSet("maintain", flag.ExitOnError)
	flush := fs.Int("flush-threshold", 0, "flush the delta at this size (0 = partition target)")
	min := fs.Int("min", 0, "merge partitions smaller than this (0 = target/4)")
	max := fs.Int("max", 0, "split partitions larger than this (0 = 2*target)")
	watch := fs.Duration("watch", 0, "repeat maintenance on this interval until interrupted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := openDB(path, micronn.Options{
		FlushThreshold:   *flush,
		MinPartitionSize: *min,
		MaxPartitionSize: *max,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	for {
		rep, err := d.Maintain()
		if err != nil {
			return err
		}
		st, err := d.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("maintain: %s (%d steps: %d compact, %d flush, %d split, %d merge, %d rebuild), %d rows changed, %v; %d partitions sized [%d, %d]\n",
			rep.Action, rep.Steps, rep.Compactions, rep.Flushes, rep.Splits, rep.Merges, rep.Rebuilds,
			rep.RowChanges, rep.Duration.Round(time.Millisecond),
			st.NumPartitions, st.SmallestPartition, st.LargestPartition)
		if *watch <= 0 {
			return nil
		}
		time.Sleep(*watch)
	}
}

func cmdSearch(path string, args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	id := fs.String("id", "", "search near the vector of this asset id")
	vecStr := fs.String("vec", "", "comma-separated query vector")
	k := fs.Int("k", 10, "result count")
	nprobe := fs.Int("nprobe", 8, "partitions to scan")
	exact := fs.Bool("exact", false, "exhaustive KNN")
	rerank := fs.Int("rerank", 0, "quantized-search rerank multiplier (0 = default)")
	repeat := fs.Int("repeat", 1, "run the query N times (repeats are served by the result cache)")
	noCache := fs.Bool("no-cache", false, "bypass the result cache (every run scans the store)")
	text := fs.String("text", "", "lexical query: fuse a BM25 full-text leg with the vector leg")
	textCol := fs.String("text-col", "", "full-text attribute for -text (default: the store's only one)")
	fusion := fs.Int("fusion", 0, "reciprocal-rank fusion constant (0 = default 60)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := openDB(path, micronn.Options{ResultCache: micronn.ResultCacheOptions{Enabled: true}})
	if err != nil {
		return err
	}
	defer d.Close()

	var q []float32
	switch {
	case *id != "":
		item, err := d.Get(*id)
		if err != nil {
			return err
		}
		q = item.Vector
	case *vecStr != "":
		for _, f := range strings.Split(*vecStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
			if err != nil {
				return fmt.Errorf("search: bad vector component %q", f)
			}
			q = append(q, float32(v))
		}
	default:
		return fmt.Errorf("search: -id or -vec required")
	}

	if *repeat < 1 {
		*repeat = 1
	}
	var plan micronn.PlanInfo
	var nResults int
	var elapsed, firstRun time.Duration
	if *text != "" {
		req := micronn.HybridRequest{Vector: q, Text: *text, TextCol: *textCol, FusionK: *fusion,
			K: *k, NProbe: *nprobe, Exact: *exact, RerankFactor: *rerank, NoCache: *noCache}
		var resp *micronn.HybridResponse
		for run := 0; run < *repeat; run++ {
			start := time.Now()
			resp, err = d.HybridSearch(req)
			if err != nil {
				return err
			}
			elapsed = time.Since(start)
			if run == 0 {
				firstRun = elapsed
			}
		}
		for i, r := range resp.Results {
			fmt.Printf("%2d. %-16s score %.6f  dist %.6f  bm25 %.4f  (v#%d t#%d)\n",
				i+1, r.ID, r.Score, r.Distance, r.TextScore, r.VectorRank, r.TextRank)
		}
		plan, nResults = resp.Plan, len(resp.Results)
	} else {
		req := micronn.SearchRequest{Vector: q, K: *k, NProbe: *nprobe, Exact: *exact, RerankFactor: *rerank, NoCache: *noCache}
		var resp *micronn.SearchResponse
		for run := 0; run < *repeat; run++ {
			start := time.Now()
			resp, err = d.Search(req)
			if err != nil {
				return err
			}
			elapsed = time.Since(start)
			if run == 0 {
				firstRun = elapsed
			}
		}
		for i, r := range resp.Results {
			fmt.Printf("%2d. %-16s %.6f\n", i+1, r.ID, r.Distance)
		}
		plan, nResults = resp.Plan, len(resp.Results)
	}
	fmt.Printf("(%d results in %v, %d partitions, %d vectors scanned, %d KiB read, %d reranked)\n",
		nResults, elapsed.Round(time.Microsecond),
		plan.PartitionsScanned, plan.VectorsScanned,
		plan.BytesScanned/1024, plan.Reranked)
	if *repeat > 1 {
		st, err := d.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("(%d runs: first %v, last %v; cache %d hits / %d misses)\n",
			*repeat, firstRun.Round(time.Microsecond), elapsed.Round(time.Microsecond),
			st.Cache.Hits, st.Cache.Misses)
	}
	return nil
}

func cmdDelete(path string, args []string) error {
	fs := flag.NewFlagSet("delete", flag.ExitOnError)
	id := fs.String("id", "", "asset id to delete")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("delete: -id required")
	}
	d, err := openDB(path, micronn.Options{})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Delete(*id); err != nil {
		return err
	}
	fmt.Printf("deleted %s\n", *id)
	return nil
}

func cmdStats(path string) error {
	d, err := openDB(path, micronn.Options{})
	if err != nil {
		return err
	}
	defer d.Close()
	// On a sharded database collect the per-shard stats once and aggregate
	// locally, so the totals and the breakdown describe the same pass.
	var st micronn.Stats
	var perShard []micronn.Stats
	sd, sharded := d.(*micronn.ShardedDB)
	if sharded {
		if perShard, err = sd.ShardStats(); err != nil {
			return err
		}
		st = micronn.AggregateStats(perShard)
		// The result cache lives at the router, not in any shard.
		st.Cache = sd.ResultCacheStats()
	} else if st, err = d.Stats(); err != nil {
		return err
	}
	fmt.Printf("vectors:          %d\n", st.NumVectors)
	fmt.Printf("delta-store:      %d\n", st.DeltaCount)
	fmt.Printf("partitions:       %d (avg size %.1f)\n", st.NumPartitions, st.AvgPartitionSize)
	fmt.Printf("needs rebuild:    %v\n", st.NeedsRebuild)
	fmt.Printf("backend:          %s\n", st.Backend)
	if st.Quantization == micronn.QuantNone {
		fmt.Printf("quantization:     none\n")
	} else if st.ClipPercentile > 0 {
		fmt.Printf("quantization:     %s (clip percentile %g)\n", st.Quantization, st.ClipPercentile)
	} else {
		fmt.Printf("quantization:     %s\n", st.Quantization)
	}
	hitRatio := 0.0
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		hitRatio = 100 * float64(st.CacheHits) / float64(total)
	}
	fmt.Printf("page cache:       %.1f / %.1f MiB (hit ratio %.1f%%: %d hits, %d misses, %d evictions)\n",
		float64(st.CacheBytes)/(1<<20), float64(st.CacheBudget)/(1<<20),
		hitRatio, st.CacheHits, st.CacheMisses, st.CacheEvictions)
	if c := st.Cache; c.Enabled {
		fmt.Printf("result cache:     %d entries, %.1f KiB (hit ratio %.1f%%: %d hits, %d misses, %d invalidations, %d evictions, %d shard scans skipped)\n",
			c.Entries, float64(c.Bytes)/(1<<10), 100*c.HitRatio(),
			c.Hits, c.Misses, c.Invalidations, c.Evictions, c.SkippedShardScans)
	} else {
		fmt.Printf("result cache:     disabled\n")
	}
	if in := st.Ingest; in.Enabled {
		avgGroup := 0.0
		if in.GroupCommits > 0 {
			avgGroup = float64(in.GroupedOps) / float64(in.GroupCommits)
		}
		fmt.Printf("lsm ingest:       %d ops in %d group commits (avg %.1f, max %d), %d seals (%d rows)\n",
			in.GroupedOps, in.GroupCommits, avgGroup, in.MaxGroupSize, in.Seals, in.SealedRows)
		if in.SealFailures > 0 {
			fmt.Printf("  seal failures:  %d (last: %s)\n", in.SealFailures, in.LastSealError)
		}
		fmt.Printf("  sorted runs:    %d runs, %d live rows, %d tombstones, %d unmerged\n",
			in.RunCount, in.RunRows, in.TombstoneRows, in.UnmergedItems)
		fmt.Printf("  backpressure:   %d triggers, %d hard-limit waits (%.1f ms total)\n",
			in.BackpressureTriggers, in.BackpressureWaits, float64(in.BackpressureWaitNs)/1e6)
	}
	if in := st.Ingest; in.ZonePruneChecks > 0 {
		fmt.Printf("zone pruning:     %d run scans skipped across %d checks\n",
			in.ZonePrunedRuns, in.ZonePruneChecks)
	}
	if m := st.Maintenance; m.Passes > 0 {
		fmt.Printf("maintenance:      %d passes (%d flush, %d split, %d merge, %d compact, %d rebuild), %d stale retries, %d errors, %d row changes\n",
			m.Passes, m.Flushes, m.Splits, m.Merges, m.Compactions, m.Rebuilds, m.StaleRetries, m.Errors, m.RowChanges)
	}
	fmt.Printf("writer gate:      %d waits (%.1f ms total)\n",
		st.GateWaits, float64(st.GateWaitNs)/1e6)
	fmt.Printf("file size:        %.1f MiB (WAL %.1f MiB)\n",
		float64(st.FileBytes)/(1<<20), float64(st.WALBytes)/(1<<20))
	if sharded {
		fmt.Printf("shards:           %d (hash seed %d)\n", sd.Shards(), sd.Manifest().HashSeed)
		for i, s := range perShard {
			fmt.Printf("  shard %03d:      %d vectors (%d delta), %d partitions, %.1f MiB\n",
				i, s.NumVectors, s.DeltaCount, s.NumPartitions, float64(s.FileBytes)/(1<<20))
		}
	}
	return nil
}
