package main

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"micronn"
	"micronn/internal/storage"
	"micronn/internal/storage/storagetest"
)

// skipIfEphemeralBackend: every CLI command opens the database anew, so a
// multi-command workflow needs persistence between invocations. Under the
// MICRONN_TEST_BACKEND=memory matrix leg these workflows are skipped
// explicitly (the memory backend discards the store at command exit).
func skipIfEphemeralBackend(t *testing.T) {
	storagetest.SkipIfEphemeral(t)
}

func TestCLIWorkflow(t *testing.T) {
	skipIfEphemeralBackend(t)
	db := filepath.Join(t.TempDir(), "cli.mnn")

	if err := cmdCreate(db, []string{"-dim", "16", "-metric", "L2", "-partition-size", "50"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := cmdLoad(db, []string{"-n", "500", "-seed", "7"}); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := cmdRebuild(db); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if err := cmdSearch(db, []string{"-id", "v00000042", "-k", "5"}); err != nil {
		t.Fatalf("search by id: %v", err)
	}
	if err := cmdSearch(db, []string{"-vec", "1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0", "-k", "3", "-exact"}); err != nil {
		t.Fatalf("search by vector: %v", err)
	}
	if err := cmdStats(db); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := cmdDelete(db, []string{"-id", "v00000042"}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := cmdDelete(db, []string{"-id", "v00000042"}); err == nil {
		t.Fatal("double delete should fail")
	}
	if err := cmdFlush(db); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Load past the split bound and let incremental maintenance absorb it.
	if err := cmdLoad(db, []string{"-n", "800", "-seed", "9"}); err != nil {
		t.Fatalf("load more: %v", err)
	}
	if err := cmdMaintain(db, []string{"-flush-threshold", "50", "-max", "100"}); err != nil {
		t.Fatalf("maintain: %v", err)
	}
}

// TestCLIShardedWorkflow drives every command against a sharded database
// directory: create -shards writes the manifest, and all later commands
// detect it and route through the sharded API.
func TestCLIShardedWorkflow(t *testing.T) {
	skipIfEphemeralBackend(t)
	db := filepath.Join(t.TempDir(), "cli.d")

	if err := cmdCreate(db, []string{"-dim", "16", "-partition-size", "50", "-shards", "3"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := cmdLoad(db, []string{"-n", "600", "-seed", "7"}); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := cmdRebuild(db); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if err := cmdSearch(db, []string{"-id", "v00000042", "-k", "5"}); err != nil {
		t.Fatalf("search by id: %v", err)
	}
	if err := cmdStats(db); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := cmdDelete(db, []string{"-id", "v00000042"}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := cmdDelete(db, []string{"-id", "v00000042"}); err == nil {
		t.Fatal("double delete should fail")
	}
	if err := cmdMaintain(db, []string{"-flush-threshold", "50", "-max", "100"}); err != nil {
		t.Fatalf("maintain: %v", err)
	}
}

// TestCLIBackendWorkflow creates an mmap-backed database and drives the
// usual commands against it: every later command must auto-detect the
// backend from the store header (no flag needed after create).
func TestCLIBackendWorkflow(t *testing.T) {
	skipIfEphemeralBackend(t)
	if !storage.MmapSupported() {
		t.Skip("mmap backend not supported on this platform")
	}
	db := filepath.Join(t.TempDir(), "cli-mmap.mnn")
	if err := cmdCreate(db, []string{"-dim", "16", "-backend", "mmap", "-partition-size", "50"}); err != nil {
		t.Fatalf("create -backend mmap: %v", err)
	}
	if err := cmdLoad(db, []string{"-n", "400", "-seed", "3"}); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := cmdRebuild(db); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if err := cmdSearch(db, []string{"-id", "v00000007", "-k", "5"}); err != nil {
		t.Fatalf("search: %v", err)
	}
	if err := cmdStats(db); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := cmdCreate(db, []string{"-dim", "16", "-backend", "tape"}); err == nil {
		t.Error("create with unknown backend should fail")
	}
}

func TestCLIValidation(t *testing.T) {
	db := filepath.Join(t.TempDir(), "v.mnn")
	if err := cmdCreate(db, nil); err == nil {
		t.Error("create without -dim should fail")
	}
	if err := cmdCreate(db, []string{"-dim", "4", "-metric", "bogus"}); err == nil {
		t.Error("create with bad metric should fail")
	}
	if err := cmdCreate(db, []string{"-dim", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSearch(db, []string{"-k", "3"}); err == nil {
		t.Error("search without -id/-vec should fail")
	}
	if err := cmdSearch(db, []string{"-vec", "1,oops", "-k", "3"}); err == nil {
		t.Error("search with bad vector should fail")
	}
	if err := cmdDelete(db, nil); err == nil {
		t.Error("delete without -id should fail")
	}
}

// TestExitCodes pins the CLI contract: each typed sentinel maps to its own
// process exit code so scripts can branch on the failure class.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{micronn.ErrNotFound, exitNotFound},
		{micronn.ErrBadRequest, exitBadRequest},
		{micronn.ErrDimMismatch, exitDimMismatch},
		{micronn.ErrClosed, exitClosed},
		{fmt.Errorf("wrapped: %w", micronn.ErrNotFound), exitNotFound},
		{fmt.Errorf("vector has dim 2, index has 4: %w", micronn.ErrDimMismatch), exitDimMismatch},
		{errors.New("plain failure"), exitErr},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestCLIQuantFlags drives create -quant sq4 -clip end to end and checks
// that stats surfaces the scheme.
func TestCLIQuantFlags(t *testing.T) {
	skipIfEphemeralBackend(t)
	db := filepath.Join(t.TempDir(), "q.mnn")
	if err := cmdCreate(db, []string{"-dim", "8", "-quant", "sq4", "-clip", "0.01"}); err != nil {
		t.Fatalf("create -quant sq4: %v", err)
	}
	if err := cmdLoad(db, []string{"-n", "100", "-seed", "3"}); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := cmdStats(db); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := cmdCreate(filepath.Join(t.TempDir(), "bad.mnn"), []string{"-dim", "8", "-quant", "sq2"}); err == nil {
		t.Error("create with unknown -quant should fail")
	}
}
