package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: micronn
BenchmarkFig4WarmCacheSearch-8   	       3	  12345678 ns/op
BenchmarkQuantSQ8Search-8        	       1	    904321 ns/op	    456789 scan-bytes/op
BenchmarkMaintenanceEpoch-8      	       1	   3578781 ns/op	         0.998 recall@10	       410.0 row-changes/op	         5.687 search-p99-ms
BenchmarkAblationBalancePenalty/penalty=1e-09	       1	  99 ns/op	 12.5 size-variance
PASS
ok  	micronn	0.7s
`
	got, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	warm := got["Fig4WarmCacheSearch-8"]
	if warm.Iters != 3 || warm.NsPerOp != 12345678 {
		t.Errorf("warm = %+v", warm)
	}
	sq8 := got["QuantSQ8Search-8"]
	if sq8.Metrics["scan-bytes/op"] != 456789 {
		t.Errorf("sq8 metrics = %+v", sq8.Metrics)
	}
	maint := got["MaintenanceEpoch-8"]
	if maint.Metrics["recall@10"] != 0.998 || maint.Metrics["search-p99-ms"] != 5.687 {
		t.Errorf("maint metrics = %+v", maint.Metrics)
	}
	if _, ok := got["AblationBalancePenalty/penalty=1e-09"]; !ok {
		t.Errorf("sub-benchmark name not preserved verbatim: %v", got)
	}
}

func TestParseRejectsGarbageMetric(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8  1  oops ns/op\n")); err == nil {
		t.Error("garbage metric value should fail")
	}
}
