// Command benchjson converts `go test -bench` text output into the
// BENCH_*.json trajectory format the ROADMAP tracks across PRs: one JSON
// object per benchmark with its ns/op and every custom metric the
// benchmark reported (recall@10, scan-bytes/op, search-p99-ms, ...).
//
//	go test -bench=. -benchtime=1x -run '^$' -short ./... | tee bench-output.txt
//	go run ./cmd/benchjson -in bench-output.txt -out BENCH_PR2.json
//
// Map keys serialize sorted, so the output is deterministic and diffs
// stay readable as the trajectory accumulates.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's numbers.
type Entry struct {
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Output is the BENCH_*.json document.
type Output struct {
	Schema     string           `json:"schema"`
	Source     string           `json:"source"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8  <iters>  <pairs...>" where pairs are
// "<value> <unit>" groups separated by tabs/spaces. Names are kept
// verbatim (including any -N GOMAXPROCS suffix): stripping it is ambiguous
// for sub-benchmarks like "penalty=1e-09".
var benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+(\d+)\s+(.+)$`)

func parse(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Iters: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad metric value %q", m[1], fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				e.NsPerOp = val
				continue
			}
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = val
		}
		out[m[1]] = e
	}
	return out, sc.Err()
}

func run(in, out string) error {
	var r io.Reader = os.Stdin
	source := "stdin"
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
		source = in
	}
	benches, err := parse(r)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", source)
	}
	doc := Output{Schema: "micronn-bench-v1", Source: source, Benchmarks: benches}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(out, blob, 0o644)
}

func main() {
	in := flag.String("in", "", "benchmark output file (default: stdin)")
	out := flag.String("out", "", "JSON output file (default: stdout)")
	flag.Parse()
	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
