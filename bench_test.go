// Benchmarks mapping to the paper's tables and figures (see DESIGN.md §4
// for the experiment index). Each BenchmarkFigN exercises the code path
// behind that figure with a small, fixed workload so `go test -bench=.`
// stays fast; the full parameter sweeps with printed tables live in
// cmd/micronn-bench.
package micronn_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"micronn"
	"micronn/internal/clustering"
	"micronn/internal/ivf"
	"micronn/internal/storage"
	"micronn/internal/topk"
	"micronn/internal/vec"
	"micronn/internal/workload"
)

// benchScale keeps benchmark datasets small; the shapes (not absolute
// numbers) are what map to the paper.
const benchScale = 0.002

// sharedDB lazily builds one SIFT-scaled database reused by the query-path
// benchmarks.
var (
	sharedOnce sync.Once
	sharedDB   *micronn.DB
	sharedDS   *workload.Dataset
	sharedErr  error
)

func sharedSetup(b *testing.B) (*micronn.DB, *workload.Dataset) {
	b.Helper()
	sharedOnce.Do(func() {
		spec, err := workload.ByName("SIFT")
		if err != nil {
			sharedErr = err
			return
		}
		spec = spec.Scaled(benchScale)
		sharedDS = spec.Generate()
		dir, err := os.MkdirTemp("", "micronn-bench-*")
		if err != nil {
			sharedErr = err
			return
		}
		sharedDB, sharedErr = buildBenchDB(filepath.Join(dir, "shared.mnn"), sharedDS, micronn.Options{
			Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
		})
	})
	if sharedErr != nil {
		b.Fatal(sharedErr)
	}
	return sharedDB, sharedDS
}

func buildBenchDB(path string, ds *workload.Dataset, opts micronn.Options) (*micronn.DB, error) {
	db, err := micronn.Open(path, opts)
	if err != nil {
		return nil, err
	}
	items := make([]micronn.Item, 0, 2000)
	for i := 0; i < ds.Train.Rows; i++ {
		items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		if len(items) == cap(items) || i == ds.Train.Rows-1 {
			if err := db.UpsertBatch(items); err != nil {
				db.Close()
				return nil, err
			}
			items = items[:0]
		}
	}
	if _, err := db.Rebuild(); err != nil {
		db.Close()
		return nil, err
	}
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// --- Figure 4: query latency (InMemory / WarmCache / ColdStart) ---

func BenchmarkFig4WarmCacheSearch(b *testing.B) {
	db, ds := sharedSetup(b)
	// Warm the caches.
	for i := 0; i < 8; i++ {
		if _, err := db.Search(micronn.SearchRequest{Vector: ds.Queries.Row(i), K: 100, NProbe: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Queries.Row(i % ds.Queries.Rows)
		if _, err := db.Search(micronn.SearchRequest{Vector: q, K: 100, NProbe: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4ColdStartSearch(b *testing.B) {
	db, ds := sharedSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db.DropCaches()
		b.StartTimer()
		q := ds.Queries.Row(i % ds.Queries.Rows)
		if _, err := db.Search(micronn.SearchRequest{Vector: q, K: 100, NProbe: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4InMemorySearch(b *testing.B) {
	_, ds := sharedSetup(b)
	assets := make([]string, ds.Train.Rows)
	for i := range assets {
		assets[i] = workload.AssetID(i)
	}
	mem, err := ivf.BuildMemIndex(ivf.MemIndexConfig{
		Metric: ds.Spec.Metric, TargetPartitionSize: 100, Seed: 1,
	}, ds.Train, assets)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Queries.Row(i % ds.Queries.Rows)
		if _, err := mem.Search(q, 100, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: index construction ---

func BenchmarkFig6ConstructionMicroNN(b *testing.B) {
	spec, err := workload.ByName("SIFT")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := buildBenchDB(filepath.Join(dir, fmt.Sprintf("c%d.mnn", i)), ds, micronn.Options{
			Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

func BenchmarkFig6ConstructionInMemory(b *testing.B) {
	spec, err := workload.ByName("SIFT")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	assets := make([]string, ds.Train.Rows)
	for i := range assets {
		assets[i] = workload.AssetID(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ivf.BuildMemIndex(ivf.MemIndexConfig{
			Metric: spec.Metric, TargetPartitionSize: 100, Seed: int64(i),
		}, ds.Train, assets); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: hybrid plans ---

var (
	hybridOnce sync.Once
	hybridDB   *micronn.DB
	hybridFD   *workload.FilteredDataset
	hybridErr  error
)

func hybridSetup(b *testing.B) (*micronn.DB, *workload.FilteredDataset) {
	b.Helper()
	hybridOnce.Do(func() {
		fd := workload.GenerateFiltered(workload.FilteredSpec{
			Dim: 32, NumVectors: 8000, NumQueries: 50, Seed: 9,
		})
		hybridFD = fd
		dir, err := os.MkdirTemp("", "micronn-hybrid-*")
		if err != nil {
			hybridErr = err
			return
		}
		db, err := micronn.Open(filepath.Join(dir, "h.mnn"), micronn.Options{
			Dim: fd.Spec.Dim, Metric: micronn.Cosine, TargetPartitionSize: 100, Seed: 9,
			Attributes: []micronn.AttributeDef{{Name: "tags", Type: micronn.AttrText, FullText: true}},
		})
		if err != nil {
			hybridErr = err
			return
		}
		items := make([]micronn.Item, 0, 1000)
		for i := 0; i < fd.Train.Rows; i++ {
			items = append(items, micronn.Item{
				ID: workload.AssetID(i), Vector: fd.Train.Row(i),
				Attributes: map[string]any{"tags": fd.Tags[i]},
			})
			if len(items) == cap(items) || i == fd.Train.Rows-1 {
				if err := db.UpsertBatch(items); err != nil {
					hybridErr = err
					return
				}
				items = items[:0]
			}
		}
		if _, err := db.Rebuild(); err != nil {
			hybridErr = err
			return
		}
		hybridDB = db
	})
	if hybridErr != nil {
		b.Fatal(hybridErr)
	}
	return hybridDB, hybridFD
}

func benchHybridPlan(b *testing.B, plan micronn.PlanType) {
	db, fd := hybridSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % fd.Queries.Rows
		_, err := db.Search(micronn.SearchRequest{
			Vector: fd.Queries.Row(qi), K: 100, NProbe: 8,
			Filters: []micronn.Filter{micronn.Match("tags", fd.QueryTags[qi])},
			Plan:    plan,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7PreFilter(b *testing.B)  { benchHybridPlan(b, micronn.PlanPreFilter) }
func BenchmarkFig7PostFilter(b *testing.B) { benchHybridPlan(b, micronn.PlanPostFilter) }
func BenchmarkFig7Optimizer(b *testing.B)  { benchHybridPlan(b, micronn.PlanAuto) }

// --- Figure 8: mini-batch k-means trainer ---

func benchMiniBatch(b *testing.B, batchFrac float64) {
	spec, err := workload.ByName("InternalA")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	batch := int(float64(ds.Train.Rows) * batchFrac)
	if batch < 8 {
		batch = 8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := clustering.MiniBatchKMeans(clustering.Config{
			TargetClusterSize: 100, BatchSize: batch, Metric: spec.Metric, Seed: int64(i),
		}, clustering.MatrixSource{M: ds.Train})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8MiniBatch1pct(b *testing.B)   { benchMiniBatch(b, 0.01) }
func BenchmarkFig8MiniBatch100pct(b *testing.B) { benchMiniBatch(b, 1.0) }

// --- Figure 9: batch search (MQO) ---

func benchBatchSearch(b *testing.B, batchSize int) {
	db, ds := sharedSetup(b)
	vecs := make([][]float32, batchSize)
	for i := range vecs {
		vecs[i] = ds.Queries.Row(i % ds.Queries.Rows)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.BatchSearch(micronn.BatchSearchRequest{Vectors: vecs, K: 100, NProbe: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchSize)/1e6, "ms/query")
}

func BenchmarkFig9Batch1(b *testing.B)   { benchBatchSearch(b, 1) }
func BenchmarkFig9Batch64(b *testing.B)  { benchBatchSearch(b, 64) }
func BenchmarkFig9Batch512(b *testing.B) { benchBatchSearch(b, 512) }

// --- Figure 10: maintenance ---

func BenchmarkFig10FullRebuild(b *testing.B) {
	spec, err := workload.ByName("InternalA")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	db, err := buildBenchDB(filepath.Join(b.TempDir(), "f10.mnn"), ds, micronn.Options{
		Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Rebuild(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10IncrementalFlush(b *testing.B) {
	spec, err := workload.ByName("InternalA")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	db, err := buildBenchDB(filepath.Join(b.TempDir(), "f10i.mnn"), ds, micronn.Options{
		Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	// Per iteration: insert a 3% epoch then flush it incrementally.
	epoch := ds.Train.Rows * 3 / 100
	if epoch < 1 {
		epoch = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		items := make([]micronn.Item, epoch)
		for j := range items {
			items[j] = micronn.Item{ID: fmt.Sprintf("new-%d-%d", i, j), Vector: ds.Train.Row(j)}
		}
		if err := db.UpsertBatch(items); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := db.FlushDelta(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

func BenchmarkAblationClusteredScan(b *testing.B) {
	db, _ := sharedSetup(b)
	ix := db.InternalIndex()
	store := db.InternalStore()
	rt, err := store.BeginRead()
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	parts, err := ix.PartitionIDs(rt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		part := parts[i%len(parts)]
		err := ix.ScanPartition(rt, part, func(vid int64, blob []byte) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if n == 0 {
		b.Fatal("scanned nothing")
	}
}

func BenchmarkAblationRandomLookups(b *testing.B) {
	db, ds := sharedSetup(b)
	ix := db.InternalIndex()
	store := db.InternalStore()
	rt, err := store.BeginRead()
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	// One benchmark op = fetching as many vectors as one partition scan
	// touches (~TargetPartitionSize), but by random vid.
	per := 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < per; j++ {
			vid := int64((i*per + j) % ds.Train.Rows)
			if _, err := ix.FetchVector(rt, vid); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationBalancePenalty(b *testing.B) {
	spec, err := workload.ByName("SIFT")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	for _, penalty := range []float32{1e-9, 0.12} {
		b.Run(fmt.Sprintf("penalty=%g", penalty), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := clustering.MiniBatchKMeans(clustering.Config{
					TargetClusterSize: 100, BalancePenalty: penalty,
					Metric: spec.Metric, Seed: int64(i),
				}, clustering.MatrixSource{M: ds.Train})
				if err != nil {
					b.Fatal(err)
				}
				// Report partition-size stddev as the quality metric.
				counts := make([]int, res.Centroids.Rows)
				scratch := make([]float32, res.Centroids.Rows)
				for v := 0; v < ds.Train.Rows; v++ {
					counts[clustering.Assign(spec.Metric, res.Centroids, ds.Train.Row(v), scratch)]++
				}
				mean := float64(ds.Train.Rows) / float64(len(counts))
				var varSum float64
				for _, c := range counts {
					d := float64(c) - mean
					varSum += d * d
				}
				b.ReportMetric(varSum/float64(len(counts)), "size-variance")
			}
		})
	}
}

// --- Concurrency: search availability during partition splits ---

// BenchmarkSearchDuringSplits measures the search tail while a maintenance
// stream flushes the delta and splits oversized partitions concurrently.
// With partition-granular write locking each split transaction excludes
// searches only from the partitions it rewrites — never from the whole
// store — so split-p99-ms should track idle-p99-ms. One iteration runs
// both measurement windows on a fresh database and reports the percentiles
// as custom metrics for the BENCH_* trajectory.
func BenchmarkSearchDuringSplits(b *testing.B) {
	spec, err := workload.ByName("InternalA")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	n := ds.Train.Rows
	bootstrap := n / 2

	pctMs := func(durs []time.Duration, pct int) float64 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return float64(durs[len(durs)*pct/100]) / 1e6
	}
	// The searcher is paced: a closed loop with a short think time, like an
	// interactive client. An unpaced tight loop would saturate the CPU and
	// measure how the scheduler starves the maintainer (or vice versa on a
	// small host), not how long a query takes while splits run.
	searchOnce := func(db *micronn.DB, i int) (time.Duration, error) {
		time.Sleep(500 * time.Microsecond)
		q := ds.Queries.Row(i % ds.Queries.Rows)
		start := time.Now()
		_, serr := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8})
		return time.Since(start), serr
	}

	var idleP50, idleP99, splitP50, splitP99 float64
	for iter := 0; iter < b.N; iter++ {
		db, err := micronn.Open(filepath.Join(b.TempDir(), fmt.Sprintf("split%d.mnn", iter)), micronn.Options{
			Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed, TargetPartitionSize: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		insert := func(lo, hi int) error {
			items := make([]micronn.Item, 0, hi-lo)
			for i := lo; i < hi; i++ {
				items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
			}
			return db.UpsertBatch(items)
		}
		if err := insert(0, bootstrap); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Rebuild(); err != nil {
			b.Fatal(err)
		}
		// Settle GC debt from the build (and, in a full `-bench=.` run,
		// from earlier benchmarks) so both windows start from the same
		// heap state and the tail measures the index, not the collector.
		runtime.GC()

		idle := make([]time.Duration, 0, 300)
		for i := 0; i < 300; i++ {
			d, err := searchOnce(db, i)
			if err != nil {
				b.Fatal(err)
			}
			idle = append(idle, d)
		}

		done := make(chan error, 1)
		go func() {
			const chunk = 50
			for lo := bootstrap; lo < n; lo += chunk {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if err := insert(lo, hi); err != nil {
					done <- err
					return
				}
				if _, err := db.Maintain(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		var storm []time.Duration
	window:
		for i := 0; ; i++ {
			select {
			case err := <-done:
				if err != nil {
					b.Fatal(err)
				}
				break window
			default:
			}
			d, err := searchOnce(db, i)
			if err != nil {
				b.Fatal(err)
			}
			storm = append(storm, d)
		}
		// Top the window up after the stream drains so tiny scales still
		// produce meaningful percentiles.
		deadline := time.Now().Add(2 * time.Second)
		for i := len(storm); len(storm) < 100 && time.Now().Before(deadline); i++ {
			d, err := searchOnce(db, i)
			if err != nil {
				b.Fatal(err)
			}
			storm = append(storm, d)
		}

		idleP50 += pctMs(idle, 50)
		idleP99 += pctMs(idle, 99)
		splitP50 += pctMs(storm, 50)
		splitP99 += pctMs(storm, 99)
		db.Close()
	}
	b.ReportMetric(idleP50/float64(b.N), "idle-p50-ms")
	b.ReportMetric(idleP99/float64(b.N), "idle-p99-ms")
	b.ReportMetric(splitP50/float64(b.N), "split-p50-ms")
	b.ReportMetric(splitP99/float64(b.N), "split-p99-ms")
}

// --- Core operation benchmarks ---

func BenchmarkUpsert(b *testing.B) {
	spec, _ := workload.ByName("SIFT")
	dim := spec.Dim
	db, err := micronn.Open(filepath.Join(b.TempDir(), "up.mnn"), micronn.Options{Dim: dim})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	v := make([]float32, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v[0] = float32(i)
		if err := db.Upsert(micronn.Item{ID: fmt.Sprintf("u%d", i), Vector: v}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactKNN(b *testing.B) {
	db, ds := sharedSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Queries.Row(i % ds.Queries.Rows)
		if _, err := db.Search(micronn.SearchRequest{Vector: q, K: 100, Exact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistanceKernelBaseline(b *testing.B) {
	// Raw kernel throughput for context: one partition's worth of
	// 128-dim distance computations.
	data := vec.NewMatrix(100, 128)
	q := make([]float32, 128)
	out := make([]float32, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.DistancesOneToMany(vec.L2, q, data, nil, out)
	}
}

// --- Quantization: SQ8/SQ4 scans + exact rerank vs float32 ---

// The quant benchmarks get their own dataset, a bit larger than the shared
// one and probed deeper, so the partition scan (the thing the codes shrink)
// dominates the per-query bytes rather than the constant-size rerank fetch.
const (
	quantScale  = 0.005
	quantNProbe = 40
)

var (
	quantOnce sync.Once
	quantDS   *workload.Dataset
	quantGT   [][]topk.Result
	quantDBs  map[micronn.Quantization]*micronn.DB
	quantErr  error
)

// quantSetup builds three twins of one dataset — float32, SQ8 and
// bit-packed SQ4 — and the exact top-10 ground truth for every query. Both
// quantized twins run RerankFactor 10: 16-level codes rank candidates more
// coarsely than 256-level ones, and this is the operating point at which
// SQ4's recall lands within a point of SQ8's, so the byte comparison below
// holds recall fixed rather than trading it away.
func quantSetup(b *testing.B, q micronn.Quantization) (*micronn.DB, *workload.Dataset, [][]topk.Result) {
	b.Helper()
	quantOnce.Do(func() {
		spec, err := workload.ByName("SIFT")
		if err != nil {
			quantErr = err
			return
		}
		spec = spec.Scaled(quantScale)
		quantDS = spec.Generate()
		quantGT = workload.GroundTruth(spec.Metric, quantDS.Train, quantDS.Queries, 10)
		dir, err := os.MkdirTemp("", "micronn-bench-quant-*")
		if err != nil {
			quantErr = err
			return
		}
		quantDBs = make(map[micronn.Quantization]*micronn.DB)
		for _, v := range []struct {
			name string
			opts micronn.Options
		}{
			{"float32", micronn.Options{}},
			{"sq8", micronn.Options{Quantization: micronn.QuantSQ8, RerankFactor: 10}},
			{"sq4", micronn.Options{Quantization: micronn.QuantSQ4, RerankFactor: 10}},
		} {
			opts := v.opts
			opts.Dim, opts.Metric, opts.Seed = spec.Dim, spec.Metric, spec.Seed
			db, err := buildBenchDB(filepath.Join(dir, v.name+".mnn"), quantDS, opts)
			if err != nil {
				quantErr = err
				return
			}
			quantDBs[opts.Quantization] = db
		}
	})
	if quantErr != nil {
		b.Fatal(quantErr)
	}
	return quantDBs[q], quantDS, quantGT
}

// benchScanBytes runs the warm-cache search workload on one quant twin and
// reports scanned bytes per op and recall@10, so the variants stay provably
// identical apart from the database they hit. K is 10 (not Fig4's 100): at
// the smoke-test dataset scale, K=100 would make the rerank fetch
// (RerankFactor*K exact rows) rival the whole collection and measure that
// degenerate regime instead of the scan.
func benchScanBytes(b *testing.B, q micronn.Quantization) {
	db, ds, gt := quantSetup(b, q)
	for i := 0; i < 8; i++ {
		if _, err := db.Search(micronn.SearchRequest{Vector: ds.Queries.Row(i), K: 10, NProbe: quantNProbe}); err != nil {
			b.Fatal(err)
		}
	}
	var bytesScanned int64
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % ds.Queries.Rows
		resp, err := db.Search(micronn.SearchRequest{Vector: ds.Queries.Row(qi), K: 10, NProbe: quantNProbe})
		if err != nil {
			b.Fatal(err)
		}
		bytesScanned += resp.Plan.BytesScanned
		ids := make([]string, len(resp.Results))
		for j, r := range resp.Results {
			ids[j] = r.ID
		}
		recall += workload.RecallByID(ids, gt[qi])
	}
	b.ReportMetric(float64(bytesScanned)/float64(b.N), "scan-bytes/op")
	b.ReportMetric(recall/float64(b.N), "recall@10")
}

// BenchmarkQuantSQ8Search runs the scan-bytes workload on the SQ8 index:
// partition scans read one-byte codes and rerank the top candidates against
// exact vectors.
func BenchmarkQuantSQ8Search(b *testing.B) { benchScanBytes(b, micronn.QuantSQ8) }

// BenchmarkQuantSQ4Search is the same workload on the bit-packed SQ4 index
// — two dimensions per code byte, so partition scans read about half the
// bytes of the SQ8 run at matching recall.
func BenchmarkQuantSQ4Search(b *testing.B) { benchScanBytes(b, micronn.QuantSQ4) }

// BenchmarkQuantFloat32Search is the same workload on the float32 baseline,
// for direct comparison with the quantized runs.
func BenchmarkQuantFloat32Search(b *testing.B) { benchScanBytes(b, micronn.QuantNone) }

// --- Incremental maintenance ---

// BenchmarkMaintenanceEpoch is one epoch of the streaming-update loop:
// insert a batch, run incremental maintenance (flush + splits/merges, never
// a full rebuild on a built index), then measure search latency and
// recall@10 on the maintained index. Reported metrics feed the BENCH_*
// trajectory: search-p99-ms, recall@10 and the per-epoch maintenance row
// writes.
func BenchmarkMaintenanceEpoch(b *testing.B) {
	spec, err := workload.ByName("InternalA")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	db, err := buildBenchDB(filepath.Join(b.TempDir(), "maint.mnn"), ds, micronn.Options{
		Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	epoch := ds.Train.Rows / 10
	if epoch < 10 {
		epoch = 10
	}
	const measured = 32
	var rowChanges, rebuilds int64
	var p99Sum, recallSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		items := make([]micronn.Item, epoch)
		for j := range items {
			items[j] = micronn.Item{ID: fmt.Sprintf("m-%d-%d", i, j), Vector: ds.Train.Row((i*epoch + j) % ds.Train.Rows)}
		}
		if err := db.UpsertBatch(items); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := db.Maintain()
		if err != nil {
			b.Fatal(err)
		}
		rowChanges += rep.RowChanges
		rebuilds += int64(rep.Rebuilds)

		b.StopTimer()
		durs := make([]float64, 0, measured)
		var recall float64
		for q := 0; q < measured; q++ {
			qv := ds.Queries.Row(q % ds.Queries.Rows)
			start := time.Now()
			resp, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, NProbe: 8})
			if err != nil {
				b.Fatal(err)
			}
			durs = append(durs, float64(time.Since(start).Nanoseconds())/1e6)
			exact, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, Exact: true})
			if err != nil {
				b.Fatal(err)
			}
			want := make(map[string]bool, len(exact.Results))
			for _, r := range exact.Results {
				want[r.ID] = true
			}
			hits := 0
			for _, r := range resp.Results {
				if want[r.ID] {
					hits++
				}
			}
			if len(exact.Results) > 0 {
				recall += float64(hits) / float64(len(exact.Results))
			}
		}
		sort.Float64s(durs)
		p99Sum += durs[len(durs)*99/100]
		recallSum += recall / measured
		b.StartTimer()
	}
	if rebuilds != 0 {
		b.Fatalf("built index full-rebuilt %d times during maintenance", rebuilds)
	}
	b.ReportMetric(p99Sum/float64(b.N), "search-p99-ms")
	b.ReportMetric(recallSum/float64(b.N), "recall@10")
	b.ReportMetric(float64(rowChanges)/float64(b.N), "row-changes/op")
}

// --- Sharding ---

// benchShardedSearch measures search tail latency under a sustained upsert
// stream at a given shard count (0 = the single-store baseline): a writer
// goroutine streams batches with auto-maintain running while the measured
// loop times queries and sums scanned bytes; recall@10 is then measured
// against exact search on the quiesced final state (measuring it mid-storm
// would compare against a moving ground truth). Reported metrics feed the
// BENCH_* trajectory per variant: search-p99-ms, recall@10 and
// scan-bytes/op.
func benchShardedSearch(b *testing.B, shards int) {
	spec, err := workload.ByName("InternalA")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	opts := micronn.Options{
		Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
		TargetPartitionSize: 100, Shards: shards,
		AutoMaintain: true, MaintainInterval: 10 * time.Millisecond,
	}
	var db micronn.Store
	if shards == 0 {
		db, err = micronn.Open(filepath.Join(b.TempDir(), "sb.mnn"), opts)
	} else {
		db, err = micronn.OpenSharded(filepath.Join(b.TempDir(), "sb.d"), opts)
	}
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	insert := func(prefix string, lo, hi int) error {
		items := make([]micronn.Item, 0, hi-lo)
		for i := lo; i < hi; i++ {
			items = append(items, micronn.Item{
				ID:     fmt.Sprintf("%s-%d", prefix, i),
				Vector: ds.Train.Row(i % ds.Train.Rows),
			})
		}
		return db.UpsertBatch(items)
	}
	if err := insert("b", 0, ds.Train.Rows); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		b.Fatal(err)
	}

	// Sustained upserts for the whole measurement.
	stop := make(chan struct{})
	done := make(chan struct{})
	werrCh := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lo := i * 100
			if err := insert("w", lo, lo+100); err != nil {
				werrCh <- err
				return
			}
		}
	}()

	const measured = 32
	var p99Sum float64
	var bytesScanned int64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		durs := make([]float64, 0, measured)
		for q := 0; q < measured; q++ {
			qv := ds.Queries.Row(q % ds.Queries.Rows)
			start := time.Now()
			resp, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, NProbe: 8})
			if err != nil {
				b.Fatal(err)
			}
			durs = append(durs, float64(time.Since(start).Nanoseconds())/1e6)
			bytesScanned += resp.Plan.BytesScanned
		}
		sort.Float64s(durs)
		p99Sum += durs[len(durs)*99/100]
	}
	b.StopTimer()
	close(stop)
	<-done
	select {
	case werr := <-werrCh:
		b.Fatal(werr)
	default:
	}
	if _, err := db.Maintain(); err != nil {
		b.Fatal(err)
	}

	// Recall on the quiesced final state: approximate and exact search now
	// see the same collection.
	var recall float64
	for q := 0; q < measured; q++ {
		qv := ds.Queries.Row(q % ds.Queries.Rows)
		resp, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, NProbe: 8})
		if err != nil {
			b.Fatal(err)
		}
		exact, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, Exact: true})
		if err != nil {
			b.Fatal(err)
		}
		want := make(map[string]bool, len(exact.Results))
		for _, r := range exact.Results {
			want[r.ID] = true
		}
		hits := 0
		for _, r := range resp.Results {
			if want[r.ID] {
				hits++
			}
		}
		if len(exact.Results) > 0 {
			recall += float64(hits) / float64(len(exact.Results))
		}
	}
	b.ReportMetric(p99Sum/float64(b.N), "search-p99-ms")
	b.ReportMetric(recall/measured, "recall@10")
	b.ReportMetric(float64(bytesScanned)/float64(b.N*measured), "scan-bytes/op")
}

// benchBackendSearch measures hot and cold search on one page-store
// backend under a tight 1 MiB pool budget (so the read path dominates),
// reporting hot p50, cold p50 and recall@10 for the BENCH trajectory. The
// `backends` scenario in cmd/micronn-bench prints the full comparison
// table with verdicts.
func benchBackendSearch(b *testing.B, kind micronn.Backend) {
	if kind == micronn.BackendMmap && !storage.MmapSupported() {
		b.Skip("mmap backend not supported on this platform")
	}
	spec, err := workload.ByName("SIFT")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	dir := b.TempDir()
	db, err := buildBenchDB(filepath.Join(dir, "backend.mnn"), ds, micronn.Options{
		Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
		Backend: kind,
		Device:  micronn.DeviceProfile{CacheBytes: 1 << 20, WriteBufferBytes: 4 << 20, Workers: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	const measured = 24
	search := func(qi int) time.Duration {
		start := time.Now()
		if _, err := db.Search(micronn.SearchRequest{Vector: ds.Queries.Row(qi % ds.Queries.Rows), K: 10, NProbe: 8}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm round.
	for q := 0; q < measured; q++ {
		search(q)
	}
	var hotP50Sum, coldP50Sum float64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		hot := make([]float64, 0, measured)
		for q := 0; q < measured; q++ {
			hot = append(hot, float64(search(q).Nanoseconds())/1e6)
		}
		sort.Float64s(hot)
		hotP50Sum += hot[len(hot)/2]
		cold := make([]float64, 0, measured)
		for q := 0; q < measured; q++ {
			db.DropCaches()
			cold = append(cold, float64(search(q).Nanoseconds())/1e6)
		}
		sort.Float64s(cold)
		coldP50Sum += cold[len(cold)/2]
	}
	b.StopTimer()

	var recall float64
	for q := 0; q < measured; q++ {
		qv := ds.Queries.Row(q % ds.Queries.Rows)
		resp, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, NProbe: 8})
		if err != nil {
			b.Fatal(err)
		}
		exact, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, Exact: true})
		if err != nil {
			b.Fatal(err)
		}
		want := make(map[string]bool, len(exact.Results))
		for _, r := range exact.Results {
			want[r.ID] = true
		}
		hits := 0
		for _, r := range resp.Results {
			if want[r.ID] {
				hits++
			}
		}
		if len(exact.Results) > 0 {
			recall += float64(hits) / float64(len(exact.Results))
		}
	}
	b.ReportMetric(hotP50Sum/float64(b.N), "hot-p50-ms")
	b.ReportMetric(coldP50Sum/float64(b.N), "cold-p50-ms")
	b.ReportMetric(recall/measured, "recall@10")
}

// BenchmarkBackendSearch compares the page-store backends on the hot and
// cold search path (the acceptance trajectory for the multi-backend PR:
// mmap must at least match file on hot p50 at identical recall).
func BenchmarkBackendSearch(b *testing.B) {
	b.Run("file", func(b *testing.B) { benchBackendSearch(b, micronn.BackendFile) })
	b.Run("mmap", func(b *testing.B) { benchBackendSearch(b, micronn.BackendMmap) })
	b.Run("memory", func(b *testing.B) { benchBackendSearch(b, micronn.BackendMemory) })
}

// BenchmarkShardedSearch runs the sustained-upsert search workload on the
// single-store baseline and at 1/2/4 shards (the `shards` scenario in
// cmd/micronn-bench sweeps further and prints verdicts).
func BenchmarkShardedSearch(b *testing.B) {
	b.Run("single", func(b *testing.B) { benchShardedSearch(b, 0) })
	b.Run("shards=1", func(b *testing.B) { benchShardedSearch(b, 1) })
	b.Run("shards=2", func(b *testing.B) { benchShardedSearch(b, 2) })
	b.Run("shards=4", func(b *testing.B) { benchShardedSearch(b, 4) })
}

// --- Result cache ---

// BenchmarkCachedSearch drives a Zipfian repeated-query stream (the
// type-ahead / repeated-RAG shape the result cache targets) through one
// database twice — cache bypassed, then cache on — and reports both p50s,
// the hit ratio and recall@10 for the BENCH trajectory (the acceptance
// criterion for the result-cache PR: cached hot p50 at least 5x below
// uncached at identical recall, since a hit replays the scan's own
// results). Interleaved upserts keep ~1 in 30 lookups honestly
// invalidated, so the hit ratio reported is earned under updates, not on a
// frozen store. The `cache` scenario in cmd/micronn-bench prints the full
// phase table with verdicts.
func BenchmarkCachedSearch(b *testing.B) {
	spec, err := workload.ByName("SIFT")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	db, err := buildBenchDB(filepath.Join(b.TempDir(), "cache.mnn"), ds, micronn.Options{
		Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
		ResultCache: micronn.ResultCacheOptions{Enabled: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	const streamLen = 96
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(min(ds.Queries.Rows, 24)-1))
	stream := make([]int, streamLen)
	for i := range stream {
		stream[i] = int(zipf.Uint64())
	}

	runStream := func(noCache bool, iter int) []float64 {
		durs := make([]float64, 0, streamLen)
		for i, qi := range stream {
			if i%30 == 29 {
				// A small upsert batch moves the generation: cached runs
				// must revalidate, exactly like production streams.
				items := []micronn.Item{{
					ID:     fmt.Sprintf("c-%d-%d-%v", iter, i, noCache),
					Vector: ds.Train.Row((iter*streamLen + i) % ds.Train.Rows),
				}}
				if err := db.UpsertBatch(items); err != nil {
					b.Fatal(err)
				}
			}
			start := time.Now()
			if _, err := db.Search(micronn.SearchRequest{
				Vector: ds.Queries.Row(qi), K: 10, NProbe: 8, NoCache: noCache,
			}); err != nil {
				b.Fatal(err)
			}
			durs = append(durs, float64(time.Since(start).Nanoseconds())/1e6)
		}
		sort.Float64s(durs)
		return durs
	}

	var cachedP50Sum, uncachedP50Sum float64
	statsBefore := db.ResultCacheStats()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		un := runStream(true, 2*n)
		uncachedP50Sum += un[len(un)/2]
		ca := runStream(false, 2*n+1)
		cachedP50Sum += ca[len(ca)/2]
	}
	b.StopTimer()
	statsAfter := db.ResultCacheStats()
	lookups := (statsAfter.Hits - statsBefore.Hits) +
		(statsAfter.Misses - statsBefore.Misses) +
		(statsAfter.Invalidations - statsBefore.Invalidations)
	hitRatio := 0.0
	if lookups > 0 {
		hitRatio = float64(statsAfter.Hits-statsBefore.Hits) / float64(lookups)
	}

	// Recall@10 through the cache on the quiesced state (byte-identical to
	// the uncached path by the staleness-oracle contract, so one number
	// stands for both).
	const measured = 24
	var recall float64
	for q := 0; q < measured; q++ {
		qv := ds.Queries.Row(q % ds.Queries.Rows)
		resp, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, NProbe: 8})
		if err != nil {
			b.Fatal(err)
		}
		exact, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, Exact: true, NoCache: true})
		if err != nil {
			b.Fatal(err)
		}
		want := make(map[string]bool, len(exact.Results))
		for _, r := range exact.Results {
			want[r.ID] = true
		}
		hits := 0
		for _, r := range resp.Results {
			if want[r.ID] {
				hits++
			}
		}
		if len(exact.Results) > 0 {
			recall += float64(hits) / float64(len(exact.Results))
		}
	}
	b.ReportMetric(cachedP50Sum/float64(b.N), "cached-p50-ms")
	b.ReportMetric(uncachedP50Sum/float64(b.N), "uncached-p50-ms")
	b.ReportMetric(hitRatio, "hit-ratio")
	b.ReportMetric(recall/measured, "recall@10")
}

// BenchmarkGroupCommitIngest measures the LSM ingest path for the BENCH
// trajectory: single-writer vs 8-writer group-committed insert throughput,
// then the search tail idle vs during a saturating insert storm absorbed by
// the memtable. On multi-core hosts the grouped rate should clear 3x the
// single-writer rate (writers amortize the writer gate and WAL commit);
// storm-p99-ms should stay near idle-p99-ms at unchanged recall@10.
func BenchmarkGroupCommitIngest(b *testing.B) {
	spec, err := workload.ByName("InternalA")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	n := ds.Train.Rows
	bootstrap := n / 2
	const stormN = 800
	row := func(i int) []float32 { return ds.Train.Row(i % n) }
	mk := func(name string, lsm bool) *micronn.DB {
		db, err := micronn.Open(filepath.Join(b.TempDir(), name+".mnn"), micronn.Options{
			Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
			TargetPartitionSize: 100,
			LSMIngest:           lsm, MemtableMaxItems: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
		items := make([]micronn.Item, 0, bootstrap)
		for i := 0; i < bootstrap; i++ {
			items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		}
		if err := db.UpsertBatch(items); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Rebuild(); err != nil {
			b.Fatal(err)
		}
		return db
	}
	pctMs := func(durs []time.Duration, pct int) float64 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return float64(durs[len(durs)*pct/100]) / 1e6
	}
	searchOnce := func(db *micronn.DB, i int) time.Duration {
		time.Sleep(500 * time.Microsecond)
		q := ds.Queries.Row(i % ds.Queries.Rows)
		start := time.Now()
		if _, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	var singleRate, groupedRate, avgGroup, idleP99, stormP99, recall, writeAmp float64
	for iter := 0; iter < b.N; iter++ {
		// Single-writer baseline: one goroutine, one txn per insert.
		db := mk(fmt.Sprintf("gci-single%d", iter), false)
		start := time.Now()
		for i := 0; i < stormN; i++ {
			if err := db.Upsert(micronn.Item{ID: fmt.Sprintf("s%d", i), Vector: row(i)}); err != nil {
				b.Fatal(err)
			}
		}
		singleRate += float64(stormN) / time.Since(start).Seconds()
		db.Close()

		// Grouped: 8 writers race into the committer. Maintenance row
		// writes are measured from here to the quiesced end of the iter:
		// divided by the rows ingested they are the write-amplification
		// factor the tiered compaction policy keeps flat.
		db = mk(fmt.Sprintf("gci-grouped%d", iter), true)
		st0, err := db.Stats()
		if err != nil {
			b.Fatal(err)
		}
		const writers = 8
		var wg sync.WaitGroup
		start = time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < stormN/writers; i++ {
					if err := db.Upsert(micronn.Item{ID: fmt.Sprintf("g%d-%d", w, i), Vector: row(w*stormN/writers + i)}); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		groupedRate += float64(stormN/writers*writers) / time.Since(start).Seconds()
		st, err := db.Stats()
		if err != nil {
			b.Fatal(err)
		}
		if st.Ingest.GroupCommits > 0 {
			avgGroup += float64(st.Ingest.GroupedOps) / float64(st.Ingest.GroupCommits)
		}
		if _, err := db.Maintain(); err != nil {
			b.Fatal(err)
		}

		// Search tail: idle window, then under a capped saturating storm.
		idle := make([]time.Duration, 0, 150)
		for i := 0; i < 150; i++ {
			idle = append(idle, searchOnce(db, i))
		}
		stop := make(chan struct{})
		werr := make(chan error, 1)
		var stormed int
		go func() {
			for i := 0; i < 1500; i++ {
				select {
				case <-stop:
					werr <- nil
					return
				default:
				}
				if err := db.Upsert(micronn.Item{ID: fmt.Sprintf("storm%d", i), Vector: row(i)}); err != nil {
					werr <- err
					return
				}
				stormed++
			}
			werr <- nil
		}()
		storm := make([]time.Duration, 0, 150)
		for i := 0; i < 150; i++ {
			storm = append(storm, searchOnce(db, i))
		}
		close(stop)
		if err := <-werr; err != nil {
			b.Fatal(err)
		}
		idleP99 += pctMs(idle, 99)
		stormP99 += pctMs(storm, 99)

		// Recall@10 on the quiesced store.
		if _, err := db.Maintain(); err != nil {
			b.Fatal(err)
		}
		st1, err := db.Stats()
		if err != nil {
			b.Fatal(err)
		}
		writeAmp += float64(st1.Maintenance.RowChanges-st0.Maintenance.RowChanges) /
			float64(stormN+stormed)
		const measured = 15
		var r float64
		for q := 0; q < measured; q++ {
			qv := ds.Queries.Row(q % ds.Queries.Rows)
			resp, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, NProbe: 8})
			if err != nil {
				b.Fatal(err)
			}
			exact, err := db.Search(micronn.SearchRequest{Vector: qv, K: 10, Exact: true})
			if err != nil {
				b.Fatal(err)
			}
			want := make(map[string]bool, len(exact.Results))
			for _, res := range exact.Results {
				want[res.ID] = true
			}
			hits := 0
			for _, res := range resp.Results {
				if want[res.ID] {
					hits++
				}
			}
			if len(exact.Results) > 0 {
				r += float64(hits) / float64(len(exact.Results))
			}
		}
		recall += r / measured
		db.Close()
	}
	b.ReportMetric(singleRate/float64(b.N), "single-inserts/s")
	b.ReportMetric(groupedRate/float64(b.N), "grouped-inserts/s")
	b.ReportMetric(groupedRate/singleRate, "grouped-speedup-x")
	b.ReportMetric(avgGroup/float64(b.N), "avg-group-size")
	b.ReportMetric(idleP99/float64(b.N), "idle-p99-ms")
	b.ReportMetric(stormP99/float64(b.N), "storm-p99-ms")
	b.ReportMetric(recall/float64(b.N), "recall@10")
	b.ReportMetric(writeAmp/float64(b.N), "write-amp-rows/row")
}

// BenchmarkTieredCompaction compares LSM maintenance write amplification
// between the tiered compaction policy (whole tiers merged in one pass,
// the PR 9 default) and the oldest-run-only policy it replaced, over an
// identical saturating ingest with an identical maintenance cadence. It
// also measures run-zone pruning: sealed waves carry disjoint indexed
// attribute values, so a filtered search skips the non-matching runs via
// their attribute Blooms — pruned-runs must be > 0 at prune-divergences 0
// (results byte-identical with pruning on and off).
func BenchmarkTieredCompaction(b *testing.B) {
	spec, err := workload.ByName("InternalA")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(benchScale)
	ds := spec.Generate()
	n := ds.Train.Rows
	bootstrap := n / 2
	row := func(i int) []float32 { return ds.Train.Row(i % n) }
	const ingestN = 2048

	ampRun := func(name string, maxCompact int) (float64, int64) {
		db, err := micronn.Open(filepath.Join(b.TempDir(), name+".mnn"), micronn.Options{
			Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
			TargetPartitionSize: 100,
			LSMIngest:           true, MemtableMaxItems: 256,
			MaxCompactRuns:   maxCompact,
			MaxUnmergedItems: 1 << 20, // cadence below is the only maintenance
			// No splits: partition rebalancing noise would swamp the
			// compaction-policy difference this benchmark isolates.
			MaxPartitionSize: 1 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		items := make([]micronn.Item, 0, bootstrap)
		for i := 0; i < bootstrap; i++ {
			items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		}
		if err := db.UpsertBatch(items); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Rebuild(); err != nil {
			b.Fatal(err)
		}
		base, err := db.Stats()
		if err != nil {
			b.Fatal(err)
		}
		// Memtable-sized waves, each awaited until the async sealer turns it
		// into a run: both variants drain the identical run set, so the
		// comparison isolates the compaction policy, not seal timing.
		const waveSize = 256
		for wave := 0; wave < ingestN/waveSize; wave++ {
			items := make([]micronn.Item, 0, waveSize)
			for i := 0; i < waveSize; i++ {
				items = append(items, micronn.Item{
					ID: fmt.Sprintf("amp-%s-%d", name, wave*waveSize+i), Vector: row(wave*waveSize + i),
				})
			}
			if err := db.UpsertBatch(items); err != nil {
				b.Fatal(err)
			}
			for deadline := time.Now().Add(5 * time.Second); ; {
				st, err := db.Stats()
				if err != nil {
					b.Fatal(err)
				}
				if st.Ingest.RunCount >= int64(wave+1) || time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		for i := 0; i < 100; i++ {
			st, err := db.Stats()
			if err != nil {
				b.Fatal(err)
			}
			if st.Ingest.RunCount == 0 {
				break
			}
			if _, err := db.Maintain(); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := db.FlushDelta(); err != nil {
			b.Fatal(err)
		}
		end, err := db.Stats()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(end.PagesWritten-base.PagesWritten)/float64(ingestN), name[:6]+"-pages/row")
		return float64(end.Maintenance.RowChanges-base.Maintenance.RowChanges) / float64(ingestN),
			end.Maintenance.Compactions - base.Maintenance.Compactions
	}

	pruneRun := func() (pruned int64, divergences int) {
		db, err := micronn.Open(filepath.Join(b.TempDir(), "prune.mnn"), micronn.Options{
			Dim: spec.Dim, Metric: spec.Metric, Seed: spec.Seed,
			TargetPartitionSize: 100,
			LSMIngest:           true, MemtableMaxItems: 256,
			MaxUnmergedItems: 1 << 20,
			Attributes:       []micronn.AttributeDef{{Name: "wave", Type: micronn.AttrText, Indexed: true}},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		items := make([]micronn.Item, 0, bootstrap)
		for i := 0; i < bootstrap; i++ {
			items = append(items, micronn.Item{
				ID: workload.AssetID(i), Vector: ds.Train.Row(i),
				Attributes: map[string]any{"wave": "base"},
			})
		}
		if err := db.UpsertBatch(items); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Rebuild(); err != nil {
			b.Fatal(err)
		}
		for w, tag := range []string{"alpha", "beta", "gamma"} {
			wave := make([]micronn.Item, 0, 256)
			for i := 0; i < 256; i++ {
				wave = append(wave, micronn.Item{
					ID: fmt.Sprintf("pr-%s-%d", tag, i), Vector: row(bootstrap + w*256 + i),
					Attributes: map[string]any{"wave": tag},
				})
			}
			if err := db.UpsertBatch(wave); err != nil {
				b.Fatal(err)
			}
		}
		// Seals are asynchronous; wait for at least two waves to become runs.
		for deadline := time.Now().Add(5 * time.Second); ; {
			st, err := db.Stats()
			if err != nil {
				b.Fatal(err)
			}
			if st.Ingest.RunCount >= 2 || time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		query := func() [][]string {
			var out [][]string
			for i := 0; i < 25; i++ {
				resp, err := db.Search(micronn.SearchRequest{
					Vector: ds.Queries.Row(i % ds.Queries.Rows), K: 10,
					Filters: []micronn.Filter{micronn.Eq("wave", "alpha")},
					Plan:    micronn.PlanPostFilter, NoCache: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				ids := make([]string, len(resp.Results))
				for j, r := range resp.Results {
					ids[j] = r.ID
				}
				out = append(out, ids)
			}
			return out
		}
		on := query()
		st, err := db.Stats()
		if err != nil {
			b.Fatal(err)
		}
		db.SetZonePruning(false)
		off := query()
		for i := range on {
			if len(on[i]) != len(off[i]) {
				divergences++
				continue
			}
			for j := range on[i] {
				if on[i][j] != off[i][j] {
					divergences++
					break
				}
			}
		}
		return st.Ingest.ZonePrunedRuns, divergences
	}

	var tiered, oldest, tieredMerges, oldestMerges, pruned, diverged float64
	for iter := 0; iter < b.N; iter++ {
		tAmp, tM := ampRun(fmt.Sprintf("tiered%d", iter), 0)
		oAmp, oM := ampRun(fmt.Sprintf("oldest%d", iter), 1)
		p, d := pruneRun()
		tiered += tAmp
		oldest += oAmp
		tieredMerges += float64(tM)
		oldestMerges += float64(oM)
		pruned += float64(p)
		diverged += float64(d)
	}
	b.ReportMetric(tiered/float64(b.N), "tiered-write-amp")
	b.ReportMetric(oldest/float64(b.N), "oldest-write-amp")
	b.ReportMetric(tieredMerges/float64(b.N), "tiered-merges")
	b.ReportMetric(oldestMerges/float64(b.N), "oldest-merges")
	b.ReportMetric(pruned/float64(b.N), "pruned-runs")
	b.ReportMetric(diverged/float64(b.N), "prune-divergences")
}

// --- Hybrid search: BM25 lexical leg fused with the vector leg ---

// BenchmarkHybridSearch times the fused query path on a tagged corpus,
// alongside the pure vector leg on the same store for the overhead
// comparison.
func BenchmarkHybridSearch(b *testing.B) {
	fd := workload.GenerateFiltered(workload.FilteredSpec{
		Dim: 48, NumVectors: 4000, NumQueries: 64, Seed: 21,
	})
	db, err := micronn.Open(filepath.Join(b.TempDir(), "hybrid.mnn"), micronn.Options{
		Dim: 48, Metric: micronn.Cosine, Seed: 21,
		Attributes: []micronn.AttributeDef{{Name: "tags", Type: micronn.AttrText, FullText: true}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	items := make([]micronn.Item, 0, 1000)
	for i := 0; i < 4000; i++ {
		items = append(items, micronn.Item{
			ID:         workload.AssetID(i),
			Vector:     fd.Train.Row(i),
			Attributes: map[string]any{"tags": fd.Tags[i]},
		})
		if len(items) == 1000 || i == 3999 {
			if err := db.UpsertBatch(items); err != nil {
				b.Fatal(err)
			}
			items = items[:0]
		}
	}
	if _, err := db.Rebuild(); err != nil {
		b.Fatal(err)
	}
	b.Run("vector-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qi := i % 64
			_, err := db.HybridSearch(micronn.HybridRequest{
				Vector: fd.Queries.Row(qi), K: 10, NProbe: 16,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qi := i % 64
			_, err := db.HybridSearch(micronn.HybridRequest{
				Vector: fd.Queries.Row(qi), Text: fd.QueryTags[qi], K: 10, NProbe: 16,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
