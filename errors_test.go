package micronn

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

func openErrTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "err.mnn"), Options{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestTypedErrNotFound(t *testing.T) {
	db := openErrTestDB(t)
	if _, err := db.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing): %v, want ErrNotFound", err)
	}
	if err := db.Delete("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(missing): %v, want ErrNotFound", err)
	}
}

func TestTypedErrBadRequest(t *testing.T) {
	db := openErrTestDB(t)
	q := []float32{1, 0, 0, 0}
	for _, req := range []SearchRequest{
		{Vector: q, K: -1},
		{Vector: q, K: 5, NProbe: -2},
		{Vector: q, K: 5, RerankFactor: -1},
	} {
		if _, err := db.Search(req); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("Search(%+v): %v, want ErrBadRequest", req, err)
		}
	}
	if _, err := db.BatchSearch(BatchSearchRequest{Vectors: [][]float32{q}, K: -3}); !errors.Is(err, ErrBadRequest) {
		t.Fatal("BatchSearch with negative K did not return ErrBadRequest")
	}
	// Create-time option validation uses the same sentinel.
	if _, err := Open(filepath.Join(t.TempDir(), "bad.mnn"), Options{Dim: 4, Quantization: Quantization(9)}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Open with unknown quantization: %v, want ErrBadRequest", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "bad2.mnn"), Options{Dim: 4, ClipPercentile: 0.5}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Open with ClipPercentile 0.5: %v, want ErrBadRequest", err)
	}
}

func TestTypedErrDimMismatch(t *testing.T) {
	db := openErrTestDB(t)
	if err := db.Upsert(Item{ID: "a", Vector: []float32{1, 2}}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("Upsert wrong dim: %v, want ErrDimMismatch", err)
	}
	if _, err := db.Search(SearchRequest{Vector: []float32{1, 2, 3}, K: 5}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("Search wrong dim: %v, want ErrDimMismatch", err)
	}
	// The batch path names the offending query index.
	_, err := db.BatchSearch(BatchSearchRequest{
		Vectors: [][]float32{{1, 0, 0, 0}, {1, 2}}, K: 5,
	})
	if !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("BatchSearch wrong dim: %v, want ErrDimMismatch", err)
	}
	if got := err.Error(); !containsStr(got, "query 1") {
		t.Fatalf("batch dim error %q does not name the offending query", got)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestTypedErrClosedDB(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "closed.mnn"), Options{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(Item{ID: "a", Vector: []float32{1, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double Close: %v, want nil", err)
	}
	q := []float32{1, 0, 0, 0}
	checks := []struct {
		name string
		err  error
	}{
		{"Search", func() error { _, err := db.Search(SearchRequest{Vector: q, K: 1}); return err }()},
		{"BatchSearch", func() error {
			_, err := db.BatchSearch(BatchSearchRequest{Vectors: [][]float32{q}, K: 1})
			return err
		}()},
		{"Upsert", db.Upsert(Item{ID: "b", Vector: q})},
		{"Get", func() error { _, err := db.Get("a"); return err }()},
		{"Delete", db.Delete("a")},
		{"Stats", func() error { _, err := db.Stats(); return err }()},
		{"Rebuild", func() error { _, err := db.Rebuild(); return err }()},
		{"Maintain", func() error { _, err := db.Maintain(); return err }()},
		{"Snapshot", func() error { _, err := db.Snapshot(); return err }()},
	}
	for _, c := range checks {
		if !errors.Is(c.err, ErrClosed) {
			t.Fatalf("%s after Close: %v, want ErrClosed", c.name, c.err)
		}
	}
}

func TestTypedErrClosedSharded(t *testing.T) {
	sdb, err := OpenSharded(filepath.Join(t.TempDir(), "closed.d"), Options{Dim: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sdb.Close(); err != nil {
		t.Fatalf("double Close: %v, want nil", err)
	}
	q := []float32{1, 0, 0, 0}
	if _, err := sdb.Search(SearchRequest{Vector: q, K: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("sharded Search after Close: %v, want ErrClosed", err)
	}
	if _, err := sdb.BatchSearch(BatchSearchRequest{Vectors: [][]float32{q}, K: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("sharded BatchSearch after Close: %v, want ErrClosed", err)
	}
	if _, err := sdb.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sharded Snapshot after Close: %v, want ErrClosed", err)
	}
	if err := sdb.Upsert(Item{ID: "a", Vector: q}); !errors.Is(err, ErrClosed) {
		t.Fatalf("sharded Upsert after Close: %v, want ErrClosed", err)
	}
}

func TestShardedTypedErrorsMatchSingle(t *testing.T) {
	sdb := openShardedTest(t, filepath.Join(t.TempDir(), "typed.d"), Options{Dim: 4, Shards: 3})
	if _, err := sdb.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("sharded Get(missing): %v, want ErrNotFound", err)
	}
	if _, err := sdb.Search(SearchRequest{Vector: []float32{1, 2}, K: 1}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("sharded Search wrong dim: %v, want ErrDimMismatch", err)
	}
	if _, err := sdb.Search(SearchRequest{Vector: []float32{1, 0, 0, 0}, K: -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("sharded Search negative K: %v, want ErrBadRequest", err)
	}
}

func TestParseQuantization(t *testing.T) {
	for name, want := range map[string]Quantization{
		"": QuantNone, "none": QuantNone, "sq8": QuantSQ8, "sq4": QuantSQ4,
	} {
		got, err := ParseQuantization(name)
		if err != nil || got != want {
			t.Fatalf("ParseQuantization(%q) = %v, %v; want %v", name, got, err, want)
		}
		if name != "" && got.String() != name {
			t.Fatalf("String round trip: %q -> %q", name, got.String())
		}
	}
	if _, err := ParseQuantization("pq"); err == nil {
		t.Fatal("ParseQuantization accepted unknown scheme")
	}
}

func TestEnvQuantOverride(t *testing.T) {
	t.Setenv(EnvQuantVar, "sq4")
	db, err := Open(filepath.Join(t.TempDir(), "env.mnn"), Options{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Quantization != QuantSQ4 {
		t.Fatalf("env override quantization: %v, want sq4", st.Quantization)
	}
	// Explicit options always win over the environment.
	db2, err := Open(filepath.Join(t.TempDir(), "env2.mnn"), Options{Dim: 4, Quantization: QuantSQ8})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st, err = db2.Stats(); err != nil || st.Quantization != QuantSQ8 {
		t.Fatalf("explicit quantization: %v, %v; want sq8", st.Quantization, err)
	}
	// A bogus value fails loudly rather than silently running unquantized.
	t.Setenv(EnvQuantVar, "sq2")
	if _, err := Open(filepath.Join(t.TempDir(), "env3.mnn"), Options{Dim: 4}); err == nil {
		t.Fatal("bogus MICRONN_TEST_QUANT accepted")
	}
}

func TestNormalizeSearchDefaults(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "norm.mnn"), Options{Dim: 4, Quantization: QuantSQ8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 30; i++ {
		if err := db.Upsert(Item{ID: fmt.Sprintf("n%02d", i), Vector: []float32{float32(i), 1, 0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	// K defaults to 10; zero NProbe picks the config default; requests are
	// normalized once through the shared path, so a zero-valued request
	// succeeds on every entry point.
	resp, err := db.Search(SearchRequest{Vector: []float32{3, 1, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 10 {
		t.Fatalf("defaulted K: got %d results, want 10", len(resp.Results))
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, err := snap.Search(SearchRequest{Vector: []float32{3, 1, 0, 0}}); err != nil {
		t.Fatalf("snapshot zero-valued search: %v", err)
	}
	if _, err := snap.Search(SearchRequest{Vector: []float32{3, 1}, K: 2}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("snapshot wrong dim: %v, want ErrDimMismatch", err)
	}
}
