package micronn

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// TestQuantStreamingRecallGate is the seeded recall gate for the quantized
// schemes: with AutoMaintain running, sustained upserts (fresh inserts plus
// re-upserts that move existing ids) must not drag SQ8 or SQ4 recall@10 more
// than one point below the post-Rebuild baseline measured on the same
// database. This pins the property the codes exist for — the trained
// codebook keeps serving a drifting collection between rebuilds.
func TestQuantStreamingRecallGate(t *testing.T) {
	if testing.Short() {
		t.Skip("recall gate streams thousands of vectors; skipped in -short")
	}
	for _, qt := range []Quantization{QuantSQ8, QuantSQ4} {
		t.Run(qt.String(), func(t *testing.T) {
			const (
				seed    = 41
				dim     = shardTestDim
				corpus  = 800
				streamN = 600
				queries = 30
				k       = 10
				nprobe  = 12
			)
			// RerankFactor 10 is the quantized operating point from the
			// benchmark scenario: deep enough that the exact rerank, not
			// the 4-bit candidate cut, decides the final top-k.
			db, err := Open(filepath.Join(t.TempDir(), "gate.mnn"), Options{
				Dim: dim, TargetPartitionSize: 25, Seed: seed,
				Quantization: qt, RerankFactor: 10,
				AutoMaintain: true, MaintainInterval: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			vecs := clusteredVecs(seed, corpus+streamN+queries, dim, 10)
			items := make([]Item, corpus)
			for i := range items {
				items[i] = Item{ID: fmt.Sprintf("g%04d", i), Vector: vecs[i]}
			}
			if err := db.UpsertBatch(items); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Rebuild(); err != nil {
				t.Fatal(err)
			}

			qvecs := vecs[corpus+streamN:]
			measure := func() float64 {
				var total float64
				for _, q := range qvecs {
					exact, err := db.Search(SearchRequest{Vector: q, K: k, Exact: true})
					if err != nil {
						t.Fatal(err)
					}
					got, err := db.Search(SearchRequest{Vector: q, K: k, NProbe: nprobe})
					if err != nil {
						t.Fatal(err)
					}
					total += recallAgainst(exact.Results, got.Results)
				}
				return total / float64(len(qvecs))
			}
			baseline := measure()

			// Sustained streaming under the background maintainer: fresh
			// ids plus re-upserts that relocate a third of each batch.
			for round := 0; round < 6; round++ {
				batch := make([]Item, 0, streamN/6+corpus/20)
				lo := corpus + round*streamN/6
				for i := lo; i < lo+streamN/6; i++ {
					batch = append(batch, Item{ID: fmt.Sprintf("g%04d", i), Vector: vecs[i]})
				}
				for i := 0; i < corpus/20; i++ {
					id := (round*53 + i*17) % corpus
					batch = append(batch, Item{ID: fmt.Sprintf("g%04d", id), Vector: vecs[corpus+streamN-1-id%streamN]})
				}
				if err := db.UpsertBatch(batch); err != nil {
					t.Fatal(err)
				}
				time.Sleep(5 * time.Millisecond) // let the maintainer take ticks mid-stream
			}
			// Quiesce: drive maintenance until the policy reports nothing
			// left so the measurement sees the maintained index, not a
			// half-flushed delta.
			for i := 0; i < 50; i++ {
				rep, err := db.Maintain()
				if err != nil {
					t.Fatal(err)
				}
				if rep.Steps == 0 {
					break
				}
			}

			streamed := measure()
			t.Logf("%s: baseline recall@%d %.4f, after streaming %.4f", qt, k, baseline, streamed)
			if streamed < baseline-0.01 {
				t.Fatalf("%s recall@%d degraded beyond the 1pt gate: baseline %.4f, streamed %.4f",
					qt, k, baseline, streamed)
			}
		})
	}
}
