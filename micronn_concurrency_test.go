package micronn

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"micronn/internal/storage"
)

// vectorStore is the method surface shared by *DB and *ShardedDB that the
// concurrency battery exercises.
type vectorStore interface {
	Upsert(Item) error
	UpsertBatch([]Item) error
	Search(SearchRequest) (*SearchResponse, error)
	BatchSearch(BatchSearchRequest) (*BatchSearchResponse, error)
	Rebuild() (*MaintenanceReport, error)
	Maintain() (*MaintenanceReport, error)
}

// TestConcurrentSearchDuringMaintenance is the mixed-workload hammer for the
// partition-granular locking work: Search and BatchSearch run continuously
// while upserts stream into the delta and foreground Maintain passes flush
// and split partitions underneath them. With two-phase splits the searches
// never wait on k-means; the test's job (under `-race`) is to prove the
// lock-manager plumbing is sound across the quantization x sharding matrix,
// and that the index still answers accurately once the dust settles.
func TestConcurrentSearchDuringMaintenance(t *testing.T) {
	cases := []struct {
		name   string
		qt     Quantization
		shards int
	}{
		{"float32/single", QuantNone, 0},
		{"float32/sharded", QuantNone, 3},
		{"sq8/single", QuantSQ8, 0},
		{"sq8/sharded", QuantSQ8, 3},
		{"sq4/single", QuantSQ4, 0},
		{"sq4/sharded", QuantSQ4, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{
				Dim: shardTestDim, TargetPartitionSize: 20, Seed: 5,
				FlushThreshold: 25, Quantization: tc.qt,
			}
			if tc.qt != QuantNone {
				opts.RerankFactor = 10
			}
			var db vectorStore
			var checkInv func() error
			if tc.shards > 0 {
				o := opts
				o.Shards = tc.shards
				sdb := openShardedTest(t, filepath.Join(t.TempDir(), "hammer.d"), o)
				db, checkInv = sdb, sdb.CheckInvariants
			} else {
				d := openTest(t, opts)
				db = d
				checkInv = func() error {
					return d.InternalStore().View(func(rt *storage.ReadTxn) error {
						return d.InternalIndex().CheckInvariants(rt)
					})
				}
			}

			vecs := clusteredVecs(5, 700, shardTestDim, 10)
			items := make([]Item, 400)
			for i := range items {
				items[i] = Item{ID: fmt.Sprintf("v%04d", i), Vector: vecs[i]}
			}
			if err := db.UpsertBatch(items); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Rebuild(); err != nil {
				t.Fatal(err)
			}

			queries := clusteredVecs(6, 20, shardTestDim, 10)
			var wg sync.WaitGroup
			stop := make(chan struct{})
			writerDone := make(chan struct{})
			errCh := make(chan error, 4)
			fail := func(err error) {
				select {
				case errCh <- err:
				default:
				}
			}

			for s := 0; s < 2; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						req := SearchRequest{Vector: queries[(i+s)%len(queries)], K: 10, NProbe: 8}
						if _, err := db.Search(req); err != nil {
							fail(fmt.Errorf("searcher %d: %w", s, err))
							return
						}
					}
				}(s)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					breq := BatchSearchRequest{Vectors: queries[:8], K: 10, NProbe: 8}
					if _, err := db.BatchSearch(breq); err != nil {
						fail(fmt.Errorf("batch searcher: %w", err))
						return
					}
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(writerDone)
				for i := 400; i < 700; i++ {
					if err := db.Upsert(Item{ID: fmt.Sprintf("v%04d", i), Vector: vecs[i]}); err != nil {
						fail(fmt.Errorf("upsert %d: %w", i, err))
						return
					}
				}
			}()

			// Foreground maintenance runs against the live read/write
			// traffic until the writer drains, then one last pass quiesces
			// the backlog.
			splits := 0
			maintain := func() {
				rep, err := db.Maintain()
				if err != nil {
					fail(fmt.Errorf("maintain: %w", err))
					return
				}
				splits += rep.Splits
			}
		loop:
			for {
				select {
				case <-writerDone:
					break loop
				default:
				}
				maintain()
			}
			maintain()
			close(stop)
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}
			if splits == 0 {
				t.Error("no splits executed during the hammer; the test exercised nothing")
			}

			if err := checkInv(); err != nil {
				t.Fatal(err)
			}

			// Recall parity after quiesce: the concurrently-maintained index
			// must still find its neighbours.
			var recall float64
			for _, q := range queries {
				exact, err := db.Search(SearchRequest{Vector: q, K: 10, Exact: true})
				if err != nil {
					t.Fatal(err)
				}
				got, err := db.Search(SearchRequest{Vector: q, K: 10, NProbe: 16})
				if err != nil {
					t.Fatal(err)
				}
				recall += recallAgainst(exact.Results, got.Results)
			}
			recall /= float64(len(queries))
			if recall < 0.8 {
				t.Errorf("recall@10 = %.3f after concurrent maintenance, want >= 0.8", recall)
			}
		})
	}
}

// TestCloseDuringActiveMaintenance closes the database while the background
// maintainer is mid-pass — with a delta backlog and oversized partitions it
// is flushing and splitting when Close lands. Close must wait for the
// in-flight step (the store never closes under a live transaction) and the
// next maintainer step must observe ErrClosed, not a storage-layer error.
func TestCloseDuringActiveMaintenance(t *testing.T) {
	for round := 0; round < 3; round++ {
		db, err := Open(filepath.Join(t.TempDir(), "close.mnn"), Options{
			Dim: 8, TargetPartitionSize: 20, Seed: int64(round + 1), FlushThreshold: 20,
			AutoMaintain: true, MaintainInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		seed := randomVecs(int64(round+1), 300, 8)
		items := make([]Item, len(seed))
		for i, v := range seed {
			items[i] = Item{ID: fmt.Sprintf("v%d", i), Vector: v}
		}
		if err := db.UpsertBatch(items); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Rebuild(); err != nil {
			t.Fatal(err)
		}
		// Pile up delta backlog so the maintainer has flushes and splits in
		// flight, give it a beat to get started, then pull the rug.
		extra := randomVecs(int64(round+100), 150, 8)
		for i, v := range extra {
			if err := db.Upsert(Item{ID: fmt.Sprintf("e%d", i), Vector: v}); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(5 * time.Millisecond)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Maintain(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Maintain after Close = %v, want ErrClosed", err)
		}
		if _, err := db.Search(SearchRequest{Vector: make([]float32, 8), K: 1}); !errors.Is(err, ErrClosed) {
			t.Fatalf("Search after Close = %v, want ErrClosed", err)
		}
	}
}

// TestStatsRaceWithMaintainer reads telemetry (Stats, MaintenanceTotals)
// concurrently with a background maintainer and a writer. Under `-race`
// this pins down the maintMu audit: every counter access is lock-covered
// and MaintenanceTotals hands out a copy, never the live report.
func TestStatsRaceWithMaintainer(t *testing.T) {
	db := openTest(t, Options{
		Dim: 8, TargetPartitionSize: 20, Seed: 2, FlushThreshold: 20,
		AutoMaintain: true, MaintainInterval: time.Millisecond,
	})
	seed := randomVecs(2, 200, 8)
	items := make([]Item, len(seed))
	for i, v := range seed {
		items[i] = Item{ID: fmt.Sprintf("v%d", i), Vector: v}
	}
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 3)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Stats(); err != nil {
					fail(err)
					return
				}
				// Mutating the returned report must never write through to
				// the maintainer's live state.
				if _, rep := db.MaintenanceTotals(); rep != nil {
					rep.Splits = -1
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		vecs := randomVecs(3, 200, 8)
		for i, v := range vecs {
			if err := db.Upsert(Item{ID: fmt.Sprintf("w%d", i), Vector: v}); err != nil {
				fail(err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if _, rep := db.MaintenanceTotals(); rep != nil && rep.Splits == -1 {
		t.Error("MaintenanceTotals leaked its internal report (reader mutation visible)")
	}
}
