package memtrack

import (
	"testing"
	"time"
)

func TestSamplerObservesAllocation(t *testing.T) {
	s := Start(time.Millisecond)
	// Allocate ~32 MiB and keep it live until Stop.
	buf := make([][]byte, 32)
	for i := range buf {
		buf[i] = make([]byte, 1<<20)
		buf[i][0] = 1
	}
	time.Sleep(10 * time.Millisecond)
	peak := s.Stop()
	if peak < 16<<20 {
		t.Errorf("peak = %d bytes, expected to observe ~32 MiB allocation", peak)
	}
	_ = buf[31][0]
}

func TestSamplerStopIdempotentValue(t *testing.T) {
	s := Start(time.Millisecond)
	v := s.PeakBytes()
	if v < 0 {
		t.Errorf("PeakBytes = %d", v)
	}
	if got := s.Stop(); got < 0 {
		t.Errorf("Stop = %d", got)
	}
}

func TestStartGCExcludesGarbage(t *testing.T) {
	s := StartGC(2 * time.Millisecond)
	// Churn 64 MiB of garbage that is dead immediately.
	for i := 0; i < 64; i++ {
		b := make([]byte, 1<<20)
		b[0] = byte(i)
		time.Sleep(200 * time.Microsecond)
	}
	peak := s.Stop()
	// With forced GC before each sample, live peak should stay far below
	// the total churn.
	if peak > 32<<20 {
		t.Errorf("GC sampler peak = %d, garbage not excluded", peak)
	}
}

func TestHeapInUsePositive(t *testing.T) {
	if HeapInUse() <= 0 {
		t.Error("HeapInUse() <= 0")
	}
}
