// Package memtrack measures peak memory during benchmark phases. The
// paper's Figures 5, 6b and 8b report process memory; here the equivalent
// is Go heap in use (sampled) plus the storage buffer-pool budget, which
// captures the same order-of-magnitude contrast between the disk-resident
// index and the in-memory baseline.
package memtrack

import (
	"runtime"
	"sync"
	"time"
)

// Sampler polls runtime heap usage in the background and records the peak.
type Sampler struct {
	mu       sync.Mutex
	peak     uint64
	baseline uint64
	forceGC  bool
	stop     chan struct{}
	done     chan struct{}
}

// Start begins sampling at the given interval. GC is forced first so the
// baseline excludes garbage from earlier phases.
func Start(interval time.Duration) *Sampler { return start(interval, false) }

// StartGC is like Start but forces a garbage collection before every
// sample, so the recorded peak reflects live memory rather than
// not-yet-collected garbage. Use it around phases whose *algorithmic*
// memory is being measured (index construction); the GC pressure slows the
// measured phase, so do not time the same run.
func StartGC(interval time.Duration) *Sampler { return start(interval, true) }

func start(interval time.Duration, forceGC bool) *Sampler {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &Sampler{
		baseline: ms.HeapInuse,
		peak:     ms.HeapInuse,
		forceGC:  forceGC,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sample()
			}
		}
	}()
	return s
}

func (s *Sampler) sample() {
	if s.forceGC {
		runtime.GC()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	if ms.HeapInuse > s.peak {
		s.peak = ms.HeapInuse
	}
	s.mu.Unlock()
}

// Stop ends sampling and returns the peak heap-in-use delta over the
// baseline, in bytes.
func (s *Sampler) Stop() int64 {
	s.sample()
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	d := int64(s.peak) - int64(s.baseline)
	if d < 0 {
		d = 0
	}
	return d
}

// PeakBytes returns the current peak delta without stopping.
func (s *Sampler) PeakBytes() int64 {
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	d := int64(s.peak) - int64(s.baseline)
	if d < 0 {
		d = 0
	}
	return d
}

// HeapInUse returns the instantaneous heap usage in bytes.
func HeapInUse() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}
