// Package quant implements MicroNN's scalar quantization: vectors are
// compressed to one byte per dimension (SQ8) or one packed nibble per
// dimension (SQ4) with a per-dimension affine codebook, cutting the bytes
// read by a partition scan 4x or 8x versus float32. Distances against
// quantized codes are computed asymmetrically — the query stays float32
// while data vectors remain encoded — so scan-time precision loss stays
// small, and the search layer reranks the top candidates against exact
// float32 vectors to recover full-precision ordering ("Quantization for
// Vector Search under Streaming Updates", PAPERS.md).
//
// The codebook is trained at index-build time and persisted beside the
// centroid table; the delta-store keeps raw float32 vectors so streaming
// inserts never need retraining. The trainer streams per-dimension ranges
// in O(dim) memory and, when a clip percentile is configured, also keeps a
// bounded reservoir sample so the codebook range can be set from the
// [p, 1-p] quantiles instead of the observed extremes. Clipping makes the
// 16-level SQ4 grid robust to outliers: a single extreme value no longer
// stretches a dimension's range and collapses everything else onto a few
// codes. Values outside the trained (possibly clipped) range clamp to the
// range edges, which the exact rerank corrects.
package quant

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Type selects a quantization scheme for an index.
type Type uint8

const (
	// None stores and scans full-precision float32 vectors.
	None Type = iota
	// SQ8 stores one byte per dimension with a per-dimension affine
	// codebook and reranks against exact vectors.
	SQ8
	// SQ4 stores one nibble per dimension — two dimensions bit-packed per
	// byte — halving scanned bytes again versus SQ8. The coarser 16-level
	// grid relies on quantile-clipped training and exact rerank to hold
	// recall.
	SQ4
)

// String names the quantization type as used in configuration.
func (t Type) String() string {
	switch t {
	case None:
		return "none"
	case SQ8:
		return "sq8"
	case SQ4:
		return "sq4"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType converts a quantization name ("none", "sq8", "sq4") to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "", "none", "None":
		return None, nil
	case "sq8", "SQ8":
		return SQ8, nil
	case "sq4", "SQ4":
		return SQ4, nil
	}
	return None, fmt.Errorf("quant: unknown quantization %q", s)
}

// levels is the number of representable codes per dimension for SQ8.
const levels = 256

// sq4Levels is the number of representable codes per dimension for SQ4.
const sq4Levels = 16

// maxCode returns the largest code value for type t (255 or 15).
func (t Type) maxCode() int {
	if t == SQ4 {
		return sq4Levels - 1
	}
	return levels - 1
}

// Codebook is a trained per-dimension affine codec: dimension d of a
// vector is encoded as round((v-Min[d])/Delta[d]) clamped to [0,maxCode],
// and decoded as Min[d] + code*Delta[d]. Delta is (hi-lo)/maxCode over the
// trained (possibly quantile-clipped) range; a constant dimension has
// Delta 0 and always encodes to 0.
//
// Kind selects the code layout: SQ8 stores one byte per dimension; SQ4
// packs two 4-bit codes per byte, even dimension in the low nibble and odd
// dimension in the high nibble (an odd trailing dimension leaves the final
// high nibble zero). The zero Kind is treated as SQ8 for compatibility
// with codebooks built before SQ4 existed.
type Codebook struct {
	Kind  Type
	Min   []float32
	Delta []float32
}

// kind normalizes the Kind field: anything other than SQ4 behaves as SQ8.
func (cb *Codebook) kind() Type {
	if cb.Kind == SQ4 {
		return SQ4
	}
	return SQ8
}

// Dim returns the codebook's dimensionality.
func (cb *Codebook) Dim() int { return len(cb.Min) }

// CodeSize returns the encoded size in bytes of one vector: dim for SQ8,
// ceil(dim/2) for SQ4.
func (cb *Codebook) CodeSize() int {
	if cb.kind() == SQ4 {
		return (len(cb.Min) + 1) / 2
	}
	return len(cb.Min)
}

// Encode appends the quantized code of v to dst.
func (cb *Codebook) Encode(dst []byte, v []float32) []byte {
	if len(v) != len(cb.Min) {
		panic("quant: dimension mismatch")
	}
	if cb.kind() == SQ4 {
		n := len(v)
		for d := 0; d+2 <= n; d += 2 {
			lo := cb.encodeDim(d, v[d])
			hi := cb.encodeDim(d+1, v[d+1])
			dst = append(dst, lo|hi<<4)
		}
		if n%2 == 1 {
			dst = append(dst, cb.encodeDim(n-1, v[n-1]))
		}
		return dst
	}
	for d, x := range v {
		dst = append(dst, cb.encodeDim(d, x))
	}
	return dst
}

func (cb *Codebook) encodeDim(d int, x float32) byte {
	delta := cb.Delta[d]
	if delta == 0 {
		return 0
	}
	max := float64(cb.kind().maxCode())
	c := math.Round(float64(x-cb.Min[d]) / float64(delta))
	if c < 0 {
		c = 0
	} else if c > max {
		c = max
	}
	return byte(c)
}

// Decode reconstructs the approximate float32 vector from code into dst,
// which must have length cb.Dim().
func (cb *Codebook) Decode(dst []float32, code []byte) []float32 {
	if len(code) != cb.CodeSize() || len(dst) != len(cb.Min) {
		panic("quant: dimension mismatch")
	}
	if cb.kind() == SQ4 {
		for d := range dst {
			b := code[d/2]
			var c byte
			if d%2 == 0 {
				c = b & 0x0f
			} else {
				c = b >> 4
			}
			dst[d] = cb.Min[d] + float32(c)*cb.Delta[d]
		}
		return dst
	}
	for d, c := range code {
		dst[d] = cb.Min[d] + float32(c)*cb.Delta[d]
	}
	return dst
}

// Persisted codebook layouts. Version 1 is the original SQ8-only format
// (no kind byte); version 2 adds a kind byte after the version so SQ4
// codebooks round-trip. SQ8 codebooks keep writing version 1 so files
// created by older builds and newer builds stay byte-identical.
const (
	codebookVersion   = 1
	codebookVersionV2 = 2
)

// Marshal serializes the codebook: a version byte (and for SQ4 a kind
// byte), a uint32 dimension, then the Min and Delta arrays as
// little-endian float32. This is the on-disk format stored in the index
// meta table.
func (cb *Codebook) Marshal() []byte {
	dim := len(cb.Min)
	out := make([]byte, 0, 6+8*dim)
	if cb.kind() == SQ4 {
		out = append(out, codebookVersionV2, byte(SQ4))
	} else {
		out = append(out, codebookVersion)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(dim))
	for _, m := range cb.Min {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(m))
	}
	for _, d := range cb.Delta {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(d))
	}
	return out
}

// UnmarshalCodebook parses a codebook serialized by Marshal, accepting
// both the legacy version-1 (SQ8) and version-2 (kind-tagged) layouts.
func UnmarshalCodebook(blob []byte) (*Codebook, error) {
	if len(blob) < 5 {
		return nil, fmt.Errorf("quant: codebook blob too short (%d bytes)", len(blob))
	}
	kind := SQ8
	header := 5
	switch blob[0] {
	case codebookVersion:
	case codebookVersionV2:
		header = 6
		if len(blob) < header {
			return nil, fmt.Errorf("quant: codebook blob too short (%d bytes)", len(blob))
		}
		switch Type(blob[1]) {
		case SQ8, SQ4:
			kind = Type(blob[1])
		default:
			return nil, fmt.Errorf("quant: unknown codebook kind %d", blob[1])
		}
	default:
		return nil, fmt.Errorf("quant: unsupported codebook version %d", blob[0])
	}
	dim := int(binary.LittleEndian.Uint32(blob[header-4:]))
	if len(blob) != header+8*dim {
		return nil, fmt.Errorf("quant: codebook blob size %d, want %d for dim %d", len(blob), header+8*dim, dim)
	}
	cb := &Codebook{Kind: kind, Min: make([]float32, dim), Delta: make([]float32, dim)}
	off := header
	for d := 0; d < dim; d++ {
		cb.Min[d] = math.Float32frombits(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
	}
	for d := 0; d < dim; d++ {
		cb.Delta[d] = math.Float32frombits(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
	}
	return cb, nil
}

// reservoirCap bounds the trainer's vector sample used for quantile
// estimation: 1024 rows keeps memory at dim*4 KiB while putting ~5 sample
// points beyond a 0.5% clip on each side.
const reservoirCap = 1024

// minClipSample is the smallest reservoir that supports quantile clipping;
// below it the trainer falls back to the full min/max range.
const minClipSample = 20

// Trainer accumulates per-dimension ranges over a streamed pass of the
// collection. Memory is O(dim) for the min/max pass plus a bounded
// reservoir sample (reservoirCap rows) when quantile clipping is enabled,
// preserving the bounded-memory discipline of the index build path.
type Trainer struct {
	kind Type
	clip float64
	min  []float32
	max  []float32
	seen bool

	count   int64
	sample  []float32 // reservoir, row-major: nsample rows of dim
	nsample int
	rng     uint64
}

// NewTrainer returns an SQ8 trainer with no clipping for dim-dimensional
// vectors, the pre-SQ4 behavior.
func NewTrainer(dim int) *Trainer {
	return NewTrainerKind(SQ8, dim, 0)
}

// NewTrainerKind returns a trainer producing a codebook of the given kind.
// clipPercentile in (0, 0.5) trims each dimension's range to the
// [p, 1-p] quantiles of a reservoir sample; 0 (or out-of-range values)
// trains on the full observed min/max.
func NewTrainerKind(kind Type, dim int, clipPercentile float64) *Trainer {
	if kind != SQ4 {
		kind = SQ8
	}
	if clipPercentile < 0 || clipPercentile >= 0.5 || math.IsNaN(clipPercentile) {
		clipPercentile = 0
	}
	t := &Trainer{
		kind: kind,
		clip: clipPercentile,
		min:  make([]float32, dim),
		max:  make([]float32, dim),
		rng:  0x9e3779b97f4a7c15, // fixed seed: training is deterministic in stream order
	}
	if t.clip > 0 {
		t.sample = make([]float32, 0, reservoirCap*dim)
	}
	return t
}

// nextRand is a xorshift64 step returning a value in [0, bound).
func (t *Trainer) nextRand(bound int64) int64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return int64(t.rng % uint64(bound))
}

// Add folds one vector into the running ranges (and, when clipping, the
// reservoir sample).
func (t *Trainer) Add(v []float32) {
	dim := len(t.min)
	if len(v) != dim {
		panic("quant: dimension mismatch")
	}
	if !t.seen {
		copy(t.min, v)
		copy(t.max, v)
		t.seen = true
	} else {
		for d, x := range v {
			if x < t.min[d] {
				t.min[d] = x
			}
			if x > t.max[d] {
				t.max[d] = x
			}
		}
	}
	t.count++
	if t.clip <= 0 {
		return
	}
	if t.nsample < reservoirCap {
		t.sample = append(t.sample, v...)
		t.nsample++
		return
	}
	if j := t.nextRand(t.count); j < reservoirCap {
		copy(t.sample[int(j)*dim:(int(j)+1)*dim], v)
	}
}

// Codebook finalizes the trained ranges into a codebook. Training on an
// empty stream yields an all-zero codebook (every code decodes to zero).
// With clipping enabled and enough samples, each dimension's range is the
// [clip, 1-clip] quantile interval of the reservoir; degenerate intervals
// fall back to that dimension's full range.
func (t *Trainer) Codebook() *Codebook {
	dim := len(t.min)
	cb := &Codebook{Kind: t.kind, Min: make([]float32, dim), Delta: make([]float32, dim)}
	if !t.seen {
		return cb
	}
	maxCode := float32(t.kind.maxCode())
	var col []float32
	useClip := t.clip > 0 && t.nsample >= minClipSample
	if useClip {
		col = make([]float32, t.nsample)
	}
	for d := 0; d < dim; d++ {
		lo, hi := t.min[d], t.max[d]
		if useClip {
			for i := 0; i < t.nsample; i++ {
				col[i] = t.sample[i*dim+d]
			}
			sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
			qlo := col[int(t.clip*float64(t.nsample-1))]
			qhi := col[int(math.Ceil((1-t.clip)*float64(t.nsample-1)))]
			if qhi > qlo {
				lo, hi = qlo, qhi
			}
		}
		cb.Min[d] = lo
		cb.Delta[d] = (hi - lo) / maxCode
	}
	return cb
}

// ClipPercentile reports the clip percentile this trainer was built with
// (0 when clipping is disabled).
func (t *Trainer) ClipPercentile() float64 { return t.clip }
