// Package quant implements MicroNN's scalar quantization (SQ8): vectors
// are compressed to one byte per dimension with a per-dimension min/max
// codebook, cutting the bytes read by a partition scan 4x versus float32.
// Distances against quantized codes are computed asymmetrically — the query
// stays float32 while data vectors remain encoded — so scan-time precision
// loss stays small, and the search layer reranks the top candidates against
// exact float32 vectors to recover full-precision ordering ("Quantization
// for Vector Search under Streaming Updates", PAPERS.md).
//
// The codebook is trained at index-build time (a streaming min/max pass
// over the collection) and persisted beside the centroid table; the
// delta-store keeps raw float32 vectors so streaming inserts never need
// retraining. Values outside the trained range clamp to the range edges,
// which the exact rerank corrects.
package quant

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Type selects a quantization scheme for an index.
type Type uint8

const (
	// None stores and scans full-precision float32 vectors.
	None Type = iota
	// SQ8 stores one byte per dimension with a per-dimension min/max
	// codebook and reranks against exact vectors.
	SQ8
)

// String names the quantization type as used in configuration.
func (t Type) String() string {
	switch t {
	case None:
		return "none"
	case SQ8:
		return "sq8"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType converts a quantization name ("none", "sq8") to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "", "none", "None":
		return None, nil
	case "sq8", "SQ8":
		return SQ8, nil
	}
	return None, fmt.Errorf("quant: unknown quantization %q", s)
}

// levels is the number of representable codes per dimension.
const levels = 256

// Codebook is a trained per-dimension affine codec: dimension d of a
// vector is encoded as round((v-Min[d])/Delta[d]) clamped to [0,255], and
// decoded as Min[d] + code*Delta[d]. Delta is (max-min)/255; a constant
// dimension has Delta 0 and always encodes to 0.
type Codebook struct {
	Min   []float32
	Delta []float32
}

// Dim returns the codebook's dimensionality.
func (cb *Codebook) Dim() int { return len(cb.Min) }

// CodeSize returns the encoded size in bytes of one vector.
func (cb *Codebook) CodeSize() int { return len(cb.Min) }

// Encode appends the SQ8 code of v (one byte per dimension) to dst.
func (cb *Codebook) Encode(dst []byte, v []float32) []byte {
	if len(v) != len(cb.Min) {
		panic("quant: dimension mismatch")
	}
	for d, x := range v {
		dst = append(dst, cb.encodeDim(d, x))
	}
	return dst
}

func (cb *Codebook) encodeDim(d int, x float32) byte {
	delta := cb.Delta[d]
	if delta == 0 {
		return 0
	}
	c := math.Round(float64(x-cb.Min[d]) / float64(delta))
	if c < 0 {
		c = 0
	} else if c > levels-1 {
		c = levels - 1
	}
	return byte(c)
}

// Decode reconstructs the approximate float32 vector from code into dst,
// which must have length len(code). It returns dst for convenience.
func (cb *Codebook) Decode(dst []float32, code []byte) []float32 {
	if len(code) != len(cb.Min) {
		panic("quant: dimension mismatch")
	}
	for d, c := range code {
		dst[d] = cb.Min[d] + float32(c)*cb.Delta[d]
	}
	return dst
}

// codebookVersion tags the persisted codebook layout.
const codebookVersion = 1

// Marshal serializes the codebook: a version byte, a uint32 dimension, then
// the Min and Delta arrays as little-endian float32. This is the on-disk
// format stored in the index meta table.
func (cb *Codebook) Marshal() []byte {
	dim := len(cb.Min)
	out := make([]byte, 0, 5+8*dim)
	out = append(out, codebookVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(dim))
	for _, m := range cb.Min {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(m))
	}
	for _, d := range cb.Delta {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(d))
	}
	return out
}

// UnmarshalCodebook parses a codebook serialized by Marshal.
func UnmarshalCodebook(blob []byte) (*Codebook, error) {
	if len(blob) < 5 {
		return nil, fmt.Errorf("quant: codebook blob too short (%d bytes)", len(blob))
	}
	if blob[0] != codebookVersion {
		return nil, fmt.Errorf("quant: unsupported codebook version %d", blob[0])
	}
	dim := int(binary.LittleEndian.Uint32(blob[1:]))
	if len(blob) != 5+8*dim {
		return nil, fmt.Errorf("quant: codebook blob size %d, want %d for dim %d", len(blob), 5+8*dim, dim)
	}
	cb := &Codebook{Min: make([]float32, dim), Delta: make([]float32, dim)}
	off := 5
	for d := 0; d < dim; d++ {
		cb.Min[d] = math.Float32frombits(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
	}
	for d := 0; d < dim; d++ {
		cb.Delta[d] = math.Float32frombits(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
	}
	return cb, nil
}

// Trainer accumulates per-dimension ranges over a streamed pass of the
// collection. Memory is O(dim) regardless of collection size, matching the
// bounded-memory discipline of the index build path.
type Trainer struct {
	min  []float32
	max  []float32
	seen bool
}

// NewTrainer returns a trainer for dim-dimensional vectors.
func NewTrainer(dim int) *Trainer {
	return &Trainer{min: make([]float32, dim), max: make([]float32, dim)}
}

// Add folds one vector into the running ranges.
func (t *Trainer) Add(v []float32) {
	if len(v) != len(t.min) {
		panic("quant: dimension mismatch")
	}
	if !t.seen {
		copy(t.min, v)
		copy(t.max, v)
		t.seen = true
		return
	}
	for d, x := range v {
		if x < t.min[d] {
			t.min[d] = x
		}
		if x > t.max[d] {
			t.max[d] = x
		}
	}
}

// Codebook finalizes the trained ranges into a codebook. Training on an
// empty stream yields an all-zero codebook (every code decodes to zero).
func (t *Trainer) Codebook() *Codebook {
	dim := len(t.min)
	cb := &Codebook{Min: make([]float32, dim), Delta: make([]float32, dim)}
	if !t.seen {
		return cb
	}
	copy(cb.Min, t.min)
	for d := 0; d < dim; d++ {
		cb.Delta[d] = (t.max[d] - t.min[d]) / (levels - 1)
	}
	return cb
}
