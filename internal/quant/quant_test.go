package quant

import (
	"math"
	"math/rand"
	"testing"

	"micronn/internal/vec"
)

func randVectors(seed int64, n, dim int, scale float32) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64()) * scale
		}
		out[i] = v
	}
	return out
}

func trainOn(vectors [][]float32) *Codebook {
	t := NewTrainer(len(vectors[0]))
	for _, v := range vectors {
		t.Add(v)
	}
	return t.Codebook()
}

func TestEncodeDecodeRoundTripErrorBound(t *testing.T) {
	const dim = 37 // odd size exercises the kernel tails
	vectors := randVectors(1, 500, dim, 3)
	cb := trainOn(vectors)

	dec := make([]float32, dim)
	var code []byte
	for _, v := range vectors {
		code = cb.Encode(code[:0], v)
		cb.Decode(dec, code)
		for d := range v {
			// Rounding to the nearest of 256 levels bounds the error by
			// half a step.
			bound := float64(cb.Delta[d])/2 + 1e-5
			if diff := math.Abs(float64(v[d] - dec[d])); diff > bound {
				t.Fatalf("dim %d: |%v - %v| = %v exceeds half-step bound %v", d, v[d], dec[d], diff, bound)
			}
		}
	}
}

func TestEncodeClampsOutOfRange(t *testing.T) {
	cb := &Codebook{Min: []float32{0}, Delta: []float32{1.0 / 255}}
	lo := cb.Encode(nil, []float32{-10})
	hi := cb.Encode(nil, []float32{10})
	if lo[0] != 0 || hi[0] != 255 {
		t.Fatalf("clamp: got %d and %d, want 0 and 255", lo[0], hi[0])
	}
}

func TestConstantDimension(t *testing.T) {
	vectors := [][]float32{{5, 1}, {5, 2}, {5, 3}}
	cb := trainOn(vectors)
	if cb.Delta[0] != 0 {
		t.Fatalf("constant dim delta = %v, want 0", cb.Delta[0])
	}
	dec := make([]float32, 2)
	cb.Decode(dec, cb.Encode(nil, []float32{5, 2}))
	if dec[0] != 5 {
		t.Fatalf("constant dim decodes to %v, want 5", dec[0])
	}
}

func TestEmptyTrainerCodebook(t *testing.T) {
	cb := NewTrainer(4).Codebook()
	dec := make([]float32, 4)
	cb.Decode(dec, cb.Encode(nil, []float32{1, 2, 3, 4}))
	for d, x := range dec {
		if x != 0 {
			t.Fatalf("empty codebook decodes dim %d to %v, want 0", d, x)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	vectors := randVectors(2, 100, 19, 2)
	cb := trainOn(vectors)
	got, err := UnmarshalCodebook(cb.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for d := range cb.Min {
		if got.Min[d] != cb.Min[d] || got.Delta[d] != cb.Delta[d] {
			t.Fatalf("dim %d: got (%v,%v), want (%v,%v)", d, got.Min[d], got.Delta[d], cb.Min[d], cb.Delta[d])
		}
	}
	if _, err := UnmarshalCodebook([]byte{9, 0, 0, 0, 0}); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := UnmarshalCodebook([]byte{1, 2}); err == nil {
		t.Fatal("expected truncation error")
	}
}

// TestAsymmetricDistanceMatchesDecoded checks that Query.Distance equals
// vec.Distance against the decoded vector, for every metric: the asymmetric
// kernels are an algebraic refactoring, not an extra approximation.
func TestAsymmetricDistanceMatchesDecoded(t *testing.T) {
	const dim = 45
	vectors := randVectors(3, 200, dim, 4)
	cb := trainOn(vectors)
	queries := randVectors(4, 10, dim, 4)

	dec := make([]float32, dim)
	for _, metric := range []vec.Metric{vec.L2, vec.Dot, vec.Cosine} {
		for _, q := range queries {
			qq := cb.NewQuery(metric, q)
			var code []byte
			for _, v := range vectors {
				code = cb.Encode(code[:0], v)
				got := qq.Distance(code)
				want := vec.Distance(metric, q, cb.Decode(dec, code))
				tol := 1e-2 * (1 + math.Abs(float64(want)))
				if diff := math.Abs(float64(got - want)); diff > tol {
					t.Fatalf("%v: asymmetric %v vs decoded %v (diff %v)", metric, got, want, diff)
				}
			}
		}
	}
}

func TestDistancesMany(t *testing.T) {
	const dim, n = 16, 33
	vectors := randVectors(5, n, dim, 2)
	cb := trainOn(vectors)
	q := randVectors(6, 1, dim, 2)[0]
	qq := cb.NewQuery(vec.L2, q)

	var packed []byte
	for _, v := range vectors {
		packed = cb.Encode(packed, v)
	}
	out := make([]float32, n)
	qq.DistancesMany(packed, n, out)
	for i, v := range vectors {
		want := qq.Distance(cb.Encode(nil, v))
		// The blocked multi-row kernel accumulates in a different order
		// than the single-row kernel, so allow float rounding slack.
		if diff := math.Abs(float64(out[i] - want)); diff > 1e-4*(1+math.Abs(float64(want))) {
			t.Fatalf("row %d: %v != %v", i, out[i], want)
		}
	}
}

// TestQuantizedOrderingQuality sanity-checks that SQ8 distances order a
// clustered collection nearly as well as exact distances: the exact nearest
// neighbour should appear in the quantized top-4.
func TestQuantizedOrderingQuality(t *testing.T) {
	const dim, n = 32, 400
	vectors := randVectors(7, n, dim, 5)
	cb := trainOn(vectors)
	queries := randVectors(8, 20, dim, 5)

	hits := 0
	for _, q := range queries {
		bestExact, bestD := -1, float32(math.MaxFloat32)
		for i, v := range vectors {
			if d := vec.Distance(vec.L2, q, v); d < bestD {
				bestExact, bestD = i, d
			}
		}
		qq := cb.NewQuery(vec.L2, q)
		type cand struct {
			i int
			d float32
		}
		cands := make([]cand, n)
		var code []byte
		for i, v := range vectors {
			code = cb.Encode(code[:0], v)
			cands[i] = cand{i, qq.Distance(code)}
		}
		for pass := 0; pass < 4; pass++ { // partial selection of top-4
			min := pass
			for j := pass + 1; j < n; j++ {
				if cands[j].d < cands[min].d {
					min = j
				}
			}
			cands[pass], cands[min] = cands[min], cands[pass]
			if cands[pass].i == bestExact {
				hits++
				break
			}
		}
	}
	if hits < 18 {
		t.Fatalf("exact NN in quantized top-4 for only %d/20 queries", hits)
	}
}

func BenchmarkAsymmetricL2(b *testing.B) {
	const dim, n = 128, 256
	vectors := randVectors(9, n, dim, 3)
	cb := trainOn(vectors)
	var packed []byte
	for _, v := range vectors {
		packed = cb.Encode(packed, v)
	}
	q := randVectors(10, 1, dim, 3)[0]
	qq := cb.NewQuery(vec.L2, q)
	out := make([]float32, n)
	// Warm the lazily built per-byte LUT so the benchmark measures
	// steady-state scan throughput, not the one-time table build.
	qq.DistancesMany(packed, n, out)
	b.SetBytes(int64(n * dim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qq.DistancesMany(packed, n, out)
	}
}
