package quant

import (
	"math"

	"micronn/internal/vec"
)

// This file implements the asymmetric distance kernels: the query remains
// float32 while data vectors stay SQ8-encoded, and the per-dimension affine
// decode is folded into per-query coefficients so a scan touches each code
// byte exactly once. Writing c for a dimension's code, the decoded value is
// min + c*delta, which makes every metric a low-degree polynomial in c:
//
//	L2:  ||q - v||^2 = Σ t_d^2 - Σ (2 t_d Δ_d) c_d + Σ Δ_d^2 c_d^2   (t = q - min)
//	IP:   q·v        = Σ q_d min_d + Σ (q_d Δ_d) c_d
//	|v|^2            = Σ min_d^2 + Σ (2 min_d Δ_d) c_d + Σ Δ_d^2 c_d^2
//
// The constant terms are computed once per query; the scan accumulates one
// or two fused multiply-adds per byte, the same register-blocked shape as
// the float32 kernels in internal/vec.

// Query is the per-query state for asymmetric distance computation against
// SQ8 codes. Build one with Codebook.NewQuery and reuse it for a whole scan.
type Query struct {
	metric vec.Metric

	// constant + Σ c*(quad*c - lin) terms for the primary accumulator:
	// L2 distance for vec.L2, the inner product for vec.Dot and vec.Cosine.
	constant float32
	lin      []float32
	quad     []float32

	// Cosine extras: coefficients of the data-vector squared norm and the
	// query norm.
	normConst float32
	normLin   []float32
	qNorm     float32
}

// NewQuery precomputes the asymmetric-distance coefficients of q under the
// codebook for the given metric.
func (cb *Codebook) NewQuery(metric vec.Metric, q []float32) *Query {
	if len(q) != len(cb.Min) {
		panic("quant: dimension mismatch")
	}
	dim := len(q)
	qq := &Query{metric: metric}
	switch metric {
	case vec.L2:
		qq.lin = make([]float32, dim)
		qq.quad = make([]float32, dim)
		for d := 0; d < dim; d++ {
			t := q[d] - cb.Min[d]
			delta := cb.Delta[d]
			qq.constant += t * t
			qq.lin[d] = 2 * t * delta
			qq.quad[d] = delta * delta
		}
	case vec.Dot, vec.Cosine:
		qq.lin = make([]float32, dim)
		for d := 0; d < dim; d++ {
			qq.constant += q[d] * cb.Min[d]
			qq.lin[d] = q[d] * cb.Delta[d]
		}
		if metric == vec.Cosine {
			qq.normLin = make([]float32, dim)
			qq.quad = make([]float32, dim)
			for d := 0; d < dim; d++ {
				qq.normConst += cb.Min[d] * cb.Min[d]
				qq.normLin[d] = 2 * cb.Min[d] * cb.Delta[d]
				qq.quad[d] = cb.Delta[d] * cb.Delta[d]
			}
			qq.qNorm = vec.Norm(q)
		}
	default:
		panic("quant: unknown metric")
	}
	return qq
}

// Distance returns the metric distance between the query and one SQ8 code,
// matching the conventions of vec.Distance (smaller is more similar; L2 is
// squared, Dot is negated, Cosine is 1-cos).
func (qq *Query) Distance(code []byte) float32 {
	switch qq.metric {
	case vec.L2:
		return qq.constant + polyAcc(code, qq.lin, qq.quad)
	case vec.Dot:
		return -(qq.constant + linAcc(code, qq.lin))
	default: // Cosine
		dot := qq.constant + linAcc(code, qq.lin)
		nv2 := qq.normConst + polyAccPos(code, qq.normLin, qq.quad)
		if qq.qNorm == 0 || nv2 <= 0 {
			return 1
		}
		return 1 - dot/(qq.qNorm*float32(math.Sqrt(float64(nv2))))
	}
}

// DistancesMany computes distances from the query to n consecutive codes
// packed in codes (n * dim bytes), writing into out[:n].
func (qq *Query) DistancesMany(codes []byte, n int, out []float32) {
	dim := len(qq.lin)
	for i := 0; i < n; i++ {
		out[i] = qq.Distance(codes[i*dim : (i+1)*dim])
	}
}

// polyAcc accumulates Σ c*(quad*c - lin) over the code bytes, the shared
// inner loop of the L2 kernel. Unrolled 4-wide like the float32 kernels so
// the compiler keeps the accumulators in registers.
func polyAcc(code []byte, lin, quad []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(code); i += 4 {
		c0 := float32(code[i])
		c1 := float32(code[i+1])
		c2 := float32(code[i+2])
		c3 := float32(code[i+3])
		s0 += c0 * (quad[i]*c0 - lin[i])
		s1 += c1 * (quad[i+1]*c1 - lin[i+1])
		s2 += c2 * (quad[i+2]*c2 - lin[i+2])
		s3 += c3 * (quad[i+3]*c3 - lin[i+3])
	}
	for ; i < len(code); i++ {
		c := float32(code[i])
		s0 += c * (quad[i]*c - lin[i])
	}
	return s0 + s1 + s2 + s3
}

// polyAccPos accumulates Σ c*(quad*c + lin): the squared-norm polynomial,
// whose linear term adds rather than subtracts.
func polyAccPos(code []byte, lin, quad []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(code); i += 4 {
		c0 := float32(code[i])
		c1 := float32(code[i+1])
		c2 := float32(code[i+2])
		c3 := float32(code[i+3])
		s0 += c0 * (quad[i]*c0 + lin[i])
		s1 += c1 * (quad[i+1]*c1 + lin[i+1])
		s2 += c2 * (quad[i+2]*c2 + lin[i+2])
		s3 += c3 * (quad[i+3]*c3 + lin[i+3])
	}
	for ; i < len(code); i++ {
		c := float32(code[i])
		s0 += c * (quad[i]*c + lin[i])
	}
	return s0 + s1 + s2 + s3
}

// linAcc accumulates Σ lin*c: the inner-product kernel.
func linAcc(code []byte, lin []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(code); i += 4 {
		s0 += lin[i] * float32(code[i])
		s1 += lin[i+1] * float32(code[i+1])
		s2 += lin[i+2] * float32(code[i+2])
		s3 += lin[i+3] * float32(code[i+3])
	}
	for ; i < len(code); i++ {
		s0 += lin[i] * float32(code[i])
	}
	return s0 + s1 + s2 + s3
}
