package quant

import (
	"encoding/binary"
	"math"
	"unsafe"

	"micronn/internal/vec"
)

// This file implements the asymmetric distance kernels: the query remains
// float32 while data vectors stay quantized, and the per-dimension affine
// decode is folded into per-query coefficients so a scan touches each code
// byte exactly once. Writing c for a dimension's code, the decoded value is
// min + c*delta, which makes every metric a low-degree polynomial in c:
//
//	L2:  ||q - v||^2 = Σ t_d^2 - Σ (2 t_d Δ_d) c_d + Σ Δ_d^2 c_d^2   (t = q - min)
//	IP:   q·v        = Σ q_d min_d + Σ (q_d Δ_d) c_d
//	|v|^2            = Σ min_d^2 + Σ (2 min_d Δ_d) c_d + Σ Δ_d^2 c_d^2
//
// The constant terms are computed once per query.
//
// SQ8 scans evaluate the polynomial directly with 8-wide unrolled,
// multi-accumulator loops; explicit bounds hints before each loop let the
// compiler elide the per-element bounds checks, and the eight independent
// accumulators keep the floating-point units saturated instead of chaining
// every add through one register. The hot L2 path additionally processes
// four rows per coefficient load (polyAcc4), amortizing the lin/quad
// traffic the way a SIMD kernel would broadcast them.
//
// SQ4 scans never unpack nibbles: NewQuery bakes the polynomial into a
// 256-entry lookup table per code byte, where entry b already sums the
// contributions of both packed dimensions (low nibble = even dimension,
// high nibble = odd). A scan is then one table load and one add per byte —
// the classic product-quantization LUT trick applied to scalar codes.

// Query is the per-query state for asymmetric distance computation against
// quantized codes. Build one with Codebook.NewQuery and reuse it for a
// whole scan.
type Query struct {
	metric vec.Metric

	// codeSize is the stride in bytes between consecutive codes: dim for
	// SQ8, ceil(dim/2) for SQ4.
	codeSize int
	sq4      bool

	// constant + Σ c*(quad*c - lin) terms for the primary accumulator:
	// L2 distance for vec.L2, the inner product for vec.Dot and vec.Cosine.
	constant float32
	lin      []float32
	quad     []float32

	// Cosine extras: coefficients of the data-vector squared norm and the
	// query norm.
	normConst float32
	normLin   []float32
	qNorm     float32

	// SQ4 lookup tables, codeSize rows of 256 entries. lut[j*256+b] is the
	// primary-accumulator contribution of code byte value b at byte j
	// (both nibbles folded in); normLut is the cosine squared-norm analog.
	lut     []float32
	normLut []float32

	// sq8LUT is the SQ8 L2 scan table — dim rows of 256 entries where
	// sq8LUT[d*256+c] = c*(quad[d]*c - lin[d]) — built lazily by the first
	// large DistancesMany call, where its O(dim*256) construction cost
	// amortizes across the scan.
	sq8LUT []float32
}

// CodeSize returns the byte stride of the codes this query scans.
func (qq *Query) CodeSize() int { return qq.codeSize }

// NewQuery precomputes the asymmetric-distance coefficients of q under the
// codebook for the given metric.
func (cb *Codebook) NewQuery(metric vec.Metric, q []float32) *Query {
	if len(q) != len(cb.Min) {
		panic("quant: dimension mismatch")
	}
	dim := len(q)
	qq := &Query{metric: metric, codeSize: cb.CodeSize(), sq4: cb.kind() == SQ4}
	switch metric {
	case vec.L2:
		qq.lin = make([]float32, dim)
		qq.quad = make([]float32, dim)
		for d := 0; d < dim; d++ {
			t := q[d] - cb.Min[d]
			delta := cb.Delta[d]
			qq.constant += t * t
			qq.lin[d] = 2 * t * delta
			qq.quad[d] = delta * delta
		}
	case vec.Dot, vec.Cosine:
		qq.lin = make([]float32, dim)
		for d := 0; d < dim; d++ {
			qq.constant += q[d] * cb.Min[d]
			qq.lin[d] = q[d] * cb.Delta[d]
		}
		if metric == vec.Cosine {
			qq.normLin = make([]float32, dim)
			qq.quad = make([]float32, dim)
			for d := 0; d < dim; d++ {
				qq.normConst += cb.Min[d] * cb.Min[d]
				qq.normLin[d] = 2 * cb.Min[d] * cb.Delta[d]
				qq.quad[d] = cb.Delta[d] * cb.Delta[d]
			}
			qq.qNorm = vec.Norm(q)
		}
	default:
		panic("quant: unknown metric")
	}
	if qq.sq4 {
		qq.buildLUTs(dim)
	}
	return qq
}

// buildLUTs folds the per-dimension polynomial coefficients into per-byte
// 256-entry tables for the SQ4 scan path. A padding nibble (odd trailing
// dimension) always holds code 0, whose variable contribution is zero, so
// no special case is needed at scan time.
func (qq *Query) buildLUTs(dim int) {
	switch qq.metric {
	case vec.L2:
		qq.lut = buildNibbleLUT(dim, func(d int, c float32) float32 {
			return c * (qq.quad[d]*c - qq.lin[d])
		})
	case vec.Dot:
		qq.lut = buildNibbleLUT(dim, func(d int, c float32) float32 {
			return qq.lin[d] * c
		})
	case vec.Cosine:
		qq.lut = buildNibbleLUT(dim, func(d int, c float32) float32 {
			return qq.lin[d] * c
		})
		qq.normLut = buildNibbleLUT(dim, func(d int, c float32) float32 {
			return c * (qq.quad[d]*c + qq.normLin[d])
		})
	}
}

// buildNibbleLUT builds ceil(dim/2) rows of 256 entries where row j, entry
// b sums contrib(2j, b&15) and contrib(2j+1, b>>4). The 16 per-nibble
// values are computed once per row, then combined, so construction is
// O(dim*128) adds — negligible next to a partition scan.
func buildNibbleLUT(dim int, contrib func(d int, c float32) float32) []float32 {
	nb := (dim + 1) / 2
	lut := make([]float32, nb*256)
	var lo, hi [sq4Levels]float32
	for j := 0; j < nb; j++ {
		d0, d1 := 2*j, 2*j+1
		for c := 0; c < sq4Levels; c++ {
			lo[c] = contrib(d0, float32(c))
			if d1 < dim {
				hi[c] = contrib(d1, float32(c))
			} else {
				hi[c] = 0
			}
		}
		row := lut[j*256 : (j+1)*256]
		for b := 0; b < 256; b++ {
			row[b] = lo[b&0x0f] + hi[b>>4]
		}
	}
	return lut
}

// Distance returns the metric distance between the query and one code,
// matching the conventions of vec.Distance (smaller is more similar; L2 is
// squared, Dot is negated, Cosine is 1-cos).
func (qq *Query) Distance(code []byte) float32 {
	if qq.sq4 {
		switch qq.metric {
		case vec.L2:
			return qq.constant + lutAcc(code, qq.lut)
		case vec.Dot:
			return -(qq.constant + lutAcc(code, qq.lut))
		default: // Cosine
			dot := qq.constant + lutAcc(code, qq.lut)
			nv2 := qq.normConst + lutAcc(code, qq.normLut)
			return qq.finishCosine(dot, nv2)
		}
	}
	switch qq.metric {
	case vec.L2:
		return qq.constant + polyAcc(code, qq.lin, qq.quad)
	case vec.Dot:
		return -(qq.constant + linAcc(code, qq.lin))
	default: // Cosine
		dot := qq.constant + linAcc(code, qq.lin)
		nv2 := qq.normConst + polyAccPos(code, qq.normLin, qq.quad)
		return qq.finishCosine(dot, nv2)
	}
}

func (qq *Query) finishCosine(dot, nv2 float32) float32 {
	if qq.qNorm == 0 || nv2 <= 0 {
		return 1
	}
	return 1 - dot/(qq.qNorm*float32(math.Sqrt(float64(nv2))))
}

// DistancesMany computes distances from the query to n consecutive codes
// packed in codes (n * CodeSize bytes), writing into out[:n]. The hot L2
// paths run blocked multi-row kernels; other metrics fall back to the
// single-row kernel per code.
func (qq *Query) DistancesMany(codes []byte, n int, out []float32) {
	cs := qq.codeSize
	if qq.metric == vec.L2 && !qq.sq4 {
		// Above this row count the one-time O(dim*256) table build beats
		// re-evaluating the polynomial per byte; small scans stay on the
		// blocked polynomial kernel.
		const lutThreshold = 32
		if qq.sq8LUT == nil && n >= lutThreshold {
			qq.sq8LUT = make([]float32, cs*256)
			for d := 0; d < cs; d++ {
				l, q := qq.lin[d], qq.quad[d]
				row := qq.sq8LUT[d*256 : (d+1)*256]
				for c := 0; c < 256; c++ {
					x := float32(c)
					row[c] = x * (q*x - l)
				}
			}
		}
		if qq.sq8LUT != nil {
			// Rows are independent, so interleaving two per pass doubles
			// the in-flight table loads and hides their latency (the
			// dim*256 table outgrows L1 at typical dims).
			i := 0
			for ; i+2 <= n; i += 2 {
				r0, r1 := lutAcc2(codes[i*cs:(i+1)*cs], codes[(i+1)*cs:(i+2)*cs], qq.sq8LUT)
				out[i] = qq.constant + r0
				out[i+1] = qq.constant + r1
			}
			if i < n {
				out[i] = qq.constant + lutAcc(codes[i*cs:(i+1)*cs], qq.sq8LUT)
			}
			return
		}
		i := 0
		for ; i+4 <= n; i += 4 {
			base := i * cs
			r0, r1, r2, r3 := polyAcc4(codes[base:base+4*cs], cs, qq.lin, qq.quad)
			c := qq.constant
			out[i] = c + r0
			out[i+1] = c + r1
			out[i+2] = c + r2
			out[i+3] = c + r3
		}
		for ; i < n; i++ {
			out[i] = qq.constant + polyAcc(codes[i*cs:(i+1)*cs], qq.lin, qq.quad)
		}
		return
	}
	if qq.sq4 && qq.metric == vec.L2 {
		// Same two-row interleave as the SQ8 table scan.
		i := 0
		for ; i+2 <= n; i += 2 {
			r0, r1 := lutAcc2(codes[i*cs:(i+1)*cs], codes[(i+1)*cs:(i+2)*cs], qq.lut)
			out[i] = qq.constant + r0
			out[i+1] = qq.constant + r1
		}
		if i < n {
			out[i] = qq.constant + lutAcc(codes[i*cs:(i+1)*cs], qq.lut)
		}
		return
	}
	for i := 0; i < n; i++ {
		out[i] = qq.Distance(codes[i*cs : (i+1)*cs])
	}
}

// polyAcc accumulates Σ c*(quad*c - lin) over the code bytes, the shared
// inner loop of the SQ8 L2 kernel. Eight independent accumulators with
// up-front bounds hints let the compiler drop per-element checks and keep
// the whole reduction in registers.
func polyAcc(code []byte, lin, quad []float32) float32 {
	n := len(code)
	if n == 0 {
		return 0
	}
	_ = lin[n-1]  // bounds hint: len(lin) >= n
	_ = quad[n-1] // bounds hint: len(quad) >= n
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		c0 := float32(code[i])
		c1 := float32(code[i+1])
		c2 := float32(code[i+2])
		c3 := float32(code[i+3])
		c4 := float32(code[i+4])
		c5 := float32(code[i+5])
		c6 := float32(code[i+6])
		c7 := float32(code[i+7])
		s0 += c0 * (quad[i]*c0 - lin[i])
		s1 += c1 * (quad[i+1]*c1 - lin[i+1])
		s2 += c2 * (quad[i+2]*c2 - lin[i+2])
		s3 += c3 * (quad[i+3]*c3 - lin[i+3])
		s4 += c4 * (quad[i+4]*c4 - lin[i+4])
		s5 += c5 * (quad[i+5]*c5 - lin[i+5])
		s6 += c6 * (quad[i+6]*c6 - lin[i+6])
		s7 += c7 * (quad[i+7]*c7 - lin[i+7])
	}
	for ; i < n; i++ {
		c := float32(code[i])
		s0 += c * (quad[i]*c - lin[i])
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// polyAcc4 runs the L2 polynomial over four consecutive codes at once,
// loading each lin/quad coefficient a single time and applying it to all
// four rows — the scalar analog of broadcasting coefficients across SIMD
// lanes. codes holds the four codes back to back with stride cs.
func polyAcc4(codes []byte, cs int, lin, quad []float32) (r0, r1, r2, r3 float32) {
	if cs == 0 {
		return
	}
	a := codes[0:cs:cs]
	b := codes[cs : 2*cs : 2*cs]
	c := codes[2*cs : 3*cs : 3*cs]
	e := codes[3*cs : 4*cs : 4*cs]
	_ = lin[cs-1]
	_ = quad[cs-1]
	var a0, a1, b0, b1, c0, c1, e0, e1 float32
	i := 0
	for ; i+2 <= cs; i += 2 {
		l0, q0 := lin[i], quad[i]
		l1, q1 := lin[i+1], quad[i+1]
		xa0 := float32(a[i])
		xb0 := float32(b[i])
		xc0 := float32(c[i])
		xe0 := float32(e[i])
		a0 += xa0 * (q0*xa0 - l0)
		b0 += xb0 * (q0*xb0 - l0)
		c0 += xc0 * (q0*xc0 - l0)
		e0 += xe0 * (q0*xe0 - l0)
		xa1 := float32(a[i+1])
		xb1 := float32(b[i+1])
		xc1 := float32(c[i+1])
		xe1 := float32(e[i+1])
		a1 += xa1 * (q1*xa1 - l1)
		b1 += xb1 * (q1*xb1 - l1)
		c1 += xc1 * (q1*xc1 - l1)
		e1 += xe1 * (q1*xe1 - l1)
	}
	for ; i < cs; i++ {
		l, q := lin[i], quad[i]
		xa := float32(a[i])
		xb := float32(b[i])
		xc := float32(c[i])
		xe := float32(e[i])
		a0 += xa * (q*xa - l)
		b0 += xb * (q*xb - l)
		c0 += xc * (q*xc - l)
		e0 += xe * (q*xe - l)
	}
	return a0 + a1, b0 + b1, c0 + c1, e0 + e1
}

// polyAccPos accumulates Σ c*(quad*c + lin): the squared-norm polynomial,
// whose linear term adds rather than subtracts.
func polyAccPos(code []byte, lin, quad []float32) float32 {
	n := len(code)
	if n == 0 {
		return 0
	}
	_ = lin[n-1]
	_ = quad[n-1]
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		c0 := float32(code[i])
		c1 := float32(code[i+1])
		c2 := float32(code[i+2])
		c3 := float32(code[i+3])
		c4 := float32(code[i+4])
		c5 := float32(code[i+5])
		c6 := float32(code[i+6])
		c7 := float32(code[i+7])
		s0 += c0 * (quad[i]*c0 + lin[i])
		s1 += c1 * (quad[i+1]*c1 + lin[i+1])
		s2 += c2 * (quad[i+2]*c2 + lin[i+2])
		s3 += c3 * (quad[i+3]*c3 + lin[i+3])
		s4 += c4 * (quad[i+4]*c4 + lin[i+4])
		s5 += c5 * (quad[i+5]*c5 + lin[i+5])
		s6 += c6 * (quad[i+6]*c6 + lin[i+6])
		s7 += c7 * (quad[i+7]*c7 + lin[i+7])
	}
	for ; i < n; i++ {
		c := float32(code[i])
		s0 += c * (quad[i]*c + lin[i])
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// linAcc accumulates Σ lin*c: the inner-product kernel.
func linAcc(code []byte, lin []float32) float32 {
	n := len(code)
	if n == 0 {
		return 0
	}
	_ = lin[n-1]
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += lin[i] * float32(code[i])
		s1 += lin[i+1] * float32(code[i+1])
		s2 += lin[i+2] * float32(code[i+2])
		s3 += lin[i+3] * float32(code[i+3])
		s4 += lin[i+4] * float32(code[i+4])
		s5 += lin[i+5] * float32(code[i+5])
		s6 += lin[i+6] * float32(code[i+6])
		s7 += lin[i+7] * float32(code[i+7])
	}
	for ; i < n; i++ {
		s0 += lin[i] * float32(code[i])
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// lutAcc accumulates the per-byte LUT contributions of one code: one
// table row of 256 entries per code byte, one load and one add per byte.
// The hot loop reads eight code bytes as a single word and addresses the
// table through unsafe offsets — both the word load and the table loads
// are provably in bounds (checked once up front), and removing the
// per-element checks roughly doubles throughput on the scan benchmarks.
func lutAcc(code []byte, lut []float32) float32 {
	n := len(code)
	if n == 0 {
		return 0
	}
	if len(lut) < n*256 {
		panic("quant: lut too small for code")
	}
	base := unsafe.Pointer(unsafe.SliceData(lut))
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		w := binary.LittleEndian.Uint64(code[i : i+8])
		p := unsafe.Add(base, i*1024)
		// w>>(k-2)&0x3fc folds the float32 size scaling into the byte
		// extraction: one shift and one mask per dimension instead of
		// shift, mask and multiply.
		s0 += *(*float32)(unsafe.Add(p, (w<<2)&0x3fc))
		s1 += *(*float32)(unsafe.Add(p, 1*1024+(w>>6)&0x3fc))
		s2 += *(*float32)(unsafe.Add(p, 2*1024+(w>>14)&0x3fc))
		s3 += *(*float32)(unsafe.Add(p, 3*1024+(w>>22)&0x3fc))
		s4 += *(*float32)(unsafe.Add(p, 4*1024+(w>>30)&0x3fc))
		s5 += *(*float32)(unsafe.Add(p, 5*1024+(w>>38)&0x3fc))
		s6 += *(*float32)(unsafe.Add(p, 6*1024+(w>>46)&0x3fc))
		s7 += *(*float32)(unsafe.Add(p, 7*1024+(w>>54)&0x3fc))
	}
	for ; i < n; i++ {
		s0 += lut[i*256+int(code[i])]
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// lutAcc2 is lutAcc over two equal-length code rows at once: the rows'
// table loads are independent, so interleaving them keeps twice as many
// loads in flight and hides the table's L2 latency during batch scans.
func lutAcc2(a, b []byte, lut []float32) (float32, float32) {
	n := len(a)
	if len(b) != n {
		panic("quant: lutAcc2 rows differ in length")
	}
	if n == 0 {
		return 0, 0
	}
	if len(lut) < n*256 {
		panic("quant: lut too small for code")
	}
	base := unsafe.Pointer(unsafe.SliceData(lut))
	var s0, s1, s2, s3 float32
	var t0, t1, t2, t3 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		wa := binary.LittleEndian.Uint64(a[i : i+8])
		wb := binary.LittleEndian.Uint64(b[i : i+8])
		p := unsafe.Add(base, i*1024)
		s0 += *(*float32)(unsafe.Add(p, (wa<<2)&0x3fc))
		t0 += *(*float32)(unsafe.Add(p, (wb<<2)&0x3fc))
		s1 += *(*float32)(unsafe.Add(p, 1*1024+(wa>>6)&0x3fc))
		t1 += *(*float32)(unsafe.Add(p, 1*1024+(wb>>6)&0x3fc))
		s2 += *(*float32)(unsafe.Add(p, 2*1024+(wa>>14)&0x3fc))
		t2 += *(*float32)(unsafe.Add(p, 2*1024+(wb>>14)&0x3fc))
		s3 += *(*float32)(unsafe.Add(p, 3*1024+(wa>>22)&0x3fc))
		t3 += *(*float32)(unsafe.Add(p, 3*1024+(wb>>22)&0x3fc))
		s0 += *(*float32)(unsafe.Add(p, 4*1024+(wa>>30)&0x3fc))
		t0 += *(*float32)(unsafe.Add(p, 4*1024+(wb>>30)&0x3fc))
		s1 += *(*float32)(unsafe.Add(p, 5*1024+(wa>>38)&0x3fc))
		t1 += *(*float32)(unsafe.Add(p, 5*1024+(wb>>38)&0x3fc))
		s2 += *(*float32)(unsafe.Add(p, 6*1024+(wa>>46)&0x3fc))
		t2 += *(*float32)(unsafe.Add(p, 6*1024+(wb>>46)&0x3fc))
		s3 += *(*float32)(unsafe.Add(p, 7*1024+(wa>>54)&0x3fc))
		t3 += *(*float32)(unsafe.Add(p, 7*1024+(wb>>54)&0x3fc))
	}
	for ; i < n; i++ {
		s0 += lut[i*256+int(a[i])]
		t0 += lut[i*256+int(b[i])]
	}
	return (s0 + s1) + (s2 + s3), (t0 + t1) + (t2 + t3)
}
