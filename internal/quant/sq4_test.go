package quant

import (
	"bytes"
	"math"
	"testing"

	"micronn/internal/vec"
)

func trainOnKind(kind Type, clip float64, vectors [][]float32) *Codebook {
	t := NewTrainerKind(kind, len(vectors[0]), clip)
	for _, v := range vectors {
		t.Add(v)
	}
	return t.Codebook()
}

func TestSQ4NibblePacking(t *testing.T) {
	cb := &Codebook{
		Kind:  SQ4,
		Min:   []float32{0, 0, 0},
		Delta: []float32{1, 1, 1},
	}
	if got := cb.CodeSize(); got != 2 {
		t.Fatalf("CodeSize: got %d, want 2", got)
	}
	code := cb.Encode(nil, []float32{1, 2, 3})
	// Even dimension in the low nibble, odd in the high; trailing odd
	// dimension leaves the final high nibble zero.
	if !bytes.Equal(code, []byte{0x21, 0x03}) {
		t.Fatalf("packed code: got %x, want 2103", code)
	}
	dec := cb.Decode(make([]float32, 3), code)
	for d, want := range []float32{1, 2, 3} {
		if dec[d] != want {
			t.Fatalf("dim %d: decoded %v, want %v", d, dec[d], want)
		}
	}
}

func TestSQ4EncodeDecodeRoundTripErrorBound(t *testing.T) {
	const dim = 37 // odd size exercises the packing tail
	vectors := randVectors(21, 500, dim, 3)
	cb := trainOnKind(SQ4, 0, vectors)
	if cb.CodeSize() != (dim+1)/2 {
		t.Fatalf("CodeSize: got %d, want %d", cb.CodeSize(), (dim+1)/2)
	}
	dec := make([]float32, dim)
	var code []byte
	for _, v := range vectors {
		code = cb.Encode(code[:0], v)
		if len(code) != cb.CodeSize() {
			t.Fatalf("code length %d, want %d", len(code), cb.CodeSize())
		}
		cb.Decode(dec, code)
		for d := range v {
			bound := float64(cb.Delta[d])/2 + 1e-6
			if diff := math.Abs(float64(v[d] - dec[d])); diff > bound {
				t.Fatalf("dim %d: |%v - %v| = %v > half-step %v", d, v[d], dec[d], diff, bound)
			}
		}
	}
}

func TestSQ4EncodeClampsOutOfRange(t *testing.T) {
	cb := trainOnKind(SQ4, 0, [][]float32{{0, 0}, {1, 1}})
	code := cb.Encode(nil, []float32{-5, 9})
	if code[0]&0x0f != 0 {
		t.Fatalf("below-range code: got %d, want 0", code[0]&0x0f)
	}
	if code[0]>>4 != sq4Levels-1 {
		t.Fatalf("above-range code: got %d, want %d", code[0]>>4, sq4Levels-1)
	}
}

func TestSQ4AsymmetricDistanceMatchesDecoded(t *testing.T) {
	const dim = 33
	vectors := randVectors(22, 200, dim, 2)
	cb := trainOnKind(SQ4, 0, vectors)
	queries := randVectors(23, 5, dim, 2)

	dec := make([]float32, dim)
	for _, metric := range []vec.Metric{vec.L2, vec.Dot, vec.Cosine} {
		for _, q := range queries {
			qq := cb.NewQuery(metric, q)
			var code []byte
			for _, v := range vectors {
				code = cb.Encode(code[:0], v)
				cb.Decode(dec, code)
				got := qq.Distance(code)
				want := vec.Distance(metric, q, dec)
				tol := 1e-2 * (1 + math.Abs(float64(want)))
				if diff := math.Abs(float64(got - want)); diff > tol {
					t.Fatalf("%v: asymmetric %v vs decoded %v (diff %v)", metric, got, want, diff)
				}
			}
		}
	}
}

func TestSQ4DistancesManyMatchesDistance(t *testing.T) {
	const dim, n = 16, 33
	vectors := randVectors(24, n, dim, 2)
	cb := trainOnKind(SQ4, 0, vectors)
	q := randVectors(25, 1, dim, 2)[0]

	for _, metric := range []vec.Metric{vec.L2, vec.Dot, vec.Cosine} {
		qq := cb.NewQuery(metric, q)
		var packed []byte
		for _, v := range vectors {
			packed = cb.Encode(packed, v)
		}
		out := make([]float32, n)
		qq.DistancesMany(packed, n, out)
		for i, v := range vectors {
			want := qq.Distance(cb.Encode(nil, v))
			// The batch path interleaves rows with a different accumulator
			// grouping than the single-row kernel, so agreement is to
			// rounding, not bit-exact.
			tol := 1e-5 * (1 + math.Abs(float64(want)))
			if diff := math.Abs(float64(out[i] - want)); diff > tol {
				t.Fatalf("%v row %d: %v != %v", metric, i, out[i], want)
			}
		}
	}
}

// TestClippedTrainerIgnoresOutliers is the outlier-robustness property: a
// handful of extreme rows must not stretch the quantization range. The
// clipped SQ4 codebook's step size should stay close to the inlier range
// (~[-1,1] scaled), not the outlier range (~[-100,100]).
func TestClippedTrainerIgnoresOutliers(t *testing.T) {
	const dim = 8
	vectors := randVectors(26, 600, dim, 1)
	for i := 0; i < 5; i++ {
		out := make([]float32, dim)
		for d := range out {
			if (i+d)%2 == 0 {
				out[d] = 100
			} else {
				out[d] = -100
			}
		}
		vectors = append(vectors, out)
	}

	unclipped := trainOnKind(SQ4, 0, vectors)
	clipped := trainOnKind(SQ4, 0.01, vectors)
	for d := 0; d < dim; d++ {
		// Unclipped: range ~200 over 15 steps => delta > 10.
		if unclipped.Delta[d] < 5 {
			t.Fatalf("dim %d: unclipped delta %v unexpectedly small", d, unclipped.Delta[d])
		}
		// Clipped: range close to the inlier spread (|x| <~ 4).
		if clipped.Delta[d] > 1 {
			t.Fatalf("dim %d: clipped delta %v did not shed outliers", d, clipped.Delta[d])
		}
	}

	// Reconstruction of inlier data must be far better with clipping.
	dec := make([]float32, dim)
	var errClip, errFull float64
	var code []byte
	for _, v := range vectors[:600] {
		code = clipped.Encode(code[:0], v)
		clipped.Decode(dec, code)
		for d := range v {
			errClip += math.Abs(float64(v[d] - dec[d]))
		}
		code = unclipped.Encode(code[:0], v)
		unclipped.Decode(dec, code)
		for d := range v {
			errFull += math.Abs(float64(v[d] - dec[d]))
		}
	}
	if errClip*2 > errFull {
		t.Fatalf("clipped reconstruction error %v not well below unclipped %v", errClip, errFull)
	}
}

func TestTrainerKindNormalization(t *testing.T) {
	tr := NewTrainerKind(None, 4, -1)
	if tr.kind != SQ8 || tr.clip != 0 {
		t.Fatalf("got kind %v clip %v, want sq8 / 0", tr.kind, tr.clip)
	}
	tr = NewTrainerKind(SQ4, 4, 0.7)
	if tr.clip != 0 {
		t.Fatalf("out-of-range clip not normalized: %v", tr.clip)
	}
	if tr.ClipPercentile() != 0 {
		t.Fatalf("ClipPercentile: got %v, want 0", tr.ClipPercentile())
	}
}

func TestMarshalRoundTripSQ4(t *testing.T) {
	vectors := randVectors(27, 50, 9, 2)
	cb := trainOnKind(SQ4, 0.05, vectors)
	blob := cb.Marshal()
	if blob[0] != codebookVersionV2 {
		t.Fatalf("SQ4 codebook marshalled as version %d, want %d", blob[0], codebookVersionV2)
	}
	got, err := UnmarshalCodebook(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != SQ4 {
		t.Fatalf("round-tripped kind %v, want sq4", got.Kind)
	}
	for d := range cb.Min {
		if got.Min[d] != cb.Min[d] || got.Delta[d] != cb.Delta[d] {
			t.Fatalf("dim %d mismatch after round trip", d)
		}
	}

	// Legacy version-1 blobs still parse (as SQ8).
	sq8 := trainOn(vectors)
	legacy, err := UnmarshalCodebook(sq8.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if legacy.kind() != SQ8 {
		t.Fatalf("legacy blob parsed as %v, want sq8", legacy.kind())
	}

	// Unknown kind bytes are rejected.
	bad := append([]byte{}, blob...)
	bad[1] = 9
	if _, err := UnmarshalCodebook(bad); err == nil {
		t.Fatal("unknown kind byte accepted")
	}
}

func TestParseTypeSQ4(t *testing.T) {
	qt, err := ParseType("sq4")
	if err != nil || qt != SQ4 {
		t.Fatalf("ParseType(sq4): %v, %v", qt, err)
	}
	if SQ4.String() != "sq4" {
		t.Fatalf("SQ4.String(): %q", SQ4.String())
	}
	if _, err := ParseType("sq2"); err == nil {
		t.Fatal("ParseType accepted sq2")
	}
}

func BenchmarkAsymmetricL2SQ4(b *testing.B) {
	const dim, n = 128, 256
	vectors := randVectors(28, n, dim, 3)
	cb := trainOnKind(SQ4, 0.005, vectors)
	var packed []byte
	for _, v := range vectors {
		packed = cb.Encode(packed, v)
	}
	q := randVectors(29, 1, dim, 3)[0]
	qq := cb.NewQuery(vec.L2, q)
	out := make([]float32, n)
	b.SetBytes(int64(n * cb.CodeSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qq.DistancesMany(packed, n, out)
	}
}
