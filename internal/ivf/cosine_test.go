package ivf

import (
	"fmt"
	"math/rand"
	"testing"

	"micronn/internal/storage"
	"micronn/internal/vec"
)

// TestCosineEndToEnd exercises the full index lifecycle under the cosine
// metric (several Table 2 datasets — NYTimes, DEEPImage, InternalA — use
// it): build, search recall, flush, and ordering sanity.
func TestCosineEndToEnd(t *testing.T) {
	env := newEnv(t, Config{Dim: 16, Metric: vec.Cosine, TargetPartitionSize: 25, Seed: 31})
	data := clusteredData(41, 1000, 16, 12)
	for i := 0; i < data.Rows; i++ {
		vec.Normalize(data.Row(i))
	}
	env.upsertAll(t, data, nil)
	env.rebuild(t)

	rng := rand.New(rand.NewSource(6))
	err := env.store.View(func(rt *storage.ReadTxn) error {
		var total float64
		const queries = 20
		for qi := 0; qi < queries; qi++ {
			q := data.Row(rng.Intn(data.Rows))
			got, _, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: 8})
			if err != nil {
				return err
			}
			// Distances must be ascending cosine distances in [0, 2].
			for i, r := range got {
				if r.Distance < -1e-5 || r.Distance > 2+1e-5 {
					t.Errorf("cosine distance out of range: %v", r.Distance)
				}
				if i > 0 && r.Distance < got[i-1].Distance {
					t.Errorf("results unsorted at %d", i)
				}
			}
			total += recallOf(got, bruteForce(vec.Cosine, data, q, 10))
		}
		if avg := total / queries; avg < 0.9 {
			t.Errorf("cosine recall = %v", avg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Flush under cosine keeps centroids unit-normalized enough for
	// meaningful assignment (running mean then renormalized lazily at
	// next rebuild; assignments still work).
	err = env.store.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < 50; i++ {
			v := make([]float32, 16)
			copy(v, data.Row(i))
			if err := env.ix.Upsert(wt, fmt.Sprintf("dup-%d", i), v, nil); err != nil {
				return err
			}
		}
		_, err := env.ix.FlushDelta(wt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = env.store.View(func(rt *storage.ReadTxn) error {
		got, _, err := env.ix.Search(rt, data.Row(3), SearchOptions{K: 2, NProbe: 6})
		if err != nil {
			return err
		}
		// The duplicate of row 3 must be found at distance ~0.
		found := false
		for _, r := range got {
			if r.AssetID == "dup-3" || r.AssetID == "asset-3" {
				found = true
			}
		}
		if !found {
			t.Errorf("flushed duplicate missing: %+v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDotMetricSearch covers the inner-product metric path.
func TestDotMetricSearch(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, Metric: vec.Dot, TargetPartitionSize: 20, Seed: 33})
	data := clusteredData(43, 400, 8, 6)
	env.upsertAll(t, data, nil)
	env.rebuild(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		q := data.Row(7)
		got, _, err := env.ix.Search(rt, q, SearchOptions{K: 5, Exact: true})
		if err != nil {
			return err
		}
		want := bruteForce(vec.Dot, data, q, 5)
		if r := recallOf(got, want); r != 1 {
			t.Errorf("dot exact recall = %v", r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
