package ivf

import (
	"math/rand"
	"testing"

	"micronn/internal/storage"
	"micronn/internal/vec"
)

// TestCoarseIndexCandidatesCoverNearest verifies the two-level structure:
// for a query near a known centroid, the candidate set must contain it.
func TestCoarseIndexCandidatesCoverNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const k, dim = 900, 16
	cents := vec.NewMatrix(k, dim)
	for i := 0; i < k; i++ {
		for j := 0; j < dim; j++ {
			cents.Row(i)[j] = float32(rng.NormFloat64() * 10)
		}
	}
	ci, err := buildCoarseIndex(vec.L2, cents, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every centroid must appear in exactly one member list.
	seen := make(map[int32]bool)
	for _, members := range ci.members {
		for _, m := range members {
			if seen[m] {
				t.Fatalf("centroid %d in two super-clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != k {
		t.Fatalf("member lists cover %d of %d centroids", len(seen), k)
	}

	hits := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		target := rng.Intn(k)
		q := make([]float32, dim)
		for j := 0; j < dim; j++ {
			q[j] = cents.Row(target)[j] + float32(rng.NormFloat64()*0.01)
		}
		cand := ci.candidates(vec.L2, q, 64)
		for _, c := range cand {
			if int(c) == target {
				hits++
				break
			}
		}
	}
	// The query sits essentially on the target centroid; the coarse
	// index should almost never miss it.
	if hits < trials*95/100 {
		t.Errorf("coarse candidates contained the true centroid in %d/%d trials", hits, trials)
	}
}

// TestCoarseProbeMatchesLinearRecall builds an index big enough to trip a
// low coarse threshold and compares search recall with and without it.
func TestCoarseProbeMatchesLinearRecall(t *testing.T) {
	data := clusteredData(9, 3000, 12, 40)

	build := func(threshold int) (*testEnv, []int64) {
		env := newEnv(t, Config{
			Dim: 12, TargetPartitionSize: 10, Seed: 4,
			CentroidIndexThreshold: threshold,
		})
		env.upsertAll(t, data, nil)
		env.rebuild(t)
		return env, nil
	}

	linear, _ := build(-1) // disabled
	coarse, _ := build(50) // 300 partitions >> 50: coarse path active

	var linRecall, coarseRecall float64
	const queries = 30
	err := linear.store.View(func(rtL *storage.ReadTxn) error {
		return coarse.store.View(func(rtC *storage.ReadTxn) error {
			// Confirm the coarse index is actually in play.
			csC, err := coarse.ix.loadCentroids(rtC)
			if err != nil {
				return err
			}
			if csC.coarse == nil {
				t.Fatal("coarse index not built despite threshold")
			}
			csL, err := linear.ix.loadCentroids(rtL)
			if err != nil {
				return err
			}
			if csL.coarse != nil {
				t.Fatal("coarse index built while disabled")
			}

			rng := rand.New(rand.NewSource(8))
			for qi := 0; qi < queries; qi++ {
				q := data.Row(rng.Intn(data.Rows))
				want := bruteForce(vec.L2, data, q, 10)
				gotL, _, err := linear.ix.Search(rtL, q, SearchOptions{K: 10, NProbe: 12})
				if err != nil {
					return err
				}
				gotC, _, err := coarse.ix.Search(rtC, q, SearchOptions{K: 10, NProbe: 12})
				if err != nil {
					return err
				}
				linRecall += recallOf(gotL, want)
				coarseRecall += recallOf(gotC, want)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	linRecall /= queries
	coarseRecall /= queries
	if coarseRecall < linRecall-0.08 {
		t.Errorf("coarse recall %.3f too far below linear %.3f", coarseRecall, linRecall)
	}
	if coarseRecall < 0.85 {
		t.Errorf("coarse recall %.3f too low", coarseRecall)
	}
}

// TestCoarseIndexPersistsConfig verifies the threshold survives reopen.
func TestCoarseIndexPersistsConfig(t *testing.T) {
	env := newEnv(t, Config{Dim: 4, CentroidIndexThreshold: 123, Seed: 1})
	err := env.store.Update(func(wt *storage.WriteTxn) error {
		return env.ix.Upsert(wt, "a", []float32{1, 2, 3, 4}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(env.db)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Config().CentroidIndexThreshold != 123 {
		t.Errorf("threshold after reopen = %d", ix2.Config().CentroidIndexThreshold)
	}
}

func BenchmarkProbeSetLinearVsCoarse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const k, dim = 8000, 32
	cents := vec.NewMatrix(k, dim)
	ids := make([]int64, k)
	counts := make([]int64, k)
	for i := 0; i < k; i++ {
		ids[i] = int64(i + 1)
		for j := 0; j < dim; j++ {
			cents.Row(i)[j] = float32(rng.NormFloat64() * 10)
		}
	}
	cs := &centroidSet{ids: ids, counts: counts, mat: cents, norms: cents.Norms(nil)}
	ix := &Index{cfg: Config{Dim: dim, Metric: vec.L2}}
	q := make([]float32, dim)

	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q[0] = float32(i)
			_ = ix.probeSet(cs, q, 16)
		}
	})

	coarse, err := buildCoarseIndex(vec.L2, cents, 1)
	if err != nil {
		b.Fatal(err)
	}
	csCoarse := &centroidSet{ids: ids, counts: counts, mat: cents, norms: cents.Norms(nil), coarse: coarse}
	b.Run("two-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q[0] = float32(i)
			_ = ix.probeSet(csCoarse, q, 16)
		}
	})
}
