package ivf

import (
	"errors"
	"fmt"
	"time"

	"micronn/internal/btree"
	"micronn/internal/clustering"
	"micronn/internal/quant"
	"micronn/internal/reldb"
	"micronn/internal/storage"
	"micronn/internal/vec"
)

// Incremental partition maintenance (paper §3.6): instead of answering every
// growth signal with a full rebuild — which holds the single writer for a
// whole-index rewrite — the index monitor produces a MaintenancePlan whose
// steps each touch one partition: oversized partitions are split by a local
// k-means over their own rows, undersized ones are folded into their nearest
// surviving centroids. Every step runs in its own short write transaction,
// so concurrent readers and writers wait at most one partition's worth of
// I/O. A full Rebuild remains only for the initial build of a never-built
// index.
//
// Splits additionally run in two phases (SplitPartitionTwoPhase): the
// expensive half — collecting the partition and clustering it — executes
// against a pinned snapshot while holding only that partition's lock, so
// concurrent upserts, deletes and searches proceed untouched; the store-wide
// writer gate is taken just for the short apply step, which first validates
// the partition's version counter (see locks.go) and returns ErrPlanStale
// if a concurrent commit moved the partition under the plan.

// MaintenanceAction names one step of a maintenance plan.
type MaintenanceAction string

// Maintenance actions, in the order the planner prefers them.
const (
	// ActionNone means the index is within all policy bounds.
	ActionNone MaintenanceAction = "none"
	// ActionRebuild is the initial full build of a never-built index.
	ActionRebuild MaintenanceAction = "rebuild"
	// ActionCompact folds one immutable sorted run into the IVF partitions,
	// physically purging its tombstones (LSM ingest, see runs.go).
	ActionCompact MaintenanceAction = "compact"
	// ActionFlush folds the delta-store into the IVF partitions.
	ActionFlush MaintenanceAction = "flush"
	// ActionSplit re-clusters one oversized partition into 2+ partitions.
	ActionSplit MaintenanceAction = "split"
	// ActionMerge folds one undersized partition into its neighbors.
	ActionMerge MaintenanceAction = "merge"
)

// MaintenancePolicy bounds the delta backlog and the per-partition sizes
// the planner maintains. Zero values pick defaults derived from the
// configured TargetPartitionSize.
type MaintenancePolicy struct {
	// FlushThreshold flushes the delta-store once it holds at least this
	// many vectors (default: TargetPartitionSize).
	FlushThreshold int
	// MinPartitionSize merges partitions smaller than this
	// (default: TargetPartitionSize/4, at least 1; clamped to a third of
	// MaxPartitionSize so split results never bounce back into merges).
	MinPartitionSize int
	// MaxPartitionSize splits partitions larger than this
	// (default: 2*TargetPartitionSize).
	MaxPartitionSize int
	// MaxCompactRuns caps how many sorted runs one ActionCompact step may
	// merge (default 8). 1 restores the one-run-per-step policy.
	MaxCompactRuns int
}

func (ix *Index) fillPolicy(p MaintenancePolicy) MaintenancePolicy {
	target := ix.cfg.TargetPartitionSize
	if p.FlushThreshold <= 0 {
		p.FlushThreshold = target
	}
	if p.MaxPartitionSize <= 0 {
		p.MaxPartitionSize = 2 * target
	}
	if p.MinPartitionSize <= 0 {
		p.MinPartitionSize = target / 4
	}
	// Keep the merge bound well under the split bound: splitting an
	// oversized partition yields pieces of roughly MaxPartitionSize/2, and
	// a merge bound close to that would ping-pong split results straight
	// back into merges.
	if p.MinPartitionSize > p.MaxPartitionSize/3 {
		p.MinPartitionSize = p.MaxPartitionSize / 3
	}
	if p.MinPartitionSize < 1 {
		p.MinPartitionSize = 1
	}
	if p.MaxCompactRuns <= 0 {
		p.MaxCompactRuns = defaultMaxCompactRuns
	}
	return p
}

// defaultMaxCompactRuns bounds a single tiered merge: enough to collapse a
// storm's worth of runs in one pass, small enough that the apply step stays
// a short transaction.
const defaultMaxCompactRuns = 8

// MaintenancePlan is the index monitor's decision: the single next step
// that moves the index toward the policy bounds, or ActionNone.
type MaintenancePlan struct {
	Action MaintenanceAction
	// Partition is the split/merge target; for ActionCompact it names the
	// first run's vectors-table partition (-run id), kept for display and
	// for older callers.
	Partition int64
	// Size is the row count that triggered the step: the delta backlog for
	// a flush, the target partition's size for a split or merge, the
	// combined row count of the selected tier for a compact.
	Size int64
	// Runs lists the run ids an ActionCompact step merges (a size tier,
	// oldest first — see planCompaction).
	Runs []int64
}

// PlanMaintenance inspects the index at txn's snapshot and returns the next
// maintenance step. The per-partition sizes come from the centroid table's
// transactional counts, so the plan is exact, not an estimate. Priority:
// initial build, delta flush, split (largest offender first), merge
// (smallest partition first).
func (ix *Index) PlanMaintenance(txn btree.ReadTxn, pol MaintenancePolicy) (*MaintenancePlan, error) {
	pol = ix.fillPolicy(pol)
	st, err := ix.getState(txn)
	if err != nil {
		return nil, err
	}
	if st.NumPartitions == 0 {
		if st.NumVectors > 0 {
			return &MaintenancePlan{Action: ActionRebuild, Size: st.NumVectors}, nil
		}
		return &MaintenancePlan{Action: ActionNone}, nil
	}
	if len(st.Runs) > 0 {
		// Compact runs before anything else: runs are scanned by every
		// search, so draining them beats growing the backlog. planCompaction
		// picks a whole size tier so one step folds several runs in one
		// merge. Partition is the first run's vectors-table partition id.
		runs := planCompaction(&st, pol.MaxCompactRuns)
		var size int64
		for _, id := range runs {
			if i := st.runIdx(id); i >= 0 {
				size += st.Runs[i].Rows + st.Runs[i].Dead
			}
		}
		return &MaintenancePlan{Action: ActionCompact, Partition: -runs[0], Size: size, Runs: runs}, nil
	}
	if st.DeltaCount >= int64(pol.FlushThreshold) {
		return &MaintenancePlan{Action: ActionFlush, Size: st.DeltaCount}, nil
	}
	splitPart, mergePart := int64(-1), int64(-1)
	var splitN, mergeN int64
	err = ix.centroids.Scan(txn, nil, func(row reldb.Row) error {
		id, cnt := row[0].Int, row[2].Int
		if cnt > int64(pol.MaxPartitionSize) && cnt > splitN {
			splitPart, splitN = id, cnt
		}
		if cnt < int64(pol.MinPartitionSize) && (mergePart < 0 || cnt < mergeN) {
			mergePart, mergeN = id, cnt
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if splitPart >= 0 {
		return &MaintenancePlan{Action: ActionSplit, Partition: splitPart, Size: splitN}, nil
	}
	if mergePart >= 0 && st.NumPartitions >= 2 {
		return &MaintenancePlan{Action: ActionMerge, Partition: mergePart, Size: mergeN}, nil
	}
	return &MaintenancePlan{Action: ActionNone}, nil
}

// tierOf buckets a run by size: tier t holds runs of [4^t, 4^(t+1)) rows
// (tombstoned rows included — they occupy the run until compaction).
func tierOf(rows int64) int {
	t := 0
	for rows >= 4 {
		rows /= 4
		t++
	}
	return t
}

// planCompaction picks the runs one ActionCompact step merges: a size
// tier, in the LSM sense. Runs are bucketed by tierOf; the tier with the
// most runs wins (ties to the smaller tier, where merging is cheapest),
// and its oldest maxRuns members form the merge. When no tier has two
// runs, the oldest run alone is compacted — the planner always drains, so
// "Maintain leaves no runs behind" still holds; tiering only changes how
// many runs each transaction folds. Never returns an empty slice (callers
// guard len(st.Runs) > 0).
func planCompaction(st *state, maxRuns int) []int64 {
	if maxRuns < 1 {
		maxRuns = 1
	}
	tiers := make(map[int][]int64)
	for _, r := range st.Runs {
		t := tierOf(r.Rows + r.Dead)
		tiers[t] = append(tiers[t], r.ID) // st.Runs is oldest-first
	}
	best, bestN := -1, 1
	for t, ids := range tiers {
		if len(ids) > bestN || (len(ids) == bestN && best >= 0 && t < best) {
			best, bestN = t, len(ids)
		}
	}
	if best < 0 {
		return []int64{st.Runs[0].ID}
	}
	ids := tiers[best]
	if len(ids) > maxRuns {
		ids = ids[:maxRuns]
	}
	return ids
}

// MaintainStep plans and executes at most one maintenance step inside wt.
// Decision and action share the transaction, so the state the planner read
// cannot change before the step runs (the decide-then-act race a
// two-transaction Maintain would have). Callers loop MaintainStep in fresh
// short transactions until it returns ActionNone.
func (ix *Index) MaintainStep(wt *storage.WriteTxn, pol MaintenancePolicy) (*MaintenancePlan, *MaintenanceStats, error) {
	plan, err := ix.PlanMaintenance(wt, pol)
	if err != nil {
		return nil, nil, err
	}
	var ms *MaintenanceStats
	switch plan.Action {
	case ActionRebuild:
		ms, err = ix.Rebuild(wt)
	case ActionCompact:
		ms, err = ix.CompactRuns(wt, plan.Runs)
	case ActionFlush:
		ms, err = ix.FlushDelta(wt)
	case ActionSplit:
		ms, err = ix.SplitPartition(wt, plan.Partition)
	case ActionMerge:
		ms, err = ix.MergePartitions(wt, plan.Partition)
	default:
		ms = &MaintenanceStats{}
	}
	if err != nil {
		return nil, nil, err
	}
	return plan, ms, nil
}

// nextPartitionID returns the first unused partition id. Databases created
// before incremental maintenance carry NextPartID 0; the centroid table
// then provides the high-water mark.
func (ix *Index) nextPartitionID(txn btree.ReadTxn, st *state) (int64, error) {
	if st.NextPartID > 0 {
		return st.NextPartID, nil
	}
	max := int64(0)
	err := ix.centroids.ScanKeys(txn, nil, func(key reldb.Row) error {
		if key[0].Int > max {
			max = key[0].Int
		}
		return nil
	})
	return max + 1, err
}

// partRow is one vector row buffered for a split or merge. blob holds the
// partition row's payload (SQ8 code or float32 vector) copied out of
// transaction-owned memory.
type partRow struct {
	vid   int64
	asset string
	blob  []byte
}

// collectPartition buffers the rows of one partition. Partitions are
// size-bounded by this very maintenance machinery, so the buffer stays a
// few hundred rows.
func (ix *Index) collectPartition(txn btree.ReadTxn, part int64) ([]partRow, error) {
	var rows []partRow
	err := ix.vectors.Scan(txn, []reldb.Value{reldb.I(part)}, func(row reldb.Row) error {
		rows = append(rows, partRow{
			vid:   row[1].Int,
			asset: row[2].Str,
			blob:  append([]byte(nil), row[3].Bts...),
		})
		return nil
	})
	return rows, err
}

// exactVectors decodes the exact float32 vectors of rows into a matrix:
// from the raw store when the index is quantized (partition rows then hold
// lossy codes), from the row blobs otherwise.
func (ix *Index) exactVectors(txn btree.ReadTxn, rows []partRow) (*vec.Matrix, error) {
	m := vec.NewMatrix(len(rows), ix.cfg.Dim)
	for i, r := range rows {
		blob := r.blob
		if ix.rawvecs != nil {
			raw, err := ix.rawVector(txn, r.vid)
			if err != nil {
				return nil, fmt.Errorf("ivf: raw vector %d: %w", r.vid, err)
			}
			blob = raw
		}
		m.AppendRowBlob(i, blob)
	}
	return m, nil
}

// moveRow rewrites one vector row from src to dst, keeping the payload
// byte-identical. On a quantized index the payload is the SQ8 code, which
// stays a valid encoding because splits and merges never change the
// codebook — moving the code is exactly re-encoding the raw vector against
// the existing codebook.
func (ix *Index) moveRow(wt *storage.WriteTxn, src, dst int64, r partRow) error {
	if err := ix.vectors.Delete(wt, reldb.I(src), reldb.I(r.vid)); err != nil {
		return err
	}
	if err := ix.vectors.Put(wt, reldb.Row{reldb.I(dst), reldb.I(r.vid), reldb.S(r.asset), reldb.B(r.blob)}); err != nil {
		return err
	}
	if err := ix.assets.Put(wt, reldb.Row{reldb.S(r.asset), reldb.I(dst), reldb.I(r.vid)}); err != nil {
		return err
	}
	if err := ix.vids.Put(wt, reldb.Row{reldb.I(r.vid), reldb.I(dst), reldb.S(r.asset)}); err != nil {
		return err
	}
	return wt.SpillIfNeeded()
}

// ErrPlanStale is returned by the apply phase of a two-phase maintenance
// step when a concurrent commit changed the target partition between the
// prepare snapshot and the writer gate. The plan is discarded; callers
// retry with a fresh prepare or fall back to the single-transaction path.
var ErrPlanStale = errors.New("ivf: maintenance plan invalidated by concurrent writes")

// splitPlan is a prepared split: everything the expensive phase computed
// from its snapshot, self-contained (row blobs are copies) so it outlives
// the snapshot and can be applied under a later write transaction.
type splitPlan struct {
	part   int64
	rows   []partRow
	assign []int
	cents  *vec.Matrix
	counts []int64
}

// computeSplit runs the expensive half of a split — collecting the
// partition's rows and clustering them locally — against any snapshot,
// without writing. gen seeds the clustering (the state generation at the
// same snapshot). Returns (nil, n, nil) when the partition holds fewer
// than two rows and there is nothing to cluster; the caller repairs the
// persisted count instead.
func (ix *Index) computeSplit(txn btree.ReadTxn, part int64, gen int64) (*splitPlan, int, error) {
	rows, err := ix.collectPartition(txn, part)
	if err != nil {
		return nil, 0, err
	}
	n := len(rows)
	target := ix.cfg.TargetPartitionSize
	k := (n + target - 1) / target
	if k < 2 && n >= 2 {
		// The policy's split bound can sit below the clustering target
		// (e.g. `micronn maintain -max` under the create-time partition
		// size); a split was requested, so a split must happen — anything
		// less livelocks the planner on this partition.
		k = 2
	}
	if k < 2 {
		return nil, n, nil
	}

	data, err := ix.exactVectors(txn, rows)
	if err != nil {
		return nil, 0, err
	}
	res, err := clustering.FullKMeans(clustering.Config{
		K:                 k,
		TargetClusterSize: target,
		Metric:            ix.cfg.Metric,
		Seed:              ix.cfg.Seed + part + gen,
	}, data, 25)
	if err != nil {
		return nil, 0, err
	}
	k = res.Centroids.Rows

	assign := make([]int, n)
	counts := make([]int64, k)
	dists := make([]float32, k)
	nonEmptyClusters := 0
	for i := 0; i < n; i++ {
		assign[i] = clustering.Assign(ix.cfg.Metric, res.Centroids, data.Row(i), dists)
		if counts[assign[i]] == 0 {
			nonEmptyClusters++
		}
		counts[assign[i]]++
	}
	if nonEmptyClusters < 2 {
		// Degenerate data (e.g. one vector duplicated past the split
		// bound): k-means cannot separate it, and returning without
		// progress would livelock the planner on the same partition.
		// Fall back to a mechanical even split; the resulting centroids
		// are the per-chunk means (identical for true duplicates, which
		// is as good as any placement for them).
		for i := 0; i < n; i++ {
			assign[i] = i * k / n
		}
		for c := 0; c < k; c++ {
			counts[c] = 0
			row := res.Centroids.Row(c)
			for j := range row {
				row[j] = 0
			}
		}
		for i := 0; i < n; i++ {
			counts[assign[i]]++
			vec.Add(res.Centroids.Row(assign[i]), data.Row(i))
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				vec.Scale(res.Centroids.Row(c), 1/float32(counts[c]))
				if ix.cfg.Metric == vec.Cosine {
					vec.Normalize(res.Centroids.Row(c))
				}
			}
		}
	}
	return &splitPlan{part: part, rows: rows, assign: assign, cents: res.Centroids, counts: counts}, n, nil
}

// applySplit executes a prepared split inside wt: allocate partition ids,
// move displaced rows, write the new centroids and bump the state. The
// caller has already validated that the partition is unchanged since the
// plan was computed.
func (ix *Index) applySplit(wt *storage.WriteTxn, plan *splitPlan, ms *MaintenanceStats) error {
	part := plan.part
	st, err := ix.getState(wt)
	if err != nil {
		return err
	}
	k := plan.cents.Rows

	// Partition ids: the first non-empty cluster inherits part (its rows
	// need no move if they assign there), the rest allocate fresh ids.
	next, err := ix.nextPartitionID(wt, &st)
	if err != nil {
		return err
	}
	ids := make([]int64, k)
	reused := false
	nonEmpty := 0
	for c := 0; c < k; c++ {
		if plan.counts[c] == 0 {
			ids[c] = -1
			continue
		}
		nonEmpty++
		if !reused {
			ids[c] = part
			reused = true
		} else {
			ids[c] = next
			next++
		}
	}

	for i, r := range plan.rows {
		dst := ids[plan.assign[i]]
		ms.VectorsAssigned++
		if dst == part {
			continue
		}
		if err := ix.moveRow(wt, part, dst, r); err != nil {
			return err
		}
		ms.RowChanges += 4
	}

	bumped := make([]int64, 0, nonEmpty)
	for c := 0; c < k; c++ {
		if ids[c] < 0 {
			continue
		}
		blob := vec.ToBlob(make([]byte, 0, vec.BlobSize(ix.cfg.Dim)), plan.cents.Row(c))
		if err := ix.centroids.Put(wt, reldb.Row{reldb.I(ids[c]), reldb.B(blob), reldb.I(plan.counts[c])}); err != nil {
			return err
		}
		ms.RowChanges++
		bumped = append(bumped, ids[c])
	}

	st.NumPartitions += int64(nonEmpty - 1)
	st.NextPartID = next
	st.Generation++
	st.DataGen++
	if err := ix.putState(wt, st); err != nil {
		return err
	}
	wt.OnCommit(func() { ix.locks.Bump(bumped...) })
	// Like merge and rebuild, Partitions reports the index-wide total
	// after the step, not just the clusters this split produced.
	ms.Partitions = int(st.NumPartitions)
	return nil
}

// SplitPartition re-clusters one oversized partition with a local k-means
// over its own rows, producing ceil(n/TargetPartitionSize) partitions. The
// partition keeps its id for the first resulting cluster; the rest receive
// fresh ids. I/O is proportional to the one partition, not the index — the
// incremental answer to growth that previously forced a full rebuild. The
// whole split runs inside wt; SplitPartitionTwoPhase is the variant that
// keeps the clustering outside the writer gate.
func (ix *Index) SplitPartition(wt *storage.WriteTxn, part int64) (*MaintenanceStats, error) {
	start := time.Now()
	ms := &MaintenanceStats{}
	if part == DeltaPartition {
		return nil, fmt.Errorf("ivf: cannot split the delta partition")
	}
	st, err := ix.getState(wt)
	if err != nil {
		return nil, err
	}
	if _, err := ix.centroids.Get(wt, reldb.I(part)); err != nil {
		if errors.Is(err, reldb.ErrNotFound) {
			return nil, fmt.Errorf("ivf: split unknown partition %d", part)
		}
		return nil, err
	}

	plan, n, err := ix.computeSplit(wt, part, st.Generation)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		// Nothing to split (a stale count on a legacy index): repair the
		// persisted count so the planner converges.
		if err := ix.recountPartition(wt, part, int64(n)); err != nil {
			return nil, err
		}
		wt.OnCommit(func() { ix.locks.Bump(part) })
		ms.RowChanges++
		ms.Partitions = int(st.NumPartitions)
		ms.Duration = time.Since(start)
		return ms, nil
	}
	if err := ix.applySplit(wt, plan, ms); err != nil {
		return nil, err
	}
	ms.Duration = time.Since(start)
	return ms, nil
}

// SplitPartitionTwoPhase splits part without holding the store-wide writer
// gate during the expensive clustering work. Phase one pins a read
// snapshot — concurrent searches and point writes proceed — and computes
// the split plan while holding only this partition's lock (which excludes
// other maintainers of the same partition, nothing else). Phase two
// upgrades to a write transaction, revalidates the partition's version
// counter, and applies the row moves; the writer gate is held only for
// this short step. Returns ErrPlanStale when a concurrent commit changed
// the partition after the snapshot was pinned; the partition may also have
// disappeared or shrunk below the split bound since the caller planned the
// step, in which case a no-op (zero VectorsAssigned) result is returned.
func (ix *Index) SplitPartitionTwoPhase(part int64) (*MaintenanceStats, error) {
	start := time.Now()
	ms := &MaintenanceStats{}
	if part == DeltaPartition {
		return nil, fmt.Errorf("ivf: cannot split the delta partition")
	}
	unlock := ix.locks.Lock(part)
	defer unlock()

	// Version before snapshot: a conflicting commit either publishes
	// before the pin (its rows are in the plan) or bumps the version this
	// read missed, failing validation below. See locks.go.
	base := ix.locks.Version(part)
	pt, err := ix.db.Store().BeginPrepare()
	if err != nil {
		return nil, err
	}
	defer pt.Abort()

	var plan *splitPlan
	var n int
	var gone bool
	rt := pt.Read()
	st, err := ix.getState(rt)
	if err != nil {
		return nil, err
	}
	if _, err := ix.centroids.Get(rt, reldb.I(part)); err != nil {
		if !errors.Is(err, reldb.ErrNotFound) {
			return nil, err
		}
		gone = true // merged away since the step was planned: no-op
	}
	if !gone {
		if plan, n, err = ix.computeSplit(rt, part, st.Generation); err != nil {
			return nil, err
		}
	}
	if gone {
		ms.Duration = time.Since(start)
		return ms, nil
	}

	wt, stale, err := pt.Upgrade()
	if err != nil {
		return nil, err
	}
	if stale > 0 && ix.locks.Version(part) != base {
		wt.Rollback()
		return nil, ErrPlanStale
	}
	if plan == nil {
		// Fewer than two rows at the snapshot: repair the persisted count
		// (validated unchanged) so the planner converges.
		if err := ix.recountPartition(wt, part, int64(n)); err != nil {
			wt.Rollback()
			return nil, err
		}
		wt.OnCommit(func() { ix.locks.Bump(part) })
		ms.RowChanges++
	} else if err := ix.applySplit(wt, plan, ms); err != nil {
		wt.Rollback()
		return nil, err
	}
	if err := wt.Commit(); err != nil {
		return nil, err
	}
	ms.Duration = time.Since(start)
	return ms, nil
}

// recountPartition rewrites a partition's persisted row count from its
// actual size.
func (ix *Index) recountPartition(wt *storage.WriteTxn, part, n int64) error {
	crow, err := ix.centroids.Get(wt, reldb.I(part))
	if err != nil {
		return err
	}
	blob := append([]byte(nil), crow[1].Bts...)
	return ix.centroids.Put(wt, reldb.Row{reldb.I(part), reldb.B(blob), reldb.I(n)})
}

// MergePartitions folds the given undersized partitions into the rest of
// the index: every row joins the surviving partition with the nearest
// centroid, that centroid is nudged to the running mean of its content
// (matching FlushDelta's update rule), and the merged partitions' centroid
// rows are dropped. At least one partition must survive.
func (ix *Index) MergePartitions(wt *storage.WriteTxn, parts ...int64) (*MaintenanceStats, error) {
	start := time.Now()
	ms := &MaintenanceStats{}
	if len(parts) == 0 {
		return ms, nil
	}
	st, err := ix.getState(wt)
	if err != nil {
		return nil, err
	}
	src := make(map[int64]bool, len(parts))
	for _, p := range parts {
		if p == DeltaPartition {
			return nil, fmt.Errorf("ivf: cannot merge the delta partition")
		}
		if src[p] {
			return nil, fmt.Errorf("ivf: duplicate merge partition %d", p)
		}
		src[p] = true
	}

	cs, err := ix.loadCentroids(wt)
	if err != nil {
		return nil, err
	}
	known := make(map[int64]bool, len(cs.ids))
	for _, id := range cs.ids {
		known[id] = true
	}
	for _, p := range parts {
		if !known[p] {
			return nil, fmt.Errorf("ivf: merge unknown partition %d", p)
		}
	}

	// Surviving centroids, copied out of the shared cache: the running-mean
	// updates below must not leak into concurrent readers.
	destIDs := make([]int64, 0, len(cs.ids))
	for _, id := range cs.ids {
		if !src[id] {
			destIDs = append(destIDs, id)
		}
	}
	if len(destIDs) == 0 {
		return nil, fmt.Errorf("ivf: merge would remove every partition")
	}
	dmat := vec.NewMatrix(len(destIDs), ix.cfg.Dim)
	di := 0
	for i, id := range cs.ids {
		if !src[id] {
			copy(dmat.Row(di), cs.mat.Row(i))
			di++
		}
	}
	counts, err := ix.freshCounts(wt, destIDs)
	if err != nil {
		return nil, err
	}

	touched := make(map[int]bool)
	dists := make([]float32, len(destIDs))
	x := make([]float32, ix.cfg.Dim)
	for _, part := range parts {
		rows, err := ix.collectPartition(wt, part)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			blob := r.blob
			if ix.rawvecs != nil {
				if blob, err = ix.rawVector(wt, r.vid); err != nil {
					return nil, err
				}
			}
			vec.FromBlob(x, blob)
			vec.DistancesOneToMany(ix.cfg.Metric, x, dmat, nil, dists)
			best := argminRange(dists)
			if err := ix.moveRow(wt, part, destIDs[best], r); err != nil {
				return nil, err
			}
			ms.RowChanges += 4
			ms.VectorsAssigned++
			counts[best]++
			vec.Lerp(dmat.Row(best), x, 1/float32(counts[best]))
			touched[best] = true
		}
		if err := ix.centroids.Delete(wt, reldb.I(part)); err != nil {
			return nil, err
		}
		ms.RowChanges++
		st.NumPartitions--
	}

	for b := range touched {
		blob := vec.ToBlob(make([]byte, 0, vec.BlobSize(ix.cfg.Dim)), dmat.Row(b))
		if err := ix.centroids.Put(wt, reldb.Row{reldb.I(destIDs[b]), reldb.B(blob), reldb.I(counts[b])}); err != nil {
			return nil, err
		}
		ms.RowChanges++
	}

	st.Generation++
	st.DataGen++
	if err := ix.putState(wt, st); err != nil {
		return nil, err
	}
	bumped := append([]int64(nil), parts...)
	for b := range touched {
		bumped = append(bumped, destIDs[b])
	}
	wt.OnCommit(func() { ix.locks.Bump(bumped...) })
	ms.Partitions = int(st.NumPartitions)
	ms.Duration = time.Since(start)
	return ms, nil
}

// PartitionSizeBounds returns the smallest and largest IVF partition sizes
// from the centroid table's transactional counts (0, 0 when the index has
// no partitions). The delta-store is excluded.
func (ix *Index) PartitionSizeBounds(txn btree.ReadTxn) (min, max int64, err error) {
	first := true
	err = ix.centroids.Scan(txn, nil, func(row reldb.Row) error {
		cnt := row[2].Int
		if first {
			min, max = cnt, cnt
			first = false
			return nil
		}
		if cnt < min {
			min = cnt
		}
		if cnt > max {
			max = cnt
		}
		return nil
	})
	return min, max, err
}

// CheckInvariants verifies the index's structural invariants at txn's
// snapshot: every vector row is reachable through exactly one (vid, asset)
// mapping and vice versa, per-partition counts and state counters match the
// actual rows, every non-delta row's partition has a centroid, the centroid
// count matches NumPartitions, and a quantized index has a raw vector per
// row plus an intact codebook. O(N); used by the crash-recovery battery and
// tests.
func (ix *Index) CheckInvariants(txn btree.ReadTxn) error {
	st, err := ix.getState(txn)
	if err != nil {
		return err
	}

	type loc struct {
		part  int64
		asset string
	}
	seen := make(map[int64]loc)
	partSizes := make(map[int64]int64)
	var total, delta int64
	wantBlobLen := vec.BlobSize(ix.cfg.Dim)
	var cb *quant.Codebook
	if ix.rawvecs != nil {
		if cb, err = ix.loadCodebook(txn); err != nil {
			return fmt.Errorf("ivf: invariant: codebook unreadable: %w", err)
		}
	}

	// Tombstones mark run rows as logically deleted: the vector row remains
	// (runs are immutable) but every side row is gone and the state no longer
	// counts it. Consumed during the vector scan; leftovers are orphans.
	tombSet := make(map[int64]int64) // vid -> run partition
	if ix.tombs != nil {
		err = ix.tombs.Scan(txn, nil, func(row reldb.Row) error {
			if row[1].Int >= 0 {
				return fmt.Errorf("ivf: invariant: tombstone for vid %d names non-run partition %d", row[0].Int, row[1].Int)
			}
			tombSet[row[0].Int] = row[1].Int
			return nil
		})
		if err != nil {
			return err
		}
	}
	runLive := make(map[int64]int64)
	runDead := make(map[int64]int64)

	err = ix.vectors.Scan(txn, nil, func(row reldb.Row) error {
		part, vid, asset := row[0].Int, row[1].Int, row[2].Str
		if part < 0 {
			if tp, dead := tombSet[vid]; dead {
				if tp != part {
					return fmt.Errorf("ivf: invariant: tombstone for vid %d names run %d, row lives in %d", vid, tp, part)
				}
				delete(tombSet, vid)
				runDead[part]++
				// Dead rows are invisible: no side rows, no state counts.
				return nil
			}
			runLive[part]++
		}
		if _, dup := seen[vid]; dup {
			return fmt.Errorf("ivf: invariant: vid %d stored in two partitions", vid)
		}
		seen[vid] = loc{part, asset}
		if part >= 0 {
			partSizes[part]++
		}
		total++
		if part == DeltaPartition {
			delta++
		}
		want := wantBlobLen
		if cb != nil && part != DeltaPartition {
			want = cb.CodeSize()
		}
		if len(row[3].Bts) != want {
			return fmt.Errorf("ivf: invariant: vid %d payload %d bytes, want %d", vid, len(row[3].Bts), want)
		}
		if vid >= st.NextVID {
			return fmt.Errorf("ivf: invariant: vid %d >= NextVID %d", vid, st.NextVID)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if total != st.NumVectors {
		return fmt.Errorf("ivf: invariant: %d vector rows, state says %d", total, st.NumVectors)
	}
	if delta != st.DeltaCount {
		return fmt.Errorf("ivf: invariant: %d delta rows, state says %d", delta, st.DeltaCount)
	}
	for vid, part := range tombSet {
		return fmt.Errorf("ivf: invariant: tombstone for vid %d (run %d) has no vector row", vid, part)
	}
	for _, r := range st.Runs {
		if runLive[-r.ID] != r.Rows || runDead[-r.ID] != r.Dead {
			return fmt.Errorf("ivf: invariant: run %d holds %d live / %d dead rows, state says %d / %d",
				r.ID, runLive[-r.ID], runDead[-r.ID], r.Rows, r.Dead)
		}
		delete(runLive, -r.ID)
		delete(runDead, -r.ID)
	}
	for part := range runLive {
		return fmt.Errorf("ivf: invariant: partition %d holds rows but names no live run", part)
	}
	for part := range runDead {
		return fmt.Errorf("ivf: invariant: partition %d holds tombstoned rows but names no live run", part)
	}

	// Zone audit: every row of a zoned run must fall inside the zone's vid
	// range and hit its vid Bloom (Blooms have no false negatives — a miss
	// would make pruning drop real rows). Runs sealed before zones existed
	// have no zone row and are exempt; zone rows must never outlive their
	// run.
	liveRuns := make(map[int64]bool, len(st.Runs))
	for _, r := range st.Runs {
		liveRuns[r.ID] = true
		z, err := ix.runZoneFor(txn, r.ID)
		if err != nil {
			return err
		}
		if z == nil {
			continue
		}
		err = ix.vectors.ScanKeys(txn, []reldb.Value{reldb.I(-r.ID)}, func(key reldb.Row) error {
			vid := key[1].Int
			if vid < z.MinVID || vid > z.MaxVID {
				return fmt.Errorf("ivf: invariant: run %d row vid %d outside zone range [%d,%d]", r.ID, vid, z.MinVID, z.MaxVID)
			}
			if !z.VIDs.mayContain(hashVid(vid)) {
				return fmt.Errorf("ivf: invariant: run %d row vid %d missing from zone vid Bloom", r.ID, vid)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	err = ix.meta.ScanKeys(txn, nil, func(key reldb.Row) error {
		var id int64
		if n, _ := fmt.Sscanf(key[0].Str, "runzone:%d", &id); n == 1 && !liveRuns[id] {
			return fmt.Errorf("ivf: invariant: zone row for run %d outlives the run", id)
		}
		return nil
	})
	if err != nil {
		return err
	}

	// The vid and asset mappings must mirror the vector rows exactly.
	var vidRows int64
	err = ix.vids.Scan(txn, nil, func(row reldb.Row) error {
		vidRows++
		l, ok := seen[row[0].Int]
		if !ok || l.part != row[1].Int || l.asset != row[2].Str {
			return fmt.Errorf("ivf: invariant: vid row %d -> (%d,%q) does not match vector rows", row[0].Int, row[1].Int, row[2].Str)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if vidRows != total {
		return fmt.Errorf("ivf: invariant: %d vid rows, %d vector rows", vidRows, total)
	}
	var assetRows int64
	err = ix.assets.Scan(txn, nil, func(row reldb.Row) error {
		assetRows++
		l, ok := seen[row[2].Int]
		if !ok || l.part != row[1].Int || l.asset != row[0].Str {
			return fmt.Errorf("ivf: invariant: asset row %q -> (%d,%d) does not match vector rows", row[0].Str, row[1].Int, row[2].Int)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if assetRows != total {
		return fmt.Errorf("ivf: invariant: %d asset rows, %d vector rows", assetRows, total)
	}

	// Centroids: one per partition, counts exact, none for the delta.
	var centRows int64
	err = ix.centroids.Scan(txn, nil, func(row reldb.Row) error {
		centRows++
		id, cnt := row[0].Int, row[2].Int
		if id == DeltaPartition {
			return fmt.Errorf("ivf: invariant: centroid row for the delta partition")
		}
		if len(row[1].Bts) != wantBlobLen {
			return fmt.Errorf("ivf: invariant: centroid %d blob %d bytes, want %d", id, len(row[1].Bts), wantBlobLen)
		}
		if cnt != partSizes[id] {
			return fmt.Errorf("ivf: invariant: centroid %d count %d, partition holds %d rows", id, cnt, partSizes[id])
		}
		delete(partSizes, id)
		return nil
	})
	if err != nil {
		return err
	}
	if centRows != st.NumPartitions {
		return fmt.Errorf("ivf: invariant: %d centroid rows, state says %d partitions", centRows, st.NumPartitions)
	}
	for part := range partSizes {
		if part != DeltaPartition {
			return fmt.Errorf("ivf: invariant: partition %d has rows but no centroid", part)
		}
	}

	if ix.rawvecs != nil {
		var rawRows int64
		err = ix.rawvecs.Scan(txn, nil, func(row reldb.Row) error {
			rawRows++
			if _, ok := seen[row[0].Int]; !ok {
				return fmt.Errorf("ivf: invariant: raw vector %d has no vector row", row[0].Int)
			}
			if len(row[1].Bts) != wantBlobLen {
				return fmt.Errorf("ivf: invariant: raw vector %d blob %d bytes, want %d", row[0].Int, len(row[1].Bts), wantBlobLen)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if rawRows != total {
			return fmt.Errorf("ivf: invariant: %d raw vectors, %d vector rows", rawRows, total)
		}
		if st.NumPartitions > 0 {
			if cb == nil {
				return fmt.Errorf("ivf: invariant: quantized index with partitions but no codebook")
			}
			if cb.Dim() != ix.cfg.Dim {
				return fmt.Errorf("ivf: invariant: codebook dim %d, index dim %d", cb.Dim(), ix.cfg.Dim)
			}
		}
	}
	return nil
}
