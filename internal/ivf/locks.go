package ivf

import (
	"sort"
	"sync"
)

// partLocks is the partition-granular lock manager behind MVCC-style
// two-phase maintenance (see maintain.go). It provides two things:
//
//   - Partition locks, keyed by partition id, acquired in ascending-id
//     order so multi-partition holders can never deadlock each other.
//     Only the long-running maintenance prepare/apply paths take them —
//     and they take them BEFORE the store's writer gate, never inside it —
//     so two maintainers cannot prepare the same partition concurrently,
//     while short point writes (upserts/deletes) proceed under the writer
//     gate without ever blocking on a partition lock.
//   - Partition version counters, advanced by every committed transaction
//     that mutates a partition's membership (upsert into / delete from /
//     row moves). A prepare phase records the version of its target
//     partition before pinning its snapshot; the apply phase revalidates
//     it under the writer gate, so any intervening commit that touched the
//     partition is detected and the stale plan discarded. Bumps run in
//     WriteTxn.OnCommit hooks — after the commit publishes, before the
//     writer gate is released — which makes the read-version / pin /
//     validate protocol race-free: a conflicting commit either publishes
//     before the snapshot pin (its effects are in the plan) or bumps the
//     version the validation reads.
//
// A whole-index epoch counter backs coarse operations (rebuild, flush)
// that touch every partition: bumping the epoch invalidates all
// outstanding versions at once without enumerating the lock table.
type partLocks struct {
	mu    sync.Mutex
	locks map[int64]*partLock
	ver   map[int64]uint64
	epoch uint64
}

// partLock is one refcounted partition lock table entry; entries exist
// only while held or contended, keeping the table proportional to active
// maintenance, not partition count.
type partLock struct {
	mu   sync.Mutex
	refs int
}

// partVersion is a partition's write version: a plan prepared at one
// version applies only if both coordinates are unchanged.
type partVersion struct {
	epoch uint64
	ver   uint64
}

func (pl *partLocks) entry(part int64) *partLock {
	if pl.locks == nil {
		pl.locks = make(map[int64]*partLock)
	}
	e := pl.locks[part]
	if e == nil {
		e = &partLock{}
		pl.locks[part] = e
	}
	e.refs++
	return e
}

func (pl *partLocks) put(part int64, e *partLock) {
	e.refs--
	if e.refs == 0 {
		delete(pl.locks, part)
	}
}

// Lock acquires the given partitions' locks in ascending-id order
// (duplicates are collapsed) and returns the release function.
func (pl *partLocks) Lock(parts ...int64) func() {
	ids := append([]int64(nil), parts...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	entries := make([]*partLock, 0, len(ids))
	held := make([]int64, 0, len(ids))
	pl.mu.Lock()
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		entries = append(entries, pl.entry(id))
		held = append(held, id)
	}
	pl.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
	}
	return func() {
		pl.mu.Lock()
		for i, e := range entries {
			e.mu.Unlock()
			pl.put(held[i], e)
		}
		pl.mu.Unlock()
	}
}

// TryLock is Lock without blocking: it acquires all of the partitions'
// locks or none, reporting which. Maintenance planning uses it to skip a
// partition another maintainer is already working on.
func (pl *partLocks) TryLock(parts ...int64) (func(), bool) {
	ids := append([]int64(nil), parts...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	entries := make([]*partLock, 0, len(ids))
	held := make([]int64, 0, len(ids))
	pl.mu.Lock()
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		entries = append(entries, pl.entry(id))
		held = append(held, id)
	}
	pl.mu.Unlock()
	for i, e := range entries {
		if !e.mu.TryLock() {
			pl.mu.Lock()
			for j := 0; j < i; j++ {
				entries[j].mu.Unlock()
			}
			for j, ee := range entries {
				pl.put(held[j], ee)
			}
			pl.mu.Unlock()
			return nil, false
		}
	}
	return func() {
		pl.mu.Lock()
		for i, e := range entries {
			e.mu.Unlock()
			pl.put(held[i], e)
		}
		pl.mu.Unlock()
	}, true
}

// Version returns part's current write version. Read it BEFORE pinning the
// prepare snapshot (see the protocol note on the type).
func (pl *partLocks) Version(part int64) partVersion {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return partVersion{epoch: pl.epoch, ver: pl.ver[part]}
}

// Bump advances the given partitions' versions. Call from a
// WriteTxn.OnCommit hook so only published mutations invalidate plans.
func (pl *partLocks) Bump(parts ...int64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.ver == nil {
		pl.ver = make(map[int64]uint64)
	}
	for _, p := range parts {
		pl.ver[p]++
	}
}

// BumpAll invalidates every partition's version at once (rebuild, delta
// flush: operations whose write set is the whole index).
func (pl *partLocks) BumpAll() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.epoch++
}
