package ivf

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"micronn/internal/quant"
	"micronn/internal/reldb"
	"micronn/internal/storage"
	"micronn/internal/storage/storagetest"
)

// crashEnv is a reopenable index environment for the crash battery — unlike
// testEnv it survives CloseWithoutCheckpoint + Open cycles.
type crashEnv struct {
	t     *testing.T
	path  string
	opts  storage.Options
	store *storage.Store
	db    *reldb.DB
	ix    *Index
	live  int64 // expected vector count (inserts minus deletes)
	next  int   // asset id counter
}

func newCrashEnv(t *testing.T, cfg Config) *crashEnv {
	storagetest.SkipIfEphemeral(t)
	e := &crashEnv{
		t:    t,
		path: filepath.Join(t.TempDir(), "crash.db"),
		// A tiny spill budget pushes frames into the WAL mid-transaction,
		// so failpoints land inside spills as well as commits.
		opts: storage.Options{Sync: storage.SyncOff, MaxDirtyPages: 8, CheckpointFrames: -1},
	}
	s, err := storage.Open(e.path, e.opts)
	if err != nil {
		t.Fatal(err)
	}
	e.store = s
	if e.db, err = reldb.Open(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(wt *storage.WriteTxn) error {
		e.ix, err = Create(e.db, wt, cfg)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.store.Close() })
	return e
}

// crash closes without checkpointing (as a power cut would) and reopens
// through full recovery.
func (e *crashEnv) crash() {
	e.t.Helper()
	if err := e.store.CloseWithoutCheckpoint(); err != nil {
		e.t.Fatal(err)
	}
	s, err := storage.Open(e.path, e.opts)
	if err != nil {
		e.t.Fatalf("reopen after crash: %v", err)
	}
	e.store = s
	if e.db, err = reldb.Open(s); err != nil {
		e.t.Fatal(err)
	}
	if e.ix, err = Open(e.db); err != nil {
		e.t.Fatal(err)
	}
}

func (e *crashEnv) insert(mix *mixture, n, center int) {
	e.t.Helper()
	if err := e.store.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < n; i++ {
			e.next++
			if err := e.ix.Upsert(wt, fmt.Sprintf("c-%d", e.next), mix.sample(center), nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		e.t.Fatal(err)
	}
	e.live += int64(n)
}

// deleteRange removes assets c-[lo,hi] that are still expected to exist.
func (e *crashEnv) deleteRange(lo, hi int) {
	e.t.Helper()
	if err := e.store.Update(func(wt *storage.WriteTxn) error {
		for i := lo; i <= hi; i++ {
			err := e.ix.Delete(wt, fmt.Sprintf("c-%d", i))
			if errors.Is(err, ErrNotFound) {
				continue
			}
			if err != nil {
				return err
			}
			e.live--
		}
		return nil
	}); err != nil {
		e.t.Fatal(err)
	}
}

// maintainAll steps maintenance to convergence, recording committed
// actions. An injected WAL failure surfaces as the returned error; steps
// committed before it stand.
func (e *crashEnv) maintainAll(pol MaintenancePolicy, seen map[MaintenanceAction]int) error {
	for i := 0; i < 256; i++ {
		var plan *MaintenancePlan
		err := e.store.Update(func(wt *storage.WriteTxn) error {
			var serr error
			plan, _, serr = e.ix.MaintainStep(wt, pol)
			return serr
		})
		if err != nil {
			return err
		}
		if plan.Action == ActionNone {
			return nil
		}
		seen[plan.Action]++
	}
	return fmt.Errorf("maintenance did not converge")
}

// verify asserts the full invariant battery plus the expected live count
// and a working search.
func (e *crashEnv) verify(mix *mixture, step string) {
	e.t.Helper()
	if err := e.store.View(func(rt *storage.ReadTxn) error {
		if err := e.ix.CheckInvariants(rt); err != nil {
			return fmt.Errorf("%s: %w", step, err)
		}
		st, err := e.ix.Stats(rt)
		if err != nil {
			return err
		}
		if st.NumVectors != e.live {
			return fmt.Errorf("%s: NumVectors = %d, want %d", step, st.NumVectors, e.live)
		}
		got, _, err := e.ix.Search(rt, mix.sample(0), SearchOptions{K: 5, NProbe: 4})
		if err != nil {
			return fmt.Errorf("%s: search: %w", step, err)
		}
		if len(got) == 0 {
			return fmt.Errorf("%s: search returned nothing over %d vectors", step, e.live)
		}
		return nil
	}); err != nil {
		e.t.Fatal(err)
	}
}

// TestMaintenanceCrashRecovery extends the storage torture-test pattern to
// index maintenance: a WAL failpoint is armed at varying frame offsets so
// injected crashes land mid-flush, mid-split and mid-merge; after every
// crash the store is reopened through recovery and the full index invariant
// battery re-checked (every vid reachable exactly once, centroid rows match
// partitions and counts, codebook intact on the quantized variant). The
// interrupted maintenance must then complete cleanly.
func TestMaintenanceCrashRecovery(t *testing.T) {
	for _, qt := range []quant.Type{quant.None, quant.SQ8, quant.SQ4} {
		t.Run(qt.String(), func(t *testing.T) {
			env := newCrashEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 11, Quantization: qt})
			mix := newMixture(12, 8, 5)
			pol := MaintenancePolicy{} // defaults: flush 20, merge <5, split >40
			seen := make(map[MaintenanceAction]int)

			env.insert(mix, 160, -1)
			if err := env.maintainAll(pol, seen); err != nil { // initial build
				t.Fatal(err)
			}
			env.verify(mix, "bootstrap")

			injected := 0
			for round, fail := range []int{1, 3, 7, 15, 30, 60, 120, 240} {
				// Skewed growth keeps split pressure on one cluster; the
				// periodic mass delete keeps merge pressure on.
				env.insert(mix, 50, round%5)
				if round%3 == 2 {
					lo := env.next - 120
					env.deleteRange(lo, lo+89)
				}

				env.store.SetWALFailpoint(fail)
				err := env.maintainAll(pol, seen)
				env.store.SetWALFailpoint(-1)
				switch {
				case errors.Is(err, storage.ErrInjected):
					injected++
					env.crash()
				case err != nil:
					t.Fatalf("round %d: %v", round, err)
				}
				env.verify(mix, fmt.Sprintf("round %d post-crash", round))

				if err := env.maintainAll(pol, seen); err != nil {
					t.Fatalf("round %d resume: %v", round, err)
				}
				env.verify(mix, fmt.Sprintf("round %d resumed", round))
			}

			if injected == 0 {
				t.Error("no failpoint fired; the battery exercised nothing")
			}
			for _, a := range []MaintenanceAction{ActionFlush, ActionSplit, ActionMerge} {
				if seen[a] == 0 {
					t.Errorf("action %s never executed; crash coverage incomplete (saw %v)", a, seen)
				}
			}
		})
	}
}
