package ivf

import (
	"fmt"
	"sort"
	"sync"

	"micronn/internal/clustering"
	"micronn/internal/topk"
	"micronn/internal/vec"
)

// MemIndex is the InMemory baseline of the paper's evaluation (§4.1.4): the
// same IVF search algorithm with every vector buffered in memory and the
// quantizer trained by conventional full-batch k-means. It lower-bounds
// query latency while exposing the memory cost the disk-resident index
// avoids (Figures 4-6).
type MemIndex struct {
	dim        int
	metric     vec.Metric
	targetSize int
	workers    int

	centroids *vec.Matrix
	centNorms []float32
	// partitions[i] holds the row indices (into data) of partition i.
	partitions [][]int32
	data       *vec.Matrix
	assets     []string
	vids       []int64
}

// MemIndexConfig parameterizes BuildMemIndex.
type MemIndexConfig struct {
	Metric              vec.Metric
	TargetPartitionSize int
	Workers             int
	Seed                int64
	// KMeansIters bounds Lloyd iterations (default 25).
	KMeansIters int
}

// BuildMemIndex trains full-batch k-means over data (which it retains) and
// assigns every vector to its nearest centroid.
func BuildMemIndex(cfg MemIndexConfig, data *vec.Matrix, assets []string) (*MemIndex, error) {
	if data.Rows == 0 {
		return nil, fmt.Errorf("ivf: empty data")
	}
	if len(assets) != data.Rows {
		return nil, fmt.Errorf("ivf: %d assets for %d vectors", len(assets), data.Rows)
	}
	if cfg.TargetPartitionSize == 0 {
		cfg.TargetPartitionSize = 100
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	res, err := clustering.FullKMeans(clustering.Config{
		TargetClusterSize: cfg.TargetPartitionSize,
		Metric:            cfg.Metric,
		Seed:              cfg.Seed,
	}, data, cfg.KMeansIters)
	if err != nil {
		return nil, err
	}
	k := res.Centroids.Rows
	m := &MemIndex{
		dim:        data.Dim,
		metric:     cfg.Metric,
		targetSize: cfg.TargetPartitionSize,
		workers:    cfg.Workers,
		centroids:  res.Centroids,
		centNorms:  res.Centroids.Norms(nil),
		partitions: make([][]int32, k),
		data:       data,
		assets:     assets,
		vids:       make([]int64, data.Rows),
	}
	dists := make([]float32, k)
	for i := 0; i < data.Rows; i++ {
		m.vids[i] = int64(i)
		c := clustering.Assign(cfg.Metric, res.Centroids, data.Row(i), dists)
		m.partitions[c] = append(m.partitions[c], int32(i))
	}
	return m, nil
}

// MemoryBytes estimates the index's resident memory: vectors, centroids and
// partition assignments.
func (m *MemIndex) MemoryBytes() int64 {
	vecs := int64(len(m.data.Data)) * 4
	cents := int64(len(m.centroids.Data)) * 4
	parts := int64(m.data.Rows) * 4
	return vecs + cents + parts
}

// Partitions returns the partition count.
func (m *MemIndex) Partitions() int { return len(m.partitions) }

// Search performs ANN search scanning the nprobe nearest partitions.
func (m *MemIndex) Search(q []float32, k, nprobe int) ([]topk.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ivf: K must be positive")
	}
	if len(q) != m.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), m.dim)
	}
	if nprobe <= 0 {
		nprobe = 8
	}
	if nprobe > len(m.partitions) {
		nprobe = len(m.partitions)
	}
	cd := make([]float32, m.centroids.Rows)
	vec.DistancesOneToMany(m.metric, q, m.centroids, l2Only(m.metric, m.centNorms), cd)
	order := make([]int, len(cd))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cd[order[a]] < cd[order[b]] })
	probe := order[:nprobe]

	workers := m.workers
	if workers > len(probe) {
		workers = len(probe)
	}
	if workers < 1 {
		workers = 1
	}
	heaps := make([]*topk.Heap, workers)
	var wg sync.WaitGroup
	partCh := make(chan int, len(probe))
	for _, p := range probe {
		partCh <- p
	}
	close(partCh)
	for w := 0; w < workers; w++ {
		heaps[w] = topk.New(k)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := range partCh {
				for _, ri := range m.partitions[p] {
					d := vec.Distance(m.metric, q, m.data.Row(int(ri)))
					heaps[w].Push(topk.Result{AssetID: m.assets[ri], VectorID: m.vids[ri], Distance: d})
				}
			}
		}(w)
	}
	wg.Wait()
	return topk.Merge(k, heaps...), nil
}

// SearchExact brute-forces the whole collection (ground truth helper).
func (m *MemIndex) SearchExact(q []float32, k int) ([]topk.Result, error) {
	if len(q) != m.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), m.dim)
	}
	h := topk.New(k)
	dists := make([]float32, m.data.Rows)
	vec.DistancesOneToMany(m.metric, q, m.data, nil, dists)
	for i, d := range dists {
		h.Push(topk.Result{AssetID: m.assets[i], VectorID: m.vids[i], Distance: d})
	}
	return h.Results(), nil
}
