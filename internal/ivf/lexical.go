package ivf

import (
	"errors"
	"fmt"
	"sort"

	"micronn/internal/btree"
	"micronn/internal/fts"
	"micronn/internal/reldb"
	"micronn/internal/vec"
)

// This file is the index-level lexical leg of hybrid search: BM25 ranking
// over a FullText attribute's inverted index, split into a stats-collection
// half and a scoring half so a sharded router can aggregate global df/N
// figures before any shard scores (making sharded and single-store rankings
// identical). Fusion itself lives a layer up, in the public API.

// LexicalDoc is one BM25-ranked document resolved to its asset id, with its
// exact (full-precision) distance to the query vector so fusion can report
// parity distances for documents the vector leg never visited.
type LexicalDoc struct {
	AssetID  string
	VectorID int64
	Score    float64
	Distance float32
}

// FullTextColumns returns the attribute names carrying a full-text index,
// sorted.
func (ix *Index) FullTextColumns() []string {
	cols := make([]string, 0, len(ix.ftsIndexes))
	for c := range ix.ftsIndexes {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// ftsIndex resolves column's full-text index.
func (ix *Index) ftsIndex(column string) (*fts.Index, error) {
	f, ok := ix.ftsIndexes[column]
	if !ok {
		return nil, fmt.Errorf("%w: hybrid text search on %q without full-text index", ErrNoFilter, column)
	}
	return f, nil
}

// LexicalStats collects this store's BM25 statistics (per-token document
// frequencies, document count, summed document length) for the given unique
// query tokens.
func (ix *Index) LexicalStats(txn btree.ReadTxn, column string, tokens []string) (fts.BM25Stats, error) {
	f, err := ix.ftsIndex(column)
	if err != nil {
		return fts.BM25Stats{}, err
	}
	return f.CollectBM25Stats(txn, tokens)
}

// LexicalSearch BM25-ranks the documents of column's full-text index against
// the query tokens using the supplied (possibly cross-shard global) corpus
// statistics and returns the k best, resolved to asset ids and annotated
// with exact distances to q. The cut to k happens AFTER resolving doc ids
// to asset ids and re-sorting on (score desc, asset id asc): asset ids are
// the only tie-break total order that agrees across topologies (vids are
// assigned per store), so this ordering makes a sharded merge of per-shard
// top-k lists equal a single store's top-k. Documents whose vid no longer
// resolves are skipped.
func (ix *Index) LexicalSearch(txn btree.ReadTxn, column string, q []float32, tokens []string, gs fts.BM25Stats, k int) ([]LexicalDoc, error) {
	if k <= 0 {
		return nil, nil
	}
	f, err := ix.ftsIndex(column)
	if err != nil {
		return nil, err
	}
	scored, err := f.BM25Score(txn, tokens, gs, fts.DefaultBM25K1, fts.DefaultBM25B)
	if err != nil {
		return nil, err
	}
	out := make([]LexicalDoc, 0, len(scored))
	for _, sd := range scored {
		vrow, err := ix.vids.Get(txn, reldb.I(sd.Doc))
		if errors.Is(err, reldb.ErrNotFound) {
			continue // posting without a live vector row
		}
		if err != nil {
			return nil, err
		}
		out = append(out, LexicalDoc{AssetID: vrow[2].Str, VectorID: sd.Doc, Score: sd.Score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].AssetID < out[j].AssetID
	})
	if len(out) > k {
		out = out[:k]
	}
	for i := range out {
		d, err := ix.ExactDistance(txn, q, out[i].VectorID)
		if err != nil {
			return nil, err
		}
		out[i].Distance = d
	}
	return out, nil
}

// ExactDistance computes the full-precision distance from q to vid's stored
// vector: from the raw store on a quantized index (the rawvecs parity path
// hybrid rerank relies on), from the partition row otherwise.
func (ix *Index) ExactDistance(txn btree.ReadTxn, q []float32, vid int64) (float32, error) {
	if len(q) != ix.cfg.Dim {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), ix.cfg.Dim)
	}
	var blob []byte
	if ix.rawvecs != nil {
		b, err := ix.rawVector(txn, vid)
		if err != nil {
			return 0, err
		}
		blob = b
	} else {
		vrow, err := ix.vids.Get(txn, reldb.I(vid))
		if err != nil {
			return 0, err
		}
		row, err := ix.vectors.Get(txn, reldb.I(vrow[1].Int), reldb.I(vid))
		if err != nil {
			return 0, err
		}
		blob = row[3].Bts
	}
	x := make([]float32, ix.cfg.Dim)
	vec.FromBlob(x, blob)
	return vec.Distance(ix.cfg.Metric, q, x), nil
}
