package ivf

import (
	"fmt"
	"math/rand"
	"testing"

	"micronn/internal/quant"
	"micronn/internal/storage"
	"micronn/internal/vec"
)

// mixture generates Gaussian-mixture vectors around explicit centers, so
// tests can aim inserts at one cluster to inflate a single partition.
type mixture struct {
	rng     *rand.Rand
	centers *vec.Matrix
}

func newMixture(seed int64, dim, centers int) *mixture {
	rng := rand.New(rand.NewSource(seed))
	ctr := vec.NewMatrix(centers, dim)
	for c := 0; c < centers; c++ {
		for j := 0; j < dim; j++ {
			ctr.Row(c)[j] = float32(rng.NormFloat64() * 10)
		}
	}
	return &mixture{rng: rng, centers: ctr}
}

// sample draws one vector near center c (c < 0 picks a random center).
func (m *mixture) sample(c int) []float32 {
	if c < 0 {
		c = m.rng.Intn(m.centers.Rows)
	}
	v := make([]float32, m.centers.Dim)
	for j := range v {
		v[j] = m.centers.Row(c)[j] + float32(m.rng.NormFloat64())
	}
	return v
}

// maintainAll loops MaintainStep in fresh short transactions until the
// planner reports a healthy index, returning the executed actions.
func (e *testEnv) maintainAll(t testing.TB, pol MaintenancePolicy) []MaintenanceAction {
	t.Helper()
	var actions []MaintenanceAction
	for i := 0; i < 256; i++ {
		var plan *MaintenancePlan
		err := e.store.Update(func(wt *storage.WriteTxn) error {
			var serr error
			plan, _, serr = e.ix.MaintainStep(wt, pol)
			return serr
		})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Action == ActionNone {
			return actions
		}
		actions = append(actions, plan.Action)
	}
	t.Fatal("maintenance did not converge in 256 steps")
	return nil
}

func (e *testEnv) checkInvariants(t testing.TB) {
	t.Helper()
	if err := e.store.View(func(rt *storage.ReadTxn) error {
		return e.ix.CheckInvariants(rt)
	}); err != nil {
		t.Fatal(err)
	}
}

func countActions(actions []MaintenanceAction, a MaintenanceAction) int {
	n := 0
	for _, x := range actions {
		if x == a {
			n++
		}
	}
	return n
}

func TestPlanMaintenancePriorities(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 1})
	plan := func() *MaintenancePlan {
		var p *MaintenancePlan
		if err := env.store.View(func(rt *storage.ReadTxn) error {
			var err error
			p, err = env.ix.PlanMaintenance(rt, MaintenancePolicy{})
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if p := plan(); p.Action != ActionNone {
		t.Errorf("empty index plan = %s, want none", p.Action)
	}

	mix := newMixture(2, 8, 5)
	env.upsertN(t, mix, 100, -1)
	if p := plan(); p.Action != ActionRebuild {
		t.Errorf("never-built plan = %s, want rebuild", p.Action)
	}
	env.rebuild(t)
	if p := plan(); p.Action != ActionNone {
		t.Errorf("freshly built plan = %s, want none", p.Action)
	}

	// A delta past the flush threshold outranks everything else.
	env.upsertN(t, mix, 25, 0)
	if p := plan(); p.Action != ActionFlush {
		t.Errorf("delta-backlog plan = %s, want flush", p.Action)
	}
	env.maintainAll(t, MaintenancePolicy{})

	// Inflate one cluster far past MaxPartitionSize: the next plan must be
	// a split of the offending partition, never a rebuild.
	env.upsertN(t, mix, 90, 0)
	env.flush(t)
	p := plan()
	if p.Action != ActionSplit {
		t.Fatalf("oversized plan = %s (size %d), want split", p.Action, p.Size)
	}
	if p.Size <= 40 {
		t.Errorf("split target size = %d, want > MaxPartitionSize(40)", p.Size)
	}
}

// upsertN inserts n vectors near center c with unique asset ids.
func (e *testEnv) upsertN(t testing.TB, mix *mixture, n, c int) {
	t.Helper()
	if err := e.store.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < n; i++ {
			e.nextAsset++
			if err := e.ix.Upsert(wt, fmt.Sprintf("m-%d", e.nextAsset), mix.sample(c), nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func (e *testEnv) flush(t testing.TB) {
	t.Helper()
	if err := e.store.Update(func(wt *storage.WriteTxn) error {
		_, err := e.ix.FlushDelta(wt)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPartitionKeepsIndexConsistent(t *testing.T) {
	for _, qt := range []quant.Type{quant.None, quant.SQ8, quant.SQ4} {
		t.Run(qt.String(), func(t *testing.T) {
			env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 3, Quantization: qt})
			mix := newMixture(4, 8, 5)
			env.upsertN(t, mix, 200, -1)
			env.rebuild(t)

			// Pour 150 vectors into one cluster, flush, and let maintenance
			// split the oversized partitions.
			env.upsertN(t, mix, 150, 0)
			actions := env.maintainAll(t, MaintenancePolicy{})
			if countActions(actions, ActionFlush) == 0 {
				t.Errorf("actions %v: expected a flush", actions)
			}
			if countActions(actions, ActionSplit) == 0 {
				t.Errorf("actions %v: expected at least one split", actions)
			}
			if countActions(actions, ActionRebuild) != 0 {
				t.Errorf("actions %v: a built index must never plan a rebuild", actions)
			}
			env.checkInvariants(t)

			if err := env.store.View(func(rt *storage.ReadTxn) error {
				min, max, err := env.ix.PartitionSizeBounds(rt)
				if err != nil {
					return err
				}
				if min < 5 || max > 40 {
					t.Errorf("partition sizes [%d, %d] outside policy bounds [5, 40]", min, max)
				}
				// Every vector must remain findable at full probe width.
				st, err := env.ix.Stats(rt)
				if err != nil {
					return err
				}
				q := mix.sample(0)
				got, _, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: int(st.NumPartitions), RerankFactor: 8})
				if err != nil {
					return err
				}
				if len(got) != 10 {
					t.Errorf("post-split search returned %d results", len(got))
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSplitDuplicateVectorsConverges guards against the planner livelock
// where a partition of identical vectors cannot be separated by k-means:
// the split must still make progress (mechanical even split) so the plan
// reaches ActionNone instead of re-planning the same partition forever.
func TestSplitDuplicateVectorsConverges(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 9})
	dup := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if err := env.store.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < 120; i++ {
			if err := env.ix.Upsert(wt, fmt.Sprintf("dup-%d", i), dup, nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	env.rebuild(t)

	// All 120 duplicates collapse into one partition at build; force the
	// planner over it. maintainAll fails the test if it cannot converge.
	actions := env.maintainAll(t, MaintenancePolicy{})
	env.checkInvariants(t)
	if err := env.store.View(func(rt *storage.ReadTxn) error {
		_, max, err := env.ix.PartitionSizeBounds(rt)
		if err != nil {
			return err
		}
		if max > 40 {
			t.Errorf("max partition size %d after %v, want <= 40", max, actions)
		}
		got, _, err := env.ix.Search(rt, dup, SearchOptions{K: 10, NProbe: 8})
		if err != nil {
			return err
		}
		if len(got) != 10 || got[0].Distance != 0 {
			t.Errorf("post-split duplicate search = %d results, top %+v", len(got), got[0])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitBoundBelowClusteringTarget guards the other planner livelock: a
// policy MaxPartitionSize below the create-time TargetPartitionSize (e.g.
// `micronn maintain -max` on a coarser index) must still split flagged
// partitions instead of recounting them forever.
func TestSplitBoundBelowClusteringTarget(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 100, Seed: 13})
	mix := newMixture(14, 8, 4)
	env.upsertN(t, mix, 240, -1)
	env.rebuild(t)

	pol := MaintenancePolicy{MaxPartitionSize: 40}
	actions := env.maintainAll(t, pol)
	if countActions(actions, ActionSplit) == 0 {
		t.Fatalf("actions %v: expected splits under a tightened bound", actions)
	}
	env.checkInvariants(t)
	if err := env.store.View(func(rt *storage.ReadTxn) error {
		_, max, err := env.ix.PartitionSizeBounds(rt)
		if err != nil {
			return err
		}
		if max > 40 {
			t.Errorf("max partition size %d, want <= 40", max)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMergePartitionsAfterDeletes(t *testing.T) {
	for _, qt := range []quant.Type{quant.None, quant.SQ8, quant.SQ4} {
		t.Run(qt.String(), func(t *testing.T) {
			env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 5, Quantization: qt})
			mix := newMixture(6, 8, 6)
			env.upsertN(t, mix, 240, -1)
			env.rebuild(t)

			// Delete three quarters of the corpus: many partitions fall
			// under MinPartitionSize and must be merged away.
			if err := env.store.Update(func(wt *storage.WriteTxn) error {
				for i := 1; i <= 180; i++ {
					if err := env.ix.Delete(wt, fmt.Sprintf("m-%d", i)); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			var before int64
			if err := env.store.View(func(rt *storage.ReadTxn) error {
				st, err := env.ix.Stats(rt)
				before = st.NumPartitions
				return err
			}); err != nil {
				t.Fatal(err)
			}

			actions := env.maintainAll(t, MaintenancePolicy{})
			if countActions(actions, ActionMerge) == 0 {
				t.Fatalf("actions %v: expected at least one merge", actions)
			}
			env.checkInvariants(t)

			if err := env.store.View(func(rt *storage.ReadTxn) error {
				st, err := env.ix.Stats(rt)
				if err != nil {
					return err
				}
				if st.NumPartitions >= before {
					t.Errorf("partitions %d -> %d: merges should shrink the count", before, st.NumPartitions)
				}
				if st.NumVectors != 60 {
					t.Errorf("NumVectors = %d, want 60", st.NumVectors)
				}
				min, _, err := env.ix.PartitionSizeBounds(rt)
				if err != nil {
					return err
				}
				if st.NumPartitions >= 2 && min < 5 {
					t.Errorf("min partition size %d below merge bound 5", min)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMaintainedRecallMatchesRebuild is the recall regression gate: a
// streaming workload kept healthy by incremental maintenance must hold
// recall@10 within one point of the same data after a full Rebuild. Run for
// both encodings — on SQ8 this guards the code handling during splits.
func TestMaintainedRecallMatchesRebuild(t *testing.T) {
	for _, qt := range []quant.Type{quant.None, quant.SQ8, quant.SQ4} {
		t.Run(qt.String(), func(t *testing.T) {
			env := newEnv(t, Config{Dim: 16, TargetPartitionSize: 50, Seed: 7, Quantization: qt})
			mix := newMixture(8, 16, 20)
			env.upsertN(t, mix, 1500, -1)
			env.rebuild(t)

			// Stream updates with maintenance between batches; the planner
			// must absorb all growth without a rebuild.
			for epoch := 0; epoch < 10; epoch++ {
				env.upsertN(t, mix, 100, epoch%20)
				actions := env.maintainAll(t, MaintenancePolicy{})
				if n := countActions(actions, ActionRebuild); n != 0 {
					t.Fatalf("epoch %d: %d rebuilds planned on a built index", epoch, n)
				}
			}
			env.checkInvariants(t)

			queries := make([][]float32, 40)
			for i := range queries {
				queries[i] = mix.sample(i % 20)
			}
			meanRecall := func() float64 {
				var total float64
				if err := env.store.View(func(rt *storage.ReadTxn) error {
					st, err := env.ix.Stats(rt)
					if err != nil {
						return err
					}
					nprobe := int(st.NumPartitions+1) / 2
					for _, q := range queries {
						exact, _, err := env.ix.Search(rt, q, SearchOptions{K: 10, Exact: true})
						if err != nil {
							return err
						}
						got, _, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: nprobe})
						if err != nil {
							return err
						}
						total += recallOf(got, exact)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				return total / float64(len(queries))
			}

			maintained := meanRecall()
			env.rebuild(t)
			rebuilt := meanRecall()
			t.Logf("recall@10 maintained=%.4f rebuilt=%.4f", maintained, rebuilt)
			if maintained < rebuilt-0.01 {
				t.Errorf("maintained recall %.4f more than 1 point below rebuilt %.4f", maintained, rebuilt)
			}
		})
	}
}
