// Package ivf implements MicroNN's disk-resident IVF vector index (paper
// §3): a partitioned vector table clustered on (partition id, vector id), a
// centroid table, a delta-store for streaming updates (the reserved
// partition 0), attribute storage with secondary and full-text indexes for
// hybrid search, the Algorithm 2 ANN search with parallel partition scans,
// multi-query-optimized batch search, a hybrid query optimizer, and full /
// incremental index maintenance.
package ivf

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"micronn/internal/btree"
	"micronn/internal/fts"
	"micronn/internal/quant"
	"micronn/internal/reldb"
	"micronn/internal/stats"
	"micronn/internal/storage"
	"micronn/internal/vec"
)

// DeltaPartition is the reserved partition id for the delta-store. Newly
// inserted vectors stay here until maintenance assigns them to an IVF
// partition; every search scans it in addition to the probed partitions.
const DeltaPartition int64 = 0

// Table names.
const (
	tblVectors   = "vectors"
	tblCentroids = "centroids"
	tblAssets    = "assets"
	tblVIDs      = "vids"
	tblAttrs     = "attributes"
	tblMeta      = "meta"
	// tblRawVecs is the raw float32 vector store used when quantization is
	// enabled: partition rows then hold SQ8 codes, and the exact vectors
	// needed for reranking, point lookups and retraining live here, keyed
	// by vid.
	tblRawVecs = "rawvecs"
	// tblTombs records deletions against immutable sorted runs (see
	// runs.go): run rows are never rewritten in place, so deleting a
	// run-resident asset leaves the vectors row and writes a tombstone
	// (vid -> owning run partition) that searches skip and compaction
	// folds. Absent in databases created before runs existed.
	tblTombs = "tombstones"
)

// metaCodebook is the meta-table key holding the serialized SQ8 codebook.
const metaCodebook = "codebook"

// Sentinel errors.
var (
	ErrNotFound    = errors.New("ivf: asset not found")
	ErrDimMismatch = errors.New("ivf: vector dimensionality mismatch")
	ErrNoFilter    = errors.New("ivf: filter references unknown attribute")
)

// AttributeDef declares a filterable attribute (paper §3.5: clients define
// attributes; indexed ones get a B-tree, full-text ones an FTS index).
type AttributeDef struct {
	Name string        `json:"name"`
	Type reldb.ColType `json:"type"`
	// Indexed builds a secondary B-tree index enabling pre-filter plans
	// for =, <, >, <=, >= predicates on this attribute.
	Indexed bool `json:"indexed"`
	// FullText builds an inverted token index enabling MATCH predicates.
	// Only valid for TypeText attributes.
	FullText bool `json:"full_text"`
}

// Config parameterizes an index. It is persisted in the meta table at
// Create time; Open restores it.
type Config struct {
	// Dim is the vector dimensionality.
	Dim int `json:"dim"`
	// Metric is the distance metric.
	Metric vec.Metric `json:"metric"`
	// TargetPartitionSize is the desired vectors per partition
	// (default 100, the paper's default).
	TargetPartitionSize int `json:"target_partition_size"`
	// RebuildGrowthThreshold triggers a full rebuild when the average
	// partition size exceeds the at-build average by this fraction
	// (default 0.5, the 50% threshold used in the paper's §4.3.4).
	RebuildGrowthThreshold float64 `json:"rebuild_growth_threshold"`
	// Attributes declares the filterable attributes.
	Attributes []AttributeDef `json:"attributes"`
	// Workers bounds scan parallelism (default GOMAXPROCS).
	Workers int `json:"workers"`
	// ClusterBatchSize, ClusterIterations and BalancePenalty feed the
	// mini-batch k-means trainer (zero values pick its defaults).
	ClusterBatchSize  int     `json:"cluster_batch_size"`
	ClusterIterations int     `json:"cluster_iterations"`
	BalancePenalty    float32 `json:"balance_penalty"`
	// CentroidIndexThreshold is the partition count above which a
	// two-level coarse index accelerates centroid ranking (the extension
	// the paper sketches in §3.2 for very large collections). 0 uses the
	// default of 4096; negative disables the coarse index entirely.
	CentroidIndexThreshold int `json:"centroid_index_threshold"`
	// Quantization selects the partition-scan encoding (create-time
	// option). With quant.SQ8 a per-dimension affine codebook is trained
	// at every Rebuild, partition rows store one byte per dimension, and
	// searches rerank the top RerankFactor*K approximate candidates
	// against exact float32 vectors from the raw store. quant.SQ4 packs
	// two 4-bit codes per byte, halving scanned bytes again. The
	// delta-store always keeps float32 vectors, so streaming inserts need
	// no retraining.
	Quantization quant.Type `json:"quantization"`
	// RerankFactor is the default rerank multiplier for quantized
	// searches: the scan keeps RerankFactor*K candidates by approximate
	// distance before exact reranking (default 4).
	RerankFactor int `json:"rerank_factor"`
	// ClipPercentile trims each dimension's trained quantization range to
	// the [p, 1-p] quantiles of a bounded sample, so a few outlier values
	// cannot stretch the code grid. 0 defaults to 0.005 for SQ4 (whose
	// 16-level grid is outlier-sensitive) and to no clipping otherwise;
	// negative disables clipping explicitly. Must be below 0.5.
	ClipPercentile float64 `json:"clip_percentile,omitempty"`
	// Seed makes clustering deterministic.
	Seed int64 `json:"seed"`
}

func (c *Config) fillDefaults() {
	if c.TargetPartitionSize == 0 {
		c.TargetPartitionSize = 100
	}
	if c.RebuildGrowthThreshold == 0 {
		c.RebuildGrowthThreshold = 0.5
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RerankFactor == 0 {
		c.RerankFactor = 4
	}
	if c.ClipPercentile == 0 && c.Quantization == quant.SQ4 {
		c.ClipPercentile = 0.005
	}
	if c.ClipPercentile < 0 {
		c.ClipPercentile = 0
	}
}

// state is the transactional index state, stored as a meta row and updated
// inside every mutating transaction.
type state struct {
	NextVID        int64   `json:"next_vid"`
	NumVectors     int64   `json:"num_vectors"`
	DeltaCount     int64   `json:"delta_count"`
	NumPartitions  int64   `json:"num_partitions"` // excluding the delta
	AvgSizeAtBuild float64 `json:"avg_size_at_build"`
	// NextPartID is the next unused partition id (splits allocate from it).
	// Zero in databases created before incremental maintenance existed;
	// nextPartitionID then derives it from the centroid table.
	NextPartID int64 `json:"next_part_id,omitempty"`
	// Generation increments on every operation that changes centroids
	// (rebuild, flush, split, merge); it keys the in-memory centroid cache.
	Generation int64 `json:"generation"`
	// DataGen increments inside every committed transaction that can
	// change any query-visible data: upserts, deletes, flushes, splits,
	// merges, rebuilds and attribute-statistics refreshes. It is strictly
	// finer-grained than Generation (every Generation bump is also a
	// DataGen bump, but point writes bump only DataGen, so the centroid
	// and codebook caches survive streaming updates). The micronn result
	// cache records it per entry: an unchanged DataGen at a later read
	// snapshot proves the visible data is identical, so a cached response
	// may be served verbatim. Absent (zero) in databases created before
	// the result cache existed; they simply start counting at their next
	// write.
	DataGen int64 `json:"data_gen,omitempty"`
	// Runs lists the live immutable sorted runs (LSM ingest, see runs.go),
	// oldest first. Each run's rows live in the vectors table at the
	// negative partition id -Run.ID. Empty in databases that never sealed
	// a run.
	Runs []runInfo `json:"runs,omitempty"`
	// NextRunID is the next unused run id (run ids start at 1 and are
	// never reused, so a compacted run's negative partition id can never
	// be confused with a later run's).
	NextRunID int64 `json:"next_run_id,omitempty"`
}

// runLiveRows totals the live (non-tombstoned) rows across all runs.
func (st *state) runLiveRows() int64 {
	var n int64
	for _, r := range st.Runs {
		n += r.Rows
	}
	return n
}

// runIdx finds the run with the given id, or -1.
func (st *state) runIdx(id int64) int {
	for i := range st.Runs {
		if st.Runs[i].ID == id {
			return i
		}
	}
	return -1
}

// Index is the disk-resident IVF index.
type Index struct {
	db  *reldb.DB
	cfg Config

	vectors   *reldb.Table
	centroids *reldb.Table
	assets    *reldb.Table
	vids      *reldb.Table
	attrs     *reldb.Table
	meta      *reldb.Table
	rawvecs   *reldb.Table // nil unless quantization is enabled
	tombs     *reldb.Table // nil in databases created before runs existed

	attrIndexes map[string]*reldb.Index // attribute name -> secondary index
	ftsIndexes  map[string]*fts.Index   // attribute name -> fts index
	attrPos     map[string]int          // attribute name -> position in attrs row

	// Cached centroids, keyed by state.Generation.
	centMu    sync.Mutex
	centCache *centroidSet

	// Cached SQ8 codebook, keyed by state.Generation. entry.cb is nil
	// when no codebook is persisted at that generation (index not yet
	// built).
	cbMu    sync.Mutex
	cbCache *codebookEntry

	// Cached attribute statistics for the optimizer.
	statsMu    sync.Mutex
	statsCache *stats.TableStats
	statsGen   int64

	// scanPool recycles per-worker scan buffers across searches, keeping
	// steady-state query memory flat (queries on a warm cache allocate
	// almost nothing). probePool recycles the centroid-distance scratch.
	scanPool  sync.Pool
	probePool sync.Pool

	// locks is the partition-granular lock manager and version table
	// backing two-phase maintenance (see locks.go and maintain.go).
	locks partLocks

	// Per-run zone metadata cache and prune controls (see zone.go). The
	// cache is sound without generation keying: a run and its zone row are
	// created and deleted in the same transaction.
	zoneMu     sync.Mutex
	zoneCache  map[int64]*runZone
	pruneOff   atomic.Bool
	zoneChecks atomic.Int64
	zonePruned atomic.Int64
}

// probeScratch is the centroid-distance scratch used by probeSet.
type probeScratch struct {
	dists []float32
	order []int
}

func (ix *Index) getProbeScratch(n int) *probeScratch {
	ps, ok := ix.probePool.Get().(*probeScratch)
	if !ok {
		ps = &probeScratch{}
	}
	if cap(ps.dists) < n {
		ps.dists = make([]float32, n)
		ps.order = make([]int, n)
	}
	return ps
}

// scanBuffers is the per-worker scratch for partition scans. codes holds
// the gathered SQ8 codes when the scanned partition is quantized.
type scanBuffers struct {
	batch  *vec.Matrix
	codes  []byte
	vids   []int64
	assets []string
	dists  []float32
}

func (ix *Index) getScanBuffers() *scanBuffers {
	if b, ok := ix.scanPool.Get().(*scanBuffers); ok {
		return b
	}
	return &scanBuffers{
		batch:  vec.NewMatrix(scanBatch, ix.cfg.Dim),
		codes:  make([]byte, 0, scanBatch*ix.cfg.Dim),
		vids:   make([]int64, 0, scanBatch),
		assets: make([]string, 0, scanBatch),
		dists:  make([]float32, scanBatch),
	}
}

func (ix *Index) putScanBuffers(b *scanBuffers) {
	b.codes = b.codes[:0]
	b.vids = b.vids[:0]
	b.assets = b.assets[:0]
	ix.scanPool.Put(b)
}

// centroidSet is the decoded centroid table: partition ids, centroid
// matrix, per-row squared norms and per-partition counts. For very large
// partition counts a two-level coarse index accelerates centroid ranking
// (see centindex.go).
type centroidSet struct {
	gen    int64
	ids    []int64
	counts []int64
	mat    *vec.Matrix
	norms  []float32
	coarse *coarseIndex
}

// Create initializes the index tables inside wt and returns the handle.
func Create(db *reldb.DB, wt *storage.WriteTxn, cfg Config) (*Index, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("ivf: Dim must be positive")
	}
	// The quantization scheme is persisted in the on-disk config; an
	// unknown value must fail here, not silently encode as SQ8.
	switch cfg.Quantization {
	case quant.None, quant.SQ8, quant.SQ4:
	default:
		return nil, fmt.Errorf("ivf: unknown quantization %v", cfg.Quantization)
	}
	if cfg.ClipPercentile >= 0.5 {
		return nil, fmt.Errorf("ivf: ClipPercentile %v out of range [0, 0.5)", cfg.ClipPercentile)
	}
	cfg.fillDefaults()

	attrCols := make([]reldb.Column, 0, len(cfg.Attributes))
	for _, a := range cfg.Attributes {
		if a.FullText && a.Type != reldb.TypeText {
			return nil, fmt.Errorf("ivf: attribute %s: FullText requires TypeText", a.Name)
		}
		attrCols = append(attrCols, reldb.Column{Name: a.Name, Type: a.Type})
	}

	schemas := []*reldb.Schema{
		{
			Name: tblVectors,
			Key: []reldb.Column{
				{Name: "part", Type: reldb.TypeInt64},
				{Name: "vid", Type: reldb.TypeInt64},
			},
			Cols: []reldb.Column{
				{Name: "asset", Type: reldb.TypeText},
				{Name: "blob", Type: reldb.TypeBlob},
			},
		},
		{
			Name: tblCentroids,
			Key:  []reldb.Column{{Name: "part", Type: reldb.TypeInt64}},
			Cols: []reldb.Column{
				{Name: "blob", Type: reldb.TypeBlob},
				{Name: "count", Type: reldb.TypeInt64},
			},
		},
		{
			Name: tblAssets,
			Key:  []reldb.Column{{Name: "asset", Type: reldb.TypeText}},
			Cols: []reldb.Column{
				{Name: "part", Type: reldb.TypeInt64},
				{Name: "vid", Type: reldb.TypeInt64},
			},
		},
		{
			Name: tblVIDs,
			Key:  []reldb.Column{{Name: "vid", Type: reldb.TypeInt64}},
			Cols: []reldb.Column{
				{Name: "part", Type: reldb.TypeInt64},
				{Name: "asset", Type: reldb.TypeText},
			},
		},
		{
			Name: tblAttrs,
			Key:  []reldb.Column{{Name: "vid", Type: reldb.TypeInt64}},
			Cols: attrCols,
		},
		{
			Name: tblMeta,
			Key:  []reldb.Column{{Name: "key", Type: reldb.TypeText}},
			Cols: []reldb.Column{{Name: "value", Type: reldb.TypeBlob}},
		},
		{
			Name: tblTombs,
			Key:  []reldb.Column{{Name: "vid", Type: reldb.TypeInt64}},
			Cols: []reldb.Column{{Name: "part", Type: reldb.TypeInt64}},
		},
	}
	if cfg.Quantization != quant.None {
		schemas = append(schemas, &reldb.Schema{
			Name: tblRawVecs,
			Key:  []reldb.Column{{Name: "vid", Type: reldb.TypeInt64}},
			Cols: []reldb.Column{{Name: "blob", Type: reldb.TypeBlob}},
		})
	}
	for _, s := range schemas {
		if err := db.CreateTable(wt, s); err != nil {
			return nil, err
		}
	}
	for _, a := range cfg.Attributes {
		if a.Indexed {
			if err := db.CreateIndex(wt, "attr_"+a.Name, tblAttrs, a.Name); err != nil {
				return nil, err
			}
		}
		if a.FullText {
			if _, err := fts.Create(db, wt, "attr_"+a.Name); err != nil {
				return nil, err
			}
		}
	}
	ix, err := open(db, cfg)
	if err != nil {
		return nil, err
	}
	cfgBlob, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	if err := ix.meta.Put(wt, reldb.Row{reldb.S("config"), reldb.B(cfgBlob)}); err != nil {
		return nil, err
	}
	if err := ix.putState(wt, state{}); err != nil {
		return nil, err
	}
	return ix, nil
}

// Open loads an existing index, restoring its configuration.
func Open(db *reldb.DB) (*Index, error) {
	meta, err := db.Table(tblMeta)
	if err != nil {
		return nil, err
	}
	var cfg Config
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		row, err := meta.Get(rt, reldb.S("config"))
		if err != nil {
			return err
		}
		return json.Unmarshal(row[1].Bts, &cfg)
	})
	if err != nil {
		return nil, fmt.Errorf("ivf: load config: %w", err)
	}
	cfg.fillDefaults()
	return open(db, cfg)
}

func open(db *reldb.DB, cfg Config) (*Index, error) {
	ix := &Index{
		db:          db,
		cfg:         cfg,
		attrIndexes: make(map[string]*reldb.Index),
		ftsIndexes:  make(map[string]*fts.Index),
		attrPos:     make(map[string]int),
	}
	var err error
	if ix.vectors, err = db.Table(tblVectors); err != nil {
		return nil, err
	}
	if ix.centroids, err = db.Table(tblCentroids); err != nil {
		return nil, err
	}
	if ix.assets, err = db.Table(tblAssets); err != nil {
		return nil, err
	}
	if ix.vids, err = db.Table(tblVIDs); err != nil {
		return nil, err
	}
	if ix.attrs, err = db.Table(tblAttrs); err != nil {
		return nil, err
	}
	if ix.meta, err = db.Table(tblMeta); err != nil {
		return nil, err
	}
	if cfg.Quantization != quant.None {
		if ix.rawvecs, err = db.Table(tblRawVecs); err != nil {
			return nil, err
		}
	}
	if db.HasTable(tblTombs) {
		// Databases created before runs existed lack the table; they can
		// never hold runs (sealing requires it), so nil is safe.
		if ix.tombs, err = db.Table(tblTombs); err != nil {
			return nil, err
		}
	}
	for i, a := range cfg.Attributes {
		ix.attrPos[a.Name] = 1 + i // position in the attrs row (after vid)
		if a.Indexed {
			idx, err := db.Index("attr_" + a.Name)
			if err != nil {
				return nil, err
			}
			ix.attrIndexes[a.Name] = idx
		}
		if a.FullText {
			f, err := fts.Open(db, "attr_"+a.Name)
			if err != nil {
				return nil, err
			}
			ix.ftsIndexes[a.Name] = f
		}
	}
	return ix, nil
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// SetRerankFactor overrides the default rerank multiplier for quantized
// searches. Unlike the persisted create-time configuration this is a pure
// search-time setting, so reopening callers may apply their own default.
// Call before serving queries; it is not synchronized with searches.
func (ix *Index) SetRerankFactor(rr int) {
	if rr > 0 {
		ix.cfg.RerankFactor = rr
	}
}

// DB exposes the relational layer (used by the bench harness).
func (ix *Index) DB() *reldb.DB { return ix.db }

func (ix *Index) getState(txn btree.ReadTxn) (state, error) {
	var st state
	row, err := ix.meta.Get(txn, reldb.S("state"))
	if err != nil {
		return st, fmt.Errorf("ivf: load state: %w", err)
	}
	if err := json.Unmarshal(row[1].Bts, &st); err != nil {
		return st, err
	}
	return st, nil
}

func (ix *Index) putState(wt *storage.WriteTxn, st state) error {
	blob, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return ix.meta.Put(wt, reldb.Row{reldb.S("state"), reldb.B(blob)})
}

// Stats summarizes the index for monitoring (paper's index monitor).
type Stats struct {
	NumVectors    int64
	DeltaCount    int64
	NumPartitions int64
	// AvgPartitionSize is vectors-per-partition over the IVF partitions
	// (excluding the delta and the unmerged runs).
	AvgPartitionSize float64
	// AvgSizeAtBuild is the average partition size right after the last
	// full build; the monitor compares growth against it.
	AvgSizeAtBuild float64
	Generation     int64
	// DataGen is the data-generation counter backing the result cache
	// (see state.DataGen).
	DataGen int64
	// RunCount / RunRows / DeadRows describe the unmerged immutable runs:
	// how many there are, their live rows (counted in NumVectors, not yet
	// in any IVF partition) and their tombstoned rows still awaiting
	// compaction (counted nowhere).
	RunCount int64
	RunRows  int64
	DeadRows int64
}

// Stats reads the monitor counters at the transaction's snapshot.
func (ix *Index) Stats(txn btree.ReadTxn) (Stats, error) {
	st, err := ix.getState(txn)
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		NumVectors:     st.NumVectors,
		DeltaCount:     st.DeltaCount,
		NumPartitions:  st.NumPartitions,
		AvgSizeAtBuild: st.AvgSizeAtBuild,
		Generation:     st.Generation,
		DataGen:        st.DataGen,
		RunCount:       int64(len(st.Runs)),
		RunRows:        st.runLiveRows(),
	}
	for _, r := range st.Runs {
		s.DeadRows += r.Dead
	}
	if st.NumPartitions > 0 {
		s.AvgPartitionSize = float64(st.NumVectors-st.DeltaCount-s.RunRows) / float64(st.NumPartitions)
	}
	return s, nil
}

// DataGeneration returns the data-generation counter visible at txn's
// snapshot. The counter increments inside every committed transaction that
// can change query-visible data (upserts, deletes, flushes, splits,
// merges, rebuilds, statistics refreshes) and is persisted in the meta
// state row, transactionally with the changes it versions — two read
// snapshots observing the same value observe identical data. The micronn
// result cache is keyed on it.
func (ix *Index) DataGeneration(txn btree.ReadTxn) (int64, error) {
	st, err := ix.getState(txn)
	if err != nil {
		return 0, err
	}
	return st.DataGen, nil
}

// bumpDataGen increments the data generation inside wt — for mutating
// operations that do not otherwise rewrite the state row.
func (ix *Index) bumpDataGen(wt *storage.WriteTxn) error {
	st, err := ix.getState(wt)
	if err != nil {
		return err
	}
	st.DataGen++
	return ix.putState(wt, st)
}

// NeedsRebuild reports whether the index monitor's growth threshold is
// exceeded (paper §3.6: unbounded partition growth is prevented by a full
// rebuild once average size grows past the client threshold). An index
// that has never been built needs a build once it holds any vectors.
func (ix *Index) NeedsRebuild(txn btree.ReadTxn) (bool, error) {
	st, err := ix.getState(txn)
	if err != nil {
		return false, err
	}
	if st.NumPartitions == 0 {
		return st.NumVectors > 0, nil
	}
	if st.AvgSizeAtBuild == 0 {
		return false, nil
	}
	avg := float64(st.NumVectors-st.DeltaCount-st.runLiveRows()) / float64(st.NumPartitions)
	return avg > st.AvgSizeAtBuild*(1+ix.cfg.RebuildGrowthThreshold), nil
}

// Upsert inserts or replaces the vector for asset (upsert semantics keyed
// on the client's asset id, §3.6). New vectors land in the delta-store.
// attrValues supplies declared attributes; missing attributes are null.
func (ix *Index) Upsert(wt *storage.WriteTxn, asset string, vector []float32, attrValues map[string]reldb.Value) error {
	if len(vector) != ix.cfg.Dim {
		return fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(vector), ix.cfg.Dim)
	}
	st, err := ix.getState(wt)
	if err != nil {
		return err
	}
	// Upsert semantics: drop any existing vector for this asset.
	oldPart, _, err := ix.removeAsset(wt, asset, &st)
	if err != nil {
		return err
	}
	wt.OnCommit(func() { ix.locks.Bump(DeltaPartition, oldPart) })

	vid := st.NextVID
	st.NextVID++
	blob := vec.ToBlob(make([]byte, 0, vec.BlobSize(ix.cfg.Dim)), vector)

	if err := ix.vectors.Put(wt, reldb.Row{reldb.I(DeltaPartition), reldb.I(vid), reldb.S(asset), reldb.B(blob)}); err != nil {
		return err
	}
	if ix.rawvecs != nil {
		// Quantized indexes keep the exact vector in the raw store for
		// reranking, point lookups and codebook retraining.
		if err := ix.rawvecs.Put(wt, reldb.Row{reldb.I(vid), reldb.B(blob)}); err != nil {
			return err
		}
	}
	if err := ix.assets.Put(wt, reldb.Row{reldb.S(asset), reldb.I(DeltaPartition), reldb.I(vid)}); err != nil {
		return err
	}
	if err := ix.vids.Put(wt, reldb.Row{reldb.I(vid), reldb.I(DeltaPartition), reldb.S(asset)}); err != nil {
		return err
	}

	attrRow := make(reldb.Row, 1+len(ix.cfg.Attributes))
	attrRow[0] = reldb.I(vid)
	for i, a := range ix.cfg.Attributes {
		v, ok := attrValues[a.Name]
		if !ok {
			v = reldb.Null()
		}
		attrRow[1+i] = v
	}
	for name := range attrValues {
		if _, ok := ix.attrPos[name]; !ok {
			return fmt.Errorf("ivf: undeclared attribute %q", name)
		}
	}
	if err := ix.attrs.Put(wt, attrRow); err != nil {
		return err
	}
	for name, f := range ix.ftsIndexes {
		v := attrRow[ix.attrPos[name]]
		if !v.IsNull() {
			if err := f.Add(wt, vid, v.Str); err != nil {
				return err
			}
		}
	}

	st.NumVectors++
	st.DeltaCount++
	st.DataGen++
	if err := ix.putState(wt, st); err != nil {
		return err
	}
	return wt.SpillIfNeeded()
}

// Delete removes the asset's vector, returning ErrNotFound if absent.
func (ix *Index) Delete(wt *storage.WriteTxn, asset string) error {
	st, err := ix.getState(wt)
	if err != nil {
		return err
	}
	part, removed, err := ix.removeAsset(wt, asset, &st)
	if err != nil {
		return err
	}
	if !removed {
		return ErrNotFound
	}
	wt.OnCommit(func() { ix.locks.Bump(part) })
	st.DataGen++
	if err := ix.putState(wt, st); err != nil {
		return err
	}
	return wt.SpillIfNeeded()
}

// removeAsset deletes all rows belonging to asset, adjusting st counters.
// It reports the partition the asset lived in so the caller can register
// the version bump for it.
func (ix *Index) removeAsset(wt *storage.WriteTxn, asset string, st *state) (int64, bool, error) {
	row, err := ix.assets.Get(wt, reldb.S(asset))
	if errors.Is(err, reldb.ErrNotFound) {
		return DeltaPartition, false, nil
	}
	if err != nil {
		return DeltaPartition, false, err
	}
	part, vid := row[1].Int, row[2].Int

	if part < 0 {
		// The asset lives in an immutable run: leave the vectors row in
		// place and write a tombstone instead. Searches skip tombstoned
		// vids; compaction physically deletes the row and the tombstone.
		// All side rows (assets/vids/rawvecs/attrs/fts) are cleaned
		// eagerly below, exactly like a normal delete.
		if err := ix.tombs.Put(wt, reldb.Row{reldb.I(vid), reldb.I(part)}); err != nil {
			return part, false, err
		}
		if i := st.runIdx(-part); i >= 0 {
			st.Runs[i].Rows--
			st.Runs[i].Dead++
		}
	} else {
		if err := ix.vectors.Delete(wt, reldb.I(part), reldb.I(vid)); err != nil {
			return part, false, err
		}
	}
	if part > 0 {
		// Keep the per-partition count exact: the maintenance planner
		// reads it to decide splits and merges (paper §3.6's monitor).
		if err := ix.adjustCentroidCount(wt, part, -1); err != nil {
			return part, false, err
		}
	}
	if err := ix.assets.Delete(wt, reldb.S(asset)); err != nil {
		return part, false, err
	}
	if err := ix.vids.Delete(wt, reldb.I(vid)); err != nil {
		return part, false, err
	}
	if ix.rawvecs != nil {
		if err := ix.rawvecs.Delete(wt, reldb.I(vid)); err != nil && !errors.Is(err, reldb.ErrNotFound) {
			return part, false, err
		}
	}
	attrRow, err := ix.attrs.Get(wt, reldb.I(vid))
	if err == nil {
		for name, f := range ix.ftsIndexes {
			v := attrRow[ix.attrPos[name]]
			if !v.IsNull() {
				if err := f.Remove(wt, vid, v.Str); err != nil {
					return part, false, err
				}
			}
		}
		if err := ix.attrs.Delete(wt, reldb.I(vid)); err != nil {
			return part, false, err
		}
	} else if !errors.Is(err, reldb.ErrNotFound) {
		return part, false, err
	}

	st.NumVectors--
	if part == DeltaPartition {
		st.DeltaCount--
	}
	return part, true, nil
}

// adjustCentroidCount adds delta to a partition's persisted row count. The
// count travels in the centroid row, so it stays transactional with the row
// moves that change it. A missing centroid row is ignored (legacy indexes
// mid-rebuild).
func (ix *Index) adjustCentroidCount(wt *storage.WriteTxn, part int64, delta int64) error {
	crow, err := ix.centroids.Get(wt, reldb.I(part))
	if errors.Is(err, reldb.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	cnt := crow[2].Int + delta
	if cnt < 0 {
		cnt = 0
	}
	blob := append([]byte(nil), crow[1].Bts...)
	return ix.centroids.Put(wt, reldb.Row{reldb.I(part), reldb.B(blob), reldb.I(cnt)})
}

// GetVector returns the stored vector and attributes for asset.
func (ix *Index) GetVector(txn btree.ReadTxn, asset string) ([]float32, map[string]reldb.Value, error) {
	row, err := ix.assets.Get(txn, reldb.S(asset))
	if errors.Is(err, reldb.ErrNotFound) {
		return nil, nil, ErrNotFound
	}
	if err != nil {
		return nil, nil, err
	}
	part, vid := row[1].Int, row[2].Int
	vector := make([]float32, ix.cfg.Dim)
	if ix.rawvecs != nil {
		// Quantized partition rows hold lossy codes; the exact vector
		// lives in the raw store.
		vrow, err := ix.rawvecs.Get(txn, reldb.I(vid))
		if err != nil {
			return nil, nil, err
		}
		vec.FromBlob(vector, vrow[1].Bts)
	} else {
		vrow, err := ix.vectors.Get(txn, reldb.I(part), reldb.I(vid))
		if err != nil {
			return nil, nil, err
		}
		vec.FromBlob(vector, vrow[3].Bts)
	}

	attrs := make(map[string]reldb.Value)
	arow, err := ix.attrs.Get(txn, reldb.I(vid))
	if err == nil {
		for name, pos := range ix.attrPos {
			if !arow[pos].IsNull() {
				attrs[name] = arow[pos]
			}
		}
	} else if !errors.Is(err, reldb.ErrNotFound) {
		return nil, nil, err
	}
	return vector, attrs, nil
}

// loadCentroids returns the centroid set visible at txn's snapshot, using
// the in-memory cache when its generation matches. This cache is why the
// paper's WarmCache scenario skips the centroid scan entirely.
func (ix *Index) loadCentroids(txn btree.ReadTxn) (*centroidSet, error) {
	st, err := ix.getState(txn)
	if err != nil {
		return nil, err
	}
	ix.centMu.Lock()
	if ix.centCache != nil && ix.centCache.gen == st.Generation {
		cs := ix.centCache
		ix.centMu.Unlock()
		return cs, nil
	}
	ix.centMu.Unlock()

	var ids []int64
	var counts []int64
	var blobs [][]byte
	err = ix.centroids.Scan(txn, nil, func(row reldb.Row) error {
		ids = append(ids, row[0].Int)
		blobs = append(blobs, row[1].Bts)
		counts = append(counts, row[2].Int)
		return nil
	})
	if err != nil {
		return nil, err
	}
	mat := vec.NewMatrix(len(ids), ix.cfg.Dim)
	for i, b := range blobs {
		mat.AppendRowBlob(i, b)
	}
	cs := &centroidSet{
		gen:    st.Generation,
		ids:    ids,
		counts: counts,
		mat:    mat,
		norms:  mat.Norms(make([]float32, 0, len(ids))),
	}
	threshold := ix.cfg.CentroidIndexThreshold
	if threshold == 0 {
		threshold = centroidIndexThreshold
	}
	if threshold > 0 && len(ids) >= threshold {
		coarse, err := buildCoarseIndex(ix.cfg.Metric, mat, ix.cfg.Seed)
		if err != nil {
			return nil, err
		}
		cs.coarse = coarse
	}
	ix.centMu.Lock()
	if ix.centCache == nil || ix.centCache.gen <= cs.gen {
		ix.centCache = cs
	}
	ix.centMu.Unlock()
	return cs, nil
}

// DropCaches clears the in-memory centroid, codebook and statistics caches
// (the ColdStart scenario, combined with storage.Store.DropCaches).
func (ix *Index) DropCaches() {
	ix.centMu.Lock()
	ix.centCache = nil
	ix.centMu.Unlock()
	ix.cbMu.Lock()
	ix.cbCache = nil
	ix.cbMu.Unlock()
	ix.statsMu.Lock()
	ix.statsCache = nil
	ix.statsGen = -1
	ix.statsMu.Unlock()
	ix.dropZoneCache()
}

// codebookEntry caches the decoded SQ8 codebook for one index generation.
type codebookEntry struct {
	gen int64
	cb  *quant.Codebook // nil when no codebook exists at this generation
}

// loadCodebook returns the SQ8 codebook visible at txn's snapshot, or nil
// when the index is unquantized or not yet built. Like the centroid cache
// it is keyed by the state generation, so rebuilds invalidate it.
func (ix *Index) loadCodebook(txn btree.ReadTxn) (*quant.Codebook, error) {
	if ix.cfg.Quantization == quant.None {
		return nil, nil
	}
	st, err := ix.getState(txn)
	if err != nil {
		return nil, err
	}
	ix.cbMu.Lock()
	if ix.cbCache != nil && ix.cbCache.gen == st.Generation {
		cb := ix.cbCache.cb
		ix.cbMu.Unlock()
		return cb, nil
	}
	ix.cbMu.Unlock()

	entry := &codebookEntry{gen: st.Generation}
	row, err := ix.meta.Get(txn, reldb.S(metaCodebook))
	if err == nil {
		if entry.cb, err = quant.UnmarshalCodebook(row[1].Bts); err != nil {
			return nil, fmt.Errorf("ivf: load codebook: %w", err)
		}
	} else if !errors.Is(err, reldb.ErrNotFound) {
		return nil, err
	}
	ix.cbMu.Lock()
	if ix.cbCache == nil || ix.cbCache.gen <= entry.gen {
		ix.cbCache = entry
	}
	ix.cbMu.Unlock()
	return entry.cb, nil
}

// rawVector fetches the exact float32 blob for vid from the raw store (the
// rerank/lookup path of a quantized index). The returned slice aliases
// transaction-owned memory.
func (ix *Index) rawVector(txn btree.ReadTxn, vid int64) ([]byte, error) {
	row, err := ix.rawvecs.Get(txn, reldb.I(vid))
	if err != nil {
		return nil, err
	}
	return row[1].Bts, nil
}
