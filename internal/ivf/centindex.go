package ivf

import (
	"micronn/internal/clustering"
	"micronn/internal/vec"
)

// Two-level centroid index. The paper's search scans the full centroid list
// per query (§3.3) and notes that for very large partition counts — the
// DEEPImage case in §4.3.3, where ≈100k centroids dominate batch cost —
// "additional indexing over the centroids would reduce the overhead of the
// centroid scan", leaving it beyond the paper's scope. This file implements
// that extension: the centroids are themselves clustered into ~sqrt(k)
// super-clusters; a probe first ranks super-centroids, then ranks only the
// centroids inside the nearest super-clusters.
//
// The coarse search is approximate (a true nearest centroid can hide in an
// unprobed super-cluster), so it activates only past a size threshold where
// the linear scan actually hurts, and it over-fetches super-clusters until
// a safety multiple of the requested probe count is covered.

// centroidIndexThreshold is the partition count above which the coarse
// index is built. Below it a linear scan is faster than two hops.
const centroidIndexThreshold = 4096

// coarseOverfetch is the safety multiple: super-clusters are taken until
// they cover at least coarseOverfetch*nprobe centroids.
const coarseOverfetch = 4

// coarseIndex is the in-memory two-level structure over one centroidSet.
type coarseIndex struct {
	supers     *vec.Matrix // super-centroid vectors
	superNorms []float32
	members    [][]int32 // super -> indices into the centroidSet
}

// buildCoarseIndex clusters the centroid matrix into ~sqrt(k) groups.
func buildCoarseIndex(metric vec.Metric, cents *vec.Matrix, seed int64) (*coarseIndex, error) {
	k := cents.Rows
	k2 := 1
	for k2*k2 < k {
		k2++
	}
	res, err := clustering.MiniBatchKMeans(clustering.Config{
		K:                 k2,
		TargetClusterSize: (k + k2 - 1) / k2,
		BatchSize:         2048,
		Metric:            metric,
		Seed:              seed,
	}, clustering.MatrixSource{M: cents})
	if err != nil {
		return nil, err
	}
	ci := &coarseIndex{
		supers:     res.Centroids,
		superNorms: res.Centroids.Norms(nil),
		members:    make([][]int32, res.Centroids.Rows),
	}
	scratch := make([]float32, res.Centroids.Rows)
	for i := 0; i < k; i++ {
		s := clustering.Assign(metric, res.Centroids, cents.Row(i), scratch)
		ci.members[s] = append(ci.members[s], int32(i))
	}
	return ci, nil
}

// candidates returns the centroid indices inside the nearest super-clusters
// covering at least want centroids (or everything if the index degenerates).
func (ci *coarseIndex) candidates(metric vec.Metric, q []float32, want int) []int32 {
	n := ci.supers.Rows
	dists := make([]float32, n)
	vec.DistancesOneToMany(metric, q, ci.supers, l2Only(metric, ci.superNorms), dists)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Partial selection sort: supers are few (~sqrt(k)), and we usually
	// stop after a handful.
	out := make([]int32, 0, want)
	for picked := 0; picked < n && len(out) < want; picked++ {
		best := picked
		for j := picked + 1; j < n; j++ {
			if dists[order[j]] < dists[order[best]] {
				best = j
			}
		}
		order[picked], order[best] = order[best], order[picked]
		out = append(out, ci.members[order[picked]]...)
	}
	return out
}

// probeSetCoarse ranks only the candidate centroids surfaced by the coarse
// index. Falls back to nil (caller uses the linear path) when the coarse
// index is absent.
func (ix *Index) probeSetCoarse(cs *centroidSet, q []float32, nprobe int) []int64 {
	ci := cs.coarse
	if ci == nil {
		return nil
	}
	want := nprobe * coarseOverfetch
	if want > len(cs.ids) {
		want = len(cs.ids)
	}
	cand := ci.candidates(ix.cfg.Metric, q, want)
	if len(cand) < nprobe {
		return nil // degenerate clustering; use the exact path
	}
	// Rank the candidates exactly.
	type scored struct {
		idx  int32
		dist float32
	}
	scoredCand := make([]scored, len(cand))
	for i, c := range cand {
		scoredCand[i] = scored{idx: c, dist: vec.Distance(ix.cfg.Metric, q, cs.mat.Row(int(c)))}
	}
	// Partial selection of the nprobe best.
	parts := make([]int64, 0, nprobe+1)
	parts = append(parts, DeltaPartition)
	for picked := 0; picked < nprobe && picked < len(scoredCand); picked++ {
		best := picked
		for j := picked + 1; j < len(scoredCand); j++ {
			if scoredCand[j].dist < scoredCand[best].dist {
				best = j
			}
		}
		scoredCand[picked], scoredCand[best] = scoredCand[best], scoredCand[picked]
		parts = append(parts, cs.ids[scoredCand[picked].idx])
	}
	return parts
}
