package ivf

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"micronn/internal/btree"
	"micronn/internal/quant"
	"micronn/internal/reldb"
	"micronn/internal/stats"
	"micronn/internal/storage"
	"micronn/internal/token"
	"micronn/internal/topk"
	"micronn/internal/vec"
)

// PlanType identifies a hybrid query execution plan (paper §3.5).
type PlanType uint8

const (
	// PlanAuto lets the optimizer choose between pre- and post-filtering
	// from selectivity estimates.
	PlanAuto PlanType = iota
	// PlanPreFilter evaluates the attribute filter first and brute-forces
	// the qualifying vectors: 100% recall, latency proportional to the
	// qualifying set.
	PlanPreFilter
	// PlanPostFilter runs the IVF scan with the filter applied to each
	// candidate during the partition scan.
	PlanPostFilter
)

// String names the plan.
func (p PlanType) String() string {
	switch p {
	case PlanAuto:
		return "auto"
	case PlanPreFilter:
		return "pre-filter"
	case PlanPostFilter:
		return "post-filter"
	default:
		return fmt.Sprintf("PlanType(%d)", uint8(p))
	}
}

// SearchOptions parameterizes Search.
type SearchOptions struct {
	// K is the number of neighbours to return (required).
	K int
	// NProbe is the number of IVF partitions to scan (Algorithm 2's n);
	// the delta partition is always scanned in addition. Defaults to 8.
	NProbe int
	// Filters is the CNF attribute filter set; nil means pure ANN.
	Filters []stats.Filter
	// Exact forces an exhaustive KNN scan (with filters applied row-wise
	// when present). On a quantized index every candidate's exact vector
	// is fetched from the raw store, preserving the 100%-recall contract.
	Exact bool
	// Plan overrides the optimizer's pre/post-filter choice.
	Plan PlanType
	// RerankFactor overrides the quantized-search rerank multiplier: the
	// scan keeps RerankFactor*K candidates by approximate SQ8 distance
	// before the exact rerank (0 = Config.RerankFactor, default 4).
	// Ignored on unquantized indexes.
	RerankFactor int
	// CandidatesOnly skips the final exact rerank on a quantized post-
	// filter scan and returns the merged RerankFactor*K approximate
	// candidates instead of the top K (PlanInfo.CandidatesApprox is then
	// set). Paths that are already exact — unquantized scans, pre-filter
	// plans, Exact searches — return their usual results unchanged. The
	// sharded router uses this to pool candidates from every shard before
	// one global rerank, so cross-shard recall matches a single store.
	CandidatesOnly bool
	// Cancel, when non-nil and closed, aborts the search between partition
	// scans: workers stop draining the partition queue and Search returns
	// ErrCanceled. The sharded router closes it to reap sibling scatter
	// searches once one shard has already failed the whole query.
	Cancel <-chan struct{}
}

// ErrCanceled reports a search abandoned via SearchOptions.Cancel. The
// result set it accompanies is meaningless, not partial.
var ErrCanceled = errors.New("ivf: search canceled")

// PlanInfo reports how a query executed.
type PlanInfo struct {
	Plan              PlanType
	FilterSelectivity float64 // F̂_filters, when filters were present
	IVFSelectivity    float64 // F̂_IVF = n·p/|R|
	PartitionsScanned int
	VectorsScanned    int64 // vectors whose distance was computed
	RowsFiltered      int64 // candidates rejected by predicates pre-distance
	// BytesScanned is the vector payload volume the query read: one byte
	// per dimension on quantized partition scans, four otherwise, plus
	// the exact vectors fetched by the rerank phase — the I/O metric the
	// SQ8 path reduces.
	BytesScanned int64
	// Reranked counts quantized candidates recomputed at full precision
	// against the raw store.
	Reranked int
	// CandidatesApprox marks a CandidatesOnly result whose distances are
	// approximate SQ8 distances: the caller owes the exact rerank (see
	// RerankCandidates).
	CandidatesApprox bool
}

// Search performs (approximate or exact) K-nearest-neighbour search with
// optional hybrid attribute filters. It is safe for concurrent use with a
// *storage.ReadTxn; partition scans then run on the configured worker pool
// (Algorithm 2). With any other transaction type the scan is sequential.
func (ix *Index) Search(txn btree.ReadTxn, q []float32, opts SearchOptions) ([]topk.Result, *PlanInfo, error) {
	if opts.K <= 0 {
		return nil, nil, fmt.Errorf("ivf: K must be positive")
	}
	if len(q) != ix.cfg.Dim {
		return nil, nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), ix.cfg.Dim)
	}
	if opts.NProbe <= 0 {
		opts.NProbe = 8
	}
	info := &PlanInfo{Plan: PlanPostFilter}

	cs, err := ix.loadCentroids(txn)
	if err != nil {
		return nil, nil, err
	}
	st, err := ix.getState(txn)
	if err != nil {
		return nil, nil, err
	}

	if opts.Exact {
		parts := append([]int64{DeltaPartition}, cs.ids...)
		res, err := ix.scanPartitions(txn, parts, q, opts, info)
		return res, info, err
	}

	if len(opts.Filters) > 0 {
		return ix.hybridSearch(txn, q, opts, cs, st, info)
	}

	parts := ix.probeSet(cs, q, opts.NProbe)
	info.IVFSelectivity = ivfSelectivity(opts.NProbe, ix.cfg.TargetPartitionSize, st.NumVectors)
	res, err := ix.scanPartitions(txn, parts, q, opts, info)
	return res, info, err
}

// rerankFactor resolves the effective rerank multiplier.
func (ix *Index) rerankFactor(override int) int {
	rr := override
	if rr <= 0 {
		rr = ix.cfg.RerankFactor
	}
	if rr < 1 {
		rr = 1
	}
	return rr
}

// probeSet returns the delta partition plus the NProbe partitions whose
// centroids are nearest to q (Algorithm 2 line 3). Past the coarse-index
// threshold the two-level centroid index replaces the linear scan.
func (ix *Index) probeSet(cs *centroidSet, q []float32, nprobe int) []int64 {
	if len(cs.ids) == 0 {
		return []int64{DeltaPartition}
	}
	if nprobe > len(cs.ids) {
		nprobe = len(cs.ids)
	}
	if parts := ix.probeSetCoarse(cs, q, nprobe); parts != nil {
		return parts
	}
	ps := ix.getProbeScratch(cs.mat.Rows)
	defer ix.probePool.Put(ps)
	dists := ps.dists[:cs.mat.Rows]
	vec.DistancesOneToMany(ix.cfg.Metric, q, cs.mat, l2Only(ix.cfg.Metric, cs.norms), dists)
	order := ps.order[:cs.mat.Rows]
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	parts := make([]int64, 0, nprobe+1)
	parts = append(parts, DeltaPartition)
	for _, i := range order[:nprobe] {
		parts = append(parts, cs.ids[i])
	}
	return parts
}

// ivfSelectivity implements F̂_IVF = n·p/|R| (paper Eq. 2).
func ivfSelectivity(nprobe, targetSize int, numVectors int64) float64 {
	if numVectors == 0 {
		return 1
	}
	f := float64(nprobe) * float64(targetSize) / float64(numVectors)
	if f > 1 {
		f = 1
	}
	return f
}

// scanBatch is the number of candidate vectors gathered before one batched
// distance-kernel call during partition scans.
const scanBatch = 256

// scanCtx bundles the per-search state shared by scan workers.
type scanCtx struct {
	q       []float32
	filters []stats.Filter
	ms      *matchSet       // compiled MATCH queries, nil without MATCH filters
	cb      *quant.Codebook // non-nil when partitions hold SQ8 codes
	qq      *quant.Query    // asymmetric-distance state (approximate scans)
	cancel  <-chan struct{} // closed to abandon the search (ErrCanceled)
	// dead is the tombstone set (vids of logically deleted run rows), loaded
	// only when some probed run carries tombstones; workers skip these rows.
	dead map[int64]bool
}

// matchSet holds the MATCH queries of one search compiled once (query
// tokenized, token set indexed), so row-loop filter evaluation never
// re-tokenizes the query or rebuilds a per-document token set. Immutable
// after compileMatchers, hence safe to share across scan workers.
type matchSet struct {
	byQuery map[string]*token.Matcher
	eval    reldb.MatchFunc
}

// compileMatchers pre-tokenizes every MATCH predicate in filters. Returns
// nil when there is nothing to compile.
func compileMatchers(filters []stats.Filter) *matchSet {
	var byQuery map[string]*token.Matcher
	for _, group := range filters {
		for _, pred := range group.AnyOf {
			if pred.Op != reldb.OpMatch {
				continue
			}
			if byQuery == nil {
				byQuery = make(map[string]*token.Matcher)
			}
			if _, ok := byQuery[pred.Value.Str]; !ok {
				byQuery[pred.Value.Str] = token.NewMatcher(pred.Value.Str)
			}
		}
	}
	if byQuery == nil {
		return nil
	}
	ms := &matchSet{byQuery: byQuery}
	ms.eval = func(doc, query string) bool {
		if m, ok := ms.byQuery[query]; ok {
			return m.Match(doc)
		}
		return token.Match(doc, query)
	}
	return ms
}

// matchFunc returns the MatchFunc Predicate.Eval should use: the compiled
// one when available, the one-shot tokenizer otherwise.
func (ms *matchSet) matchFunc() reldb.MatchFunc {
	if ms == nil {
		return token.Match
	}
	return ms.eval
}

// tokens returns query's pre-tokenized unique token set.
func (ms *matchSet) tokens(query string) []string {
	if ms != nil {
		if m, ok := ms.byQuery[query]; ok {
			return m.Tokens()
		}
	}
	return token.Unique(query)
}

// canceled reports whether the search's cancel channel has been closed.
func (c *scanCtx) canceled() bool { return chanClosed(c.cancel) }

// chanClosed reports whether c is non-nil and closed.
func chanClosed(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// scanPartitions runs Algorithm 2's partition scans: each worker scans
// whole partitions, maintains a private top-K heap, evaluates predicate
// filters before distances (the paper's pre-distance filter join), and the
// per-worker heaps are merged at the end.
//
// On a quantized index the workers compute approximate SQ8 distances and
// keep RerankFactor*K candidates each; the merged candidates are then
// reranked against exact float32 vectors from the raw store. With
// opts.Exact the workers fetch the exact vector for every row instead, so
// exhaustive search keeps full precision.
func (ix *Index) scanPartitions(txn btree.ReadTxn, parts []int64, q []float32, opts SearchOptions, info *PlanInfo) ([]topk.Result, error) {
	k := opts.K
	cb, err := ix.loadCodebook(txn)
	if err != nil {
		return nil, err
	}
	if cb != nil && opts.Exact {
		// Exhaustive search on a quantized index: one sequential pass
		// over the raw store instead of scanning lossy codes and chasing
		// a random raw lookup per row.
		return ix.exactQuantScan(txn, q, opts, info, len(parts))
	}
	ctx := &scanCtx{q: q, filters: opts.Filters, ms: compileMatchers(opts.Filters), cb: cb, cancel: opts.Cancel}
	heapK := k
	if cb != nil {
		ctx.qq = cb.NewQuery(ix.cfg.Metric, q)
		heapK = k * ix.rerankFactor(opts.RerankFactor)
	}

	// Every search scans the unmerged sorted runs in addition to the probed
	// partitions (like the delta, they hold rows no partition covers yet).
	// Appending here covers every caller — exact, probe-set and post-filter
	// paths alike. Run rows are encoded like partition rows, so the workers'
	// quantized-scan mode applies to them unchanged. runScanSet consults the
	// per-run zone metadata (zone.go): runs whose attribute Blooms rule out
	// an equality filter group are skipped, and the tombstone load is
	// bounded to the scanned runs' vid range.
	st, err := ix.getState(txn)
	if err != nil {
		return nil, err
	}
	runParts, dead, err := ix.runScanSet(txn, &st, opts.Filters)
	if err != nil {
		return nil, err
	}
	parts = append(parts, runParts...)
	ctx.dead = dead

	info.PartitionsScanned += len(parts)
	workers := ix.cfg.Workers
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers < 1 {
		workers = 1
	}
	rt, parallel := txn.(*storage.ReadTxn)
	if !parallel {
		workers = 1
	}
	if parallel && rt.WantReadahead() {
		// Hint the probed partitions' leaf pages to the OS before any
		// worker faults through them: collecting the page numbers walks
		// only interior nodes (pool-hot), so the scatter readahead is
		// nearly free and the scans below hit warmed pages. Advisory —
		// errors are ignored, the scan itself re-reports real ones.
		var pages []uint32
		for _, p := range parts {
			_ = ix.vectors.LeafPages(txn, []reldb.Value{reldb.I(p)}, func(pg uint32) {
				pages = append(pages, pg)
			})
		}
		rt.Readahead(pages)
	}

	heaps := make([]*topk.Heap, workers)
	scanned := make([]int64, workers)
	filtered := make([]int64, workers)
	bytesRead := make([]int64, workers)
	partCh := make(chan int64, len(parts))
	for _, p := range parts {
		partCh <- p
	}
	close(partCh)

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		heaps[w] = topk.New(heapK)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc, fl, by, err := ix.scanWorker(txn, partCh, ctx, heaps[w])
			scanned[w] += sc
			filtered[w] += fl
			bytesRead[w] += by
			if err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	for w := 0; w < workers; w++ {
		info.VectorsScanned += scanned[w]
		info.RowsFiltered += filtered[w]
		info.BytesScanned += bytesRead[w]
	}
	if ctx.qq == nil {
		return topk.Merge(k, heaps...), nil
	}
	cands := topk.Merge(heapK, heaps...)
	if opts.CandidatesOnly {
		info.CandidatesApprox = true
		return cands, nil
	}
	// Exact rerank of the approximate candidates (paper's refine step).
	res, rerankBytes, err := ix.rerankExact(txn, q, cands, k)
	if err != nil {
		return nil, err
	}
	info.Reranked += len(cands)
	info.BytesScanned += rerankBytes
	return res, nil
}

// exactQuantScan answers Exact queries on a quantized index at full
// precision: the raw store holds every vector (delta included) keyed by
// vid, so one sequential scan covers the collection. Asset ids are
// resolved only for the K survivors, not per scanned row. BytesScanned
// counts the float32 payload actually read.
func (ix *Index) exactQuantScan(txn btree.ReadTxn, q []float32, opts SearchOptions, info *PlanInfo, nparts int) ([]topk.Result, error) {
	heap := topk.New(opts.K)
	x := make([]float32, ix.cfg.Dim)
	ms := compileMatchers(opts.Filters)
	err := ix.rawvecs.Scan(txn, nil, func(row reldb.Row) error {
		vid := row[0].Int
		if len(opts.Filters) > 0 {
			ok, ferr := ix.evalFilters(txn, vid, opts.Filters, ms)
			if ferr != nil {
				return ferr
			}
			if !ok {
				info.RowsFiltered++
				return nil
			}
		}
		vec.FromBlob(x, row[1].Bts)
		info.VectorsScanned++
		info.BytesScanned += int64(len(row[1].Bts))
		heap.Push(topk.Result{VectorID: vid, Distance: vec.Distance(ix.cfg.Metric, q, x)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := heap.Results()
	for i := range res {
		vrow, err := ix.vids.Get(txn, reldb.I(res[i].VectorID))
		if err != nil {
			return nil, err
		}
		res[i].AssetID = vrow[2].Str
	}
	info.PartitionsScanned += nparts
	return res, nil
}

// RerankCandidates recomputes exact distances for cands — typically the
// pooled output of CandidatesOnly searches — against the raw store and
// returns the top k with the raw bytes read. Every candidate must belong to
// this index (its raw store holds the vid). Only valid on a quantized index.
func (ix *Index) RerankCandidates(txn btree.ReadTxn, q []float32, cands []topk.Result, k int) ([]topk.Result, int64, error) {
	if ix.rawvecs == nil {
		return nil, 0, fmt.Errorf("ivf: RerankCandidates on an unquantized index")
	}
	return ix.rerankExact(txn, q, cands, k)
}

// ForEachAsset streams every stored asset id at txn's snapshot, in key
// order. The sharded invariant battery uses it to prove no asset id lives in
// two shards and that every id hashes to the shard holding it.
func (ix *Index) ForEachAsset(txn btree.ReadTxn, fn func(asset string) error) error {
	return ix.assets.ScanKeys(txn, nil, func(key reldb.Row) error {
		return fn(key[0].Str)
	})
}

// rerankExact recomputes full-precision distances for cands from the raw
// store and returns the top k, along with the raw bytes it read (counted
// into the caller's BytesScanned so the reported I/O stays honest).
func (ix *Index) rerankExact(txn btree.ReadTxn, q []float32, cands []topk.Result, k int) ([]topk.Result, int64, error) {
	heap := topk.New(k)
	x := make([]float32, ix.cfg.Dim)
	var bytesRead int64
	for _, c := range cands {
		blob, err := ix.rawVector(txn, c.VectorID)
		if err != nil {
			return nil, 0, err
		}
		bytesRead += int64(len(blob))
		vec.FromBlob(x, blob)
		heap.Push(topk.Result{AssetID: c.AssetID, VectorID: c.VectorID, Distance: vec.Distance(ix.cfg.Metric, q, x)})
	}
	return heap.Results(), bytesRead, nil
}

// scanWorker drains partitions from partCh into its private heap.
func (ix *Index) scanWorker(txn btree.ReadTxn, partCh <-chan int64, ctx *scanCtx, heap *topk.Heap) (scanned, filtered, bytesRead int64, err error) {
	buf := ix.getScanBuffers()
	defer ix.putScanBuffers(buf)
	dim := ix.cfg.Dim

	quantized := false // whether buf currently gathers SQ8 codes
	flush := func() {
		n := len(buf.vids)
		if n == 0 {
			return
		}
		if quantized {
			ctx.qq.DistancesMany(buf.codes, n, buf.dists[:n])
		} else {
			sub := &vec.Matrix{Data: buf.batch.Data[:n*dim], Rows: n, Dim: dim}
			vec.DistancesOneToMany(ix.cfg.Metric, ctx.q, sub, nil, buf.dists[:n])
		}
		for i := 0; i < n; i++ {
			heap.Push(topk.Result{AssetID: buf.assets[i], VectorID: buf.vids[i], Distance: buf.dists[i]})
		}
		scanned += int64(n)
		buf.codes = buf.codes[:0]
		buf.vids = buf.vids[:0]
		buf.assets = buf.assets[:0]
	}

	for part := range partCh {
		if ctx.canceled() {
			return scanned, filtered, bytesRead, ErrCanceled
		}
		isQuant := ctx.cb != nil && part != DeltaPartition
		if isQuant != quantized {
			flush() // mode switch: don't mix codes and floats in one batch
			quantized = isQuant
		}
		perr := ix.vectors.Scan(txn, []reldb.Value{reldb.I(part)}, func(row reldb.Row) error {
			vid := row[1].Int
			if part < 0 && ctx.dead[vid] {
				return nil // tombstoned run row
			}
			if len(ctx.filters) > 0 {
				ok, ferr := ix.evalFilters(txn, vid, ctx.filters, ctx.ms)
				if ferr != nil {
					return ferr
				}
				if !ok {
					filtered++
					return nil
				}
			}
			bytesRead += int64(len(row[3].Bts))
			if isQuant {
				buf.codes = append(buf.codes, row[3].Bts...)
			} else {
				buf.batch.AppendRowBlob(len(buf.vids), row[3].Bts)
			}
			buf.vids = append(buf.vids, vid)
			buf.assets = append(buf.assets, row[2].Str)
			if len(buf.vids) == scanBatch {
				flush()
			}
			return nil
		})
		if perr != nil {
			return scanned, filtered, bytesRead, perr
		}
		flush()
	}
	return scanned, filtered, bytesRead, nil
}

// evalFilters applies the CNF filter set to the vector identified by vid.
// MATCH predicates on full-text attributes are answered by direct posting
// probes; the attribute row is fetched lazily, only when a comparison
// predicate needs it. ms carries the search's compiled MATCH queries (nil
// is allowed and falls back to one-shot tokenization); callers evaluating
// many rows must compile once with compileMatchers.
func (ix *Index) evalFilters(txn btree.ReadTxn, vid int64, filters []stats.Filter, ms *matchSet) (bool, error) {
	var row reldb.Row
	var rowLoaded, rowMissing bool
	loadRow := func() error {
		if rowLoaded {
			return nil
		}
		rowLoaded = true
		var err error
		row, err = ix.attrs.Get(txn, reldb.I(vid))
		if errors.Is(err, reldb.ErrNotFound) {
			rowMissing = true
			return nil
		}
		return err
	}
	for _, group := range filters {
		matched := false
		for _, pred := range group.AnyOf {
			pos, ok := ix.attrPos[pred.Column]
			if !ok {
				return false, fmt.Errorf("%w: %q", ErrNoFilter, pred.Column)
			}
			if pred.Op == reldb.OpMatch {
				if f, ok := ix.ftsIndexes[pred.Column]; ok {
					hit, err := f.ContainsAllTokens(txn, vid, ms.tokens(pred.Value.Str))
					if err != nil {
						return false, err
					}
					if hit {
						matched = true
						break
					}
					continue
				}
			}
			if err := loadRow(); err != nil {
				return false, err
			}
			if rowMissing {
				continue
			}
			if pred.Eval(row[pos], ms.matchFunc()) {
				matched = true
				break
			}
		}
		if !matched {
			return false, nil
		}
	}
	return true, nil
}

// --- hybrid search ---

// hybridSearch chooses and executes a pre- or post-filter plan.
func (ix *Index) hybridSearch(txn btree.ReadTxn, q []float32, opts SearchOptions, cs *centroidSet, st state, info *PlanInfo) ([]topk.Result, *PlanInfo, error) {
	info.IVFSelectivity = ivfSelectivity(opts.NProbe, ix.cfg.TargetPartitionSize, st.NumVectors)

	plan := opts.Plan
	if plan == PlanAuto {
		fsel, err := ix.estimateFilterSelectivity(txn, opts.Filters, st.Generation)
		if err != nil {
			return nil, nil, err
		}
		info.FilterSelectivity = fsel
		// The optimizer rule (§3.5.1): pre-filter iff the attribute
		// filter narrows the search more than the IVF probe set would.
		if fsel < info.IVFSelectivity {
			plan = PlanPreFilter
		} else {
			plan = PlanPostFilter
		}
	}
	info.Plan = plan

	switch plan {
	case PlanPreFilter:
		res, err := ix.preFilterSearch(txn, q, opts, info)
		return res, info, err
	default:
		parts := ix.probeSet(cs, q, opts.NProbe)
		res, err := ix.scanPartitions(txn, parts, q, opts, info)
		return res, info, err
	}
}

// estimateFilterSelectivity computes F̂_filters using cached attribute
// statistics and FTS document frequencies.
func (ix *Index) estimateFilterSelectivity(txn btree.ReadTxn, filters []stats.Filter, gen int64) (float64, error) {
	ts, err := ix.attrStats(txn, gen)
	if err != nil {
		return 1, err
	}
	if ts == nil {
		return 1, nil // never analyzed: assume non-selective
	}
	docFreq := func(column, token string) (int64, int64, error) {
		f, ok := ix.ftsIndexes[column]
		if !ok {
			return 0, 0, fmt.Errorf("%w: MATCH on %q without full-text index", ErrNoFilter, column)
		}
		df, err := f.DocFreq(txn, token)
		if err != nil {
			return 0, 0, err
		}
		total, err := f.TotalDocs(txn)
		if err != nil {
			return 0, 0, err
		}
		return df, total, nil
	}
	return ts.FilterSelectivity(filters, docFreq)
}

// attrStats returns cached attribute statistics, reloading when the index
// generation changed.
func (ix *Index) attrStats(txn btree.ReadTxn, gen int64) (*stats.TableStats, error) {
	ix.statsMu.Lock()
	if ix.statsCache != nil && ix.statsGen == gen {
		ts := ix.statsCache
		ix.statsMu.Unlock()
		return ts, nil
	}
	ix.statsMu.Unlock()
	ts, err := stats.Load(ix.db, txn, tblAttrs)
	if err != nil {
		return nil, err
	}
	ix.statsMu.Lock()
	ix.statsCache = ts
	ix.statsGen = gen
	ix.statsMu.Unlock()
	return ts, nil
}

// preFilterSearch evaluates the filters first, then brute-forces the
// qualifying vectors — 100% recall over the filtered set (paper §3.5).
// The driver is the most selective index-supported filter group; remaining
// groups are verified against the attribute row.
func (ix *Index) preFilterSearch(txn btree.ReadTxn, q []float32, opts SearchOptions, info *PlanInfo) ([]topk.Result, error) {
	driver, rest, err := ix.chooseDriver(txn, opts.Filters)
	if err != nil {
		return nil, err
	}
	heap := topk.New(opts.K)
	x := make([]float32, ix.cfg.Dim)
	ms := compileMatchers(opts.Filters)

	// process verifies the remaining filter groups (if any), fetches the
	// vector and offers it to the heap.
	process := func(vid int64, verify []stats.Filter) error {
		if len(verify) > 0 {
			ok, err := ix.evalFilters(txn, vid, verify, ms)
			if err != nil {
				return err
			}
			if !ok {
				info.RowsFiltered++
				return nil
			}
		}
		vrow, err := ix.vids.Get(txn, reldb.I(vid))
		if errors.Is(err, reldb.ErrNotFound) {
			return nil // attr row without vector (shouldn't happen)
		}
		if err != nil {
			return err
		}
		part, asset := vrow[1].Int, vrow[2].Str
		var blob []byte
		if ix.rawvecs != nil {
			// Pre-filter plans promise 100% recall over the filtered set,
			// so a quantized index reads exact vectors from the raw store.
			if blob, err = ix.rawVector(txn, vid); err != nil {
				return err
			}
		} else {
			row, gerr := ix.vectors.Get(txn, reldb.I(part), reldb.I(vid))
			if gerr != nil {
				return gerr
			}
			blob = row[3].Bts
		}
		vec.FromBlob(x, blob)
		info.VectorsScanned++
		info.BytesScanned += int64(len(blob))
		heap.Push(topk.Result{AssetID: asset, VectorID: vid, Distance: vec.Distance(ix.cfg.Metric, q, x)})
		return nil
	}

	if driver == nil {
		// No index-supported group: brute-force the attribute table.
		err = ix.attrs.ScanKeys(txn, nil, func(key reldb.Row) error {
			vid := key[0].Int
			ok, err := ix.evalFilters(txn, vid, opts.Filters, ms)
			if err != nil {
				return err
			}
			if !ok {
				info.RowsFiltered++
				return nil
			}
			return process(vid, nil)
		})
		if err != nil {
			return nil, err
		}
		return heap.Results(), nil
	}

	seen := make(map[int64]struct{})
	err = ix.driveGroup(txn, *driver, func(vid int64) error {
		if _, dup := seen[vid]; dup {
			return nil
		}
		seen[vid] = struct{}{}
		return process(vid, rest)
	})
	if err != nil {
		return nil, err
	}
	return heap.Results(), nil
}

// chooseDriver picks the filter group whose predicates can all be driven
// from secondary/FTS indexes, preferring the most selective one. It returns
// nil when no group qualifies.
func (ix *Index) chooseDriver(txn btree.ReadTxn, filters []stats.Filter) (*stats.Filter, []stats.Filter, error) {
	st, err := ix.getState(txn)
	if err != nil {
		return nil, nil, err
	}
	best := -1
	var bestSel float64
	for i, group := range filters {
		drivable := true
		for _, pred := range group.AnyOf {
			if !ix.predDrivable(pred) {
				drivable = false
				break
			}
		}
		if !drivable {
			continue
		}
		sel, err := ix.estimateFilterSelectivity(txn, []stats.Filter{group}, st.Generation)
		if err != nil {
			return nil, nil, err
		}
		if best == -1 || sel < bestSel {
			best, bestSel = i, sel
		}
	}
	if best == -1 {
		return nil, filters, nil
	}
	rest := make([]stats.Filter, 0, len(filters)-1)
	rest = append(rest, filters[:best]...)
	rest = append(rest, filters[best+1:]...)
	return &filters[best], rest, nil
}

func (ix *Index) predDrivable(pred reldb.Predicate) bool {
	switch pred.Op {
	case reldb.OpMatch:
		_, ok := ix.ftsIndexes[pred.Column]
		return ok
	case reldb.OpEq, reldb.OpLt, reldb.OpLe, reldb.OpGt, reldb.OpGe:
		_, ok := ix.attrIndexes[pred.Column]
		return ok
	default: // != cannot use an index range
		return false
	}
}

// driveGroup streams the vids matching any predicate of the group from the
// appropriate index structures.
func (ix *Index) driveGroup(txn btree.ReadTxn, group stats.Filter, fn func(vid int64) error) error {
	for _, pred := range group.AnyOf {
		if pred.Op == reldb.OpMatch {
			f := ix.ftsIndexes[pred.Column]
			if err := f.MatchScan(txn, pred.Value.Str, fn); err != nil {
				return err
			}
			continue
		}
		idx := ix.attrIndexes[pred.Column]
		emit := func(vals, pk reldb.Row) error { return fn(pk[0].Int) }
		var err error
		switch pred.Op {
		case reldb.OpEq:
			err = idx.Scan(txn, []reldb.Value{pred.Value}, emit)
		case reldb.OpLt:
			err = idx.ScanRange(txn, reldb.Null(), pred.Value, false, false, emit)
		case reldb.OpLe:
			err = idx.ScanRange(txn, reldb.Null(), pred.Value, false, true, emit)
		case reldb.OpGt:
			err = idx.ScanRange(txn, pred.Value, reldb.Null(), false, false, emit)
		case reldb.OpGe:
			err = idx.ScanRange(txn, pred.Value, reldb.Null(), true, false, emit)
		default:
			err = fmt.Errorf("ivf: cannot drive %v from an index", pred.Op)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
