package ivf

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"micronn/internal/reldb"
	"micronn/internal/stats"
	"micronn/internal/storage"
	"micronn/internal/storage/storagetest"
	"micronn/internal/topk"
	"micronn/internal/vec"
)

// testEnv bundles a store, reldb and index for tests.
type testEnv struct {
	store *storage.Store
	db    *reldb.DB
	ix    *Index
	// nextAsset numbers the ids handed out by upsertN (maintain_test.go).
	nextAsset int
}

func newEnv(t testing.TB, cfg Config) *testEnv {
	t.Helper()
	s, err := storage.Open(filepath.Join(t.TempDir(), "t.db"), storage.Options{
		Sync: storage.SyncOff, CheckpointFrames: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	var ix *Index
	err = s.Update(func(wt *storage.WriteTxn) error {
		ix, err = Create(db, wt, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{store: s, db: db, ix: ix}
}

// clusteredData builds a deterministic Gaussian-mixture dataset.
func clusteredData(seed int64, n, dim, centers int) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	ctr := vec.NewMatrix(centers, dim)
	for c := 0; c < centers; c++ {
		for j := 0; j < dim; j++ {
			ctr.Row(c)[j] = float32(rng.NormFloat64() * 10)
		}
	}
	data := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		c := rng.Intn(centers)
		for j := 0; j < dim; j++ {
			data.Row(i)[j] = ctr.Row(c)[j] + float32(rng.NormFloat64())
		}
	}
	return data
}

func (e *testEnv) upsertAll(t testing.TB, data *vec.Matrix, attrs func(i int) map[string]reldb.Value) {
	t.Helper()
	err := e.store.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < data.Rows; i++ {
			var a map[string]reldb.Value
			if attrs != nil {
				a = attrs(i)
			}
			if err := e.ix.Upsert(wt, fmt.Sprintf("asset-%d", i), data.Row(i), a); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func (e *testEnv) rebuild(t testing.TB) *MaintenanceStats {
	t.Helper()
	var ms *MaintenanceStats
	err := e.store.Update(func(wt *storage.WriteTxn) error {
		var err error
		ms, err = e.ix.Rebuild(wt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// bruteForce computes the exact top-k over data for query q.
func bruteForce(metric vec.Metric, data *vec.Matrix, q []float32, k int) []topk.Result {
	h := topk.New(k)
	for i := 0; i < data.Rows; i++ {
		h.Push(topk.Result{
			AssetID:  fmt.Sprintf("asset-%d", i),
			VectorID: int64(i),
			Distance: vec.Distance(metric, q, data.Row(i)),
		})
	}
	return h.Results()
}

func recallOf(got, want []topk.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[string]struct{}, len(want))
	for _, r := range want {
		set[r.AssetID] = struct{}{}
	}
	hit := 0
	for _, r := range got {
		if _, ok := set[r.AssetID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func TestUpsertAndDeltaSearch(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 50, Seed: 1})
	data := clusteredData(1, 200, 8, 5)
	env.upsertAll(t, data, nil)

	// Without a rebuild everything is in the delta, which is always
	// scanned: results must equal exact brute force.
	err := env.store.View(func(rt *storage.ReadTxn) error {
		st, err := env.ix.Stats(rt)
		if err != nil {
			return err
		}
		if st.NumVectors != 200 || st.DeltaCount != 200 || st.NumPartitions != 0 {
			t.Errorf("stats = %+v", st)
		}
		q := data.Row(17)
		got, _, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: 4})
		if err != nil {
			return err
		}
		want := bruteForce(vec.L2, data, q, 10)
		if r := recallOf(got, want); r != 1 {
			t.Errorf("delta-only recall = %v, want 1", r)
		}
		if got[0].AssetID != "asset-17" || got[0].Distance != 0 {
			t.Errorf("top hit = %+v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpsertReplacesAsset(t *testing.T) {
	env := newEnv(t, Config{Dim: 4, Seed: 1})
	v1 := []float32{1, 0, 0, 0}
	v2 := []float32{0, 1, 0, 0}
	err := env.store.Update(func(wt *storage.WriteTxn) error {
		if err := env.ix.Upsert(wt, "a", v1, nil); err != nil {
			return err
		}
		return env.ix.Upsert(wt, "a", v2, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = env.store.View(func(rt *storage.ReadTxn) error {
		st, err := env.ix.Stats(rt)
		if err != nil {
			return err
		}
		if st.NumVectors != 1 {
			t.Errorf("NumVectors = %d, want 1", st.NumVectors)
		}
		v, _, err := env.ix.GetVector(rt, "a")
		if err != nil {
			return err
		}
		if v[1] != 1 || v[0] != 0 {
			t.Errorf("vector = %v, want v2", v)
		}
		got, _, err := env.ix.Search(rt, v2, SearchOptions{K: 5})
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0].AssetID != "a" {
			t.Errorf("results = %+v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	env := newEnv(t, Config{Dim: 4, Seed: 1})
	err := env.store.Update(func(wt *storage.WriteTxn) error {
		if err := env.ix.Upsert(wt, "a", []float32{1, 2, 3, 4}, nil); err != nil {
			return err
		}
		if err := env.ix.Delete(wt, "a"); err != nil {
			return err
		}
		if err := env.ix.Delete(wt, "a"); !errors.Is(err, ErrNotFound) {
			t.Errorf("second delete = %v, want ErrNotFound", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = env.store.View(func(rt *storage.ReadTxn) error {
		st, err := env.ix.Stats(rt)
		if err != nil {
			return err
		}
		if st.NumVectors != 0 || st.DeltaCount != 0 {
			t.Errorf("stats after delete = %+v", st)
		}
		if _, _, err := env.ix.GetVector(rt, "a"); !errors.Is(err, ErrNotFound) {
			t.Errorf("GetVector = %v", err)
		}
		got, _, err := env.ix.Search(rt, []float32{1, 2, 3, 4}, SearchOptions{K: 5})
		if err != nil {
			return err
		}
		if len(got) != 0 {
			t.Errorf("search after delete = %+v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRebuildRecall(t *testing.T) {
	env := newEnv(t, Config{Dim: 16, TargetPartitionSize: 50, Seed: 2})
	data := clusteredData(3, 2000, 16, 20)
	env.upsertAll(t, data, nil)
	ms := env.rebuild(t)
	if ms.Partitions != 40 { // 2000/50
		t.Errorf("partitions = %d, want 40", ms.Partitions)
	}
	if ms.VectorsAssigned != 2000 {
		t.Errorf("assigned = %d", ms.VectorsAssigned)
	}

	rng := rand.New(rand.NewSource(9))
	err := env.store.View(func(rt *storage.ReadTxn) error {
		st, err := env.ix.Stats(rt)
		if err != nil {
			return err
		}
		if st.DeltaCount != 0 {
			t.Errorf("delta after rebuild = %d", st.DeltaCount)
		}
		var totalRecall float64
		const queries = 20
		for qi := 0; qi < queries; qi++ {
			q := data.Row(rng.Intn(data.Rows))
			got, info, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: 8})
			if err != nil {
				return err
			}
			if info.PartitionsScanned != 9 { // 8 + delta
				t.Errorf("partitions scanned = %d", info.PartitionsScanned)
			}
			totalRecall += recallOf(got, bruteForce(vec.L2, data, q, 10))
		}
		avg := totalRecall / queries
		if avg < 0.9 {
			t.Errorf("avg recall@10 with nprobe=8 = %v, want >= 0.9", avg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 4})
	data := clusteredData(5, 300, 8, 6)
	env.upsertAll(t, data, nil)
	env.rebuild(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		for _, qi := range []int{0, 50, 299} {
			q := data.Row(qi)
			got, _, err := env.ix.Search(rt, q, SearchOptions{K: 15, Exact: true})
			if err != nil {
				return err
			}
			want := bruteForce(vec.L2, data, q, 15)
			if r := recallOf(got, want); r != 1 {
				t.Errorf("exact recall = %v, want 1", r)
			}
			for i := range got {
				if got[i].Distance != want[i].Distance {
					t.Errorf("distance[%d] = %v, want %v", i, got[i].Distance, want[i].Distance)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSearchAfterUpdatesIncludesDelta(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 6})
	data := clusteredData(7, 400, 8, 8)
	env.upsertAll(t, data, nil)
	env.rebuild(t)

	// Insert a brand-new vector far from everything; it lands in the
	// delta and must be findable immediately.
	outlier := make([]float32, 8)
	for j := range outlier {
		outlier[j] = 100
	}
	err := env.store.Update(func(wt *storage.WriteTxn) error {
		return env.ix.Upsert(wt, "outlier", outlier, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = env.store.View(func(rt *storage.ReadTxn) error {
		got, _, err := env.ix.Search(rt, outlier, SearchOptions{K: 1, NProbe: 2})
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0].AssetID != "outlier" {
			t.Errorf("results = %+v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushDelta(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 25, Seed: 8})
	data := clusteredData(11, 500, 8, 10)
	first, second := 400, 100
	firstData := &vec.Matrix{Data: data.Data[:first*8], Rows: first, Dim: 8}
	env.upsertAll(t, firstData, nil)
	env.rebuild(t)

	err := env.store.Update(func(wt *storage.WriteTxn) error {
		for i := first; i < first+second; i++ {
			if err := env.ix.Upsert(wt, fmt.Sprintf("asset-%d", i), data.Row(i), nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var ms *MaintenanceStats
	err = env.store.Update(func(wt *storage.WriteTxn) error {
		ms, err = env.ix.FlushDelta(wt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if ms.VectorsAssigned != int64(second) {
		t.Errorf("flushed = %d, want %d", ms.VectorsAssigned, second)
	}
	// Incremental flush I/O is proportional to the delta, not the index.
	if ms.RowChanges > int64(second)*4+int64(ms.Partitions) {
		t.Errorf("row changes = %d, too high for incremental flush", ms.RowChanges)
	}

	err = env.store.View(func(rt *storage.ReadTxn) error {
		st, err := env.ix.Stats(rt)
		if err != nil {
			return err
		}
		if st.DeltaCount != 0 {
			t.Errorf("delta after flush = %d", st.DeltaCount)
		}
		if st.NumVectors != int64(first+second) {
			t.Errorf("NumVectors = %d", st.NumVectors)
		}
		// All flushed vectors remain findable.
		var recall float64
		for i := first; i < first+second; i += 10 {
			got, _, err := env.ix.Search(rt, data.Row(i), SearchOptions{K: 5, NProbe: 6})
			if err != nil {
				return err
			}
			found := false
			for _, r := range got {
				if r.AssetID == fmt.Sprintf("asset-%d", i) {
					found = true
				}
			}
			if found {
				recall++
			}
		}
		if recall < 8 { // 10 probes
			t.Errorf("self-recall after flush = %v/10", recall)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushWithoutBuildErrors(t *testing.T) {
	env := newEnv(t, Config{Dim: 4, Seed: 1})
	err := env.store.Update(func(wt *storage.WriteTxn) error {
		if err := env.ix.Upsert(wt, "a", []float32{1, 2, 3, 4}, nil); err != nil {
			return err
		}
		_, err := env.ix.FlushDelta(wt)
		if !errors.Is(err, ErrNotBuilt) {
			t.Errorf("FlushDelta = %v, want ErrNotBuilt", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeedsRebuildThreshold(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, RebuildGrowthThreshold: 0.5, Seed: 9})
	data := clusteredData(13, 600, 8, 6)
	base := &vec.Matrix{Data: data.Data[:200*8], Rows: 200, Dim: 8}
	env.upsertAll(t, base, nil)
	env.rebuild(t)

	check := func(want bool) {
		t.Helper()
		err := env.store.View(func(rt *storage.ReadTxn) error {
			got, err := env.ix.NeedsRebuild(rt)
			if err != nil {
				return err
			}
			if got != want {
				st, _ := env.ix.Stats(rt)
				t.Errorf("NeedsRebuild = %v, want %v (stats %+v)", got, want, st)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	check(false)

	// Add 60% more vectors and flush them into the partitions: average
	// size grows past the 50% threshold.
	err := env.store.Update(func(wt *storage.WriteTxn) error {
		for i := 200; i < 520; i++ {
			if err := env.ix.Upsert(wt, fmt.Sprintf("asset-%d", i), data.Row(i), nil); err != nil {
				return err
			}
		}
		_, err := env.ix.FlushDelta(wt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	check(true)

	env.rebuild(t)
	check(false)
}

func TestBatchSearchMatchesSingle(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 25, Seed: 10, Workers: 2})
	data := clusteredData(17, 800, 8, 10)
	env.upsertAll(t, data, nil)
	env.rebuild(t)

	queries := vec.NewMatrix(16, 8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < queries.Rows; i++ {
		queries.SetRow(i, data.Row(rng.Intn(data.Rows)))
	}

	err := env.store.View(func(rt *storage.ReadTxn) error {
		batch, info, err := env.ix.BatchSearch(rt, queries, BatchOptions{K: 10, NProbe: 6})
		if err != nil {
			return err
		}
		if info.PartitionScans > info.QueryPartitionPairs {
			t.Errorf("MQO scanned more partitions (%d) than query-at-a-time (%d)",
				info.PartitionScans, info.QueryPartitionPairs)
		}
		for qi := 0; qi < queries.Rows; qi++ {
			single, _, err := env.ix.Search(rt, queries.Row(qi), SearchOptions{K: 10, NProbe: 6})
			if err != nil {
				return err
			}
			if len(batch[qi]) != len(single) {
				t.Fatalf("query %d: batch %d results, single %d", qi, len(batch[qi]), len(single))
			}
			for i := range single {
				if batch[qi][i].VectorID != single[i].VectorID {
					t.Errorf("query %d result %d: batch vid %d, single vid %d",
						qi, i, batch[qi][i].VectorID, single[i].VectorID)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSearchDuringWrites(t *testing.T) {
	env := newEnv(t, Config{Dim: 4, TargetPartitionSize: 10, Seed: 12})
	err := env.store.Update(func(wt *storage.WriteTxn) error {
		return env.ix.Upsert(wt, "stable", []float32{1, 1, 1, 1}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	rt, err := env.store.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Concurrent write: a new vector and a rebuild.
	err = env.store.Update(func(wt *storage.WriteTxn) error {
		if err := env.ix.Upsert(wt, "later", []float32{2, 2, 2, 2}, nil); err != nil {
			return err
		}
		_, err := env.ix.Rebuild(wt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// The old reader must see exactly one vector.
	got, _, err := env.ix.Search(rt, []float32{1, 1, 1, 1}, SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].AssetID != "stable" {
		t.Errorf("snapshot search = %+v, want only 'stable'", got)
	}

	// A fresh reader sees both.
	err = env.store.View(func(rt2 *storage.ReadTxn) error {
		got, _, err := env.ix.Search(rt2, []float32{1, 1, 1, 1}, SearchOptions{K: 10})
		if err != nil {
			return err
		}
		if len(got) != 2 {
			t.Errorf("fresh search = %+v, want 2 results", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	storagetest.SkipIfEphemeral(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	opts := storage.Options{Sync: storage.SyncOff, CheckpointFrames: -1}
	s, err := storage.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	var ix *Index
	err = s.Update(func(wt *storage.WriteTxn) error {
		ix, err = Create(db, wt, Config{Dim: 8, TargetPartitionSize: 20, Seed: 3})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data := clusteredData(19, 300, 8, 5)
	err = s.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < data.Rows; i++ {
			if err := ix.Upsert(wt, fmt.Sprintf("asset-%d", i), data.Row(i), nil); err != nil {
				return err
			}
		}
		_, err := ix.Rebuild(wt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := storage.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	db2, err := reldb.Open(s2)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(db2)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Config().Dim != 8 || ix2.Config().TargetPartitionSize != 20 {
		t.Errorf("config = %+v", ix2.Config())
	}
	err = s2.View(func(rt *storage.ReadTxn) error {
		st, err := ix2.Stats(rt)
		if err != nil {
			return err
		}
		if st.NumVectors != 300 {
			t.Errorf("NumVectors = %d", st.NumVectors)
		}
		q := data.Row(42)
		got, _, err := ix2.Search(rt, q, SearchOptions{K: 5, NProbe: 5})
		if err != nil {
			return err
		}
		found := false
		for _, r := range got {
			if r.AssetID == "asset-42" {
				found = true
			}
		}
		if !found {
			t.Errorf("asset-42 missing after reopen: %+v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSearchValidation(t *testing.T) {
	env := newEnv(t, Config{Dim: 4, Seed: 1})
	err := env.store.View(func(rt *storage.ReadTxn) error {
		if _, _, err := env.ix.Search(rt, []float32{1, 2}, SearchOptions{K: 5}); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("dim mismatch = %v", err)
		}
		if _, _, err := env.ix.Search(rt, []float32{1, 2, 3, 4}, SearchOptions{K: 0}); err == nil {
			t.Error("K=0 accepted")
		}
		got, _, err := env.ix.Search(rt, []float32{1, 2, 3, 4}, SearchOptions{K: 5})
		if err != nil {
			return err
		}
		if len(got) != 0 {
			t.Errorf("empty index results = %+v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Undeclared attribute rejected on upsert.
	err = env.store.Update(func(wt *storage.WriteTxn) error {
		err := env.ix.Upsert(wt, "a", []float32{1, 2, 3, 4}, map[string]reldb.Value{"bogus": reldb.I(1)})
		if err == nil {
			t.Error("undeclared attribute accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- hybrid search tests ---

func hybridEnv(t *testing.T) (*testEnv, *vec.Matrix) {
	t.Helper()
	env := newEnv(t, Config{
		Dim: 8, TargetPartitionSize: 25, Seed: 21,
		Attributes: []AttributeDef{
			{Name: "location", Type: reldb.TypeText, Indexed: true},
			{Name: "ts", Type: reldb.TypeInt64, Indexed: true},
			{Name: "tags", Type: reldb.TypeText, FullText: true},
		},
	})
	data := clusteredData(23, 1000, 8, 10)
	env.upsertAll(t, data, func(i int) map[string]reldb.Value {
		loc := "Seattle"
		if i < 10 {
			loc = "NewYork"
		}
		tags := "common"
		if i%100 == 0 {
			tags = "common rare"
		}
		return map[string]reldb.Value{
			"location": reldb.S(loc),
			"ts":       reldb.I(int64(i)),
			"tags":     reldb.S(tags),
		}
	})
	env.rebuild(t)
	return env, data
}

func TestHybridPreFilterExactOverQualifying(t *testing.T) {
	env, data := hybridEnv(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		q := data.Row(5)
		filters := stats.And(reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("NewYork")})
		got, info, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: 4, Filters: filters, Plan: PlanPreFilter})
		if err != nil {
			return err
		}
		if info.Plan != PlanPreFilter {
			t.Errorf("plan = %v", info.Plan)
		}
		// Exactly the 10 NewYork assets qualify; all must be returned.
		if len(got) != 10 {
			t.Fatalf("results = %d, want 10", len(got))
		}
		for _, r := range got {
			var id int
			fmt.Sscanf(r.AssetID, "asset-%d", &id)
			if id >= 10 {
				t.Errorf("non-NewYork asset %s returned", r.AssetID)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHybridPostFilterAppliesPredicates(t *testing.T) {
	env, data := hybridEnv(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		q := data.Row(500)
		filters := stats.And(reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("Seattle")})
		got, info, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: 6, Filters: filters, Plan: PlanPostFilter})
		if err != nil {
			return err
		}
		if info.Plan != PlanPostFilter {
			t.Errorf("plan = %v", info.Plan)
		}
		if len(got) != 10 {
			t.Fatalf("results = %d, want 10", len(got))
		}
		for _, r := range got {
			var id int
			fmt.Sscanf(r.AssetID, "asset-%d", &id)
			if id < 10 {
				t.Errorf("NewYork asset %s passed Seattle filter", r.AssetID)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOptimizerChoosesPlanBySelectivity(t *testing.T) {
	env, data := hybridEnv(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		q := data.Row(0)
		// Highly selective: 1% of rows -> pre-filter.
		rare := stats.And(reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("NewYork")})
		_, info, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: 4, Filters: rare})
		if err != nil {
			return err
		}
		// F_IVF = 4*25/1000 = 0.1; F_filters ~ 0.01 -> pre.
		if info.Plan != PlanPreFilter {
			t.Errorf("rare filter plan = %v (fsel=%v ivf=%v)", info.Plan, info.FilterSelectivity, info.IVFSelectivity)
		}
		// Low selectivity: 99% of rows -> post-filter.
		common := stats.And(reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("Seattle")})
		_, info, err = env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: 4, Filters: common})
		if err != nil {
			return err
		}
		if info.Plan != PlanPostFilter {
			t.Errorf("common filter plan = %v (fsel=%v ivf=%v)", info.Plan, info.FilterSelectivity, info.IVFSelectivity)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHybridMatchPredicate(t *testing.T) {
	env, data := hybridEnv(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		q := data.Row(100)
		filters := stats.And(reldb.Predicate{Column: "tags", Op: reldb.OpMatch, Value: reldb.S("rare")})
		got, info, err := env.ix.Search(rt, q, SearchOptions{K: 20, NProbe: 4, Filters: filters})
		if err != nil {
			return err
		}
		// 10 assets are tagged rare (every 100th); MATCH is selective so
		// the optimizer must pick pre-filter and find all of them.
		if info.Plan != PlanPreFilter {
			t.Errorf("plan = %v", info.Plan)
		}
		if len(got) != 10 {
			t.Errorf("results = %d, want 10", len(got))
		}
		for _, r := range got {
			var id int
			fmt.Sscanf(r.AssetID, "asset-%d", &id)
			if id%100 != 0 {
				t.Errorf("asset %s lacks 'rare' tag", r.AssetID)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHybridRangePredicate(t *testing.T) {
	env, data := hybridEnv(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		q := data.Row(3)
		filters := stats.And(reldb.Predicate{Column: "ts", Op: reldb.OpLt, Value: reldb.I(50)})
		got, _, err := env.ix.Search(rt, q, SearchOptions{K: 50, NProbe: 4, Filters: filters, Plan: PlanPreFilter})
		if err != nil {
			return err
		}
		if len(got) != 50 {
			t.Fatalf("results = %d, want 50", len(got))
		}
		for _, r := range got {
			var id int
			fmt.Sscanf(r.AssetID, "asset-%d", &id)
			if id >= 50 {
				t.Errorf("asset %s violates ts < 50", r.AssetID)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHybridConjunction(t *testing.T) {
	env, data := hybridEnv(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		q := data.Row(3)
		filters := stats.And(
			reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("NewYork")},
			reldb.Predicate{Column: "ts", Op: reldb.OpLt, Value: reldb.I(5)},
		)
		for _, plan := range []PlanType{PlanPreFilter, PlanPostFilter} {
			got, _, err := env.ix.Search(rt, q, SearchOptions{K: 20, NProbe: 40, Filters: filters, Plan: plan})
			if err != nil {
				return err
			}
			if len(got) != 5 {
				t.Errorf("plan %v: results = %d, want 5", plan, len(got))
			}
			for _, r := range got {
				var id int
				fmt.Sscanf(r.AssetID, "asset-%d", &id)
				if id >= 5 {
					t.Errorf("plan %v: asset %s fails conjunction", plan, r.AssetID)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHybridUnknownColumn(t *testing.T) {
	env, data := hybridEnv(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		filters := stats.And(reldb.Predicate{Column: "missing", Op: reldb.OpEq, Value: reldb.I(1)})
		_, _, err := env.ix.Search(rt, data.Row(0), SearchOptions{K: 5, Filters: filters, Plan: PlanPostFilter})
		if !errors.Is(err, ErrNoFilter) {
			t.Errorf("unknown filter column = %v, want ErrNoFilter", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMemIndexRecallAndMemory(t *testing.T) {
	data := clusteredData(31, 2000, 16, 20)
	assets := make([]string, data.Rows)
	for i := range assets {
		assets[i] = fmt.Sprintf("asset-%d", i)
	}
	m, err := BuildMemIndex(MemIndexConfig{TargetPartitionSize: 50, Seed: 5, Workers: 2}, data, assets)
	if err != nil {
		t.Fatal(err)
	}
	if m.Partitions() != 40 {
		t.Errorf("partitions = %d", m.Partitions())
	}
	if m.MemoryBytes() < int64(data.Rows*16*4) {
		t.Errorf("MemoryBytes = %d, below raw vector size", m.MemoryBytes())
	}
	rng := rand.New(rand.NewSource(7))
	var total float64
	for qi := 0; qi < 20; qi++ {
		q := data.Row(rng.Intn(data.Rows))
		got, err := m.Search(q, 10, 8)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.SearchExact(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		total += recallOf(got, want)
	}
	if avg := total / 20; avg < 0.9 {
		t.Errorf("mem index recall = %v", avg)
	}
}

func TestProbeSetDeterministicOrder(t *testing.T) {
	env, data := hybridEnv(t)
	err := env.store.View(func(rt *storage.ReadTxn) error {
		q := data.Row(1)
		r1, _, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: 5})
		if err != nil {
			return err
		}
		r2, _, err := env.ix.Search(rt, q, SearchOptions{K: 10, NProbe: 5})
		if err != nil {
			return err
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("non-deterministic results: %+v vs %+v", r1[i], r2[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
