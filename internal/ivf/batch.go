package ivf

import (
	"fmt"
	"sync"

	"micronn/internal/btree"
	"micronn/internal/quant"
	"micronn/internal/reldb"
	"micronn/internal/storage"
	"micronn/internal/topk"
	"micronn/internal/vec"
)

// BatchOptions parameterizes BatchSearch.
type BatchOptions struct {
	// K is the number of neighbours per query.
	K int
	// NProbe is the per-query number of partitions to scan.
	NProbe int
	// RerankFactor overrides the quantized-search rerank multiplier
	// (0 = Config.RerankFactor). Ignored on unquantized indexes.
	RerankFactor int
	// CandidatesOnly skips the per-query exact rerank on a quantized index
	// and returns each query's RerankFactor*K approximate candidates
	// (BatchInfo.CandidatesApprox is then set). Unquantized batches return
	// their usual exact results. See SearchOptions.CandidatesOnly.
	CandidatesOnly bool
	// Cancel, when non-nil and closed, aborts the batch between partition
	// scans with ErrCanceled (see SearchOptions.Cancel).
	Cancel <-chan struct{}
}

// BatchInfo reports batch execution statistics.
type BatchInfo struct {
	// PartitionScans is the number of (partition, scan) pairs actually
	// executed — with MQO each needed partition is scanned exactly once.
	PartitionScans int
	// QueryPartitionPairs is what a query-at-a-time execution would have
	// scanned: the sum over queries of their probe-set sizes.
	QueryPartitionPairs int
	// VectorsScanned counts vector rows read from storage.
	VectorsScanned int64
	// DistancePairs counts query-vector distance computations.
	DistancePairs int64
	// BytesScanned is the vector payload volume read by partition scans
	// (SQ8 codes count one byte per dimension).
	BytesScanned int64
	// Reranked counts quantized candidates recomputed at full precision.
	Reranked int64
	// CandidatesApprox marks a CandidatesOnly batch whose distances are
	// approximate SQ8 distances; the caller owes the exact rerank.
	CandidatesApprox bool
}

// BatchSearch executes a batch of queries with multi-query optimization
// (paper §3.4, after HQI): queries are grouped by the partitions they
// probe, each needed partition is scanned exactly once, and the distances
// between all interested queries and the partition's vectors are computed
// as one blocked matrix product. Results preserve query order.
func (ix *Index) BatchSearch(txn btree.ReadTxn, queries *vec.Matrix, opts BatchOptions) ([][]topk.Result, *BatchInfo, error) {
	if opts.K <= 0 {
		return nil, nil, fmt.Errorf("ivf: K must be positive")
	}
	if queries.Dim != ix.cfg.Dim {
		return nil, nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, queries.Dim, ix.cfg.Dim)
	}
	if opts.NProbe <= 0 {
		opts.NProbe = 8
	}
	nq := queries.Rows
	if nq == 0 {
		return nil, &BatchInfo{}, nil
	}
	info := &BatchInfo{}

	cs, err := ix.loadCentroids(txn)
	if err != nil {
		return nil, nil, err
	}
	cb, err := ix.loadCodebook(txn)
	if err != nil {
		return nil, nil, err
	}

	// Group queries by partition (the MQO step).
	groups := make(map[int64][]int) // partition -> query indices
	for qi := 0; qi < nq; qi++ {
		parts := ix.probeSet(cs, queries.Row(qi), opts.NProbe)
		info.QueryPartitionPairs += len(parts)
		for _, p := range parts {
			groups[p] = append(groups[p], qi)
		}
	}
	// Like the delta, every unmerged sorted run is scanned by every query —
	// MQO makes that one shared scan per run. Tombstoned run rows are
	// skipped via the dead set.
	st, err := ix.getState(txn)
	if err != nil {
		return nil, nil, err
	}
	runParts, dead, err := ix.runScanSet(txn, &st, nil)
	if err != nil {
		return nil, nil, err
	}
	if len(runParts) > 0 {
		all := make([]int, nq)
		for qi := range all {
			all[qi] = qi
		}
		for _, p := range runParts {
			groups[p] = all
			info.QueryPartitionPairs += nq
		}
	}
	info.PartitionScans = len(groups)

	// On a quantized index each query carries precomputed asymmetric-
	// distance state, shared read-only by all partition scans, and the
	// per-query heaps hold RerankFactor*K approximate candidates.
	var qqs []*quant.Query
	heapK := opts.K
	if cb != nil {
		qqs = make([]*quant.Query, nq)
		for qi := 0; qi < nq; qi++ {
			qqs[qi] = cb.NewQuery(ix.cfg.Metric, queries.Row(qi))
		}
		heapK = opts.K * ix.rerankFactor(opts.RerankFactor)
	}

	heaps := make([]*topk.Heap, nq)
	heapMus := make([]sync.Mutex, nq)
	for i := range heaps {
		heaps[i] = topk.New(heapK)
	}

	work := make(chan partWork, len(groups))
	for p, qs := range groups {
		work <- partWork{part: p, queries: qs}
	}
	close(work)

	workers := ix.cfg.Workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers < 1 {
		workers = 1
	}
	rt, parallel := txn.(*storage.ReadTxn)
	if !parallel {
		workers = 1
	}
	if parallel && rt.WantReadahead() {
		// Same scatter readahead as the single-query scan: hint every
		// grouped partition's leaf pages before the workers fault through
		// them (advisory; errors surface from the scans themselves).
		var pages []uint32
		for p := range groups {
			_ = ix.vectors.LeafPages(txn, []reldb.Value{reldb.I(p)}, func(pg uint32) {
				pages = append(pages, pg)
			})
		}
		rt.Readahead(pages)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	var statMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scanned, pairs, bytesRead, err := ix.batchWorker(txn, work, opts.Cancel, queries, qqs, cb, dead, heaps, heapMus)
			statMu.Lock()
			info.VectorsScanned += scanned
			info.DistancePairs += pairs
			info.BytesScanned += bytesRead
			statMu.Unlock()
			if err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, nil, err
	default:
	}

	out := make([][]topk.Result, nq)
	if cb == nil || opts.CandidatesOnly {
		info.CandidatesApprox = cb != nil
		for i := range heaps {
			out[i] = heaps[i].Results()
		}
		return out, info, nil
	}
	// Rerank phase: per-query exact recomputation is independent work, so
	// it fans out over the same worker budget as the scans (the random
	// raw-store lookups would otherwise serialize a large batch).
	rerankWorkers := ix.cfg.Workers
	if rerankWorkers > nq {
		rerankWorkers = nq
	}
	if rerankWorkers < 1 {
		rerankWorkers = 1
	}
	if _, parallel := txn.(*storage.ReadTxn); !parallel {
		rerankWorkers = 1
	}
	qCh := make(chan int, nq)
	for i := 0; i < nq; i++ {
		qCh <- i
	}
	close(qCh)
	var rwg sync.WaitGroup
	rerrCh := make(chan error, rerankWorkers)
	for w := 0; w < rerankWorkers; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var reranked, bytesRead int64
			for i := range qCh {
				if chanClosed(opts.Cancel) {
					rerrCh <- ErrCanceled
					return
				}
				cands := heaps[i].Results()
				res, rb, err := ix.rerankExact(txn, queries.Row(i), cands, opts.K)
				if err != nil {
					rerrCh <- err
					return
				}
				reranked += int64(len(cands))
				bytesRead += rb
				out[i] = res
			}
			statMu.Lock()
			info.Reranked += reranked
			info.BytesScanned += bytesRead
			statMu.Unlock()
		}()
	}
	rwg.Wait()
	select {
	case err := <-rerrCh:
		return nil, nil, err
	default:
	}
	return out, info, nil
}

// partWork is one partition scan plus the queries interested in it.
type partWork struct {
	part    int64
	queries []int
}

// batchWorker scans whole partitions: for each, it streams the vectors in
// tiles and computes the |interested queries| x |tile| distance matrix in
// one kernel call, amortizing the scan over every query in the group. On
// quantized partitions the tile holds SQ8 codes and each interested query's
// asymmetric kernel runs over it — the tile is still read once and shared.
func (ix *Index) batchWorker(txn btree.ReadTxn, work <-chan partWork, cancel <-chan struct{}, queries *vec.Matrix, qqs []*quant.Query, cb *quant.Codebook, dead map[int64]bool, heaps []*topk.Heap, heapMus []sync.Mutex) (scanned, pairs, bytesRead int64, err error) {
	dim := ix.cfg.Dim
	tile := vec.NewMatrix(scanBatch, dim)
	codes := make([]byte, 0, scanBatch*dim)
	vidsB := make([]int64, 0, scanBatch)
	assetsB := make([]string, 0, scanBatch)

	for w := range work {
		if chanClosed(cancel) {
			return scanned, pairs, bytesRead, ErrCanceled
		}
		quantized := cb != nil && w.part != DeltaPartition

		// Gather this partition's interested queries into a submatrix
		// (float path only; the quantized path uses qqs directly).
		var qm *vec.Matrix
		var qNorms []float32
		if !quantized {
			qm = vec.NewMatrix(len(w.queries), dim)
			for i, qi := range w.queries {
				qm.SetRow(i, queries.Row(qi))
			}
			qNorms = qm.Norms(make([]float32, 0, qm.Rows))
		}
		dists := make([]float32, len(w.queries)*scanBatch)

		flush := func() {
			n := len(vidsB)
			if n == 0 {
				return
			}
			if quantized {
				for i, qi := range w.queries {
					qqs[qi].DistancesMany(codes, n, dists[i*n:(i+1)*n])
				}
			} else {
				sub := &vec.Matrix{Data: tile.Data[:n*dim], Rows: n, Dim: dim}
				vec.DistancesManyToMany(ix.cfg.Metric, qm, sub, l2Only(ix.cfg.Metric, qNorms), nil, dists[:len(w.queries)*n])
			}
			for i, qi := range w.queries {
				row := dists[i*n : (i+1)*n]
				h := &heaps[qi]
				heapMus[qi].Lock()
				for j := 0; j < n; j++ {
					(*h).Push(topk.Result{AssetID: assetsB[j], VectorID: vidsB[j], Distance: row[j]})
				}
				heapMus[qi].Unlock()
			}
			scanned += int64(n)
			pairs += int64(len(w.queries) * n)
			codes = codes[:0]
			vidsB = vidsB[:0]
			assetsB = assetsB[:0]
		}

		perr := ix.vectors.Scan(txn, []reldb.Value{reldb.I(w.part)}, func(row reldb.Row) error {
			if w.part < 0 && dead[row[1].Int] {
				return nil // tombstoned run row
			}
			bytesRead += int64(len(row[3].Bts))
			if quantized {
				codes = append(codes, row[3].Bts...)
			} else {
				tile.AppendRowBlob(len(vidsB), row[3].Bts)
			}
			vidsB = append(vidsB, row[1].Int)
			assetsB = append(assetsB, row[2].Str)
			if len(vidsB) == scanBatch {
				flush()
			}
			return nil
		})
		if perr != nil {
			return scanned, pairs, bytesRead, perr
		}
		flush()
	}
	return scanned, pairs, bytesRead, nil
}
