package ivf

import (
	"fmt"
	"math/rand"
	"testing"

	"micronn/internal/quant"
	"micronn/internal/reldb"
	"micronn/internal/stats"
	"micronn/internal/storage"
	"micronn/internal/topk"
	"micronn/internal/vec"
)

// buildPair builds two identical indexes over the same clustered data, one
// float32 and one SQ8.
func buildPair(t *testing.T, metric vec.Metric, data *vec.Matrix) (f32, sq8 *testEnv) {
	t.Helper()
	base := Config{Dim: data.Dim, Metric: metric, TargetPartitionSize: 50, Seed: 7}
	qcfg := base
	qcfg.Quantization = quant.SQ8
	f32 = newEnv(t, base)
	sq8 = newEnv(t, qcfg)
	for _, e := range []*testEnv{f32, sq8} {
		e.upsertAll(t, data, nil)
		err := e.store.Update(func(wt *storage.WriteTxn) error {
			_, rerr := e.ix.Rebuild(wt)
			return rerr
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return f32, sq8
}

// TestSQ8RecallAndBytesVsFloat32 is the acceptance test for the quantized
// scan path: on a synthetic clustered dataset, SQ8 recall@10 must stay
// within 95% of the float32 baseline while the partition scans read at
// least 2x fewer vector-payload bytes (the codes are 4x smaller).
func TestSQ8RecallAndBytesVsFloat32(t *testing.T) {
	const dim, n, k, nprobe, queries = 32, 2000, 10, 8, 40
	data := clusteredData(11, n, dim, 25)
	f32, sq8 := buildPair(t, vec.L2, data)

	rng := rand.New(rand.NewSource(99))
	var recallF32, recallSQ8 float64
	var bytesF32, bytesSQ8 int64
	for qi := 0; qi < queries; qi++ {
		q := make([]float32, dim)
		copy(q, data.Row(rng.Intn(n)))
		for d := range q {
			q[d] += float32(rng.NormFloat64() * 0.2)
		}
		gt := bruteForce(vec.L2, data, q, k)

		err := f32.store.View(func(rt *storage.ReadTxn) error {
			res, info, err := f32.ix.Search(rt, q, SearchOptions{K: k, NProbe: nprobe})
			if err != nil {
				return err
			}
			recallF32 += recallOf(res, gt)
			bytesF32 += info.BytesScanned
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		err = sq8.store.View(func(rt *storage.ReadTxn) error {
			res, info, err := sq8.ix.Search(rt, q, SearchOptions{K: k, NProbe: nprobe})
			if err != nil {
				return err
			}
			recallSQ8 += recallOf(res, gt)
			bytesSQ8 += info.BytesScanned
			if info.Reranked == 0 {
				t.Error("quantized search reported no reranked candidates")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	recallF32 /= queries
	recallSQ8 /= queries
	t.Logf("recall@%d: float32=%.4f sq8=%.4f; scanned bytes: float32=%d sq8=%d (%.2fx)",
		k, recallF32, recallSQ8, bytesF32, bytesSQ8, float64(bytesF32)/float64(bytesSQ8))
	if recallSQ8 < 0.95*recallF32 {
		t.Fatalf("SQ8 recall %.4f below 95%% of float32 recall %.4f", recallSQ8, recallF32)
	}
	if bytesSQ8*2 > bytesF32 {
		t.Fatalf("SQ8 scanned %d bytes, not a 2x reduction over float32's %d", bytesSQ8, bytesF32)
	}
}

// TestSQ8ExactSearchMatchesBruteForce checks that Exact on a quantized
// index still returns full-precision distances (100% recall contract).
func TestSQ8ExactSearchMatchesBruteForce(t *testing.T) {
	const dim, n, k = 16, 600, 10
	data := clusteredData(13, n, dim, 8)
	_, sq8 := buildPair(t, vec.L2, data)

	q := data.Row(123)
	gt := bruteForce(vec.L2, data, q, k)
	err := sq8.store.View(func(rt *storage.ReadTxn) error {
		res, _, err := sq8.ix.Search(rt, q, SearchOptions{K: k, Exact: true})
		if err != nil {
			return err
		}
		if r := recallOf(res, gt); r != 1 {
			t.Fatalf("exact search recall %.4f, want 1.0", r)
		}
		for i, r := range res {
			if d := gt[i].Distance; r.Distance != d {
				t.Fatalf("rank %d: distance %v, brute force %v (quantized distance leaked)", i, r.Distance, d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSQ8StreamingLifecycle exercises the delta-then-reorg lifecycle on a
// quantized index: upserts after build land in the float32 delta and are
// searchable at full precision, FlushDelta encodes them with the existing
// codebook, Rebuild refreshes the codebook, Get always returns the exact
// vector, and deletes clean up the raw store.
func TestSQ8StreamingLifecycle(t *testing.T) {
	const dim, n = 16, 800
	data := clusteredData(17, n, dim, 10)
	_, sq8 := buildPair(t, vec.L2, data)

	// Insert an outlier far outside the codebook's trained range.
	outlier := make([]float32, dim)
	for d := range outlier {
		outlier[d] = 500
	}
	err := sq8.store.Update(func(wt *storage.WriteTxn) error {
		return sq8.ix.Upsert(wt, "outlier", outlier, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	findOutlier := func(stage string) {
		t.Helper()
		err := sq8.store.View(func(rt *storage.ReadTxn) error {
			res, _, err := sq8.ix.Search(rt, outlier, SearchOptions{K: 1, NProbe: 2})
			if err != nil {
				return err
			}
			if len(res) == 0 || res[0].AssetID != "outlier" {
				t.Fatalf("%s: outlier not found (got %v)", stage, res)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	findOutlier("delta")

	// Flush: the outlier clamps to the stale codebook range, but the exact
	// rerank must still surface it as its own nearest neighbour.
	err = sq8.store.Update(func(wt *storage.WriteTxn) error {
		_, ferr := sq8.ix.FlushDelta(wt)
		return ferr
	})
	if err != nil {
		t.Fatal(err)
	}
	findOutlier("flushed")

	// Get returns the exact vector even though the partition row is lossy.
	err = sq8.store.View(func(rt *storage.ReadTxn) error {
		v, _, err := sq8.ix.GetVector(rt, "outlier")
		if err != nil {
			return err
		}
		for d := range v {
			if v[d] != 500 {
				t.Fatalf("Get after flush: dim %d = %v, want 500", d, v[d])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild refreshes the codebook to cover the outlier.
	err = sq8.store.Update(func(wt *storage.WriteTxn) error {
		_, rerr := sq8.ix.Rebuild(wt)
		return rerr
	})
	if err != nil {
		t.Fatal(err)
	}
	findOutlier("rebuilt")

	// Delete removes the raw-store row too: capture the outlier's vid
	// first, then assert its rawvecs row is gone (a leaked row would
	// also re-enter codebook training on the next rebuild).
	var outlierVID int64
	err = sq8.store.View(func(rt *storage.ReadTxn) error {
		row, err := sq8.ix.assets.Get(rt, reldb.S("outlier"))
		if err != nil {
			return err
		}
		outlierVID = row[2].Int
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sq8.store.Update(func(wt *storage.WriteTxn) error {
		return sq8.ix.Delete(wt, "outlier")
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sq8.store.View(func(rt *storage.ReadTxn) error {
		if _, err := sq8.ix.rawVector(rt, outlierVID); err == nil {
			t.Fatal("raw-store row leaked after delete")
		}
		if _, _, err := sq8.ix.GetVector(rt, "outlier"); err == nil {
			t.Fatal("outlier still resolvable after delete")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSQ8BatchSearchMatchesSingle checks MQO parity: batch results on a
// quantized index match query-at-a-time results, and batch scans report the
// reduced byte footprint.
func TestSQ8BatchSearchMatchesSingle(t *testing.T) {
	const dim, n, k, nprobe, nq = 24, 1200, 10, 6, 16
	data := clusteredData(19, n, dim, 12)
	_, sq8 := buildPair(t, vec.L2, data)

	queries := vec.NewMatrix(nq, dim)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < nq; i++ {
		copy(queries.Row(i), data.Row(rng.Intn(n)))
	}

	err := sq8.store.View(func(rt *storage.ReadTxn) error {
		batch, binfo, err := sq8.ix.BatchSearch(rt, queries, BatchOptions{K: k, NProbe: nprobe})
		if err != nil {
			return err
		}
		if binfo.BytesScanned == 0 || binfo.Reranked == 0 {
			t.Fatalf("batch info not instrumented: %+v", binfo)
		}
		for qi := 0; qi < nq; qi++ {
			single, _, err := sq8.ix.Search(rt, queries.Row(qi), SearchOptions{K: k, NProbe: nprobe})
			if err != nil {
				return err
			}
			if len(single) != len(batch[qi]) {
				t.Fatalf("query %d: single %d results, batch %d", qi, len(single), len(batch[qi]))
			}
			for i := range single {
				if single[i].AssetID != batch[qi][i].AssetID {
					t.Fatalf("query %d rank %d: single %s, batch %s", qi, i, single[i].AssetID, batch[qi][i].AssetID)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSQ8CosineAndDotMetrics runs the quantized path under the non-L2
// metrics, checking recall stays close to the float32 baseline.
func TestSQ8CosineAndDotMetrics(t *testing.T) {
	for _, metric := range []vec.Metric{vec.Cosine, vec.Dot} {
		t.Run(metric.String(), func(t *testing.T) {
			const dim, n, k, nprobe, queries = 24, 1500, 10, 8, 25
			data := clusteredData(23, n, dim, 15)
			f32, sq8 := buildPair(t, metric, data)

			rng := rand.New(rand.NewSource(31))
			var recallF32, recallSQ8 float64
			for qi := 0; qi < queries; qi++ {
				q := make([]float32, dim)
				copy(q, data.Row(rng.Intn(n)))
				gt := bruteForce(metric, data, q, k)
				err := f32.store.View(func(rt *storage.ReadTxn) error {
					res, _, err := f32.ix.Search(rt, q, SearchOptions{K: k, NProbe: nprobe})
					if err != nil {
						return err
					}
					recallF32 += recallOf(res, gt)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				err = sq8.store.View(func(rt *storage.ReadTxn) error {
					res, _, err := sq8.ix.Search(rt, q, SearchOptions{K: k, NProbe: nprobe})
					if err != nil {
						return err
					}
					recallSQ8 += recallOf(res, gt)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			recallF32 /= queries
			recallSQ8 /= queries
			t.Logf("%s recall@%d: float32=%.4f sq8=%.4f", metric, k, recallF32, recallSQ8)
			if recallSQ8 < 0.95*recallF32 {
				t.Fatalf("SQ8 recall %.4f below 95%% of float32 recall %.4f", recallSQ8, recallF32)
			}
		})
	}
}

// TestSQ8PreFilterExactOverFilteredSet ensures quantization does not break
// the pre-filter plan's 100% recall promise: the driver fetches exact
// vectors from the raw store.
func TestSQ8PreFilterExactOverFilteredSet(t *testing.T) {
	const dim, n, k = 8, 300, 5
	data := clusteredData(29, n, dim, 4)
	cfg := Config{
		Dim: dim, Metric: vec.L2, TargetPartitionSize: 50, Seed: 3,
		Quantization: quant.SQ8,
		Attributes:   []AttributeDef{{Name: "grp", Type: reldb.TypeInt64, Indexed: true}},
	}
	env := newEnv(t, cfg)
	env.upsertAll(t, data, func(i int) map[string]reldb.Value {
		return map[string]reldb.Value{"grp": reldb.I(int64(i % 10))}
	})
	err := env.store.Update(func(wt *storage.WriteTxn) error {
		_, rerr := env.ix.Rebuild(wt)
		return rerr
	})
	if err != nil {
		t.Fatal(err)
	}

	q := data.Row(42)
	// Exact top-k restricted to grp == 7.
	gtHeap := topk.New(k)
	for i := 0; i < n; i++ {
		if i%10 != 7 {
			continue
		}
		gtHeap.Push(topk.Result{AssetID: fmt.Sprintf("asset-%d", i), VectorID: int64(i), Distance: vec.Distance(vec.L2, q, data.Row(i))})
	}
	gt := gtHeap.Results()

	err = env.store.View(func(rt *storage.ReadTxn) error {
		filters := stats.And(reldb.Predicate{Column: "grp", Op: reldb.OpEq, Value: reldb.I(7)})
		res, info, err := env.ix.Search(rt, q, SearchOptions{K: k, Filters: filters, Plan: PlanPreFilter})
		if err != nil {
			return err
		}
		if info.Plan != PlanPreFilter {
			t.Fatalf("plan = %v, want pre-filter", info.Plan)
		}
		if r := recallOf(res, gt); r != 1 {
			t.Fatalf("pre-filter recall %.4f on quantized index, want 1.0", r)
		}
		for i, r := range res {
			if r.Distance != gt[i].Distance {
				t.Fatalf("rank %d: distance %v, want exact %v", i, r.Distance, gt[i].Distance)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
