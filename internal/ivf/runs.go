package ivf

// Immutable sorted runs: the LSM-shaped middle tier of the ingest path
// (memtable -> runs -> partitions). SealDelta moves the whole delta-store
// into a fresh run in one transaction: rows keep their vids (the scan order
// of the delta IS vid order, so runs are id-sorted), payloads are encoded
// with the current codebook when one exists, and the run is thereafter
// immutable — deleting a run-resident asset writes a tombstone instead of
// rewriting the run, and searches skip tombstoned vids. Runs live in the
// vectors table at negative partition ids (run N occupies partition -N), so
// every scan, snapshot and crash-recovery property of partition rows holds
// for run rows with zero new storage machinery. CompactRun folds one run
// back into the IVF partitions (physically deleting its tombstoned rows),
// either inside a caller-owned transaction or — via CompactRunTwoPhase —
// with the expensive planning half outside the writer gate, exactly like
// the two-phase partition split.

import (
	"errors"
	"time"

	"micronn/internal/btree"
	"micronn/internal/reldb"
	"micronn/internal/storage"
	"micronn/internal/vec"
)

// runInfo describes one immutable sorted run. Rows counts the live
// (non-tombstoned) rows, Dead the tombstoned ones still occupying space
// until compaction. Persisted in state.Runs, oldest run first.
type runInfo struct {
	ID   int64 `json:"id"`
	Rows int64 `json:"rows"`
	Dead int64 `json:"dead,omitempty"`
}

// ErrNoRuns is returned by SealDelta on a database created before the
// tombstone table existed: such a store cannot honor run deletes, so it
// cannot hold runs.
var ErrNoRuns = errors.New("ivf: database predates sorted runs (no tombstone table)")

// SupportsRuns reports whether this database can seal runs (false only for
// databases created before the tombstone table existed).
func (ix *Index) SupportsRuns() bool { return ix.tombs != nil }

// SealDelta moves every delta-store row into a new immutable sorted run,
// returning the sealed row count (0 when the delta is empty — no run is
// created). The run's payloads are encoded with the current codebook when
// one exists; before the first build they stay float32, and Rebuild — the
// only operation that changes the codebook — absorbs all runs, so a live
// run's encoding always matches the live codebook. Seal changes no
// centroids, so it bumps only DataGen: the centroid and codebook caches
// survive, and searches simply pick up the run partition from the state.
func (ix *Index) SealDelta(wt *storage.WriteTxn) (int64, error) {
	if ix.tombs == nil {
		return 0, ErrNoRuns
	}
	st, err := ix.getState(wt)
	if err != nil {
		return 0, err
	}
	if st.DeltaCount == 0 {
		return 0, nil
	}
	cb, err := ix.loadCodebook(wt)
	if err != nil {
		return 0, err
	}
	if st.NextRunID == 0 {
		st.NextRunID = 1
	}
	runID := st.NextRunID
	part := -runID

	keys, err := ix.collectKeys(wt, []reldb.Value{reldb.I(DeltaPartition)})
	if err != nil {
		return 0, err
	}

	// Zone metadata is computed alongside the move: the delta scan is in
	// vid order, so the run's range is just the first and last key. The
	// attribute Bloom covers the (column, value) pairs of the indexed
	// attributes — the only ones equality filters can prune on.
	zone := &runZone{VIDs: newBloom(len(keys))}
	if len(keys) > 0 {
		zone.MinVID, zone.MaxVID = keys[0].vid, keys[len(keys)-1].vid
	}
	if len(ix.attrIndexes) > 0 {
		zone.Attrs = newBloom(len(keys) * len(ix.attrIndexes))
	}

	x := make([]float32, ix.cfg.Dim)
	for _, k := range keys {
		row, err := ix.vectors.Get(wt, reldb.I(DeltaPartition), reldb.I(k.vid))
		if err != nil {
			return 0, err
		}
		asset := row[2].Str
		var blob []byte
		if cb != nil {
			blob = cb.Encode(make([]byte, 0, cb.CodeSize()), vec.FromBlob(x, row[3].Bts))
		} else {
			blob = append([]byte(nil), row[3].Bts...)
		}
		if err := ix.vectors.Delete(wt, reldb.I(DeltaPartition), reldb.I(k.vid)); err != nil {
			return 0, err
		}
		if err := ix.vectors.Put(wt, reldb.Row{reldb.I(part), reldb.I(k.vid), reldb.S(asset), reldb.B(blob)}); err != nil {
			return 0, err
		}
		if err := ix.assets.Put(wt, reldb.Row{reldb.S(asset), reldb.I(part), reldb.I(k.vid)}); err != nil {
			return 0, err
		}
		if err := ix.vids.Put(wt, reldb.Row{reldb.I(k.vid), reldb.I(part), reldb.S(asset)}); err != nil {
			return 0, err
		}
		zone.VIDs.addHash(hashVid(k.vid))
		if zone.Attrs != nil {
			arow, err := ix.attrs.Get(wt, reldb.I(k.vid))
			if err != nil && !errors.Is(err, reldb.ErrNotFound) {
				return 0, err
			}
			if err == nil {
				for name := range ix.attrIndexes {
					if h, ok := hashAttr(name, arow[ix.attrPos[name]]); ok {
						zone.Attrs.addHash(h)
					}
				}
			}
		}
		if err := wt.SpillIfNeeded(); err != nil {
			return 0, err
		}
	}
	if err := ix.putRunZone(wt, runID, zone); err != nil {
		return 0, err
	}

	n := int64(len(keys))
	st.Runs = append(st.Runs, runInfo{ID: runID, Rows: n})
	st.NextRunID++
	st.DeltaCount = 0
	st.DataGen++
	if err := ix.putState(wt, st); err != nil {
		return 0, err
	}
	wt.OnCommit(func() { ix.locks.Bump(DeltaPartition, part) })
	return n, nil
}

// liveRunParts returns the vectors-table partition ids of the live runs,
// and whether any run carries tombstones (searches then need the dead set).
func (st *state) liveRunParts() (parts []int64, anyDead bool) {
	for _, r := range st.Runs {
		parts = append(parts, -r.ID)
		if r.Dead > 0 {
			anyDead = true
		}
	}
	return parts, anyDead
}

// deadVids reads the tombstone set at txn's snapshot: the vids of run rows
// that are logically deleted but not yet compacted away. vids are globally
// unique, so membership alone identifies a dead row regardless of run.
func (ix *Index) deadVids(txn btree.ReadTxn) (map[int64]bool, error) {
	if ix.tombs == nil {
		return nil, nil
	}
	dead := make(map[int64]bool)
	err := ix.tombs.ScanKeys(txn, nil, func(key reldb.Row) error {
		dead[key[0].Int] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dead, nil
}

// purgeTombstones physically deletes every tombstoned run row and its
// tombstone. Rebuild calls it first, so its full-table rewrite sees exactly
// the live rows the state counts.
func (ix *Index) purgeTombstones(wt *storage.WriteTxn, ms *MaintenanceStats) error {
	if ix.tombs == nil {
		return nil
	}
	type tomb struct{ vid, part int64 }
	var tombs []tomb
	err := ix.tombs.Scan(wt, nil, func(row reldb.Row) error {
		tombs = append(tombs, tomb{vid: row[0].Int, part: row[1].Int})
		return nil
	})
	if err != nil {
		return err
	}
	for _, t := range tombs {
		if err := ix.vectors.Delete(wt, reldb.I(t.part), reldb.I(t.vid)); err != nil && !errors.Is(err, reldb.ErrNotFound) {
			return err
		}
		if err := ix.tombs.Delete(wt, reldb.I(t.vid)); err != nil {
			return err
		}
		ms.RowChanges += 2
		if err := wt.SpillIfNeeded(); err != nil {
			return err
		}
	}
	return nil
}

// foldRunRows folds one run's rows into the IVF partitions using the
// caller's private centroid state (FlushDelta's inline path — the caller
// owns cents/counts/touched across the delta and every run, so the
// running-mean updates compose). dead holds the tombstone set; dead rows
// are physically deleted, live rows move byte-identically (their payload
// encoding already matches the live codebook) to the partition with the
// nearest centroid.
func (ix *Index) foldRunRows(wt *storage.WriteTxn, part int64, dead map[int64]bool, cents *vec.Matrix, ids []int64, counts []int64, touched map[int]bool, ms *MaintenanceStats) error {
	rows, err := ix.collectPartition(wt, part)
	if err != nil {
		return err
	}
	x := make([]float32, ix.cfg.Dim)
	dists := make([]float32, cents.Rows)
	for _, r := range rows {
		if dead[r.vid] {
			if err := ix.vectors.Delete(wt, reldb.I(part), reldb.I(r.vid)); err != nil {
				return err
			}
			if err := ix.tombs.Delete(wt, reldb.I(r.vid)); err != nil {
				return err
			}
			ms.RowChanges += 2
			continue
		}
		blob := r.blob
		if ix.rawvecs != nil {
			if blob, err = ix.rawVector(wt, r.vid); err != nil {
				return err
			}
		}
		vec.FromBlob(x, blob)
		vec.DistancesOneToMany(ix.cfg.Metric, x, cents, nil, dists)
		best := argminRange(dists)
		if err := ix.moveRow(wt, part, ids[best], r); err != nil {
			return err
		}
		ms.RowChanges += 4
		ms.VectorsAssigned++
		counts[best]++
		vec.Lerp(cents.Row(best), x, 1/float32(counts[best]))
		touched[best] = true
		if err := wt.SpillIfNeeded(); err != nil {
			return err
		}
	}
	return nil
}

// compactPlan is a prepared compaction of one or more runs (a tier, see
// planCompaction): everything the expensive phase computed from its
// snapshot, self-contained (row blobs and vectors are copies) so it can be
// applied under a later write transaction. Merging several runs in one
// plan is the write-amplification lever: each touched destination
// partition's centroid row, the state row and the shared WAL pages are
// rewritten once per merge instead of once per run.
type compactPlan struct {
	runIDs []int64
	gen    int64 // state.Generation at the snapshot: assignments bind to it
	live   []partRow
	// liveSrc[i] is live[i]'s source partition (runs differ within a plan).
	liveSrc []int64
	dead    []deadRow // tombstoned rows to purge
	// assign[i] is live[i]'s destination: an index into destIDs.
	assign  []int
	destIDs []int64
	// cents holds the destination centroids after the running-mean updates;
	// added[c] is how many rows this compaction adds to destination c.
	cents *vec.Matrix
	added []int64
}

// deadRow locates one tombstoned run row: the vid to purge and the run
// partition holding it.
type deadRow struct{ vid, part int64 }

// computeCompact runs the expensive half of a multi-run compaction against
// any snapshot, without writing: collect every run, split live from
// tombstoned, and assign every live row to its nearest centroid, nudging a
// private centroid copy by the running mean exactly like FlushDelta. vids
// are globally unique across runs (re-upserting a run-resident asset
// tombstones the old row first), so the merge is order-independent.
func (ix *Index) computeCompact(txn btree.ReadTxn, st *state, runIDs []int64) (*compactPlan, error) {
	dead, err := ix.deadVids(txn)
	if err != nil {
		return nil, err
	}
	plan := &compactPlan{runIDs: runIDs, gen: st.Generation}
	for _, runID := range runIDs {
		part := -runID
		rows, err := ix.collectPartition(txn, part)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if dead[r.vid] {
				plan.dead = append(plan.dead, deadRow{vid: r.vid, part: part})
			} else {
				plan.live = append(plan.live, r)
				plan.liveSrc = append(plan.liveSrc, part)
			}
		}
	}

	cs, err := ix.loadCentroids(txn)
	if err != nil {
		return nil, err
	}
	if cs.mat.Rows == 0 {
		return nil, ErrNotBuilt
	}
	plan.destIDs = append([]int64(nil), cs.ids...)
	plan.cents = vec.NewMatrix(cs.mat.Rows, cs.mat.Dim)
	copy(plan.cents.Data, cs.mat.Data)
	counts, err := ix.freshCounts(txn, cs.ids)
	if err != nil {
		return nil, err
	}
	plan.added = make([]int64, len(cs.ids))
	plan.assign = make([]int, len(plan.live))

	x := make([]float32, ix.cfg.Dim)
	dists := make([]float32, plan.cents.Rows)
	for i, r := range plan.live {
		blob := r.blob
		if ix.rawvecs != nil {
			if blob, err = ix.rawVector(txn, r.vid); err != nil {
				return nil, err
			}
		}
		vec.FromBlob(x, blob)
		vec.DistancesOneToMany(ix.cfg.Metric, x, plan.cents, nil, dists)
		best := argminRange(dists)
		plan.assign[i] = best
		plan.added[best]++
		counts[best]++
		vec.Lerp(plan.cents.Row(best), x, 1/float32(counts[best]))
	}
	return plan, nil
}

// applyCompact executes a prepared compaction inside wt: purge the dead
// rows, move the live rows, refresh the touched centroids once for the
// whole merge and drop every folded run (and its zone row) from the state.
// Destination counts are re-read from the centroid table and incremented
// by the rows added — concurrent deletes in destination partitions (which
// decrement counts without bumping Generation) stay exact. The caller has
// already validated the plan's snapshot.
func (ix *Index) applyCompact(wt *storage.WriteTxn, plan *compactPlan, ms *MaintenanceStats) error {
	st, err := ix.getState(wt)
	if err != nil {
		return err
	}
	for _, d := range plan.dead {
		if err := ix.vectors.Delete(wt, reldb.I(d.part), reldb.I(d.vid)); err != nil {
			return err
		}
		if err := ix.tombs.Delete(wt, reldb.I(d.vid)); err != nil {
			return err
		}
		ms.RowChanges += 2
	}
	for i, r := range plan.live {
		if err := ix.moveRow(wt, plan.liveSrc[i], plan.destIDs[plan.assign[i]], r); err != nil {
			return err
		}
		ms.RowChanges += 4
		ms.VectorsAssigned++
	}
	var bumped []int64
	for _, runID := range plan.runIDs {
		bumped = append(bumped, -runID)
		if err := ix.deleteRunZone(wt, runID); err != nil {
			return err
		}
	}
	for c, added := range plan.added {
		if added == 0 {
			continue
		}
		crow, err := ix.centroids.Get(wt, reldb.I(plan.destIDs[c]))
		if err != nil {
			return err
		}
		blob := vec.ToBlob(make([]byte, 0, vec.BlobSize(ix.cfg.Dim)), plan.cents.Row(c))
		if err := ix.centroids.Put(wt, reldb.Row{reldb.I(plan.destIDs[c]), reldb.B(blob), reldb.I(crow[2].Int + added)}); err != nil {
			return err
		}
		ms.RowChanges++
		bumped = append(bumped, plan.destIDs[c])
	}

	for _, runID := range plan.runIDs {
		if i := st.runIdx(runID); i >= 0 {
			st.Runs = append(st.Runs[:i], st.Runs[i+1:]...)
		}
	}
	st.Generation++
	st.DataGen++
	if err := ix.putState(wt, st); err != nil {
		return err
	}
	wt.OnCommit(func() { ix.locks.Bump(bumped...) })
	ms.Partitions = int(st.NumPartitions)
	return nil
}

// presentRuns filters runIDs down to the ones still live in st, preserving
// order.
func presentRuns(st *state, runIDs []int64) []int64 {
	var present []int64
	for _, id := range runIDs {
		if st.runIdx(id) >= 0 {
			present = append(present, id)
		}
	}
	return present
}

// CompactRun folds one run into the IVF partitions inside wt — the
// single-run form of CompactRuns, kept for callers that drain runs one at
// a time.
func (ix *Index) CompactRun(wt *storage.WriteTxn, runID int64) (*MaintenanceStats, error) {
	return ix.CompactRuns(wt, []int64{runID})
}

// CompactRuns folds a set of runs (a tier, see planCompaction) into the
// IVF partitions inside wt: tombstoned rows are physically deleted, live
// rows join the partition with the nearest centroid (running-mean centroid
// update, like FlushDelta), and each touched destination is written once
// for the whole merge. Run ids no longer in the state are skipped; if none
// remain the call is a no-op. The single transaction makes the merge
// all-or-nothing under a crash: every source run is either fully folded or
// fully intact. CompactRunsTwoPhase is the variant that keeps the
// expensive planning outside the writer gate.
func (ix *Index) CompactRuns(wt *storage.WriteTxn, runIDs []int64) (*MaintenanceStats, error) {
	start := time.Now()
	ms := &MaintenanceStats{}
	st, err := ix.getState(wt)
	if err != nil {
		return nil, err
	}
	present := presentRuns(&st, runIDs)
	if len(present) == 0 {
		ms.Duration = time.Since(start)
		return ms, nil
	}
	if st.NumPartitions == 0 {
		return nil, ErrNotBuilt
	}
	plan, err := ix.computeCompact(wt, &st, present)
	if err != nil {
		return nil, err
	}
	if err := ix.applyCompact(wt, plan, ms); err != nil {
		return nil, err
	}
	ms.Duration = time.Since(start)
	return ms, nil
}

// CompactRunTwoPhase is the single-run form of CompactRunsTwoPhase.
func (ix *Index) CompactRunTwoPhase(runID int64) (*MaintenanceStats, error) {
	return ix.CompactRunsTwoPhase([]int64{runID})
}

// CompactRunsTwoPhase compacts a set of runs without holding the
// store-wide writer gate during the expensive half. Phase one pins a read
// snapshot — holding only the run partitions' locks, so concurrent
// searches and point writes proceed — and computes the assignment plan
// across all runs. Phase two upgrades to a write transaction and validates
// that no concurrent commit touched any of the runs (their partition
// versions) or the centroid set (the state generation) before applying;
// ErrPlanStale is returned otherwise and the caller retries or falls back
// to the single-transaction CompactRuns. Runs that vanished (or an index
// rebuilt empty) since the step was planned are skipped.
func (ix *Index) CompactRunsTwoPhase(runIDs []int64) (*MaintenanceStats, error) {
	start := time.Now()
	ms := &MaintenanceStats{}
	parts := make([]int64, len(runIDs))
	for i, id := range runIDs {
		parts[i] = -id
	}
	unlock := ix.locks.Lock(parts...)
	defer unlock()

	// Versions before snapshot: see SplitPartitionTwoPhase and locks.go.
	base := make([]partVersion, len(parts))
	for i, p := range parts {
		base[i] = ix.locks.Version(p)
	}
	pt, err := ix.db.Store().BeginPrepare()
	if err != nil {
		return nil, err
	}
	defer pt.Abort()

	rt := pt.Read()
	st, err := ix.getState(rt)
	if err != nil {
		return nil, err
	}
	present := presentRuns(&st, runIDs)
	if len(present) == 0 || st.NumPartitions == 0 {
		ms.Duration = time.Since(start)
		return ms, nil
	}
	plan, err := ix.computeCompact(rt, &st, present)
	if err != nil {
		return nil, err
	}

	wt, stale, err := pt.Upgrade()
	if err != nil {
		return nil, err
	}
	if stale > 0 {
		// Tolerate unrelated commits (delta upserts, other partitions'
		// maintenance): only a commit that touched one of these runs or
		// moved the centroid set invalidates the assignments.
		fresh, err := ix.getState(wt)
		if err != nil {
			wt.Rollback()
			return nil, err
		}
		moved := fresh.Generation != plan.gen
		for i, p := range parts {
			if ix.locks.Version(p) != base[i] {
				moved = true
			}
		}
		if moved {
			wt.Rollback()
			return nil, ErrPlanStale
		}
	}
	if err := ix.applyCompact(wt, plan, ms); err != nil {
		wt.Rollback()
		return nil, err
	}
	if err := wt.Commit(); err != nil {
		return nil, err
	}
	ms.Duration = time.Since(start)
	return ms, nil
}
