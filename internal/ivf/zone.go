package ivf

// Per-run zone metadata: a small, immutable summary persisted in the same
// transaction that seals a run, so the read path can skip runs without
// touching their rows. Each zone carries the run's vid range plus two Bloom
// filters — one over the vids, one over the (column, value) pairs of the
// indexed attributes. Shadow/newest-wins lookups use the range to bound the
// tombstone scan, and filtered searches skip a run entirely when some CNF
// group is all equality predicates on indexed attributes and none of their
// values can be present in the run. Bloom false positives only cost a scan
// that finds nothing; there are no false negatives, so pruned results are
// byte-identical to unpruned ones.
//
// Zones live in the meta table under "runzone:<id>" — NOT inside the state
// row, which is rewritten by every point write and would drag kilobytes of
// filter bits through the WAL each time. A run and its zone are created in
// one transaction and deleted in one transaction, so any snapshot that sees
// the run sees its zone; the process-local cache below is therefore never
// stale for live entries. Runs sealed before this metadata existed simply
// have no zone row and are never pruned.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"micronn/internal/btree"
	"micronn/internal/reldb"
	"micronn/internal/stats"
	"micronn/internal/storage"
)

// bloomBitsPerKey sizes run Blooms (~1% false positives with 7 probes).
const (
	bloomBitsPerKey = 10
	bloomProbes     = 6
)

// bloom is a fixed-size Bloom filter. Bits marshals as base64, so a zone
// row stays a single compact JSON blob in the meta table.
type bloom struct {
	Bits []byte `json:"bits"`
	K    uint32 `json:"k"`
}

func newBloom(keys int) *bloom {
	if keys < 1 {
		keys = 1
	}
	nbits := keys * bloomBitsPerKey
	return &bloom{Bits: make([]byte, (nbits+7)/8), K: bloomProbes}
}

// addHash sets the filter bits for one 64-bit hash using double hashing
// (Kirsch-Mitzenmacher): bit_i = (h_lo + i*h_hi) mod nbits.
func (b *bloom) addHash(h uint64) {
	nbits := uint32(len(b.Bits)) * 8
	h1, h2 := uint32(h), uint32(h>>32)
	for i := uint32(0); i < b.K; i++ {
		bit := (h1 + i*h2) % nbits
		b.Bits[bit/8] |= 1 << (bit % 8)
	}
}

// mayContain reports whether the hash may have been added. A nil or empty
// filter answers true: no information means no pruning.
func (b *bloom) mayContain(h uint64) bool {
	if b == nil || len(b.Bits) == 0 {
		return true
	}
	nbits := uint32(len(b.Bits)) * 8
	h1, h2 := uint32(h), uint32(h>>32)
	for i := uint32(0); i < b.K; i++ {
		bit := (h1 + i*h2) % nbits
		if b.Bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// hashVid hashes a vector id for the vid Bloom.
func hashVid(vid int64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(vid))
	h := fnv.New64a()
	h.Write(buf[:])
	return h.Sum64()
}

// hashAttr hashes one (column, value) pair for the attribute Bloom. The
// column name is included (NUL-separated) so equal values in different
// columns do not collide, and the value bytes are typed exactly as stored.
// Null values return ok=false: a null never satisfies an equality
// predicate, so it carries no pruning information.
func hashAttr(col string, v reldb.Value) (uint64, bool) {
	h := fnv.New64a()
	h.Write([]byte(col))
	h.Write([]byte{0})
	var buf [8]byte
	switch v.Type {
	case reldb.TypeInt64:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.Int))
		h.Write(buf[:])
	case reldb.TypeFloat64:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Flt))
		h.Write(buf[:])
	case reldb.TypeText:
		h.Write([]byte(v.Str))
	case reldb.TypeBlob:
		h.Write(v.Bts)
	default:
		return 0, false
	}
	return h.Sum64(), true
}

// runZone is the persisted per-run summary. Attrs is nil when the schema
// has no indexed attributes (nothing to prune on).
type runZone struct {
	MinVID int64  `json:"min_vid"`
	MaxVID int64  `json:"max_vid"`
	VIDs   *bloom `json:"vids,omitempty"`
	Attrs  *bloom `json:"attrs,omitempty"`
}

func runZoneKey(runID int64) string { return fmt.Sprintf("runzone:%d", runID) }

// putRunZone persists a zone in the caller's transaction (SealDelta's) and
// primes the cache once the commit publishes.
func (ix *Index) putRunZone(wt *storage.WriteTxn, runID int64, z *runZone) error {
	blob, err := json.Marshal(z)
	if err != nil {
		return err
	}
	if err := ix.meta.Put(wt, reldb.Row{reldb.S(runZoneKey(runID)), reldb.B(blob)}); err != nil {
		return err
	}
	wt.OnCommit(func() {
		ix.zoneMu.Lock()
		if ix.zoneCache == nil {
			ix.zoneCache = make(map[int64]*runZone)
		}
		ix.zoneCache[runID] = z
		ix.zoneMu.Unlock()
	})
	return nil
}

// deleteRunZone removes a zone row inside the transaction that removes its
// run, and evicts the cache entry once the commit publishes. Missing rows
// (runs sealed before zones existed) are fine.
func (ix *Index) deleteRunZone(wt *storage.WriteTxn, runID int64) error {
	if err := ix.meta.Delete(wt, reldb.S(runZoneKey(runID))); err != nil && !errors.Is(err, reldb.ErrNotFound) {
		return err
	}
	wt.OnCommit(func() {
		ix.zoneMu.Lock()
		delete(ix.zoneCache, runID)
		ix.zoneMu.Unlock()
	})
	return nil
}

// clearRunZones drops the zone rows of every listed run — used by Rebuild
// and FlushDelta, which absorb all runs at once.
func (ix *Index) clearRunZones(wt *storage.WriteTxn, runs []runInfo) error {
	for _, r := range runs {
		if err := ix.deleteRunZone(wt, r.ID); err != nil {
			return err
		}
	}
	return nil
}

// runZoneFor returns the zone of a live run at txn's snapshot, or nil for
// runs sealed before zone metadata existed. The cache is sound because a
// run and its zone are created and deleted atomically: any snapshot in
// which the run is live observes exactly the zone the seal wrote. Legacy
// zoneless runs are negative-cached (the entry maps to nil).
func (ix *Index) runZoneFor(txn btree.ReadTxn, runID int64) (*runZone, error) {
	ix.zoneMu.Lock()
	z, ok := ix.zoneCache[runID]
	ix.zoneMu.Unlock()
	if ok {
		return z, nil
	}
	row, err := ix.meta.Get(txn, reldb.S(runZoneKey(runID)))
	if err != nil {
		if !errors.Is(err, reldb.ErrNotFound) {
			return nil, err
		}
		z = nil
	} else {
		z = &runZone{}
		if err := json.Unmarshal(row[1].Bts, z); err != nil {
			return nil, err
		}
	}
	ix.zoneMu.Lock()
	if ix.zoneCache == nil {
		ix.zoneCache = make(map[int64]*runZone)
	}
	ix.zoneCache[runID] = z
	ix.zoneMu.Unlock()
	return z, nil
}

// dropZoneCache empties the process-local zone cache (DropCaches hook).
func (ix *Index) dropZoneCache() {
	ix.zoneMu.Lock()
	ix.zoneCache = nil
	ix.zoneMu.Unlock()
}

// SetZonePruning toggles zone/Bloom run pruning at search time. Pruning is
// on by default; disabling it forces every search to scan every live run —
// the control arm for the byte-identical property tests and benches.
func (ix *Index) SetZonePruning(enabled bool) { ix.pruneOff.Store(!enabled) }

// ZonePruneCounters returns how many run-prune checks ran and how many
// runs were skipped as a result, since the index was opened.
func (ix *Index) ZonePruneCounters() (checks, pruned int64) {
	return ix.zoneChecks.Load(), ix.zonePruned.Load()
}

// prunableEqGroups extracts the CNF groups usable for zone pruning: groups
// whose every predicate is an equality on an indexed attribute with a
// non-null value. Such a group is satisfiable inside a run only if at
// least one of its (column, value) hashes hits the run's attribute Bloom;
// if none does, no run row can pass the whole CNF filter and the run is
// skippable. Groups with other operators (ranges, matches) or non-indexed
// columns yield no hashes and never prune.
func (ix *Index) prunableEqGroups(filters []stats.Filter) [][]uint64 {
	var groups [][]uint64
	for _, f := range filters {
		if len(f.AnyOf) == 0 {
			continue
		}
		hashes := make([]uint64, 0, len(f.AnyOf))
		ok := true
		for _, p := range f.AnyOf {
			if p.Op != reldb.OpEq {
				ok = false
				break
			}
			if _, indexed := ix.attrIndexes[p.Column]; !indexed {
				ok = false
				break
			}
			h, hok := hashAttr(p.Column, p.Value)
			if !hok {
				ok = false
				break
			}
			hashes = append(hashes, h)
		}
		if ok {
			groups = append(groups, hashes)
		}
	}
	return groups
}

// runScanSet decides which live runs a search must scan. For each run with
// a zone and at least one prunable equality group, the run is skipped when
// some group has no hash in the run's attribute Bloom. The returned dead
// set covers only the scanned runs: it is loaded lazily, bounded to the
// scanned runs' combined vid range when every scanned run has a zone, and
// skipped entirely when no scanned run carries tombstones.
func (ix *Index) runScanSet(txn btree.ReadTxn, st *state, filters []stats.Filter) (parts []int64, dead map[int64]bool, err error) {
	if len(st.Runs) == 0 {
		return nil, nil, nil
	}
	var groups [][]uint64
	if !ix.pruneOff.Load() {
		groups = ix.prunableEqGroups(filters)
	}
	var (
		anyDead        bool
		bounded        = true
		minVID, maxVID int64
		haveRange      bool
	)
	for _, r := range st.Runs {
		var z *runZone
		if len(groups) > 0 || !ix.pruneOff.Load() {
			if z, err = ix.runZoneFor(txn, r.ID); err != nil {
				return nil, nil, err
			}
		}
		if len(groups) > 0 && z != nil && z.Attrs != nil {
			ix.zoneChecks.Add(1)
			skip := false
			for _, g := range groups {
				hit := false
				for _, h := range g {
					if z.Attrs.mayContain(h) {
						hit = true
						break
					}
				}
				if !hit {
					skip = true
					break
				}
			}
			if skip {
				ix.zonePruned.Add(1)
				continue
			}
		}
		parts = append(parts, -r.ID)
		if r.Dead > 0 {
			anyDead = true
		}
		if z == nil {
			bounded = false
		} else if !haveRange {
			minVID, maxVID, haveRange = z.MinVID, z.MaxVID, true
		} else {
			if z.MinVID < minVID {
				minVID = z.MinVID
			}
			if z.MaxVID > maxVID {
				maxVID = z.MaxVID
			}
		}
	}
	if !anyDead || len(parts) == 0 {
		return parts, nil, nil
	}
	if bounded && haveRange {
		dead, err = ix.deadVidsInRange(txn, minVID, maxVID)
	} else {
		dead, err = ix.deadVids(txn)
	}
	if err != nil {
		return nil, nil, err
	}
	return parts, dead, nil
}

// deadVidsInRange reads the tombstone set restricted to [minVID, maxVID] —
// the combined vid range of the runs a search will actually scan. The
// tombstone table is keyed by vid, so this is a single seek plus an early
// stop instead of a full scan.
func (ix *Index) deadVidsInRange(txn btree.ReadTxn, minVID, maxVID int64) (map[int64]bool, error) {
	if ix.tombs == nil {
		return nil, nil
	}
	dead := make(map[int64]bool)
	err := ix.tombs.ScanKeysFrom(txn, []reldb.Value{reldb.I(minVID)}, func(key reldb.Row) error {
		if key[0].Int > maxVID {
			return reldb.ErrStopScan
		}
		dead[key[0].Int] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dead, nil
}
