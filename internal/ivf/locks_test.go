package ivf

import (
	"errors"
	"sync"
	"testing"
	"time"

	"micronn/internal/storage"
)

func TestPartLocksBasics(t *testing.T) {
	var pl partLocks

	unlock := pl.Lock(3, 1, 2, 1) // unordered, duplicated
	if _, ok := pl.TryLock(2); ok {
		t.Fatal("TryLock succeeded on a held partition")
	}
	if un, ok := pl.TryLock(7); !ok {
		t.Fatal("TryLock failed on a free partition")
	} else {
		un()
	}
	unlock()
	if un, ok := pl.TryLock(1, 2, 3); !ok {
		t.Fatal("TryLock failed after release")
	} else {
		un()
	}
	// The table must be empty once nothing is held (entries are refcounted).
	pl.mu.Lock()
	if n := len(pl.locks); n != 0 {
		t.Errorf("lock table holds %d entries after release, want 0", n)
	}
	pl.mu.Unlock()
}

func TestPartLocksTryLockRollsBackFully(t *testing.T) {
	var pl partLocks
	unlock := pl.Lock(5)
	// 3 is free, 5 is held: the try must fail and leave 3 unlocked.
	if _, ok := pl.TryLock(3, 5); ok {
		t.Fatal("TryLock succeeded with partition 5 held elsewhere")
	}
	if un, ok := pl.TryLock(3); !ok {
		t.Fatal("partition 3 left locked by failed TryLock")
	} else {
		un()
	}
	unlock()
}

func TestPartLocksVersions(t *testing.T) {
	var pl partLocks
	v0 := pl.Version(9)
	pl.Bump(9)
	if pl.Version(9) == v0 {
		t.Error("Bump did not change the version")
	}
	if pl.Version(4) != (partVersion{}) {
		t.Error("untouched partition version moved")
	}
	pl.BumpAll()
	if pl.Version(4) == (partVersion{}) {
		t.Error("BumpAll did not invalidate an untouched partition")
	}
}

func TestPartLocksOrderedAcquisitionNoDeadlock(t *testing.T) {
	var pl partLocks
	var wg sync.WaitGroup
	// Overlapping multi-partition lock sets from many goroutines: ordered
	// acquisition means this converges instead of deadlocking.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a, b := int64(g%4), int64((g+1)%4)
				unlock := pl.Lock(b, a)
				unlock()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("overlapping Lock sets deadlocked")
	}
}

// splitTarget builds an index with one oversized partition and returns its
// id plus the id of an asset stored inside it.
func splitTarget(t *testing.T, env *testEnv) (int64, string) {
	t.Helper()
	mix := newMixture(11, 8, 4)
	env.upsertN(t, mix, 120, -1)
	env.rebuild(t)
	env.upsertN(t, mix, 90, 0)
	env.flush(t)

	var part int64 = -1
	var asset string
	if err := env.store.View(func(rt *storage.ReadTxn) error {
		plan, err := env.ix.PlanMaintenance(rt, MaintenancePolicy{})
		if err != nil {
			return err
		}
		if plan.Action != ActionSplit {
			t.Fatalf("plan = %s, want split", plan.Action)
		}
		part = plan.Partition
		rows, err := env.ix.collectPartition(rt, part)
		if err != nil {
			return err
		}
		asset = rows[0].asset
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return part, asset
}

func TestSplitPartitionTwoPhase(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 7})
	part, _ := splitTarget(t, env)

	ms, err := env.ix.SplitPartitionTwoPhase(part)
	if err != nil {
		t.Fatal(err)
	}
	if ms.VectorsAssigned == 0 {
		t.Error("two-phase split assigned no vectors")
	}
	env.checkInvariants(t)

	// The split must have bumped its partitions: a plan prepared at the
	// old version would now be stale.
	if env.ix.locks.Version(part) == (partVersion{}) {
		t.Error("split partition version not bumped")
	}
}

// blockSplitAtUpgrade starts SplitPartitionTwoPhase while the caller holds
// the store's writer gate via wt, returning once the splitter holds the
// partition lock (so its snapshot pin is imminent and its upgrade will
// queue behind wt). The returned channel yields the split's error.
func blockSplitAtUpgrade(t *testing.T, env *testEnv, part int64) <-chan error {
	t.Helper()
	res := make(chan error, 1)
	go func() {
		_, err := env.ix.SplitPartitionTwoPhase(part)
		res <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if un, ok := env.ix.locks.TryLock(part); !ok {
			break // splitter holds the partition lock
		} else {
			un()
		}
		if time.Now().After(deadline) {
			t.Fatal("splitter never took the partition lock")
		}
		time.Sleep(time.Millisecond)
	}
	// Between taking the partition lock and pinning the snapshot the
	// splitter performs two mutex operations and no I/O; this sleep is
	// orders of magnitude more than it needs.
	time.Sleep(100 * time.Millisecond)
	return res
}

func TestSplitPartitionTwoPhaseStale(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 7})
	part, asset := splitTarget(t, env)

	// Hold the writer gate and mutate the target partition; the concurrent
	// splitter pins its snapshot before this commit publishes, queues
	// behind the gate, and must observe the version bump.
	wt, err := env.store.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.ix.Delete(wt, asset); err != nil {
		t.Fatal(err)
	}
	res := blockSplitAtUpgrade(t, env, part)
	if err := wt.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-res; !errors.Is(err, ErrPlanStale) {
		t.Fatalf("split error = %v, want ErrPlanStale", err)
	}
	env.checkInvariants(t)

	// Retrying with a fresh prepare succeeds.
	if _, err := env.ix.SplitPartitionTwoPhase(part); err != nil {
		t.Fatal(err)
	}
	env.checkInvariants(t)
}

func TestSplitPartitionTwoPhaseUnrelatedCommitNotStale(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 7})
	part, _ := splitTarget(t, env)

	// Same shape as the stale test, but the intervening commit touches
	// only the delta partition: the version validation must not produce a
	// spurious ErrPlanStale for a commit that cannot invalidate the plan.
	wt, err := env.store.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float32, 8)
	if err := env.ix.Upsert(wt, "unrelated-asset", v, nil); err != nil {
		t.Fatal(err)
	}
	res := blockSplitAtUpgrade(t, env, part)
	if err := wt.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatalf("split error = %v, want success (unrelated commit)", err)
	}
	env.checkInvariants(t)
}

func TestSplitPartitionTwoPhaseGonePartition(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 7})
	mix := newMixture(12, 8, 3)
	env.upsertN(t, mix, 60, -1)
	env.rebuild(t)

	// A partition that does not exist (planned, then merged away by a
	// concurrent maintainer) is a no-op, not an error.
	ms, err := env.ix.SplitPartitionTwoPhase(99999)
	if err != nil {
		t.Fatal(err)
	}
	if ms.VectorsAssigned != 0 || ms.RowChanges != 0 {
		t.Errorf("gone-partition split did work: %+v", ms)
	}
	if _, err := env.ix.SplitPartitionTwoPhase(DeltaPartition); err == nil {
		t.Error("splitting the delta partition succeeded")
	}
}

func TestUpsertDeleteBumpVersions(t *testing.T) {
	env := newEnv(t, Config{Dim: 8, TargetPartitionSize: 20, Seed: 7})
	mix := newMixture(13, 8, 3)
	env.upsertN(t, mix, 60, -1)
	env.rebuild(t)

	// Find a flushed row and its partition.
	var part int64
	var asset string
	if err := env.store.View(func(rt *storage.ReadTxn) error {
		rows, err := env.ix.collectPartition(rt, 1)
		if err != nil {
			return err
		}
		part, asset = 1, rows[0].asset
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	v0 := env.ix.locks.Version(part)
	if err := env.store.Update(func(wt *storage.WriteTxn) error {
		return env.ix.Delete(wt, asset)
	}); err != nil {
		t.Fatal(err)
	}
	if env.ix.locks.Version(part) == v0 {
		t.Error("Delete did not bump the source partition's version")
	}

	d0 := env.ix.locks.Version(DeltaPartition)
	if err := env.store.Update(func(wt *storage.WriteTxn) error {
		return env.ix.Upsert(wt, "bump-check", make([]float32, 8), nil)
	}); err != nil {
		t.Fatal(err)
	}
	if env.ix.locks.Version(DeltaPartition) == d0 {
		t.Error("Upsert did not bump the delta partition's version")
	}

	// Rolled-back transactions must not bump.
	v1 := env.ix.locks.Version(DeltaPartition)
	wt, err := env.store.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.ix.Upsert(wt, "rolled-back", make([]float32, 8), nil); err != nil {
		t.Fatal(err)
	}
	wt.Rollback()
	if env.ix.locks.Version(DeltaPartition) != v1 {
		t.Error("rolled-back Upsert bumped the delta partition's version")
	}
}
