package ivf

import (
	"errors"

	"micronn/internal/btree"
	"micronn/internal/reldb"
)

// Raw access helpers used by benchmarks and the CLI. They expose the
// storage layout directly so experiments (e.g. the clustered-vs-shuffled
// layout ablation) can compare access patterns without going through the
// search path.

// PartitionIDs returns every IVF partition id (excluding the delta) at the
// transaction's snapshot.
func (ix *Index) PartitionIDs(txn btree.ReadTxn) ([]int64, error) {
	cs, err := ix.loadCentroids(txn)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(cs.ids))
	copy(out, cs.ids)
	return out, nil
}

// ScanPartition streams the (vid, vector blob) pairs of one partition in
// clustered order — a single contiguous B+tree range scan.
func (ix *Index) ScanPartition(txn btree.ReadTxn, part int64, fn func(vid int64, blob []byte) error) error {
	return ix.vectors.Scan(txn, []reldb.Value{reldb.I(part)}, func(row reldb.Row) error {
		return fn(row[1].Int, row[3].Bts)
	})
}

// FetchVector resolves a vector by vid through the vid mapping — the
// random-access path an unclustered layout would force for every row.
func (ix *Index) FetchVector(txn btree.ReadTxn, vid int64) ([]byte, error) {
	vrow, err := ix.vids.Get(txn, reldb.I(vid))
	if errors.Is(err, reldb.ErrNotFound) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	row, err := ix.vectors.Get(txn, reldb.I(vrow[1].Int), reldb.I(vid))
	if err != nil {
		return nil, err
	}
	return row[3].Bts, nil
}

// PartitionSizes returns the vector count of every partition including the
// delta (index-monitor diagnostics; the balance ablation reports these).
func (ix *Index) PartitionSizes(txn btree.ReadTxn) (map[int64]int, error) {
	sizes := make(map[int64]int)
	err := ix.vectors.ScanKeys(txn, nil, func(key reldb.Row) error {
		sizes[key[0].Int]++
		return nil
	})
	return sizes, err
}
