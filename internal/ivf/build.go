package ivf

import (
	"errors"
	"fmt"
	"time"

	"micronn/internal/btree"
	"micronn/internal/clustering"
	"micronn/internal/quant"
	"micronn/internal/reldb"
	"micronn/internal/stats"
	"micronn/internal/storage"
	"micronn/internal/vec"
)

// ErrNotBuilt is returned by FlushDelta when the index has no partitions
// yet; callers should run Rebuild first.
var ErrNotBuilt = errors.New("ivf: index has no partitions; run Rebuild")

// MaintenanceStats reports the cost of a maintenance operation. RowChanges
// is the number of database row writes (inserts + deletes + updates) — the
// I/O-footprint metric of Figure 10d.
type MaintenanceStats struct {
	Duration        time.Duration
	RowChanges      int64
	VectorsAssigned int64
	Partitions      int
}

// partVid identifies a vector row by its clustered key.
type partVid struct {
	part int64
	vid  int64
}

// collectKeys scans the clustered key of every vector (optionally limited
// to one partition with havePrefix). Memory is 16 bytes per vector — the
// same order as the paper's sampling infrastructure, far below buffering
// the vectors themselves.
func (ix *Index) collectKeys(txn btree.ReadTxn, prefix []reldb.Value) ([]partVid, error) {
	var keys []partVid
	err := ix.vectors.ScanKeys(txn, prefix, func(key reldb.Row) error {
		keys = append(keys, partVid{part: key[0].Int, vid: key[1].Int})
		return nil
	})
	return keys, err
}

// diskSource adapts the on-disk vector table to the clustering trainer:
// batches are fetched by key through the buffer pool, so training memory
// stays bounded by the mini-batch (Figure 8's property).
type diskSource struct {
	ix   *Index
	txn  btree.ReadTxn
	keys []partVid
	dim  int
}

func (s *diskSource) Len() int { return len(s.keys) }
func (s *diskSource) Dim() int { return s.dim }

func (s *diskSource) Read(indices []int, dst *vec.Matrix) error {
	for i, idx := range indices {
		k := s.keys[idx]
		blob, err := s.ix.rawBlobByKey(s.txn, k)
		if err != nil {
			return fmt.Errorf("ivf: training read (%d,%d): %w", k.part, k.vid, err)
		}
		dst.AppendRowBlob(i, blob)
	}
	return nil
}

// rawBlobByKey returns the exact float32 blob of a vector row: from the raw
// store when quantization is on (partition rows then hold SQ8 codes), from
// the clustered row itself otherwise.
func (ix *Index) rawBlobByKey(txn btree.ReadTxn, k partVid) ([]byte, error) {
	if ix.rawvecs != nil {
		return ix.rawVector(txn, k.vid)
	}
	row, err := ix.vectors.Get(txn, reldb.I(k.part), reldb.I(k.vid))
	if err != nil {
		return nil, err
	}
	return row[3].Bts, nil
}

// trainCodebook streams every vector once through a range trainer and
// persists the resulting codebook in the meta table (the paper's codebook
// refresh: retrained at every full rebuild, alongside the centroids). The
// trainer kind follows the configured quantization, and a configured clip
// percentile trims each dimension's range to reservoir-sampled quantiles
// so outliers cannot stretch the code grid. The raw store is keyed by
// vid, so this is one sequential scan, not a point lookup per vector.
func (ix *Index) trainCodebook(wt *storage.WriteTxn) (*quant.Codebook, error) {
	tr := quant.NewTrainerKind(ix.cfg.Quantization, ix.cfg.Dim, ix.cfg.ClipPercentile)
	x := make([]float32, ix.cfg.Dim)
	err := ix.rawvecs.Scan(wt, nil, func(row reldb.Row) error {
		tr.Add(vec.FromBlob(x, row[1].Bts))
		return nil
	})
	if err != nil {
		return nil, err
	}
	cb := tr.Codebook()
	if err := ix.meta.Put(wt, reldb.Row{reldb.S(metaCodebook), reldb.B(cb.Marshal())}); err != nil {
		return nil, err
	}
	return cb, nil
}

// assignChunk is the unit of the rewrite pass: enough rows to amortize the
// batched distance kernel without holding many vectors in memory.
const assignChunk = 256

// Rebuild retrains the quantizer with mini-batch k-means and rewrites every
// vector into its new partition (paper §3.1). It runs inside one write
// transaction: readers keep a consistent pre-rebuild snapshot throughout,
// and the writer's memory stays bounded by WAL spilling.
func (ix *Index) Rebuild(wt *storage.WriteTxn) (*MaintenanceStats, error) {
	start := time.Now()
	ms := &MaintenanceStats{}
	// A rebuild's write set is the whole index: invalidate every prepared
	// maintenance plan if this transaction commits.
	wt.OnCommit(func() { ix.locks.BumpAll() })
	st, err := ix.getState(wt)
	if err != nil {
		return nil, err
	}

	// Physically purge tombstoned run rows first: the rewrite pass below
	// must see exactly the live rows the state counts. Live run rows need
	// no special handling — they are ordinary vector rows at negative
	// partition ids, and the rewrite moves them like any other row.
	if err := ix.purgeTombstones(wt, ms); err != nil {
		return nil, err
	}

	keys, err := ix.collectKeys(wt, nil)
	if err != nil {
		return nil, err
	}
	if int64(len(keys)) != st.NumVectors {
		return nil, fmt.Errorf("ivf: state count %d != scanned %d", st.NumVectors, len(keys))
	}

	if len(keys) == 0 {
		if err := ix.centroids.Truncate(wt); err != nil {
			return nil, err
		}
		if ix.rawvecs != nil {
			if err := ix.meta.Delete(wt, reldb.S(metaCodebook)); err != nil && !errors.Is(err, reldb.ErrNotFound) {
				return nil, err
			}
		}
		st.DeltaCount, st.NumPartitions, st.AvgSizeAtBuild = 0, 0, 0
		st.NextPartID = 1
		if err := ix.clearRunZones(wt, st.Runs); err != nil {
			return nil, err
		}
		st.Runs = nil // purged above; NextRunID advances monotonically
		st.Generation++
		st.DataGen++
		if err := ix.putState(wt, st); err != nil {
			return nil, err
		}
		ms.Duration = time.Since(start)
		return ms, nil
	}

	// Refresh the SQ8 codebook before any rows are rewritten: the rewrite
	// pass encodes with it.
	var cb *quant.Codebook
	if ix.rawvecs != nil {
		if cb, err = ix.trainCodebook(wt); err != nil {
			return nil, err
		}
		ms.RowChanges++
	}

	// Train the quantizer on the disk-resident vectors.
	src := &diskSource{ix: ix, txn: wt, keys: keys, dim: ix.cfg.Dim}
	res, err := clustering.MiniBatchKMeans(clustering.Config{
		TargetClusterSize: ix.cfg.TargetPartitionSize,
		BatchSize:         ix.cfg.ClusterBatchSize,
		Iterations:        ix.cfg.ClusterIterations,
		BalancePenalty:    ix.cfg.BalancePenalty,
		Metric:            ix.cfg.Metric,
		Seed:              ix.cfg.Seed,
	}, src)
	if err != nil {
		return nil, err
	}
	k := res.Centroids.Rows

	// Rewrite pass: assign every vector to its nearest centroid and move
	// the rows. Partition ids are 1..k (0 is the delta).
	counts := make([]int64, k)
	chunk := vec.NewMatrix(assignChunk, ix.cfg.Dim)
	dists := make([]float32, assignChunk*k)
	assetsInChunk := make([]string, assignChunk)
	blobsInChunk := make([][]byte, assignChunk)
	centNorms := res.Centroids.Norms(nil)

	for base := 0; base < len(keys); base += assignChunk {
		end := base + assignChunk
		if end > len(keys) {
			end = len(keys)
		}
		n := end - base
		sub := &vec.Matrix{Data: chunk.Data[:n*ix.cfg.Dim], Rows: n, Dim: ix.cfg.Dim}
		for i := base; i < end; i++ {
			row, err := ix.vectors.Get(wt, reldb.I(keys[i].part), reldb.I(keys[i].vid))
			if err != nil {
				return nil, err
			}
			assetsInChunk[i-base] = row[2].Str
			if cb != nil {
				// Partition rows hold stale codes (or delta float32);
				// assignment needs the exact vector from the raw store.
				raw, err := ix.rawVector(wt, keys[i].vid)
				if err != nil {
					return nil, err
				}
				sub.AppendRowBlob(i-base, raw)
			} else {
				sub.AppendRowBlob(i-base, row[3].Bts)
				blobsInChunk[i-base] = row[3].Bts // decode copies; safe to retain
			}
		}
		vec.DistancesManyToMany(ix.cfg.Metric, sub, res.Centroids, nil, l2Only(ix.cfg.Metric, centNorms), dists[:n*k])
		for i := 0; i < n; i++ {
			best := argminRange(dists[i*k : (i+1)*k])
			newPart := int64(best + 1)
			counts[best]++
			ms.VectorsAssigned++
			old := keys[base+i]
			blob := blobsInChunk[i]
			if cb != nil {
				// Re-encode under the refreshed codebook.
				blob = cb.Encode(make([]byte, 0, cb.CodeSize()), sub.Row(i))
			}
			if old.part == newPart {
				if cb == nil {
					continue // row content unchanged
				}
				// Same partition, fresh codebook: rewrite the code in place.
				if err := ix.vectors.Put(wt, reldb.Row{reldb.I(newPart), reldb.I(old.vid), reldb.S(assetsInChunk[i]), reldb.B(blob)}); err != nil {
					return nil, err
				}
				ms.RowChanges++
				continue
			}
			if err := ix.vectors.Delete(wt, reldb.I(old.part), reldb.I(old.vid)); err != nil {
				return nil, err
			}
			if err := ix.vectors.Put(wt, reldb.Row{reldb.I(newPart), reldb.I(old.vid), reldb.S(assetsInChunk[i]), reldb.B(blob)}); err != nil {
				return nil, err
			}
			if err := ix.assets.Put(wt, reldb.Row{reldb.S(assetsInChunk[i]), reldb.I(newPart), reldb.I(old.vid)}); err != nil {
				return nil, err
			}
			if err := ix.vids.Put(wt, reldb.Row{reldb.I(old.vid), reldb.I(newPart), reldb.S(assetsInChunk[i])}); err != nil {
				return nil, err
			}
			ms.RowChanges += 4
		}
		if err := wt.SpillIfNeeded(); err != nil {
			return nil, err
		}
	}

	// Rewrite the centroid table.
	if err := ix.centroids.Truncate(wt); err != nil {
		return nil, err
	}
	for c := 0; c < k; c++ {
		blob := vec.ToBlob(make([]byte, 0, vec.BlobSize(ix.cfg.Dim)), res.Centroids.Row(c))
		if err := ix.centroids.Put(wt, reldb.Row{reldb.I(int64(c + 1)), reldb.B(blob), reldb.I(counts[c])}); err != nil {
			return nil, err
		}
		ms.RowChanges++
	}

	st.DeltaCount = 0
	st.NumPartitions = int64(k)
	st.AvgSizeAtBuild = float64(len(keys)) / float64(k)
	st.NextPartID = int64(k) + 1
	if err := ix.clearRunZones(wt, st.Runs); err != nil {
		return nil, err
	}
	st.Runs = nil // rewrite absorbed every run row; NextRunID keeps advancing
	st.Generation++
	st.DataGen++
	if err := ix.putState(wt, st); err != nil {
		return nil, err
	}

	// Refresh optimizer statistics (the ANALYZE pass: per-column
	// histograms rebuilt at index-build time, §4 highlights).
	if err := ix.AnalyzeAttributes(wt); err != nil {
		return nil, err
	}

	ms.Partitions = k
	ms.Duration = time.Since(start)
	return ms, nil
}

// FlushDelta incorporates the delta-store into the IVF index incrementally
// (paper §3.6): each delta vector joins the partition with the nearest
// centroid, and that centroid is updated to the running mean of its
// content. Disk I/O is proportional to the delta size, not the index size.
func (ix *Index) FlushDelta(wt *storage.WriteTxn) (*MaintenanceStats, error) {
	start := time.Now()
	ms := &MaintenanceStats{}
	st, err := ix.getState(wt)
	if err != nil {
		return nil, err
	}
	if st.NumPartitions == 0 {
		return nil, ErrNotBuilt
	}
	deltaKeys, err := ix.collectKeys(wt, []reldb.Value{reldb.I(DeltaPartition)})
	if err != nil {
		return nil, err
	}
	if len(deltaKeys) == 0 && len(st.Runs) == 0 {
		ms.Duration = time.Since(start)
		return ms, nil
	}
	// A flush scatters the delta across arbitrary partitions: invalidate
	// every prepared maintenance plan if this transaction commits.
	wt.OnCommit(func() { ix.locks.BumpAll() })

	// Quantized indexes encode flushed vectors with the codebook from the
	// last full rebuild: no retraining on the streaming path. Out-of-range
	// values clamp; the exact rerank absorbs the error until the next
	// rebuild refreshes the codebook.
	var cb *quant.Codebook
	if ix.rawvecs != nil {
		if cb, err = ix.loadCodebook(wt); err != nil {
			return nil, err
		}
		if cb == nil {
			return nil, fmt.Errorf("ivf: quantized index has partitions but no codebook")
		}
	}

	// Private copy of the centroids: the cached set is shared with
	// concurrent readers.
	cs, err := ix.loadCentroids(wt)
	if err != nil {
		return nil, err
	}
	cents := vec.NewMatrix(cs.mat.Rows, cs.mat.Dim)
	copy(cents.Data, cs.mat.Data)
	// Counts come from the centroid table, not the cached set: deletes
	// decrement them transactionally without bumping the generation, so the
	// cache's counts may overstate partition sizes.
	counts, err := ix.freshCounts(wt, cs.ids)
	if err != nil {
		return nil, err
	}
	touched := make(map[int]bool)

	dists := make([]float32, cents.Rows)
	x := make([]float32, ix.cfg.Dim)
	for _, key := range deltaKeys {
		row, err := ix.vectors.Get(wt, reldb.I(key.part), reldb.I(key.vid))
		if err != nil {
			return nil, err
		}
		vec.FromBlob(x, row[3].Bts)
		vec.DistancesOneToMany(ix.cfg.Metric, x, cents, nil, dists)
		best := argminRange(dists)
		newPart := cs.ids[best]
		asset := row[2].Str
		var blobCopy []byte
		if cb != nil {
			blobCopy = cb.Encode(make([]byte, 0, cb.CodeSize()), x)
		} else {
			blobCopy = append([]byte(nil), row[3].Bts...)
		}

		if err := ix.vectors.Delete(wt, reldb.I(key.part), reldb.I(key.vid)); err != nil {
			return nil, err
		}
		if err := ix.vectors.Put(wt, reldb.Row{reldb.I(newPart), reldb.I(key.vid), reldb.S(asset), reldb.B(blobCopy)}); err != nil {
			return nil, err
		}
		if err := ix.assets.Put(wt, reldb.Row{reldb.S(asset), reldb.I(newPart), reldb.I(key.vid)}); err != nil {
			return nil, err
		}
		if err := ix.vids.Put(wt, reldb.Row{reldb.I(key.vid), reldb.I(newPart), reldb.S(asset)}); err != nil {
			return nil, err
		}
		ms.RowChanges += 4
		ms.VectorsAssigned++

		// Running-mean centroid update (Arandjelovic & Zisserman '13).
		counts[best]++
		eta := float32(1) / float32(counts[best])
		vec.Lerp(cents.Row(best), x, eta)
		touched[best] = true

		if err := wt.SpillIfNeeded(); err != nil {
			return nil, err
		}
	}

	// Fold any unmerged sorted runs with the same private centroid state, so
	// the running-mean updates compose across the delta and the runs. Run
	// payloads already match the live codebook (see runs.go), so their rows
	// move byte-identically; tombstoned rows are physically purged here.
	if len(st.Runs) > 0 {
		dead, err := ix.deadVids(wt)
		if err != nil {
			return nil, err
		}
		for _, r := range st.Runs {
			if err := ix.foldRunRows(wt, -r.ID, dead, cents, cs.ids, counts, touched, ms); err != nil {
				return nil, err
			}
		}
		if err := ix.clearRunZones(wt, st.Runs); err != nil {
			return nil, err
		}
		st.Runs = nil
	}

	// Persist only the touched centroids: I/O stays proportional to the
	// update, which is the whole point of the incremental path.
	for c := range touched {
		blob := vec.ToBlob(make([]byte, 0, vec.BlobSize(ix.cfg.Dim)), cents.Row(c))
		if err := ix.centroids.Put(wt, reldb.Row{reldb.I(cs.ids[c]), reldb.B(blob), reldb.I(counts[c])}); err != nil {
			return nil, err
		}
		ms.RowChanges++
	}

	st.DeltaCount = 0
	st.Generation++
	st.DataGen++
	if err := ix.putState(wt, st); err != nil {
		return nil, err
	}
	ms.Partitions = cents.Rows
	ms.Duration = time.Since(start)
	return ms, nil
}

// freshCounts reads the per-partition row counts from the centroid table,
// aligned with ids. One sequential scan of a k-row table.
func (ix *Index) freshCounts(txn btree.ReadTxn, ids []int64) ([]int64, error) {
	pos := make(map[int64]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	counts := make([]int64, len(ids))
	err := ix.centroids.Scan(txn, nil, func(row reldb.Row) error {
		if i, ok := pos[row[0].Int]; ok {
			counts[i] = row[2].Int
		}
		return nil
	})
	return counts, err
}

// AnalyzeAttributes refreshes the optimizer's attribute statistics. It
// bumps the data generation even though no rows change: fresh statistics
// can flip the optimizer's pre/post-filter choice, and the two plans may
// rank borderline candidates differently — a cached response must not
// outlive the plan decision that produced it.
func (ix *Index) AnalyzeAttributes(wt *storage.WriteTxn) error {
	if len(ix.cfg.Attributes) == 0 {
		return nil
	}
	ts, err := stats.Analyze(wt, ix.attrs, nil)
	if err != nil {
		return err
	}
	if err := stats.Save(ix.db, wt, tblAttrs, ts); err != nil {
		return err
	}
	return ix.bumpDataGen(wt)
}

func l2Only(m vec.Metric, norms []float32) []float32 {
	if m == vec.L2 {
		return norms
	}
	return nil
}

func argminRange(xs []float32) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
