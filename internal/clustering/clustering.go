// Package clustering implements the quantizer training behind MicroNN's IVF
// index: mini-batch k-means (Sculley '10) with the flexible balance
// constraint of Liu et al. '18 (paper Algorithm 1), and the full-batch
// Lloyd k-means used by the InMemory baseline in the evaluation.
//
// The mini-batch trainer never materializes the training set: it pulls
// fixed-size random batches through a Source, so training memory is
// O(batch + k·dim) regardless of collection size — the property Figure 8
// measures.
package clustering

import (
	"fmt"
	"math/rand"

	"micronn/internal/vec"
)

// Source supplies training vectors by position. Implementations back it
// with an in-memory matrix (baseline) or a disk-resident table (MicroNN).
type Source interface {
	// Len returns the number of available training vectors.
	Len() int
	// Dim returns the vector dimensionality.
	Dim() int
	// Read copies the vectors at the given positions into consecutive
	// rows of dst (which has len(indices) rows).
	Read(indices []int, dst *vec.Matrix) error
}

// MatrixSource adapts an in-memory matrix to the Source interface.
type MatrixSource struct{ M *vec.Matrix }

// Len returns the row count.
func (s MatrixSource) Len() int { return s.M.Rows }

// Dim returns the column count.
func (s MatrixSource) Dim() int { return s.M.Dim }

// Read copies the selected rows into dst.
func (s MatrixSource) Read(indices []int, dst *vec.Matrix) error {
	for i, idx := range indices {
		dst.SetRow(i, s.M.Row(idx))
	}
	return nil
}

// Config parameterizes training.
type Config struct {
	// K is the number of clusters. If zero it is derived as
	// Len/TargetClusterSize (Algorithm 1 line 1).
	K int
	// TargetClusterSize is the desired vectors-per-cluster (default 100,
	// the paper's default).
	TargetClusterSize int
	// BatchSize is the mini-batch size s (default 1024, capped at Len).
	BatchSize int
	// Iterations is the number of mini-batch rounds n. If zero a value
	// covering the dataset roughly three times is chosen, clamped to
	// [30, 600].
	Iterations int
	// BalancePenalty is the weight of the cluster-size penalty in the
	// NEAREST function. 0 disables balancing. The penalty for assigning
	// to cluster c is BalancePenalty * meanSquaredDist * v[c]/targetSize,
	// adapting its scale to the data. Default 0.12.
	BalancePenalty float32
	// Metric is the distance metric (default L2). Centroid updates are
	// always Euclidean means; for cosine the centroids are renormalized.
	Metric vec.Metric
	// Seed makes training deterministic.
	Seed int64
	// Init selects the seeding strategy. InitAuto (default) uses
	// k-means++ over a bounded sample when K is small enough for it to
	// be cheap, and random data points otherwise.
	Init InitStrategy
}

// InitStrategy selects centroid seeding.
type InitStrategy uint8

const (
	// InitAuto picks k-means++ for K <= 512, random otherwise.
	InitAuto InitStrategy = iota
	// InitRandom seeds each centroid with a random training vector
	// (Algorithm 1 line 2).
	InitRandom
	// InitKMeansPP seeds with k-means++ over a sample, which strongly
	// reduces cluster-collapse at small K.
	InitKMeansPP
)

// kppMaxAutoK bounds the K for which InitAuto picks k-means++ (the seeding
// pass is O(K * sample * dim)).
const kppMaxAutoK = 512

func (c *Config) fill(n int) {
	if c.TargetClusterSize == 0 {
		c.TargetClusterSize = 100
	}
	if c.K == 0 {
		c.K = n / c.TargetClusterSize
	}
	if c.K < 1 {
		c.K = 1
	}
	if c.K > n {
		c.K = n
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1024
	}
	if c.BatchSize > n {
		c.BatchSize = n
	}
	if c.Iterations == 0 {
		c.Iterations = 3 * n / c.BatchSize
		if c.Iterations < 30 {
			c.Iterations = 30
		}
		if c.Iterations > 600 {
			c.Iterations = 600
		}
	}
	if c.BalancePenalty == 0 {
		c.BalancePenalty = 0.12
	}
}

// Result holds trained centroids.
type Result struct {
	Centroids *vec.Matrix
	// Counts is the per-centroid assignment count accumulated during
	// training (v in Algorithm 1) — a cheap balance diagnostic.
	Counts []int
}

// MiniBatchKMeans trains centroids per Algorithm 1.
func MiniBatchKMeans(cfg Config, src Source) (*Result, error) {
	n := src.Len()
	if n == 0 {
		return nil, fmt.Errorf("clustering: empty source")
	}
	cfg.fill(n)
	dim := src.Dim()
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids, err := initCentroids(cfg, src, rng)
	if err != nil {
		return nil, err
	}

	counts := make([]int, cfg.K) // v: per-center counts (line 3)
	batch := vec.NewMatrix(cfg.BatchSize, dim)
	assign := make([]int, cfg.BatchSize) // d: cached assignments (line 4)
	dists := make([]float32, cfg.K)
	centNorms := make([]float32, 0, cfg.K)

	for iter := 0; iter < cfg.Iterations; iter++ {
		idx := samplePositions(rng, n, cfg.BatchSize)
		if err := src.Read(idx, batch); err != nil {
			return nil, err
		}
		centNorms = centroids.Norms(centNorms[:0])

		// Assignment phase (lines 7-8): nearest centroid under the
		// balance penalty, with counts frozen for the whole batch.
		for i := 0; i < cfg.BatchSize; i++ {
			vec.DistancesOneToMany(cfg.Metric, batch.Row(i), centroids, l2Norms(cfg.Metric, centNorms), dists)
			assign[i] = nearestBalanced(dists, counts, cfg)
		}

		// Update phase (lines 9-13): per-center learning rate 1/v[c].
		for i := 0; i < cfg.BatchSize; i++ {
			c := assign[i]
			counts[c]++
			eta := float32(1) / float32(counts[c])
			vec.Lerp(centroids.Row(c), batch.Row(i), eta)
		}
	}
	if cfg.Metric == vec.Cosine {
		for c := 0; c < cfg.K; c++ {
			vec.Normalize(centroids.Row(c))
		}
	}
	return &Result{Centroids: centroids, Counts: counts}, nil
}

// l2Norms passes precomputed norms only for the L2 metric, where the
// norm-based kernel applies.
func l2Norms(m vec.Metric, norms []float32) []float32 {
	if m == vec.L2 {
		return norms
	}
	return nil
}

// nearestBalanced implements NEAREST(C, v, d, x): the centroid minimizing
// distance plus a penalty that grows with the centroid's assignment count,
// spreading vectors across nearby clusters instead of forming mega-clusters.
func nearestBalanced(dists []float32, counts []int, cfg Config) int {
	if cfg.BalancePenalty == 0 {
		return argmin(dists)
	}
	// Scale the penalty by the current mean distance so it tracks the
	// data's magnitude as centroids converge.
	var mean float32
	for _, d := range dists {
		mean += d
	}
	mean /= float32(len(dists))
	best, bestScore := 0, float32(0)
	target := float32(cfg.TargetClusterSize)
	for c, d := range dists {
		score := d + cfg.BalancePenalty*mean*float32(counts[c])/target
		if c == 0 || score < bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

func argmin(xs []float32) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// initCentroids seeds the centroid matrix per the configured strategy.
func initCentroids(cfg Config, src Source, rng *rand.Rand) (*vec.Matrix, error) {
	n, dim := src.Len(), src.Dim()
	useKPP := cfg.Init == InitKMeansPP || (cfg.Init == InitAuto && cfg.K <= kppMaxAutoK)
	if !useKPP || cfg.K <= 1 {
		centroids := vec.NewMatrix(cfg.K, dim)
		if err := src.Read(samplePositions(rng, n, cfg.K), centroids); err != nil {
			return nil, err
		}
		return centroids, nil
	}
	// k-means++ over a bounded sample: D^2-weighted sequential picks.
	sampleSize := 4 * cfg.K
	if sampleSize < 2048 {
		sampleSize = 2048
	}
	if sampleSize > n {
		sampleSize = n
	}
	sample := vec.NewMatrix(sampleSize, dim)
	if err := src.Read(samplePositions(rng, n, sampleSize), sample); err != nil {
		return nil, err
	}
	centroids := vec.NewMatrix(cfg.K, dim)
	centroids.SetRow(0, sample.Row(rng.Intn(sampleSize)))
	minDist := make([]float64, sampleSize)
	for i := 0; i < sampleSize; i++ {
		minDist[i] = float64(vec.Distance(cfg.Metric, sample.Row(i), centroids.Row(0)))
	}
	for c := 1; c < cfg.K; c++ {
		var total float64
		for _, d := range minDist {
			total += d
		}
		pick := sampleSize - 1
		if total > 0 {
			r := rng.Float64() * total
			acc := 0.0
			for i, d := range minDist {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(sampleSize)
		}
		centroids.SetRow(c, sample.Row(pick))
		for i := 0; i < sampleSize; i++ {
			d := float64(vec.Distance(cfg.Metric, sample.Row(i), centroids.Row(c)))
			if d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return centroids, nil
}

// samplePositions returns k distinct positions when k is small relative to
// n (initialization), otherwise k positions sampled with replacement
// (mini-batches, per Sculley).
func samplePositions(rng *rand.Rand, n, k int) []int {
	out := make([]int, k)
	if k <= n/2 {
		seen := make(map[int]struct{}, k)
		for i := 0; i < k; {
			p := rng.Intn(n)
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			out[i] = p
			i++
		}
		return out
	}
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

// Assign returns the index of the nearest centroid to x (the final
// assignment function g of Algorithm 1, without balance constraints).
func Assign(metric vec.Metric, centroids *vec.Matrix, x []float32, scratch []float32) int {
	vec.DistancesOneToMany(metric, x, centroids, nil, scratch)
	return argmin(scratch)
}

// FullKMeans is the conventional Lloyd's algorithm requiring the entire
// training set in memory — the InMemory baseline of Figures 6 and 8. It
// runs maxIters rounds or until assignments stabilize.
func FullKMeans(cfg Config, data *vec.Matrix, maxIters int) (*Result, error) {
	n := data.Rows
	if n == 0 {
		return nil, fmt.Errorf("clustering: empty data")
	}
	cfg.fill(n)
	if maxIters <= 0 {
		maxIters = 25
	}
	dim := data.Dim
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids, err := initCentroids(cfg, MatrixSource{M: data}, rng)
	if err != nil {
		return nil, err
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	dists := make([]float32, cfg.K)
	sums := vec.NewMatrix(cfg.K, dim)
	counts := make([]int, cfg.K)

	for iter := 0; iter < maxIters; iter++ {
		changed := 0
		for i := 0; i < n; i++ {
			vec.DistancesOneToMany(cfg.Metric, data.Row(i), centroids, nil, dists)
			c := argmin(dists)
			if c != assign[i] {
				changed++
				assign[i] = c
			}
		}
		if changed == 0 {
			break
		}
		// Recompute means.
		for c := 0; c < cfg.K; c++ {
			counts[c] = 0
			row := sums.Row(c)
			for j := range row {
				row[j] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			vec.Add(sums.Row(c), data.Row(i))
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random vector.
				centroids.SetRow(c, data.Row(rng.Intn(n)))
				continue
			}
			row := sums.Row(c)
			inv := 1 / float32(counts[c])
			dst := centroids.Row(c)
			for j := range dst {
				dst[j] = row[j] * inv
			}
		}
	}
	if cfg.Metric == vec.Cosine {
		for c := 0; c < cfg.K; c++ {
			vec.Normalize(centroids.Row(c))
		}
	}
	return &Result{Centroids: centroids, Counts: counts}, nil
}
