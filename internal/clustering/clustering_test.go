package clustering

import (
	"math"
	"math/rand"
	"testing"

	"micronn/internal/vec"
)

// gaussianMixture generates n vectors around nCenters well-separated
// centers; returns data and the true center of each vector.
func gaussianMixture(seed int64, n, dim, nCenters int, spread float64) (*vec.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := vec.NewMatrix(nCenters, dim)
	for c := 0; c < nCenters; c++ {
		for j := 0; j < dim; j++ {
			centers.Row(c)[j] = float32(rng.NormFloat64() * 10)
		}
	}
	data := vec.NewMatrix(n, dim)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(nCenters)
		truth[i] = c
		for j := 0; j < dim; j++ {
			data.Row(i)[j] = centers.Row(c)[j] + float32(rng.NormFloat64()*spread)
		}
	}
	return data, truth
}

func quantizationError(metric vec.Metric, data, centroids *vec.Matrix) float64 {
	dists := make([]float32, centroids.Rows)
	var total float64
	for i := 0; i < data.Rows; i++ {
		vec.DistancesOneToMany(metric, data.Row(i), centroids, nil, dists)
		best := dists[0]
		for _, d := range dists[1:] {
			if d < best {
				best = d
			}
		}
		total += float64(best)
	}
	return total / float64(data.Rows)
}

func TestMiniBatchFindsClusters(t *testing.T) {
	data, _ := gaussianMixture(1, 2000, 16, 8, 0.5)
	res, err := MiniBatchKMeans(Config{K: 8, BatchSize: 256, Iterations: 60, Seed: 7}, MatrixSource{M: data})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows != 8 {
		t.Fatalf("centroids = %d", res.Centroids.Rows)
	}
	// Quantization error should approach the intra-cluster variance
	// (dim * spread^2 = 16 * 0.25 = 4), far below the random-centroid
	// error for centers spread with sigma=10.
	qe := quantizationError(vec.L2, data, res.Centroids)
	if qe > 20 {
		t.Errorf("quantization error = %v, want < 20", qe)
	}
}

func TestMiniBatchMatchesFullKMeansQuality(t *testing.T) {
	data, _ := gaussianMixture(2, 3000, 8, 10, 1.0)
	mb, err := MiniBatchKMeans(Config{K: 10, BatchSize: 300, Iterations: 80, Seed: 3}, MatrixSource{M: data})
	if err != nil {
		t.Fatal(err)
	}
	full, err := FullKMeans(Config{K: 10, Seed: 3}, data, 30)
	if err != nil {
		t.Fatal(err)
	}
	qeMB := quantizationError(vec.L2, data, mb.Centroids)
	qeFull := quantizationError(vec.L2, data, full.Centroids)
	// The paper reports "similar index quality"; allow mini-batch to be
	// within 2x of Lloyd on this easy mixture.
	if qeMB > 2*qeFull+1 {
		t.Errorf("mini-batch QE %v too far above full QE %v", qeMB, qeFull)
	}
}

func TestBalancePenaltyReducesVariance(t *testing.T) {
	// Heavily skewed data: one dense blob and a sparse halo.
	rng := rand.New(rand.NewSource(5))
	n, dim := 4000, 8
	data := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		scale := 0.5
		if i%10 == 0 {
			scale = 20 // 10% of points scattered widely
		}
		for j := 0; j < dim; j++ {
			data.Row(i)[j] = float32(rng.NormFloat64() * scale)
		}
	}
	target := 200
	k := n / target

	run := func(penalty float32) float64 {
		res, err := MiniBatchKMeans(Config{
			K: k, TargetClusterSize: target, BatchSize: 500,
			Iterations: 60, BalancePenalty: penalty, Seed: 11,
		}, MatrixSource{M: data})
		if err != nil {
			t.Fatal(err)
		}
		// Final hard assignment, then measure partition size variance.
		counts := make([]int, k)
		scratch := make([]float32, k)
		for i := 0; i < n; i++ {
			counts[Assign(vec.L2, res.Centroids, data.Row(i), scratch)]++
		}
		mean := float64(n) / float64(k)
		var variance float64
		for _, c := range counts {
			d := float64(c) - mean
			variance += d * d
		}
		return math.Sqrt(variance / float64(k))
	}

	sdUnbalanced := run(0.000001) // effectively disabled (0 means default)
	sdBalanced := run(0.5)
	if sdBalanced >= sdUnbalanced {
		t.Errorf("balance penalty did not reduce size stddev: %v -> %v", sdUnbalanced, sdBalanced)
	}
}

func TestKDerivedFromTargetSize(t *testing.T) {
	data, _ := gaussianMixture(3, 1000, 4, 4, 1)
	res, err := MiniBatchKMeans(Config{TargetClusterSize: 100, BatchSize: 100, Iterations: 10, Seed: 1}, MatrixSource{M: data})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows != 10 { // 1000/100
		t.Errorf("derived K = %d, want 10", res.Centroids.Rows)
	}
}

func TestSmallDatasets(t *testing.T) {
	// Fewer vectors than the default target size: K clamps to >= 1.
	data, _ := gaussianMixture(4, 7, 4, 2, 0.1)
	res, err := MiniBatchKMeans(Config{BatchSize: 4, Iterations: 5, Seed: 1}, MatrixSource{M: data})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows != 1 {
		t.Errorf("K = %d, want 1", res.Centroids.Rows)
	}
	// K larger than n clamps to n.
	res, err = MiniBatchKMeans(Config{K: 100, BatchSize: 4, Iterations: 5, Seed: 1}, MatrixSource{M: data})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows != 7 {
		t.Errorf("K = %d, want 7", res.Centroids.Rows)
	}
}

func TestEmptySourceErrors(t *testing.T) {
	data := vec.NewMatrix(0, 4)
	if _, err := MiniBatchKMeans(Config{}, MatrixSource{M: data}); err == nil {
		t.Error("expected error for empty source")
	}
	if _, err := FullKMeans(Config{}, data, 5); err == nil {
		t.Error("expected error for empty data")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	data, _ := gaussianMixture(6, 500, 8, 4, 1)
	r1, err := MiniBatchKMeans(Config{K: 4, BatchSize: 64, Iterations: 20, Seed: 42}, MatrixSource{M: data})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MiniBatchKMeans(Config{K: 4, BatchSize: 64, Iterations: 20, Seed: 42}, MatrixSource{M: data})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Centroids.Data {
		if r1.Centroids.Data[i] != r2.Centroids.Data[i] {
			t.Fatal("same seed produced different centroids")
		}
	}
}

func TestCosineMetricNormalizesCentroids(t *testing.T) {
	data, _ := gaussianMixture(7, 600, 8, 4, 0.5)
	for i := 0; i < data.Rows; i++ {
		vec.Normalize(data.Row(i))
	}
	res, err := MiniBatchKMeans(Config{K: 4, BatchSize: 128, Iterations: 30, Metric: vec.Cosine, Seed: 1}, MatrixSource{M: data})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < res.Centroids.Rows; c++ {
		n := vec.Norm(res.Centroids.Row(c))
		if math.Abs(float64(n)-1) > 1e-5 {
			t.Errorf("centroid %d norm = %v, want 1", c, n)
		}
	}
}

func TestAssignPicksNearest(t *testing.T) {
	centroids := vec.NewMatrix(3, 2)
	centroids.SetRow(0, []float32{0, 0})
	centroids.SetRow(1, []float32{10, 0})
	centroids.SetRow(2, []float32{0, 10})
	scratch := make([]float32, 3)
	cases := []struct {
		x    []float32
		want int
	}{
		{[]float32{1, 1}, 0},
		{[]float32{9, 1}, 1},
		{[]float32{1, 9}, 2},
	}
	for _, c := range cases {
		if got := Assign(vec.L2, centroids, c.x, scratch); got != c.want {
			t.Errorf("Assign(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestFullKMeansConverges(t *testing.T) {
	data, _ := gaussianMixture(8, 1500, 8, 6, 0.3)
	res, err := FullKMeans(Config{K: 6, Seed: 2}, data, 50)
	if err != nil {
		t.Fatal(err)
	}
	qe := quantizationError(vec.L2, data, res.Centroids)
	if qe > 10 {
		t.Errorf("full k-means QE = %v", qe)
	}
}

func BenchmarkMiniBatchIteration(b *testing.B) {
	data, _ := gaussianMixture(9, 10000, 64, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := MiniBatchKMeans(Config{K: 32, BatchSize: 512, Iterations: 1, Seed: int64(i)}, MatrixSource{M: data})
		if err != nil {
			b.Fatal(err)
		}
	}
}
