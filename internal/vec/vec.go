// Package vec provides float32 vector primitives used throughout MicroNN:
// the on-disk blob codec, distance kernels (squared L2, dot product, cosine),
// and batched kernels that compute distances between one-or-many query
// vectors and a block of data vectors.
//
// The paper offloads these operations to a SIMD-accelerated linear algebra
// library. Go's standard library has no SIMD intrinsics, so the kernels here
// are manually unrolled and blocked to expose the same batch-oriented code
// path (vectors gathered into row-major matrices, one kernel call per block)
// with competitive scalar throughput.
package vec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Metric identifies the distance function used by an index.
type Metric uint8

const (
	// L2 is squared Euclidean distance. Squared distance preserves the
	// nearest-neighbour ordering of true Euclidean distance and avoids a
	// square root per comparison.
	L2 Metric = iota
	// Cosine is cosine distance, 1 - cos(a, b). Smaller is more similar.
	Cosine
	// Dot is negated inner product so that, like the other metrics,
	// smaller values mean more similar vectors.
	Dot
)

// String returns the metric name used in configuration and dataset tables.
func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case Cosine:
		return "cosine"
	case Dot:
		return "dot"
	default:
		return fmt.Sprintf("Metric(%d)", uint8(m))
	}
}

// ParseMetric converts a metric name ("L2", "cosine", "dot") to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "L2", "l2":
		return L2, nil
	case "cosine", "Cosine":
		return Cosine, nil
	case "dot", "Dot", "ip":
		return Dot, nil
	}
	return L2, fmt.Errorf("vec: unknown metric %q", s)
}

// BlobSize returns the encoded size in bytes of a vector with dim dimensions.
func BlobSize(dim int) int { return 4 * dim }

// ToBlob encodes v as little-endian float32 bytes, appending to dst.
// The layout matches what the batch kernels consume so no further
// marshalling is needed between storage and distance computation.
func ToBlob(dst []byte, v []float32) []byte {
	for _, f := range v {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
	}
	return dst
}

// FromBlob decodes a little-endian float32 blob into dst, which must have
// length len(blob)/4. It returns dst for convenience.
func FromBlob(dst []float32, blob []byte) []float32 {
	n := len(blob) / 4
	_ = dst[n-1] // bounds hint
	for i := 0; i < n; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[i*4:]))
	}
	return dst
}

// AppendFromBlob decodes blob and appends the values to dst.
func AppendFromBlob(dst []float32, blob []byte) []float32 {
	n := len(blob) / 4
	for i := 0; i < n; i++ {
		dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(blob[i*4:]))) //nolint
	}
	return dst
}

// L2Squared returns the squared Euclidean distance between a and b.
// The loop is unrolled 8-wide with eight independent accumulators so the
// reduction never serializes through one register, and the up-front bounds
// hint on b lets the compiler drop the per-element bounds checks — the
// closest scalar Go gets to a SIMD kernel.
func L2Squared(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	n := len(a)
	if n == 0 {
		return 0
	}
	_ = b[n-1] // bounds hint: len(b) >= n
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		d4 := a[i+4] - b[i+4]
		d5 := a[i+5] - b[i+5]
		d6 := a[i+6] - b[i+6]
		d7 := a[i+7] - b[i+7]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		s4 += d4 * d4
		s5 += d5 * d5
		s6 += d6 * d6
		s7 += d7 * d7
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// DotProduct returns the inner product of a and b, unrolled 8-wide with
// independent accumulators like L2Squared.
func DotProduct(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	n := len(a)
	if n == 0 {
		return 0
	}
	_ = b[n-1] // bounds hint: len(b) >= n
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
		s4 += a[i+4] * b[i+4]
		s5 += a[i+5] * b[i+5]
		s6 += a[i+6] * b[i+6]
		s7 += a[i+7] * b[i+7]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	return float32(math.Sqrt(float64(DotProduct(v, v))))
}

// Normalize scales v in place to unit length. Zero vectors are unchanged.
func Normalize(v []float32) {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// CosineDistance returns 1 - cos(a, b). If either vector has zero norm the
// distance is defined as 1 (orthogonal).
func CosineDistance(a, b []float32) float32 {
	dot := DotProduct(a, b)
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/(na*nb)
}

// Distance computes the metric m between a and b.
func Distance(m Metric, a, b []float32) float32 {
	switch m {
	case L2:
		return L2Squared(a, b)
	case Cosine:
		return CosineDistance(a, b)
	case Dot:
		return -DotProduct(a, b)
	default:
		panic("vec: unknown metric")
	}
}

// Add accumulates src into dst element-wise.
func Add(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of v by f.
func Scale(v []float32, f float32) {
	for i := range v {
		v[i] *= f
	}
}

// Lerp moves c toward x with learning rate eta: c = (1-eta)*c + eta*x.
// This is the mini-batch k-means centroid update (Algorithm 1, line 13).
func Lerp(c, x []float32, eta float32) {
	om := 1 - eta
	for i := range c {
		c[i] = om*c[i] + eta*x[i]
	}
}
