package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, eps float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := float32(1)
	if aa := float32(math.Abs(float64(a))); aa > scale {
		scale = aa
	}
	return d <= eps*scale
}

func TestBlobRoundTrip(t *testing.T) {
	v := []float32{1.5, -2.25, 0, 3.14159, float32(math.Inf(1)), -0}
	blob := ToBlob(nil, v)
	if len(blob) != BlobSize(len(v)) {
		t.Fatalf("blob size = %d, want %d", len(blob), BlobSize(len(v)))
	}
	got := FromBlob(make([]float32, len(v)), blob)
	for i := range v {
		if got[i] != v[i] && !(math.IsNaN(float64(got[i])) && math.IsNaN(float64(v[i]))) {
			t.Errorf("round trip [%d] = %v, want %v", i, got[i], v[i])
		}
	}
}

func TestBlobRoundTripProperty(t *testing.T) {
	f := func(v []float32) bool {
		blob := ToBlob(nil, v)
		if len(v) == 0 {
			return len(blob) == 0
		}
		got := FromBlob(make([]float32, len(v)), blob)
		for i := range v {
			a, b := got[i], v[i]
			if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
				continue
			}
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendFromBlob(t *testing.T) {
	v := []float32{1, 2, 3}
	blob := ToBlob(nil, v)
	out := AppendFromBlob([]float32{9}, blob)
	want := []float32{9, 1, 2, 3}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestL2Squared(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{2, 2, 1, 4, 0}
	// diffs: -1,0,2,0,5 -> 1+0+4+0+25 = 30
	if got := L2Squared(a, b); got != 30 {
		t.Errorf("L2Squared = %v, want 30", got)
	}
	if got := L2Squared(a, a); got != 0 {
		t.Errorf("L2Squared(a,a) = %v, want 0", got)
	}
}

func TestL2SquaredMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(300)
		a, b := make([]float32, dim), make([]float32, dim)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		var want float32
		for i := range a {
			d := a[i] - b[i]
			want += d * d
		}
		if got := L2Squared(a, b); !approxEq(got, want, 1e-4) {
			t.Fatalf("dim %d: got %v want %v", dim, got, want)
		}
	}
}

func TestDotProduct(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := DotProduct(a, b); got != 32 {
		t.Errorf("DotProduct = %v, want 32", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"l2":  func() { L2Squared([]float32{1}, []float32{1, 2}) },
		"dot": func() { DotProduct([]float32{1}, []float32{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on dimension mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestNormAndNormalize(t *testing.T) {
	v := []float32{3, 4}
	if got := Norm(v); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	Normalize(v)
	if got := Norm(v); !approxEq(got, 1, 1e-6) {
		t.Errorf("after Normalize, norm = %v, want 1", got)
	}
	zero := []float32{0, 0}
	Normalize(zero) // must not NaN
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize(zero) changed vector: %v", zero)
	}
}

func TestCosineDistance(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := CosineDistance(a, b); !approxEq(got, 1, 1e-6) {
		t.Errorf("orthogonal cosine distance = %v, want 1", got)
	}
	if got := CosineDistance(a, a); !approxEq(got, 0, 1e-6) {
		t.Errorf("identical cosine distance = %v, want 0", got)
	}
	c := []float32{-1, 0}
	if got := CosineDistance(a, c); !approxEq(got, 2, 1e-6) {
		t.Errorf("opposite cosine distance = %v, want 2", got)
	}
	if got := CosineDistance(a, []float32{0, 0}); got != 1 {
		t.Errorf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestDistanceMetricDispatch(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	if got, want := Distance(L2, a, b), L2Squared(a, b); got != want {
		t.Errorf("Distance(L2) = %v, want %v", got, want)
	}
	if got, want := Distance(Cosine, a, b), CosineDistance(a, b); got != want {
		t.Errorf("Distance(Cosine) = %v, want %v", got, want)
	}
	if got, want := Distance(Dot, a, b), -DotProduct(a, b); got != want {
		t.Errorf("Distance(Dot) = %v, want %v", got, want)
	}
}

func TestMetricStringParse(t *testing.T) {
	for _, m := range []Metric{L2, Cosine, Dot} {
		got, err := ParseMetric(m.String())
		if err != nil {
			t.Fatalf("ParseMetric(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseMetric(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ParseMetric("nonsense"); err == nil {
		t.Error("ParseMetric(nonsense) should fail")
	}
}

func TestLerp(t *testing.T) {
	c := []float32{0, 10}
	x := []float32{10, 0}
	Lerp(c, x, 0.25)
	if !approxEq(c[0], 2.5, 1e-6) || !approxEq(c[1], 7.5, 1e-6) {
		t.Errorf("Lerp = %v, want [2.5 7.5]", c)
	}
	// eta=1 replaces the centroid entirely (first assignment).
	Lerp(c, x, 1)
	if c[0] != 10 || c[1] != 0 {
		t.Errorf("Lerp eta=1 = %v, want [10 0]", c)
	}
}

func TestAddScale(t *testing.T) {
	a := []float32{1, 2}
	Add(a, []float32{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Errorf("Add = %v", a)
	}
	Scale(a, 0.5)
	if a[0] != 2 || a[1] != 3 {
		t.Errorf("Scale = %v", a)
	}
}

func TestMatrixRows(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetRow(0, []float32{1, 2})
	m.SetRow(2, []float32{5, 6})
	if r := m.Row(0); r[0] != 1 || r[1] != 2 {
		t.Errorf("Row(0) = %v", r)
	}
	if r := m.Row(1); r[0] != 0 || r[1] != 0 {
		t.Errorf("Row(1) = %v, want zeros", r)
	}
	blob := ToBlob(nil, []float32{7, 8})
	m.AppendRowBlob(1, blob)
	if r := m.Row(1); r[0] != 7 || r[1] != 8 {
		t.Errorf("Row(1) after blob = %v", r)
	}
}

func TestMatrixNorms(t *testing.T) {
	m := NewMatrix(2, 2)
	m.SetRow(0, []float32{3, 4})
	m.SetRow(1, []float32{1, 0})
	norms := m.Norms(nil)
	if norms[0] != 25 || norms[1] != 1 {
		t.Errorf("Norms = %v, want [25 1]", norms)
	}
}

func TestDistancesOneToManyL2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 33
	m := NewMatrix(100, dim)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < dim; j++ {
			m.Row(i)[j] = rng.Float32()
		}
	}
	q := make([]float32, dim)
	for j := range q {
		q[j] = rng.Float32()
	}
	norms := m.Norms(nil)

	outNorm := make([]float32, m.Rows)
	outPlain := make([]float32, m.Rows)
	DistancesOneToMany(L2, q, m, norms, outNorm)
	DistancesOneToMany(L2, q, m, nil, outPlain)
	for i := range outNorm {
		want := L2Squared(q, m.Row(i))
		if !approxEq(outNorm[i], want, 1e-3) {
			t.Fatalf("norm-path [%d] = %v, want %v", i, outNorm[i], want)
		}
		if !approxEq(outPlain[i], want, 1e-4) {
			t.Fatalf("plain-path [%d] = %v, want %v", i, outPlain[i], want)
		}
	}
}

func TestDistancesOneToManyOtherMetrics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.SetRow(0, []float32{1, 0, 0})
	m.SetRow(1, []float32{0, 2, 0})
	q := []float32{1, 1, 0}
	out := make([]float32, 2)

	DistancesOneToMany(Cosine, q, m, nil, out)
	for i := range out {
		want := CosineDistance(q, m.Row(i))
		if !approxEq(out[i], want, 1e-6) {
			t.Errorf("cosine [%d] = %v, want %v", i, out[i], want)
		}
	}
	DistancesOneToMany(Dot, q, m, nil, out)
	for i := range out {
		want := -DotProduct(q, m.Row(i))
		if out[i] != want {
			t.Errorf("dot [%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestDistancesManyToManyMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 17
	for _, metric := range []Metric{L2, Cosine, Dot} {
		queries := NewMatrix(7, dim)
		data := NewMatrix(129, dim) // >1 tile to exercise blocking
		for i := 0; i < queries.Rows; i++ {
			for j := 0; j < dim; j++ {
				queries.Row(i)[j] = rng.Float32()*2 - 1
			}
		}
		for i := 0; i < data.Rows; i++ {
			for j := 0; j < dim; j++ {
				data.Row(i)[j] = rng.Float32()*2 - 1
			}
		}
		out := make([]float32, queries.Rows*data.Rows)
		DistancesManyToMany(metric, queries, data, nil, nil, out)
		for qi := 0; qi < queries.Rows; qi++ {
			for di := 0; di < data.Rows; di++ {
				want := Distance(metric, queries.Row(qi), data.Row(di))
				got := out[qi*data.Rows+di]
				if !approxEq(got, want, 1e-3) {
					t.Fatalf("metric %v [%d,%d] = %v, want %v", metric, qi, di, got, want)
				}
			}
		}
	}
}

func TestDistancesManyToManyWithPrecomputedNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dim := 8
	queries := NewMatrix(3, dim)
	data := NewMatrix(5, dim)
	for i := 0; i < queries.Rows; i++ {
		for j := 0; j < dim; j++ {
			queries.Row(i)[j] = rng.Float32()
		}
	}
	for i := 0; i < data.Rows; i++ {
		for j := 0; j < dim; j++ {
			data.Row(i)[j] = rng.Float32()
		}
	}
	qn := queries.Norms(nil)
	rn := data.Norms(nil)
	out := make([]float32, queries.Rows*data.Rows)
	DistancesManyToMany(L2, queries, data, qn, rn, out)
	for qi := 0; qi < queries.Rows; qi++ {
		for di := 0; di < data.Rows; di++ {
			want := L2Squared(queries.Row(qi), data.Row(di))
			if !approxEq(out[qi*data.Rows+di], want, 1e-3) {
				t.Fatalf("[%d,%d] = %v, want %v", qi, di, out[qi*data.Rows+di], want)
			}
		}
	}
}

func TestL2NonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(64)
		a, b := make([]float32, dim), make([]float32, dim)
		for i := range a {
			a[i] = rng.Float32()*200 - 100
			b[i] = a[i] + rng.Float32()*1e-3 // near-identical: cancellation risk
		}
		m := NewMatrix(1, dim)
		m.SetRow(0, b)
		out := make([]float32, 1)
		DistancesOneToMany(L2, a, m, m.Norms(nil), out)
		return out[0] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkL2Squared128(b *testing.B) {
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(i) * 0.5
	}
	b.SetBytes(int64(len(x) * 4 * 2))
	for i := 0; i < b.N; i++ {
		_ = L2Squared(x, y)
	}
}

func BenchmarkDistancesOneToMany128x1000(b *testing.B) {
	dim := 128
	m := NewMatrix(1000, dim)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < dim; j++ {
			m.Row(i)[j] = rng.Float32()
		}
	}
	q := make([]float32, dim)
	norms := m.Norms(nil)
	out := make([]float32, m.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistancesOneToMany(L2, q, m, norms, out)
	}
}
