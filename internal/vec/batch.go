package vec

// This file implements the batched distance kernels used by partition scans
// and multi-query optimization. A partition's vectors are gathered into a
// row-major matrix (the storage blob layout is already row-major float32, so
// gathering is a straight decode) and distances for one or many queries are
// produced in a single call. For L2 the identity
//
//	||q - v||^2 = ||q||^2 + ||v||^2 - 2 q.v
//
// turns the many-to-many case into a blocked matrix multiplication over
// cached norms, which is the same trick the paper uses to hand batches to
// its accelerated linear algebra library.

// Matrix is a dense row-major float32 matrix: Rows vectors of Dim elements.
type Matrix struct {
	Data []float32
	Rows int
	Dim  int
}

// NewMatrix allocates a zeroed Rows x Dim matrix.
func NewMatrix(rows, dim int) *Matrix {
	return &Matrix{Data: make([]float32, rows*dim), Rows: rows, Dim: dim}
}

// Row returns the i'th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Dim : (i+1)*m.Dim]
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float32) {
	copy(m.Row(i), v)
}

// AppendRowBlob decodes a float32 blob directly into the next row.
// The caller tracks the row count; row i must be < Rows.
func (m *Matrix) AppendRowBlob(i int, blob []byte) {
	FromBlob(m.Row(i), blob)
}

// Norms returns the squared L2 norm of every row, appending into dst.
func (m *Matrix) Norms(dst []float32) []float32 {
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		dst = append(dst, DotProduct(r, r))
	}
	return dst
}

// DistancesOneToMany computes metric distances from query q to every row of
// data, writing results into out (which must have length data.Rows).
// rowNorms may be nil; for L2 and Cosine supplying precomputed squared norms
// (L2) or norms implied by normalized rows avoids recomputation.
func DistancesOneToMany(metric Metric, q []float32, data *Matrix, rowNorms []float32, out []float32) {
	switch metric {
	case L2:
		if rowNorms != nil {
			qn := DotProduct(q, q)
			for i := 0; i < data.Rows; i++ {
				d := qn + rowNorms[i] - 2*DotProduct(q, data.Row(i))
				if d < 0 {
					d = 0 // guard tiny negative from fp cancellation
				}
				out[i] = d
			}
			return
		}
		for i := 0; i < data.Rows; i++ {
			out[i] = L2Squared(q, data.Row(i))
		}
	case Cosine:
		for i := 0; i < data.Rows; i++ {
			out[i] = CosineDistance(q, data.Row(i))
		}
	case Dot:
		for i := 0; i < data.Rows; i++ {
			out[i] = -DotProduct(q, data.Row(i))
		}
	default:
		panic("vec: unknown metric")
	}
}

// blockRows is the tile height used by the many-to-many kernel. 64 rows of a
// 128-dim f32 matrix is 32 KiB, sized to stay resident in L1/L2 while a tile
// is reused across all queries.
const blockRows = 64

// DistancesManyToMany computes the full |queries| x |data| distance matrix,
// row-major into out (len >= queries.Rows*data.Rows). Data is processed in
// row tiles so each tile is loaded once and reused across every query — the
// multi-query optimization's compute-sharing step.
//
// queryNorms/rowNorms are optional precomputed squared L2 norms (used for
// the L2 metric); pass nil to compute on the fly.
func DistancesManyToMany(metric Metric, queries, data *Matrix, queryNorms, rowNorms []float32, out []float32) {
	if queries.Dim != data.Dim {
		panic("vec: dimension mismatch")
	}
	nd := data.Rows
	switch metric {
	case L2:
		qn := queryNorms
		if qn == nil {
			qn = queries.Norms(make([]float32, 0, queries.Rows))
		}
		rn := rowNorms
		if rn == nil {
			rn = data.Norms(make([]float32, 0, nd))
		}
		for base := 0; base < nd; base += blockRows {
			end := base + blockRows
			if end > nd {
				end = nd
			}
			for qi := 0; qi < queries.Rows; qi++ {
				qrow := queries.Row(qi)
				orow := out[qi*nd:]
				for di := base; di < end; di++ {
					d := qn[qi] + rn[di] - 2*DotProduct(qrow, data.Row(di))
					if d < 0 {
						d = 0
					}
					orow[di] = d
				}
			}
		}
	case Cosine, Dot:
		for base := 0; base < nd; base += blockRows {
			end := base + blockRows
			if end > nd {
				end = nd
			}
			for qi := 0; qi < queries.Rows; qi++ {
				qrow := queries.Row(qi)
				orow := out[qi*nd:]
				if metric == Cosine {
					for di := base; di < end; di++ {
						orow[di] = CosineDistance(qrow, data.Row(di))
					}
				} else {
					for di := base; di < end; di++ {
						orow[di] = -DotProduct(qrow, data.Row(di))
					}
				}
			}
		}
	default:
		panic("vec: unknown metric")
	}
}
