package workload

import (
	"math"
	"strings"
	"testing"

	"micronn/internal/topk"
	"micronn/internal/vec"
)

func TestRegistryMatchesTable2(t *testing.T) {
	want := map[string]struct {
		dim, n, q int
		metric    vec.Metric
	}{
		"MNIST":     {784, 60_000, 10_000, vec.L2},
		"NYTIMES":   {256, 290_000, 10_000, vec.Cosine},
		"SIFT":      {128, 1_000_000, 10_000, vec.L2},
		"GLOVE":     {200, 1_180_000, 10_000, vec.L2},
		"GIST":      {960, 1_000_000, 1_000, vec.L2},
		"DEEPImage": {96, 10_000_000, 10_000, vec.Cosine},
		"InternalA": {512, 150_000, 1_000, vec.Cosine},
	}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for _, s := range Registry {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected dataset %s", s.Name)
			continue
		}
		if s.Dim != w.dim || s.NumVectors != w.n || s.NumQueries != w.q || s.Metric != w.metric {
			t.Errorf("%s = %+v, want %+v", s.Name, s, w)
		}
	}
	if _, err := ByName("SIFT"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestScaled(t *testing.T) {
	s, _ := ByName("SIFT")
	sc := s.Scaled(0.01)
	if sc.NumVectors != 10_000 || sc.NumQueries != 100 {
		t.Errorf("scaled = %+v", sc)
	}
	tiny := s.Scaled(0.000001)
	if tiny.NumVectors != 1000 || tiny.NumQueries != 20 {
		t.Errorf("floors not applied: %+v", tiny)
	}
	if same := s.Scaled(1); same.NumVectors != s.NumVectors {
		t.Errorf("scale 1 changed the spec")
	}
}

func TestGenerateDeterministicAndShaped(t *testing.T) {
	spec := Spec{Name: "t", Dim: 16, NumVectors: 500, NumQueries: 50, Metric: vec.L2, Seed: 9}
	a := spec.Generate()
	b := spec.Generate()
	if a.Train.Rows != 500 || a.Queries.Rows != 50 || a.Train.Dim != 16 {
		t.Fatalf("shape = %d x %d, queries %d", a.Train.Rows, a.Train.Dim, a.Queries.Rows)
	}
	for i := range a.Train.Data {
		if a.Train.Data[i] != b.Train.Data[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestCosineDatasetsNormalized(t *testing.T) {
	spec := Spec{Name: "t", Dim: 8, NumVectors: 200, NumQueries: 10, Metric: vec.Cosine, Seed: 3}
	ds := spec.Generate()
	for i := 0; i < ds.Train.Rows; i++ {
		if n := vec.Norm(ds.Train.Row(i)); math.Abs(float64(n)-1) > 1e-5 {
			t.Fatalf("row %d norm = %v", i, n)
		}
	}
}

func TestGroundTruthAndRecall(t *testing.T) {
	spec := Spec{Name: "t", Dim: 8, NumVectors: 300, NumQueries: 5, Metric: vec.L2, Seed: 4}
	ds := spec.Generate()
	gt := GroundTruth(vec.L2, ds.Train, ds.Queries, 10)
	if len(gt) != 5 {
		t.Fatalf("gt queries = %d", len(gt))
	}
	for qi, res := range gt {
		if len(res) != 10 {
			t.Fatalf("gt[%d] has %d results", qi, len(res))
		}
		// Results must be sorted ascending and match naive recompute of
		// the nearest distance.
		for i := 1; i < len(res); i++ {
			if res[i].Distance < res[i-1].Distance {
				t.Errorf("gt[%d] unsorted", qi)
			}
		}
		var best float32 = math.MaxFloat32
		for i := 0; i < ds.Train.Rows; i++ {
			if d := vec.L2Squared(ds.Queries.Row(qi), ds.Train.Row(i)); d < best {
				best = d
			}
		}
		// The kernel uses the norms identity, which differs from the
		// direct loop in the last float bits.
		if rel := math.Abs(float64(res[0].Distance-best)) / math.Max(float64(best), 1); rel > 1e-4 {
			t.Errorf("gt[%d] best = %v, naive %v", qi, res[0].Distance, best)
		}
	}

	// Recall of ground truth against itself is 1; against disjoint is 0.
	if r := Recall(gt[0], gt[0]); r != 1 {
		t.Errorf("self recall = %v", r)
	}
	other := []topk.Result{{VectorID: -1}, {VectorID: -2}}
	if r := Recall(other, gt[0]); r != 0 {
		t.Errorf("disjoint recall = %v", r)
	}
	ids := make([]string, len(gt[0]))
	for i, r := range gt[0] {
		ids[i] = r.AssetID
	}
	if r := RecallByID(ids, gt[0]); r != 1 {
		t.Errorf("RecallByID = %v", r)
	}
}

func TestGenerateFiltered(t *testing.T) {
	fd := GenerateFiltered(FilteredSpec{Dim: 8, NumVectors: 2000, NumQueries: 100, Seed: 5})
	if fd.Train.Rows != 2000 || len(fd.Tags) != 2000 || len(fd.QueryTags) != 100 {
		t.Fatalf("shapes: train %d tags %d queries %d", fd.Train.Rows, len(fd.Tags), len(fd.QueryTags))
	}
	for i, bag := range fd.Tags {
		if bag == "" {
			t.Fatalf("vector %d has no tags", i)
		}
	}
	// Zipf skew: the most common tag should cover far more docs than the
	// median tag.
	counts := map[string]int{}
	for _, bag := range fd.Tags {
		for _, tok := range strings.Fields(bag) {
			counts[tok]++
		}
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 200 { // top tag should be common
		t.Errorf("top tag count = %d, want Zipf head", maxCount)
	}
}

func TestTrueSelectivityMatchesBins(t *testing.T) {
	fd := GenerateFiltered(FilteredSpec{Dim: 4, NumVectors: 3000, NumQueries: 200, Seed: 7})
	bins := fd.BinBySelectivity(10, 1)
	if len(bins) < 2 {
		t.Fatalf("bins = %d, want a selectivity spread", len(bins))
	}
	for _, b := range bins {
		if len(b.Queries) == 0 || len(b.Queries) > 10 {
			t.Errorf("bin %d has %d queries", b.Exp, len(b.Queries))
		}
		lo := math.Pow(10, float64(b.Exp))
		hi := math.Pow(10, float64(b.Exp+1))
		for i, qi := range b.Queries {
			s := b.Selectivities[i]
			if s < lo-1e-12 || s >= hi+1e-12 {
				t.Errorf("bin %d query %d selectivity %v outside [%v, %v)", b.Exp, qi, s, lo, hi)
			}
			// Cross-check the fast inverted computation against the
			// naive one.
			if naive := fd.TrueSelectivity(fd.QueryTags[qi]); math.Abs(naive-s) > 1e-12 {
				t.Errorf("selectivity mismatch: %v vs %v", s, naive)
			}
		}
	}
}
