package workload

import (
	"math/rand"
	"sort"
	"strings"

	"micronn/internal/vec"
)

// FilteredSpec describes the Big-ANN-style filtered-search workload used by
// the hybrid-optimizer evaluation (paper §4.3.1): CLIP-like embeddings,
// each carrying a bag of tags drawn from a Zipf distribution, and queries
// that conjoin one or more tags so true selectivities span many orders of
// magnitude.
type FilteredSpec struct {
	Dim        int
	NumVectors int
	NumQueries int
	// Vocab is the tag vocabulary size (default NumVectors/25, min 100).
	Vocab int
	// TagsPerDoc is the mean tag-bag size (default 4).
	TagsPerDoc int
	// ZipfS is the Zipf skew parameter (default 1.2).
	ZipfS float64
	Seed  int64
}

func (s FilteredSpec) fill() FilteredSpec {
	if s.Vocab == 0 {
		s.Vocab = s.NumVectors / 25
		if s.Vocab < 100 {
			s.Vocab = 100
		}
	}
	if s.TagsPerDoc == 0 {
		s.TagsPerDoc = 4
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.2
	}
	return s
}

// FilteredDataset is the generated filtered-search workload.
type FilteredDataset struct {
	Spec FilteredSpec
	// Train vectors with Tags[i] the tag string of vector i.
	Train *vec.Matrix
	Tags  []string
	// Queries with QueryTags[i] the conjunctive tag filter of query i.
	Queries   *vec.Matrix
	QueryTags []string
}

// tagName renders tag rank r as a token.
func tagName(r int) string {
	return "tag" + intToString(r)
}

func intToString(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// GenerateFiltered materializes the workload. Tag frequency follows a Zipf
// law over the vocabulary; query filters combine one or two tags sampled
// from the same law, so popular-tag queries qualify ~10% of the corpus and
// rare-tag conjunctions qualify only a handful of rows — the selectivity
// spectrum Figure 7 sweeps.
func GenerateFiltered(spec FilteredSpec) *FilteredDataset {
	spec = spec.fill()
	base := Spec{
		Name: "BigANN-Filtered", Dim: spec.Dim,
		NumVectors: spec.NumVectors, NumQueries: spec.NumQueries,
		Metric: vec.Cosine, Seed: spec.Seed,
	}
	ds := base.Generate()

	rng := rand.New(rand.NewSource(spec.Seed + 1000))
	zipf := rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Vocab-1))

	tags := make([]string, spec.NumVectors)
	var sb strings.Builder
	for i := range tags {
		n := 1 + rng.Intn(2*spec.TagsPerDoc-1) // mean ≈ TagsPerDoc
		seen := map[uint64]struct{}{}
		sb.Reset()
		for len(seen) < n {
			t := zipf.Uint64()
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(tagName(int(t)))
		}
		tags[i] = sb.String()
	}

	queryTags := make([]string, spec.NumQueries)
	for i := range queryTags {
		if rng.Intn(2) == 0 {
			queryTags[i] = tagName(int(zipf.Uint64()))
		} else {
			a, b := zipf.Uint64(), zipf.Uint64()
			queryTags[i] = tagName(int(a)) + " " + tagName(int(b))
		}
	}
	return &FilteredDataset{
		Spec: spec, Train: ds.Train, Tags: tags,
		Queries: ds.Queries, QueryTags: queryTags,
	}
}

// TrueSelectivity computes the exact fraction of vectors whose tag bag
// contains every token of query (the paper measures true selectivities the
// same way: by executing the filters).
func (fd *FilteredDataset) TrueSelectivity(query string) float64 {
	toks := strings.Fields(query)
	match := 0
	for _, bag := range fd.Tags {
		have := map[string]struct{}{}
		for _, t := range strings.Fields(bag) {
			have[t] = struct{}{}
		}
		ok := true
		for _, q := range toks {
			if _, in := have[q]; !in {
				ok = false
				break
			}
		}
		if ok {
			match++
		}
	}
	return float64(match) / float64(len(fd.Tags))
}

// SelectivityBin groups queries by order of magnitude of true selectivity.
type SelectivityBin struct {
	// Exp is the bin's order of magnitude: selectivity in [10^Exp, 10^(Exp+1)).
	Exp int
	// Queries holds indices into fd.Queries.
	Queries []int
	// Selectivities holds each query's true selectivity factor.
	Selectivities []float64
}

// BinBySelectivity measures every query's true selectivity, bins them by
// order of magnitude and samples up to perBin queries per bin (the paper
// samples 10 per bin). Queries with zero matches are dropped.
func (fd *FilteredDataset) BinBySelectivity(perBin int, seed int64) []SelectivityBin {
	// Precompute tag -> doc count for fast selectivity of 1-2 token
	// queries via inverted counting.
	tagDocs := map[string]map[int]struct{}{}
	for i, bag := range fd.Tags {
		for _, t := range strings.Fields(bag) {
			m, ok := tagDocs[t]
			if !ok {
				m = map[int]struct{}{}
				tagDocs[t] = m
			}
			m[i] = struct{}{}
		}
	}
	selOf := func(query string) float64 {
		toks := strings.Fields(query)
		if len(toks) == 0 {
			return 1
		}
		// Intersect the smallest posting set.
		sets := make([]map[int]struct{}, 0, len(toks))
		for _, t := range toks {
			s, ok := tagDocs[t]
			if !ok {
				return 0
			}
			sets = append(sets, s)
		}
		sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
		n := 0
		for doc := range sets[0] {
			ok := true
			for _, s := range sets[1:] {
				if _, in := s[doc]; !in {
					ok = false
					break
				}
			}
			if ok {
				n++
			}
		}
		return float64(n) / float64(len(fd.Tags))
	}

	byExp := map[int]*SelectivityBin{}
	for qi, qt := range fd.QueryTags {
		sel := selOf(qt)
		if sel == 0 {
			continue
		}
		exp := 0
		for s := sel; s < 1 && exp > -9; s *= 10 {
			exp--
		}
		b, ok := byExp[exp]
		if !ok {
			b = &SelectivityBin{Exp: exp}
			byExp[exp] = b
		}
		b.Queries = append(b.Queries, qi)
		b.Selectivities = append(b.Selectivities, sel)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]SelectivityBin, 0, len(byExp))
	for _, b := range byExp {
		if len(b.Queries) > perBin {
			perm := rng.Perm(len(b.Queries))[:perBin]
			sort.Ints(perm)
			qs := make([]int, perBin)
			ss := make([]float64, perBin)
			for i, p := range perm {
				qs[i] = b.Queries[p]
				ss[i] = b.Selectivities[p]
			}
			b.Queries, b.Selectivities = qs, ss
		}
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Exp < out[j].Exp })
	return out
}
