// Package workload generates the synthetic stand-ins for the paper's
// benchmark datasets (Table 2) and the Big-ANN filtered-search workload
// (Figure 7). The execution environment is offline, so real SIFT/GIST/...
// files are unavailable; each generator matches its dataset's
// dimensionality, cardinality, query count and metric, and draws vectors
// from a seeded Gaussian mixture so that IVF clustering, recall/latency
// trade-offs and partition locality behave like natural data. A --scale
// flag shrinks cardinalities proportionally for time-budgeted runs;
// EXPERIMENTS.md records the scale used for every reported number.
package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"micronn/internal/topk"
	"micronn/internal/vec"
)

// Spec describes a dataset's shape (one row of the paper's Table 2).
type Spec struct {
	Name       string
	Dim        int
	NumVectors int
	NumQueries int
	Metric     vec.Metric
	// Centers is the number of mixture components; defaults to
	// NumVectors/250 (clamped) so clusters are a few hundred wide.
	Centers int
	// Spread is the intra-cluster standard deviation relative to the
	// inter-cluster spread of 10 (default 1.5).
	Spread float64
	Seed   int64
}

// Registry mirrors Table 2 of the paper.
var Registry = []Spec{
	{Name: "MNIST", Dim: 784, NumVectors: 60_000, NumQueries: 10_000, Metric: vec.L2, Seed: 101},
	{Name: "NYTIMES", Dim: 256, NumVectors: 290_000, NumQueries: 10_000, Metric: vec.Cosine, Seed: 102},
	{Name: "SIFT", Dim: 128, NumVectors: 1_000_000, NumQueries: 10_000, Metric: vec.L2, Seed: 103},
	{Name: "GLOVE", Dim: 200, NumVectors: 1_180_000, NumQueries: 10_000, Metric: vec.L2, Seed: 104},
	{Name: "GIST", Dim: 960, NumVectors: 1_000_000, NumQueries: 1_000, Metric: vec.L2, Seed: 105},
	{Name: "DEEPImage", Dim: 96, NumVectors: 10_000_000, NumQueries: 10_000, Metric: vec.Cosine, Seed: 106},
	{Name: "InternalA", Dim: 512, NumVectors: 150_000, NumQueries: 1_000, Metric: vec.Cosine, Seed: 107},
}

// ByName returns the registry spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// Scaled returns a copy with cardinalities multiplied by scale (vector
// count floored at 1000, queries at 20).
func (s Spec) Scaled(scale float64) Spec {
	if scale <= 0 || scale == 1 {
		return s
	}
	out := s
	out.NumVectors = int(float64(s.NumVectors) * scale)
	if out.NumVectors < 1000 {
		out.NumVectors = 1000
	}
	out.NumQueries = int(float64(s.NumQueries) * scale)
	if out.NumQueries < 20 {
		out.NumQueries = 20
	}
	return out
}

func (s Spec) fill() Spec {
	if s.Centers == 0 {
		s.Centers = s.NumVectors / 250
		if s.Centers < 16 {
			s.Centers = 16
		}
		if s.Centers > 4096 {
			s.Centers = 4096
		}
	}
	if s.Spread == 0 {
		s.Spread = 1.5
	}
	return s
}

// Dataset holds generated train and query vectors.
type Dataset struct {
	Spec    Spec
	Train   *vec.Matrix
	Queries *vec.Matrix
}

// Generate materializes the dataset: a seeded Gaussian mixture with
// cluster centers drawn from N(0, 10·I) and points from N(center,
// Spread·I). Queries are drawn from the same mixture (the standard ANN
// benchmark setup where queries resemble the corpus). Cosine-metric
// datasets are normalized to the unit sphere, as embedding vectors are.
func (s Spec) Generate() *Dataset {
	s = s.fill()
	rng := rand.New(rand.NewSource(s.Seed))
	centers := vec.NewMatrix(s.Centers, s.Dim)
	for c := 0; c < s.Centers; c++ {
		row := centers.Row(c)
		for j := range row {
			row[j] = float32(rng.NormFloat64() * 10)
		}
	}
	sample := func(dst []float32, r *rand.Rand) {
		c := centers.Row(r.Intn(s.Centers))
		for j := range dst {
			dst[j] = c[j] + float32(r.NormFloat64()*s.Spread)
		}
		if s.Metric == vec.Cosine {
			vec.Normalize(dst)
		}
	}

	train := vec.NewMatrix(s.NumVectors, s.Dim)
	fillParallel(train, s.Seed+1, sample)
	queries := vec.NewMatrix(s.NumQueries, s.Dim)
	fillParallel(queries, s.Seed+2, sample)
	return &Dataset{Spec: s, Train: train, Queries: queries}
}

// fillParallel generates rows on all cores with per-shard deterministic
// RNGs (generation dominates setup time at million scale otherwise).
func fillParallel(m *vec.Matrix, seed int64, sample func([]float32, *rand.Rand)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m.Rows {
		workers = 1
	}
	var wg sync.WaitGroup
	rowsPer := (m.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m.Rows {
			hi = m.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(w)*7919))
			for i := lo; i < hi; i++ {
				sample(m.Row(i), r)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// GroundTruth computes exact top-k neighbours for every query by parallel
// brute force. Cost is O(queries · vectors · dim); intended for scaled-down
// datasets.
func GroundTruth(metric vec.Metric, train, queries *vec.Matrix, k int) [][]topk.Result {
	out := make([][]topk.Result, queries.Rows)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	qCh := make(chan int, queries.Rows)
	for qi := 0; qi < queries.Rows; qi++ {
		qCh <- qi
	}
	close(qCh)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dists := make([]float32, train.Rows)
			norms := train.Norms(make([]float32, 0, train.Rows))
			for qi := range qCh {
				h := topk.New(k)
				vec.DistancesOneToMany(metric, queries.Row(qi), train, l2Norms(metric, norms), dists)
				for i, d := range dists {
					h.Push(topk.Result{AssetID: AssetID(i), VectorID: int64(i), Distance: d})
				}
				out[qi] = h.Results()
			}
		}()
	}
	wg.Wait()
	return out
}

func l2Norms(m vec.Metric, norms []float32) []float32 {
	if m == vec.L2 {
		return norms
	}
	return nil
}

// AssetID renders the canonical asset id for train row i; generators and
// harnesses share it so ground truth can be compared by id.
func AssetID(i int) string { return fmt.Sprintf("v%08d", i) }

// Recall returns |got ∩ want| / |want| comparing result ids.
func Recall(got, want []topk.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[int64]struct{}, len(want))
	for _, r := range want {
		set[r.VectorID] = struct{}{}
	}
	hit := 0
	for _, r := range got {
		if _, ok := set[r.VectorID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// RecallByID compares by asset id (for results coming through the public
// API, which does not expose internal vector ids).
func RecallByID(gotIDs []string, want []topk.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[string]struct{}, len(want))
	for _, r := range want {
		set[r.AssetID] = struct{}{}
	}
	hit := 0
	for _, id := range gotIDs {
		if _, ok := set[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
