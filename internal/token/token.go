// Package token is the single tokenizer shared by every layer that needs
// one: the fts inverted index, the stats selectivity estimator and the
// MATCH post-filter all tokenize through here, so their notions of "token"
// can never drift apart. It is a leaf package (no intra-repo imports), which
// is what lets both internal/fts and internal/stats depend on it without a
// cycle.
//
// A token is a maximal run of Unicode letters or digits, lowercased with
// unicode.ToLower. Tokenization is therefore unicode-safe and idempotent
// under lowercasing.
package token

import (
	"sort"
	"strings"
	"unicode"
)

// isTokenRune reports whether r belongs inside a token.
func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// forEach streams the tokens of s in order. fn returning false stops the
// iteration early. The per-token string is freshly allocated (tokens are
// lowercased, so they cannot alias s), but no slice or set is built.
func forEach(s string, fn func(tok string) bool) {
	var cur strings.Builder
	for _, r := range s {
		if isTokenRune(r) {
			cur.WriteRune(unicode.ToLower(r))
			continue
		}
		if cur.Len() > 0 {
			if !fn(cur.String()) {
				return
			}
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		fn(cur.String())
	}
}

// Tokenize lowercases s and splits it into maximal letter/digit runs.
func Tokenize(s string) []string {
	var tokens []string
	forEach(s, func(tok string) bool {
		tokens = append(tokens, tok)
		return true
	})
	return tokens
}

// Unique returns the deduplicated, sorted token set of s.
func Unique(s string) []string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return nil
	}
	sort.Strings(toks)
	out := toks[:1]
	for _, t := range toks[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Match reports whether doc contains every token of query (conjunctive
// MATCH semantics). An empty query constrains nothing. One-shot convenience;
// hot paths that evaluate one query against many documents should compile
// the query once with NewMatcher instead.
func Match(doc, query string) bool {
	return NewMatcher(query).Match(doc)
}

// Matcher is a query compiled for repeated conjunctive matching. It holds
// the query's unique token set so per-document evaluation tokenizes only
// the document — no query re-tokenization, no doc-side set construction.
type Matcher struct {
	tokens []string       // sorted unique query tokens
	index  map[string]int // token -> position in tokens
}

// NewMatcher compiles query into a reusable Matcher.
func NewMatcher(query string) *Matcher {
	toks := Unique(query)
	m := &Matcher{tokens: toks}
	if len(toks) > 0 {
		m.index = make(map[string]int, len(toks))
		for i, t := range toks {
			m.index[t] = i
		}
	}
	return m
}

// Tokens returns the compiled query's sorted unique token set. Callers must
// not mutate the returned slice.
func (m *Matcher) Tokens() []string { return m.tokens }

// Match reports whether doc contains every compiled query token. It streams
// doc's tokens once, marking which query tokens have been seen, and stops
// as soon as all are found.
func (m *Matcher) Match(doc string) bool {
	need := len(m.tokens)
	if need == 0 {
		return true
	}
	var seenBits uint64
	var seen []bool
	if need > 64 {
		seen = make([]bool, need)
	}
	found := 0
	forEach(doc, func(tok string) bool {
		i, ok := m.index[tok]
		if !ok {
			return true
		}
		if seen != nil {
			if seen[i] {
				return true
			}
			seen[i] = true
		} else {
			bit := uint64(1) << uint(i)
			if seenBits&bit != 0 {
				return true
			}
			seenBits |= bit
		}
		found++
		return found < need
	})
	return found == need
}
