package token

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"unicode"
)

// naiveTokenize is a slow reference implementation built on the standard
// library's generic splitter: lowercase first, then split on any rune that
// is not a letter or digit. The production tokenizer must agree with it on
// every input (the historical bug was an ASCII-only fast path that silently
// diverged on unicode and digit-adjacent text).
func naiveTokenize(s string) []string {
	lowered := strings.Map(unicode.ToLower, s)
	return strings.FieldsFunc(lowered, func(r rune) bool { return !isTokenRune(r) })
}

var crossCheckCorpus = []string{
	"",
	"   ",
	"hello world",
	"Hello, World!",
	"black-cat_playing!",
	"abc123 456def 789",
	"ÜNïcode Wörds",
	"ÅNGSTRÖM ångström",
	"naïve café résumé",
	"日本語のテキスト分かち書きなし",
	"русский Текст С Кириллицей",
	"Ελληνικά ΚΕΦΑΛΑΙΑ",
	"emoji 😀 between 🎉 tokens",
	"tabs\tand\nnewlines\r\nmixed",
	"punctuation...everywhere!!!,,,;;;",
	"digits0n7he3dge 0leading trailing9",
	"İstanbul DİACRİTİCS", // dotted capital I: ToLower is not ASCII folding
	"ǅungla titlecase ǅ",  // titlecase rune with a distinct lowercase
	"ß already lowercase sharp s",
	"mixed العربية and English",
	"한국어 단어 사이 공백",
	"a",
	"A",
	"1",
	"٣٤٥ arabic-indic digits", // unicode digits outside ASCII
	"ⅦⅧ roman numeral letters",
}

// TestTokenizeCrossCheck pins the tokenizer to the naive reference on a
// corpus that exercises unicode letters, non-ASCII digits, titlecase runes
// and punctuation runs.
func TestTokenizeCrossCheck(t *testing.T) {
	for _, s := range crossCheckCorpus {
		got := Tokenize(s)
		want := naiveTokenize(s)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestTokenizeLowercaseIdempotent(t *testing.T) {
	for _, s := range crossCheckCorpus {
		once := Tokenize(s)
		twice := Tokenize(strings.Join(once, " "))
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("Tokenize(%q) not idempotent: %v then %v", s, once, twice)
		}
	}
}

func TestUnique(t *testing.T) {
	got := Unique("cat dog CAT bird dog")
	want := []string{"bird", "cat", "dog"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Unique = %v, want %v", got, want)
	}
	if Unique("...") != nil {
		t.Error("Unique of token-free input should be nil")
	}
}

// TestMatcherAgreesWithMatch checks the compiled matcher against the
// one-shot path and a naive set-containment oracle across the corpus.
func TestMatcherAgreesWithMatch(t *testing.T) {
	queries := append([]string{"hello", "hello world", "wörds ünïcode", "absent",
		"123 abc123", "", "EMOJI tokens", "ß"}, crossCheckCorpus...)
	for _, doc := range crossCheckCorpus {
		docSet := make(map[string]bool)
		for _, tok := range Tokenize(doc) {
			docSet[tok] = true
		}
		for _, q := range queries {
			want := true
			for _, tok := range Unique(q) {
				if !docSet[tok] {
					want = false
					break
				}
			}
			if got := Match(doc, q); got != want {
				t.Errorf("Match(%q, %q) = %v, want %v", doc, q, got, want)
			}
			if got := NewMatcher(q).Match(doc); got != want {
				t.Errorf("NewMatcher(%q).Match(%q) = %v, want %v", q, doc, got, want)
			}
		}
	}
}

// TestMatcherManyTokens exercises the >64-token fallback path (the seen
// bitmap switches from a uint64 to a slice).
func TestMatcherManyTokens(t *testing.T) {
	var toks []string
	for r := 'a'; r <= 'z'; r++ {
		for r2 := 'a'; r2 <= 'z'; r2++ {
			toks = append(toks, string(r)+string(r2))
		}
	}
	toks = toks[:70]
	query := strings.Join(toks, " ")
	m := NewMatcher(query)
	if !m.Match(query + " extra words") {
		t.Error("70-token query should match a superset doc")
	}
	if m.Match(strings.Join(toks[:69], " ")) {
		t.Error("70-token query must not match a 69-token subset doc")
	}
	// Duplicate doc tokens must not double-count toward the found total.
	if m.Match(strings.Join(toks[:35], " ") + " " + strings.Join(toks[:35], " ")) {
		t.Error("duplicated subset doc must not match")
	}
}

// FuzzTokenize fuzzes the tokenizer invariants: agreement with the naive
// reference, idempotence under lowercasing, Unique being a sorted set, and
// Match agreeing with set containment.
func FuzzTokenize(f *testing.F) {
	for _, s := range crossCheckCorpus {
		f.Add(s)
	}
	f.Add("\x80\xfe invalid utf8 \xc3")
	f.Add(strings.Repeat("löng ", 100))
	f.Fuzz(func(t *testing.T, s string) {
		got := Tokenize(s)
		want := naiveTokenize(s)
		if len(got) != len(want) {
			t.Fatalf("Tokenize(%q): %d tokens, reference %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Tokenize(%q)[%d] = %q, reference %q", s, i, got[i], want[i])
			}
		}
		rejoined := strings.Join(got, " ")
		if !reflect.DeepEqual(Tokenize(rejoined), got) && len(got) > 0 {
			t.Fatalf("Tokenize(%q) not idempotent", s)
		}
		uniq := Unique(s)
		if !sort.StringsAreSorted(uniq) {
			t.Fatalf("Unique(%q) not sorted: %v", s, uniq)
		}
		for i := 1; i < len(uniq); i++ {
			if uniq[i] == uniq[i-1] {
				t.Fatalf("Unique(%q) has duplicate %q", s, uniq[i])
			}
		}
		if !Match(s, s) && len(got) > 0 {
			t.Fatalf("Match(%q, itself) = false", s)
		}
		if !Match(s, "") {
			t.Fatalf("Match(%q, empty) = false", s)
		}
	})
}

// BenchmarkMatchPerRow is the shape of the fixed MATCH post-filter bug: one
// query evaluated against many rows. The compiled matcher tokenizes the
// query once; the one-shot path re-tokenizes (and rebuilds its token map)
// for every row.
func BenchmarkMatchPerRow(b *testing.B) {
	const query = "golden retriever playing fetch outdoors"
	doc := "a golden retriever happily playing fetch with a frisbee outdoors in the park on a sunny afternoon"
	b.Run("recompile-per-row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !Match(doc, query) {
				b.Fatal("should match")
			}
		}
	})
	b.Run("compiled-once", func(b *testing.B) {
		m := NewMatcher(query)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !m.Match(doc) {
				b.Fatal("should match")
			}
		}
	})
}
