package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// Maintenance measures search availability during sustained upserts under
// two maintenance regimes: auto-maintain — the incremental path, where a
// background goroutine flushes the delta and splits/merges partitions and a
// built index is never fully rebuilt — and a full-rebuild-only baseline
// that answers the growth trigger with blocking rebuilds. A searcher
// goroutine runs for the whole insert stream recording per-query latency;
// the table reports its p50/p99, the wall time of the insert stream (full
// rebuilds stall writers, incremental steps do not), the maintenance
// actions taken, and the final partition-size spread against the policy
// bounds. The scenario then verdicts the PR's acceptance criteria: with
// auto-maintain the built index must see zero full rebuilds and end within
// the [min, max] partition-size bounds.
func Maintenance(cfg Config) error {
	cfg.fill()
	cfg.header("Maintenance: search tail latency during sustained upserts")

	spec, err := workload.ByName("InternalA")
	if err != nil {
		return err
	}
	spec = spec.Scaled(cfg.Scale)
	ds := spec.Generate()
	n := ds.Train.Rows
	bootstrap := n / 2
	const target = 100
	minBound, maxBound := target/4, 2*target

	type outcome struct {
		name             string
		streamDur        time.Duration
		lat              latencyStats
		flushes, splits  int64
		merges, rebuilds int64
		minSize, maxSize int64
		partitions       int64
	}
	var outcomes []outcome

	for _, auto := range []bool{true, false} {
		name := "rebuild-only"
		if auto {
			name = "auto-maintain"
		}
		path := filepath.Join(cfg.Dir, "maint-"+name+".mnn")
		os.Remove(path)
		os.Remove(path + "-wal")
		os.Remove(path + ".lock")
		opts := micronn.Options{
			Dim:                 spec.Dim,
			Metric:              spec.Metric,
			TargetPartitionSize: target,
			Seed:                spec.Seed,
		}
		if auto {
			opts.AutoMaintain = true
			opts.MaintainInterval = 10 * time.Millisecond
		}
		db, err := micronn.Open(path, opts)
		if err != nil {
			return err
		}

		insert := func(lo, hi int) error {
			items := make([]micronn.Item, 0, hi-lo)
			for i := lo; i < hi; i++ {
				items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
			}
			return db.UpsertBatch(items)
		}
		if err := insert(0, bootstrap); err != nil {
			db.Close()
			return err
		}
		if _, err := db.Rebuild(); err != nil {
			db.Close()
			return err
		}
		base, err := db.Stats()
		if err != nil {
			db.Close()
			return err
		}

		// Searcher: runs for the whole insert stream, measuring every query.
		var searches atomic.Int64
		stop := make(chan struct{})
		latCh := make(chan []time.Duration, 1)
		errCh := make(chan error, 1)
		go func() {
			var durs []time.Duration
			for i := 0; ; i++ {
				select {
				case <-stop:
					latCh <- durs
					return
				default:
				}
				q := ds.Queries.Row(i % ds.Queries.Rows)
				start := time.Now()
				if _, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8}); err != nil {
					errCh <- err
					latCh <- durs
					return
				}
				durs = append(durs, time.Since(start))
				searches.Add(1)
			}
		}()

		// Sustained upserts; the baseline answers the legacy growth trigger
		// with blocking full rebuilds.
		streamStart := time.Now()
		const chunk = 200
		for lo := bootstrap; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if err := insert(lo, hi); err != nil {
				db.Close()
				return err
			}
			if !auto {
				st, err := db.Stats()
				if err != nil {
					db.Close()
					return err
				}
				if st.NeedsRebuild {
					if _, err := db.Rebuild(); err != nil {
						db.Close()
						return err
					}
				}
			}
		}
		streamDur := time.Since(streamStart)
		// At tiny scales the stream can finish before the searcher gets a
		// single timing in; keep measuring (maintenance is still draining
		// in the auto variant) until the percentiles mean something.
		for deadline := time.Now().Add(2 * time.Second); searches.Load() < 100 && time.Now().Before(deadline); {
			time.Sleep(time.Millisecond)
		}
		close(stop)
		durs := <-latCh
		select {
		case serr := <-errCh:
			db.Close()
			return serr
		default:
		}

		// Drain the backlog so the final state is comparable.
		if auto {
			if _, err := db.Maintain(); err != nil {
				db.Close()
				return err
			}
		}
		st, err := db.Stats()
		if err != nil {
			db.Close()
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		outcomes = append(outcomes, outcome{
			name:       name,
			streamDur:  streamDur,
			lat:        summarize(durs),
			flushes:    st.Maintenance.Flushes - base.Maintenance.Flushes,
			splits:     st.Maintenance.Splits - base.Maintenance.Splits,
			merges:     st.Maintenance.Merges - base.Maintenance.Merges,
			rebuilds:   st.Maintenance.Rebuilds - base.Maintenance.Rebuilds,
			minSize:    st.SmallestPartition,
			maxSize:    st.LargestPartition,
			partitions: st.NumPartitions,
		})
	}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Variant\tStream s\tSearches\tp50 ms\tp99 ms\tFlush\tSplit\tMerge\tRebuild\tParts\tSizes")
	for _, o := range outcomes {
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t[%d, %d]\n",
			o.name, o.streamDur.Seconds(), o.lat.n, ms(o.lat.p50), ms(o.lat.p99),
			o.flushes, o.splits, o.merges, o.rebuilds, o.partitions, o.minSize, o.maxSize)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	autoOut := outcomes[0]
	verdict := func(ok bool, msg string) {
		tag := "OK"
		if !ok {
			tag = "VIOLATION"
		}
		fmt.Fprintf(cfg.Out, "%-9s %s\n", tag+":", msg)
	}
	fmt.Fprintln(cfg.Out)
	verdict(autoOut.rebuilds == 0,
		fmt.Sprintf("auto-maintain ran %d full rebuilds after the initial build (want 0: splits/merges only)", autoOut.rebuilds))
	verdict(autoOut.splits > 0,
		fmt.Sprintf("auto-maintain absorbed growth with %d splits (+%d merges, %d flushes)", autoOut.splits, autoOut.merges, autoOut.flushes))
	verdict(autoOut.minSize >= int64(minBound) && autoOut.maxSize <= int64(maxBound),
		fmt.Sprintf("final partition sizes [%d, %d] within policy bounds [%d, %d]", autoOut.minSize, autoOut.maxSize, minBound, maxBound))
	return nil
}
