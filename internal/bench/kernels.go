package bench

import (
	"fmt"
	"math/rand"
	"time"

	"micronn/internal/quant"
	"micronn/internal/vec"
)

// Kernels micro-benchmarks the hot distance kernels in isolation — float32
// L2, SQ8 asymmetric scans and SQ4 bit-packed LUT scans — and reports code
// throughput in MB/s. This is the per-kernel gate behind the end-to-end
// quantization scenario: the SQ8/SQ4 numbers bound how fast a partition
// scan can possibly go once pages are in memory.
func Kernels(cfg Config) error {
	cfg.fill()
	cfg.header("Kernels: distance-kernel code throughput")

	const (
		dim  = 128
		rows = 256
	)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	train := make([][]float32, 512)
	for i := range train {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		train[i] = v
	}
	q := train[0]

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Kernel\tBytes/row\tMB/s")

	// float32 L2: one query against a rows*dim block.
	block := make([]float32, rows*dim)
	for i := range block {
		block[i] = float32(rng.NormFloat64())
	}
	fout := make([]float32, rows)
	mbs := throughput(rows*dim*4, func() {
		for r := 0; r < rows; r++ {
			fout[r] = vec.L2Squared(q, block[r*dim:(r+1)*dim])
		}
	})
	fmt.Fprintf(tw, "float32 L2\t%d\t%.0f\n", dim*4, mbs)

	for _, k := range []struct {
		name string
		kind quant.Type
		clip float64
	}{
		{"sq8 asymmetric L2", quant.SQ8, 0},
		{"sq4 packed-LUT L2", quant.SQ4, 0.005},
	} {
		tr := quant.NewTrainerKind(k.kind, dim, k.clip)
		for _, v := range train {
			tr.Add(v)
		}
		cb := tr.Codebook()
		cs := cb.CodeSize()
		codes := make([]byte, 0, rows*cs)
		for r := 0; r < rows; r++ {
			codes = cb.Encode(codes, train[r%len(train)])
		}
		qq := cb.NewQuery(vec.L2, q)
		out := make([]float32, rows)
		mbs := throughput(rows*cs, func() { qq.DistancesMany(codes, rows, out) })
		fmt.Fprintf(tw, "%s\t%d\t%.0f\n", k.name, cs, mbs)
	}
	return tw.Flush()
}

// throughput times fn in a calibrated loop and converts bytes-processed per
// call into MB/s (matching testing.B's SetBytes accounting: 1 MB = 1e6 B).
func throughput(bytesPerCall int, fn func()) float64 {
	// Warm up and calibrate the per-call cost.
	fn()
	start := time.Now()
	calls := 0
	for time.Since(start) < 200*time.Millisecond {
		fn()
		calls++
	}
	elapsed := time.Since(start)
	return float64(bytesPerCall) * float64(calls) / 1e6 / elapsed.Seconds()
}
