package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// Hybrid reproduces Figure 7: latency (a) and recall@100 (b) versus true
// predicate selectivity factor for the pre-filter, post-filter and
// optimizer strategies on the Big-ANN-style filtered-search workload. Tags
// are stored as a whitespace-separated string attribute with a full-text
// index; each query is a conjunction of MATCH filters (§4.3.1).
func Hybrid(cfg Config) error {
	cfg.fill()
	cfg.header("Figure 7: hybrid query optimizer effectiveness (filtered search)")

	// The paper uses 10M CLIP vectors, partition size 500, n=40; scaled
	// here with the same proportions.
	numVectors := int(10_000_000 * cfg.Scale)
	if numVectors < 5_000 {
		numVectors = 5_000
	}
	partSize := 500
	nprobe := 40
	// Keep the probe set a comparable fraction of the index when scaled.
	for nprobe*partSize > numVectors/2 && nprobe > 2 {
		nprobe /= 2
	}

	fd := workload.GenerateFiltered(workload.FilteredSpec{
		Dim: 64, NumVectors: numVectors, NumQueries: 400, Seed: 77,
	})
	bins := fd.BinBySelectivity(10, 7)

	path := filepath.Join(cfg.Dir, "fig7.mnn")
	os.Remove(path)
	os.Remove(path + "-wal")
	os.Remove(path + ".lock")
	db, err := micronn.Open(path, micronn.Options{
		Dim:                 fd.Spec.Dim,
		Metric:              micronn.Cosine,
		TargetPartitionSize: partSize,
		Seed:                77,
		Attributes: []micronn.AttributeDef{
			{Name: "tags", Type: micronn.AttrText, FullText: true},
		},
	})
	if err != nil {
		return err
	}
	defer db.Close()

	const chunk = 1000
	items := make([]micronn.Item, 0, chunk)
	for i := 0; i < fd.Train.Rows; i++ {
		items = append(items, micronn.Item{
			ID:         workload.AssetID(i),
			Vector:     fd.Train.Row(i),
			Attributes: map[string]any{"tags": fd.Tags[i]},
		})
		if len(items) == chunk || i == fd.Train.Rows-1 {
			if err := db.UpsertBatch(items); err != nil {
				return err
			}
			items = items[:0]
		}
	}
	if _, err := db.Rebuild(); err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}

	// Ground truth per binned query: exact filtered KNN.
	type binResult struct {
		exp      int
		selMean  float64
		latency  map[micronn.PlanType]time.Duration
		recall   map[micronn.PlanType]float64
		queries  int
		planPick map[micronn.PlanType]int
	}
	plans := []struct {
		name string
		plan micronn.PlanType
	}{
		{"Pre-filter", micronn.PlanPreFilter},
		{"Post-filter", micronn.PlanPostFilter},
		{"Optimizer", micronn.PlanAuto},
	}

	results := make([]binResult, 0, len(bins))
	for _, bin := range bins {
		br := binResult{
			exp:      bin.Exp,
			latency:  map[micronn.PlanType]time.Duration{},
			recall:   map[micronn.PlanType]float64{},
			planPick: map[micronn.PlanType]int{},
		}
		for _, s := range bin.Selectivities {
			br.selMean += s
		}
		br.selMean /= float64(len(bin.Selectivities))

		for _, qi := range bin.Queries {
			q := fd.Queries.Row(qi)
			filters := []micronn.Filter{micronn.Match("tags", fd.QueryTags[qi])}

			// Exact filtered ground truth via the exact-scan plan.
			gtResp, err := db.Search(micronn.SearchRequest{
				Vector: q, K: cfg.K, Filters: filters, Exact: true,
			})
			if err != nil {
				return err
			}
			gtIDs := make(map[string]struct{}, len(gtResp.Results))
			for _, r := range gtResp.Results {
				gtIDs[r.ID] = struct{}{}
			}

			for _, pl := range plans {
				start := time.Now()
				resp, err := db.Search(micronn.SearchRequest{
					Vector: q, K: cfg.K, NProbe: nprobe,
					Filters: filters, Plan: pl.plan,
				})
				if err != nil {
					return err
				}
				br.latency[pl.plan] += time.Since(start)
				if pl.plan == micronn.PlanAuto {
					br.planPick[resp.Plan.Plan]++
				}
				if len(gtIDs) > 0 {
					hit := 0
					for _, r := range resp.Results {
						if _, ok := gtIDs[r.ID]; ok {
							hit++
						}
					}
					br.recall[pl.plan] += float64(hit) / float64(len(gtIDs))
				} else {
					br.recall[pl.plan] += 1
				}
			}
			br.queries++
		}
		results = append(results, br)
	}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Selectivity bin\tmean sel\tqueries\tPre ms\tPost ms\tOpt ms\tPre recall\tPost recall\tOpt recall\tOpt chose")
	for _, br := range results {
		n := float64(br.queries)
		choice := fmt.Sprintf("pre:%d post:%d", br.planPick[micronn.PlanPreFilter], br.planPick[micronn.PlanPostFilter])
		fmt.Fprintf(tw, "1e%d\t%.2g\t%d\t%s\t%s\t%s\t%.2f\t%.2f\t%.2f\t%s\n",
			br.exp, br.selMean, br.queries,
			ms(time.Duration(float64(br.latency[micronn.PlanPreFilter])/n)),
			ms(time.Duration(float64(br.latency[micronn.PlanPostFilter])/n)),
			ms(time.Duration(float64(br.latency[micronn.PlanAuto])/n)),
			br.recall[micronn.PlanPreFilter]/n,
			br.recall[micronn.PlanPostFilter]/n,
			br.recall[micronn.PlanAuto]/n,
			choice)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fIVF := float64(nprobe*partSize) / float64(fd.Train.Rows)
	fmt.Fprintf(cfg.Out, "\nF_IVF = n*p/|R| = %d*%d/%d = %.3g (optimizer crossover point)\n",
		nprobe, partSize, fd.Train.Rows, math.Min(fIVF, 1))
	fmt.Fprintln(cfg.Out, "Shape checks (paper): post-filter fastest but low recall at high selectivity;")
	fmt.Fprintln(cfg.Out, "pre-filter 100% recall, latency grows with qualifying set; optimizer tracks the better of both.")
	return nil
}
