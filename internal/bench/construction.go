package bench

import (
	"fmt"
	"math"
	"os"
	"time"

	"micronn"
	"micronn/internal/clustering"
	"micronn/internal/ivf"
	"micronn/internal/memtrack"
	"micronn/internal/workload"
)

// Construction reproduces Figure 6: index construction time (a) and memory
// usage during construction (b), comparing the InMemory approach (all
// vectors buffered, full-batch k-means) against MicroNN (disk-resident
// mini-batch training). The decisive contrast is the buffered working set:
// InMemory must hold every vector, MicroNN only a mini-batch plus its page
// cache — the "buffered" columns make the asymptotics visible at any
// scale, the "peak" columns report GC-accurate live heap.
func Construction(cfg Config) error {
	cfg.fill()
	cfg.header("Figure 6: index construction time and memory")
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Dataset\tVectors\tInMemory s\tMicroNN s\tInMemory buffered MiB\tMicroNN buffered MiB\tInMemory peak MiB\tMicroNN peak MiB")
	for _, name := range cfg.Datasets {
		spec, err := workload.ByName(name)
		if err != nil {
			return err
		}
		spec = spec.Scaled(cfg.Scale)
		ds := spec.Generate()

		// InMemory: buffer everything, full k-means.
		assets := make([]string, ds.Train.Rows)
		for i := range assets {
			assets[i] = workload.AssetID(i)
		}
		startMem := time.Now()
		memIdx, err := ivf.BuildMemIndex(ivf.MemIndexConfig{
			Metric: spec.Metric, TargetPartitionSize: 100, Seed: spec.Seed,
		}, ds.Train, assets)
		if err != nil {
			return err
		}
		memTime := time.Since(startMem)
		memBuffered := memIdx.MemoryBytes() // the retained index incl. all vectors

		// MicroNN: stream into the DB, then disk-resident mini-batch
		// rebuild under a scaled cache budget.
		p := &prepared{ds: ds}
		device := micronn.DeviceProfile{CacheBytes: scaleCache(micronn.DeviceSmall.CacheBytes, cfg.Scale), Workers: 2}
		db, err := openEmptyDB(cfg, p, device, "fig6-"+name)
		if err != nil {
			return err
		}
		if err := loadVectors(db, ds); err != nil {
			db.Close()
			return err
		}
		// Timing run (no GC interference).
		startDisk := time.Now()
		if _, err := db.Rebuild(); err != nil {
			db.Close()
			return err
		}
		diskTime := time.Since(startDisk)
		// Memory run: rebuild again under the GC-forcing sampler.
		samplerDisk := memtrack.StartGC(25 * time.Millisecond)
		if _, err := db.Rebuild(); err != nil {
			db.Close()
			return err
		}
		diskPeak := samplerDisk.Stop() + device.CacheBytes

		batch := 1024 // mini-batch default
		if batch > ds.Train.Rows {
			batch = ds.Train.Rows
		}
		k := ds.Train.Rows / 100
		if k < 1 {
			k = 1
		}
		diskBuffered := int64(batch+k) * int64(spec.Dim) * 4
		db.Close()

		// InMemory peak equals its buffered set (it is all live).
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%s\t%s\t%s\t%s\n",
			name, ds.Train.Rows,
			memTime.Seconds(), diskTime.Seconds(),
			mib(memBuffered), mib(diskBuffered),
			mib(memBuffered), mib(diskPeak))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "\nShape checks (paper): construction times comparable (compute-bound);")
	fmt.Fprintln(cfg.Out, "MicroNN buffered memory independent of collection size (4x-60x below InMemory")
	fmt.Fprintln(cfg.Out, "at paper scale; the gap widens with -scale).")
	return nil
}

func openEmptyDB(cfg Config, p *prepared, device micronn.DeviceProfile, name string) (*micronn.DB, error) {
	path := cfg.Dir + "/" + name + ".mnn"
	return micronn.Open(path, micronn.Options{
		Dim:    p.ds.Spec.Dim,
		Metric: p.ds.Spec.Metric,
		Device: device,
		Seed:   p.ds.Spec.Seed,
	})
}

func loadVectors(db *micronn.DB, ds *workload.Dataset) error {
	const chunk = 2000
	items := make([]micronn.Item, 0, chunk)
	for i := 0; i < ds.Train.Rows; i++ {
		items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		if len(items) == chunk || i == ds.Train.Rows-1 {
			if err := db.UpsertBatch(items); err != nil {
				return err
			}
			items = items[:0]
		}
	}
	return nil
}

// MiniBatchSweep reproduces Figure 8: the impact of the mini-batch size on
// top-100 recall (a) and construction memory (b), sweeping the batch from
// a small fraction of the training set up to 100% (which degenerates to
// conventional k-means). The nprobe is fixed at the value reaching the
// target recall with the smallest batch, exactly as in §4.3.2.
func MiniBatchSweep(cfg Config) error {
	cfg.fill()
	cfg.header("Figure 8: mini-batch size vs recall and construction memory (InternalA)")
	spec, err := workload.ByName("InternalA")
	if err != nil {
		return err
	}
	// The sweep needs enough vectors for batch-size percentages to be
	// meaningful (0.04% of the collection must exceed a handful of
	// vectors), so this experiment floors the scale at 5%.
	sweepCfg := cfg
	if sweepCfg.Scale < 0.05 {
		sweepCfg.Scale = 0.05
		fmt.Fprintf(cfg.Out, "(scale floored at %.2f for this sweep)\n", sweepCfg.Scale)
	}
	p := sweepCfg.prepare(spec)
	n := p.ds.Train.Rows

	percents := []float64{0.04, 0.17, 0.66, 2.65, 10.61, 100}
	type row struct {
		pct    float64
		batch  int
		recall float64
		mem    int64
	}
	rows := make([]row, 0, len(percents))
	fixedNProbe := 0
	cache := scaleCache(micronn.DeviceSmall.CacheBytes, sweepCfg.Scale)
	for _, pct := range percents {
		batch := int(float64(n) * pct / 100)
		if batch < 8 {
			batch = 8
		}
		if batch > n {
			batch = n
		}
		path := fmt.Sprintf("fig8-%.2f", pct)
		db, err := openEmptyDBWithCluster(sweepCfg, p, path, batch, cache)
		if err != nil {
			return err
		}
		if err := loadVectors(db, p.ds); err != nil {
			db.Close()
			return err
		}
		sampler := memtrack.StartGC(25 * time.Millisecond)
		if _, err := db.Rebuild(); err != nil {
			db.Close()
			return err
		}
		heap := sampler.Stop()

		if fixedNProbe == 0 {
			// Identify nprobe on the smallest batch size and reuse it,
			// keeping the distance-computation budget constant.
			np, _, err := sweepCfg.findNProbe(db, p)
			if err != nil {
				db.Close()
				return err
			}
			fixedNProbe = np
		}
		recall, err := sweepCfg.meanRecallAt(db, p, fixedNProbe)
		db.Close()
		if err != nil {
			return err
		}
		rows = append(rows, row{pct: pct, batch: batch, recall: recall, mem: heap + cache})
	}

	tw := newTable(cfg.Out)
	fmt.Fprintf(tw, "Batch %%\tBatch size\tRecall@%d (nprobe=%d)\tConstruction MiB\n", cfg.K, fixedNProbe)
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%d\t%.3f\t%s\n", r.pct, r.batch, r.recall, mib(r.mem))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "\nShape checks (paper): recall flat (~90%) across batch sizes;")
	fmt.Fprintln(cfg.Out, "memory grows with batch size, with 100% ≈ conventional k-means footprint.")
	return nil
}

func openEmptyDBWithCluster(cfg Config, p *prepared, name string, batch int, cacheBytes int64) (*micronn.DB, error) {
	path := cfg.Dir + "/" + name + ".mnn"
	os.Remove(path)
	os.Remove(path + "-wal")
	os.Remove(path + ".lock")
	return micronn.Open(path, micronn.Options{
		Dim:              p.ds.Spec.Dim,
		Metric:           p.ds.Spec.Metric,
		Device:           micronn.DeviceProfile{CacheBytes: cacheBytes, Workers: 2},
		Seed:             p.ds.Spec.Seed,
		ClusterBatchSize: batch,
	})
}

// AblationBalance quantifies the balance penalty's effect on partition-size
// spread (a design choice DESIGN.md calls out; §3.1's "flexible balance
// constraints").
func AblationBalance(cfg Config) error {
	cfg.fill()
	cfg.header("Ablation: balance penalty vs partition-size spread (SIFT)")
	spec, err := workload.ByName("SIFT")
	if err != nil {
		return err
	}
	spec = spec.Scaled(cfg.Scale)
	ds := spec.Generate()
	src := clustering.MatrixSource{M: ds.Train}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Balance penalty\tPartitions\tMax size\tStddev size")
	for _, penalty := range []float32{1e-9, 0.12, 0.5} {
		res, err := clustering.MiniBatchKMeans(clustering.Config{
			TargetClusterSize: 100,
			BalancePenalty:    penalty,
			Metric:            spec.Metric,
			Seed:              spec.Seed,
		}, src)
		if err != nil {
			return err
		}
		counts := make([]int, res.Centroids.Rows)
		scratch := make([]float32, res.Centroids.Rows)
		for i := 0; i < ds.Train.Rows; i++ {
			counts[clustering.Assign(spec.Metric, res.Centroids, ds.Train.Row(i), scratch)]++
		}
		maxC, mean := 0, float64(ds.Train.Rows)/float64(len(counts))
		var varSum float64
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
			d := float64(c) - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum / float64(len(counts)))
		fmt.Fprintf(tw, "%.2g\t%d\t%d\t%.1f\n", penalty, len(counts), maxC, std)
	}
	return tw.Flush()
}
