package bench

import (
	"fmt"
	"sort"
)

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	Name  string
	Desc  string
	Run   func(Config) error
	Alias []string
}

// Experiments lists every reproducible table and figure.
var Experiments = []Experiment{
	{Name: "table1", Desc: "Table 1: capabilities matrix", Run: Table1},
	{Name: "table2", Desc: "Table 2: dataset characteristics", Run: Table2},
	{Name: "fig4", Desc: "Figures 4+5: end-to-end latency and memory (InMemory vs Warm vs Cold, both DUTs)", Run: EndToEnd, Alias: []string{"fig5"}},
	{Name: "fig6", Desc: "Figure 6: index construction time and memory", Run: Construction},
	{Name: "fig7", Desc: "Figure 7: hybrid optimizer latency/recall vs selectivity", Run: Hybrid},
	{Name: "fig8", Desc: "Figure 8: mini-batch size vs recall and memory", Run: MiniBatchSweep},
	{Name: "fig9", Desc: "Figure 9: multi-query optimization vs batch size", Run: BatchMQO},
	{Name: "fig10", Desc: "Figure 10: full vs incremental rebuild over insertion epochs", Run: Updates},
	{Name: "headline", Desc: "Abstract headline: SIFT top-100 @90% recall under ~10MB", Run: Headline},
	{Name: "ablation-balance", Desc: "Ablation: balance penalty vs partition-size spread", Run: AblationBalance},
	{Name: "ablation-clustering", Desc: "Ablation: clustered vs shuffled partition layout", Run: AblationClustering},
	{Name: "quant", Desc: "Quantization: SQ8/SQ4 scan bytes/throughput/recall vs float32", Run: Quantization, Alias: []string{"sq8", "sq4"}},
	{Name: "kernels", Desc: "Kernels: float32/SQ8/SQ4 distance-kernel MB/s", Run: Kernels, Alias: []string{"kernel"}},
	{Name: "maintenance", Desc: "Maintenance: search tail latency during sustained upserts (auto-maintain vs full rebuild)", Run: Maintenance, Alias: []string{"maint"}},
	{Name: "concurrency", Desc: "Concurrency: search p99 during partition splits vs idle under partition-granular locking", Run: Concurrency, Alias: []string{"locks"}},
	{Name: "shards", Desc: "Sharding: scatter-gather search p50/p99, scanned bytes and recall at 1/2/4/8 shards under concurrent upserts", Run: Shards, Alias: []string{"sharding"}},
	{Name: "backends", Desc: "Backends: cold-start and hot search p50/p99 across file, read-mmap and memory page stores", Run: Backends, Alias: []string{"backend"}},
	{Name: "cache", Desc: "Result cache: Zipfian hot-query p50/p99 and hit ratio, cached vs uncached, with invalidation under upserts", Run: ResultCache, Alias: []string{"rescache"}},
	{Name: "updates", Desc: "Updates: write-storm — group-commit insert throughput vs single-writer, search p50/p99 and recall@10 at 10x/100x insert rates, grouped vs ungrouped", Run: WriteStorm, Alias: []string{"writestorm", "storm"}},
	{Name: "hybrid", Desc: "Hybrid fusion: BM25+vector RRF recall@10 and p50/p99 vs single legs; sharded rankings identical to single-store", Run: HybridFusion, Alias: []string{"fusion"}},
}

// Lookup resolves an experiment by name or alias.
func Lookup(name string) (Experiment, error) {
	for _, e := range Experiments {
		if e.Name == name {
			return e, nil
		}
		for _, a := range e.Alias {
			if a == name {
				return e, nil
			}
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", name)
}

// RunAll executes every experiment in registry order.
func RunAll(cfg Config) error {
	names := make([]string, 0, len(Experiments))
	for _, e := range Experiments {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	for _, e := range Experiments {
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}
