package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// Concurrency measures search availability during partition maintenance,
// the acceptance experiment for partition-granular write locking: with
// splits holding only their own partitions' locks (the store-wide writer
// gate is retained just for the short commit step), a concurrent searcher's
// tail latency during a storm of flushes and splits should look like its
// idle tail latency. The scenario measures the same searcher in two
// windows — idle (no writer at all) and during-splits (a maintenance loop
// flushing the delta and splitting oversized partitions underneath it) —
// and verdicts p99(splits) against 1.5x p99(idle) at unchanged recall@10.
func Concurrency(cfg Config) error {
	cfg.fill()
	cfg.header("Concurrency: search p99 during partition splits vs idle")

	spec, err := workload.ByName("InternalA")
	if err != nil {
		return err
	}
	spec = spec.Scaled(cfg.Scale)
	ds := spec.Generate()
	n := ds.Train.Rows
	bootstrap := n / 2
	const target = 100

	path := filepath.Join(cfg.Dir, "concurrency.mnn")
	os.Remove(path)
	os.Remove(path + "-wal")
	os.Remove(path + ".lock")
	db, err := micronn.Open(path, micronn.Options{
		Dim:                 spec.Dim,
		Metric:              spec.Metric,
		TargetPartitionSize: target,
		Seed:                spec.Seed,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	insert := func(lo, hi int) error {
		items := make([]micronn.Item, 0, hi-lo)
		for i := lo; i < hi; i++ {
			items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		}
		return db.UpsertBatch(items)
	}
	if err := insert(0, bootstrap); err != nil {
		return err
	}
	if _, err := db.Rebuild(); err != nil {
		return err
	}

	// The searcher is paced like an interactive client (closed loop, short
	// think time): an unpaced tight loop saturates the CPU and measures
	// scheduler starvation between the searcher and the maintenance
	// stream, not per-query latency under concurrent splits.
	searchOnce := func(i int) (time.Duration, error) {
		time.Sleep(500 * time.Microsecond)
		q := ds.Queries.Row(i % ds.Queries.Rows)
		start := time.Now()
		_, serr := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8})
		return time.Since(start), serr
	}
	recallNow := func() (float64, error) {
		sample := ds.Queries.Rows
		if sample > 30 {
			sample = 30
		}
		var recall float64
		for i := 0; i < sample; i++ {
			q := ds.Queries.Row(i)
			exact, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, Exact: true})
			if err != nil {
				return 0, err
			}
			got, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8})
			if err != nil {
				return 0, err
			}
			want := make(map[string]bool, len(exact.Results))
			for _, r := range exact.Results {
				want[r.ID] = true
			}
			hits := 0
			for _, r := range got.Results {
				if want[r.ID] {
					hits++
				}
			}
			if len(exact.Results) > 0 {
				recall += float64(hits) / float64(len(exact.Results))
			} else {
				recall += 1
			}
		}
		return recall / float64(sample), nil
	}

	// Idle window: the searcher alone against the built index.
	const idleQueries = 400
	idleDurs := make([]time.Duration, 0, idleQueries)
	for i := 0; i < idleQueries; i++ {
		d, err := searchOnce(i)
		if err != nil {
			return err
		}
		idleDurs = append(idleDurs, d)
	}
	idleRecall, err := recallNow()
	if err != nil {
		return err
	}
	base, err := db.Stats()
	if err != nil {
		return err
	}

	// Split window: a maintenance loop streams the second half of the
	// corpus in chunks, flushing and splitting after each, while the same
	// searcher keeps measuring. With partition-granular locks the k-means
	// heavy split transactions only exclude the searcher from the
	// partitions they rewrite — never from the whole store.
	done := make(chan error, 1)
	go func() {
		const chunk = 100
		for lo := bootstrap; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if err := insert(lo, hi); err != nil {
				done <- err
				return
			}
			if _, err := db.Maintain(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	var splitDurs []time.Duration
	var maintErr error
	deadline := time.Now().Add(2 * time.Second)
windowLoop:
	for i := 0; ; i++ {
		select {
		case maintErr = <-done:
			if maintErr != nil {
				break windowLoop
			}
			// Keep sampling briefly after the stream drains so tiny scales
			// still produce meaningful percentiles.
			if len(splitDurs) >= 100 || time.Now().After(deadline) {
				break windowLoop
			}
			done = nil // drained; fall through to plain sampling
		default:
		}
		d, err := searchOnce(i)
		if err != nil {
			return err
		}
		splitDurs = append(splitDurs, d)
		if done == nil && (len(splitDurs) >= 100 || time.Now().After(deadline)) {
			break
		}
	}
	if maintErr != nil {
		return maintErr
	}

	// Quiesce and take the closing measurements.
	if _, err := db.Maintain(); err != nil {
		return err
	}
	finalRecall, err := recallNow()
	if err != nil {
		return err
	}
	st, err := db.Stats()
	if err != nil {
		return err
	}
	splits := st.Maintenance.Splits - base.Maintenance.Splits
	flushes := st.Maintenance.Flushes - base.Maintenance.Flushes

	idle := summarize(idleDurs)
	storm := summarize(splitDurs)
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Window\tQueries\tp50 ms\tp99 ms\tRecall@10")
	fmt.Fprintf(tw, "idle\t%d\t%s\t%s\t%.4f\n", idle.n, ms(idle.p50), ms(idle.p99), idleRecall)
	fmt.Fprintf(tw, "during-splits\t%d\t%s\t%s\t%.4f\n", storm.n, ms(storm.p50), ms(storm.p99), finalRecall)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nmaintenance during window: %d flushes, %d splits (%d partitions, %d vectors)\n\n",
		flushes, splits, st.NumPartitions, st.NumVectors)

	verdict := func(ok bool, msg string) {
		tag := "OK"
		if !ok {
			tag = "VIOLATION"
		}
		fmt.Fprintf(cfg.Out, "%-9s %s\n", tag+":", msg)
	}
	verdict(splits > 0,
		fmt.Sprintf("the measured window overlapped real maintenance: %d splits, %d flushes", splits, flushes))
	verdict(math.Abs(finalRecall-idleRecall) <= 0.02,
		fmt.Sprintf("recall@10 %.4f after the split storm within 2 points of idle %.4f", finalRecall, idleRecall))
	// The latency criterion needs spare cores: on one or two CPUs the
	// k-means split computation starves the searcher of CPU time, which is
	// scheduler contention, not lock contention — the thing this PR fixed.
	// The small absolute allowance absorbs scheduler noise at tiny scales
	// where idle p99 is tens of microseconds.
	bound := idle.p99 + idle.p99/2
	if slack := 2 * time.Millisecond; bound < idle.p99+slack {
		bound = idle.p99 + slack
	}
	if runtime.GOMAXPROCS(0) >= 4 {
		verdict(storm.p99 <= bound,
			fmt.Sprintf("search p99 during splits %s ms within 1.5x idle %s ms (bound %s ms)",
				ms(storm.p99), ms(idle.p99), ms(bound)))
	} else {
		fmt.Fprintf(cfg.Out, "%-9s p99 during splits %s ms vs idle %s ms (GOMAXPROCS=%d: CPU-contention-free criterion not assessable)\n",
			"NOTE:", ms(storm.p99), ms(idle.p99), runtime.GOMAXPROCS(0))
	}
	return nil
}
