package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"micronn"
	"micronn/internal/storage"
	"micronn/internal/workload"
)

// Backends compares the page-store engines — file, read-mmap, memory — on
// the same dataset, index build and query stream, under a deliberately
// tight buffer-pool budget so the I/O path actually matters. For each
// backend it measures:
//
//   - cold start: caches dropped before every query (the paper's ColdStart
//     scenario — for mmap this still hits the OS page cache, which is the
//     point; for memory there is no cold state at all);
//   - hot p50/p99 over repeated rounds of the sampled queries;
//   - recall@10 against exact search (identical builds must give identical
//     recall — the engines differ in how bytes are read, never in which
//     bytes exist);
//   - the buffer-pool hit ratio, which exposes the backend-aware pool
//     accounting (zero-copy backends bypass the pool for base pages).
//
// Verdicts assert the PR acceptance criteria: recall parity across all
// backends, and read-mmap at least matching the file backend on hot p50.
func Backends(cfg Config) error {
	cfg.fill()
	// The pool-pressure story needs a dataset bigger than the cache
	// budget; below that scale the comparison degenerates into timing
	// noise, so floor the scale for this scenario and say so.
	scale := cfg.Scale
	const minScale = 0.01
	if scale < minScale {
		fmt.Fprintf(cfg.Out, "(backends: raising scale %.4g -> %.4g so the dataset outgrows the pool budget)\n", scale, minScale)
		scale = minScale
	}
	cfg.header("Backends: cold-start and hot latency, file vs read-mmap vs memory")

	spec, err := workload.ByName("InternalA")
	if err != nil {
		return err
	}
	spec = spec.Scaled(scale)
	ds := spec.Generate()

	kinds := []micronn.Backend{micronn.BackendFile}
	if storage.MmapSupported() {
		kinds = append(kinds, micronn.BackendMmap)
	} else {
		fmt.Fprintln(cfg.Out, "NOTE: mmap backend unsupported on this platform; comparing file vs memory only")
	}
	kinds = append(kinds, micronn.BackendMemory)

	type outcome struct {
		name      string
		buildDur  time.Duration
		cold      latencyStats
		hot       latencyStats
		recall    float64
		hitRatio  float64
		poolBytes int64
		fileMiB   float64
	}
	outcomes := make(map[string]outcome)

	sample := cfg.QuerySample
	if sample > ds.Queries.Rows {
		sample = ds.Queries.Rows
	}
	const nprobe = 16

	for _, kind := range kinds {
		name := kind.String()
		path := filepath.Join(cfg.Dir, "backend-"+name+".mnn")
		os.Remove(path)
		os.Remove(path + "-wal")
		os.Remove(path + ".lock")
		// A small cache budget (1 MiB against a multi-MiB dataset) keeps
		// the file backend honest: misses cost a pread, which is exactly
		// the syscall the mmap backend deletes.
		db, err := micronn.Open(path, micronn.Options{
			Dim:     spec.Dim,
			Metric:  spec.Metric,
			Seed:    spec.Seed,
			Backend: kind,
			Device:  micronn.DeviceProfile{CacheBytes: 1 << 20, WriteBufferBytes: 4 << 20, Workers: 1},
		})
		if err != nil {
			return err
		}

		buildStart := time.Now()
		const chunk = 2000
		items := make([]micronn.Item, 0, chunk)
		for i := 0; i < ds.Train.Rows; i++ {
			items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
			if len(items) == chunk || i == ds.Train.Rows-1 {
				if err := db.UpsertBatch(items); err != nil {
					db.Close()
					return err
				}
				items = items[:0]
			}
		}
		if _, err := db.Rebuild(); err != nil {
			db.Close()
			return err
		}
		if err := db.Checkpoint(); err != nil {
			db.Close()
			return err
		}
		buildDur := time.Since(buildStart)

		// Cold start: purge all database caches before every query.
		coldDurs := make([]time.Duration, 0, sample)
		for qi := 0; qi < sample; qi++ {
			db.DropCaches()
			start := time.Now()
			if _, err := db.Search(micronn.SearchRequest{Vector: ds.Queries.Row(qi), K: 10, NProbe: nprobe}); err != nil {
				db.Close()
				return err
			}
			coldDurs = append(coldDurs, time.Since(start))
		}

		// Hot: several rounds over the sample after a warming round.
		const rounds = 5
		hotDurs := make([]time.Duration, 0, rounds*sample)
		for r := 0; r < rounds+1; r++ {
			for qi := 0; qi < sample; qi++ {
				start := time.Now()
				if _, err := db.Search(micronn.SearchRequest{Vector: ds.Queries.Row(qi), K: 10, NProbe: nprobe}); err != nil {
					db.Close()
					return err
				}
				if r > 0 { // round 0 warms
					hotDurs = append(hotDurs, time.Since(start))
				}
			}
		}

		// Recall@10 vs exact search on the same snapshot.
		var recall float64
		for qi := 0; qi < sample; qi++ {
			q := ds.Queries.Row(qi)
			exact, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, Exact: true})
			if err != nil {
				db.Close()
				return err
			}
			approx, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: nprobe})
			if err != nil {
				db.Close()
				return err
			}
			want := make(map[string]bool, len(exact.Results))
			for _, r := range exact.Results {
				want[r.ID] = true
			}
			hits := 0
			for _, r := range approx.Results {
				if want[r.ID] {
					hits++
				}
			}
			if len(exact.Results) > 0 {
				recall += float64(hits) / float64(len(exact.Results))
			}
		}
		recall /= float64(sample)

		st, err := db.Stats()
		if err != nil {
			db.Close()
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		hitRatio := 0.0
		if total := st.CacheHits + st.CacheMisses; total > 0 {
			hitRatio = float64(st.CacheHits) / float64(total)
		}
		outcomes[name] = outcome{
			name:      name,
			buildDur:  buildDur,
			cold:      summarize(coldDurs),
			hot:       summarize(hotDurs),
			recall:    recall,
			hitRatio:  hitRatio,
			poolBytes: st.CacheBytes,
			fileMiB:   float64(st.FileBytes) / (1 << 20),
		}
	}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Backend\tBuild s\tFile MiB\tCold p50 ms\tCold p99 ms\tHot p50 ms\tHot p99 ms\tRecall@10\tPool hit%")
	for _, kind := range kinds {
		o := outcomes[kind.String()]
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\t%s\t%s\t%s\t%s\t%.3f\t%.1f\n",
			o.name, o.buildDur.Seconds(), o.fileMiB,
			ms(o.cold.p50), ms(o.cold.p99), ms(o.hot.p50), ms(o.hot.p99),
			o.recall, 100*o.hitRatio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	verdict := func(ok bool, msg string) {
		tag := "OK"
		if !ok {
			tag = "VIOLATION"
		}
		fmt.Fprintf(cfg.Out, "%-9s %s\n", tag+":", msg)
	}
	fmt.Fprintln(cfg.Out)
	file := outcomes["file"]
	for _, kind := range kinds[1:] {
		o := outcomes[kind.String()]
		verdict(math.Abs(o.recall-file.recall) < 1e-6,
			fmt.Sprintf("%s recall@10 %.4f identical to file %.4f (same bytes, different read path)", o.name, o.recall, file.recall))
	}
	if mm, ok := outcomes["mmap"]; ok {
		// 10% grace absorbs scheduler/GC noise on shared CI runners; at
		// pool-pressure scale mmap wins by ~1.7x, so the margin never
		// masks a real regression of the criterion.
		verdict(mm.hot.p50 <= file.hot.p50+file.hot.p50/10,
			fmt.Sprintf("read-mmap hot p50 %s ms <= file %s ms (within noise) at identical recall", ms(mm.hot.p50), ms(file.hot.p50)))
		fmt.Fprintf(cfg.Out, "%-9s mmap cold p50 %s ms vs file %s ms (mmap \"cold\" still has the OS page cache — the paper's cold-start story)\n",
			"NOTE:", ms(mm.cold.p50), ms(file.cold.p50))
	}
	if mem, ok := outcomes["memory"]; ok {
		fmt.Fprintf(cfg.Out, "%-9s memory hot p50 %s ms, cold p50 %s ms (no cold state to lose)\n",
			"NOTE:", ms(mem.hot.p50), ms(mem.cold.p50))
	}
	return nil
}
