package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// ResultCache measures the generation-versioned query result cache on the
// workload it was built for: a Zipfian stream of repeated queries (the
// type-ahead / repeated-RAG-lookup shape) over a store that keeps
// absorbing upserts. Three phases on one database:
//
//   - uncached: the stream with NoCache — the baseline every cached number
//     is compared against;
//   - cached, read-only: the same stream through the cache — hot repeats
//     are served without scanning;
//   - cached under updates: the same stream with an upsert batch landing
//     every few queries, exercising invalidation and (on a sharded run)
//     partial per-shard reuse; every Nth response is spot-checked
//     byte-identical against a cache-off oracle run.
//
// Verdicts assert the PR acceptance criteria: cached hot p50 at least 5x
// below uncached p50, identical recall@10 (cached responses are replayed
// results, not approximations), a usable hit ratio under the Zipfian
// stream, and zero oracle divergences.
func ResultCache(cfg Config) error {
	cfg.fill()
	scale := cfg.Scale
	const minScale = 0.01
	if scale < minScale {
		fmt.Fprintf(cfg.Out, "(cache: raising scale %.4g -> %.4g so a scan costs enough to cache)\n", scale, minScale)
		scale = minScale
	}
	cfg.header("Result cache: Zipfian repeats, invalidation under upserts")

	spec, err := workload.ByName("InternalA")
	if err != nil {
		return err
	}
	spec = spec.Scaled(scale)
	ds := spec.Generate()

	sample := cfg.QuerySample
	if sample > ds.Queries.Rows {
		sample = ds.Queries.Rows
	}
	const nprobe = 16
	const streamLen = 600

	path := filepath.Join(cfg.Dir, "cache.mnn")
	os.Remove(path)
	os.Remove(path + "-wal")
	os.Remove(path + ".lock")
	db, err := micronn.Open(path, micronn.Options{
		Dim:         spec.Dim,
		Metric:      spec.Metric,
		Seed:        spec.Seed,
		ResultCache: micronn.ResultCacheOptions{Enabled: true},
	})
	if err != nil {
		return err
	}
	defer db.Close()

	const chunk = 2000
	items := make([]micronn.Item, 0, chunk)
	for i := 0; i < ds.Train.Rows; i++ {
		items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		if len(items) == chunk || i == ds.Train.Rows-1 {
			if err := db.UpsertBatch(items); err != nil {
				return err
			}
			items = items[:0]
		}
	}
	if _, err := db.Rebuild(); err != nil {
		return err
	}

	// The Zipfian stream: query ranks drawn so the hottest few queries
	// dominate, replayed identically in every phase.
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(sample-1))
	stream := make([]int, streamLen)
	for i := range stream {
		stream[i] = int(zipf.Uint64())
	}

	runStream := func(noCache bool, updates bool) (latencyStats, int64, error) {
		db.DropCaches() // each phase starts cold (result cache included)
		durs := make([]time.Duration, 0, len(stream))
		var divergences int64
		next := ds.Train.Rows
		for i, qi := range stream {
			if updates && i%20 == 19 {
				batch := make([]micronn.Item, 25)
				for j := range batch {
					batch[j] = micronn.Item{ID: workload.AssetID(next), Vector: ds.Train.Row(next % ds.Train.Rows)}
					next++
				}
				if err := db.UpsertBatch(batch); err != nil {
					return latencyStats{}, 0, err
				}
			}
			req := micronn.SearchRequest{Vector: ds.Queries.Row(qi), K: 10, NProbe: nprobe, NoCache: noCache}
			start := time.Now()
			resp, err := db.Search(req)
			if err != nil {
				return latencyStats{}, 0, err
			}
			durs = append(durs, time.Since(start))
			if !noCache && i%25 == 0 {
				oracle := req
				oracle.NoCache = true
				want, err := db.Search(oracle)
				if err != nil {
					return latencyStats{}, 0, err
				}
				if len(resp.Results) != len(want.Results) {
					divergences++
				} else {
					for r := range resp.Results {
						if resp.Results[r] != want.Results[r] {
							divergences++
							break
						}
					}
				}
			}
		}
		return summarize(durs), divergences, nil
	}

	uncached, _, err := runStream(true, false)
	if err != nil {
		return err
	}
	cachedStart := db.ResultCacheStats()
	cached, _, err := runStream(false, false)
	if err != nil {
		return err
	}
	cachedStats := db.ResultCacheStats()
	hitRatio := ratioSince(cachedStart, cachedStats)

	updStart := db.ResultCacheStats()
	underUpdates, divergences, err := runStream(false, true)
	if err != nil {
		return err
	}
	updStats := db.ResultCacheStats()
	updRatio := ratioSince(updStart, updStats)

	// Recall@10 on the quiesced state: cached and uncached must agree
	// exactly (a cache hit replays the scan's own results).
	var recallCached, recallUncached float64
	for qi := 0; qi < sample; qi++ {
		q := ds.Queries.Row(qi)
		exact, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, Exact: true, NoCache: true})
		if err != nil {
			return err
		}
		want := make(map[string]bool, len(exact.Results))
		for _, r := range exact.Results {
			want[r.ID] = true
		}
		recallOf := func(noCache bool) (float64, error) {
			resp, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: nprobe, NoCache: noCache})
			if err != nil {
				return 0, err
			}
			hits := 0
			for _, r := range resp.Results {
				if want[r.ID] {
					hits++
				}
			}
			if len(exact.Results) == 0 {
				return 0, nil
			}
			return float64(hits) / float64(len(exact.Results)), nil
		}
		ru, err := recallOf(true)
		if err != nil {
			return err
		}
		rc, err := recallOf(false)
		if err != nil {
			return err
		}
		recallUncached += ru
		recallCached += rc
	}
	recallCached /= float64(sample)
	recallUncached /= float64(sample)

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Phase\tp50 ms\tp99 ms\tHit ratio\tRecall@10")
	fmt.Fprintf(tw, "uncached\t%s\t%s\t-\t%.3f\n", ms(uncached.p50), ms(uncached.p99), recallUncached)
	fmt.Fprintf(tw, "cached\t%s\t%s\t%.1f%%\t%.3f\n", ms(cached.p50), ms(cached.p99), 100*hitRatio, recallCached)
	fmt.Fprintf(tw, "cached+upserts\t%s\t%s\t%.1f%%\t-\n", ms(underUpdates.p50), ms(underUpdates.p99), 100*updRatio)
	if err := tw.Flush(); err != nil {
		return err
	}

	verdict := func(ok bool, msg string) {
		tag := "OK"
		if !ok {
			tag = "VIOLATION"
		}
		fmt.Fprintf(cfg.Out, "%-9s %s\n", tag+":", msg)
	}
	fmt.Fprintln(cfg.Out)
	verdict(cached.p50*5 <= uncached.p50,
		fmt.Sprintf("cached hot p50 %s ms >= 5x below uncached %s ms", ms(cached.p50), ms(uncached.p50)))
	verdict(recallCached == recallUncached,
		fmt.Sprintf("recall@10 identical cached vs uncached (%.4f = %.4f): hits replay results, never approximate them", recallCached, recallUncached))
	verdict(hitRatio >= 0.5,
		fmt.Sprintf("hit ratio %.1f%% >= 50%% on the read-only Zipfian stream", 100*hitRatio))
	verdict(divergences == 0,
		fmt.Sprintf("%d oracle divergences under interleaved upserts (cached responses byte-identical to cache-off runs)", divergences))
	fmt.Fprintf(cfg.Out, "%-9s under upserts the hit ratio drops to %.1f%% — every committed batch moves the generation and honestly invalidates\n",
		"NOTE:", 100*updRatio)
	return nil
}

// ratioSince computes the hit ratio of the lookups between two cache-stat
// snapshots.
func ratioSince(before, after micronn.CacheStats) float64 {
	hits := after.Hits - before.Hits
	total := hits + (after.Misses - before.Misses) + (after.Invalidations - before.Invalidations)
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
