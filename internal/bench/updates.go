package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"micronn"
	"micronn/internal/vec"
	"micronn/internal/workload"
)

// Updates reproduces Figure 10: full versus incremental index maintenance
// on a growing InternalA-style collection. The index is bootstrapped with
// 50% of the dataset; each epoch inserts more, measures query latency and
// recall before and after maintenance, and records the maintenance
// duration and database row changes. The incremental variant flushes the
// delta each epoch and answers partition growth with local splits/merges —
// never a full rebuild once built (the PR-2 maintenance planner).
func Updates(cfg Config) error {
	cfg.fill()
	cfg.header("Figure 10: full vs incremental index rebuild (InternalA)")

	spec, err := workload.ByName("InternalA")
	if err != nil {
		return err
	}
	spec = spec.Scaled(cfg.Scale)
	ds := spec.Generate()
	n := ds.Train.Rows
	bootstrap := n / 2
	// Insert 5% of the remaining half per epoch so the 50% partition-size
	// growth threshold fires mid-series (the paper's trigger lands at
	// epoch 10; with exactly 3%/epoch it would fall just past epoch 18).
	perEpoch := (n - bootstrap) * 5 / 100
	if perEpoch < 10 {
		perEpoch = 10
	}
	const epochs = 18
	queryBatch := 128
	if queryBatch > ds.Queries.Rows {
		queryBatch = ds.Queries.Rows
	}
	queries := vec.NewMatrix(queryBatch, spec.Dim)
	for i := 0; i < queryBatch; i++ {
		queries.SetRow(i, ds.Queries.Row(i))
	}
	qVecs := make([][]float32, queryBatch)
	for i := range qVecs {
		qVecs[i] = queries.Row(i)
	}

	type variant struct {
		name        string
		db          *micronn.DB
		incremental bool
	}
	mkDB := func(name string) (*micronn.DB, error) {
		path := filepath.Join(cfg.Dir, "fig10-"+name+".mnn")
		os.Remove(path)
		os.Remove(path + "-wal")
		os.Remove(path + ".lock")
		return micronn.Open(path, micronn.Options{
			Dim:                    spec.Dim,
			Metric:                 spec.Metric,
			TargetPartitionSize:    100,
			RebuildGrowthThreshold: 0.5,
			Seed:                   spec.Seed,
		})
	}
	fullDB, err := mkDB("full")
	if err != nil {
		return err
	}
	defer fullDB.Close()
	incDB, err := mkDB("incremental")
	if err != nil {
		return err
	}
	defer incDB.Close()
	variants := []variant{
		{name: "FullBuild", db: fullDB},
		{name: "IncrementalBuild", db: incDB, incremental: true},
	}

	insert := func(db *micronn.DB, lo, hi int) error {
		items := make([]micronn.Item, 0, hi-lo)
		for i := lo; i < hi; i++ {
			items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		}
		return db.UpsertBatch(items)
	}
	for _, v := range variants {
		if err := insert(v.db, 0, bootstrap); err != nil {
			return err
		}
		if _, err := v.db.Rebuild(); err != nil {
			return err
		}
	}

	// measure runs the query batch against the current corpus prefix and
	// returns amortized per-query latency and mean recall@K.
	measure := func(db *micronn.DB, corpusSize, nprobe int) (time.Duration, float64, error) {
		// Ground truth over the inserted prefix.
		sub := &vec.Matrix{Data: ds.Train.Data[:corpusSize*spec.Dim], Rows: corpusSize, Dim: spec.Dim}
		gt := workload.GroundTruth(spec.Metric, sub, queries, cfg.K)
		start := time.Now()
		resp, err := db.BatchSearch(micronn.BatchSearchRequest{Vectors: qVecs, K: cfg.K, NProbe: nprobe})
		if err != nil {
			return 0, 0, err
		}
		perQuery := time.Since(start) / time.Duration(queryBatch)
		var recall float64
		for qi := range resp.Results {
			ids := make([]string, len(resp.Results[qi]))
			for j, r := range resp.Results[qi] {
				ids[j] = r.ID
			}
			recall += workload.RecallByID(ids, gt[qi])
		}
		return perQuery, recall / float64(queryBatch), nil
	}

	// The paper keeps the number of scanned vectors constant by raising
	// nprobe as partitions grow; nprobeFor solves n from current stats.
	targetScan := 8 * 100 // vectors to scan (nprobe 8 at target size 100)
	nprobeFor := func(db *micronn.DB) (int, error) {
		st, err := db.Stats()
		if err != nil {
			return 0, err
		}
		if st.AvgPartitionSize <= 0 {
			return 8, nil
		}
		np := int(float64(targetScan) / st.AvgPartitionSize)
		if np < 1 {
			np = 1
		}
		if int64(np) > st.NumPartitions {
			np = int(st.NumPartitions)
		}
		return np, nil
	}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Epoch\tVariant\tBefore ms\tBefore recall\tMaint action\tMaint s\tRow changes\tAfter ms\tAfter recall")
	corpus := bootstrap
	for epoch := 1; epoch <= epochs; epoch++ {
		lo, hi := corpus, corpus+perEpoch
		if hi > n {
			hi = n
		}
		for _, v := range variants {
			if err := insert(v.db, lo, hi); err != nil {
				return err
			}
		}
		corpus = hi

		for _, v := range variants {
			np, err := nprobeFor(v.db)
			if err != nil {
				return err
			}
			beforeLat, beforeRec, err := measure(v.db, corpus, np)
			if err != nil {
				return err
			}

			var rep *micronn.MaintenanceReport
			if v.incremental {
				rep, err = v.db.Maintain() // flush, or rebuild at the growth threshold
				if err != nil {
					return err
				}
				if rep.Action == "none" {
					rep, err = v.db.FlushDelta()
					if err != nil {
						return err
					}
					rep.Action = "flush"
				}
			} else {
				rep, err = v.db.Rebuild()
				if err != nil {
					return err
				}
			}

			np, err = nprobeFor(v.db)
			if err != nil {
				return err
			}
			afterLat, afterRec, err := measure(v.db, corpus, np)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.3f\t%s\t%.2f\t%d\t%s\t%.3f\n",
				epoch, v.name,
				ms(beforeLat), beforeRec,
				rep.Action, rep.Duration.Seconds(), rep.RowChanges,
				ms(afterLat), afterRec)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "\nShape checks (paper): latencies comparable across variants (nprobe adjusted);")
	fmt.Fprintln(cfg.Out, "incremental recall stays close to the full-rebuild baseline while its actions")
	fmt.Fprintln(cfg.Out, "are flush/split/merge only; incremental row changes are a small fraction of full.")
	return nil
}
