package bench

import (
	"fmt"
	"math/rand"
	"time"

	"micronn"
	"micronn/internal/storage"
	"micronn/internal/workload"
)

// AblationClustering quantifies the clustered-layout design decision
// (paper §3.2: "a clustered index ensures that the rows of the vector
// table are clustered on disk, giving data locality to vectors in the same
// partition"). It reads the same set of vectors two ways with cold caches:
// as contiguous partition range scans (MicroNN's layout) and as random
// point lookups by vector id (what an unclustered heap layout would
// require), reporting the throughput difference.
func AblationClustering(cfg Config) error {
	cfg.fill()
	cfg.header("Ablation: clustered partition scans vs unclustered point lookups (SIFT)")
	spec, err := workload.ByName("SIFT")
	if err != nil {
		return err
	}
	p := cfg.prepare(spec)
	db, err := cfg.buildDB(p, micronn.DeviceSmall, "ablation-clustering")
	if err != nil {
		return err
	}
	defer db.Close()
	ix := db.InternalIndex()
	store := db.InternalStore()

	var rt *storage.ReadTxn
	newSnapshot := func() error {
		if rt != nil {
			rt.Close()
		}
		var err error
		rt, err = store.BeginRead()
		return err
	}
	if err := newSnapshot(); err != nil {
		return err
	}
	defer func() { rt.Close() }()

	parts, err := ix.PartitionIDs(rt)
	if err != nil {
		return err
	}
	scanParts := len(parts)
	if scanParts > 32 {
		scanParts = 32
	}

	// Clustered: contiguous range scans, cold cache.
	db.DropCaches()
	var vids []int64
	start := time.Now()
	for _, part := range parts[:scanParts] {
		err := ix.ScanPartition(rt, part, func(vid int64, blob []byte) error {
			vids = append(vids, vid)
			return nil
		})
		if err != nil {
			return err
		}
	}
	clustered := time.Since(start)

	// Unclustered: the same rows via random point lookups, cold cache.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(vids), func(i, j int) { vids[i], vids[j] = vids[j], vids[i] })
	db.DropCaches()
	start = time.Now()
	for _, vid := range vids {
		if _, err := ix.FetchVector(rt, vid); err != nil {
			return err
		}
	}
	random := time.Since(start)

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Access pattern\tVectors\tTime ms\tus/vector")
	fmt.Fprintf(tw, "Clustered range scan\t%d\t%s\t%.2f\n",
		len(vids), ms(clustered), float64(clustered.Microseconds())/float64(len(vids)))
	fmt.Fprintf(tw, "Random point lookups\t%d\t%s\t%.2f\n",
		len(vids), ms(random), float64(random.Microseconds())/float64(len(vids)))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nSlowdown without clustering: %.1fx\n", float64(random)/float64(clustered))
	return nil
}
