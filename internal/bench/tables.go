package bench

import (
	"fmt"

	"micronn/internal/workload"
)

// Table1 prints the capabilities matrix (paper Table 1). The MicroNN row
// is not aspirational: every checkmark corresponds to behaviour exercised
// by this repository's test suite (constrained memory: storage buffer-pool
// budget tests; updatability: ivf upsert/delete/flush tests; consistency:
// storage snapshot tests; hybrid: ivf hybrid tests; batch: ivf MQO tests).
func Table1(cfg Config) error {
	cfg.fill()
	fmt.Fprintf(cfg.Out, "\n=== Table 1: capabilities of existing approaches ===\n\n")
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Type\tName\tConstrained memory\tUpdatability\tConsistency\tHybrid queries\tBatch queries")
	rows := [][]string{
		{"LSH", "PLSH", "x", "yes", "yes", "x", "x"},
		{"LSH", "PM-LSH", "x", "yes", "yes", "x", "x"},
		{"LSH", "HD-Index", "yes", "yes", "yes", "x", "x"},
		{"Tree", "kd-tree", "x", "yes", "yes", "x", "x"},
		{"Tree", "Annoy", "yes", "yes", "yes", "x", "x"},
		{"Graph", "HNSWlib", "x", "x", "NA", "x", "x"},
		{"Graph", "DiskANN", "x", "yes", "x", "yes", "x"},
		{"Graph", "ACORN", "x", "x", "NA", "yes", "x"},
		{"Partitioned", "FAISS-IVF", "x", "x", "NA", "yes", "yes"},
		{"Partitioned", "Milvus", "x", "yes", "yes", "yes", "x"},
		{"Partitioned", "SPANN", "yes", "x", "NA", "x", "x"},
		{"Partitioned", "SP-Fresh", "yes", "yes", "yes", "x", "x"},
		{"Partitioned", "MicroNN", "yes", "yes", "yes", "yes", "yes"},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", r[0], r[1], r[2], r[3], r[4], r[5], r[6])
	}
	return tw.Flush()
}

// Table2 prints the dataset characteristics at paper scale and at the
// configured benchmark scale.
func Table2(cfg Config) error {
	cfg.fill()
	fmt.Fprintf(cfg.Out, "\n=== Table 2: datasets used in the evaluation ===\n\n")
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Dataset\tDimension\tVectors\tQueries\tMetric\tVectors@scale\tQueries@scale")
	for _, s := range workload.Registry {
		sc := s.Scaled(cfg.Scale)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%d\t%d\n",
			s.Name, s.Dim, s.NumVectors, s.NumQueries, s.Metric, sc.NumVectors, sc.NumQueries)
	}
	return tw.Flush()
}
