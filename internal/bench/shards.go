package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// Shards measures scatter-gather search under a sustained upsert stream at
// 1/2/4/8 shards against the single-store baseline. Every variant streams
// the same inserts with auto-maintain running (per shard, for the sharded
// variants) while a searcher goroutine times every query and sums its
// scanned bytes; afterwards recall@10 is measured against exact search on
// the final state. The table reports p50/p99 latency, scanned KiB per
// query and recall; the verdicts check the PR acceptance criteria — recall
// parity within 1 point at every shard count, and (on multi-core hosts)
// 4-shard p99 beating the single store under the write storm.
func Shards(cfg Config) error {
	cfg.fill()
	cfg.header("Sharding: scatter-gather search during sustained upserts")

	spec, err := workload.ByName("InternalA")
	if err != nil {
		return err
	}
	spec = spec.Scaled(cfg.Scale)
	ds := spec.Generate()
	n := ds.Train.Rows
	bootstrap := n / 2

	type outcome struct {
		name      string
		streamDur time.Duration
		lat       latencyStats
		bytesPerQ float64
		recall    float64
		parts     int64
	}
	var outcomes []outcome

	variants := []int{0, 1, 2, 4, 8} // 0 = single-store baseline
	for _, shards := range variants {
		name := "single-store"
		if shards > 0 {
			name = fmt.Sprintf("%d-shard", shards)
		}
		opts := micronn.Options{
			Dim:                 spec.Dim,
			Metric:              spec.Metric,
			TargetPartitionSize: 100,
			Seed:                spec.Seed,
			AutoMaintain:        true,
			MaintainInterval:    10 * time.Millisecond,
			Shards:              shards,
		}
		// micronn.Store lets the single-store baseline and every shard
		// count run the identical loop.
		var db micronn.Store
		if shards == 0 {
			path := filepath.Join(cfg.Dir, "shards-single.mnn")
			os.Remove(path)
			os.Remove(path + "-wal")
			os.Remove(path + ".lock")
			db, err = micronn.Open(path, opts)
		} else {
			dir := filepath.Join(cfg.Dir, name+".d")
			os.RemoveAll(dir)
			db, err = micronn.OpenSharded(dir, opts)
		}
		if err != nil {
			return err
		}

		insert := func(lo, hi int) error {
			items := make([]micronn.Item, 0, hi-lo)
			for i := lo; i < hi; i++ {
				items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
			}
			return db.UpsertBatch(items)
		}
		if err := insert(0, bootstrap); err != nil {
			db.Close()
			return err
		}
		if _, err := db.Rebuild(); err != nil {
			db.Close()
			return err
		}

		// Searcher: times every query and sums scanned bytes for the whole
		// insert stream.
		var searches atomic.Int64
		stop := make(chan struct{})
		type searchTotals struct {
			durs  []time.Duration
			bytes int64
		}
		totCh := make(chan searchTotals, 1)
		errCh := make(chan error, 1)
		go func() {
			var tot searchTotals
			for i := 0; ; i++ {
				select {
				case <-stop:
					totCh <- tot
					return
				default:
				}
				q := ds.Queries.Row(i % ds.Queries.Rows)
				start := time.Now()
				resp, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8})
				if err != nil {
					errCh <- err
					totCh <- tot
					return
				}
				tot.durs = append(tot.durs, time.Since(start))
				tot.bytes += resp.Plan.BytesScanned
				searches.Add(1)
			}
		}()

		streamStart := time.Now()
		const chunk = 200
		for lo := bootstrap; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if err := insert(lo, hi); err != nil {
				db.Close()
				return err
			}
		}
		streamDur := time.Since(streamStart)
		for deadline := time.Now().Add(2 * time.Second); searches.Load() < 100 && time.Now().Before(deadline); {
			time.Sleep(time.Millisecond)
		}
		close(stop)
		tot := <-totCh
		select {
		case serr := <-errCh:
			db.Close()
			return serr
		default:
		}

		// Drain the maintenance backlog, then measure recall@10 against
		// exact search on the final state.
		if _, err := db.Maintain(); err != nil {
			db.Close()
			return err
		}
		sample := cfg.QuerySample
		if sample > ds.Queries.Rows {
			sample = ds.Queries.Rows
		}
		var recall float64
		for qi := 0; qi < sample; qi++ {
			q := ds.Queries.Row(qi)
			exact, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, Exact: true})
			if err != nil {
				db.Close()
				return err
			}
			approx, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8})
			if err != nil {
				db.Close()
				return err
			}
			want := make(map[string]bool, len(exact.Results))
			for _, r := range exact.Results {
				want[r.ID] = true
			}
			hits := 0
			for _, r := range approx.Results {
				if want[r.ID] {
					hits++
				}
			}
			if len(exact.Results) > 0 {
				recall += float64(hits) / float64(len(exact.Results))
			}
		}
		recall /= float64(sample)

		st, err := db.Stats()
		if err != nil {
			db.Close()
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		o := outcome{
			name:      name,
			streamDur: streamDur,
			lat:       summarize(tot.durs),
			recall:    recall,
			parts:     st.NumPartitions,
		}
		if len(tot.durs) > 0 {
			o.bytesPerQ = float64(tot.bytes) / float64(len(tot.durs))
		}
		outcomes = append(outcomes, o)
	}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Variant\tStream s\tSearches\tp50 ms\tp99 ms\tKiB/query\tRecall@10\tParts")
	for _, o := range outcomes {
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%s\t%s\t%.1f\t%.3f\t%d\n",
			o.name, o.streamDur.Seconds(), o.lat.n, ms(o.lat.p50), ms(o.lat.p99),
			o.bytesPerQ/1024, o.recall, o.parts)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	verdict := func(ok bool, msg string) {
		tag := "OK"
		if !ok {
			tag = "VIOLATION"
		}
		fmt.Fprintf(cfg.Out, "%-9s %s\n", tag+":", msg)
	}
	fmt.Fprintln(cfg.Out)
	base := outcomes[0]
	for _, o := range outcomes[1:] {
		verdict(o.recall >= base.recall-0.01,
			fmt.Sprintf("%s recall@10 %.3f within 1pt of single-store %.3f", o.name, o.recall, base.recall))
	}
	var shard4 outcome
	for _, o := range outcomes {
		if o.name == "4-shard" {
			shard4 = o
		}
	}
	if runtime.GOMAXPROCS(0) > 1 {
		verdict(shard4.lat.p99 < base.lat.p99,
			fmt.Sprintf("4-shard search p99 %s ms beats single-store %s ms under sustained upserts",
				ms(shard4.lat.p99), ms(base.lat.p99)))
	} else {
		// The scatter phase cannot overlap on one core; report the numbers
		// without judging a parallelism criterion the host cannot express.
		fmt.Fprintf(cfg.Out, "%-9s 4-shard p99 %s ms vs single-store %s ms (GOMAXPROCS=1: multi-core criterion not assessable)\n",
			"NOTE:", ms(shard4.lat.p99), ms(base.lat.p99))
	}
	return nil
}
