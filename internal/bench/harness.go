// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§4). Each experiment is a
// named runner producing aligned text tables; cmd/micronn-bench exposes
// them on the command line and bench_test.go wraps them as testing.B
// benchmarks. Datasets are synthetic (see internal/workload) and scaled by
// Config.Scale; EXPERIMENTS.md records paper-vs-measured shapes.
package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"
	"time"

	"micronn"
	"micronn/internal/topk"
	"micronn/internal/vec"
	"micronn/internal/workload"
)

// Config parameterizes experiment runs.
type Config struct {
	// Out receives the result tables.
	Out io.Writer
	// Dir is the scratch directory for database files (a temp dir is
	// created when empty).
	Dir string
	// Scale shrinks dataset cardinalities (1.0 = paper scale). The
	// default 0.01 keeps the full suite runnable on a laptop in minutes.
	Scale float64
	// Datasets restricts the Table-2 datasets used by multi-dataset
	// experiments; nil means a representative default subset.
	Datasets []string
	// K is the result-list size (the paper reports top-100).
	K int
	// TargetRecall is the recall@K the nprobe search targets (0.9).
	TargetRecall float64
	// QuerySample bounds how many queries are timed per configuration.
	QuerySample int
	// Seed for query sampling.
	Seed int64
}

func (c *Config) fill() {
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"SIFT", "MNIST", "NYTIMES", "InternalA"}
	}
	if c.K == 0 {
		c.K = 100
	}
	if c.TargetRecall == 0 {
		c.TargetRecall = 0.9
	}
	if c.QuerySample == 0 {
		c.QuerySample = 50
	}
	if c.Dir == "" {
		dir, err := os.MkdirTemp("", "micronn-bench-*")
		if err == nil {
			c.Dir = dir
		} else {
			c.Dir = "."
		}
	}
}

// prepared bundles a generated dataset with its ground truth.
type prepared struct {
	ds *workload.Dataset
	gt [][]topk.Result
	// queryIdx are the sampled query indices used for timing.
	queryIdx []int
}

// prepare generates the scaled dataset and ground truth for the sampled
// queries only (ground truth at full query count would dominate runtime).
func (c *Config) prepare(spec workload.Spec) *prepared {
	spec = spec.Scaled(c.Scale)
	ds := spec.Generate()
	n := c.QuerySample
	if n > ds.Queries.Rows {
		n = ds.Queries.Rows
	}
	queryIdx := make([]int, n)
	step := ds.Queries.Rows / n
	if step == 0 {
		step = 1
	}
	for i := range queryIdx {
		queryIdx[i] = (i * step) % ds.Queries.Rows
	}
	sampled := vec.NewMatrix(n, spec.Dim)
	for i, qi := range queryIdx {
		sampled.SetRow(i, ds.Queries.Row(qi))
	}
	gt := workload.GroundTruth(spec.Metric, ds.Train, sampled, c.K)
	return &prepared{ds: ds, gt: gt, queryIdx: queryIdx}
}

// buildDB loads the dataset into a fresh MicroNN database and builds the
// IVF index.
func (c *Config) buildDB(p *prepared, device micronn.DeviceProfile, name string) (*micronn.DB, error) {
	return c.buildDBOpts(p, device, name, nil)
}

// buildDBOpts is buildDB with an optional Options hook (used by scenarios
// that vary create-time settings like quantization).
func (c *Config) buildDBOpts(p *prepared, device micronn.DeviceProfile, name string, tweak func(*micronn.Options)) (*micronn.DB, error) {
	path := filepath.Join(c.Dir, name+".mnn")
	os.Remove(path)
	os.Remove(path + "-wal")
	os.Remove(path + ".lock")
	opts := micronn.Options{
		Dim:    p.ds.Spec.Dim,
		Metric: p.ds.Spec.Metric,
		Device: device,
		Seed:   p.ds.Spec.Seed,
	}
	if tweak != nil {
		tweak(&opts)
	}
	db, err := micronn.Open(path, opts)
	if err != nil {
		return nil, err
	}
	const chunk = 2000
	items := make([]micronn.Item, 0, chunk)
	for i := 0; i < p.ds.Train.Rows; i++ {
		items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: p.ds.Train.Row(i)})
		if len(items) == chunk || i == p.ds.Train.Rows-1 {
			if err := db.UpsertBatch(items); err != nil {
				db.Close()
				return nil, err
			}
			items = items[:0]
		}
	}
	if _, err := db.Rebuild(); err != nil {
		db.Close()
		return nil, err
	}
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// meanRecallAt measures mean recall@K at the given nprobe over the sampled
// queries.
func (c *Config) meanRecallAt(db *micronn.DB, p *prepared, nprobe int) (float64, error) {
	var total float64
	for i, qi := range p.queryIdx {
		resp, err := db.Search(micronn.SearchRequest{
			Vector: p.ds.Queries.Row(qi), K: c.K, NProbe: nprobe,
		})
		if err != nil {
			return 0, err
		}
		ids := make([]string, len(resp.Results))
		for j, r := range resp.Results {
			ids[j] = r.ID
		}
		total += workload.RecallByID(ids, p.gt[i])
	}
	return total / float64(len(p.queryIdx)), nil
}

// findNProbe searches for the smallest probe count reaching TargetRecall,
// mirroring the paper's methodology ("we identify n, the number of IVF
// index partitions to scan to reach a recall of 90% or higher").
func (c *Config) findNProbe(db *micronn.DB, p *prepared) (nprobe int, recall float64, err error) {
	st, err := db.Stats()
	if err != nil {
		return 0, 0, err
	}
	maxProbe := int(st.NumPartitions)
	if maxProbe < 1 {
		maxProbe = 1
	}
	probe := 1
	for {
		r, err := c.meanRecallAt(db, p, probe)
		if err != nil {
			return 0, 0, err
		}
		if r >= c.TargetRecall || probe >= maxProbe {
			// Refine downward: halve-step back to the smallest passing
			// probe between probe/2 and probe.
			lo, hi := probe/2+1, probe
			best, bestRecall := probe, r
			for lo < hi {
				mid := (lo + hi) / 2
				rm, err := c.meanRecallAt(db, p, mid)
				if err != nil {
					return 0, 0, err
				}
				if rm >= c.TargetRecall {
					best, bestRecall = mid, rm
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			return best, bestRecall, nil
		}
		probe *= 2
		if probe > maxProbe {
			probe = maxProbe
		}
	}
}

// latencyStats is a small aggregate of per-query timings.
type latencyStats struct {
	mean, stddev, p50, p99 time.Duration
	n                      int
}

func summarize(durs []time.Duration) latencyStats {
	if len(durs) == 0 {
		return latencyStats{}
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	mean := sum / time.Duration(len(sorted))
	var varSum float64
	for _, d := range sorted {
		diff := float64(d - mean)
		varSum += diff * diff
	}
	std := time.Duration(math.Sqrt(varSum / float64(len(sorted))))
	p99 := sorted[len(sorted)-1]
	if i := int(math.Ceil(0.99*float64(len(sorted)))) - 1; i >= 0 && i < len(sorted) {
		p99 = sorted[i]
	}
	return latencyStats{mean: mean, stddev: std, p50: sorted[len(sorted)/2], p99: p99, n: len(sorted)}
}

// ms renders a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// mib renders bytes in MiB with one decimal.
func mib(b int64) string {
	return fmt.Sprintf("%.1f", float64(b)/(1<<20))
}

// newTable returns a tabwriter for aligned output.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func (c *Config) header(title string) {
	fmt.Fprintf(c.Out, "\n=== %s ===\n", title)
	fmt.Fprintf(c.Out, "(scale=%.4g, K=%d, target recall=%.0f%%)\n\n", c.Scale, c.K, c.TargetRecall*100)
}
