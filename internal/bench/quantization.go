package bench

import (
	"fmt"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// Quantization compares SQ8 and bit-packed SQ4 partition scans against the
// float32 baseline on the same dataset: scanned bytes per query (the
// disk-I/O metric the codes cut 4x and 8x), query throughput, and recall@K
// relative to exact ground truth. It reproduces the scan-byte reduction claimed by "Quantization
// for Vector Search under Streaming Updates" inside MicroNN's
// disk-resident IVF layout.
func Quantization(cfg Config) error {
	// This scenario reports recall@10: with the harness default K=100 the
	// rerank set (RerankFactor*K exact fetches) would rival small scaled
	// collections and measure that degenerate regime instead of the scan.
	if cfg.K == 0 || cfg.K > 10 {
		cfg.K = 10
	}
	cfg.fill()
	cfg.header("Quantization: SQ8/SQ4 codes + exact rerank vs float32 scans")
	spec, err := workload.ByName(cfg.Datasets[0])
	if err != nil {
		return err
	}
	p := cfg.prepare(spec)

	variants := []struct {
		name  string
		quant micronn.Quantization
	}{
		{"float32", micronn.QuantNone},
		{"sq8", micronn.QuantSQ8},
		{"sq4", micronn.QuantSQ4},
	}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Scan encoding\tRecall@K\tMean ms\tQPS\tKiB/query\tReranked/query")
	for _, v := range variants {
		db, err := cfg.buildDBOpts(p, micronn.DeviceLarge, "quant-"+v.name, func(o *micronn.Options) {
			o.Quantization = v.quant
		})
		if err != nil {
			return err
		}
		recall, stats, bytesPerQ, rerankPerQ, err := cfg.measureQuant(db, p)
		db.Close()
		if err != nil {
			return err
		}
		qps := float64(0)
		if stats.mean > 0 {
			qps = float64(time.Second) / float64(stats.mean)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%s\t%.0f\t%.1f\t%.1f\n",
			v.name, recall, ms(stats.mean), qps, bytesPerQ/1024, rerankPerQ)
	}
	return tw.Flush()
}

// measureQuant times the sampled queries and aggregates recall, scan bytes
// and rerank counts.
func (c *Config) measureQuant(db *micronn.DB, p *prepared) (recall float64, stats latencyStats, bytesPerQ, rerankPerQ float64, err error) {
	durs := make([]time.Duration, 0, len(p.queryIdx))
	var totalBytes, totalRerank int64
	for i, qi := range p.queryIdx {
		start := time.Now()
		resp, serr := db.Search(micronn.SearchRequest{
			Vector: p.ds.Queries.Row(qi), K: c.K, NProbe: 8,
		})
		if serr != nil {
			return 0, stats, 0, 0, serr
		}
		durs = append(durs, time.Since(start))
		totalBytes += resp.Plan.BytesScanned
		totalRerank += int64(resp.Plan.Reranked)
		ids := make([]string, len(resp.Results))
		for j, r := range resp.Results {
			ids[j] = r.ID
		}
		recall += workload.RecallByID(ids, p.gt[i])
	}
	n := float64(len(p.queryIdx))
	return recall / n, summarize(durs), float64(totalBytes) / n, float64(totalRerank) / n, nil
}
