package bench

import (
	"fmt"
	"time"

	"micronn"
	"micronn/internal/ivf"
	"micronn/internal/workload"
)

// endToEndRow holds one dataset's Figure 4/5 measurements for one device.
type endToEndRow struct {
	dataset   string
	nprobe    int
	recall    float64
	inMemory  latencyStats
	warmCache latencyStats
	coldStart latencyStats
	memInMem  int64 // InMemory index resident bytes
	memDisk   int64 // MicroNN cache budget + measured heap during queries
}

// scaleCache shrinks a device cache budget with the dataset scale so the
// dataset-to-cache ratio matches the paper's setting (floored at 1 MiB so
// the page store stays functional).
func scaleCache(full int64, scale float64) int64 {
	b := int64(float64(full) * scale)
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

// EndToEnd reproduces Figures 4 (query latency at 90% recall@100 for
// InMemory / MicroNN-WarmCache / MicroNN-ColdStart) and 5 (memory during
// query processing) on both device profiles. Cache budgets scale with the
// dataset so the memory contrast matches the paper's regime.
func EndToEnd(cfg Config) error {
	cfg.fill()
	for _, device := range []struct {
		name    string
		profile micronn.DeviceProfile
	}{
		{"Large DUT", micronn.DeviceProfile{CacheBytes: scaleCache(micronn.DeviceLarge.CacheBytes, cfg.Scale), Workers: 0}},
		{"Small DUT", micronn.DeviceProfile{CacheBytes: scaleCache(micronn.DeviceSmall.CacheBytes, cfg.Scale), Workers: 2}},
	} {
		cfg.header(fmt.Sprintf("Figures 4 & 5: end-to-end latency and memory — %s (cache %s MiB)",
			device.name, mib(device.profile.CacheBytes)))
		rows := make([]endToEndRow, 0, len(cfg.Datasets))
		for _, name := range cfg.Datasets {
			spec, err := workload.ByName(name)
			if err != nil {
				return err
			}
			row, err := cfg.endToEndDataset(spec, device.profile)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			rows = append(rows, *row)
		}

		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "Dataset\tnprobe\trecall@100\tInMemory ms\tWarmCache ms\tColdStart ms\tInMemory MiB\tMicroNN MiB")
		for _, r := range rows {
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%s ±%s\t%s ±%s\t%s ±%s\t%s\t%s\n",
				r.dataset, r.nprobe, r.recall,
				ms(r.inMemory.mean), ms(r.inMemory.stddev),
				ms(r.warmCache.mean), ms(r.warmCache.stddev),
				ms(r.coldStart.mean), ms(r.coldStart.stddev),
				mib(r.memInMem), mib(r.memDisk))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintln(cfg.Out, "\nShape checks (paper): ColdStart ≈ 10x WarmCache; WarmCache within small factor of InMemory;")
	fmt.Fprintln(cfg.Out, "MicroNN memory 1-2 orders of magnitude below InMemory.")
	return nil
}

func (c *Config) endToEndDataset(spec workload.Spec, device micronn.DeviceProfile) (*endToEndRow, error) {
	p := c.prepare(spec)
	row := &endToEndRow{dataset: spec.Name}

	// --- InMemory baseline ---
	assets := make([]string, p.ds.Train.Rows)
	for i := range assets {
		assets[i] = workload.AssetID(i)
	}
	mem, err := ivf.BuildMemIndex(ivf.MemIndexConfig{
		Metric:              spec.Metric,
		TargetPartitionSize: 100,
		Workers:             device.Workers,
		Seed:                spec.Seed,
	}, p.ds.Train, assets)
	if err != nil {
		return nil, err
	}
	row.memInMem = mem.MemoryBytes()

	// --- MicroNN disk index ---
	db, err := c.buildDB(p, device, "e2e-"+spec.Name)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	nprobe, recall, err := c.findNProbe(db, p)
	if err != nil {
		return nil, err
	}
	row.nprobe, row.recall = nprobe, recall

	// InMemory latency at the same nprobe.
	inMemDurs := make([]time.Duration, 0, len(p.queryIdx))
	for _, qi := range p.queryIdx {
		start := time.Now()
		if _, err := mem.Search(p.ds.Queries.Row(qi), c.K, nprobe); err != nil {
			return nil, err
		}
		inMemDurs = append(inMemDurs, time.Since(start))
	}
	row.inMemory = summarize(inMemDurs)

	// WarmCache: one warmup pass, then a timed pass.
	for _, qi := range p.queryIdx {
		if _, err := db.Search(micronn.SearchRequest{Vector: p.ds.Queries.Row(qi), K: c.K, NProbe: nprobe}); err != nil {
			return nil, err
		}
	}
	warmDurs := make([]time.Duration, 0, len(p.queryIdx))
	for _, qi := range p.queryIdx {
		start := time.Now()
		if _, err := db.Search(micronn.SearchRequest{Vector: p.ds.Queries.Row(qi), K: c.K, NProbe: nprobe}); err != nil {
			return nil, err
		}
		warmDurs = append(warmDurs, time.Since(start))
	}
	row.warmCache = summarize(warmDurs)
	st, err := db.Stats()
	if err != nil {
		return nil, err
	}
	// MicroNN query memory = page cache in use + cached centroids + the
	// pooled scan working set. (Transient GC garbage is excluded: it is
	// an artifact of the Go runtime, not of the algorithm, and the
	// paper's C-runtime RSS would not retain it either.)
	centroidBytes := st.NumPartitions * int64(spec.Dim) * 4
	scanBytes := int64(device.Workers+1) * 256 * int64(spec.Dim) * 4
	row.memDisk = st.CacheBytes + centroidBytes + scanBytes

	// ColdStart: drop all caches before each measured query (the paper
	// purges cached disk pages and measures a single query; we repeat
	// over sampled queries and report the mean).
	coldN := len(p.queryIdx)
	if coldN > 15 {
		coldN = 15 // cold queries are expensive; a sample suffices
	}
	coldDurs := make([]time.Duration, 0, coldN)
	for _, qi := range p.queryIdx[:coldN] {
		db.DropCaches()
		start := time.Now()
		if _, err := db.Search(micronn.SearchRequest{Vector: p.ds.Queries.Row(qi), K: c.K, NProbe: nprobe}); err != nil {
			return nil, err
		}
		coldDurs = append(coldDurs, time.Since(start))
	}
	row.coldStart = summarize(coldDurs)
	return row, nil
}

// Headline reproduces the abstract's headline claim: top-100 ANN search at
// 90% recall on a million-scale benchmark (SIFT) in single-digit
// milliseconds with ≈10 MB of memory. At reduced scale the latency shrinks
// with the collection; the memory bound is what the experiment verifies.
func Headline(cfg Config) error {
	cfg.fill()
	cfg.header("Headline: SIFT top-100 @ 90% recall under a ~10 MB budget")
	spec, err := workload.ByName("SIFT")
	if err != nil {
		return err
	}
	p := cfg.prepare(spec)
	device := micronn.DeviceProfile{CacheBytes: scaleCache(10<<20, cfg.Scale), Workers: 0}
	db, err := cfg.buildDB(p, device, "headline")
	if err != nil {
		return err
	}
	defer db.Close()
	nprobe, recall, err := cfg.findNProbe(db, p)
	if err != nil {
		return err
	}
	// Warm pass then timed pass.
	for _, qi := range p.queryIdx {
		if _, err := db.Search(micronn.SearchRequest{Vector: p.ds.Queries.Row(qi), K: cfg.K, NProbe: nprobe}); err != nil {
			return err
		}
	}
	durs := make([]time.Duration, 0, len(p.queryIdx))
	for _, qi := range p.queryIdx {
		start := time.Now()
		if _, err := db.Search(micronn.SearchRequest{Vector: p.ds.Queries.Row(qi), K: cfg.K, NProbe: nprobe}); err != nil {
			return err
		}
		durs = append(durs, time.Since(start))
	}
	st, err := db.Stats()
	if err != nil {
		return err
	}
	lat := summarize(durs)
	fmt.Fprintf(cfg.Out, "vectors=%d dim=%d nprobe=%d recall@%d=%.3f\n",
		p.ds.Train.Rows, spec.Dim, nprobe, cfg.K, recall)
	fmt.Fprintf(cfg.Out, "mean latency %s ms (p50 %s ms), page cache %s MiB (budget %s MiB)\n",
		ms(lat.mean), ms(lat.p50), mib(st.CacheBytes), mib(st.CacheBudget))
	fmt.Fprintf(cfg.Out, "paper: <7 ms, ≈10 MB at 1M vectors\n")
	return nil
}
