package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// tinyConfig keeps runner smoke tests fast: floor-sized datasets, few
// queries.
func tinyConfig(t *testing.T, out *bytes.Buffer) Config {
	t.Helper()
	return Config{
		Out:         out,
		Dir:         t.TempDir(),
		Scale:       0.0005,
		Datasets:    []string{"MNIST"},
		K:           10,
		QuerySample: 5,
	}
}

func TestTable1PrintsMicroNNRow(t *testing.T) {
	var out bytes.Buffer
	if err := Table1(tinyConfig(t, &out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "MicroNN") || !strings.Contains(s, "Batch queries") {
		t.Errorf("table 1 output missing rows:\n%s", s)
	}
}

func TestTable2ListsAllDatasets(t *testing.T) {
	var out bytes.Buffer
	if err := Table2(tinyConfig(t, &out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, name := range []string{"SIFT", "MNIST", "GIST", "DEEPImage", "InternalA", "GLOVE", "NYTIMES"} {
		if !strings.Contains(s, name) {
			t.Errorf("table 2 missing %s", name)
		}
	}
}

func TestLookupAndRegistry(t *testing.T) {
	for _, e := range Experiments {
		got, err := Lookup(e.Name)
		if err != nil || got.Name != e.Name {
			t.Errorf("Lookup(%s) = %v, %v", e.Name, got.Name, err)
		}
	}
	if e, err := Lookup("fig5"); err != nil || e.Name != "fig4" {
		t.Errorf("alias fig5 -> %v, %v", e.Name, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) should fail")
	}
}

func TestEndToEndRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	var out bytes.Buffer
	if err := EndToEnd(tinyConfig(t, &out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "WarmCache") || !strings.Contains(s, "MNIST") {
		t.Errorf("unexpected fig4 output:\n%s", s)
	}
}

func TestBatchMQORunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	var out bytes.Buffer
	if err := BatchMQO(tinyConfig(t, &out)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Amortized") {
		t.Errorf("unexpected fig9 output:\n%s", out.String())
	}
}

func TestFindNProbeReachesTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment helper")
	}
	var out bytes.Buffer
	cfg := tinyConfig(t, &out)
	cfg.fill()
	spec, err := workload.ByName("MNIST")
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.prepare(spec)
	db, err := cfg.buildDB(p, micronn.DeviceSmall, "nprobe-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	nprobe, recall, err := cfg.findNProbe(db, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if recall < cfg.TargetRecall && nprobe < int(st.NumPartitions) {
		t.Errorf("nprobe=%d recall=%v below target without exhausting partitions", nprobe, recall)
	}
	if recall <= 0 || recall > 1 {
		t.Errorf("recall = %v", recall)
	}
}

func TestSummarize(t *testing.T) {
	if s := summarize(nil); s.n != 0 {
		t.Errorf("empty summarize n = %d", s.n)
	}
	durs := []time.Duration{5 * time.Millisecond, time.Millisecond, 3 * time.Millisecond}
	s := summarize(durs)
	if s.n != 3 || s.mean != 3*time.Millisecond || s.p50 != 3*time.Millisecond {
		t.Errorf("summarize = %+v", s)
	}
	if s.stddev <= 0 {
		t.Errorf("stddev = %v", s.stddev)
	}
}

func TestQuantizationRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	var out bytes.Buffer
	if err := Quantization(tinyConfig(t, &out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "float32") || !strings.Contains(s, "sq8") {
		t.Errorf("unexpected quant output:\n%s", s)
	}
}

// TestMaintenanceRunnerSmoke runs the maintenance scenario at tiny scale
// and asserts the acceptance criteria it prints: sustained upserts under
// auto-maintain never full-rebuild a built index, and final partition sizes
// stay within the policy bounds.
func TestMaintenanceRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	var out bytes.Buffer
	cfg := tinyConfig(t, &out)
	cfg.Scale = 0.002 // enough stream volume to force splits
	if err := Maintenance(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "auto-maintain") || !strings.Contains(s, "rebuild-only") {
		t.Errorf("missing variants:\n%s", s)
	}
	if strings.Contains(s, "VIOLATION") {
		t.Errorf("maintenance scenario reported a violation:\n%s", s)
	}
}

// TestConcurrencyRunnerSmoke runs the concurrency scenario at tiny scale
// and asserts the acceptance criteria it prints: the measured window
// overlaps real splits and recall@10 holds steady (the p99 criterion is
// judged only on hosts with enough cores that the k-means split work does
// not starve the searcher of CPU time).
func TestConcurrencyRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	var out bytes.Buffer
	cfg := tinyConfig(t, &out)
	cfg.Scale = 0.002 // enough stream volume to force splits
	if err := Concurrency(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"idle", "during-splits", "splits"} {
		if !strings.Contains(s, want) {
			t.Errorf("concurrency output missing %s:\n%s", want, s)
		}
	}
	if strings.Contains(s, "VIOLATION") {
		t.Errorf("concurrency scenario reported a violation:\n%s", s)
	}
}

// TestShardsRunnerSmoke runs the sharding scenario at tiny scale and
// asserts the acceptance criteria it prints: recall@10 parity within 1
// point of the single store at every shard count (the p99 criterion is
// judged only on multi-core hosts, where the scatter can actually overlap).
func TestShardsRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	var out bytes.Buffer
	cfg := tinyConfig(t, &out)
	cfg.Scale = 0.002
	cfg.QuerySample = 10
	if err := Shards(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"single-store", "1-shard", "2-shard", "4-shard", "8-shard"} {
		if !strings.Contains(s, want) {
			t.Errorf("shards output missing %s:\n%s", want, s)
		}
	}
	if strings.Contains(s, "VIOLATION") {
		t.Errorf("shards scenario reported a violation:\n%s", s)
	}
}

// TestBackendsRunnerSmoke runs the backends scenario and asserts the
// acceptance criteria it prints: recall parity across engines and
// read-mmap at least matching the file backend on hot p50.
func TestBackendsRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	var out bytes.Buffer
	cfg := tinyConfig(t, &out)
	cfg.QuerySample = 15
	if err := Backends(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"file", "memory", "Hot p50"} {
		if !strings.Contains(s, want) {
			t.Errorf("backends output missing %s:\n%s", want, s)
		}
	}
	if strings.Contains(s, "VIOLATION") {
		t.Errorf("backends scenario reported a violation:\n%s", s)
	}
}

// TestWriteStormRunnerSmoke runs the write-storm scenario at tiny scale
// and asserts the acceptance criteria it prints: the committer actually
// grouped concurrent writers, recall@10 holds through the storms, and (on
// hosts with spare cores) grouped throughput and storm-window p99 meet
// their bounds.
func TestWriteStormRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	var out bytes.Buffer
	cfg := tinyConfig(t, &out)
	cfg.Scale = 0.002
	if err := WriteStorm(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"single-writer", "ungrouped", "grouped", "10x storm", "100x storm"} {
		if !strings.Contains(s, want) {
			t.Errorf("write-storm output missing %s:\n%s", want, s)
		}
	}
	if strings.Contains(s, "VIOLATION") {
		t.Errorf("write-storm scenario reported a violation:\n%s", s)
	}
}

// TestQuantizationScanBytesReduction asserts the acceptance criterion at
// the bench layer: on the same dataset and probe settings, SQ8 scans at
// least 2x fewer bytes than float32 while keeping recall@K within 95% of
// the baseline.
func TestQuantizationScanBytesReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	var out bytes.Buffer
	cfg := tinyConfig(t, &out)
	cfg.QuerySample = 10
	cfg.fill()
	spec, err := workload.ByName("MNIST")
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.prepare(spec)

	type measured struct {
		recall   float64
		bytesPer float64
	}
	run := func(q micronn.Quantization, name string) measured {
		db, err := cfg.buildDBOpts(p, micronn.DeviceLarge, name, func(o *micronn.Options) {
			o.Quantization = q
		})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		recall, _, bytesPer, _, err := cfg.measureQuant(db, p)
		if err != nil {
			t.Fatal(err)
		}
		return measured{recall, bytesPer}
	}
	f32 := run(micronn.QuantNone, "bytes-f32")
	sq8 := run(micronn.QuantSQ8, "bytes-sq8")
	t.Logf("float32: recall=%.4f bytes/q=%.0f; sq8: recall=%.4f bytes/q=%.0f (%.2fx)",
		f32.recall, f32.bytesPer, sq8.recall, sq8.bytesPer, f32.bytesPer/sq8.bytesPer)
	if sq8.bytesPer*2 > f32.bytesPer {
		t.Errorf("sq8 scanned %.0f bytes/query, not a 2x reduction over %.0f", sq8.bytesPer, f32.bytesPer)
	}
	if sq8.recall < 0.95*f32.recall {
		t.Errorf("sq8 recall %.4f below 95%% of float32 %.4f", sq8.recall, f32.recall)
	}
}
