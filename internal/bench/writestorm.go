package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// WriteStorm is the acceptance scenario for LSM-shaped ingest: memtable
// group commit in front of the WAL'd delta store. It measures two things.
//
// First, insert throughput: the same 8-writer upsert storm is driven
// through the grouped path (LSMIngest: writers batched into shared
// transactions by the committer) and the ungrouped path (every Upsert its
// own transaction through the writer gate), plus a sequential single-writer
// baseline. The tentpole criterion is grouped throughput at least 3x the
// single-writer baseline.
//
// Second, search availability under sustained ingest: a paced searcher
// measures p50/p99 and recall@10 idle, then during insert storms at 10x and
// 100x a base trickle rate, on both variants. The criterion is grouped
// search p99 within 1.5x idle at recall within 1 point — searches keep
// their latency while the memtable absorbs the storm.
func WriteStorm(cfg Config) error {
	cfg.fill()
	cfg.header("Updates: write-storm search tail and group-commit throughput")

	spec, err := workload.ByName("InternalA")
	if err != nil {
		return err
	}
	spec = spec.Scaled(cfg.Scale)
	ds := spec.Generate()
	n := ds.Train.Rows
	bootstrap := n / 2

	mkDB := func(name string, lsm bool) (*micronn.DB, error) {
		path := filepath.Join(cfg.Dir, "storm-"+name+".mnn")
		os.Remove(path)
		os.Remove(path + "-wal")
		os.Remove(path + ".lock")
		db, err := micronn.Open(path, micronn.Options{
			Dim:                 spec.Dim,
			Metric:              spec.Metric,
			TargetPartitionSize: 100,
			Seed:                spec.Seed,
			LSMIngest:           lsm,
			// A small memtable makes the storm exercise the whole LSM
			// machinery — seals, sorted runs, compaction — not just the
			// group commit at its front.
			MemtableMaxItems: 512,
		})
		if err != nil {
			return nil, err
		}
		items := make([]micronn.Item, 0, bootstrap)
		for i := 0; i < bootstrap; i++ {
			items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		}
		if err := db.UpsertBatch(items); err != nil {
			db.Close()
			return nil, err
		}
		if _, err := db.Rebuild(); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}
	row := func(i int) []float32 { return ds.Train.Row(i % n) }

	// --- Phase 1: insert throughput, 8 concurrent writers ---
	stormN := n - bootstrap
	if stormN > 4000 {
		stormN = 4000
	}
	if stormN < 400 {
		stormN = 400
	}
	const writers = 8
	concurrent := func(db *micronn.DB, tag string) (float64, error) {
		var wg sync.WaitGroup
		errs := make([]error, writers)
		per := stormN / writers
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					id := fmt.Sprintf("tp-%s-%d-%d", tag, w, i)
					if err := db.Upsert(micronn.Item{ID: id, Vector: row(w*per + i)}); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return float64(per*writers) / elapsed.Seconds(), nil
	}

	singleDB, err := mkDB("single", false)
	if err != nil {
		return err
	}
	start := time.Now()
	for i := 0; i < stormN; i++ {
		if err := singleDB.Upsert(micronn.Item{ID: fmt.Sprintf("tp-seq-%d", i), Vector: row(i)}); err != nil {
			singleDB.Close()
			return err
		}
	}
	singleRate := float64(stormN) / time.Since(start).Seconds()
	singleDB.Close()

	ungroupedDB, err := mkDB("ungrouped", false)
	if err != nil {
		return err
	}
	ungroupedRate, err := concurrent(ungroupedDB, "u")
	if err != nil {
		ungroupedDB.Close()
		return err
	}
	groupedDB, err := mkDB("grouped", true)
	if err != nil {
		ungroupedDB.Close()
		return err
	}
	groupedRate, err := concurrent(groupedDB, "g")
	if err != nil {
		ungroupedDB.Close()
		groupedDB.Close()
		return err
	}
	gst, err := groupedDB.Stats()
	if err != nil {
		ungroupedDB.Close()
		groupedDB.Close()
		return err
	}
	avgGroup := 0.0
	if gst.Ingest.GroupCommits > 0 {
		avgGroup = float64(gst.Ingest.GroupedOps) / float64(gst.Ingest.GroupCommits)
	}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Writer path\tWriters\tInserts/s\tvs single\tGroup commits\tAvg group\tMax group")
	fmt.Fprintf(tw, "single-writer\t1\t%.0f\t1.00x\t-\t-\t-\n", singleRate)
	fmt.Fprintf(tw, "ungrouped\t%d\t%.0f\t%.2fx\t-\t-\t-\n", writers, ungroupedRate, ungroupedRate/singleRate)
	fmt.Fprintf(tw, "grouped\t%d\t%.0f\t%.2fx\t%d\t%.1f\t%d\n", writers, groupedRate, groupedRate/singleRate,
		gst.Ingest.GroupCommits, avgGroup, gst.Ingest.MaxGroupSize)
	if err := tw.Flush(); err != nil {
		ungroupedDB.Close()
		groupedDB.Close()
		return err
	}
	fmt.Fprintln(cfg.Out)

	// --- Phase 2: search tail during paced insert storms ---
	searchOnce := func(db *micronn.DB, i int) (time.Duration, error) {
		time.Sleep(500 * time.Microsecond)
		q := ds.Queries.Row(i % ds.Queries.Rows)
		s := time.Now()
		_, serr := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8})
		return time.Since(s), serr
	}
	recallNow := func(db *micronn.DB) (float64, error) {
		sample := ds.Queries.Rows
		if sample > 15 {
			sample = 15
		}
		var recall float64
		for i := 0; i < sample; i++ {
			q := ds.Queries.Row(i)
			exact, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, Exact: true})
			if err != nil {
				return 0, err
			}
			got, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8})
			if err != nil {
				return 0, err
			}
			want := make(map[string]bool, len(exact.Results))
			for _, r := range exact.Results {
				want[r.ID] = true
			}
			hits := 0
			for _, r := range got.Results {
				if want[r.ID] {
					hits++
				}
			}
			if len(exact.Results) > 0 {
				recall += float64(hits) / float64(len(exact.Results))
			} else {
				recall++
			}
		}
		return recall / float64(sample), nil
	}
	// window measures queries while a paced writer inserts at `rate`
	// items/s (0 = idle window). Pacing catches up when behind schedule, so
	// a rate the store cannot sustain becomes a saturating burst — which is
	// exactly what a 100x storm should look like. Both sides are bounded:
	// the writer by an insert cap, the searcher by a wall-clock deadline,
	// so a degrading tail cannot stretch the window into ever more inserts.
	const baseRate = 50
	window := func(db *micronn.DB, tag string, rate, queries, maxInserts int) (latencyStats, error) {
		stop := make(chan struct{})
		werr := make(chan error, 1)
		if rate > 0 {
			go func() {
				interval := time.Second / time.Duration(rate)
				next := time.Now()
				for i := 0; i < maxInserts; i++ {
					select {
					case <-stop:
						werr <- nil
						return
					default:
					}
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					id := fmt.Sprintf("storm-%s-%d-%d", tag, rate, i)
					if err := db.Upsert(micronn.Item{ID: id, Vector: row(i)}); err != nil {
						werr <- err
						return
					}
					next = next.Add(interval)
				}
				werr <- nil
			}()
		}
		deadline := time.Now().Add(3 * time.Second)
		durs := make([]time.Duration, 0, queries)
		var err error
		for i := 0; i < queries && err == nil && time.Now().Before(deadline); i++ {
			var d time.Duration
			d, err = searchOnce(db, i)
			durs = append(durs, d)
		}
		if rate > 0 {
			close(stop)
			if werr := <-werr; werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return latencyStats{}, err
		}
		return summarize(durs), nil
	}

	type windowRow struct {
		variant string
		label   string
		stats   latencyStats
		recall  float64
	}
	var rows []windowRow
	var idleP99 = map[string]time.Duration{}
	for _, v := range []struct {
		name string
		db   *micronn.DB
	}{{"ungrouped", ungroupedDB}, {"grouped", groupedDB}} {
		idle, err := window(v.db, v.name, 0, 300, 0)
		if err != nil {
			ungroupedDB.Close()
			groupedDB.Close()
			return err
		}
		idleRecall, err := recallNow(v.db)
		if err != nil {
			ungroupedDB.Close()
			groupedDB.Close()
			return err
		}
		idleP99[v.name] = idle.p99
		rows = append(rows, windowRow{v.name, "idle", idle, idleRecall})
		for _, mult := range []int{10, 100} {
			st, err := window(v.db, v.name, baseRate*mult, 300, 2000)
			if err != nil {
				ungroupedDB.Close()
				groupedDB.Close()
				return err
			}
			rec, err := recallNow(v.db)
			if err != nil {
				ungroupedDB.Close()
				groupedDB.Close()
				return err
			}
			rows = append(rows, windowRow{v.name, fmt.Sprintf("%dx storm", mult), st, rec})
			// Quiesce before the next window: fold the absorbed backlog
			// into the partitions so each window starts from a maintained
			// index rather than compounding the previous storm's debt.
			if _, err := v.db.Maintain(); err != nil {
				ungroupedDB.Close()
				groupedDB.Close()
				return err
			}
		}
	}
	ungroupedDB.Close()
	defer groupedDB.Close()

	tw = newTable(cfg.Out)
	fmt.Fprintln(tw, "Variant\tWindow\tQueries\tp50 ms\tp99 ms\tRecall@10")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%.4f\n",
			r.variant, r.label, r.stats.n, ms(r.stats.p50), ms(r.stats.p99), r.recall)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out)

	verdict := func(ok bool, msg string) {
		tag := "OK"
		if !ok {
			tag = "VIOLATION"
		}
		fmt.Fprintf(cfg.Out, "%-9s %s\n", tag+":", msg)
	}
	// Group commit is a concurrency optimization: with a single core the 8
	// writers never actually overlap in the enqueue window, so the
	// throughput criterion is assessed only where they can.
	if runtime.GOMAXPROCS(0) >= 2 {
		verdict(groupedRate >= 3*singleRate,
			fmt.Sprintf("grouped insert throughput %.0f/s at least 3x the single-writer %.0f/s (%.2fx, avg group %.1f)",
				groupedRate, singleRate, groupedRate/singleRate, avgGroup))
	} else {
		fmt.Fprintf(cfg.Out, "%-9s grouped %.0f/s vs single-writer %.0f/s (GOMAXPROCS=1: grouping criterion not assessable)\n",
			"NOTE:", groupedRate, singleRate)
	}
	// Batches only form when writers overlap in the enqueue window, which
	// needs a second core: on one CPU the committer drains each op before
	// the next writer is scheduled.
	if runtime.GOMAXPROCS(0) >= 2 {
		verdict(avgGroup > 1,
			fmt.Sprintf("the committer actually batched: %.1f ops per group commit (max %d)", avgGroup, gst.Ingest.MaxGroupSize))
	} else {
		fmt.Fprintf(cfg.Out, "%-9s %.1f ops per group commit, max %d (GOMAXPROCS=1: batching criterion not assessable)\n",
			"NOTE:", avgGroup, gst.Ingest.MaxGroupSize)
	}
	var idleRecall, worstRecall float64 = 1, 1
	for _, r := range rows {
		if r.variant != "grouped" {
			continue
		}
		if r.label == "idle" {
			idleRecall = r.recall
		} else if r.recall < worstRecall {
			worstRecall = r.recall
		}
	}
	verdict(math.Abs(idleRecall-worstRecall) <= 0.01+1e-9 || worstRecall >= idleRecall,
		fmt.Sprintf("grouped recall@10 under storm %.4f within 1 point of idle %.4f", worstRecall, idleRecall))
	// The p99 criterion needs spare cores for the same reason as the
	// concurrency scenario: on a starved host the tail measures the
	// scheduler, not the ingest path. A small absolute allowance absorbs
	// noise at tiny scales where idle p99 is tens of microseconds.
	for _, r := range rows {
		if r.variant != "grouped" || r.stats.n == 0 || r.label == "idle" {
			continue
		}
		bound := idleP99["grouped"] + idleP99["grouped"]/2
		if slack := idleP99["grouped"] + 2*time.Millisecond; bound < slack {
			bound = slack
		}
		if runtime.GOMAXPROCS(0) >= 4 {
			verdict(r.stats.p99 <= bound,
				fmt.Sprintf("grouped search p99 during %s %s ms within 1.5x idle %s ms (bound %s ms)",
					r.label, ms(r.stats.p99), ms(idleP99["grouped"]), ms(bound)))
		} else {
			fmt.Fprintf(cfg.Out, "%-9s grouped p99 during %s %s ms vs idle %s ms (GOMAXPROCS=%d: criterion not assessable)\n",
				"NOTE:", r.label, ms(r.stats.p99), ms(idleP99["grouped"]), runtime.GOMAXPROCS(0))
		}
	}
	st, err := groupedDB.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\ningest state after storms: %d runs (%d rows), %d unmerged, %d seals, %d backpressure triggers\n",
		st.Ingest.RunCount, st.Ingest.RunRows, st.Ingest.UnmergedItems, st.Ingest.Seals, st.Ingest.BackpressureTriggers)

	// --- Phase 3: compaction write amplification, tiered vs oldest-run ---
	//
	// The same saturating (100x-shaped, unpaced) ingest is replayed against
	// two fresh stores that differ only in compaction policy: the tiered
	// default (MaxCompactRuns=8, whole tiers merged in one pass) and the PR 8
	// oldest-run-only policy (MaxCompactRuns=1). Both get the identical
	// maintenance cadence and a full drain, then write amplification is
	// compared two ways: logically (maintenance row writes per row ingested,
	// Stats.Maintenance.RowChanges) and physically (WAL page images per row,
	// Stats.PagesWritten). Merging a tier writes each destination partition
	// once per merge instead of once per run, so both amplifications should
	// come out at or below the single-run policy's.
	const ampN = 4096
	ampRun := func(name string, maxCompact int) (logAmp, pageAmp float64, merges int64, err error) {
		path := filepath.Join(cfg.Dir, "storm-amp-"+name+".mnn")
		os.Remove(path)
		os.Remove(path + "-wal")
		os.Remove(path + ".lock")
		db, err := micronn.Open(path, micronn.Options{
			Dim:                 spec.Dim,
			Metric:              spec.Metric,
			TargetPartitionSize: 100,
			Seed:                spec.Seed,
			LSMIngest:           true,
			MemtableMaxItems:    512,
			MaxCompactRuns:      maxCompact,
			// Disable flush backpressure: the fixed Maintain cadence below
			// is the only maintenance, so runs actually accumulate and the
			// policies pick differently-sized merges. Splits are disabled
			// too — partition rebalancing noise would swamp the
			// compaction-policy difference this phase isolates.
			MaxUnmergedItems: 1 << 20,
			MaxPartitionSize: 1 << 20,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		defer db.Close()
		items := make([]micronn.Item, 0, bootstrap)
		for i := 0; i < bootstrap; i++ {
			items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		}
		if err := db.UpsertBatch(items); err != nil {
			return 0, 0, 0, err
		}
		if _, err := db.Rebuild(); err != nil {
			return 0, 0, 0, err
		}
		base, err := db.Stats()
		if err != nil {
			return 0, 0, 0, err
		}
		// Memtable-sized waves, each awaited until the async sealer turns
		// it into a run, so every ingested row reaches the partitions
		// through compaction and both variants drain the identical run set
		// — the comparison isolates the compaction policy, not seal
		// timing.
		const waveSize = 512
		for wave := 0; wave < ampN/waveSize; wave++ {
			items := make([]micronn.Item, 0, waveSize)
			for i := 0; i < waveSize; i++ {
				id := fmt.Sprintf("amp-%s-%d", name, wave*waveSize+i)
				items = append(items, micronn.Item{ID: id, Vector: row(wave*waveSize + i)})
			}
			if err := db.UpsertBatch(items); err != nil {
				return 0, 0, 0, err
			}
			for deadline := time.Now().Add(5 * time.Second); ; {
				stt, err := db.Stats()
				if err != nil {
					return 0, 0, 0, err
				}
				if stt.Ingest.RunCount >= int64(wave+1) || time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		// Drain: the tiered policy folds the whole same-size tier in one
		// merge, the oldest-run policy folds one run per pass.
		for i := 0; i < 100; i++ {
			stt, err := db.Stats()
			if err != nil {
				return 0, 0, 0, err
			}
			if stt.Ingest.RunCount == 0 {
				break
			}
			if _, err := db.Maintain(); err != nil {
				return 0, 0, 0, err
			}
		}
		if _, err := db.FlushDelta(); err != nil {
			return 0, 0, 0, err
		}
		end, err := db.Stats()
		if err != nil {
			return 0, 0, 0, err
		}
		logAmp = float64(end.Maintenance.RowChanges-base.Maintenance.RowChanges) / float64(ampN)
		pageAmp = float64(end.PagesWritten-base.PagesWritten) / float64(ampN)
		return logAmp, pageAmp, end.Maintenance.Compactions - base.Maintenance.Compactions, nil
	}
	tieredLog, tieredPage, tieredMerges, err := ampRun("tiered", 0)
	if err != nil {
		return err
	}
	oldestLog, oldestPage, oldestMerges, err := ampRun("oldest", 1)
	if err != nil {
		return err
	}

	tw = newTable(cfg.Out)
	fmt.Fprintln(tw, "Compaction policy\tRows\tMerges\tRow writes/row\tWAL pages/row")
	fmt.Fprintf(tw, "tiered (MaxCompactRuns=8)\t%d\t%d\t%.2f\t%.2f\n", ampN, tieredMerges, tieredLog, tieredPage)
	fmt.Fprintf(tw, "oldest-run (MaxCompactRuns=1)\t%d\t%d\t%.2f\t%.2f\n", ampN, oldestMerges, oldestLog, oldestPage)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out)
	verdict(tieredLog <= oldestLog+1e-9,
		fmt.Sprintf("tiered logical write amp %.2f row writes/row at or below oldest-run %.2f", tieredLog, oldestLog))
	verdict(tieredPage <= oldestPage*1.05+1e-9,
		fmt.Sprintf("tiered physical write amp %.2f WAL pages/row at or below oldest-run %.2f (5%% noise allowance)", tieredPage, oldestPage))

	// --- Phase 4: run-zone pruning under filtered search ---
	//
	// Three sealed waves carry disjoint values of an indexed attribute, so
	// an equality filter from one wave can never match the others' runs —
	// their attribute Blooms prune those scans entirely. The criterion is
	// byte-identical results with pruning on and off, with a non-zero
	// pruned-run count.
	prunePath := filepath.Join(cfg.Dir, "storm-prune.mnn")
	os.Remove(prunePath)
	os.Remove(prunePath + "-wal")
	os.Remove(prunePath + ".lock")
	pruneDB, err := micronn.Open(prunePath, micronn.Options{
		Dim:                 spec.Dim,
		Metric:              spec.Metric,
		TargetPartitionSize: 100,
		Seed:                spec.Seed,
		LSMIngest:           true,
		MemtableMaxItems:    512,
		Attributes:          []micronn.AttributeDef{{Name: "wave", Type: micronn.AttrText, Indexed: true}},
	})
	if err != nil {
		return err
	}
	defer pruneDB.Close()
	items := make([]micronn.Item, 0, 400)
	for i := 0; i < 400; i++ {
		items = append(items, micronn.Item{
			ID: workload.AssetID(i), Vector: ds.Train.Row(i),
			Attributes: map[string]any{"wave": "base"},
		})
	}
	if err := pruneDB.UpsertBatch(items); err != nil {
		return err
	}
	if _, err := pruneDB.Rebuild(); err != nil {
		return err
	}
	for w, tag := range []string{"alpha", "beta", "gamma"} {
		wave := make([]micronn.Item, 0, 512)
		for i := 0; i < 512; i++ {
			wave = append(wave, micronn.Item{
				ID: fmt.Sprintf("prune-%s-%d", tag, i), Vector: row(400 + w*512 + i),
				Attributes: map[string]any{"wave": tag},
			})
		}
		if err := pruneDB.UpsertBatch(wave); err != nil {
			return err
		}
	}
	// Seals are asynchronous: wait until at least two waves have become runs.
	for deadline := time.Now().Add(5 * time.Second); ; {
		stt, err := pruneDB.Stats()
		if err != nil {
			return err
		}
		if stt.Ingest.RunCount >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	pruneQueries := func() ([][]string, error) {
		var out [][]string
		for i := 0; i < 40; i++ {
			resp, err := pruneDB.Search(micronn.SearchRequest{
				Vector: ds.Queries.Row(i % ds.Queries.Rows), K: 10,
				Filters: []micronn.Filter{micronn.Eq("wave", "alpha")},
				Plan:    micronn.PlanPostFilter, NoCache: true,
			})
			if err != nil {
				return nil, err
			}
			ids := make([]string, len(resp.Results))
			for j, r := range resp.Results {
				ids[j] = r.ID
			}
			out = append(out, ids)
		}
		return out, nil
	}
	onIDs, err := pruneQueries()
	if err != nil {
		return err
	}
	pst, err := pruneDB.Stats()
	if err != nil {
		return err
	}
	pruneDB.SetZonePruning(false)
	offIDs, err := pruneQueries()
	if err != nil {
		return err
	}
	identical := len(onIDs) == len(offIDs)
	for i := 0; identical && i < len(onIDs); i++ {
		if len(onIDs[i]) != len(offIDs[i]) {
			identical = false
			break
		}
		for j := range onIDs[i] {
			if onIDs[i][j] != offIDs[i][j] {
				identical = false
				break
			}
		}
	}
	fmt.Fprintf(cfg.Out, "zone pruning: %d of %d run scans skipped over %d filtered searches (%d runs live)\n",
		pst.Ingest.ZonePrunedRuns, pst.Ingest.ZonePruneChecks, len(onIDs), pst.Ingest.RunCount)
	verdict(pst.Ingest.ZonePrunedRuns > 0,
		fmt.Sprintf("attribute Blooms pruned %d run scans across %d checks", pst.Ingest.ZonePrunedRuns, pst.Ingest.ZonePruneChecks))
	verdict(identical,
		"filtered search results byte-identical with zone pruning on and off")
	return nil
}
