package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// WriteStorm is the acceptance scenario for LSM-shaped ingest: memtable
// group commit in front of the WAL'd delta store. It measures two things.
//
// First, insert throughput: the same 8-writer upsert storm is driven
// through the grouped path (LSMIngest: writers batched into shared
// transactions by the committer) and the ungrouped path (every Upsert its
// own transaction through the writer gate), plus a sequential single-writer
// baseline. The tentpole criterion is grouped throughput at least 3x the
// single-writer baseline.
//
// Second, search availability under sustained ingest: a paced searcher
// measures p50/p99 and recall@10 idle, then during insert storms at 10x and
// 100x a base trickle rate, on both variants. The criterion is grouped
// search p99 within 1.5x idle at recall within 1 point — searches keep
// their latency while the memtable absorbs the storm.
func WriteStorm(cfg Config) error {
	cfg.fill()
	cfg.header("Updates: write-storm search tail and group-commit throughput")

	spec, err := workload.ByName("InternalA")
	if err != nil {
		return err
	}
	spec = spec.Scaled(cfg.Scale)
	ds := spec.Generate()
	n := ds.Train.Rows
	bootstrap := n / 2

	mkDB := func(name string, lsm bool) (*micronn.DB, error) {
		path := filepath.Join(cfg.Dir, "storm-"+name+".mnn")
		os.Remove(path)
		os.Remove(path + "-wal")
		os.Remove(path + ".lock")
		db, err := micronn.Open(path, micronn.Options{
			Dim:                 spec.Dim,
			Metric:              spec.Metric,
			TargetPartitionSize: 100,
			Seed:                spec.Seed,
			LSMIngest:           lsm,
			// A small memtable makes the storm exercise the whole LSM
			// machinery — seals, sorted runs, compaction — not just the
			// group commit at its front.
			MemtableMaxItems: 512,
		})
		if err != nil {
			return nil, err
		}
		items := make([]micronn.Item, 0, bootstrap)
		for i := 0; i < bootstrap; i++ {
			items = append(items, micronn.Item{ID: workload.AssetID(i), Vector: ds.Train.Row(i)})
		}
		if err := db.UpsertBatch(items); err != nil {
			db.Close()
			return nil, err
		}
		if _, err := db.Rebuild(); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}
	row := func(i int) []float32 { return ds.Train.Row(i % n) }

	// --- Phase 1: insert throughput, 8 concurrent writers ---
	stormN := n - bootstrap
	if stormN > 4000 {
		stormN = 4000
	}
	if stormN < 400 {
		stormN = 400
	}
	const writers = 8
	concurrent := func(db *micronn.DB, tag string) (float64, error) {
		var wg sync.WaitGroup
		errs := make([]error, writers)
		per := stormN / writers
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					id := fmt.Sprintf("tp-%s-%d-%d", tag, w, i)
					if err := db.Upsert(micronn.Item{ID: id, Vector: row(w*per + i)}); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return float64(per*writers) / elapsed.Seconds(), nil
	}

	singleDB, err := mkDB("single", false)
	if err != nil {
		return err
	}
	start := time.Now()
	for i := 0; i < stormN; i++ {
		if err := singleDB.Upsert(micronn.Item{ID: fmt.Sprintf("tp-seq-%d", i), Vector: row(i)}); err != nil {
			singleDB.Close()
			return err
		}
	}
	singleRate := float64(stormN) / time.Since(start).Seconds()
	singleDB.Close()

	ungroupedDB, err := mkDB("ungrouped", false)
	if err != nil {
		return err
	}
	ungroupedRate, err := concurrent(ungroupedDB, "u")
	if err != nil {
		ungroupedDB.Close()
		return err
	}
	groupedDB, err := mkDB("grouped", true)
	if err != nil {
		ungroupedDB.Close()
		return err
	}
	groupedRate, err := concurrent(groupedDB, "g")
	if err != nil {
		ungroupedDB.Close()
		groupedDB.Close()
		return err
	}
	gst, err := groupedDB.Stats()
	if err != nil {
		ungroupedDB.Close()
		groupedDB.Close()
		return err
	}
	avgGroup := 0.0
	if gst.Ingest.GroupCommits > 0 {
		avgGroup = float64(gst.Ingest.GroupedOps) / float64(gst.Ingest.GroupCommits)
	}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Writer path\tWriters\tInserts/s\tvs single\tGroup commits\tAvg group\tMax group")
	fmt.Fprintf(tw, "single-writer\t1\t%.0f\t1.00x\t-\t-\t-\n", singleRate)
	fmt.Fprintf(tw, "ungrouped\t%d\t%.0f\t%.2fx\t-\t-\t-\n", writers, ungroupedRate, ungroupedRate/singleRate)
	fmt.Fprintf(tw, "grouped\t%d\t%.0f\t%.2fx\t%d\t%.1f\t%d\n", writers, groupedRate, groupedRate/singleRate,
		gst.Ingest.GroupCommits, avgGroup, gst.Ingest.MaxGroupSize)
	if err := tw.Flush(); err != nil {
		ungroupedDB.Close()
		groupedDB.Close()
		return err
	}
	fmt.Fprintln(cfg.Out)

	// --- Phase 2: search tail during paced insert storms ---
	searchOnce := func(db *micronn.DB, i int) (time.Duration, error) {
		time.Sleep(500 * time.Microsecond)
		q := ds.Queries.Row(i % ds.Queries.Rows)
		s := time.Now()
		_, serr := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8})
		return time.Since(s), serr
	}
	recallNow := func(db *micronn.DB) (float64, error) {
		sample := ds.Queries.Rows
		if sample > 15 {
			sample = 15
		}
		var recall float64
		for i := 0; i < sample; i++ {
			q := ds.Queries.Row(i)
			exact, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, Exact: true})
			if err != nil {
				return 0, err
			}
			got, err := db.Search(micronn.SearchRequest{Vector: q, K: 10, NProbe: 8})
			if err != nil {
				return 0, err
			}
			want := make(map[string]bool, len(exact.Results))
			for _, r := range exact.Results {
				want[r.ID] = true
			}
			hits := 0
			for _, r := range got.Results {
				if want[r.ID] {
					hits++
				}
			}
			if len(exact.Results) > 0 {
				recall += float64(hits) / float64(len(exact.Results))
			} else {
				recall++
			}
		}
		return recall / float64(sample), nil
	}
	// window measures queries while a paced writer inserts at `rate`
	// items/s (0 = idle window). Pacing catches up when behind schedule, so
	// a rate the store cannot sustain becomes a saturating burst — which is
	// exactly what a 100x storm should look like. Both sides are bounded:
	// the writer by an insert cap, the searcher by a wall-clock deadline,
	// so a degrading tail cannot stretch the window into ever more inserts.
	const baseRate = 50
	window := func(db *micronn.DB, tag string, rate, queries, maxInserts int) (latencyStats, error) {
		stop := make(chan struct{})
		werr := make(chan error, 1)
		if rate > 0 {
			go func() {
				interval := time.Second / time.Duration(rate)
				next := time.Now()
				for i := 0; i < maxInserts; i++ {
					select {
					case <-stop:
						werr <- nil
						return
					default:
					}
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					id := fmt.Sprintf("storm-%s-%d-%d", tag, rate, i)
					if err := db.Upsert(micronn.Item{ID: id, Vector: row(i)}); err != nil {
						werr <- err
						return
					}
					next = next.Add(interval)
				}
				werr <- nil
			}()
		}
		deadline := time.Now().Add(3 * time.Second)
		durs := make([]time.Duration, 0, queries)
		var err error
		for i := 0; i < queries && err == nil && time.Now().Before(deadline); i++ {
			var d time.Duration
			d, err = searchOnce(db, i)
			durs = append(durs, d)
		}
		if rate > 0 {
			close(stop)
			if werr := <-werr; werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return latencyStats{}, err
		}
		return summarize(durs), nil
	}

	type windowRow struct {
		variant string
		label   string
		stats   latencyStats
		recall  float64
	}
	var rows []windowRow
	var idleP99 = map[string]time.Duration{}
	for _, v := range []struct {
		name string
		db   *micronn.DB
	}{{"ungrouped", ungroupedDB}, {"grouped", groupedDB}} {
		idle, err := window(v.db, v.name, 0, 300, 0)
		if err != nil {
			ungroupedDB.Close()
			groupedDB.Close()
			return err
		}
		idleRecall, err := recallNow(v.db)
		if err != nil {
			ungroupedDB.Close()
			groupedDB.Close()
			return err
		}
		idleP99[v.name] = idle.p99
		rows = append(rows, windowRow{v.name, "idle", idle, idleRecall})
		for _, mult := range []int{10, 100} {
			st, err := window(v.db, v.name, baseRate*mult, 300, 2000)
			if err != nil {
				ungroupedDB.Close()
				groupedDB.Close()
				return err
			}
			rec, err := recallNow(v.db)
			if err != nil {
				ungroupedDB.Close()
				groupedDB.Close()
				return err
			}
			rows = append(rows, windowRow{v.name, fmt.Sprintf("%dx storm", mult), st, rec})
			// Quiesce before the next window: fold the absorbed backlog
			// into the partitions so each window starts from a maintained
			// index rather than compounding the previous storm's debt.
			if _, err := v.db.Maintain(); err != nil {
				ungroupedDB.Close()
				groupedDB.Close()
				return err
			}
		}
	}
	ungroupedDB.Close()
	defer groupedDB.Close()

	tw = newTable(cfg.Out)
	fmt.Fprintln(tw, "Variant\tWindow\tQueries\tp50 ms\tp99 ms\tRecall@10")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%.4f\n",
			r.variant, r.label, r.stats.n, ms(r.stats.p50), ms(r.stats.p99), r.recall)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out)

	verdict := func(ok bool, msg string) {
		tag := "OK"
		if !ok {
			tag = "VIOLATION"
		}
		fmt.Fprintf(cfg.Out, "%-9s %s\n", tag+":", msg)
	}
	// Group commit is a concurrency optimization: with a single core the 8
	// writers never actually overlap in the enqueue window, so the
	// throughput criterion is assessed only where they can.
	if runtime.GOMAXPROCS(0) >= 2 {
		verdict(groupedRate >= 3*singleRate,
			fmt.Sprintf("grouped insert throughput %.0f/s at least 3x the single-writer %.0f/s (%.2fx, avg group %.1f)",
				groupedRate, singleRate, groupedRate/singleRate, avgGroup))
	} else {
		fmt.Fprintf(cfg.Out, "%-9s grouped %.0f/s vs single-writer %.0f/s (GOMAXPROCS=1: grouping criterion not assessable)\n",
			"NOTE:", groupedRate, singleRate)
	}
	// Batches only form when writers overlap in the enqueue window, which
	// needs a second core: on one CPU the committer drains each op before
	// the next writer is scheduled.
	if runtime.GOMAXPROCS(0) >= 2 {
		verdict(avgGroup > 1,
			fmt.Sprintf("the committer actually batched: %.1f ops per group commit (max %d)", avgGroup, gst.Ingest.MaxGroupSize))
	} else {
		fmt.Fprintf(cfg.Out, "%-9s %.1f ops per group commit, max %d (GOMAXPROCS=1: batching criterion not assessable)\n",
			"NOTE:", avgGroup, gst.Ingest.MaxGroupSize)
	}
	var idleRecall, worstRecall float64 = 1, 1
	for _, r := range rows {
		if r.variant != "grouped" {
			continue
		}
		if r.label == "idle" {
			idleRecall = r.recall
		} else if r.recall < worstRecall {
			worstRecall = r.recall
		}
	}
	verdict(math.Abs(idleRecall-worstRecall) <= 0.01+1e-9 || worstRecall >= idleRecall,
		fmt.Sprintf("grouped recall@10 under storm %.4f within 1 point of idle %.4f", worstRecall, idleRecall))
	// The p99 criterion needs spare cores for the same reason as the
	// concurrency scenario: on a starved host the tail measures the
	// scheduler, not the ingest path. A small absolute allowance absorbs
	// noise at tiny scales where idle p99 is tens of microseconds.
	for _, r := range rows {
		if r.variant != "grouped" || r.stats.n == 0 || r.label == "idle" {
			continue
		}
		bound := idleP99["grouped"] + idleP99["grouped"]/2
		if slack := idleP99["grouped"] + 2*time.Millisecond; bound < slack {
			bound = slack
		}
		if runtime.GOMAXPROCS(0) >= 4 {
			verdict(r.stats.p99 <= bound,
				fmt.Sprintf("grouped search p99 during %s %s ms within 1.5x idle %s ms (bound %s ms)",
					r.label, ms(r.stats.p99), ms(idleP99["grouped"]), ms(bound)))
		} else {
			fmt.Fprintf(cfg.Out, "%-9s grouped p99 during %s %s ms vs idle %s ms (GOMAXPROCS=%d: criterion not assessable)\n",
				"NOTE:", r.label, ms(r.stats.p99), ms(idleP99["grouped"]), runtime.GOMAXPROCS(0))
		}
	}
	st, err := groupedDB.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\ningest state after storms: %d runs (%d rows), %d unmerged, %d seals, %d backpressure triggers\n",
		st.Ingest.RunCount, st.Ingest.RunRows, st.Ingest.UnmergedItems, st.Ingest.Seals, st.Ingest.BackpressureTriggers)
	return nil
}
