package bench

import (
	"fmt"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// BatchMQO reproduces Figure 9: the impact of multi-query optimization on
// batch processing time, reported (a) relative to one-query-at-a-time
// execution and (b) as amortized single-query latency versus batch size.
// It also verifies the §3.4 claim of a ≥30% per-query latency cut at batch
// 512 on the InternalA-style workload.
func BatchMQO(cfg Config) error {
	cfg.fill()
	cfg.header("Figure 9: multi-query optimization vs batch size")

	batchSizes := []int{1, 8, 32, 128, 512, 1024}
	for _, name := range cfg.Datasets {
		spec, err := workload.ByName(name)
		if err != nil {
			return err
		}
		p := cfg.prepare(spec)
		db, err := cfg.buildDB(p, micronn.DeviceLarge, "fig9-"+name)
		if err != nil {
			return err
		}
		nprobe, _, err := cfg.findNProbe(db, p)
		if err != nil {
			db.Close()
			return err
		}

		// Sequential baseline: per-query latency, one at a time (warm).
		q0 := p.ds.Queries.Row(0)
		if _, err := db.Search(micronn.SearchRequest{Vector: q0, K: cfg.K, NProbe: nprobe}); err != nil {
			db.Close()
			return err
		}
		seqN := 16
		if seqN > p.ds.Queries.Rows {
			seqN = p.ds.Queries.Rows
		}
		seqStart := time.Now()
		for i := 0; i < seqN; i++ {
			if _, err := db.Search(micronn.SearchRequest{
				Vector: p.ds.Queries.Row(i % p.ds.Queries.Rows), K: cfg.K, NProbe: nprobe,
			}); err != nil {
				db.Close()
				return err
			}
		}
		perQuery := time.Since(seqStart) / time.Duration(seqN)

		tw := newTable(cfg.Out)
		fmt.Fprintf(tw, "%s (nprobe=%d, sequential %s ms/query)\n", name, nprobe, ms(perQuery))
		fmt.Fprintln(tw, "Batch\tBatch time ms\tSequential-equiv ms\tRelative\tAmortized ms/query\tPartition scans (MQO vs naive)")
		for _, bs := range batchSizes {
			vecs := make([][]float32, bs)
			for i := 0; i < bs; i++ {
				vecs[i] = p.ds.Queries.Row(i % p.ds.Queries.Rows)
			}
			start := time.Now()
			resp, err := db.BatchSearch(micronn.BatchSearchRequest{Vectors: vecs, K: cfg.K, NProbe: nprobe})
			if err != nil {
				db.Close()
				return err
			}
			batchTime := time.Since(start)
			seqEquiv := perQuery * time.Duration(bs)
			rel := float64(batchTime) / float64(seqEquiv)
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.2f\t%s\t%d vs %d\n",
				bs, ms(batchTime), ms(seqEquiv), rel,
				ms(batchTime/time.Duration(bs)),
				resp.Info.PartitionScans, resp.Info.QueryPartitionPairs)
		}
		if err := tw.Flush(); err != nil {
			db.Close()
			return err
		}
		fmt.Fprintln(cfg.Out)
		db.Close()
	}
	fmt.Fprintln(cfg.Out, "Shape checks (paper): batch time consistently below the sequential line;")
	fmt.Fprintln(cfg.Out, "per-query latency cut >= ~30% at batch 512 (InternalA); gains shrink when the")
	fmt.Fprintln(cfg.Out, "centroid matrix grows large (DEEPImage at full scale).")
	return nil
}
