package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"micronn"
	"micronn/internal/workload"
)

// HybridFusion measures the hybrid (BM25 ∪ vector) search path against its
// two single-leg degenerations on a tagged corpus. Ground truth per query is
// the exact fused ranking — an exhaustive vector leg under the same
// reciprocal-rank fusion — the hybrid analog of scoring ANN recall against
// exact KNN. Three modes are timed and scored against it:
//
//   - vector-only: the plain ANN leg, blind to tags — measures how much of
//     the fused ranking vectors alone recover;
//   - lexical-only: BM25 ranking alone (weighted fusion, VectorWeight=0);
//   - fused: reciprocal-rank fusion of both approximate legs.
//
// Verdicts assert the PR acceptance criteria: fused recall@10 at least
// matching the better single leg, and a 3-shard store returning rankings
// identical to the single store on the same corpus (global BM25 statistics
// plus asset-ordered tie-breaks are what make that exact).
func HybridFusion(cfg Config) error {
	cfg.fill()
	cfg.header("Hybrid fusion: BM25 + vector RRF vs single legs")

	numVectors := int(200_000 * cfg.Scale)
	if numVectors < 4000 {
		numVectors = 4000
	}
	const dim = 48
	const k = 10
	const nprobe = 16
	numQueries := cfg.QuerySample
	if numQueries > 150 {
		numQueries = 150
	}

	fd := workload.GenerateFiltered(workload.FilteredSpec{
		Dim: dim, NumVectors: numVectors, NumQueries: numQueries, Seed: cfg.Seed + 9,
	})

	opts := micronn.Options{
		Dim:        dim,
		Metric:     micronn.Cosine,
		Seed:       cfg.Seed,
		Attributes: []micronn.AttributeDef{{Name: "tags", Type: micronn.AttrText, FullText: true}},
	}
	path := filepath.Join(cfg.Dir, "hybridfusion.mnn")
	os.Remove(path)
	os.Remove(path + "-wal")
	os.Remove(path + ".lock")
	db, err := micronn.Open(path, opts)
	if err != nil {
		return err
	}
	defer db.Close()

	sdir := filepath.Join(cfg.Dir, "hybridfusion-shards")
	os.RemoveAll(sdir)
	sopts := opts
	sopts.Shards = 3
	sdb, err := micronn.OpenSharded(sdir, sopts)
	if err != nil {
		return err
	}
	defer sdb.Close()

	const chunk = 1000
	items := make([]micronn.Item, 0, chunk)
	for i := 0; i < numVectors; i++ {
		items = append(items, micronn.Item{
			ID:         workload.AssetID(i),
			Vector:     fd.Train.Row(i),
			Attributes: map[string]any{"tags": fd.Tags[i]},
		})
		if len(items) == chunk || i == numVectors-1 {
			if err := db.UpsertBatch(items); err != nil {
				return err
			}
			if err := sdb.UpsertBatch(items); err != nil {
				return err
			}
			items = items[:0]
		}
	}
	if _, err := db.Rebuild(); err != nil {
		return err
	}
	if _, err := sdb.Rebuild(); err != nil {
		return err
	}

	// Ground truth: the exact fused top-K (exhaustive vector leg, same RRF).
	gt := make([]map[string]bool, numQueries)
	for qi := 0; qi < numQueries; qi++ {
		resp, err := db.HybridSearch(micronn.HybridRequest{
			Vector: fd.Queries.Row(qi), Text: fd.QueryTags[qi], K: k, Exact: true,
		})
		if err != nil {
			return err
		}
		gt[qi] = make(map[string]bool, len(resp.Results))
		for _, r := range resp.Results {
			gt[qi][r.ID] = true
		}
	}

	type mode struct {
		name string
		req  func(qi int) micronn.HybridRequest
	}
	modes := []mode{
		{"vector-only", func(qi int) micronn.HybridRequest {
			return micronn.HybridRequest{Vector: fd.Queries.Row(qi), K: k, NProbe: nprobe}
		}},
		{"lexical-only", func(qi int) micronn.HybridRequest {
			return micronn.HybridRequest{Vector: fd.Queries.Row(qi), Text: fd.QueryTags[qi],
				K: k, NProbe: nprobe, Weighted: true, VectorWeight: 0, TextWeight: 1}
		}},
		{"fused-rrf", func(qi int) micronn.HybridRequest {
			return micronn.HybridRequest{Vector: fd.Queries.Row(qi), Text: fd.QueryTags[qi],
				K: k, NProbe: nprobe}
		}},
	}

	recalls := make(map[string]float64, len(modes))
	lats := make(map[string]latencyStats, len(modes))
	for _, m := range modes {
		durs := make([]time.Duration, 0, numQueries)
		var recall float64
		var scored int
		for qi := 0; qi < numQueries; qi++ {
			start := time.Now()
			resp, err := db.HybridSearch(m.req(qi))
			if err != nil {
				return err
			}
			durs = append(durs, time.Since(start))
			if len(gt[qi]) == 0 {
				continue
			}
			hits := 0
			for _, r := range resp.Results {
				if gt[qi][r.ID] {
					hits++
				}
			}
			recall += float64(hits) / float64(len(gt[qi]))
			scored++
		}
		if scored > 0 {
			recall /= float64(scored)
		}
		recalls[m.name] = recall
		lats[m.name] = summarize(durs)
	}

	// Cross-topology check: with an exact vector leg the fused ranking must
	// be identical on the 3-shard store — ids, scores, distances, leg ranks.
	var topoMismatches int
	for qi := 0; qi < numQueries; qi++ {
		req := micronn.HybridRequest{Vector: fd.Queries.Row(qi), Text: fd.QueryTags[qi], K: k, Exact: true}
		a, err := db.HybridSearch(req)
		if err != nil {
			return err
		}
		b, err := sdb.HybridSearch(req)
		if err != nil {
			return err
		}
		if len(a.Results) != len(b.Results) {
			topoMismatches++
			continue
		}
		for i := range a.Results {
			if a.Results[i] != b.Results[i] {
				topoMismatches++
				break
			}
		}
	}

	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "Mode\tRecall@10\tp50 ms\tp99 ms")
	for _, m := range modes {
		fmt.Fprintf(tw, "%s\t%.3f\t%s\t%s\n", m.name, recalls[m.name], ms(lats[m.name].p50), ms(lats[m.name].p99))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	verdict := func(ok bool, msg string) {
		tag := "OK"
		if !ok {
			tag = "VIOLATION"
		}
		fmt.Fprintf(cfg.Out, "%-9s %s\n", tag+":", msg)
	}
	maxLeg := recalls["vector-only"]
	if recalls["lexical-only"] > maxLeg {
		maxLeg = recalls["lexical-only"]
	}
	fmt.Fprintln(cfg.Out)
	verdict(recalls["fused-rrf"] >= maxLeg,
		fmt.Sprintf("fused recall@10 %.3f >= best single leg %.3f", recalls["fused-rrf"], maxLeg))
	verdict(topoMismatches == 0,
		fmt.Sprintf("%d/%d sharded fused rankings differ from single-store (global BM25 stats + asset-ordered ties make them identical)", topoMismatches, numQueries))
	return nil
}
