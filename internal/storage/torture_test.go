package storage

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestTortureRandomOpsWithReopen drives the store through randomized
// sequences of commits, rollbacks, spills, checkpoints and crash-reopens,
// checking after every step that committed state matches an in-memory
// reference model. This is the storage engine's main durability property
// test. It runs here against the file backend; the conformance battery
// replays it on mmap and memory too.
func TestTortureRandomOpsWithReopen(t *testing.T) {
	runTorture(t, Options{Sync: SyncOff, MaxDirtyPages: 4, CheckpointFrames: -1, Backend: BackendFile}, true)
}

// runTorture is the torture battery body, parameterized over backend
// options. persistent=false (the memory backend) replaces the reopen ops
// with checkpoints — the store is ephemeral, so cross-open assertions are
// skipped explicitly here rather than silently passing on empty state.
func runTorture(t *testing.T, opts Options, persistent bool) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torture.db")
	if !persistent {
		t.Log("ephemeral backend: reopen/crash steps replaced with checkpoints, cross-open persistence not asserted")
	}

	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close() }()

	// Reference model: page -> last committed 8-byte value.
	ref := map[uint32]uint64{}
	var pages []uint32
	rng := rand.New(rand.NewSource(1234))

	verify := func(step int) {
		t.Helper()
		err := s.View(func(rt *ReadTxn) error {
			for _, pg := range pages {
				buf, err := rt.Get(pg)
				if err != nil {
					return fmt.Errorf("step %d page %d: %w", step, pg, err)
				}
				got := binary.LittleEndian.Uint64(buf)
				if got != ref[pg] {
					return fmt.Errorf("step %d page %d = %d, want %d", step, pg, got, ref[pg])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // committed write txn
			staged := map[uint32]uint64{}
			err := s.Update(func(wt *WriteTxn) error {
				nOps := 1 + rng.Intn(8)
				for i := 0; i < nOps; i++ {
					var pg uint32
					if len(pages) == 0 || rng.Intn(3) == 0 {
						n, buf, err := wt.Allocate()
						if err != nil {
							return err
						}
						pg = n
						pages = append(pages, pg)
						v := rng.Uint64()
						binary.LittleEndian.PutUint64(buf, v)
						staged[pg] = v
					} else {
						pg = pages[rng.Intn(len(pages))]
						buf, err := wt.GetMut(pg)
						if err != nil {
							return err
						}
						v := rng.Uint64()
						binary.LittleEndian.PutUint64(buf, v)
						staged[pg] = v
					}
					if err := wt.SpillIfNeeded(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("step %d commit: %v", step, err)
			}
			for pg, v := range staged {
				ref[pg] = v
			}
		case op < 7: // rolled-back txn (must leave no trace)
			wt, err := s.BeginWrite()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1+rng.Intn(8); i++ {
				if len(pages) > 0 && rng.Intn(2) == 0 {
					pg := pages[rng.Intn(len(pages))]
					buf, err := wt.GetMut(pg)
					if err != nil {
						t.Fatal(err)
					}
					binary.LittleEndian.PutUint64(buf, rng.Uint64())
				} else {
					if _, _, err := wt.Allocate(); err != nil {
						t.Fatal(err)
					}
				}
				if err := wt.SpillIfNeeded(); err != nil {
					t.Fatal(err)
				}
			}
			wt.Rollback()
		case op < 8: // checkpoint (may be busy; fine)
			if err := s.Checkpoint(); err != nil && err != ErrBusy {
				t.Fatalf("step %d checkpoint: %v", step, err)
			}
		case op < 9: // crash + recover
			if !persistent {
				if err := s.Checkpoint(); err != nil && err != ErrBusy {
					t.Fatalf("step %d checkpoint: %v", step, err)
				}
				break
			}
			if err := s.CloseWithoutCheckpoint(); err != nil {
				t.Fatal(err)
			}
			s, err = Open(path, opts)
			if err != nil {
				t.Fatalf("step %d reopen after crash: %v", step, err)
			}
		default: // clean close + reopen
			if !persistent {
				if err := s.Checkpoint(); err != nil && err != ErrBusy {
					t.Fatalf("step %d checkpoint: %v", step, err)
				}
				break
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s, err = Open(path, opts)
			if err != nil {
				t.Fatalf("step %d reopen: %v", step, err)
			}
		}
		if step%20 == 0 || step == 399 {
			verify(step)
		}
	}
	verify(400)
}

// TestFreelistSurvivesCrash checks that freelist state (kept in the header
// page) recovers consistently: pages freed before a crash stay reusable and
// no page is handed out twice.
func TestFreelistSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fl.db")
	opts := Options{Sync: SyncOff, CheckpointFrames: -1, Backend: BackendFile}
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}

	var allocated []uint32
	if err := s.Update(func(wt *WriteTxn) error {
		for i := 0; i < 20; i++ {
			pg, _, err := wt.Allocate()
			if err != nil {
				return err
			}
			allocated = append(allocated, pg)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(wt *WriteTxn) error {
		for _, pg := range allocated[:10] {
			if err := wt.Free(pg); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseWithoutCheckpoint(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	seen := map[uint32]bool{}
	for _, pg := range allocated[10:] {
		seen[pg] = true // still-live pages must not be re-issued
	}
	if err := s2.Update(func(wt *WriteTxn) error {
		if wt.FreePages() != 10 {
			t.Errorf("free pages after crash = %d, want 10", wt.FreePages())
		}
		for i := 0; i < 15; i++ {
			pg, _, err := wt.Allocate()
			if err != nil {
				return err
			}
			if seen[pg] {
				t.Errorf("page %d double-allocated", pg)
			}
			seen[pg] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
