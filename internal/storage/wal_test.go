package storage

import (
	"path/filepath"
	"testing"
)

func TestWALIndexLookup(t *testing.T) {
	idx := newWALIndex()
	idx.publish(map[uint32]uint32{5: 10, 7: 11}, 1)
	idx.publish(map[uint32]uint32{5: 20}, 2)
	idx.publish(map[uint32]uint32{5: 30, 9: 31}, 3)

	cases := []struct {
		pageNo    uint32
		snapshot  uint64
		wantFrame uint32
		wantOK    bool
	}{
		{5, 0, 0, false}, // before any commit
		{5, 1, 10, true},
		{5, 2, 20, true},
		{5, 3, 30, true},
		{5, 99, 30, true}, // future snapshot sees newest
		{7, 1, 11, true},
		{7, 3, 11, true},
		{9, 2, 0, false}, // page committed later than snapshot
		{9, 3, 31, true},
		{42, 3, 0, false}, // never written
	}
	for _, c := range cases {
		frame, ok := idx.lookup(c.pageNo, c.snapshot)
		if ok != c.wantOK || (ok && frame != c.wantFrame) {
			t.Errorf("lookup(%d, %d) = %d,%v want %d,%v",
				c.pageNo, c.snapshot, frame, ok, c.wantFrame, c.wantOK)
		}
	}

	latest := idx.latest()
	if latest[5] != 30 || latest[7] != 11 || latest[9] != 31 {
		t.Errorf("latest = %v", latest)
	}
}

func TestWALAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(filepath.Join(dir, "x-wal"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()

	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	frame, err := w.appendFrame(7, data, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if frame != 0 {
		t.Errorf("first frame = %d", frame)
	}
	got := make([]byte, 4096)
	if err := w.readFrame(frame, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("frame data mismatch at %d", i)
		}
	}
	// Wrong-size frame rejected.
	if _, err := w.appendFrame(8, data[:100], 1, false, 0); err == nil {
		t.Error("short frame accepted")
	}
}

func TestWALRecoverCommittedOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "y-wal")
	w, err := openWAL(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	// Txn 1: two frames + commit.
	if _, err := w.appendFrame(1, data, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.appendFrame(0, data, 1, true, 5); err != nil {
		t.Fatal(err)
	}
	// Txn 2: spilled frames, never committed (rollback / crash).
	if _, err := w.appendFrame(2, data, 2, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.appendFrame(3, data, 2, false, 0); err != nil {
		t.Fatal(err)
	}
	// Txn 3: one frame + commit.
	if _, err := w.appendFrame(4, data, 3, true, 9); err != nil {
		t.Fatal(err)
	}
	w.close()

	w2, err := openWAL(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	idx, commits, pageCount, maxTxnID, err := w2.recover()
	if err != nil {
		t.Fatal(err)
	}
	if commits != 2 {
		t.Errorf("commits = %d, want 2", commits)
	}
	if pageCount != 9 {
		t.Errorf("pageCount = %d, want 9 (newest commit)", pageCount)
	}
	if maxTxnID != 3 {
		t.Errorf("maxTxnID = %d", maxTxnID)
	}
	// Uncommitted txn 2 pages invisible.
	if _, ok := idx.lookup(2, 99); ok {
		t.Error("rolled-back frame visible after recovery")
	}
	if _, ok := idx.lookup(3, 99); ok {
		t.Error("rolled-back frame visible after recovery")
	}
	if _, ok := idx.lookup(1, 1); !ok {
		t.Error("committed txn 1 frame missing")
	}
	if _, ok := idx.lookup(4, 2); !ok {
		t.Error("committed txn 3 frame missing")
	}
}

func TestBufferPoolLRUAndRekey(t *testing.T) {
	p := newBufferPool(4*4096, 4096) // room for 4 pages
	mk := func(tag byte) []byte {
		b := make([]byte, 4096)
		b[0] = tag
		return b
	}
	p.put(poolKey{pageNo: 1}, mk(1))
	p.put(poolKey{pageNo: 2}, mk(2))
	p.put(poolKey{pageNo: 3}, mk(3))
	p.put(poolKey{pageNo: 4}, mk(4))
	// Touch page 1 so page 2 is the LRU victim.
	if p.get(poolKey{pageNo: 1}) == nil {
		t.Fatal("page 1 missing")
	}
	p.put(poolKey{pageNo: 5}, mk(5))
	if p.get(poolKey{pageNo: 2}) != nil {
		t.Error("LRU page 2 not evicted")
	}
	if p.get(poolKey{pageNo: 1}) == nil {
		t.Error("recently used page 1 evicted")
	}

	// Rekey: page 6 has a base image and a newer WAL image; after a
	// checkpoint the WAL image must become the base image.
	p.put(poolKey{pageNo: 6, frame: 0}, mk(60))
	p.put(poolKey{pageNo: 6, frame: 9}, mk(69)) // frame 8 + 1
	p.checkpointRekey(map[uint32]uint32{6: 8})
	got := p.get(poolKey{pageNo: 6, frame: 0})
	if got == nil || got[0] != 69 {
		t.Errorf("rekeyed base image = %v", got)
	}
	if p.get(poolKey{pageNo: 6, frame: 9}) != nil {
		t.Error("stale WAL-keyed entry survived rekey")
	}

	hits, misses, evictions := p.stats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats = %d, %d", hits, misses)
	}
	if evictions == 0 {
		t.Errorf("evictions = %d, want > 0 (page 2 was evicted)", evictions)
	}
	p.drop()
	if p.bytes() != 0 {
		t.Errorf("bytes after drop = %d", p.bytes())
	}
}
