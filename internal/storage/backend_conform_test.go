package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The backend conformance battery runs the store's core guarantees —
// transactional round-trips, snapshot isolation, spills, checkpoints,
// torture, and the WAL-failpoint crash battery — over every Backend
// implementation. Persistence-dependent assertions (crash-reopen recovery)
// run only on persistent backends; the memory backend skips them
// explicitly (see runTorture/runFailpointBattery) and instead asserts its
// documented ephemeral contract: a reopen is a fresh, empty store.

type backendCase struct {
	name       string
	kind       BackendKind
	persistent bool
}

func conformanceBackends(t *testing.T) []backendCase {
	t.Helper()
	cases := []backendCase{{"file", BackendFile, true}}
	if mmapSupported {
		cases = append(cases, backendCase{"mmap", BackendMmap, true})
	} else {
		t.Log("mmap backend not supported on this platform; skipping its conformance leg")
	}
	return append(cases, backendCase{"memory", BackendMemory, false})
}

func conformOpts(kind BackendKind) Options {
	o := testOpts()
	o.Backend = kind
	return o
}

// TestBackendConformanceRoundTrip checks the single-open transactional
// contract on every backend: committed writes are visible, rollbacks leave
// no trace, spilled transactions re-read their own writes, snapshots are
// isolated, checkpoints fold the WAL without losing data, and DropCaches
// never affects correctness.
func TestBackendConformanceRoundTrip(t *testing.T) {
	for _, bc := range conformanceBackends(t) {
		t.Run(bc.name, func(t *testing.T) {
			opts := conformOpts(bc.kind)
			s, _ := openTemp(t, opts)
			if s.Kind() != bc.kind {
				t.Fatalf("Kind() = %v, want %v", s.Kind(), bc.kind)
			}
			if s.Persistent() != bc.persistent {
				t.Fatalf("Persistent() = %v, want %v", s.Persistent(), bc.persistent)
			}

			// Commit pages, spilling along the way, and read them back.
			const n = 48
			pages := make([]uint32, n)
			err := s.Update(func(wt *WriteTxn) error {
				for i := 0; i < n; i++ {
					pg, buf, err := wt.Allocate()
					if err != nil {
						return err
					}
					pages[i] = pg
					buf[0] = byte(i)
					buf[len(buf)-1] = 0xEE
					if err := wt.SpillIfNeeded(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			readAll := func(stage string) {
				t.Helper()
				err := s.View(func(rt *ReadTxn) error {
					for i, pg := range pages {
						p, err := rt.Get(pg)
						if err != nil {
							return err
						}
						if p[0] != byte(i) || p[len(p)-1] != 0xEE {
							t.Errorf("%s: page %d = %d,%x", stage, pg, p[0], p[len(p)-1])
						}
					}
					return nil
				})
				if err != nil {
					t.Fatalf("%s: %v", stage, err)
				}
			}
			readAll("after commit")

			// Rollback leaves no trace.
			wt, err := s.BeginWrite()
			if err != nil {
				t.Fatal(err)
			}
			for _, pg := range pages[:8] {
				buf, err := wt.GetMut(pg)
				if err != nil {
					t.Fatal(err)
				}
				buf[0] = 0xFF
			}
			wt.Rollback()
			readAll("after rollback")

			// Snapshot isolation across a concurrent commit.
			rt, err := s.BeginRead()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Update(func(wt *WriteTxn) error {
				buf, err := wt.GetMut(pages[0])
				if err != nil {
					return err
				}
				buf[0] = 0xAB
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if p, err := rt.Get(pages[0]); err != nil || p[0] != 0 {
				t.Errorf("old snapshot sees %v, %v; want 0", p[0], err)
			}
			rt.Close()
			if err := s.View(func(rt *ReadTxn) error {
				p, err := rt.Get(pages[0])
				if err != nil {
					return err
				}
				if p[0] != 0xAB {
					t.Errorf("new snapshot sees %x, want ab", p[0])
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Checkpoint folds the WAL; reads now come from the backend's
			// base array (zero-copy for mmap/memory).
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if st := s.Stats(); st.WALFrames != 0 {
				t.Errorf("WAL frames after checkpoint = %d", st.WALFrames)
			}
			if err := s.View(func(rt *ReadTxn) error {
				p, err := rt.Get(pages[0])
				if err != nil {
					return err
				}
				if p[0] != 0xAB || p[len(p)-1] != 0xEE {
					t.Errorf("post-checkpoint page = %x,%x", p[0], p[len(p)-1])
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Cold start: dropping caches must not affect correctness.
			s.DropCaches()
			if err := s.View(func(rt *ReadTxn) error {
				for i, pg := range pages[1:] {
					p, err := rt.Get(pg)
					if err != nil {
						return err
					}
					if p[0] != byte(i+1) {
						t.Errorf("post-drop page %d = %d", pg, p[0])
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Writes after a checkpoint keep working (mmap: this is the
			// grown-file + remap path; the new pages live beyond the
			// original mapping until the next checkpoint remaps).
			if err := s.Update(func(wt *WriteTxn) error {
				pg, buf, err := wt.Allocate()
				if err != nil {
					return err
				}
				buf[0] = 0x77
				pages = append(pages, pg)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := s.View(func(rt *ReadTxn) error {
				p, err := rt.Get(pages[len(pages)-1])
				if err != nil {
					return err
				}
				if p[0] != 0x77 {
					t.Errorf("post-growth page = %x", p[0])
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBackendConformanceTorture replays the randomized durability torture
// battery on every backend.
func TestBackendConformanceTorture(t *testing.T) {
	for _, bc := range conformanceBackends(t) {
		t.Run(bc.name, func(t *testing.T) {
			opts := Options{Sync: SyncOff, MaxDirtyPages: 4, CheckpointFrames: -1, Backend: bc.kind}
			runTorture(t, opts, bc.persistent)
		})
	}
}

// TestBackendConformanceFailpoint replays the WAL torn-commit crash
// battery on every backend.
func TestBackendConformanceFailpoint(t *testing.T) {
	for _, bc := range conformanceBackends(t) {
		t.Run(bc.name, func(t *testing.T) {
			opts := Options{Sync: SyncOff, MaxDirtyPages: 4, CheckpointFrames: -1, Backend: bc.kind}
			runFailpointBattery(t, opts, bc.persistent)
		})
	}
}

// TestBackendAutoDetect proves the header records the backend: a database
// created with mmap reopens as mmap when Options.Backend is left default,
// and an explicit file override still opens (shared on-disk format).
func TestBackendAutoDetect(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap backend not supported on this platform")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "auto.db")
	opts := conformOpts(BackendMmap)
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		pg = n
		copy(buf, []byte("via mmap"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Default reopen auto-detects mmap from the header.
	def := testOpts()
	if v := os.Getenv(EnvBackendVar); v != "" {
		t.Logf("%s=%s set: auto-detect is overridden by the env matrix, checking explicit opens only", EnvBackendVar, v)
	} else {
		s2, err := Open(path, def)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Kind() != BackendMmap {
			t.Errorf("auto-detected kind = %v, want mmap", s2.Kind())
		}
		if err := s2.View(func(rt *ReadTxn) error {
			p, err := rt.Get(pg)
			if err != nil {
				return err
			}
			if !bytes.HasPrefix(p, []byte("via mmap")) {
				t.Errorf("content = %q", p[:8])
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Explicit file open of an mmap-created database works: one format.
	s3, err := Open(path, conformOpts(BackendFile))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Kind() != BackendFile {
		t.Errorf("explicit kind = %v, want file", s3.Kind())
	}
	if err := s3.View(func(rt *ReadTxn) error {
		p, err := rt.Get(pg)
		if err != nil {
			return err
		}
		if !bytes.HasPrefix(p, []byte("via mmap")) {
			t.Errorf("content via file backend = %q", p[:8])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryBackendEphemeral asserts the documented memory-backend
// contract: nothing touches the filesystem, no lock is taken, and a
// "reopen" of the same path is a fresh empty store.
func TestMemoryBackendEphemeral(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ephemeral.db")
	opts := conformOpts(BackendMemory)
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		pg = n
		copy(buf, []byte("volatile"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// No files: not the page file, not the WAL, not the lock.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("memory backend created files: %v", names)
	}

	// A second concurrent open is allowed (no lock) and independent.
	s2, err := Open(path, opts)
	if err != nil {
		t.Fatalf("second memory open: %v", err)
	}
	if err := s2.View(func(rt *ReadTxn) error {
		if _, err := rt.Get(pg); !errors.Is(err, ErrBadPage) {
			t.Errorf("fresh memory store has page %d (err=%v), want ErrBadPage", pg, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMmapRemapGrowth grows an mmap-backed store across several
// checkpoints while a reader retains zero-copy page slices, proving the
// retired-mapping strategy: slices handed out before a remap stay valid
// and unchanged.
func TestMmapRemapGrowth(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap backend not supported on this platform")
	}
	opts := conformOpts(BackendMmap)
	s, _ := openTemp(t, opts)

	var first uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		first = n
		copy(buf, []byte("generation-0"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Grab a zero-copy slice of the first page from the current mapping.
	rt, err := s.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	held, err := rt.Get(first)
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()

	// Grow the file through several checkpoint cycles (each one remaps).
	for round := 0; round < 4; round++ {
		if err := s.Update(func(wt *WriteTxn) error {
			for i := 0; i < 128; i++ {
				_, buf, err := wt.Allocate()
				if err != nil {
					return err
				}
				buf[0] = byte(round + 1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	// The pre-remap slice is still mapped and still holds its content.
	if !bytes.HasPrefix(held, []byte("generation-0")) {
		t.Errorf("held slice corrupted after remaps: %q", held[:12])
	}
	// And fresh reads of old and new pages work through the new mapping.
	if err := s.View(func(rt *ReadTxn) error {
		p, err := rt.Get(first)
		if err != nil {
			return err
		}
		if !bytes.HasPrefix(p, []byte("generation-0")) {
			t.Errorf("page %d = %q", first, p[:12])
		}
		last := uint32(1 + 4*128)
		p, err = rt.Get(last)
		if err != nil {
			return err
		}
		if p[0] != 4 {
			t.Errorf("page %d = %d, want 4", last, p[0])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestParseBackend covers the name round-trip used by the CLI, the env
// matrix and the shard manifest.
func TestParseBackend(t *testing.T) {
	cases := map[string]BackendKind{
		"":          BackendDefault,
		"default":   BackendDefault,
		"file":      BackendFile,
		"mmap":      BackendMmap,
		"read-mmap": BackendMmap,
		"memory":    BackendMemory,
		"mem":       BackendMemory,
	}
	for in, want := range cases {
		got, err := ParseBackend(in)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackend("tape"); err == nil {
		t.Error("ParseBackend(tape) should fail")
	}
	for _, k := range []BackendKind{BackendFile, BackendMmap, BackendMemory} {
		rt, err := ParseBackend(k.String())
		if err != nil || rt != k {
			t.Errorf("round-trip %v -> %q -> %v, %v", k, k.String(), rt, err)
		}
	}
}
