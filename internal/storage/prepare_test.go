package storage

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPrepareUpgradeNoConflict(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		if err != nil {
			return err
		}
		pg = n
		copy(buf, []byte("v1"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	pt, err := s.BeginPrepare()
	if err != nil {
		t.Fatal(err)
	}
	got, err := pt.Read().Get(pg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("v1")) {
		t.Fatalf("prepare snapshot read %q", got[:2])
	}
	wt, stale, err := pt.Upgrade()
	if err != nil {
		t.Fatal(err)
	}
	if stale != 0 {
		t.Fatalf("stale = %d, want 0", stale)
	}
	buf, err := wt.GetMut(pg)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte("v2"))
	if err := wt.Commit(); err != nil {
		t.Fatal(err)
	}
	pt.Abort() // idempotent after Upgrade

	if err := s.View(func(rt *ReadTxn) error {
		b, err := rt.Get(pg)
		if err != nil {
			return err
		}
		if !bytes.HasPrefix(b, []byte("v2")) {
			t.Errorf("after upgrade commit read %q", b[:2])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareUpgradeCountsInterveningCommits(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, _, err := wt.Allocate()
		pg = n
		return err
	}); err != nil {
		t.Fatal(err)
	}

	pt, err := s.BeginPrepare()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Read().Get(pg); err != nil {
		t.Fatal(err)
	}
	// Two commits land between the snapshot pin and the upgrade.
	for i := 0; i < 2; i++ {
		if err := s.Update(func(wt *WriteTxn) error {
			buf, err := wt.GetMut(pg)
			if err != nil {
				return err
			}
			buf[0] = byte(i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	wt, stale, err := pt.Upgrade()
	if err != nil {
		t.Fatal(err)
	}
	if stale != 2 {
		t.Errorf("stale = %d, want 2", stale)
	}
	wt.Rollback()
}

func TestPrepareAbortBeforeUpgrade(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	pt, err := s.BeginPrepare()
	if err != nil {
		t.Fatal(err)
	}
	pt.Abort()
	pt.Abort() // idempotent
	// The writer gate must be free: a plain write proceeds.
	if err := s.Update(func(wt *WriteTxn) error {
		_, _, err := wt.Allocate()
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterGateFIFO(t *testing.T) {
	var g writerGate
	g.acquire()
	const n = 8
	order := make([]int, 0, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.acquire()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			g.release()
		}(i)
		// Serialize arrival order so FIFO hand-off is observable.
		time.Sleep(10 * time.Millisecond)
	}
	g.release()
	wg.Wait()
	for i := 1; i < n; i++ {
		if order[i] < order[i-1] {
			t.Fatalf("gate hand-off out of arrival order: %v", order)
		}
	}
}

func TestOnCommitRunsAfterPublish(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	var pg uint32
	var sawCommitted atomic.Bool
	wt, err := s.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	n, buf, err := wt.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pg = n
	copy(buf, []byte("hooked"))
	wt.OnCommit(func() {
		// The commit has published: a fresh reader sees the new page.
		err := s.View(func(rt *ReadTxn) error {
			b, err := rt.Get(pg)
			if err != nil {
				return err
			}
			sawCommitted.Store(bytes.HasPrefix(b, []byte("hooked")))
			return nil
		})
		if err != nil {
			t.Errorf("View inside OnCommit: %v", err)
		}
	})
	if err := wt.Commit(); err != nil {
		t.Fatal(err)
	}
	if !sawCommitted.Load() {
		t.Error("OnCommit hook did not observe the published commit")
	}
}

func TestOnCommitDroppedOnRollback(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	wt, err := s.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	wt.OnCommit(func() { fired = true })
	wt.Rollback()
	if fired {
		t.Error("OnCommit hook ran on Rollback")
	}
	// Gate released: next writer proceeds.
	if err := s.Update(func(wt *WriteTxn) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestReadaheadSafeAcrossBackends(t *testing.T) {
	for _, kind := range []BackendKind{BackendFile, BackendMmap, BackendMemory} {
		t.Run(kind.String(), func(t *testing.T) {
			opts := testOpts()
			opts.Backend = kind
			s, _ := openTemp(t, opts)
			var pages []uint32
			if err := s.Update(func(wt *WriteTxn) error {
				for i := 0; i < 8; i++ {
					n, buf, err := wt.Allocate()
					if err != nil {
						return err
					}
					buf[0] = byte(i)
					pages = append(pages, n)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := s.Checkpoint(); err != nil && !errors.Is(err, ErrBusy) {
				t.Fatal(err)
			}
			rt, err := s.BeginRead()
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			// Only the mmap backend advertises readahead; the call must be
			// a safe no-op (and WantReadahead false) everywhere else.
			want := kind == BackendMmap
			if got := rt.WantReadahead(); got != want {
				t.Errorf("WantReadahead = %v, want %v", got, want)
			}
			rt.Readahead(pages)
			rt.Readahead(nil)
			rt.Readahead([]uint32{pages[3], pages[3], pages[0]}) // dups, unsorted
			for i, pg := range pages {
				b, err := rt.Get(pg)
				if err != nil {
					t.Fatal(err)
				}
				if b[0] != byte(i) {
					t.Errorf("page %d content %d after readahead", pg, b[0])
				}
			}
		})
	}
}

func TestCloseWaitsForWriter(t *testing.T) {
	opts := testOpts()
	s, _ := openTemp(t, opts)
	wt, err := s.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wt.Allocate(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case <-done:
		t.Fatal("Close returned while a write transaction was open")
	case <-time.After(50 * time.Millisecond):
	}
	if err := wt.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Close after commit: %v", err)
	}
}
