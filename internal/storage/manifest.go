package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Sharded-database directory layout. A sharded MicroNN database is a
// directory holding one fully independent store per shard — each with its
// own page file, WAL and lock — plus a manifest that pins the topology:
//
//	<dir>/MANIFEST.json
//	<dir>/shard-000/data.mnn      (+ -wal, .lock)
//	<dir>/shard-001/data.mnn
//	...
//
// The manifest records the shard count and the hash seed that routed items
// to shards at write time. Both are immutable for the life of the database:
// reopening with a different topology would silently mis-route every lookup,
// so ValidateManifestDir refuses mismatched counts, missing shard
// directories and stray shard directories alike.

// ManifestName is the topology file's name inside a sharded database dir.
const ManifestName = "MANIFEST.json"

// manifestVersion is the current manifest format version.
const manifestVersion = 1

// Manifest pins a sharded database's topology.
type Manifest struct {
	// Version is the manifest format version (currently 1).
	Version int `json:"version"`
	// Shards is the immutable shard count items are hashed across.
	Shards int `json:"shards"`
	// HashSeed seeds the id hash; it must be identical on every open or
	// ids would route to the wrong shard.
	HashSeed uint64 `json:"hash_seed"`
	// Backend records an explicitly chosen page-store backend for every
	// shard ("file", "mmap", "memory"). Empty means the creator left the
	// choice to BackendDefault: each shard then auto-detects from its own
	// store header. Unlike Shards/HashSeed this is a preference, not a
	// routing invariant — but reopening with a conflicting explicit
	// choice still fails fast so a fleet of shards never runs mixed
	// engines by accident.
	Backend string `json:"backend,omitempty"`
}

func (m Manifest) validate() error {
	if m.Version != manifestVersion {
		return fmt.Errorf("storage: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Shards < 1 {
		return fmt.Errorf("storage: manifest shard count %d, want >= 1", m.Shards)
	}
	if _, err := ParseBackend(m.Backend); err != nil {
		return fmt.Errorf("storage: manifest backend: %w", err)
	}
	return nil
}

// BackendKindOf returns the manifest's backend as a kind (BackendDefault
// when unset).
func (m Manifest) BackendKindOf() BackendKind {
	k, err := ParseBackend(m.Backend)
	if err != nil {
		return BackendDefault
	}
	return k
}

// ShardDir returns the directory of shard i inside dir.
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// ShardDBPath returns the page-store path of shard i inside dir.
func ShardDBPath(dir string, i int) string {
	return filepath.Join(ShardDir(dir, i), "data.mnn")
}

// WriteManifest creates dir (if needed) and persists the manifest. The file
// is written to a temp name and renamed, so a crash mid-write never leaves a
// half manifest behind.
func WriteManifest(dir string, m Manifest) error {
	m.Version = manifestVersion
	if err := m.validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestName))
}

// ReadManifest loads and validates dir's manifest. It returns ok=false with
// a nil error when no manifest exists (dir is not a sharded database).
func ReadManifest(dir string) (Manifest, bool, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}

// ValidateManifestDir cross-checks the manifest against the directory: every
// declared shard directory must exist and no undeclared shard-* directory
// may be present. Used on open and by the sharded invariant battery.
func ValidateManifestDir(dir string, m Manifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	found := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			found[e.Name()] = true
		}
	}
	for i := 0; i < m.Shards; i++ {
		name := filepath.Base(ShardDir(dir, i))
		if !found[name] {
			return fmt.Errorf("storage: manifest declares %d shards but %s is missing", m.Shards, name)
		}
		delete(found, name)
	}
	if len(found) > 0 {
		stray := make([]string, 0, len(found))
		for name := range found {
			stray = append(stray, name)
		}
		sort.Strings(stray)
		return fmt.Errorf("storage: shard directories %v not declared by the manifest (%d shards)", stray, m.Shards)
	}
	return nil
}
