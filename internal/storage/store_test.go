package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testOpts() Options {
	return Options{Sync: SyncOff, PoolBytes: 1 << 20, MaxDirtyPages: 16, CheckpointFrames: -1}
}

// fileOpts pins the file backend for tests that assert file-format or
// cross-reopen behavior regardless of the MICRONN_TEST_BACKEND matrix;
// the backend conformance battery covers mmap and memory explicitly.
func fileOpts() Options {
	o := testOpts()
	o.Backend = BackendFile
	return o
}

func openTemp(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("Close: %v", err)
		}
	})
	return s, path
}

func fillPage(s *Store, tag byte) []byte {
	p := make([]byte, s.PageSize())
	for i := range p {
		p[i] = tag
	}
	return p
}

func TestOpenCreatesHeader(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	err := s.View(func(rt *ReadTxn) error {
		h, err := rt.Header()
		if err != nil {
			return err
		}
		if h.pageCount != 1 {
			t.Errorf("pageCount = %d, want 1", h.pageCount)
		}
		if h.pageSize != DefaultPageSize {
			t.Errorf("pageSize = %d", h.pageSize)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllocateWriteReadBack(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	var pg uint32
	err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		if err != nil {
			return err
		}
		pg = n
		copy(buf, []byte("hello page"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *ReadTxn) error {
		p, err := rt.Get(pg)
		if err != nil {
			return err
		}
		if !bytes.HasPrefix(p, []byte("hello page")) {
			t.Errorf("page content = %q", p[:16])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRollbackDiscardsChanges(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		pg = n
		copy(buf, []byte("committed"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wt, err := s.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := wt.GetMut(pg)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte("uncommitted"))
	wt.Rollback()

	err = s.View(func(rt *ReadTxn) error {
		p, err := rt.Get(pg)
		if err != nil {
			return err
		}
		if !bytes.HasPrefix(p, []byte("committed")) {
			t.Errorf("page = %q, rollback leaked", p[:16])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		pg = n
		buf[0] = 1
		return err
	}); err != nil {
		t.Fatal(err)
	}

	rt, err := s.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Commit a new version while the reader is open.
	if err := s.Update(func(wt *WriteTxn) error {
		buf, err := wt.GetMut(pg)
		if err != nil {
			return err
		}
		buf[0] = 2
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	p, err := rt.Get(pg)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 {
		t.Errorf("old reader sees %d, want 1", p[0])
	}

	rt2, err := s.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	p2, err := rt2.Get(pg)
	if err != nil {
		t.Fatal(err)
	}
	if p2[0] != 2 {
		t.Errorf("new reader sees %d, want 2", p2[0])
	}
}

func TestWriteTxnSeesOwnWrites(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		if err != nil {
			return err
		}
		buf[0] = 42
		got, err := wt.Get(n)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			t.Errorf("own write invisible: %d", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFreelistReuse(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, _, err := wt.Allocate()
		pg = n
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(wt *WriteTxn) error {
		return wt.Free(pg)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(wt *WriteTxn) error {
		n, _, err := wt.Allocate()
		if err != nil {
			return err
		}
		if n != pg {
			t.Errorf("allocated %d, want reused %d", n, pg)
		}
		if wt.FreePages() != 0 {
			t.Errorf("freelist len = %d, want 0", wt.FreePages())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeInvalidPage(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	err := s.Update(func(wt *WriteTxn) error {
		if err := wt.Free(0); !errors.Is(err, ErrBadPage) {
			t.Errorf("Free(0) = %v, want ErrBadPage", err)
		}
		if err := wt.Free(9999); !errors.Is(err, ErrBadPage) {
			t.Errorf("Free(9999) = %v, want ErrBadPage", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpillLargeTransaction(t *testing.T) {
	opts := testOpts()
	opts.MaxDirtyPages = 4
	s, _ := openTemp(t, opts)
	const n = 64
	pages := make([]uint32, n)
	err := s.Update(func(wt *WriteTxn) error {
		for i := 0; i < n; i++ {
			pg, buf, err := wt.Allocate()
			if err != nil {
				return err
			}
			pages[i] = pg
			buf[0] = byte(i)
			buf[1] = 0xAA
			if err := wt.SpillIfNeeded(); err != nil {
				return err
			}
			if wt.DirtyPages() > 5 {
				t.Errorf("dirty pages %d exceeds spill threshold", wt.DirtyPages())
			}
		}
		// Re-read every page inside the txn: most were spilled to the WAL.
		for i, pg := range pages {
			p, err := wt.Get(pg)
			if err != nil {
				return err
			}
			if p[0] != byte(i) || p[1] != 0xAA {
				t.Errorf("page %d content %d,%x", pg, p[0], p[1])
			}
		}
		// Modify a spilled page again.
		buf, err := wt.GetMut(pages[0])
		if err != nil {
			return err
		}
		buf[1] = 0xBB
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *ReadTxn) error {
		for i, pg := range pages {
			p, err := rt.Get(pg)
			if err != nil {
				return err
			}
			want := byte(0xAA)
			if i == 0 {
				want = 0xBB
			}
			if p[0] != byte(i) || p[1] != want {
				t.Errorf("page %d after commit: %d,%x want %d,%x", pg, p[0], p[1], i, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpilledRollbackInvisible(t *testing.T) {
	opts := testOpts()
	opts.MaxDirtyPages = 2
	s, _ := openTemp(t, opts)
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		pg = n
		buf[0] = 7
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wt, err := s.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	// Force spills by touching many pages.
	for i := 0; i < 16; i++ {
		if _, _, err := wt.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := wt.SpillIfNeeded(); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := wt.GetMut(pg)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	wt.Rollback()

	// After rollback followed by a fresh commit, the rolled-back frames
	// must stay invisible (also across recovery, tested elsewhere).
	if err := s.Update(func(wt *WriteTxn) error { return nil }); err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *ReadTxn) error {
		p, err := rt.Get(pg)
		if err != nil {
			return err
		}
		if p[0] != 7 {
			t.Errorf("page = %d, want 7", p[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	opts := fileOpts()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		pg = n
		copy(buf, []byte("persist me"))
		wt.SetCatalogRoot(n)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	err = s2.View(func(rt *ReadTxn) error {
		root, err := rt.CatalogRoot()
		if err != nil {
			return err
		}
		if root != pg {
			t.Errorf("catalog root = %d, want %d", root, pg)
		}
		p, err := rt.Get(pg)
		if err != nil {
			return err
		}
		if !bytes.HasPrefix(p, []byte("persist me")) {
			t.Errorf("content = %q", p[:16])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	opts := fileOpts()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var pg uint32
	for i := 0; i < 5; i++ {
		if err := s.Update(func(wt *WriteTxn) error {
			n, buf, err := wt.Allocate()
			if err != nil {
				return err
			}
			pg = n
			buf[0] = byte(i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no checkpoint, WAL left behind.
	if err := s.CloseWithoutCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path + "-wal"); err != nil || st.Size() == 0 {
		t.Fatalf("expected non-empty WAL, err=%v", err)
	}

	s2, err := Open(path, opts)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	err = s2.View(func(rt *ReadTxn) error {
		p, err := rt.Get(pg)
		if err != nil {
			return err
		}
		if p[0] != 4 {
			t.Errorf("recovered page = %d, want 4", p[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryDiscardsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	opts := fileOpts()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		pg = n
		buf[0] = 1
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(wt *WriteTxn) error {
		buf, err := wt.GetMut(pg)
		if err != nil {
			return err
		}
		buf[0] = 2
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseWithoutCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the tail of the WAL: flip a byte in the last frame.
	walPath := path + "-wal"
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, opts)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	err = s2.View(func(rt *ReadTxn) error {
		p, err := rt.Get(pg)
		if err != nil {
			return err
		}
		// Second commit's frames are torn; first commit must survive.
		if p[0] != 1 {
			t.Errorf("page after torn-tail recovery = %d, want 1", p[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointFoldsWAL(t *testing.T) {
	s, path := openTemp(t, fileOpts())
	var pg uint32
	if err := s.Update(func(wt *WriteTxn) error {
		n, buf, err := wt.Allocate()
		pg = n
		copy(buf, []byte("checkpointed"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WALFrames != 0 {
		t.Errorf("WAL frames after checkpoint = %d, want 0", st.WALFrames)
	}
	if st.Checkpoints != 1 {
		t.Errorf("checkpoints = %d, want 1", st.Checkpoints)
	}
	// Base file must now contain the page.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int(pg) * int(s.PageSize())
	if !bytes.HasPrefix(raw[off:], []byte("checkpointed")) {
		t.Error("base file missing checkpointed page")
	}
	// And reads still work (through re-keyed cache or base file).
	err = s.View(func(rt *ReadTxn) error {
		p, err := rt.Get(pg)
		if err != nil {
			return err
		}
		if !bytes.HasPrefix(p, []byte("checkpointed")) {
			t.Errorf("post-checkpoint read = %q", p[:16])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointBlockedByOldReader(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	if err := s.Update(func(wt *WriteTxn) error {
		_, _, err := wt.Allocate()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rt, err := s.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	// Another commit moves the horizon past the reader.
	if err := s.Update(func(wt *WriteTxn) error {
		_, _, err := wt.Allocate()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrBusy) {
		t.Errorf("Checkpoint with old reader = %v, want ErrBusy", err)
	}
	rt.Close()
	if err := s.Checkpoint(); err != nil {
		t.Errorf("Checkpoint after reader closed: %v", err)
	}
}

func TestCurrentReaderDoesNotBlockCheckpoint(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	if err := s.Update(func(wt *WriteTxn) error {
		_, _, err := wt.Allocate()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rt, err := s.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := s.Checkpoint(); err != nil {
		t.Errorf("Checkpoint with current-horizon reader: %v", err)
	}
	// Reader still works after the WAL vanished beneath it.
	if _, err := rt.Get(1); err != nil {
		t.Errorf("read after checkpoint: %v", err)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	opts := testOpts()
	opts.MaxDirtyPages = 8
	s, _ := openTemp(t, opts)
	const pages = 32
	ids := make([]uint32, pages)
	if err := s.Update(func(wt *WriteTxn) error {
		for i := range ids {
			n, buf, err := wt.Allocate()
			if err != nil {
				return err
			}
			ids[i] = n
			putLEU32(buf, 0) // version counter
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	// Writer: bumps every page's version in each txn (all-or-nothing).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint32(1); v <= 50; v++ {
			err := s.Update(func(wt *WriteTxn) error {
				for _, pg := range ids {
					buf, err := wt.GetMut(pg)
					if err != nil {
						return err
					}
					putLEU32(buf, v)
				}
				return nil
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers: every snapshot must observe a single consistent version.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := s.View(func(rt *ReadTxn) error {
					first, err := rt.Get(ids[0])
					if err != nil {
						return err
					}
					want := leU32(first)
					for _, pg := range ids[1:] {
						p, err := rt.Get(pg)
						if err != nil {
							return err
						}
						if got := leU32(p); got != want {
							return fmt.Errorf("torn snapshot: page %d version %d, want %d", pg, got, want)
						}
					}
					_ = rng.Int()
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(int64(r))
	}

	// Wait for the writer to finish, then stop readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Close stop after writer goroutine finished all commits: detect via
	// polling the stats.
	for {
		st := s.Stats()
		if st.Commits >= 51 { // 1 setup + 50 writer commits
			break
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}
	close(stop)
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestPoolEviction(t *testing.T) {
	opts := testOpts()
	opts.PoolBytes = 8 * DefaultPageSize
	s, _ := openTemp(t, opts)
	if err := s.Update(func(wt *WriteTxn) error {
		for i := 0; i < 64; i++ {
			_, buf, err := wt.Allocate()
			if err != nil {
				return err
			}
			buf[0] = byte(i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	err := s.View(func(rt *ReadTxn) error {
		for pg := uint32(1); pg <= 64; pg++ {
			if _, err := rt.Get(pg); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.pool.bytes(); got > opts.PoolBytes {
		t.Errorf("pool bytes %d exceeds budget %d", got, opts.PoolBytes)
	}
}

func TestDropCaches(t *testing.T) {
	s, _ := openTemp(t, testOpts())
	if err := s.Update(func(wt *WriteTxn) error {
		_, _, err := wt.Allocate()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	s.DropCaches()
	if got := s.pool.bytes(); got != 0 {
		t.Errorf("pool bytes after drop = %d", got)
	}
	// Reads must still work (from WAL/base file).
	if err := s.View(func(rt *ReadTxn) error {
		_, err := rt.Get(1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLockingExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	opts := fileOpts()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Open(path, opts); !errors.Is(err, ErrLocked) {
		t.Errorf("second Open = %v, want ErrLocked", err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	s, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginRead(); !errors.Is(err, ErrClosed) {
		t.Errorf("BeginRead on closed = %v", err)
	}
	if _, err := s.BeginWrite(); !errors.Is(err, ErrClosed) {
		t.Errorf("BeginWrite on closed = %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close = %v", err)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	opts := testOpts()
	opts.CheckpointFrames = 8
	s, _ := openTemp(t, opts)
	for i := 0; i < 10; i++ {
		if err := s.Update(func(wt *WriteTxn) error {
			_, _, err := wt.Allocate()
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Checkpoints == 0 {
		t.Error("expected at least one auto checkpoint")
	}
}

func TestPageSizeMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	s, err := Open(path, fileOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	opts := fileOpts()
	opts.PageSize = 8192
	if _, err := Open(path, opts); err == nil {
		t.Error("expected page size mismatch error")
	}
}
