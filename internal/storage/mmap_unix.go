//go:build unix

package storage

import (
	"fmt"
	"math/bits"
	"os"
	"sync"
	"syscall"
)

// mmapSupported gates the read-mmap backend per platform.
const mmapSupported = true

// mmapBackend serves base-page reads from a read-only MAP_SHARED mapping
// of the database file: a page read is a bounds check and a slice, with no
// read syscall and no copy into the buffer pool (the OS page cache is the
// cache). Writes — checkpoint folds and fresh-database initialization —
// still go through the file descriptor; the unified page cache keeps the
// mapping coherent with them.
//
// Growth: the base file only ever grows (checkpoints append pages, the
// freelist recycles interior ones). Remap over-maps — it maps twice the
// current file size, and zero-copy reads are gated on the validated file
// extent rather than the mapping length — so most growth steps only bump
// the extent and a new mapping is needed just O(log growth) times.
// Touching a mapped page past EOF would SIGBUS, but ReadPage never
// dereferences beyond the extent, and once the file grows to cover a
// mapped offset the access is valid (MAP_SHARED mappings track the file).
// Old mappings are retired, not unmapped, until Close: readers may still
// hold slices handed out before a remap, the doubling bounds the retired
// list, and all mappings share one set of physical pages. Reads past the
// extent (pages checkpointed after the last Remap, or declared by a
// recovered WAL but never folded) fall back to pread.
type mmapBackend struct {
	f        *os.File
	pageSize uint32

	// mu guards data/extent/retired; reads take the read lock only long
	// enough to grab the current mapping slice and extent.
	mu      sync.RWMutex
	data    []byte // current mapping; len may exceed the file size
	extent  int64  // file bytes (whole pages) valid for zero-copy reads
	retired [][]byte
}

func newMmapBackend(f *os.File, pageSize uint32) (*mmapBackend, error) {
	b := &mmapBackend{f: f, pageSize: pageSize}
	if err := b.Remap(); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *mmapBackend) Kind() BackendKind { return BackendMmap }

func (b *mmapBackend) ReadPage(pageNo uint32, buf []byte) ([]byte, bool, error) {
	off := int64(pageNo) * int64(b.pageSize)
	b.mu.RLock()
	m, ext := b.data, b.extent
	b.mu.RUnlock()
	if end := off + int64(b.pageSize); end <= ext && end <= int64(len(m)) {
		return m[off : off+int64(b.pageSize) : off+int64(b.pageSize)], true, nil
	}
	if uint32(len(buf)) != b.pageSize {
		buf = make([]byte, b.pageSize)
	}
	if _, err := b.f.ReadAt(buf, off); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

func (b *mmapBackend) WritePage(pageNo uint32, data []byte) error {
	_, err := b.f.WriteAt(data, int64(pageNo)*int64(b.pageSize))
	return err
}

func (b *mmapBackend) Sync() error { return b.f.Sync() }

func (b *mmapBackend) Size() (int64, error) {
	st, err := b.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Remap refreshes the zero-copy extent after the file grew (open time and
// every checkpoint fold+sync). When the current mapping already covers the
// new extent this is just a bookkeeping bump; otherwise a new mapping of
// twice the file size is created and the old one is retired.
func (b *mmapBackend) Remap() error {
	st, err := b.f.Stat()
	if err != nil {
		return err
	}
	// Whole pages only; a ragged tail (torn by a crashed direct write) is
	// served by the pread fallback like any beyond-extent read.
	size := st.Size() - st.Size()%int64(b.pageSize)
	b.mu.Lock()
	defer b.mu.Unlock()
	if size <= int64(len(b.data)) {
		b.extent = size
		return nil
	}
	// Over-map 2x on 64-bit, where address space is free. On 32-bit it is
	// the scarce resource, so map the exact extent (more remaps, but each
	// retired mapping is as small as possible) and clamp to the largest
	// whole-page int if the file outgrows the address space — reads past
	// the mapping fall back to pread.
	mapLen := 2 * size
	const maxInt = int64(^uint(0) >> 1)
	if bits.UintSize == 32 {
		mapLen = size
	}
	if mapLen > maxInt {
		mapLen = maxInt - maxInt%int64(b.pageSize)
	}
	if mapLen <= int64(len(b.data)) {
		// Clamped below the file size and already mapped that much:
		// nothing to gain from an identical mapping.
		b.extent = size
		return nil
	}
	m, err := syscall.Mmap(int(b.f.Fd()), 0, int(mapLen), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("storage: mmap %d bytes: %w", mapLen, err)
	}
	if b.data != nil {
		b.retired = append(b.retired, b.data)
	}
	b.data = m
	b.extent = size
	return nil
}

func (b *mmapBackend) Close() error {
	b.mu.Lock()
	maps := b.retired
	if b.data != nil {
		maps = append(maps, b.data)
	}
	b.data, b.retired = nil, nil
	b.mu.Unlock()
	var first error
	for _, m := range maps {
		if err := syscall.Munmap(m); err != nil && first == nil {
			first = err
		}
	}
	if err := b.f.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
