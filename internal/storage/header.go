package storage

import (
	"encoding/binary"
	"fmt"
)

// The database file is an array of fixed-size pages. Page 0 is the header
// page; it travels through the WAL like any other page, which makes the
// page count, freelist head and catalog root transactional for free.
const (
	// DefaultPageSize matches SQLite's default page size.
	DefaultPageSize = 4096

	headerMagic = "MNNDB001"

	offMagic        = 0  // 8 bytes
	offPageSize     = 8  // u32
	offPageCount    = 12 // u32, number of pages including the header
	offFreelistHead = 16 // u32, first free page or 0
	offFreelistLen  = 20 // u32, number of pages on the freelist
	offCatalogRoot  = 24 // u32, root page of the client catalog or 0
	offBackend      = 28 // u8, BackendKind the database was last opened with
	offHeaderEnd    = 29
)

// header is the decoded form of page 0.
type header struct {
	pageSize     uint32
	pageCount    uint32
	freelistHead uint32
	freelistLen  uint32
	catalogRoot  uint32
	// backend records the BackendKind in effect at the last commit, so a
	// reopen with Options.Backend left at BackendDefault auto-detects the
	// engine the database was created with. Zero (files from before the
	// byte existed, or BackendDefault) resolves to the file backend. It
	// is a preference, not a format marker: file and mmap share one
	// on-disk format, so switching between them is always safe.
	backend uint8
}

func decodeHeader(p []byte) (header, error) {
	var h header
	if len(p) < offHeaderEnd {
		return h, fmt.Errorf("storage: header page too small (%d bytes)", len(p))
	}
	if string(p[:8]) != headerMagic {
		return h, fmt.Errorf("storage: bad magic %q", p[:8])
	}
	h.pageSize = binary.LittleEndian.Uint32(p[offPageSize:])
	h.pageCount = binary.LittleEndian.Uint32(p[offPageCount:])
	h.freelistHead = binary.LittleEndian.Uint32(p[offFreelistHead:])
	h.freelistLen = binary.LittleEndian.Uint32(p[offFreelistLen:])
	h.catalogRoot = binary.LittleEndian.Uint32(p[offCatalogRoot:])
	h.backend = p[offBackend]
	return h, nil
}

func encodeHeader(p []byte, h header) {
	copy(p[:8], headerMagic)
	binary.LittleEndian.PutUint32(p[offPageSize:], h.pageSize)
	binary.LittleEndian.PutUint32(p[offPageCount:], h.pageCount)
	binary.LittleEndian.PutUint32(p[offFreelistHead:], h.freelistHead)
	binary.LittleEndian.PutUint32(p[offFreelistLen:], h.freelistLen)
	binary.LittleEndian.PutUint32(p[offCatalogRoot:], h.catalogRoot)
	p[offBackend] = h.backend
}
