package storage

import (
	"os"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db.d")
	if _, ok, err := ReadManifest(dir); err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v, want absent", ok, err)
	}
	m := Manifest{Version: 1, Shards: 4, HashSeed: 0xdeadbeef}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("ReadManifest: ok=%v err=%v", ok, err)
	}
	if got != m {
		t.Fatalf("round trip %+v != %+v", got, m)
	}
}

func TestManifestRejectsBadTopology(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db.d")
	if err := WriteManifest(dir, Manifest{Shards: 0}); err == nil {
		t.Error("zero shard count should fail validation")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(`{"version":99,"shards":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadManifest(dir); err == nil {
		t.Error("unknown manifest version should fail")
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadManifest(dir); err == nil {
		t.Error("corrupt manifest should fail")
	}
}

func TestValidateManifestDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db.d")
	m := Manifest{Version: 1, Shards: 2}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifestDir(dir, m); err == nil {
		t.Error("missing shard dirs should fail")
	}
	for i := 0; i < 2; i++ {
		if err := os.MkdirAll(ShardDir(dir, i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := ValidateManifestDir(dir, m); err != nil {
		t.Errorf("complete topology rejected: %v", err)
	}
	if err := os.MkdirAll(ShardDir(dir, 7), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifestDir(dir, m); err == nil {
		t.Error("stray shard dir should fail")
	}
}
