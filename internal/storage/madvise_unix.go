//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package storage

import "syscall"

// Prefetch implements Prefetcher: it advises the kernel that the page range
// will be read soon (MADV_WILLNEED), so a following partition scan faults
// sequentially-prefetched memory instead of paying one major fault per
// page. The range is clamped to the zero-copy extent — pages past it are
// served by pread and gain nothing from advising the mapping. Errors are
// deliberately ignored: madvise is a hint and a failed hint must never
// fail a read. The build tag lists the unix flavors where syscall.Madvise
// exists; elsewhere mmapBackend simply lacks the method and the store
// detects no Prefetcher.
func (b *mmapBackend) Prefetch(pageNo, count uint32) {
	if count == 0 {
		return
	}
	off := int64(pageNo) * int64(b.pageSize)
	end := off + int64(count)*int64(b.pageSize)
	b.mu.RLock()
	m, ext := b.data, b.extent
	b.mu.RUnlock()
	if ext < end {
		end = ext
	}
	if int64(len(m)) < end {
		end = int64(len(m))
	}
	if off >= end {
		return
	}
	_ = syscall.Madvise(m[off:end], syscall.MADV_WILLNEED)
}
