package storage

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the two-phase write path and the FIFO writer gate:
// the concurrency primitives that let expensive write preparation (index
// maintenance collecting a partition and clustering it) run against a
// pinned snapshot without holding the store-wide writer lock, which is then
// re-acquired only for the short apply/commit step.

// writerGate serializes write transactions, checkpoints and close in
// strict FIFO arrival order. Unlike a bare sync.Mutex — whose waiters race
// on wakeup — the gate hands ownership to the longest-waiting acquirer, so
// commit order equals arrival order and an upgrading prepared writer
// cannot be starved by a stream of fresh writers.
type writerGate struct {
	mu      sync.Mutex
	busy    bool
	waiters []chan struct{}

	// Contention telemetry: how many acquisitions had to queue behind a
	// holder, and the total time spent queued. Group-commit batching exists
	// to amortize exactly this wait, so it is surfaced through Store.Stats.
	waits  atomic.Uint64
	waitNs atomic.Int64
}

func (g *writerGate) acquire() {
	g.mu.Lock()
	if !g.busy {
		g.busy = true
		g.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	g.waiters = append(g.waiters, ch)
	g.mu.Unlock()
	start := time.Now()
	<-ch
	g.waits.Add(1)
	g.waitNs.Add(int64(time.Since(start)))
}

func (g *writerGate) release() {
	g.mu.Lock()
	if len(g.waiters) == 0 {
		g.busy = false
		g.mu.Unlock()
		return
	}
	ch := g.waiters[0]
	g.waiters = g.waiters[1:]
	g.mu.Unlock()
	// Ownership transfers directly to the woken waiter: busy stays true.
	close(ch)
}

// PrepareTxn is the first half of a two-phase write. It pins a read
// snapshot like a ReadTxn — concurrent readers and writers proceed freely —
// while the caller computes an expensive change (collecting a partition,
// running k-means). Upgrade then exchanges it for a real WriteTxn, taking
// the writer gate only for the apply/commit step, and reports how many
// commits intervened since the snapshot so the caller can validate its
// plan (e.g. against per-partition version counters) before applying.
type PrepareTxn struct {
	s    *Store
	rt   *ReadTxn
	done bool
}

// BeginPrepare starts the prepare phase of a two-phase write, pinned to
// the current commit horizon.
func (s *Store) BeginPrepare() (*PrepareTxn, error) {
	rt, err := s.BeginRead()
	if err != nil {
		return nil, err
	}
	return &PrepareTxn{s: s, rt: rt}, nil
}

// Read exposes the prepare phase's pinned snapshot. The returned
// transaction is owned by the PrepareTxn: do not Close it directly.
func (p *PrepareTxn) Read() *ReadTxn { return p.rt }

// Upgrade ends the prepare phase and begins the write phase: the snapshot
// pin is released, the writer gate acquired (FIFO with other writers), and
// a fresh WriteTxn returned along with the number of commits that
// intervened since the prepare snapshot was pinned. stale == 0 guarantees
// the transaction sees exactly the state the plan was computed from;
// otherwise the caller must validate before applying. The PrepareTxn is
// finished either way.
func (p *PrepareTxn) Upgrade() (wt *WriteTxn, stale uint64, err error) {
	if p.done {
		return nil, 0, ErrTxnDone
	}
	p.done = true
	pinned := p.rt.seq
	// Release the pin before queueing for the gate: the plan's data has
	// been copied out by now, and holding the pin while waiting would
	// block checkpoints behind this writer's queue position.
	p.rt.Close()
	p.s.writer.acquire()
	wt, seq, err := p.s.beginWriteGated()
	if err != nil {
		return nil, 0, err
	}
	return wt, seq - pinned, nil
}

// Abort abandons the prepare phase, releasing the snapshot pin. Idempotent;
// safe to defer alongside a successful Upgrade.
func (p *PrepareTxn) Abort() {
	if p.done {
		return
	}
	p.done = true
	p.rt.Close()
}

// --- read-side readahead ---

// WantReadahead reports whether Readahead can have any effect, letting
// callers skip the work of assembling a page list when the backend has no
// prefetch capability (file: the pool already amortizes; memory: nothing
// to fetch).
func (t *ReadTxn) WantReadahead() bool {
	return !t.done && t.s.prefetch != nil
}

// Readahead hints the OS to prefetch the given pages ahead of a scan
// (MADV_WILLNEED on the mmap backend), so scatter reads over the probed
// partitions overlap I/O with compute instead of faulting page-by-page.
// Pages whose newest version at this snapshot lives in the WAL are skipped
// — the WAL is served through the buffer pool, not the mapping. Purely
// advisory: errors are ignored and unknown backends do nothing.
func (t *ReadTxn) Readahead(pages []uint32) {
	if t.done || t.s.prefetch == nil || len(pages) == 0 {
		return
	}
	s := t.s
	base := pages[:0]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	for _, pageNo := range pages {
		if _, inWAL := s.idx.lookup(pageNo, t.seq); !inWAL {
			base = append(base, pageNo)
		}
	}
	s.mu.Unlock()
	if len(base) == 0 {
		return
	}
	sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })
	// Coalesce runs of adjacent pages into single advise calls.
	start, n := base[0], uint32(1)
	for _, pageNo := range base[1:] {
		if pageNo == start+n {
			n++
			continue
		}
		if pageNo != start+n-1 { // skip duplicates
			s.prefetch.Prefetch(start, n)
			start, n = pageNo, 1
		}
	}
	s.prefetch.Prefetch(start, n)
}
