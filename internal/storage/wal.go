package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync/atomic"
)

// Write-ahead log. Committed page images are appended to a side file; the
// main database file is only rewritten during checkpoints. Readers resolve
// pages through an in-memory index of the WAL (pageNo -> frames), pinned to
// the commit horizon captured when their transaction began — this provides
// SQLite-WAL-style snapshot isolation with a single writer and any number
// of concurrent readers.
//
// Large write transactions spill uncommitted frames into the WAL before
// commit (bounding writer memory). Uncommitted frames are invisible: a
// transaction's frames enter the shared index only when its commit frame is
// durably appended. Each frame carries the transaction id that wrote it, so
// recovery can tell spilled-then-rolled-back frames from committed ones.

const (
	walMagic          = "MNNWAL01"
	walHeaderSize     = 16 // magic(8) + salt(4) + pageSize(4)
	walFrameHeaderLen = 24 // pageNo(4) + pageCount(4) + txnID(8) + flags(4) + crc(4)

	frameFlagCommit = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameLoc records one committed version of a page.
type frameLoc struct {
	seq   uint64 // commit sequence that made this version visible
	frame uint32 // frame number in the WAL file (0-based)
}

// walIndex maps each page to its committed WAL versions in ascending seq
// order. Within one commit the last write wins, so each seq appears at most
// once per page.
type walIndex struct {
	pages  map[uint32][]frameLoc
	frames uint32 // total frames in the WAL file (committed or not)
}

func newWALIndex() *walIndex {
	return &walIndex{pages: make(map[uint32][]frameLoc)}
}

// lookup returns the frame holding the newest version of pageNo visible at
// snapshot seq, or ok=false if the page must be read from the base file.
func (idx *walIndex) lookup(pageNo uint32, seq uint64) (uint32, bool) {
	locs := idx.pages[pageNo]
	// Binary search for the greatest entry with loc.seq <= seq.
	i := sort.Search(len(locs), func(i int) bool { return locs[i].seq > seq })
	if i == 0 {
		return 0, false
	}
	return locs[i-1].frame, true
}

// publish makes a committed transaction's frames visible at seq.
// pending maps pageNo -> frame (the last frame written for that page).
func (idx *walIndex) publish(pending map[uint32]uint32, seq uint64) {
	for pageNo, frame := range pending {
		idx.pages[pageNo] = append(idx.pages[pageNo], frameLoc{seq: seq, frame: frame})
	}
}

// latest returns, for every page present in the WAL, the frame of its newest
// committed version. Used by checkpointing.
func (idx *walIndex) latest() map[uint32]uint32 {
	out := make(map[uint32]uint32, len(idx.pages))
	for pageNo, locs := range idx.pages {
		if len(locs) > 0 {
			out[pageNo] = locs[len(locs)-1].frame
		}
	}
	return out
}

// wal wraps the WAL file. It is not internally synchronized; the Store
// serializes writers and guards the index with its own mutex. The file is
// a walFile so the framing and recovery logic is shared by every backend:
// an os.File for the file and mmap backends, an in-RAM memFile for the
// memory backend.
type wal struct {
	f        walFile
	salt     uint32
	pageSize uint32
	// frames is the frame count in the file; atomic because Stats reads
	// it without holding the writer lock.
	frames atomic.Uint32
	// failAfter is the crash-injection countdown (see Store.SetWALFailpoint):
	// when it reaches zero the next appendFrame writes a torn partial frame
	// and fails with ErrInjected. Negative means disarmed.
	failAfter atomic.Int64
}

// openWAL opens (or creates) a file-based WAL at path.
func openWAL(path string, pageSize uint32) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	return openWALOn(osWALFile{f}, pageSize)
}

// openWALOn wraps an existing walFile (file-backed or in-RAM).
func openWALOn(f walFile, pageSize uint32) (*wal, error) {
	w := &wal{f: f, pageSize: pageSize}
	w.failAfter.Store(-1)
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size == 0 {
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return w, nil
	}
	hdr := make([]byte, walHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: read wal header: %w", err)
	}
	if string(hdr[:8]) != walMagic {
		f.Close()
		return nil, fmt.Errorf("storage: bad wal magic")
	}
	w.salt = binary.LittleEndian.Uint32(hdr[8:])
	ps := binary.LittleEndian.Uint32(hdr[12:])
	if ps != pageSize {
		f.Close()
		return nil, fmt.Errorf("storage: wal page size %d != db page size %d", ps, pageSize)
	}
	return w, nil
}

func (w *wal) writeHeader() error {
	w.salt++
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[8:], w.salt)
	binary.LittleEndian.PutUint32(hdr[12:], w.pageSize)
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("storage: write wal header: %w", err)
	}
	return nil
}

func (w *wal) frameOffset(frame uint32) int64 {
	return walHeaderSize + int64(frame)*int64(walFrameHeaderLen+w.pageSize)
}

func (w *wal) frameCRC(hdr []byte, data []byte) uint32 {
	crc := crc32.Update(0, crcTable, hdr[:walFrameHeaderLen-4])
	var salt [4]byte
	binary.LittleEndian.PutUint32(salt[:], w.salt)
	crc = crc32.Update(crc, crcTable, salt[:])
	return crc32.Update(crc, crcTable, data)
}

// appendFrame writes one frame and returns its frame number. pageCount is
// only meaningful on commit frames (flagged with frameFlagCommit).
func (w *wal) appendFrame(pageNo uint32, data []byte, txnID uint64, commit bool, pageCount uint32) (uint32, error) {
	if uint32(len(data)) != w.pageSize {
		return 0, fmt.Errorf("storage: frame data %d bytes, want %d", len(data), w.pageSize)
	}
	if n := w.failAfter.Load(); n >= 0 {
		if n == 0 {
			w.failAfter.Store(-1)
			return 0, w.tearFrame(pageNo, data, txnID, commit, pageCount)
		}
		w.failAfter.Store(n - 1)
	}
	hdr := make([]byte, walFrameHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], pageNo)
	binary.LittleEndian.PutUint32(hdr[4:], pageCount)
	binary.LittleEndian.PutUint64(hdr[8:], txnID)
	flags := uint32(0)
	if commit {
		flags = frameFlagCommit
	}
	binary.LittleEndian.PutUint32(hdr[16:], flags)
	binary.LittleEndian.PutUint32(hdr[20:], w.frameCRC(hdr, data))

	frame := w.frames.Load()
	off := w.frameOffset(frame)
	if _, err := w.f.WriteAt(hdr, off); err != nil {
		return 0, fmt.Errorf("storage: append wal frame: %w", err)
	}
	if _, err := w.f.WriteAt(data, off+walFrameHeaderLen); err != nil {
		return 0, fmt.Errorf("storage: append wal frame data: %w", err)
	}
	w.frames.Add(1)
	return frame, nil
}

// tearFrame writes the first half of a fully-formed frame at the next frame
// offset and fails — exactly the bytes a crash mid-append would leave. The
// frame counter is not advanced: the torn bytes cannot pass CRC validation,
// so recovery (and any later append overwriting the same offset) treats them
// as garbage past the end of the log.
func (w *wal) tearFrame(pageNo uint32, data []byte, txnID uint64, commit bool, pageCount uint32) error {
	hdr := make([]byte, walFrameHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], pageNo)
	binary.LittleEndian.PutUint32(hdr[4:], pageCount)
	binary.LittleEndian.PutUint64(hdr[8:], txnID)
	if commit {
		binary.LittleEndian.PutUint32(hdr[16:], frameFlagCommit)
	}
	// Inverted CRC: even if stale bytes at this offset happen to complete
	// the frame, validation must still reject it.
	binary.LittleEndian.PutUint32(hdr[20:], ^w.frameCRC(hdr, data))
	torn := append(hdr, data[:w.pageSize/2]...)
	if _, err := w.f.WriteAt(torn, w.frameOffset(w.frames.Load())); err != nil {
		return err
	}
	return ErrInjected
}

// readFrame reads the page image stored in the given frame into buf.
func (w *wal) readFrame(frame uint32, buf []byte) error {
	off := w.frameOffset(frame) + walFrameHeaderLen
	if _, err := w.f.ReadAt(buf[:w.pageSize], off); err != nil {
		return fmt.Errorf("storage: read wal frame %d: %w", frame, err)
	}
	return nil
}

func (w *wal) sync() error { return w.f.Sync() }

// reset truncates the WAL after a checkpoint and bumps the salt so any
// stale bytes from the old log can never pass CRC validation.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncate wal: %w", err)
	}
	w.frames.Store(0)
	return w.writeHeader()
}

// recoveredTxn groups the frames of one transaction seen during recovery.
type recoveredTxn struct {
	pages     map[uint32]uint32
	committed bool
	order     int // commit order in the file
	pageCount uint32
}

// recover scans the WAL, validates frames, and rebuilds the committed
// index. It returns the index, the number of commits (the recovered commit
// horizon), the page count declared by the newest commit frame (0 if none),
// and the largest txn id observed. Scanning stops at the first frame that
// fails validation: everything after a torn write is discarded, exactly the
// crash-recovery contract of a WAL.
func (w *wal) recover() (idx *walIndex, commits uint64, pageCount uint32, maxTxnID uint64, err error) {
	idx = newWALIndex()
	size, err := w.f.Size()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	frameSize := int64(walFrameHeaderLen) + int64(w.pageSize)
	avail := size - walHeaderSize
	if avail < 0 {
		avail = 0
	}
	maxFrames := uint32(avail / frameSize)

	txns := make(map[uint64]*recoveredTxn)
	commitOrder := 0
	hdr := make([]byte, walFrameHeaderLen)
	data := make([]byte, w.pageSize)
	var lastValid uint32
	for frame := uint32(0); frame < maxFrames; frame++ {
		off := w.frameOffset(frame)
		if _, err := w.f.ReadAt(hdr, off); err != nil {
			break
		}
		if _, err := w.f.ReadAt(data, off+walFrameHeaderLen); err != nil {
			break
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[20:])
		if w.frameCRC(hdr, data) != wantCRC {
			break
		}
		pageNo := binary.LittleEndian.Uint32(hdr[0:])
		framePC := binary.LittleEndian.Uint32(hdr[4:])
		txnID := binary.LittleEndian.Uint64(hdr[8:])
		flags := binary.LittleEndian.Uint32(hdr[16:])
		if txnID > maxTxnID {
			maxTxnID = txnID
		}
		t := txns[txnID]
		if t == nil {
			t = &recoveredTxn{pages: make(map[uint32]uint32)}
			txns[txnID] = t
		}
		t.pages[pageNo] = frame
		if flags&frameFlagCommit != 0 {
			t.committed = true
			t.order = commitOrder
			t.pageCount = framePC
			commitOrder++
		}
		lastValid = frame + 1
	}
	w.frames.Store(lastValid)

	// Publish committed transactions in commit order.
	committed := make([]*recoveredTxn, 0, len(txns))
	for _, t := range txns {
		if t.committed {
			committed = append(committed, t)
		}
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i].order < committed[j].order })
	for i, t := range committed {
		idx.publish(t.pages, uint64(i+1))
		pageCount = t.pageCount
	}
	idx.frames = lastValid
	return idx, uint64(len(committed)), pageCount, maxTxnID, nil
}

// close closes the underlying walFile but deliberately keeps w.f set: a
// Stats or page read racing Close then gets a clean error from the closed
// file (exactly the pre-interface *os.File behavior) instead of a
// nil-interface panic, and w.f is never written after openWALOn so there
// is no unsynchronized interface-word write to race with.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	return w.f.Close()
}

// size returns the WAL file size in bytes (0 once closed).
func (w *wal) size() int64 {
	n, err := w.f.Size()
	if err != nil {
		return 0
	}
	return n
}
