package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALFrame feeds arbitrary bytes into the WAL tail — torn frames,
// garbage, bit-flipped headers, whatever the fuzzer invents — and asserts
// the two recovery guarantees: scanning never panics, and a frame prefix
// that was durably committed before the garbage is never lost. This is the
// property the crash batteries rely on (everything after a torn write is
// discarded; everything before it survives).
//
// The target is parameterized over backends: the WAL-level scan runs on
// both the file-backed and the in-RAM walFile (the memory backend's log),
// and the store-level crash-reopen runs on the file and mmap backends. The
// memory backend cannot participate in the reopen half — an ephemeral
// store has nothing to recover — which is exactly the crash-persistence
// exemption the conformance battery documents.
func FuzzWALFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))
	f.Add(make([]byte, walFrameHeaderLen+DefaultPageSize/2)) // torn: half a frame of zeros
	f.Add(make([]byte, walFrameHeaderLen+DefaultPageSize+7)) // full frame + ragged tail
	long := make([]byte, 3*(walFrameHeaderLen+DefaultPageSize))
	for i := range long {
		long[i] = byte(i * 31)
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()

		// 1. WAL-level: a valid committed frame followed by fuzz bytes,
		// on both WAL substrates.
		walPath := filepath.Join(dir, "f-wal")
		osf, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		walFiles := []struct {
			name string
			f    walFile
		}{
			{"file", osWALFile{osf}},
			{"memory", &memFile{}},
		}
		for _, wc := range walFiles {
			w, err := openWALOn(wc.f, DefaultPageSize)
			if err != nil {
				t.Fatal(err)
			}
			page := make([]byte, DefaultPageSize)
			for i := range page {
				page[i] = 0xA5
			}
			if _, err := w.appendFrame(1, page, 1, true, 2); err != nil {
				t.Fatal(err)
			}
			if _, err := w.f.WriteAt(data, w.frameOffset(w.frames.Load())); err != nil {
				t.Fatal(err)
			}
			// Recover over the same bytes: the file substrate round-trips
			// through a real close+reopen, the memory substrate re-scans
			// its RAM in place (there is no reopen to survive).
			wf := wc.f
			if wc.name == "file" {
				if err := w.close(); err != nil {
					t.Fatal(err)
				}
				osf2, err := os.OpenFile(walPath, os.O_RDWR, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				wf = osWALFile{osf2}
			}
			w2, err := openWALOn(wf, DefaultPageSize)
			if err != nil {
				t.Fatalf("%s: %v", wc.name, err)
			}
			idx, commits, _, _, err := w2.recover()
			if err != nil {
				t.Fatalf("%s: %v", wc.name, err)
			}
			if commits < 1 {
				t.Fatalf("%s: recovery lost the committed prefix (commits=%d)", wc.name, commits)
			}
			frame, ok := idx.lookup(1, commits)
			if !ok {
				t.Fatalf("%s: recovery lost page 1's committed version", wc.name)
			}
			buf := make([]byte, DefaultPageSize)
			if err := w2.readFrame(frame, buf); err != nil {
				t.Fatal(err)
			}
			if frame == 0 { // untouched by any fuzz-crafted valid frame
				for i, b := range buf {
					if b != 0xA5 {
						t.Fatalf("%s: committed page byte %d corrupted: %#x", wc.name, i, b)
					}
				}
			}
			if err := w2.close(); err != nil {
				t.Fatal(err)
			}
		}

		// 2. Store-level: a real store crashes, garbage lands on its WAL
		// tail, and Open must still recover the committed state and serve
		// transactions — on every persistent backend.
		kinds := []BackendKind{BackendFile}
		if mmapSupported {
			kinds = append(kinds, BackendMmap)
		}
		for _, kind := range kinds {
			dbPath := filepath.Join(dir, "store-"+kind.String()+".db")
			opts := Options{Sync: SyncOff, Backend: kind}
			s, err := Open(dbPath, opts)
			if err != nil {
				t.Fatal(err)
			}
			var pageNo uint32
			err = s.Update(func(wt *WriteTxn) error {
				var buf []byte
				var err error
				pageNo, buf, err = wt.Allocate()
				if err != nil {
					return err
				}
				for i := range buf {
					buf[i] = 0x5A
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CloseWithoutCheckpoint(); err != nil {
				t.Fatal(err)
			}
			wf, err := os.OpenFile(dbPath+"-wal", os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			st, err := wf.Stat()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wf.WriteAt(data, st.Size()); err != nil {
				t.Fatal(err)
			}
			if err := wf.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dbPath, opts)
			if err != nil {
				t.Fatalf("%s: reopen after WAL garbage: %v", kind, err)
			}
			err = s2.View(func(rt *ReadTxn) error {
				buf, err := rt.Get(pageNo)
				if err != nil {
					return err
				}
				for i, b := range buf {
					if b != 0x5A {
						t.Fatalf("%s: recovered page byte %d corrupted: %#x", kind, i, b)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// The store must stay writable after discarding the garbage tail.
			err = s2.Update(func(wt *WriteTxn) error {
				buf, err := wt.GetMut(pageNo)
				if err != nil {
					return err
				}
				buf[0] = 0x11
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
