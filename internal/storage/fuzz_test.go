package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALFrame feeds arbitrary bytes into the WAL tail — torn frames,
// garbage, bit-flipped headers, whatever the fuzzer invents — and asserts
// the two recovery guarantees: scanning never panics, and a frame prefix
// that was durably committed before the garbage is never lost. This is the
// property the crash batteries rely on (everything after a torn write is
// discarded; everything before it survives).
func FuzzWALFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))
	f.Add(make([]byte, walFrameHeaderLen+DefaultPageSize/2)) // torn: half a frame of zeros
	f.Add(make([]byte, walFrameHeaderLen+DefaultPageSize+7)) // full frame + ragged tail
	long := make([]byte, 3*(walFrameHeaderLen+DefaultPageSize))
	for i := range long {
		long[i] = byte(i * 31)
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()

		// 1. WAL-level: a valid committed frame followed by fuzz bytes.
		walPath := filepath.Join(dir, "f-wal")
		w, err := openWAL(walPath, DefaultPageSize)
		if err != nil {
			t.Fatal(err)
		}
		page := make([]byte, DefaultPageSize)
		for i := range page {
			page[i] = 0xA5
		}
		if _, err := w.appendFrame(1, page, 1, true, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := w.f.WriteAt(data, w.frameOffset(w.frames.Load())); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}

		w2, err := openWAL(walPath, DefaultPageSize)
		if err != nil {
			t.Fatal(err)
		}
		idx, commits, _, _, err := w2.recover()
		if err != nil {
			t.Fatal(err)
		}
		if commits < 1 {
			t.Fatalf("recovery lost the committed prefix (commits=%d)", commits)
		}
		frame, ok := idx.lookup(1, commits)
		if !ok {
			t.Fatal("recovery lost page 1's committed version")
		}
		buf := make([]byte, DefaultPageSize)
		if err := w2.readFrame(frame, buf); err != nil {
			t.Fatal(err)
		}
		if frame == 0 { // untouched by any fuzz-crafted valid frame
			for i, b := range buf {
				if b != 0xA5 {
					t.Fatalf("committed page byte %d corrupted: %#x", i, b)
				}
			}
		}
		if err := w2.close(); err != nil {
			t.Fatal(err)
		}

		// 2. Store-level: a real store crashes, garbage lands on its WAL
		// tail, and Open must still recover the committed state and serve
		// transactions.
		dbPath := filepath.Join(dir, "store.db")
		s, err := Open(dbPath, Options{Sync: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		var pageNo uint32
		err = s.Update(func(wt *WriteTxn) error {
			var buf []byte
			var err error
			pageNo, buf, err = wt.Allocate()
			if err != nil {
				return err
			}
			for i := range buf {
				buf[i] = 0x5A
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CloseWithoutCheckpoint(); err != nil {
			t.Fatal(err)
		}
		wf, err := os.OpenFile(dbPath+"-wal", os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		st, err := wf.Stat()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wf.WriteAt(data, st.Size()); err != nil {
			t.Fatal(err)
		}
		if err := wf.Close(); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(dbPath, Options{Sync: SyncOff})
		if err != nil {
			t.Fatalf("reopen after WAL garbage: %v", err)
		}
		defer s2.Close()
		err = s2.View(func(rt *ReadTxn) error {
			buf, err := rt.Get(pageNo)
			if err != nil {
				return err
			}
			for i, b := range buf {
				if b != 0x5A {
					t.Fatalf("recovered page byte %d corrupted: %#x", i, b)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// The store must stay writable after discarding the garbage tail.
		err = s2.Update(func(wt *WriteTxn) error {
			buf, err := wt.GetMut(pageNo)
			if err != nil {
				return err
			}
			buf[0] = 0x11
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}
