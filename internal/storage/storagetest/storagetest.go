// Package storagetest holds test helpers shared by every package whose
// tests run under the MICRONN_TEST_BACKEND backend matrix.
package storagetest

import (
	"testing"

	"micronn/internal/storage"
)

// SkipIfEphemeral skips tests whose assertions require persistence across
// reopen when the backend matrix forces the memory backend — explicitly,
// as the backend contract demands, never silently. Every test that closes
// a store and expects its data back on the next open must call this (or
// pin storage.Options.Backend to a persistent engine).
func SkipIfEphemeral(t testing.TB) {
	t.Helper()
	if k, ok := storage.EnvBackend(); ok && k == storage.BackendMemory {
		t.Skipf("%s=memory: the memory backend is ephemeral; reopen/crash-persistence assertions do not apply", storage.EnvBackendVar)
	}
}
