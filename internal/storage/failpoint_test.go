package storage

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"
)

// TestWALFailpointTornCommit arms the failpoint at every frame offset of a
// multi-page commit and checks that (a) the commit fails with ErrInjected,
// (b) a crash-reopen recovers exactly the previously committed state, and
// (c) the store remains writable after recovery. File backend here; the
// conformance battery replays it on mmap (and on memory, minus the reopen).
func TestWALFailpointTornCommit(t *testing.T) {
	runFailpointBattery(t, Options{Sync: SyncOff, MaxDirtyPages: 4, CheckpointFrames: -1, Backend: BackendFile}, true)
}

// runFailpointBattery is the torn-commit crash battery, parameterized over
// backend options. For non-persistent backends the in-process assertions
// still run (the failed transaction must leave no trace and the store must
// stay writable over the torn tail), but the crash-reopen recovery
// assertions are explicitly skipped — an ephemeral store has nothing to
// recover.
func runFailpointBattery(t *testing.T, opts Options, persistent bool) {

	// The doomed transaction appends exactly 9 frames (8 page images plus
	// the commit frame), so offsets 0..8 each cut it at a different point.
	for fail := 0; fail < 9; fail++ {
		path := filepath.Join(t.TempDir(), "fp.db")
		s, err := Open(path, opts)
		if err != nil {
			t.Fatal(err)
		}

		// Committed baseline: pages hold their page number.
		var pages []uint32
		if err := s.Update(func(wt *WriteTxn) error {
			for i := 0; i < 8; i++ {
				pg, buf, err := wt.Allocate()
				if err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(buf, uint64(pg))
				pages = append(pages, pg)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		// Doomed transaction: overwrite everything, then die mid-WAL. The
		// spill threshold (4 dirty pages) makes some failpoints land in
		// SpillIfNeeded rather than Commit.
		s.SetWALFailpoint(fail)
		err = s.Update(func(wt *WriteTxn) error {
			for _, pg := range pages {
				buf, err := wt.GetMut(pg)
				if err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(buf, ^uint64(pg))
				if err := wt.SpillIfNeeded(); err != nil {
					return err
				}
			}
			return nil
		})
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("fail=%d: doomed txn error = %v, want ErrInjected", fail, err)
		}

		if persistent {
			// Crash and recover: only the committed baseline may survive.
			if err := s.CloseWithoutCheckpoint(); err != nil {
				t.Fatal(err)
			}
			s, err = Open(path, opts)
			if err != nil {
				t.Fatalf("fail=%d: reopen after injected crash: %v", fail, err)
			}
		} else if fail == 0 {
			t.Log("ephemeral backend: crash-reopen recovery assertions skipped; verifying in-process rollback only")
		}
		if err := s.View(func(rt *ReadTxn) error {
			for _, pg := range pages {
				buf, err := rt.Get(pg)
				if err != nil {
					return err
				}
				if got := binary.LittleEndian.Uint64(buf); got != uint64(pg) {
					t.Errorf("fail=%d: page %d = %#x after recovery, want %d", fail, pg, got, pg)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		// The store must accept new commits over the torn tail.
		if err := s.Update(func(wt *WriteTxn) error {
			buf, err := wt.GetMut(pages[0])
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, 7)
			return nil
		}); err != nil {
			t.Fatalf("fail=%d: commit after recovery: %v", fail, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
