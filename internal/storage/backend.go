package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// A Backend materializes the base page array — the file that checkpoints
// fold the WAL into and that readers consult for pages with no WAL version.
// The Store keeps all transactional machinery (WAL, buffer pool, snapshot
// isolation) above this seam, so a backend only has to be a dumb page
// array. Three implementations ship:
//
//   - file: pread/pwrite on an *os.File. The default, matches the paper.
//   - mmap: the base file mapped read-only (MAP_SHARED); page reads return
//     slices of the mapping, skipping the read syscall and the buffer
//     pool's copy. Writes still go through the file descriptor (the
//     unified page cache keeps the mapping coherent) and the mapping is
//     re-established after checkpoints grow the file.
//   - memory: pages live in RAM and nothing touches the filesystem. The
//     store is ephemeral: Close discards it, reopening the same path
//     creates a fresh empty database.
//
// # Backend contract
//
// Implementations must provide, in order of load-bearing importance:
//
//   - WritePage durability ordering: WritePage calls made before a Sync
//     must be observable by every later ReadPage once Sync returns, and —
//     for persistent backends — survive a crash after Sync returns. The
//     checkpoint protocol depends on this: it writes every folded page,
//     Syncs, and only then truncates the WAL.
//   - Read stability: a slice returned with direct=true references
//     backend-owned memory. Its contents must stay unchanged for as long
//     as any snapshot that could have produced the read is open. The
//     store guarantees checkpoints never overwrite a page a live reader
//     resolves from the base array (readers pinned to older horizons
//     block the checkpoint; current-horizon readers resolve all
//     checkpointed pages from the WAL), so backends only need to keep
//     retired mappings/buffers alive until Close — they never need
//     copy-on-write.
//   - Sparse reads: reading a page inside the backend's Size that was
//     never written returns zeroes (os.File hole semantics); reading past
//     Size fails with io.EOF.
//   - Close invalidates every direct slice. The store must not be used
//     concurrently with or after Close.
//
// Backends are not responsible for locking (the store's advisory flock),
// the WAL (always a walFile), or caching (the pool; direct backends opt
// out of base-page caching entirely via direct=true).
type Backend interface {
	// Kind identifies the implementation.
	Kind() BackendKind
	// ReadPage returns the page image. When direct is true the returned
	// slice references backend-owned memory (an mmap mapping or an in-RAM
	// page) that the caller must treat as read-only and must not retain
	// past Close. When direct is false the image was copied into buf (or
	// a fresh allocation if buf was nil or mis-sized).
	ReadPage(pageNo uint32, buf []byte) (data []byte, direct bool, err error)
	// WritePage stores the page image. data is borrowed for the duration
	// of the call only.
	WritePage(pageNo uint32, data []byte) error
	// Sync makes previous WritePage calls durable (no-op for memory).
	Sync() error
	// Size returns the page array's extent in bytes.
	Size() (int64, error)
	// Remap refreshes any growth-dependent state after the base array was
	// extended (checkpoints call it after folding + Sync). Only the mmap
	// backend does work here.
	Remap() error
	// Close releases files, mappings and memory.
	Close() error
}

// Prefetcher is an optional Backend capability: Prefetch hints that count
// pages starting at pageNo will be read soon, so the OS can fault them in
// ahead of the scan (MADV_WILLNEED on the mmap backend). Purely advisory —
// implementations must tolerate out-of-range requests and may do nothing.
// The store detects it once at open time; ReadTxn.Readahead is the
// consumer.
type Prefetcher interface {
	Prefetch(pageNo, count uint32)
}

// BackendKind selects a page-store backend implementation.
type BackendKind uint8

const (
	// BackendDefault resolves to the kind recorded in the store header
	// (set when the database was created), or BackendFile for a fresh
	// database. The MICRONN_TEST_BACKEND environment variable, when set,
	// overrides this resolution — it exists so the test suite can run the
	// whole stack over every backend.
	BackendDefault BackendKind = iota
	// BackendFile reads and writes the base file with pread/pwrite.
	BackendFile
	// BackendMmap maps the base file read-only; WAL appends and
	// checkpoint writes stay file-based.
	BackendMmap
	// BackendMemory keeps pages (and the WAL) entirely in RAM. Nothing
	// is persisted; no lock file is taken.
	BackendMemory
)

// String returns the parseable name of the kind.
func (k BackendKind) String() string {
	switch k {
	case BackendDefault:
		return "default"
	case BackendFile:
		return "file"
	case BackendMmap:
		return "mmap"
	case BackendMemory:
		return "memory"
	default:
		return fmt.Sprintf("backend(%d)", uint8(k))
	}
}

// ParseBackend parses a backend name. The empty string and "default" mean
// BackendDefault; "read-mmap" is accepted as an alias for "mmap".
func ParseBackend(name string) (BackendKind, error) {
	switch name {
	case "", "default":
		return BackendDefault, nil
	case "file":
		return BackendFile, nil
	case "mmap", "read-mmap":
		return BackendMmap, nil
	case "memory", "mem":
		return BackendMemory, nil
	default:
		return BackendDefault, fmt.Errorf("storage: unknown backend %q (want file, mmap or memory)", name)
	}
}

// MmapSupported reports whether the read-mmap backend is available on this
// platform.
func MmapSupported() bool { return mmapSupported }

// EnvBackendVar is the environment variable the test matrix uses to force
// a backend on every Open that did not choose one explicitly.
const EnvBackendVar = "MICRONN_TEST_BACKEND"

// EnvBackend reports the backend forced by EnvBackendVar, if any. Tests
// whose assertions require persistence across reopen use this to skip
// themselves explicitly under the memory backend.
func EnvBackend() (BackendKind, bool) {
	k, ok, err := envBackend()
	if err != nil {
		return BackendDefault, false
	}
	return k, ok
}

func envBackend() (BackendKind, bool, error) {
	v, ok := os.LookupEnv(EnvBackendVar)
	if !ok || v == "" {
		return BackendDefault, false, nil
	}
	k, err := ParseBackend(v)
	if err != nil {
		return BackendDefault, false, fmt.Errorf("storage: %s: %w", EnvBackendVar, err)
	}
	return k, k != BackendDefault, nil
}

// --- file backend ---

// fileBackend is the classic implementation: every base-page read is a
// pread (cached above by the buffer pool), every checkpoint write a
// pwrite.
type fileBackend struct {
	f        *os.File
	pageSize uint32
}

func newFileBackend(f *os.File, pageSize uint32) *fileBackend {
	return &fileBackend{f: f, pageSize: pageSize}
}

func (b *fileBackend) Kind() BackendKind { return BackendFile }

func (b *fileBackend) ReadPage(pageNo uint32, buf []byte) ([]byte, bool, error) {
	if uint32(len(buf)) != b.pageSize {
		buf = make([]byte, b.pageSize)
	}
	if _, err := b.f.ReadAt(buf, int64(pageNo)*int64(b.pageSize)); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

func (b *fileBackend) WritePage(pageNo uint32, data []byte) error {
	_, err := b.f.WriteAt(data, int64(pageNo)*int64(b.pageSize))
	return err
}

func (b *fileBackend) Sync() error { return b.f.Sync() }

func (b *fileBackend) Size() (int64, error) {
	st, err := b.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (b *fileBackend) Remap() error { return nil }

func (b *fileBackend) Close() error { return b.f.Close() }

// --- memory backend ---

// memBackend keeps the page array in RAM: one buffer per page. Reads are
// zero-copy (WritePage installs a fresh copy, so a previously returned
// buffer is never mutated, only superseded). Holes — pages inside the
// extent that were never written — read as a shared zero page, matching
// sparse-file semantics.
type memBackend struct {
	pageSize uint32
	zero     []byte
	mu       sync.RWMutex
	pages    [][]byte
}

func newMemBackend(pageSize uint32) *memBackend {
	return &memBackend{pageSize: pageSize, zero: make([]byte, pageSize)}
}

func (b *memBackend) Kind() BackendKind { return BackendMemory }

func (b *memBackend) ReadPage(pageNo uint32, _ []byte) ([]byte, bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if int(pageNo) >= len(b.pages) {
		return nil, false, io.EOF
	}
	if p := b.pages[pageNo]; p != nil {
		return p, true, nil
	}
	return b.zero, true, nil
}

func (b *memBackend) WritePage(pageNo uint32, data []byte) error {
	cp := append([]byte(nil), data...)
	b.mu.Lock()
	defer b.mu.Unlock()
	for int(pageNo) >= len(b.pages) {
		b.pages = append(b.pages, nil)
	}
	b.pages[pageNo] = cp
	return nil
}

func (b *memBackend) Sync() error { return nil }

func (b *memBackend) Size() (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return int64(len(b.pages)) * int64(b.pageSize), nil
}

func (b *memBackend) Remap() error { return nil }

func (b *memBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pages = nil
	return nil
}

// --- WAL files ---

// walFile is the byte-level substrate under the write-ahead log. The WAL's
// framing, CRCs and recovery are backend-independent; only where the bytes
// live differs (an os.File for the file and mmap backends, RAM for the
// memory backend — an in-RAM store must not leave a WAL on disk).
type walFile interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
	Close() error
}

// osWALFile adapts *os.File to walFile.
type osWALFile struct{ *os.File }

func (f osWALFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// memFile is an in-RAM walFile. Reads copy out under a shared lock, so the
// backing slice may be reallocated by growth without invalidating anything.
type memFile struct {
	mu   sync.RWMutex
	data []byte
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("storage: memfile: negative offset")
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("storage: memfile: negative offset")
	}
	f.grow(off + int64(len(p)))
	return copy(f.data[off:], p), nil
}

// grow extends the file to at least size bytes, zero-filling the gap.
// Capacity doubles so a stream of appends stays amortized O(1); stale
// bytes past a Truncate shrink are zeroed on re-extension, so they can
// never resurface as file content.
func (f *memFile) grow(size int64) {
	if size <= int64(len(f.data)) {
		return
	}
	old := len(f.data)
	if size <= int64(cap(f.data)) {
		f.data = f.data[:size]
		gap := f.data[old:]
		for i := range gap {
			gap[i] = 0
		}
		return
	}
	newCap := 2 * cap(f.data)
	if int64(newCap) < size {
		newCap = int(size)
	}
	grown := make([]byte, size, newCap)
	copy(grown, f.data[:old])
	f.data = grown
}

func (f *memFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < int64(len(f.data)) {
		f.data = f.data[:size]
	} else {
		f.grow(size)
	}
	return nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data)), nil
}

func (f *memFile) Close() error { return nil }
