//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// fileLock is an OS advisory lock guarding the database against concurrent
// processes. flock locks are released automatically when the process dies,
// so a crash can never leave the database permanently locked.
type fileLock struct {
	f *os.File
}

func acquireFileLock(path string) (*fileLock, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, ErrLocked
	}
	return &fileLock{f: f}, nil
}

func (l *fileLock) release() {
	if l.f == nil {
		return
	}
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	l.f.Close()
	l.f = nil
}
