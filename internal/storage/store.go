// Package storage implements the disk substrate MicroNN delegates to SQLite
// in the paper: a single-file page store with a write-ahead log, a
// byte-budgeted buffer pool, snapshot-isolated readers and one serialized
// writer. All durable state lives in two files: <path> (the page array) and
// <path>-wal (the log). Commits append page images to the WAL; checkpoints
// fold them back into the base file when no reader depends on older
// versions.
//
// Consistency contract (matches the paper's §3.6): readers observe the
// commit horizon captured when their transaction began, writers are fully
// serialized, and a crash at any point preserves the last committed state
// (frames after a torn write fail CRC validation and are discarded on
// recovery).
//
// # Backends
//
// How the base page array is materialized is pluggable (Options.Backend):
// the file backend preads/pwrites an os.File, the read-mmap backend maps
// the base file read-only so page reads skip the syscall and the buffer
// pool (WAL appends and checkpoint writes stay file-based, with a remap
// after checkpoints grow the file), and the memory backend keeps pages and
// WAL entirely in RAM for ephemeral stores. The kind used at create time
// is recorded in the store header, so reopening with BackendDefault
// auto-detects it. See the Backend interface for the exact ordering and
// sync guarantees every implementation must provide. Buffer-pool
// accounting is backend-aware: zero-copy backends (mmap, memory) bypass
// the pool for base pages — only WAL-resident page images are cached —
// since the OS page cache (or RAM itself) already holds the base image.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// SyncMode controls when files are fsync'd.
type SyncMode int

const (
	// SyncNormal fsyncs the WAL on every commit and the base file on every
	// checkpoint. Survives process and OS crashes.
	SyncNormal SyncMode = iota
	// SyncOff never fsyncs. Survives process crashes (the OS page cache
	// still holds the writes) but not power loss. Used by benchmarks.
	SyncOff
)

// Options configures a Store.
type Options struct {
	// PageSize in bytes. Must match the file if it already exists.
	// Defaults to DefaultPageSize.
	PageSize uint32
	// PoolBytes is the buffer-pool budget. This is the main memory knob:
	// the paper's Small/Large device profiles differ chiefly here.
	// Defaults to 32 MiB.
	PoolBytes int64
	// Sync selects the durability mode. Defaults to SyncNormal.
	Sync SyncMode
	// MaxDirtyPages bounds writer memory: transactions exceeding it spill
	// uncommitted frames to the WAL. Defaults to 4096 pages (16 MiB).
	MaxDirtyPages int
	// CheckpointFrames triggers an automatic checkpoint attempt after a
	// commit leaves at least this many frames in the WAL. Defaults to
	// 16384. Set negative to disable auto-checkpointing.
	CheckpointFrames int
	// DisableLock skips the advisory file lock (useful for read-only
	// inspection tooling).
	DisableLock bool
	// Backend selects how the base page array is materialized: file
	// (default), read-mmap, or memory. BackendDefault auto-detects the
	// kind recorded in an existing store's header (falling back to file),
	// after honoring the MICRONN_TEST_BACKEND environment override used
	// by the test matrix. The memory backend is ephemeral: it never
	// touches the filesystem and takes no lock.
	Backend BackendKind
}

func (o *Options) fillDefaults() {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PoolBytes == 0 {
		o.PoolBytes = 32 << 20
	}
	if o.MaxDirtyPages == 0 {
		o.MaxDirtyPages = 4096
	}
	if o.CheckpointFrames == 0 {
		o.CheckpointFrames = 16384
	}
}

// Sentinel errors.
var (
	ErrClosed     = errors.New("storage: store is closed")
	ErrTxnDone    = errors.New("storage: transaction already finished")
	ErrReadOnly   = errors.New("storage: mutation in read-only transaction")
	ErrBusy       = errors.New("storage: checkpoint blocked by active readers")
	ErrLocked     = errors.New("storage: database is locked by another process")
	ErrBadPage    = errors.New("storage: page out of range")
	ErrCorrupt    = errors.New("storage: file corrupt")
	ErrInjected   = errors.New("storage: injected WAL failure")
	errPageZeroRW = errors.New("storage: header page is managed by the store")
)

// Store is a page store with WAL-based transactions.
type Store struct {
	path string
	opts Options

	backend Backend
	kind    BackendKind
	// directBase is set for zero-copy backends (mmap, memory): base-page
	// reads return backend-owned memory and bypass the buffer pool.
	directBase bool

	wal  *wal
	pool *bufferPool
	lock *fileLock

	// mu guards idx, commitSeq, nextTxnID, readers, pageCount and closed.
	mu        sync.Mutex
	idx       *walIndex
	commitSeq uint64
	nextTxnID uint64
	readers   map[uint64]int // snapshot seq -> refcount
	pageCount uint32         // committed page count
	closed    bool

	// writer serializes write transactions and checkpoints, granting the
	// critical section in strict FIFO arrival order so a prepared writer
	// upgrading into its commit step cannot be starved by a stream of
	// fresh BeginWrite calls (see prepare.go).
	writer writerGate

	// prefetch is the backend's optional readahead capability (nil when
	// the backend has none). See ReadTxn.Readahead.
	prefetch Prefetcher

	// resolveMu lets page reads (lookup + file pread) run concurrently
	// while excluding checkpoint truncation.
	resolveMu sync.RWMutex

	statCommits     uint64
	statCheckpoints uint64
	statPagesOut    uint64 // page images appended to WAL
}

// Open opens or creates the store at path.
func Open(path string, opts Options) (*Store, error) {
	opts.fillDefaults()
	kind := opts.Backend
	if kind == BackendDefault {
		ek, ok, err := envBackend()
		if err != nil {
			return nil, err
		}
		if ok {
			kind = ek
		}
	}
	s := &Store{
		path:    path,
		opts:    opts,
		readers: make(map[uint64]int),
	}

	var wf walFile
	var existing *header
	if kind == BackendMemory {
		// Fully in-RAM: no base file, no WAL file, no lock file. Every
		// open is a fresh, empty, ephemeral store.
		s.backend = newMemBackend(opts.PageSize)
		wf = &memFile{}
	} else {
		if !opts.DisableLock {
			l, err := acquireFileLock(path + ".lock")
			if err != nil {
				return nil, err
			}
			s.lock = l
		}
		db, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			s.release()
			return nil, fmt.Errorf("storage: open db: %w", err)
		}
		st, err := db.Stat()
		if err != nil {
			db.Close()
			s.release()
			return nil, err
		}
		if st.Size() > 0 {
			// Validate the header and, with BackendDefault, adopt the
			// recorded kind before choosing the engine.
			page := make([]byte, opts.PageSize)
			if _, err := db.ReadAt(page, 0); err != nil {
				db.Close()
				s.release()
				return nil, fmt.Errorf("storage: read header: %w", err)
			}
			h, err := decodeHeader(page)
			if err != nil {
				db.Close()
				s.release()
				return nil, err
			}
			if h.pageSize != opts.PageSize {
				db.Close()
				s.release()
				return nil, fmt.Errorf("storage: page size mismatch: file=%d opts=%d", h.pageSize, opts.PageSize)
			}
			if kind == BackendDefault {
				switch rec := BackendKind(h.backend); {
				case rec == BackendFile:
					kind = rec
				case rec == BackendMmap && mmapSupported:
					kind = rec
				case rec == BackendMmap:
					// The byte is a preference, not a format marker: a
					// database created with mmap elsewhere must still
					// open on a platform without it.
					kind = BackendFile
				}
			}
			existing = &h
		}
		if kind == BackendDefault {
			kind = BackendFile
		}
		switch kind {
		case BackendFile:
			s.backend = newFileBackend(db, opts.PageSize)
		case BackendMmap:
			mb, err := newMmapBackend(db, opts.PageSize)
			if err != nil {
				db.Close()
				s.release()
				return nil, err
			}
			s.backend = mb
		default:
			db.Close()
			s.release()
			return nil, fmt.Errorf("storage: invalid backend %s", kind)
		}
		owf, err := os.OpenFile(path+"-wal", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			s.release()
			return nil, fmt.Errorf("storage: open wal: %w", err)
		}
		wf = osWALFile{owf}
	}
	s.kind = kind
	s.directBase = kind == BackendMmap || kind == BackendMemory

	if existing != nil {
		s.pageCount = existing.pageCount
	} else {
		// Fresh database (every memory open is one): write the header.
		page := make([]byte, opts.PageSize)
		encodeHeader(page, header{pageSize: opts.PageSize, pageCount: 1, backend: uint8(kind)})
		if err := s.backend.WritePage(0, page); err != nil {
			s.release()
			return nil, fmt.Errorf("storage: init db: %w", err)
		}
		if opts.Sync == SyncNormal {
			if err := s.backend.Sync(); err != nil {
				s.release()
				return nil, err
			}
		}
		if err := s.backend.Remap(); err != nil {
			s.release()
			return nil, err
		}
		s.pageCount = 1
	}

	w, err := openWALOn(wf, opts.PageSize)
	if err != nil {
		s.release()
		return nil, err
	}
	s.wal = w
	idx, commits, walPageCount, maxTxnID, err := w.recover()
	if err != nil {
		s.release()
		return nil, err
	}
	s.idx = idx
	s.commitSeq = commits
	s.nextTxnID = maxTxnID + 1
	if walPageCount != 0 {
		s.pageCount = walPageCount
	}
	s.pool = newBufferPool(opts.PoolBytes, opts.PageSize)
	if p, ok := s.backend.(Prefetcher); ok {
		s.prefetch = p
	}
	return s, nil
}

func (s *Store) release() {
	if s.backend != nil {
		s.backend.Close()
	}
	if s.wal != nil {
		s.wal.close()
	}
	if s.lock != nil {
		s.lock.release()
	}
}

// PageSize returns the store's page size.
func (s *Store) PageSize() uint32 { return s.opts.PageSize }

// Path returns the base file path.
func (s *Store) Path() string { return s.path }

// Close checkpoints if possible and closes the files. Acquiring the writer
// gate first means an in-flight write transaction always commits or rolls
// back before teardown begins; acquiring resolveMu exclusively before
// releasing the files means an in-flight page read never touches a freed
// pool or unmapped backend.
func (s *Store) Close() error {
	s.writer.acquire()
	defer s.writer.release()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	// Best-effort checkpoint; ErrBusy just means a reader is still open.
	if err := s.checkpointLocked(); err != nil && !errors.Is(err, ErrBusy) {
		return err
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.resolveMu.Lock()
	defer s.resolveMu.Unlock()
	s.release()
	return nil
}

// CloseWithoutCheckpoint closes the files leaving the WAL in place, exactly
// as a crash would. Used by recovery tests and the cold-start benchmarks.
func (s *Store) CloseWithoutCheckpoint() error {
	s.writer.acquire()
	defer s.writer.release()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.mu.Unlock()
	s.resolveMu.Lock()
	defer s.resolveMu.Unlock()
	s.release()
	return nil
}

// DropCaches empties the buffer pool, simulating the paper's ColdStart
// scenario (purged database caches).
func (s *Store) DropCaches() { s.pool.drop() }

// SetWALFailpoint arms a one-shot crash injection: after n more WAL frame
// appends succeed, the following append writes a torn partial frame to disk
// and fails with ErrInjected — leaving exactly the on-disk state of a power
// cut mid-commit (or mid-spill). The in-flight transaction fails; a
// subsequent CloseWithoutCheckpoint + Open must recover the last committed
// state. Negative n disarms. Crash-recovery tests only.
func (s *Store) SetWALFailpoint(n int) { s.wal.failAfter.Store(int64(n)) }

// Stats reports operational counters.
type Stats struct {
	Backend       BackendKind
	PoolBytes     int64
	PoolHits      uint64
	PoolMisses    uint64
	PoolEvictions uint64
	WALFrames     uint32
	WALBytes      int64
	PageCount     uint32
	Commits       uint64
	Checkpoints   uint64
	PagesWritten  uint64
	// GateWaits / GateWaitNs count writer-gate acquisitions that queued
	// behind a holder and the total nanoseconds spent queued — the
	// contention that group commit amortizes.
	GateWaits  uint64
	GateWaitNs int64
}

// Stats returns a snapshot of operational counters.
func (s *Store) Stats() Stats {
	hits, misses, evictions := s.pool.stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Backend:       s.kind,
		PoolBytes:     s.pool.bytes(),
		PoolHits:      hits,
		PoolMisses:    misses,
		PoolEvictions: evictions,
		WALFrames:     s.wal.frames.Load(),
		WALBytes:      s.wal.size(),
		PageCount:     s.pageCount,
		Commits:       s.statCommits,
		Checkpoints:   s.statCheckpoints,
		PagesWritten:  s.statPagesOut,
		GateWaits:     s.writer.waits.Load(),
		GateWaitNs:    s.writer.waitNs.Load(),
	}
}

// PoolBudget returns the configured buffer-pool byte budget.
func (s *Store) PoolBudget() int64 { return s.opts.PoolBytes }

// Kind returns the backend the store resolved at open time.
func (s *Store) Kind() BackendKind { return s.kind }

// Persistent reports whether the backend outlives the process (false only
// for the memory backend).
func (s *Store) Persistent() bool { return s.kind != BackendMemory }

// readPage resolves pageNo at the given snapshot through WAL index, buffer
// pool and base backend. The returned buffer is shared and read-only.
func (s *Store) readPage(pageNo uint32, snapshot uint64) ([]byte, error) {
	s.resolveMu.RLock()
	defer s.resolveMu.RUnlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	frame, inWAL := s.idx.lookup(pageNo, snapshot)
	s.mu.Unlock()

	if !inWAL && s.directBase {
		// Zero-copy backends serve base pages from their own memory (the
		// mmap mapping, or the in-RAM page array): no pool lookup, no
		// pool insert — the OS page cache / RAM already holds the bytes,
		// and caching them again would double-count the budget.
		data, _, err := s.backend.ReadPage(pageNo, nil)
		if err != nil {
			return nil, wrapReadErr(pageNo, err)
		}
		return data, nil
	}

	key := poolKey{pageNo: pageNo}
	if inWAL {
		key.frame = frame + 1
	}
	if data := s.pool.get(key); data != nil {
		return data, nil
	}
	buf := make([]byte, s.opts.PageSize)
	if inWAL {
		if err := s.wal.readFrame(frame, buf); err != nil {
			return nil, err
		}
	} else {
		data, _, err := s.backend.ReadPage(pageNo, buf)
		if err != nil {
			return nil, wrapReadErr(pageNo, err)
		}
		buf = data
	}
	s.pool.put(key, buf)
	return buf, nil
}

func wrapReadErr(pageNo uint32, err error) error {
	if errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: page %d beyond end of file", ErrBadPage, pageNo)
	}
	return fmt.Errorf("storage: read page %d: %w", pageNo, err)
}

// --- read transactions ---

// ReadTxn is a snapshot-isolated read transaction. It is safe for use by a
// single goroutine; open as many concurrent ReadTxns as needed.
type ReadTxn struct {
	s    *Store
	seq  uint64
	done bool
}

// BeginRead starts a read transaction pinned to the current commit horizon.
func (s *Store) BeginRead() (*ReadTxn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.readers[s.commitSeq]++
	return &ReadTxn{s: s, seq: s.commitSeq}, nil
}

// Get returns the content of pageNo as of the transaction's snapshot.
// The buffer is shared: callers must not modify it.
func (t *ReadTxn) Get(pageNo uint32) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	return t.s.readPage(pageNo, t.seq)
}

// Header returns the decoded header as of the snapshot.
func (t *ReadTxn) Header() (header, error) {
	p, err := t.Get(0)
	if err != nil {
		return header{}, err
	}
	return decodeHeader(p)
}

// CatalogRoot returns the catalog root page recorded in the header.
func (t *ReadTxn) CatalogRoot() (uint32, error) {
	h, err := t.Header()
	if err != nil {
		return 0, err
	}
	return h.catalogRoot, nil
}

// Close releases the snapshot. It is idempotent.
func (t *ReadTxn) Close() {
	if t.done {
		return
	}
	t.done = true
	s := t.s
	s.mu.Lock()
	if n := s.readers[t.seq]; n <= 1 {
		delete(s.readers, t.seq)
	} else {
		s.readers[t.seq] = n - 1
	}
	s.mu.Unlock()
}

// View runs fn inside a read transaction.
func (s *Store) View(fn func(*ReadTxn) error) error {
	t, err := s.BeginRead()
	if err != nil {
		return err
	}
	defer t.Close()
	return fn(t)
}

// --- write transactions ---

// WriteTxn is the single writer. Mutations stay private (in memory or as
// uncommitted WAL frames) until Commit.
type WriteTxn struct {
	s       *Store
	txnID   uint64
	dirty   map[uint32][]byte
	pending map[uint32]uint32 // spilled page -> WAL frame
	hdr     header
	hooks   []func() // run after a successful commit publishes
	done    bool
}

// BeginWrite starts a write transaction, blocking until any other writer
// finishes. Waiting writers are admitted in FIFO arrival order.
func (s *Store) BeginWrite() (*WriteTxn, error) {
	s.writer.acquire()
	t, _, err := s.beginWriteGated()
	return t, err
}

// beginWriteGated builds the write transaction once the caller holds the
// writer gate, releasing the gate on failure. It also reports the commit
// horizon the transaction starts from, which Upgrade uses to measure how
// many commits intervened since a prepare phase pinned its snapshot.
func (s *Store) beginWriteGated() (*WriteTxn, uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.writer.release()
		return nil, 0, ErrClosed
	}
	txnID := s.nextTxnID
	s.nextTxnID++
	seq := s.commitSeq
	s.mu.Unlock()

	t := &WriteTxn{
		s:       s,
		txnID:   txnID,
		dirty:   make(map[uint32][]byte),
		pending: make(map[uint32]uint32),
	}
	p, err := s.readPage(0, seq)
	if err != nil {
		s.writer.release()
		return nil, 0, err
	}
	h, err := decodeHeader(p)
	if err != nil {
		s.writer.release()
		return nil, 0, err
	}
	t.hdr = h
	return t, seq, nil
}

// OnCommit registers fn to run once, after this transaction's commit has
// been published (its effects are visible to new snapshots) and before the
// writer gate is released — so anything fn records is observable before the
// next write transaction can begin. Hooks are dropped on Rollback and on
// commit failure. The ivf layer uses this to advance per-partition version
// counters only for mutations that actually became visible.
func (t *WriteTxn) OnCommit(fn func()) {
	t.hooks = append(t.hooks, fn)
}

// Update runs fn in a write transaction, committing on success and rolling
// back if fn returns an error.
func (s *Store) Update(fn func(*WriteTxn) error) error {
	t, err := s.BeginWrite()
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		t.Rollback()
		return err
	}
	return t.Commit()
}

func (t *WriteTxn) snapshot() uint64 {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.s.commitSeq
}

// Get returns a read-only view of pageNo including this transaction's own
// uncommitted writes.
func (t *WriteTxn) Get(pageNo uint32) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if pageNo == 0 {
		return nil, errPageZeroRW
	}
	if buf, ok := t.dirty[pageNo]; ok {
		return buf, nil
	}
	if frame, ok := t.pending[pageNo]; ok {
		buf := make([]byte, t.s.opts.PageSize)
		if err := t.s.wal.readFrame(frame, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return t.s.readPage(pageNo, t.snapshot())
}

// GetMut returns a writable copy of pageNo registered in the dirty set.
func (t *WriteTxn) GetMut(pageNo uint32) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if pageNo == 0 {
		return nil, errPageZeroRW
	}
	if buf, ok := t.dirty[pageNo]; ok {
		return buf, nil
	}
	src, err := t.Get(pageNo)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, len(src))
	copy(buf, src)
	t.dirty[pageNo] = buf
	delete(t.pending, pageNo) // dirty copy supersedes the spilled frame
	return buf, nil
}

// Allocate returns a fresh zeroed page, reusing the freelist when possible.
func (t *WriteTxn) Allocate() (uint32, []byte, error) {
	if t.done {
		return 0, nil, ErrTxnDone
	}
	var pageNo uint32
	if t.hdr.freelistHead != 0 {
		pageNo = t.hdr.freelistHead
		next, err := t.Get(pageNo)
		if err != nil {
			return 0, nil, err
		}
		t.hdr.freelistHead = leU32(next)
		t.hdr.freelistLen--
	} else {
		pageNo = t.hdr.pageCount
		t.hdr.pageCount++
	}
	buf := make([]byte, t.s.opts.PageSize)
	t.dirty[pageNo] = buf
	delete(t.pending, pageNo)
	return pageNo, buf, nil
}

// Free returns pageNo to the freelist.
func (t *WriteTxn) Free(pageNo uint32) error {
	if t.done {
		return ErrTxnDone
	}
	if pageNo == 0 || pageNo >= t.hdr.pageCount {
		return fmt.Errorf("%w: free page %d", ErrBadPage, pageNo)
	}
	buf, err := t.GetMut(pageNo)
	if err != nil {
		return err
	}
	for i := range buf {
		buf[i] = 0
	}
	putLEU32(buf, t.hdr.freelistHead)
	t.hdr.freelistHead = pageNo
	t.hdr.freelistLen++
	return nil
}

// PageCount returns the transaction's view of the page count.
func (t *WriteTxn) PageCount() uint32 { return t.hdr.pageCount }

// FreePages returns the freelist length.
func (t *WriteTxn) FreePages() uint32 { return t.hdr.freelistLen }

// CatalogRoot returns the catalog root page number (0 if unset).
func (t *WriteTxn) CatalogRoot() (uint32, error) { return t.hdr.catalogRoot, nil }

// SetCatalogRoot records the catalog root page in the header.
func (t *WriteTxn) SetCatalogRoot(pageNo uint32) { t.hdr.catalogRoot = pageNo }

// SpillIfNeeded bounds writer memory by flushing the dirty set to
// uncommitted WAL frames once it exceeds MaxDirtyPages. Spilling detaches
// the page buffers previously returned by GetMut/Allocate, so callers must
// only invoke it at safe points where no such buffer is still held —
// typically between row-level operations.
func (t *WriteTxn) SpillIfNeeded() error {
	if t.done {
		return ErrTxnDone
	}
	if len(t.dirty) <= t.s.opts.MaxDirtyPages {
		return nil
	}
	return t.spill()
}

// DirtyPages returns the number of in-memory dirty pages.
func (t *WriteTxn) DirtyPages() int { return len(t.dirty) }

func (t *WriteTxn) spill() error {
	for pageNo, buf := range t.dirty {
		frame, err := t.s.wal.appendFrame(pageNo, buf, t.txnID, false, 0)
		if err != nil {
			return err
		}
		t.pending[pageNo] = frame
		t.s.mu.Lock()
		t.s.statPagesOut++
		t.s.mu.Unlock()
		delete(t.dirty, pageNo)
	}
	return nil
}

// Commit appends the dirty set and a commit frame to the WAL, fsyncs per
// the sync mode, and publishes the transaction atomically.
func (t *WriteTxn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	s := t.s
	committed := false
	defer func() {
		t.done = true
		if committed {
			for _, fn := range t.hooks {
				fn()
			}
		}
		s.writer.release()
	}()

	// The header page always travels with the commit so page count,
	// freelist and catalog root stay transactional; it doubles as the
	// commit frame.
	hdrPage := make([]byte, s.opts.PageSize)
	encodeHeader(hdrPage, header{
		pageSize:     s.opts.PageSize,
		pageCount:    t.hdr.pageCount,
		freelistHead: t.hdr.freelistHead,
		freelistLen:  t.hdr.freelistLen,
		catalogRoot:  t.hdr.catalogRoot,
		backend:      uint8(s.kind),
	})

	type cached struct {
		pageNo uint32
		frame  uint32
		data   []byte
	}
	var toCache []cached
	for pageNo, buf := range t.dirty {
		frame, err := s.wal.appendFrame(pageNo, buf, t.txnID, false, 0)
		if err != nil {
			return err
		}
		t.pending[pageNo] = frame
		toCache = append(toCache, cached{pageNo, frame, buf})
	}
	commitFrame, err := s.wal.appendFrame(0, hdrPage, t.txnID, true, t.hdr.pageCount)
	if err != nil {
		return err
	}
	t.pending[0] = commitFrame
	toCache = append(toCache, cached{0, commitFrame, hdrPage})

	if s.opts.Sync == SyncNormal {
		if err := s.wal.sync(); err != nil {
			return err
		}
	}

	s.mu.Lock()
	s.commitSeq++
	s.idx.publish(t.pending, s.commitSeq)
	s.pageCount = t.hdr.pageCount
	s.statCommits++
	s.statPagesOut += uint64(len(toCache))
	frames := s.wal.frames.Load()
	s.mu.Unlock()
	committed = true

	// Write-through cache so re-reads of just-committed pages hit memory.
	for _, c := range toCache {
		s.pool.put(poolKey{pageNo: c.pageNo, frame: c.frame + 1}, c.data)
	}

	if s.opts.CheckpointFrames >= 0 && int(frames) >= s.opts.CheckpointFrames {
		// Best effort: skipped when readers pin older snapshots.
		_ = s.checkpointLocked()
	}
	return nil
}

// Rollback abandons the transaction. Spilled frames become garbage that the
// next checkpoint reclaims; they are never published so no reader or
// recovery pass can observe them.
func (t *WriteTxn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	t.hooks = nil
	t.s.writer.release()
}

// --- checkpoint ---

// Checkpoint folds the newest committed version of every WAL page into the
// base file and truncates the WAL. It fails with ErrBusy if a reader is
// pinned to a snapshot older than the commit horizon.
func (s *Store) Checkpoint() error {
	s.writer.acquire()
	defer s.writer.release()
	return s.checkpointLocked()
}

// checkpointLocked requires the writer gate held.
func (s *Store) checkpointLocked() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	for seq, n := range s.readers {
		if n > 0 && seq < s.commitSeq {
			s.mu.Unlock()
			return ErrBusy
		}
	}
	latest := s.idx.latest()
	s.mu.Unlock()
	if len(latest) == 0 {
		return nil
	}

	buf := make([]byte, s.opts.PageSize)
	for pageNo, frame := range latest {
		var data []byte
		if cached := s.pool.get(poolKey{pageNo: pageNo, frame: frame + 1}); cached != nil {
			data = cached
		} else {
			if err := s.wal.readFrame(frame, buf); err != nil {
				return err
			}
			data = buf
		}
		if err := s.backend.WritePage(pageNo, data); err != nil {
			return fmt.Errorf("storage: checkpoint page %d: %w", pageNo, err)
		}
	}
	if s.opts.Sync == SyncNormal {
		if err := s.backend.Sync(); err != nil {
			return err
		}
	}

	// Exclude concurrent page resolution while the WAL disappears. The
	// fold is already synced, so the ordering below is safe for every
	// backend — and it must refresh the backend's view of the (possibly
	// grown) base array BEFORE truncating the WAL: if Remap fails, the
	// WAL index still points at live frames and the store stays fully
	// readable; the reverse order would strand the index on a truncated
	// log.
	s.resolveMu.Lock()
	defer s.resolveMu.Unlock()
	if err := s.backend.Remap(); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	if s.directBase {
		// Every pool entry is WAL-keyed (base pages bypass the pool) and
		// the WAL just vanished: drop them all rather than promoting to
		// base keys that no read path would ever consult.
		s.pool.drop()
	} else {
		s.pool.checkpointRekey(latest)
	}
	s.mu.Lock()
	s.idx = newWALIndex()
	s.statCheckpoints++
	s.mu.Unlock()
	return nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLEU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
