package storage

import (
	"container/list"
	"sync"
)

// bufferPool is a byte-budgeted LRU cache of page images shared by all
// readers. Entries are keyed by (page number, WAL frame): frame 0 means the
// image came from the base database file, any other value is the WAL frame
// that produced it. Because a given (page, frame) pair is immutable, cached
// images never need invalidation while the WAL grows — only checkpoints
// re-key entries (the newest WAL image becomes the new base image).
//
// The pool's byte budget is MicroNN's main memory knob: the "Small DUT" and
// "Large DUT" device profiles in the paper's evaluation are reproduced by
// configuring this budget.
type bufferPool struct {
	mu       sync.Mutex
	budget   int64
	pageSize int64
	lru      *list.List // front = most recently used
	entries  map[poolKey]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type poolKey struct {
	pageNo uint32
	frame  uint32 // 0 = base file; else WAL frame number + 1
}

type poolEntry struct {
	key  poolKey
	data []byte
}

func newBufferPool(budget int64, pageSize uint32) *bufferPool {
	return &bufferPool{
		budget:   budget,
		pageSize: int64(pageSize),
		lru:      list.New(),
		entries:  make(map[poolKey]*list.Element),
	}
}

// get returns the cached image for key, or nil. The returned slice must be
// treated as read-only; writers copy pages before mutating them.
func (p *bufferPool) get(key poolKey) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.entries[key]
	if !ok {
		p.misses++
		return nil
	}
	p.hits++
	p.lru.MoveToFront(el)
	return el.Value.(*poolEntry).data
}

// put caches a page image, evicting least-recently-used entries to stay
// within budget. data is retained; callers must not mutate it afterwards.
func (p *bufferPool) put(key poolKey, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		el.Value.(*poolEntry).data = data
		p.lru.MoveToFront(el)
		return
	}
	el := p.lru.PushFront(&poolEntry{key: key, data: data})
	p.entries[key] = el
	for int64(len(p.entries))*p.pageSize > p.budget && p.lru.Len() > 1 {
		back := p.lru.Back()
		if back == nil {
			break
		}
		be := back.Value.(*poolEntry)
		delete(p.entries, be.key)
		p.lru.Remove(back)
		p.evictions++
	}
}

// checkpointRekey is called after a checkpoint copied the newest WAL image
// of each page into the base file. For every checkpointed page, the entry
// holding its newest frame is re-keyed to the base key (keeping the cache
// warm across checkpoints) and all other versions are dropped.
func (p *bufferPool) checkpointRekey(latest map[uint32]uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Snapshot the elements first: promotion displaces other entries of
	// the same page, and a displaced element visited later must not
	// delete the entry that took its key.
	els := make([]*list.Element, 0, p.lru.Len())
	for el := p.lru.Front(); el != nil; el = el.Next() {
		els = append(els, el)
	}
	for _, el := range els {
		e := el.Value.(*poolEntry)
		newest, involved := latest[e.key.pageNo]
		if !involved {
			continue
		}
		if cur, ok := p.entries[e.key]; !ok || cur != el {
			continue // already displaced by a promotion
		}
		delete(p.entries, e.key)
		if e.key.frame == newest+1 {
			// Promote to base image unless a base entry already exists
			// (it would be stale; replace it).
			baseKey := poolKey{pageNo: e.key.pageNo}
			if old, ok := p.entries[baseKey]; ok && old != el {
				p.lru.Remove(old)
				delete(p.entries, baseKey)
			}
			e.key = baseKey
			p.entries[baseKey] = el
		} else {
			p.lru.Remove(el)
		}
	}
}

// drop removes every cached entry. Used to simulate a cold start.
func (p *bufferPool) drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.entries = make(map[poolKey]*list.Element)
}

// bytes returns the memory currently held by the pool.
func (p *bufferPool) bytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.entries)) * p.pageSize
}

// stats returns cumulative hit/miss/eviction counters.
func (p *bufferPool) stats() (hits, misses, evictions uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}
