//go:build !unix

package storage

// On platforms without flock the advisory lock is a no-op; MicroNN is an
// embedded single-process library, so this only loses protection against a
// second process opening the same files concurrently.
type fileLock struct{}

func acquireFileLock(path string) (*fileLock, error) { return &fileLock{}, nil }

func (l *fileLock) release() {}
