//go:build !unix

package storage

import (
	"errors"
	"os"
)

// mmapSupported gates the read-mmap backend per platform.
const mmapSupported = false

var errMmapUnsupported = errors.New("storage: mmap backend is not supported on this platform; use the file backend")

func newMmapBackend(f *os.File, pageSize uint32) (Backend, error) {
	return nil, errMmapUnsupported
}
