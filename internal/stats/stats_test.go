package stats

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"micronn/internal/reldb"
	"micronn/internal/storage"
)

func setup(t *testing.T) (*reldb.DB, *reldb.Table) {
	t.Helper()
	s, err := storage.Open(filepath.Join(t.TempDir(), "t.db"), storage.Options{
		Sync: storage.SyncOff, CheckpointFrames: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Update(func(wt *storage.WriteTxn) error {
		return db.CreateTable(wt, &reldb.Schema{
			Name: "photos",
			Key:  []reldb.Column{{Name: "id", Type: reldb.TypeInt64}},
			Cols: []reldb.Column{
				{Name: "location", Type: reldb.TypeText},
				{Name: "ts", Type: reldb.TypeInt64},
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("photos")
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// populate writes 1000 rows: 950 in Seattle, 15 in NewYork, 35 others;
// ts uniform over [0, 1000).
func populate(t *testing.T, db *reldb.DB, tbl *reldb.Table) {
	t.Helper()
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		for i := int64(0); i < 1000; i++ {
			loc := "Seattle"
			switch {
			case i < 15:
				loc = "NewYork"
			case i < 50:
				loc = "Other" + string(rune('A'+i%5))
			}
			if err := tbl.Put(wt, reldb.Row{reldb.I(i), reldb.S(loc), reldb.I(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func analyze(t *testing.T, db *reldb.DB, tbl *reldb.Table) *TableStats {
	t.Helper()
	var ts *TableStats
	err := db.Store().View(func(rt *storage.ReadTxn) error {
		var err error
		ts, err = Analyze(rt, tbl, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestAnalyzeBasics(t *testing.T) {
	db, tbl := setup(t)
	populate(t, db, tbl)
	ts := analyze(t, db, tbl)
	if ts.Rows != 1000 {
		t.Errorf("Rows = %d", ts.Rows)
	}
	loc := ts.Columns["location"]
	if loc.NonNull != 1000 {
		t.Errorf("location NonNull = %d", loc.NonNull)
	}
	if loc.Distinct != 7 { // Seattle, NewYork, OtherA..E
		t.Errorf("location Distinct = %d, want 7", loc.Distinct)
	}
	if len(loc.MCV) == 0 || loc.MCV[0].Value != "Seattle" || loc.MCV[0].Count != 950 {
		t.Errorf("MCV[0] = %+v", loc.MCV)
	}
	tsCol := ts.Columns["ts"]
	if len(tsCol.Bounds) == 0 {
		t.Error("ts histogram missing")
	}
}

func selOf(t *testing.T, ts *TableStats, pred reldb.Predicate) float64 {
	t.Helper()
	s, err := ts.Selectivity(pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEqSelectivity(t *testing.T) {
	db, tbl := setup(t)
	populate(t, db, tbl)
	ts := analyze(t, db, tbl)

	// High-frequency value: ~95%.
	s := selOf(t, ts, reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("Seattle")})
	if math.Abs(s-0.95) > 0.01 {
		t.Errorf("sel(=Seattle) = %v, want ~0.95", s)
	}
	// Rare value: 1.5%.
	s = selOf(t, ts, reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("NewYork")})
	if math.Abs(s-0.015) > 0.005 {
		t.Errorf("sel(=NewYork) = %v, want ~0.015", s)
	}
	// Absent value: near zero.
	s = selOf(t, ts, reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("Atlantis")})
	if s > 0.01 {
		t.Errorf("sel(=Atlantis) = %v, want ~0", s)
	}
	// !=
	s = selOf(t, ts, reldb.Predicate{Column: "location", Op: reldb.OpNe, Value: reldb.S("Seattle")})
	if math.Abs(s-0.05) > 0.01 {
		t.Errorf("sel(!=Seattle) = %v, want ~0.05", s)
	}
}

func TestRangeSelectivity(t *testing.T) {
	db, tbl := setup(t)
	populate(t, db, tbl)
	ts := analyze(t, db, tbl)
	cases := []struct {
		pred reldb.Predicate
		want float64
		tol  float64
	}{
		{reldb.Predicate{Column: "ts", Op: reldb.OpLt, Value: reldb.I(500)}, 0.5, 0.05},
		{reldb.Predicate{Column: "ts", Op: reldb.OpGt, Value: reldb.I(500)}, 0.5, 0.05},
		{reldb.Predicate{Column: "ts", Op: reldb.OpLt, Value: reldb.I(100)}, 0.1, 0.05},
		{reldb.Predicate{Column: "ts", Op: reldb.OpGt, Value: reldb.I(900)}, 0.1, 0.05},
		{reldb.Predicate{Column: "ts", Op: reldb.OpLt, Value: reldb.I(-5)}, 0, 0.02},
		{reldb.Predicate{Column: "ts", Op: reldb.OpGt, Value: reldb.I(5000)}, 0, 0.02},
	}
	for _, c := range cases {
		s := selOf(t, ts, c.pred)
		if math.Abs(s-c.want) > c.tol {
			t.Errorf("sel(%v) = %v, want %v±%v", c.pred, s, c.want, c.tol)
		}
	}
}

func TestNullsReduceSelectivity(t *testing.T) {
	db, tbl := setup(t)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		for i := int64(0); i < 100; i++ {
			v := reldb.Value(reldb.I(i))
			if i%2 == 0 {
				v = reldb.Null()
			}
			if err := tbl.Put(wt, reldb.Row{reldb.I(i), reldb.S("x"), v}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := analyze(t, db, tbl)
	// Half the rows are null; ts < 1000 covers all non-null rows = 0.5.
	s := selOf(t, ts, reldb.Predicate{Column: "ts", Op: reldb.OpLt, Value: reldb.I(1000)})
	if math.Abs(s-0.5) > 0.05 {
		t.Errorf("sel with 50%% nulls = %v, want ~0.5", s)
	}
}

func TestMatchSelectivity(t *testing.T) {
	db, tbl := setup(t)
	populate(t, db, tbl)
	ts := analyze(t, db, tbl)
	df := func(column, token string) (int64, int64, error) {
		if column != "tags" {
			return 0, 1000, nil
		}
		switch token {
		case "common":
			return 800, 1000, nil
		case "rare":
			return 10, 1000, nil
		default:
			return 0, 1000, nil
		}
	}
	s, err := ts.Selectivity(reldb.Predicate{Column: "tags", Op: reldb.OpMatch, Value: reldb.S("common rare")}, df)
	if err != nil {
		t.Fatal(err)
	}
	// min(0.8, 0.01) = 0.01
	if math.Abs(s-0.01) > 1e-9 {
		t.Errorf("MATCH sel = %v, want 0.01", s)
	}
	if _, err := ts.Selectivity(reldb.Predicate{Column: "tags", Op: reldb.OpMatch, Value: reldb.S("x")}, nil); err == nil {
		t.Error("MATCH without DocFreqFunc should error")
	}
}

func TestFilterSelectivityCombination(t *testing.T) {
	db, tbl := setup(t)
	populate(t, db, tbl)
	ts := analyze(t, db, tbl)

	seattle := reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("Seattle")}
	newyork := reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("NewYork")}
	early := reldb.Predicate{Column: "ts", Op: reldb.OpLt, Value: reldb.I(100)}

	// Conjunction: min(0.95, 0.1) = ~0.1
	s, err := ts.FilterSelectivity(And(seattle, early), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.1) > 0.05 {
		t.Errorf("AND sel = %v, want ~0.1", s)
	}
	// Disjunction: 0.95 + 0.015
	s, err = ts.FilterSelectivity([]Filter{{AnyOf: []reldb.Predicate{seattle, newyork}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.965) > 0.02 {
		t.Errorf("OR sel = %v, want ~0.965", s)
	}
	// Empty filters: selectivity 1.
	s, err = ts.FilterSelectivity(nil, nil)
	if err != nil || s != 1 {
		t.Errorf("empty filters = %v, %v", s, err)
	}
	// Disjunction clamps at 1.
	s, err = ts.FilterSelectivity([]Filter{{AnyOf: []reldb.Predicate{seattle, seattle, seattle}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s > 1 {
		t.Errorf("OR sel exceeds 1: %v", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, tbl := setup(t)
	populate(t, db, tbl)
	ts := analyze(t, db, tbl)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		return Save(db, wt, "photos", ts)
	})
	if err != nil {
		t.Fatal(err)
	}
	var loaded *TableStats
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		var err error
		loaded, err = Load(db, rt, "photos")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("Load returned nil")
	}
	if loaded.Rows != ts.Rows || !reflect.DeepEqual(loaded.Columns["location"].MCV, ts.Columns["location"].MCV) {
		t.Errorf("round trip mismatch: %+v vs %+v", loaded, ts)
	}
	// Missing table: nil, no error.
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		got, err := Load(db, rt, "nonexistent")
		if err != nil {
			return err
		}
		if got != nil {
			t.Error("Load(nonexistent) should be nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownColumnSelectivity(t *testing.T) {
	db, tbl := setup(t)
	populate(t, db, tbl)
	ts := analyze(t, db, tbl)
	s := selOf(t, ts, reldb.Predicate{Column: "bogus", Op: reldb.OpEq, Value: reldb.I(1)})
	if s != 1 {
		t.Errorf("unknown column sel = %v, want 1 (non-selective)", s)
	}
}

func TestEmptyTable(t *testing.T) {
	db, tbl := setup(t)
	ts := analyze(t, db, tbl)
	if ts.Rows != 0 {
		t.Errorf("Rows = %d", ts.Rows)
	}
	s := selOf(t, ts, reldb.Predicate{Column: "location", Op: reldb.OpEq, Value: reldb.S("x")})
	if s != 0 {
		t.Errorf("empty table sel = %v", s)
	}
}
