// Package stats provides the cardinality statistics behind MicroNN's hybrid
// query optimizer (paper §3.5.1): per-column equi-depth histograms, distinct
// counts and most-common-value lists gathered by a full-table ANALYZE pass,
// plus token document frequencies for MATCH predicates (delegated to the
// FTS index). Selectivity factors combine as the paper prescribes —
// predicates are assumed independent, conjunctions take the minimum and
// disjunctions the sum of member selectivities.
package stats

import (
	"encoding/json"
	"errors"
	"sort"

	"micronn/internal/btree"
	"micronn/internal/reldb"
	"micronn/internal/storage"
	"micronn/internal/token"
)

// histogramBuckets is the equi-depth bucket count for numeric columns.
const histogramBuckets = 64

// mcvLimit bounds the most-common-values list per column.
const mcvLimit = 32

// distinctTrackLimit caps exact distinct counting; columns with more
// distinct values record the cap as a lower bound (enough resolution for
// plan choice, which only needs order-of-magnitude selectivities).
const distinctTrackLimit = 1 << 16

// ColumnStats summarizes one column's value distribution.
type ColumnStats struct {
	// NonNull is the number of non-null values observed.
	NonNull int64 `json:"non_null"`
	// Distinct is the (possibly capped) distinct value count.
	Distinct int64 `json:"distinct"`
	// Bounds holds equi-depth bucket upper bounds for numeric columns:
	// roughly NonNull/len(Bounds) values fall at or below each bound and
	// above the previous.
	Bounds []float64 `json:"bounds,omitempty"`
	// MCV lists the most common values with their exact counts.
	MCV []ValueCount `json:"mcv,omitempty"`
}

// ValueCount is a value with its occurrence count. The value is stored in
// rendered form (Value.String) since it is only compared for equality.
type ValueCount struct {
	Value string `json:"value"`
	Count int64  `json:"count"`
}

// TableStats summarizes a table.
type TableStats struct {
	Rows    int64                   `json:"rows"`
	Columns map[string]*ColumnStats `json:"columns"`
}

// DocFreqFunc resolves MATCH token document frequencies for a column: it
// returns the document count containing the token and the total document
// count in that column's full-text index.
type DocFreqFunc func(column, token string) (df, total int64, err error)

// Analyze performs a full scan of table, gathering statistics for the named
// columns (all value columns if cols is nil).
func Analyze(txn btree.ReadTxn, table *reldb.Table, cols []string) (*TableStats, error) {
	schema := table.Schema()
	if cols == nil {
		for _, c := range schema.Cols {
			cols = append(cols, c.Name)
		}
	}
	type colAcc struct {
		pos      int
		stats    *ColumnStats
		numeric  []float64
		counts   map[string]int64
		distinct map[string]struct{}
	}
	accs := make([]*colAcc, 0, len(cols))
	ts := &TableStats{Columns: make(map[string]*ColumnStats, len(cols))}
	for _, name := range cols {
		pos, _, err := schema.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		cs := &ColumnStats{}
		ts.Columns[name] = cs
		accs = append(accs, &colAcc{
			pos:      pos,
			stats:    cs,
			counts:   make(map[string]int64),
			distinct: make(map[string]struct{}),
		})
	}

	err := table.Scan(txn, nil, func(row reldb.Row) error {
		ts.Rows++
		for _, acc := range accs {
			v := row[acc.pos]
			if v.IsNull() {
				continue
			}
			acc.stats.NonNull++
			switch v.Type {
			case reldb.TypeInt64:
				acc.numeric = append(acc.numeric, float64(v.Int))
			case reldb.TypeFloat64:
				acc.numeric = append(acc.numeric, v.Flt)
			}
			key := v.String()
			if len(acc.distinct) < distinctTrackLimit {
				acc.distinct[key] = struct{}{}
			}
			acc.counts[key]++
			// Bound accumulator memory: keep the heaviest entries when
			// the map grows far past the MCV budget.
			if len(acc.counts) > 8*distinctTrackLimit {
				pruneCounts(acc.counts)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, acc := range accs {
		acc.stats.Distinct = int64(len(acc.distinct))
		if len(acc.numeric) > 0 {
			sort.Float64s(acc.numeric)
			acc.stats.Bounds = equiDepthBounds(acc.numeric, histogramBuckets)
		}
		acc.stats.MCV = topValues(acc.counts, mcvLimit)
	}
	return ts, nil
}

func pruneCounts(counts map[string]int64) {
	vals := topValues(counts, 4*mcvLimit)
	for k := range counts {
		delete(counts, k)
	}
	for _, vc := range vals {
		counts[vc.Value] = vc.Count
	}
}

func topValues(counts map[string]int64, limit int) []ValueCount {
	out := make([]ValueCount, 0, len(counts))
	for v, c := range counts {
		out = append(out, ValueCount{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func equiDepthBounds(sorted []float64, buckets int) []float64 {
	if len(sorted) == 0 {
		return nil
	}
	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	bounds := make([]float64, buckets)
	for i := 0; i < buckets; i++ {
		idx := (i + 1) * len(sorted) / buckets
		if idx > 0 {
			idx--
		}
		bounds[i] = sorted[idx]
	}
	return bounds
}

// Selectivity estimates the fraction of rows satisfying pred, in [0, 1].
// MATCH predicates need docFreq; pass nil otherwise.
func (ts *TableStats) Selectivity(pred reldb.Predicate, docFreq DocFreqFunc) (float64, error) {
	if ts.Rows == 0 {
		return 0, nil
	}
	if pred.Op == reldb.OpMatch {
		// MATCH selectivity comes from token document frequencies, not
		// column histograms (the column may be FTS-only).
		if docFreq == nil {
			return 1, errors.New("stats: MATCH selectivity requires a DocFreqFunc")
		}
		return matchSelectivity(pred.Column, pred.Value.Str, docFreq)
	}
	cs, ok := ts.Columns[pred.Column]
	if !ok {
		return 1, nil // unknown column: assume non-selective
	}
	nonNullFrac := float64(cs.NonNull) / float64(ts.Rows)
	switch pred.Op {
	case reldb.OpEq:
		return ts.eqSelectivity(cs, pred.Value), nil
	case reldb.OpNe:
		eq := ts.eqSelectivity(cs, pred.Value)
		s := nonNullFrac - eq
		if s < 0 {
			s = 0
		}
		return s, nil
	case reldb.OpLt, reldb.OpLe, reldb.OpGt, reldb.OpGe:
		return ts.rangeSelectivity(cs, pred, nonNullFrac), nil
	default:
		return 1, nil
	}
}

func (ts *TableStats) eqSelectivity(cs *ColumnStats, v reldb.Value) float64 {
	key := v.String()
	for _, vc := range cs.MCV {
		if vc.Value == key {
			return float64(vc.Count) / float64(ts.Rows)
		}
	}
	if cs.Distinct == 0 {
		return 0
	}
	// Not a common value: assume the uniform share of the non-MCV mass.
	var mcvMass int64
	for _, vc := range cs.MCV {
		mcvMass += vc.Count
	}
	rest := cs.NonNull - mcvMass
	restDistinct := cs.Distinct - int64(len(cs.MCV))
	if rest <= 0 || restDistinct <= 0 {
		// Everything is in the MCV list; an unseen value is rare.
		return 1 / float64(ts.Rows)
	}
	return float64(rest) / float64(restDistinct) / float64(ts.Rows)
}

func (ts *TableStats) rangeSelectivity(cs *ColumnStats, pred reldb.Predicate, nonNullFrac float64) float64 {
	var x float64
	switch pred.Value.Type {
	case reldb.TypeInt64:
		x = float64(pred.Value.Int)
	case reldb.TypeFloat64:
		x = pred.Value.Flt
	default:
		// Range over a non-numeric column: no histogram; fall back to a
		// fixed guess scaled by the non-null fraction (Selinger's 1/3).
		return nonNullFrac / 3
	}
	if len(cs.Bounds) == 0 {
		return nonNullFrac / 3
	}
	// Fraction of values <= x from the equi-depth bounds.
	idx := sort.SearchFloat64s(cs.Bounds, x)
	le := float64(idx) / float64(len(cs.Bounds))
	if idx < len(cs.Bounds) && cs.Bounds[idx] == x {
		le = float64(idx+1) / float64(len(cs.Bounds))
	}
	var frac float64
	switch pred.Op {
	case reldb.OpLt, reldb.OpLe:
		frac = le
	case reldb.OpGt, reldb.OpGe:
		frac = 1 - le
	}
	if frac < 0 {
		frac = 0
	}
	return frac * nonNullFrac
}

func matchSelectivity(column, query string, docFreq DocFreqFunc) (float64, error) {
	sel := 1.0
	found := false
	for _, tok := range token.Tokenize(query) {
		df, total, err := docFreq(column, tok)
		if err != nil {
			return 1, err
		}
		if total == 0 {
			return 0, nil
		}
		s := float64(df) / float64(total)
		// Conjunction of tokens: take the minimum (paper §3.5.1).
		if !found || s < sel {
			sel = s
			found = true
		}
	}
	if !found {
		return 1, nil
	}
	return sel, nil
}

// Filter is a disjunction of predicates; a query's filter set is a
// conjunction of Filters (CNF). The common single-predicate case is a
// Filter with one member.
type Filter struct {
	AnyOf []reldb.Predicate
}

// And builds the conjunction filter set from plain predicates.
func And(preds ...reldb.Predicate) []Filter {
	fs := make([]Filter, len(preds))
	for i, p := range preds {
		fs[i] = Filter{AnyOf: []reldb.Predicate{p}}
	}
	return fs
}

// FilterSelectivity estimates the combined selectivity of the filter set:
// sum within each disjunction, minimum across the conjunction, clamped to
// [0, 1] — exactly the paper's estimator.
func (ts *TableStats) FilterSelectivity(filters []Filter, docFreq DocFreqFunc) (float64, error) {
	if len(filters) == 0 {
		return 1, nil
	}
	minSel := 1.0
	for _, f := range filters {
		var sum float64
		for _, p := range f.AnyOf {
			s, err := ts.Selectivity(p, docFreq)
			if err != nil {
				return 1, err
			}
			sum += s
		}
		if sum > 1 {
			sum = 1
		}
		if sum < minSel {
			minSel = sum
		}
	}
	return minSel, nil
}

// --- persistence ---

const statsTableName = "__table_stats"

func ensureStatsTable(db *reldb.DB, wt *storage.WriteTxn) (*reldb.Table, error) {
	if !db.HasTable(statsTableName) {
		err := db.CreateTable(wt, &reldb.Schema{
			Name: statsTableName,
			Key:  []reldb.Column{{Name: "table", Type: reldb.TypeText}},
			Cols: []reldb.Column{{Name: "json", Type: reldb.TypeBlob}},
		})
		if err != nil {
			return nil, err
		}
	}
	return db.Table(statsTableName)
}

// Save persists stats for tableName.
func Save(db *reldb.DB, wt *storage.WriteTxn, tableName string, ts *TableStats) error {
	tbl, err := ensureStatsTable(db, wt)
	if err != nil {
		return err
	}
	blob, err := json.Marshal(ts)
	if err != nil {
		return err
	}
	return tbl.Put(wt, reldb.Row{reldb.S(tableName), reldb.B(blob)})
}

// Load retrieves persisted stats, or nil if none exist.
func Load(db *reldb.DB, txn btree.ReadTxn, tableName string) (*TableStats, error) {
	if !db.HasTable(statsTableName) {
		return nil, nil
	}
	tbl, err := db.Table(statsTableName)
	if err != nil {
		return nil, err
	}
	row, err := tbl.Get(txn, reldb.S(tableName))
	if errors.Is(err, reldb.ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ts TableStats
	if err := json.Unmarshal(row[1].Bts, &ts); err != nil {
		return nil, err
	}
	return &ts, nil
}
