package reldb

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReldbCodec fuzzes both row codecs from two directions. Forward: every
// value type built from the fuzzed scalars must survive
// decode(encode(v)) == v through both the order-preserving key encoding and
// the compact row encoding, and the key encoding must preserve tuple order
// (the property the clustered tables and secondary indexes stand on).
// Backward: the decoders must reject or decode arbitrary bytes without
// panicking, because they read pages straight from disk and a torn write or
// bit rot must surface as an error, not a crash.
func FuzzReldbCodec(f *testing.F) {
	f.Add([]byte{}, int64(0), 0.0, "")
	f.Add([]byte{0x00, 0xFF, 0x00, 0x01}, int64(-1), -0.0, "a\x00b")
	f.Add([]byte{tagInt, 1, 2, 3}, int64(1<<62), 3.5e300, "text")
	f.Add([]byte{byte(TypeBlob), 0xFF, 0xFF}, int64(-1<<62), -1e-300, "\xff\xfe")

	f.Fuzz(func(t *testing.T, data []byte, i int64, fl float64, s string) {
		row := Row{Null(), I(i), F(fl), S(s), B(data)}

		// Key codec round-trip (floats: NaN has no total-order encoding
		// contract; skip the float column when fl is NaN).
		keyRow := row
		if fl != fl {
			keyRow = Row{Null(), I(i), S(s), B(data)}
		}
		key := EncodeKey(nil, keyRow...)
		back, err := DecodeKey(key, len(keyRow))
		if err != nil {
			t.Fatalf("DecodeKey(EncodeKey(%v)): %v", keyRow, err)
		}
		for c := range keyRow {
			if !valueEqual(keyRow[c], back[c]) {
				t.Fatalf("key column %d: %v -> %v", c, keyRow[c], back[c])
			}
		}

		// Order preservation: the byte order of encoded int/string keys must
		// equal the value order.
		k1 := EncodeKey(nil, I(i))
		k2 := EncodeKey(nil, I(i+1))
		if i+1 > i && bytes.Compare(k1, k2) >= 0 {
			t.Fatalf("int key order broken: %d vs %d", i, i+1)
		}
		s1 := EncodeKey(nil, S(s))
		s2 := EncodeKey(nil, S(s+"\x00"))
		if bytes.Compare(s1, s2) >= 0 {
			t.Fatalf("string key order broken for %q", s)
		}

		// Row codec round-trip (NaN compares unequal to itself; compare
		// bit-level via valueEqual's NaN handling below).
		enc := EncodeRow(nil, row)
		rback, err := DecodeRow(enc, len(row))
		if err != nil {
			t.Fatalf("DecodeRow(EncodeRow(%v)): %v", row, err)
		}
		for c := range row {
			if !valueEqual(row[c], rback[c]) {
				t.Fatalf("row column %d: %v -> %v", c, row[c], rback[c])
			}
		}

		// Backward: arbitrary bytes through every decoder — errors are
		// fine, panics and non-termination are not.
		for n := 1; n <= 4; n++ {
			if r, err := DecodeKey(data, n); err == nil && len(r) != n {
				t.Fatalf("DecodeKey returned %d columns, want %d", len(r), n)
			}
			if r, err := DecodeRow(data, n); err == nil && len(r) != n {
				t.Fatalf("DecodeRow returned %d columns, want %d", len(r), n)
			}
		}
		rest := data
		for len(rest) > 0 {
			_, next, err := DecodeKeyValue(rest)
			if err != nil {
				break
			}
			if len(next) >= len(rest) {
				t.Fatal("DecodeKeyValue made no progress")
			}
			rest = next
		}
		rest = data
		for len(rest) > 0 {
			_, next, err := DecodeRowValue(rest)
			if err != nil {
				break
			}
			if len(next) >= len(rest) {
				t.Fatal("DecodeRowValue made no progress")
			}
			rest = next
		}
	})
}

// valueEqual compares decoded values, treating NaN floats as equal to
// themselves (round-tripping must preserve the bits, not IEEE equality).
func valueEqual(a, b Value) bool {
	if a.Type != b.Type {
		return false
	}
	switch a.Type {
	case TypeNull:
		return true
	case TypeInt64:
		return a.Int == b.Int
	case TypeFloat64:
		// Bit-level: NaN payloads and the sign of -0.0 must survive the
		// round trip, which IEEE == cannot check.
		return math.Float64bits(a.Flt) == math.Float64bits(b.Flt)
	case TypeText:
		return a.Str == b.Str
	case TypeBlob:
		return bytes.Equal(a.Bts, b.Bts)
	default:
		return false
	}
}
