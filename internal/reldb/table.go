package reldb

import (
	"bytes"
	"errors"
	"fmt"

	"micronn/internal/btree"
	"micronn/internal/storage"
)

// Table is a handle to a clustered table. Handles are cheap and stateless;
// operations take the transaction explicitly so one handle can serve many
// concurrent readers.
type Table struct {
	db   *DB
	meta *tableMeta
	tree *btree.Tree
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.meta.schema }

func (t *Table) encodePK(row Row) []byte {
	return EncodeKey(nil, row[:len(t.meta.schema.Key)]...)
}

// Put inserts or replaces the row (identified by its key columns) and
// maintains all secondary indexes.
func (t *Table) Put(wt *storage.WriteTxn, row Row) error {
	s := t.meta.schema
	if err := s.validateRow(row); err != nil {
		return err
	}
	key := t.encodePK(row)

	// Maintain indexes: remove entries for the prior version, if any.
	if len(t.meta.indexes) > 0 {
		old, err := t.getByEncodedKey(wt, key)
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		if old != nil {
			for _, im := range t.meta.indexes {
				if err := t.indexDelete(wt, im, old); err != nil {
					return err
				}
			}
		}
	}
	val := EncodeRow(nil, row[len(s.Key):])
	if err := t.tree.Put(wt, key, val); err != nil {
		return err
	}
	for _, im := range t.meta.indexes {
		if err := t.indexPut(wt, im, row); err != nil {
			return err
		}
	}
	return wt.SpillIfNeeded()
}

// Get fetches the row with the given key column values.
func (t *Table) Get(txn btree.ReadTxn, keyVals ...Value) (Row, error) {
	s := t.meta.schema
	if len(keyVals) != len(s.Key) {
		return nil, fmt.Errorf("reldb: table %s key needs %d values, got %d", s.Name, len(s.Key), len(keyVals))
	}
	return t.getByEncodedKey(txn, EncodeKey(nil, keyVals...))
}

func (t *Table) getByEncodedKey(txn btree.ReadTxn, key []byte) (Row, error) {
	val, err := t.tree.Get(txn, key)
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	return t.decodeFull(key, val)
}

func (t *Table) decodeFull(key, val []byte) (Row, error) {
	s := t.meta.schema
	keyRow, err := DecodeKey(key, len(s.Key))
	if err != nil {
		return nil, err
	}
	valRow, err := DecodeRow(val, len(s.Cols))
	if err != nil {
		return nil, err
	}
	return append(keyRow, valRow...), nil
}

// Delete removes the row with the given key column values, returning
// ErrNotFound if absent.
func (t *Table) Delete(wt *storage.WriteTxn, keyVals ...Value) error {
	s := t.meta.schema
	if len(keyVals) != len(s.Key) {
		return fmt.Errorf("reldb: table %s key needs %d values, got %d", s.Name, len(s.Key), len(keyVals))
	}
	key := EncodeKey(nil, keyVals...)
	if len(t.meta.indexes) > 0 {
		old, err := t.getByEncodedKey(wt, key)
		if err != nil {
			return err
		}
		for _, im := range t.meta.indexes {
			if err := t.indexDelete(wt, im, old); err != nil {
				return err
			}
		}
	}
	if err := t.tree.Delete(wt, key); err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return ErrNotFound
		}
		return err
	}
	return wt.SpillIfNeeded()
}

// Scan iterates rows whose key starts with the given prefix values (nil
// scans the whole table) in primary-key order. fn returning ErrStopScan
// ends the scan early without error.
func (t *Table) Scan(txn btree.ReadTxn, prefix []Value, fn func(Row) error) error {
	var pfx []byte
	if len(prefix) > 0 {
		pfx = EncodeKey(nil, prefix...)
	}
	return t.scanRaw(txn, pfx, func(k, v []byte) error {
		row, err := t.decodeFull(k, v)
		if err != nil {
			return err
		}
		return fn(row)
	})
}

// ErrStopScan stops a scan early; Scan returns nil in that case.
var ErrStopScan = errors.New("reldb: stop scan")

func (t *Table) scanRaw(txn btree.ReadTxn, prefix []byte, fn func(k, v []byte) error) error {
	var c *btree.Cursor
	var err error
	if len(prefix) == 0 {
		c, err = t.tree.First(txn)
	} else {
		c, err = t.tree.Seek(txn, prefix)
	}
	if err != nil {
		return err
	}
	for c.Valid() {
		k, err := c.Key()
		if err != nil {
			return err
		}
		if len(prefix) > 0 && !bytes.HasPrefix(k, prefix) {
			return nil
		}
		v, err := c.Value()
		if err != nil {
			return err
		}
		if err := fn(k, v); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

// ScanKeys iterates only the decoded primary keys under a prefix — cheaper
// than Scan when values are large (e.g. collecting vector ids to move).
func (t *Table) ScanKeys(txn btree.ReadTxn, prefix []Value, fn func(Row) error) error {
	var pfx []byte
	if len(prefix) > 0 {
		pfx = EncodeKey(nil, prefix...)
	}
	var c *btree.Cursor
	var err error
	if len(pfx) == 0 {
		c, err = t.tree.First(txn)
	} else {
		c, err = t.tree.Seek(txn, pfx)
	}
	if err != nil {
		return err
	}
	for c.Valid() {
		k, err := c.Key()
		if err != nil {
			return err
		}
		if len(pfx) > 0 && !bytes.HasPrefix(k, pfx) {
			return nil
		}
		keyRow, err := DecodeKey(k, len(t.meta.schema.Key))
		if err != nil {
			return err
		}
		if err := fn(keyRow); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

// ScanKeysFrom iterates decoded primary keys starting at the first key >=
// from (not a prefix: iteration continues past keys that diverge from it)
// until the end of the table or until fn returns ErrStopScan. It is the
// range-scan primitive for key-ordered tables — callers seek to a lower
// bound and stop themselves at their upper bound.
func (t *Table) ScanKeysFrom(txn btree.ReadTxn, from []Value, fn func(Row) error) error {
	var lo []byte
	if len(from) > 0 {
		lo = EncodeKey(nil, from...)
	}
	var c *btree.Cursor
	var err error
	if len(lo) == 0 {
		c, err = t.tree.First(txn)
	} else {
		c, err = t.tree.Seek(txn, lo)
	}
	if err != nil {
		return err
	}
	for c.Valid() {
		k, err := c.Key()
		if err != nil {
			return err
		}
		keyRow, err := DecodeKey(k, len(t.meta.schema.Key))
		if err != nil {
			return err
		}
		if err := fn(keyRow); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

// LeafPages calls emit with the page number of every btree leaf that can
// hold rows whose key starts with prefix (nil covers the whole table),
// without reading the leaves — the readahead primitive behind
// storage.ReadTxn.Readahead. The enumeration is a superset: a boundary
// leaf shared with a neighboring prefix is included, which is harmless for
// prefetching.
func (t *Table) LeafPages(txn btree.ReadTxn, prefix []Value, emit func(uint32)) error {
	var lo, hi []byte
	if len(prefix) > 0 {
		lo = EncodeKey(nil, prefix...)
		hi = prefixSuccessor(lo)
	}
	return t.tree.LeafPages(txn, lo, hi, emit)
}

// prefixSuccessor returns the smallest byte string greater than every
// string prefixed by p, or nil (unbounded) when p is all 0xff.
func prefixSuccessor(p []byte) []byte {
	s := append([]byte(nil), p...)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] != 0xff {
			s[i]++
			return s[:i+1]
		}
	}
	return nil
}

// Count returns the number of rows.
func (t *Table) Count(txn btree.ReadTxn) (int, error) {
	return t.tree.Count(txn)
}

// Truncate removes all rows and index entries, reclaiming pages.
func (t *Table) Truncate(wt *storage.WriteTxn) error {
	if err := t.tree.Drop(wt); err != nil {
		return err
	}
	for _, im := range t.meta.indexes {
		itree := btree.Load(im.root, t.db.pageSize)
		if err := itree.Drop(wt); err != nil {
			return err
		}
	}
	return wt.SpillIfNeeded()
}

// --- secondary index maintenance ---

// indexKey builds the index entry key: indexed column values followed by
// the primary key (making every entry unique).
func (t *Table) indexKey(im *indexMeta, row Row) ([]byte, error) {
	s := t.meta.schema
	var key []byte
	for _, col := range im.cols {
		pos, _, err := s.ColumnIndex(col)
		if err != nil {
			return nil, err
		}
		key = AppendKeyValue(key, row[pos])
	}
	return EncodeKey(key, row[:len(s.Key)]...), nil
}

func (t *Table) indexPut(wt *storage.WriteTxn, im *indexMeta, row Row) error {
	key, err := t.indexKey(im, row)
	if err != nil {
		return err
	}
	itree := btree.Load(im.root, t.db.pageSize)
	return itree.Put(wt, key, nil)
}

func (t *Table) indexDelete(wt *storage.WriteTxn, im *indexMeta, row Row) error {
	key, err := t.indexKey(im, row)
	if err != nil {
		return err
	}
	itree := btree.Load(im.root, t.db.pageSize)
	if err := itree.Delete(wt, key); err != nil && !errors.Is(err, btree.ErrNotFound) {
		return err
	}
	return nil
}

// Index is a handle to a secondary index.
type Index struct {
	db     *DB
	meta   *indexMeta
	schema *Schema // schema of the indexed table
	tree   *btree.Tree
}

// Columns returns the indexed column names.
func (ix *Index) Columns() []string { return ix.meta.cols }

// Scan iterates index entries whose indexed columns start with the given
// prefix values. fn receives the indexed column values and the primary key
// of the base row. Entries arrive in (indexed columns, pk) order, so range
// predicates over the first indexed column are contiguous.
func (ix *Index) Scan(txn btree.ReadTxn, prefix []Value, fn func(idxVals, pk Row) error) error {
	var pfx []byte
	if len(prefix) > 0 {
		pfx = EncodeKey(nil, prefix...)
	}
	return ix.scanFrom(txn, pfx, pfx, fn)
}

// ScanRange iterates entries whose first indexed column lies in the range
// described by lo/hi. A null bound is unbounded on that side. Null index
// entries never match (SQL predicate semantics), so unbounded-low scans
// start after the null block. Used by range predicates (<, >, <=, >=).
func (ix *Index) ScanRange(txn btree.ReadTxn, lo, hi Value, loInclusive, hiInclusive bool, fn func(idxVals, pk Row) error) error {
	var start []byte
	if !lo.IsNull() {
		start = AppendKeyValue(nil, lo)
		if !loInclusive {
			// Skip past every entry whose first column equals lo: the
			// sentinel is larger than any continuation byte (remaining
			// key columns all start with tags < 0xFF).
			start = append(start, 0xFF)
		}
	} else {
		// Start just past the null block.
		start = []byte{tagNull + 1}
	}
	var hiKey []byte
	if !hi.IsNull() {
		hiKey = AppendKeyValue(nil, hi)
	}
	c, err := ix.tree.Seek(txn, start)
	if err != nil {
		return err
	}
	for c.Valid() {
		k, err := c.Key()
		if err != nil {
			return err
		}
		if hiKey != nil {
			cmp := bytes.Compare(k, hiKey)
			if cmp >= 0 {
				if !hiInclusive || !bytes.HasPrefix(k, hiKey) {
					return nil
				}
			}
		}
		if err := ix.emit(k, fn); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

func (ix *Index) scanFrom(txn btree.ReadTxn, start, prefix []byte, fn func(idxVals, pk Row) error) error {
	var c *btree.Cursor
	var err error
	if len(start) == 0 {
		c, err = ix.tree.First(txn)
	} else {
		c, err = ix.tree.Seek(txn, start)
	}
	if err != nil {
		return err
	}
	for c.Valid() {
		k, err := c.Key()
		if err != nil {
			return err
		}
		if len(prefix) > 0 && !bytes.HasPrefix(k, prefix) {
			return nil
		}
		if err := ix.emit(k, fn); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

func (ix *Index) emit(k []byte, fn func(idxVals, pk Row) error) error {
	n := len(ix.meta.cols)
	row, err := DecodeKey(k, n+len(ix.schema.Key))
	if err != nil {
		return err
	}
	return fn(row[:n], row[n:])
}

// Count returns the number of index entries.
func (ix *Index) Count(txn btree.ReadTxn) (int, error) { return ix.tree.Count(txn) }
