package reldb

import (
	"errors"
	"fmt"
	"sync"

	"micronn/internal/btree"
	"micronn/internal/storage"
)

// ErrNotFound is returned when a row or catalog object is absent.
var ErrNotFound = errors.New("reldb: not found")

// ErrExists is returned when creating an object that already exists.
var ErrExists = errors.New("reldb: already exists")

// DB is a catalog of tables and indexes over a storage.Store. The catalog
// is cached in memory (it changes only during setup) and persisted in its
// own B+tree whose root lives in the store header.
type DB struct {
	store    *storage.Store
	pageSize int

	mu      sync.RWMutex
	catalog *btree.Tree
	tables  map[string]*tableMeta
	indexes map[string]*indexMeta
}

type tableMeta struct {
	schema  *Schema
	root    uint32
	indexes []*indexMeta // indexes defined on this table
}

type indexMeta struct {
	name  string
	table string
	cols  []string
	root  uint32
}

// Open wraps an already-open store, creating or loading the catalog.
func Open(store *storage.Store) (*DB, error) {
	db := &DB{
		store:    store,
		pageSize: int(store.PageSize()),
		tables:   make(map[string]*tableMeta),
		indexes:  make(map[string]*indexMeta),
	}
	err := store.Update(func(wt *storage.WriteTxn) error {
		root, err := wt.CatalogRoot()
		if err != nil {
			return err
		}
		if root == 0 {
			tree, err := btree.New(wt, db.pageSize)
			if err != nil {
				return err
			}
			wt.SetCatalogRoot(tree.Root())
			db.catalog = tree
			return nil
		}
		db.catalog = btree.Load(root, db.pageSize)
		return db.loadCatalog(wt)
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Store exposes the underlying page store (for stats and cache control).
func (db *DB) Store() *storage.Store { return db.store }

func (db *DB) loadCatalog(txn btree.ReadTxn) error {
	c, err := db.catalog.First(txn)
	if err != nil {
		return err
	}
	var indexEntries []*catalogEntry
	var indexNames []string
	for c.Valid() {
		k, err := c.Key()
		if err != nil {
			return err
		}
		v, err := c.Value()
		if err != nil {
			return err
		}
		nameRow, err := DecodeKey(k, 1)
		if err != nil {
			return err
		}
		entry, err := unmarshalCatalogEntry(v)
		if err != nil {
			return err
		}
		switch entry.Kind {
		case "table":
			db.tables[nameRow[0].Str] = &tableMeta{schema: entry.Schema, root: entry.Root}
		case "index":
			indexEntries = append(indexEntries, entry)
			indexNames = append(indexNames, nameRow[0].Str)
		default:
			return fmt.Errorf("reldb: unknown catalog kind %q", entry.Kind)
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	for i, entry := range indexEntries {
		tm, ok := db.tables[entry.Table]
		if !ok {
			return fmt.Errorf("reldb: index %s references missing table %s", indexNames[i], entry.Table)
		}
		im := &indexMeta{name: indexNames[i], table: entry.Table, cols: entry.Cols, root: entry.Root}
		db.indexes[im.name] = im
		tm.indexes = append(tm.indexes, im)
	}
	return nil
}

func (db *DB) putCatalogEntry(wt *storage.WriteTxn, name string, e *catalogEntry) error {
	blob, err := e.marshal()
	if err != nil {
		return err
	}
	return db.catalog.Put(wt, EncodeKey(nil, S(name)), blob)
}

// CreateTable creates a table inside the given write transaction. The
// in-memory catalog is updated on success; callers must commit the
// transaction (Open's caller controls transaction scope so several objects
// can be created atomically).
func (db *DB) CreateTable(wt *storage.WriteTxn, schema *Schema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[schema.Name]; ok {
		return fmt.Errorf("%w: table %s", ErrExists, schema.Name)
	}
	if len(schema.Key) == 0 {
		return fmt.Errorf("reldb: table %s needs at least one key column", schema.Name)
	}
	tree, err := btree.New(wt, db.pageSize)
	if err != nil {
		return err
	}
	entry := &catalogEntry{Kind: "table", Root: tree.Root(), Schema: schema}
	if err := db.putCatalogEntry(wt, schema.Name, entry); err != nil {
		return err
	}
	db.tables[schema.Name] = &tableMeta{schema: schema, root: tree.Root()}
	return nil
}

// CreateIndex creates a secondary index over cols of table. Existing rows
// are indexed immediately.
func (db *DB) CreateIndex(wt *storage.WriteTxn, name, table string, cols ...string) error {
	db.mu.Lock()
	if _, ok := db.indexes[name]; ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: index %s", ErrExists, name)
	}
	tm, ok := db.tables[table]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: table %s", ErrNotFound, table)
	}
	for _, c := range cols {
		if _, _, err := tm.schema.ColumnIndex(c); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	tree, err := btree.New(wt, db.pageSize)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	entry := &catalogEntry{Kind: "index", Root: tree.Root(), Table: table, Cols: cols}
	if err := db.putCatalogEntry(wt, name, entry); err != nil {
		db.mu.Unlock()
		return err
	}
	im := &indexMeta{name: name, table: table, cols: cols, root: tree.Root()}
	db.indexes[name] = im
	tm.indexes = append(tm.indexes, im)
	db.mu.Unlock()

	// Backfill from existing rows.
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	return t.Scan(wt, nil, func(row Row) error {
		if err := t.indexPut(wt, im, row); err != nil {
			return err
		}
		return wt.SpillIfNeeded()
	})
}

// Table returns a handle for the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	tm, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: table %s", ErrNotFound, name)
	}
	return &Table{db: db, meta: tm, tree: btree.Load(tm.root, db.pageSize)}, nil
}

// Index returns a handle for the named secondary index.
func (db *DB) Index(name string) (*Index, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	im, ok := db.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: index %s", ErrNotFound, name)
	}
	tm := db.tables[im.table]
	return &Index{db: db, meta: im, schema: tm.schema, tree: btree.Load(im.root, db.pageSize)}, nil
}

// HasTable reports whether a table exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[name]
	return ok
}
