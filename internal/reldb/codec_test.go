package reldb

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	rows := []Row{
		{I(0)}, {I(-1)}, {I(math.MaxInt64)}, {I(math.MinInt64)},
		{F(0)}, {F(-1.5)}, {F(math.MaxFloat64)}, {F(-math.MaxFloat64)},
		{S("")}, {S("hello")}, {S("with\x00null")}, {S("ünïcödé")},
		{B(nil)}, {B([]byte{0, 1, 2, 0xFF, 0})},
		{Null()},
		{I(42), S("composite"), F(3.14)},
		{S("a\x00b"), S("a"), I(-7), Null(), B([]byte{0})},
	}
	for _, row := range rows {
		enc := EncodeKey(nil, row...)
		dec, err := DecodeKey(enc, len(row))
		if err != nil {
			t.Fatalf("DecodeKey(%v): %v", row, err)
		}
		for i := range row {
			if Compare(row[i], dec[i]) != 0 || row[i].Type != dec[i].Type {
				t.Errorf("round trip %v: got %v", row, dec)
			}
		}
	}
}

func TestKeyOrderPreservingInts(t *testing.T) {
	f := func(a, b int64) bool {
		ea := EncodeKey(nil, I(a))
		eb := EncodeKey(nil, I(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderPreservingFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN ordering is undefined; schemas reject NaN keys upstream
		}
		ea := EncodeKey(nil, F(a))
		eb := EncodeKey(nil, F(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderPreservingStrings(t *testing.T) {
	f := func(a, b string) bool {
		ea := EncodeKey(nil, S(a))
		eb := EncodeKey(nil, S(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderPreservingComposite(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		ea := EncodeKey(nil, I(a1), S(a2))
		eb := EncodeKey(nil, I(b1), S(b2))
		cmp := bytes.Compare(ea, eb)
		var want int
		switch {
		case a1 < b1:
			want = -1
		case a1 > b1:
			want = 1
		case a2 < b2:
			want = -1
		case a2 > b2:
			want = 1
		}
		switch want {
		case -1:
			return cmp < 0
		case 1:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNullSortsFirst(t *testing.T) {
	null := EncodeKey(nil, Null())
	for _, v := range []Value{I(math.MinInt64), F(-math.MaxFloat64), S(""), B(nil)} {
		if bytes.Compare(null, EncodeKey(nil, v)) >= 0 {
			t.Errorf("null does not sort before %v", v)
		}
	}
}

func TestRowRoundTrip(t *testing.T) {
	rows := []Row{
		{I(5), F(2.5), S("text"), B([]byte{1, 2}), Null()},
		{},
		{S("")},
		{I(-1 << 62)},
	}
	for _, row := range rows {
		enc := EncodeRow(nil, row)
		dec, err := DecodeRow(enc, len(row))
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", row, err)
		}
		for i := range row {
			if Compare(row[i], dec[i]) != 0 || row[i].Type != dec[i].Type {
				t.Errorf("round trip %v -> %v", row, dec)
			}
		}
	}
}

func TestRowRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(6)
		row := make(Row, n)
		for i := range row {
			switch rng.Intn(5) {
			case 0:
				row[i] = I(rng.Int63() - rng.Int63())
			case 1:
				row[i] = F(rng.NormFloat64())
			case 2:
				buf := make([]byte, rng.Intn(50))
				rng.Read(buf)
				row[i] = S(string(buf))
			case 3:
				buf := make([]byte, rng.Intn(50))
				rng.Read(buf)
				row[i] = B(buf)
			case 4:
				row[i] = Null()
			}
		}
		enc := EncodeRow(nil, row)
		dec, err := DecodeRow(enc, n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range row {
			if Compare(row[i], dec[i]) != 0 {
				t.Fatalf("trial %d col %d: %v != %v", trial, i, row[i], dec[i])
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeKeyValue(nil); err == nil {
		t.Error("DecodeKeyValue(nil) should fail")
	}
	if _, _, err := DecodeKeyValue([]byte{tagInt, 1, 2}); err == nil {
		t.Error("truncated int should fail")
	}
	if _, _, err := DecodeKeyValue([]byte{tagText, 'a'}); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, _, err := DecodeKeyValue([]byte{0x99}); err == nil {
		t.Error("unknown tag should fail")
	}
	if _, _, err := DecodeRowValue(nil); err == nil {
		t.Error("DecodeRowValue(nil) should fail")
	}
	if _, _, err := DecodeRowValue([]byte{byte(TypeText), 200}); err == nil {
		t.Error("truncated text row should fail")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{I(1), I(2), -1},
		{I(2), I(1), 1},
		{I(1), I(1), 0},
		{F(1.5), F(2.5), -1},
		{S("a"), S("b"), -1},
		{B([]byte{1}), B([]byte{1, 0}), -1},
		{Null(), Null(), 0},
		{Null(), I(0), -1}, // null type sorts before int
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPredicateEval(t *testing.T) {
	cases := []struct {
		pred Predicate
		val  Value
		want bool
	}{
		{Predicate{"c", OpEq, I(5)}, I(5), true},
		{Predicate{"c", OpEq, I(5)}, I(6), false},
		{Predicate{"c", OpNe, I(5)}, I(6), true},
		{Predicate{"c", OpLt, I(5)}, I(4), true},
		{Predicate{"c", OpLt, I(5)}, I(5), false},
		{Predicate{"c", OpLe, I(5)}, I(5), true},
		{Predicate{"c", OpGt, F(1.0)}, F(1.5), true},
		{Predicate{"c", OpGe, F(1.0)}, F(1.0), true},
		{Predicate{"c", OpEq, S("x")}, S("x"), true},
		{Predicate{"c", OpEq, I(5)}, Null(), false},
		{Predicate{"c", OpNe, I(5)}, Null(), false}, // null never matches
		{Predicate{"c", OpEq, I(5)}, S("5"), false}, // type mismatch
	}
	for _, c := range cases {
		if got := c.pred.Eval(c.val, nil); got != c.want {
			t.Errorf("%v on %v = %v, want %v", c.pred, c.val, got, c.want)
		}
	}
	// MATCH delegates to the supplied function.
	m := func(doc, q string) bool { return doc == "doc" && q == "q" }
	p := Predicate{"c", OpMatch, S("q")}
	if !p.Eval(S("doc"), m) {
		t.Error("MATCH should delegate to MatchFunc")
	}
	if p.Eval(S("doc"), nil) {
		t.Error("MATCH without MatchFunc must be false")
	}
}
