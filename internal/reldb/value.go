// Package reldb is the relational layer between MicroNN's B+trees and its
// vector index: typed schemas, order-preserving key encoding, tables
// (clustered B+trees), secondary indexes, and predicate evaluation. It
// stands in for the SQLite SQL layer the paper builds on — MicroNN only
// needs point/range access on typed tuples, so this layer exposes exactly
// that instead of SQL.
package reldb

import (
	"bytes"
	"fmt"
	"strconv"
)

// ColType enumerates column types.
type ColType uint8

const (
	// TypeNull is the type of the null Value; columns cannot be declared
	// with it but any nullable column may hold it.
	TypeNull ColType = iota
	// TypeInt64 is a signed 64-bit integer column.
	TypeInt64
	// TypeFloat64 is a 64-bit IEEE float column.
	TypeFloat64
	// TypeText is a UTF-8 string column.
	TypeText
	// TypeBlob is a raw byte-string column.
	TypeBlob
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt64:
		return "INTEGER"
	case TypeFloat64:
		return "REAL"
	case TypeText:
		return "TEXT"
	case TypeBlob:
		return "BLOB"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Value is a dynamically typed column value.
type Value struct {
	Type ColType
	Int  int64
	Flt  float64
	Str  string
	Bts  []byte
}

// Null returns the null value.
func Null() Value { return Value{Type: TypeNull} }

// I wraps an int64.
func I(v int64) Value { return Value{Type: TypeInt64, Int: v} }

// F wraps a float64.
func F(v float64) Value { return Value{Type: TypeFloat64, Flt: v} }

// S wraps a string.
func S(v string) Value { return Value{Type: TypeText, Str: v} }

// B wraps a byte slice (retained, not copied).
func B(v []byte) Value { return Value{Type: TypeBlob, Bts: v} }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.Type == TypeNull }

// String renders the value for debugging and CLI output.
func (v Value) String() string {
	switch v.Type {
	case TypeNull:
		return "NULL"
	case TypeInt64:
		return strconv.FormatInt(v.Int, 10)
	case TypeFloat64:
		return strconv.FormatFloat(v.Flt, 'g', -1, 64)
	case TypeText:
		return v.Str
	case TypeBlob:
		return fmt.Sprintf("x'%x'", v.Bts)
	default:
		return "?"
	}
}

// Compare orders two values. Nulls sort first; comparing different non-null
// types orders by type id (well-defined but normally prevented by schemas).
func Compare(a, b Value) int {
	if a.Type != b.Type {
		if a.Type < b.Type {
			return -1
		}
		return 1
	}
	switch a.Type {
	case TypeNull:
		return 0
	case TypeInt64:
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		}
		return 0
	case TypeFloat64:
		switch {
		case a.Flt < b.Flt:
			return -1
		case a.Flt > b.Flt:
			return 1
		}
		return 0
	case TypeText:
		switch {
		case a.Str < b.Str:
			return -1
		case a.Str > b.Str:
			return 1
		}
		return 0
	case TypeBlob:
		return bytes.Compare(a.Bts, b.Bts)
	default:
		return 0
	}
}

// Row is a tuple of values in schema column order.
type Row []Value
