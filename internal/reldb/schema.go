package reldb

import (
	"encoding/json"
	"fmt"
)

// Column declares a named, typed column.
type Column struct {
	Name string  `json:"name"`
	Type ColType `json:"type"`
}

// Schema describes a table: primary-key columns (which define the clustered
// order on disk) followed by value columns. The vector table's schema keys
// on (partition id, vector id), which is exactly how the paper obtains
// partition locality from SQLite's clustered index.
type Schema struct {
	Name string   `json:"name"`
	Key  []Column `json:"key"`
	Cols []Column `json:"cols"`
}

// NumColumns returns the total column count (key + value columns).
func (s *Schema) NumColumns() int { return len(s.Key) + len(s.Cols) }

// ColumnIndex returns the position of the named column in a full row, and
// whether it is part of the primary key.
func (s *Schema) ColumnIndex(name string) (pos int, isKey bool, err error) {
	for i, c := range s.Key {
		if c.Name == name {
			return i, true, nil
		}
	}
	for i, c := range s.Cols {
		if c.Name == name {
			return len(s.Key) + i, false, nil
		}
	}
	return 0, false, fmt.Errorf("reldb: table %s has no column %q", s.Name, name)
}

// ColumnType returns the declared type of the named column.
func (s *Schema) ColumnType(name string) (ColType, error) {
	pos, isKey, err := s.ColumnIndex(name)
	if err != nil {
		return TypeNull, err
	}
	if isKey {
		return s.Key[pos].Type, nil
	}
	return s.Cols[pos-len(s.Key)].Type, nil
}

// validateRow checks arity and types (null allowed in value columns only).
func (s *Schema) validateRow(row Row) error {
	if len(row) != s.NumColumns() {
		return fmt.Errorf("reldb: table %s expects %d columns, got %d", s.Name, s.NumColumns(), len(row))
	}
	for i, c := range s.Key {
		if row[i].Type != c.Type {
			return fmt.Errorf("reldb: table %s key column %s: want %v, got %v", s.Name, c.Name, c.Type, row[i].Type)
		}
	}
	for i, c := range s.Cols {
		v := row[len(s.Key)+i]
		if !v.IsNull() && v.Type != c.Type {
			return fmt.Errorf("reldb: table %s column %s: want %v, got %v", s.Name, c.Name, c.Type, v.Type)
		}
	}
	return nil
}

// catalogEntry is the persisted description of a table or index.
type catalogEntry struct {
	Kind   string   `json:"kind"` // "table" or "index"
	Root   uint32   `json:"root"`
	Schema *Schema  `json:"schema,omitempty"`
	Table  string   `json:"table,omitempty"` // for indexes
	Cols   []string `json:"cols,omitempty"`  // for indexes
}

func (e *catalogEntry) marshal() ([]byte, error) { return json.Marshal(e) }

func unmarshalCatalogEntry(b []byte) (*catalogEntry, error) {
	var e catalogEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, fmt.Errorf("reldb: corrupt catalog entry: %w", err)
	}
	return &e, nil
}
