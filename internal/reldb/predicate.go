package reldb

import "fmt"

// Op is a relational comparison operator. MicroNN supports the standard
// operators over declared attributes (paper §3.5) plus MATCH, the
// conjunctive full-text operator evaluated through the FTS index.
type Op uint8

const (
	// OpEq is equality (=).
	OpEq Op = iota
	// OpNe is inequality (!=).
	OpNe
	// OpLt is less-than (<).
	OpLt
	// OpLe is less-or-equal (<=).
	OpLe
	// OpGt is greater-than (>).
	OpGt
	// OpGe is greater-or-equal (>=).
	OpGe
	// OpMatch is full-text match over a tokenized text column: the row
	// matches when it contains every token of the operand string.
	OpMatch
)

// String returns the operator symbol.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpMatch:
		return "MATCH"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Predicate is a single comparison: column op value.
type Predicate struct {
	Column string
	Op     Op
	Value  Value
}

// String renders the predicate for logs and plan explanations.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Column, p.Op, p.Value)
}

// Eval applies the predicate to a single value. Null never matches
// (SQL three-valued logic collapsed to false). MATCH is evaluated by
// tokenizing the text value; the fts package supplies the tokenizer via
// MatchFunc to avoid an import cycle.
func (p Predicate) Eval(v Value, match MatchFunc) bool {
	if v.IsNull() {
		return false
	}
	switch p.Op {
	case OpMatch:
		if v.Type != TypeText || match == nil {
			return false
		}
		return match(v.Str, p.Value.Str)
	default:
		if v.Type != p.Value.Type {
			return false
		}
	}
	c := Compare(v, p.Value)
	switch p.Op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// MatchFunc reports whether document text matches a MATCH query string.
type MatchFunc func(doc, query string) bool
