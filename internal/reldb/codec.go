package reldb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Key encoding. Composite keys are the concatenation of self-delimiting,
// order-preserving column encodings, so bytes.Compare over encoded keys
// equals tuple comparison over the decoded values. This property is what
// lets the clustered vector table store (partition, vector id) rows
// contiguously and lets secondary indexes answer range predicates with a
// single B+tree seek.
//
// Per-column layout: a 1-byte type tag (nulls first), then
//   - int64: big-endian with the sign bit flipped
//   - float64: IEEE bits; negative values fully inverted, positive values
//     sign-flipped (the classic total-order trick)
//   - text/blob: bytes with 0x00 escaped as 0x00 0xFF, terminated by
//     0x00 0x01 (the terminator sorts below any escaped byte)

const (
	tagNull  = 0x05
	tagInt   = 0x10
	tagFloat = 0x15
	tagText  = 0x20
	tagBlob  = 0x25
)

// AppendKeyValue appends the order-preserving encoding of v to dst.
func AppendKeyValue(dst []byte, v Value) []byte {
	switch v.Type {
	case TypeNull:
		return append(dst, tagNull)
	case TypeInt64:
		dst = append(dst, tagInt)
		return binary.BigEndian.AppendUint64(dst, uint64(v.Int)^(1<<63))
	case TypeFloat64:
		dst = append(dst, tagFloat)
		bits := math.Float64bits(v.Flt)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits ^= 1 << 63
		}
		return binary.BigEndian.AppendUint64(dst, bits)
	case TypeText:
		dst = append(dst, tagText)
		return appendEscaped(dst, []byte(v.Str))
	case TypeBlob:
		dst = append(dst, tagBlob)
		return appendEscaped(dst, v.Bts)
	default:
		panic(fmt.Sprintf("reldb: cannot key-encode type %v", v.Type))
	}
}

func appendEscaped(dst, s []byte) []byte {
	for _, b := range s {
		if b == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, 0x00, 0x01)
}

// EncodeKey encodes a composite key.
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		dst = AppendKeyValue(dst, v)
	}
	return dst
}

// DecodeKeyValue decodes one key column from b, returning the value and the
// remaining bytes.
func DecodeKeyValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("reldb: empty key")
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case tagNull:
		return Null(), b, nil
	case tagInt:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("reldb: truncated int key")
		}
		u := binary.BigEndian.Uint64(b) ^ (1 << 63)
		return I(int64(u)), b[8:], nil
	case tagFloat:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("reldb: truncated float key")
		}
		bits := binary.BigEndian.Uint64(b)
		if bits&(1<<63) != 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		return F(math.Float64frombits(bits)), b[8:], nil
	case tagText, tagBlob:
		out := make([]byte, 0, 16)
		i := 0
		for {
			if i >= len(b) {
				return Value{}, nil, fmt.Errorf("reldb: unterminated string key")
			}
			c := b[i]
			if c != 0x00 {
				out = append(out, c)
				i++
				continue
			}
			if i+1 >= len(b) {
				return Value{}, nil, fmt.Errorf("reldb: truncated escape in string key")
			}
			switch b[i+1] {
			case 0xFF:
				out = append(out, 0x00)
				i += 2
			case 0x01:
				rest := b[i+2:]
				if tag == tagText {
					return S(string(out)), rest, nil
				}
				return B(out), rest, nil
			default:
				return Value{}, nil, fmt.Errorf("reldb: bad escape 0x%02x", b[i+1])
			}
		}
	default:
		return Value{}, nil, fmt.Errorf("reldb: unknown key tag 0x%02x", tag)
	}
}

// DecodeKey decodes n key columns.
func DecodeKey(b []byte, n int) (Row, error) {
	row := make(Row, 0, n)
	var v Value
	var err error
	for i := 0; i < n; i++ {
		v, b, err = DecodeKeyValue(b)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// Row (value) encoding: compact, not order-preserving. Layout per column:
// type tag byte, then varint/fixed payload.

// AppendRowValue appends the value encoding of v to dst.
func AppendRowValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Type))
	switch v.Type {
	case TypeNull:
		return dst
	case TypeInt64:
		return binary.AppendVarint(dst, v.Int)
	case TypeFloat64:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Flt))
	case TypeText:
		dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
		return append(dst, v.Str...)
	case TypeBlob:
		dst = binary.AppendUvarint(dst, uint64(len(v.Bts)))
		return append(dst, v.Bts...)
	default:
		panic(fmt.Sprintf("reldb: cannot encode type %v", v.Type))
	}
}

// EncodeRow encodes all values of row.
func EncodeRow(dst []byte, row Row) []byte {
	for _, v := range row {
		dst = AppendRowValue(dst, v)
	}
	return dst
}

// DecodeRowValue decodes one value, returning it and the remaining bytes.
// Text and blob payloads are copied so rows may outlive page buffers.
func DecodeRowValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("reldb: empty row data")
	}
	typ := ColType(b[0])
	b = b[1:]
	switch typ {
	case TypeNull:
		return Null(), b, nil
	case TypeInt64:
		v, n := binary.Varint(b)
		if n <= 0 {
			return Value{}, nil, fmt.Errorf("reldb: bad varint")
		}
		return I(v), b[n:], nil
	case TypeFloat64:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("reldb: truncated float")
		}
		return F(math.Float64frombits(binary.LittleEndian.Uint64(b))), b[8:], nil
	case TypeText:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b[sz:])) < n {
			return Value{}, nil, fmt.Errorf("reldb: truncated text")
		}
		return S(string(b[sz : sz+int(n)])), b[sz+int(n):], nil
	case TypeBlob:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b[sz:])) < n {
			return Value{}, nil, fmt.Errorf("reldb: truncated blob")
		}
		out := make([]byte, n)
		copy(out, b[sz:sz+int(n)])
		return B(out), b[sz+int(n):], nil
	default:
		return Value{}, nil, fmt.Errorf("reldb: unknown row type %d", typ)
	}
}

// DecodeRow decodes n values.
func DecodeRow(b []byte, n int) (Row, error) {
	row := make(Row, 0, n)
	var v Value
	var err error
	for i := 0; i < n; i++ {
		v, b, err = DecodeRowValue(b)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}
