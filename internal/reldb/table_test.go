package reldb

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"micronn/internal/storage"
	"micronn/internal/storage/storagetest"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	s, err := storage.Open(filepath.Join(t.TempDir(), "t.db"), storage.Options{
		Sync: storage.SyncOff, CheckpointFrames: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	db, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func photosSchema() *Schema {
	return &Schema{
		Name: "photos",
		Key:  []Column{{Name: "id", Type: TypeInt64}},
		Cols: []Column{
			{Name: "location", Type: TypeText},
			{Name: "ts", Type: TypeInt64},
			{Name: "score", Type: TypeFloat64},
		},
	}
}

func createPhotos(t *testing.T, db *DB) *Table {
	t.Helper()
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		if err := db.CreateTable(wt, photosSchema()); err != nil {
			return err
		}
		return db.CreateIndex(wt, "photos_location", "photos", "location")
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("photos")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCreateTableDuplicate(t *testing.T) {
	db := testDB(t)
	createPhotos(t, db)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		return db.CreateTable(wt, photosSchema())
	})
	if !errors.Is(err, ErrExists) {
		t.Errorf("duplicate CreateTable = %v, want ErrExists", err)
	}
}

func TestPutGetDelete(t *testing.T) {
	db := testDB(t)
	tbl := createPhotos(t, db)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		return tbl.Put(wt, Row{I(1), S("Seattle"), I(1000), F(0.9)})
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		row, err := tbl.Get(rt, I(1))
		if err != nil {
			return err
		}
		if row[1].Str != "Seattle" || row[2].Int != 1000 || row[3].Flt != 0.9 {
			t.Errorf("row = %v", row)
		}
		if _, err := tbl.Get(rt, I(2)); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(2) = %v, want ErrNotFound", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Store().Update(func(wt *storage.WriteTxn) error {
		if err := tbl.Delete(wt, I(1)); err != nil {
			return err
		}
		if err := tbl.Delete(wt, I(1)); !errors.Is(err, ErrNotFound) {
			t.Errorf("double delete = %v, want ErrNotFound", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRowValidation(t *testing.T) {
	db := testDB(t)
	tbl := createPhotos(t, db)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		if err := tbl.Put(wt, Row{I(1), S("x")}); err == nil {
			t.Error("arity mismatch accepted")
		}
		if err := tbl.Put(wt, Row{S("wrong"), S("x"), I(0), F(0)}); err == nil {
			t.Error("key type mismatch accepted")
		}
		if err := tbl.Put(wt, Row{I(1), I(99), I(0), F(0)}); err == nil {
			t.Error("column type mismatch accepted")
		}
		// Nulls allowed in value columns.
		if err := tbl.Put(wt, Row{I(1), Null(), Null(), Null()}); err != nil {
			t.Errorf("nullable columns rejected: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpsertReplacesAndReindexes(t *testing.T) {
	db := testDB(t)
	tbl := createPhotos(t, db)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		if err := tbl.Put(wt, Row{I(1), S("Seattle"), I(1), F(0)}); err != nil {
			return err
		}
		return tbl.Put(wt, Row{I(1), S("NewYork"), I(2), F(0)})
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.Index("photos_location")
	if err != nil {
		t.Fatal(err)
	}
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		n, err := ix.Count(rt)
		if err != nil {
			return err
		}
		if n != 1 {
			t.Errorf("index entries = %d, want 1 (stale entry not removed)", n)
		}
		var hits int
		err = ix.Scan(rt, []Value{S("NewYork")}, func(vals, pk Row) error {
			hits++
			if pk[0].Int != 1 {
				t.Errorf("pk = %v", pk)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if hits != 1 {
			t.Errorf("NewYork hits = %d", hits)
		}
		hits = 0
		err = ix.Scan(rt, []Value{S("Seattle")}, func(vals, pk Row) error {
			hits++
			return nil
		})
		if hits != 0 {
			t.Errorf("stale Seattle hits = %d", hits)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanPrefix(t *testing.T) {
	db := testDB(t)
	// Composite-key table: (partition, vec) like the vector table.
	schema := &Schema{
		Name: "vectors",
		Key:  []Column{{Name: "part", Type: TypeInt64}, {Name: "vec", Type: TypeInt64}},
		Cols: []Column{{Name: "blob", Type: TypeBlob}},
	}
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		if err := db.CreateTable(wt, schema); err != nil {
			return err
		}
		tbl, err := db.Table("vectors")
		if err != nil {
			return err
		}
		for part := int64(0); part < 5; part++ {
			for v := int64(0); v < 20; v++ {
				if err := tbl.Put(wt, Row{I(part), I(v), B([]byte{byte(part), byte(v)})}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("vectors")
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		var rows int
		var lastVec int64 = -1
		err := tbl.Scan(rt, []Value{I(3)}, func(row Row) error {
			if row[0].Int != 3 {
				t.Errorf("partition %d leaked into prefix scan", row[0].Int)
			}
			if row[1].Int <= lastVec {
				t.Errorf("scan out of order: %d after %d", row[1].Int, lastVec)
			}
			lastVec = row[1].Int
			rows++
			return nil
		})
		if err != nil {
			return err
		}
		if rows != 20 {
			t.Errorf("prefix scan rows = %d, want 20", rows)
		}
		// Early stop.
		rows = 0
		err = tbl.Scan(rt, nil, func(row Row) error {
			rows++
			if rows == 7 {
				return ErrStopScan
			}
			return nil
		})
		if err != nil {
			return err
		}
		if rows != 7 {
			t.Errorf("early-stop rows = %d, want 7", rows)
		}
		// ScanKeys sees only keys.
		rows = 0
		err = tbl.ScanKeys(rt, []Value{I(1)}, func(key Row) error {
			if len(key) != 2 {
				t.Errorf("key row = %v", key)
			}
			rows++
			return nil
		})
		if rows != 20 {
			t.Errorf("ScanKeys rows = %d", rows)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexRangeScan(t *testing.T) {
	db := testDB(t)
	tbl := createPhotos(t, db)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		if err := db.CreateIndex(wt, "photos_ts", "photos", "ts"); err != nil {
			return err
		}
		for i := int64(0); i < 100; i++ {
			loc := "Seattle"
			if i%10 == 0 {
				loc = "NewYork"
			}
			if err := tbl.Put(wt, Row{I(i), S(loc), I(i * 10), F(float64(i))}); err != nil {
				return err
			}
		}
		// One row with a NULL ts: must never appear in range scans.
		return tbl.Put(wt, Row{I(1000), S("Seattle"), Null(), F(0)})
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.Index("photos_ts")
	if err != nil {
		t.Fatal(err)
	}
	type rangeCase struct {
		lo, hi       Value
		loInc, hiInc bool
		want         int
	}
	cases := []rangeCase{
		{Null(), Null(), false, false, 100}, // unbounded: all non-null
		{I(500), Null(), true, false, 50},   // ts >= 500
		{I(500), Null(), false, false, 49},  // ts > 500
		{Null(), I(500), false, false, 50},  // ts < 500
		{Null(), I(500), false, true, 51},   // ts <= 500
		{I(100), I(200), true, true, 11},    // 100 <= ts <= 200
		{I(2000), Null(), true, false, 0},   // beyond range
	}
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		for i, c := range cases {
			var n int
			err := ix.ScanRange(rt, c.lo, c.hi, c.loInc, c.hiInc, func(vals, pk Row) error {
				if vals[0].IsNull() {
					t.Errorf("case %d: null leaked into range scan", i)
				}
				n++
				return nil
			})
			if err != nil {
				return err
			}
			if n != c.want {
				t.Errorf("case %d (%v..%v inc=%v,%v): n = %d, want %d", i, c.lo, c.hi, c.loInc, c.hiInc, n, c.want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateIndexBackfills(t *testing.T) {
	db := testDB(t)
	tbl := createPhotos(t, db)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		for i := int64(0); i < 50; i++ {
			if err := tbl.Put(wt, Row{I(i), S("L"), I(i), F(0)}); err != nil {
				return err
			}
		}
		// Index created after rows exist.
		return db.CreateIndex(wt, "photos_score", "photos", "score")
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.Index("photos_score")
	if err != nil {
		t.Fatal(err)
	}
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		n, err := ix.Count(rt)
		if err != nil {
			return err
		}
		if n != 50 {
			t.Errorf("backfilled entries = %d, want 50", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCatalogPersistsAcrossReopen(t *testing.T) {
	storagetest.SkipIfEphemeral(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	opts := storage.Options{Sync: storage.SyncOff, CheckpointFrames: -1}
	s, err := storage.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Update(func(wt *storage.WriteTxn) error {
		if err := db.CreateTable(wt, photosSchema()); err != nil {
			return err
		}
		if err := db.CreateIndex(wt, "photos_location", "photos", "location"); err != nil {
			return err
		}
		tbl, err := db.Table("photos")
		if err != nil {
			return err
		}
		return tbl.Put(wt, Row{I(7), S("Kyoto"), I(5), F(1)})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := storage.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	db2, err := Open(s2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db2.Table("photos")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db2.Index("photos_location")
	if err != nil {
		t.Fatal(err)
	}
	err = s2.View(func(rt *storage.ReadTxn) error {
		row, err := tbl.Get(rt, I(7))
		if err != nil {
			return err
		}
		if row[1].Str != "Kyoto" {
			t.Errorf("row = %v", row)
		}
		var hits int
		err = ix.Scan(rt, []Value{S("Kyoto")}, func(vals, pk Row) error {
			hits++
			return nil
		})
		if hits != 1 {
			t.Errorf("index hits = %d", hits)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncate(t *testing.T) {
	db := testDB(t)
	tbl := createPhotos(t, db)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		for i := int64(0); i < 100; i++ {
			if err := tbl.Put(wt, Row{I(i), S("L"), I(i), F(0)}); err != nil {
				return err
			}
		}
		return tbl.Truncate(wt)
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, _ := db.Index("photos_location")
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		n, err := tbl.Count(rt)
		if err != nil {
			return err
		}
		if n != 0 {
			t.Errorf("Count after truncate = %d", n)
		}
		in, err := ix.Count(rt)
		if err != nil {
			return err
		}
		if in != 0 {
			t.Errorf("index count after truncate = %d", in)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeBlobValues(t *testing.T) {
	db := testDB(t)
	schema := &Schema{
		Name: "blobs",
		Key:  []Column{{Name: "id", Type: TypeInt64}},
		Cols: []Column{{Name: "data", Type: TypeBlob}},
	}
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		if err := db.CreateTable(wt, schema); err != nil {
			return err
		}
		tbl, err := db.Table("blobs")
		if err != nil {
			return err
		}
		// A 960-dim float32 vector blob is 3840 bytes: will use overflow.
		big := make([]byte, 3840)
		for i := range big {
			big[i] = byte(i)
		}
		return tbl.Put(wt, Row{I(1), B(big)})
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("blobs")
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		row, err := tbl.Get(rt, I(1))
		if err != nil {
			return err
		}
		if len(row[1].Bts) != 3840 {
			t.Fatalf("blob len = %d", len(row[1].Bts))
		}
		for i, b := range row[1].Bts {
			if b != byte(i) {
				t.Fatalf("blob[%d] = %d", i, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRowsAcrossTransactions(t *testing.T) {
	db := testDB(t)
	tbl := createPhotos(t, db)
	const n = 2000
	for batch := 0; batch < 4; batch++ {
		err := db.Store().Update(func(wt *storage.WriteTxn) error {
			for i := batch * n / 4; i < (batch+1)*n/4; i++ {
				row := Row{I(int64(i)), S(fmt.Sprintf("loc%d", i%7)), I(int64(i)), F(float64(i))}
				if err := tbl.Put(wt, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ix, _ := db.Index("photos_location")
	err := db.Store().View(func(rt *storage.ReadTxn) error {
		cnt, err := tbl.Count(rt)
		if err != nil {
			return err
		}
		if cnt != n {
			t.Errorf("Count = %d, want %d", cnt, n)
		}
		var hits int
		err = ix.Scan(rt, []Value{S("loc3")}, func(vals, pk Row) error {
			hits++
			return nil
		})
		if err != nil {
			return err
		}
		want := 0
		for i := 0; i < n; i++ {
			if i%7 == 3 {
				want++
			}
		}
		if hits != want {
			t.Errorf("loc3 hits = %d, want %d", hits, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
