package rescache

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"micronn/internal/reldb"
	"micronn/internal/stats"
)

func keyN(n int) Key {
	return KeyOf(Request{Kind: KindSearch, K: n, Vectors: [][]float32{{float32(n)}}})
}

func TestGetPutOutcomes(t *testing.T) {
	c := New(8, 1<<20)
	k := keyN(1)
	if v, _, out := c.Get(k, []int64{3}); out != Miss || v != nil {
		t.Fatalf("empty cache: got %v, %v; want Miss", v, out)
	}
	c.Put(k, []int64{3}, "resp-a", 100)
	if v, _, out := c.Get(k, []int64{3}); out != Hit || v != "resp-a" {
		t.Fatalf("after Put: got %v, %v; want Hit resp-a", v, out)
	}
	// The data moved: same entry must come back Stale with its recorded
	// generations, and count as an invalidation.
	if v, gens, out := c.Get(k, []int64{4}); out != Stale || v != "resp-a" || gens[0] != 3 {
		t.Fatalf("stale lookup: got %v, %v, %v; want Stale resp-a [3]", v, gens, out)
	}
	// Mismatched generation-vector length (different shard count) is stale,
	// never a false hit.
	if _, _, out := c.Get(k, []int64{3, 3}); out != Stale {
		t.Fatalf("length-mismatched gens: got %v; want Stale", out)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Invalidations != 2 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 2 invalidations", st)
	}
	// Replacing under the same key updates generations and value.
	c.Put(k, []int64{4}, "resp-b", 100)
	if v, _, out := c.Get(k, []int64{4}); out != Hit || v != "resp-b" {
		t.Fatalf("after replace: got %v, %v; want Hit resp-b", v, out)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("replace must not grow the cache: %d entries", st.Entries)
	}
}

func TestLRUEntryBound(t *testing.T) {
	c := New(3, 1<<20)
	for i := 0; i < 4; i++ {
		c.Put(keyN(i), []int64{1}, i, 10)
	}
	// 0 is the least recently used: evicted.
	if _, _, out := c.Get(keyN(0), []int64{1}); out != Miss {
		t.Fatalf("oldest entry should be evicted, got %v", out)
	}
	for i := 1; i < 4; i++ {
		if _, _, out := c.Get(keyN(i), []int64{1}); out != Hit {
			t.Fatalf("entry %d should survive, got %v", i, out)
		}
	}
	// Touching 1 makes 2 the eviction victim.
	c.Get(keyN(1), []int64{1})
	c.Put(keyN(9), []int64{1}, 9, 10)
	if _, _, out := c.Get(keyN(1), []int64{1}); out != Hit {
		t.Fatal("recently used entry evicted")
	}
	if _, _, out := c.Get(keyN(2), []int64{1}); out != Miss {
		t.Fatal("LRU victim survived")
	}
	if st := c.Stats(); st.Evictions != 2 || st.Entries != 3 {
		t.Fatalf("stats = %+v; want 2 evictions, 3 entries", st)
	}
}

func TestByteBound(t *testing.T) {
	c := New(1024, 4*(1000+entryOverhead))
	for i := 0; i < 6; i++ {
		c.Put(keyN(i), []int64{1}, i, 1000)
	}
	st := c.Stats()
	if st.Entries != 4 {
		t.Fatalf("byte budget admits 4 entries, have %d", st.Entries)
	}
	if st.Bytes > 4*(1000+entryOverhead) {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
	// An entry bigger than the whole budget is refused and drops any
	// previous entry under its key (which it supersedes).
	k := keyN(0)
	c.Put(k, []int64{1}, "small", 10)
	c.Put(k, []int64{1}, "huge", 1<<30)
	if _, _, out := c.Get(k, []int64{1}); out != Miss {
		t.Fatalf("oversized Put must leave no entry, got %v", out)
	}
}

func TestClearKeepsCounters(t *testing.T) {
	c := New(8, 1<<20)
	c.Put(keyN(1), []int64{1}, "v", 10)
	c.Get(keyN(1), []int64{1})
	c.Clear()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("Clear left %d entries, %d bytes", st.Entries, st.Bytes)
	}
	if st.Hits != 1 {
		t.Fatalf("Clear must keep cumulative counters, hits = %d", st.Hits)
	}
	if _, _, out := c.Get(keyN(1), []int64{1}); out != Miss {
		t.Fatal("entry survived Clear")
	}
}

func TestSingleflight(t *testing.T) {
	c := New(8, 1<<20)
	k := keyN(7)
	started := make(chan struct{})
	gate := make(chan struct{})
	var leaderVal any
	var leaderShared bool
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		leaderVal, leaderShared, _ = c.Do(k, func() (any, error) {
			close(started) // leader is inside compute, flight registered
			<-gate
			return "shared", nil
		})
	}()
	<-started

	// Followers arrive while the leader's flight is in progress: none of
	// their computes may run; all must receive the leader's value.
	var followerComputes atomic.Int64
	const followers = 15
	var wg sync.WaitGroup
	results := make([]any, followers)
	sharedFlags := make([]bool, followers)
	for g := 0; g < followers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, shared, err := c.Do(k, func() (any, error) {
				followerComputes.Add(1)
				return "follower", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
			sharedFlags[g] = shared
		}(g)
	}
	// Release the leader only after every follower has had ample time to
	// reach Do and block on the flight.
	time.Sleep(250 * time.Millisecond)
	close(gate)
	wg.Wait()
	<-leaderDone
	if leaderVal != "shared" {
		t.Fatalf("leader got %v", leaderVal)
	}
	if leaderShared {
		t.Fatal("leader reported shared=true; it computed itself")
	}
	if n := followerComputes.Load(); n != 0 {
		t.Fatalf("%d follower computes ran; want full coalescing", n)
	}
	for g, v := range results {
		if v != "shared" {
			t.Fatalf("follower %d got %v", g, v)
		}
		// The shared flag is what tells a joiner to revalidate the value
		// against its own generations (read-your-writes under coalescing).
		if !sharedFlags[g] {
			t.Fatalf("follower %d reported shared=false", g)
		}
	}
	// Different keys must not coalesce.
	var independent atomic.Int64
	var wg2 sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg2.Add(1)
		go func(g int) {
			defer wg2.Done()
			_, _, _ = c.Do(keyN(100+g), func() (any, error) {
				independent.Add(1)
				return nil, nil
			})
		}(g)
	}
	wg2.Wait()
	if independent.Load() != 4 {
		t.Fatalf("independent keys coalesced: %d computes", independent.Load())
	}
}

func TestDoErrorShared(t *testing.T) {
	c := New(8, 1<<20)
	wantErr := fmt.Errorf("boom")
	_, _, err := c.Do(keyN(1), func() (any, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v; want boom", err)
	}
	// The flight is gone afterwards; the next Do computes afresh.
	v, shared, err := c.Do(keyN(1), func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" || shared {
		t.Fatalf("post-error Do = %v, shared=%v, %v", v, shared, err)
	}
}

// --- key canonicalization ---

func pred(col string, op reldb.Op, v reldb.Value) reldb.Predicate {
	return reldb.Predicate{Column: col, Op: op, Value: v}
}

func TestKeyFilterCanonicalization(t *testing.T) {
	base := Request{
		Kind: KindSearch, K: 10, NProbe: 8,
		Vectors: [][]float32{{1, 2, 3}},
		Filters: []stats.Filter{
			{AnyOf: []reldb.Predicate{pred("a", reldb.OpEq, reldb.I(1)), pred("b", reldb.OpGt, reldb.F(2))}},
			{AnyOf: []reldb.Predicate{pred("c", reldb.OpMatch, reldb.S("dog park"))}},
		},
	}
	want := KeyOf(base)

	// Permuted conjunction.
	perm := base
	perm.Filters = []stats.Filter{base.Filters[1], base.Filters[0]}
	if KeyOf(perm) != want {
		t.Fatal("filter order changed the key")
	}
	// Permuted disjunction.
	perm2 := base
	perm2.Filters = []stats.Filter{
		{AnyOf: []reldb.Predicate{pred("b", reldb.OpGt, reldb.F(2)), pred("a", reldb.OpEq, reldb.I(1))}},
		base.Filters[1],
	}
	if KeyOf(perm2) != want {
		t.Fatal("predicate order changed the key")
	}
	// Duplicated filter and duplicated predicate (conjunction and
	// disjunction are both idempotent).
	dup := base
	dup.Filters = append(append([]stats.Filter{}, base.Filters...), base.Filters[0])
	dup.Filters[0] = stats.Filter{AnyOf: append(append([]reldb.Predicate{}, base.Filters[0].AnyOf...), base.Filters[0].AnyOf[0])}
	if KeyOf(dup) != want {
		t.Fatal("duplication changed the key")
	}
	// A genuinely different filter must not collide.
	diff := base
	diff.Filters = []stats.Filter{base.Filters[0]}
	if KeyOf(diff) == want {
		t.Fatal("dropping a filter kept the key")
	}
}

func TestKeyFloatCanonicalization(t *testing.T) {
	nan1 := math.Float32frombits(0x7fc00001)
	nan2 := math.Float32frombits(0xffc12345)
	a := KeyOf(Request{Kind: KindSearch, K: 10, Vectors: [][]float32{{nan1, float32(math.Copysign(0, -1)), 5}}})
	b := KeyOf(Request{Kind: KindSearch, K: 10, Vectors: [][]float32{{nan2, 0, 5}}})
	if a != b {
		t.Fatal("NaN payload or zero sign changed the key")
	}
	// Predicate operands too.
	pa := KeyOf(Request{Kind: KindSearch, K: 10, Filters: []stats.Filter{{AnyOf: []reldb.Predicate{pred("x", reldb.OpLt, reldb.F(math.NaN()))}}}})
	pb := KeyOf(Request{Kind: KindSearch, K: 10, Filters: []stats.Filter{{AnyOf: []reldb.Predicate{pred("x", reldb.OpLt, reldb.F(math.Float64frombits(0xfff8000000000001)))}}}})
	if pa != pb {
		t.Fatal("predicate NaN payload changed the key")
	}
	if KeyOf(Request{Kind: KindSearch, K: 10, Vectors: [][]float32{{1}}}) ==
		KeyOf(Request{Kind: KindSearch, K: 10, Vectors: [][]float32{{2}}}) {
		t.Fatal("different vectors collided")
	}
}

func TestKeyParameterSensitivity(t *testing.T) {
	base := Request{Kind: KindSearch, K: 10, NProbe: 8, Vectors: [][]float32{{1, 2}}}
	want := KeyOf(base)
	for name, alter := range map[string]func(*Request){
		"K":      func(r *Request) { r.K = 20 },
		"NProbe": func(r *Request) { r.NProbe = 16 },
		"Rerank": func(r *Request) { r.RerankFactor = 8 },
		"Plan":   func(r *Request) { r.Plan = 2 },
		"Exact":  func(r *Request) { r.Exact = true },
		"Kind":   func(r *Request) { r.Kind = KindBatch },
	} {
		r := base
		r.Vectors = [][]float32{{1, 2}}
		alter(&r)
		if KeyOf(r) == want {
			t.Fatalf("changing %s kept the key", name)
		}
	}
	// Batch vector order is significant (results are positional).
	b1 := KeyOf(Request{Kind: KindBatch, K: 10, Vectors: [][]float32{{1}, {2}}})
	b2 := KeyOf(Request{Kind: KindBatch, K: 10, Vectors: [][]float32{{2}, {1}}})
	if b1 == b2 {
		t.Fatal("batch vector order did not change the key")
	}
}

func TestKeyInjectiveFraming(t *testing.T) {
	// Length prefixes keep adjacent fields from bleeding into each other:
	// two filters ("ab"), ("c") vs ("a"), ("bc").
	f := func(cols ...string) []stats.Filter {
		fs := make([]stats.Filter, len(cols))
		for i, c := range cols {
			fs[i] = stats.Filter{AnyOf: []reldb.Predicate{pred(c, reldb.OpEq, reldb.I(1))}}
		}
		return fs
	}
	a := KeyOf(Request{Kind: KindSearch, K: 1, Filters: f("ab", "c")})
	b := KeyOf(Request{Kind: KindSearch, K: 1, Filters: f("a", "bc")})
	if a == b {
		t.Fatal("filter framing is ambiguous")
	}
	// Vector framing: [1,2],[3] vs [1],[2,3].
	v1 := KeyOf(Request{Kind: KindBatch, K: 1, Vectors: [][]float32{{1, 2}, {3}}})
	v2 := KeyOf(Request{Kind: KindBatch, K: 1, Vectors: [][]float32{{1}, {2, 3}}})
	if v1 == v2 {
		t.Fatal("vector framing is ambiguous")
	}
}
