package rescache

import (
	"testing"
	"time"
)

// TestAdmissionDoorkeeper covers the filter-heavy TTL doorkeeper: a
// filter-heavy entry is stored only on its second sighting inside the
// admission TTL, a sighting past the TTL starts the count over, and
// negative entries bypass the doorkeeper entirely.
func TestAdmissionDoorkeeper(t *testing.T) {
	c := New(8, 1<<20)
	var now int64
	c.SetClock(func() int64 { return now })
	c.SetAdmissionTTL(time.Minute)

	k := keyN(1)
	heavy := PutPolicy{FilterHeavy: true}

	c.PutWithPolicy(k, []int64{1}, "a", 100, heavy)
	if _, _, out := c.Get(k, []int64{1}); out != Miss {
		t.Fatalf("first filter-heavy put must be deferred, got %v", out)
	}
	if st := c.Stats(); st.AdmissionDeferred != 1 || st.Entries != 0 {
		t.Fatalf("after first put: %+v; want 1 deferred, 0 entries", st)
	}

	// Second sighting within the TTL: admitted.
	now += int64(30 * time.Second)
	c.PutWithPolicy(k, []int64{1}, "a", 100, heavy)
	if v, _, out := c.Get(k, []int64{1}); out != Hit || v != "a" {
		t.Fatalf("second sighting not admitted: %v, %v", v, out)
	}

	// Once resident, refreshes skip the doorkeeper — a generation bump
	// must not evict-and-defer.
	c.PutWithPolicy(k, []int64{2}, "a2", 100, heavy)
	if v, _, out := c.Get(k, []int64{2}); out != Hit || v != "a2" {
		t.Fatalf("refresh of resident entry deferred: %v, %v", v, out)
	}

	// A sighting whose predecessor fell outside the TTL starts over.
	k2 := keyN(2)
	c.PutWithPolicy(k2, []int64{1}, "b", 100, heavy)
	now += int64(2 * time.Minute)
	c.PutWithPolicy(k2, []int64{1}, "b", 100, heavy)
	if _, _, out := c.Get(k2, []int64{1}); out != Miss {
		t.Fatalf("expired sighting must not admit, got %v", out)
	}
	if st := c.Stats(); st.AdmissionDeferred != 3 {
		t.Fatalf("AdmissionDeferred = %d, want 3", st.AdmissionDeferred)
	}
	// ...and the re-registered sighting admits the next one.
	now += int64(time.Second)
	c.PutWithPolicy(k2, []int64{1}, "b", 100, heavy)
	if v, _, out := c.Get(k2, []int64{1}); out != Hit || v != "b" {
		t.Fatalf("post-expiry second sighting not admitted: %v, %v", v, out)
	}

	// Negative responses bypass the doorkeeper even when filter-heavy.
	k3 := keyN(3)
	c.PutWithPolicy(k3, []int64{1}, "empty", 50, PutPolicy{FilterHeavy: true, Negative: true})
	if v, _, out := c.Get(k3, []int64{1}); out != Hit || v != "empty" {
		t.Fatalf("negative entry not cached immediately: %v, %v", v, out)
	}
	if st := c.Stats(); st.NegativePuts != 1 {
		t.Fatalf("NegativePuts = %d, want 1", st.NegativePuts)
	}

	// Plain puts are untouched by the doorkeeper.
	k4 := keyN(4)
	c.PutWithPolicy(k4, []int64{1}, "plain", 50, PutPolicy{})
	if _, _, out := c.Get(k4, []int64{1}); out != Hit {
		t.Fatalf("plain policy put not cached, got %v", out)
	}
}

// TestAdmissionTrackerBound checks the doorkeeper's sighting map cannot
// grow without bound: expired sightings are pruned at the cap, and a
// pathological burst inside one TTL resets the map rather than leaking.
func TestAdmissionTrackerBound(t *testing.T) {
	c := New(8, 1<<20)
	var now int64
	c.SetClock(func() int64 { return now })
	c.SetAdmissionTTL(time.Minute)

	heavy := PutPolicy{FilterHeavy: true}
	for i := 0; i < admissionMaxTracked+64; i++ {
		c.PutWithPolicy(keyN(i), []int64{1}, i, 10, heavy)
	}
	c.mu.Lock()
	n := len(c.seen)
	c.mu.Unlock()
	if n > admissionMaxTracked {
		t.Fatalf("tracker grew to %d, cap is %d", n, admissionMaxTracked)
	}

	// After the TTL passes, a new wave prunes the stale sightings instead
	// of resetting live ones.
	now += int64(2 * time.Minute)
	c.PutWithPolicy(keyN(0), []int64{1}, 0, 10, heavy)
	c.mu.Lock()
	n = len(c.seen)
	c.mu.Unlock()
	if n > admissionMaxTracked {
		t.Fatalf("tracker holds %d after prune, cap is %d", n, admissionMaxTracked)
	}
}
