package rescache

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"

	"micronn/internal/reldb"
	"micronn/internal/stats"
	"micronn/internal/token"
)

// Key is the 128-bit fingerprint of a canonicalized query.
type Key [16]byte

// Request kinds (a point search and a batch never share a key even when
// the batch holds exactly one vector, because their response types differ).
const (
	KindSearch byte = 'S'
	KindBatch  byte = 'B'
	KindHybrid byte = 'H'
)

// Request is the canonicalizable description of a query. The caller is
// expected to resolve database-level defaults first (K=0 → 10, NProbe=0 →
// 8, RerankFactor → the configured default on quantized stores and 0 on
// unquantized ones, Plan → 0 when no filters are present, NProbe/Rerank →
// 0 under Exact) so that requests the engine treats identically collide to
// one key. KeyOf then canonicalizes what the engine itself is insensitive
// to: filter order and duplication, NaN payloads and the sign of zero.
type Request struct {
	Kind         byte
	K            int
	NProbe       int
	RerankFactor int
	Plan         int
	Exact        bool
	Vectors      [][]float32
	Filters      []stats.Filter

	// Hybrid-query fields (zero for KindSearch/KindBatch). Text is hashed
	// as its sorted unique token set — the engine tokenizes the same way, so
	// queries equal after tokenization share one entry.
	Text         string
	TextCol      string
	FusionK      int
	Weighted     bool
	VectorWeight float64
	TextWeight   float64
}

// KeyOf returns the fingerprint of the canonical form of r. It is total:
// any Request value — including garbage operator or type bytes smuggled
// into filters — hashes without panicking, and semantically equal requests
// produce equal keys:
//
//   - Filters is a conjunction, so filter order is irrelevant and repeated
//     filters are idempotent: filters are encoded, sorted and deduplicated.
//   - Filter.AnyOf is a disjunction with the same two properties:
//     predicates are encoded, sorted and deduplicated within each filter.
//   - Every NaN bit pattern compares and computes identically (reldb
//     compares collapse NaN, distance kernels propagate it), so all NaNs
//     collapse to one canonical pattern, in query vectors and in predicate
//     operands alike.
//   - Negative zero equals positive zero in every comparison and distance,
//     so -0 maps to +0.
//
// Vector order within a batch is significant (results come back in request
// order) and is preserved.
func KeyOf(r Request) Key {
	h := fnv.New128a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	exact := byte(0)
	if r.Exact {
		exact = 1
	}
	h.Write([]byte{r.Kind, exact})
	writeU64(uint64(int64(r.K)))
	writeU64(uint64(int64(r.NProbe)))
	writeU64(uint64(int64(r.RerankFactor)))
	writeU64(uint64(int64(r.Plan)))
	writeU64(uint64(len(r.Vectors)))
	for _, v := range r.Vectors {
		writeU64(uint64(len(v)))
		for _, x := range v {
			binary.BigEndian.PutUint32(buf[:4], canonFloat32(x))
			h.Write(buf[:4])
		}
	}
	h.Write(canonFilters(r.Filters))
	// Hybrid fields are appended after the base encoding; keys are
	// process-local fingerprints, so extending the preimage is safe.
	toks := token.Unique(r.Text)
	writeU64(uint64(len(toks)))
	for _, t := range toks {
		writeU64(uint64(len(t)))
		h.Write([]byte(t))
	}
	writeU64(uint64(len(r.TextCol)))
	h.Write([]byte(r.TextCol))
	writeU64(uint64(int64(r.FusionK)))
	weighted := byte(0)
	if r.Weighted {
		weighted = 1
	}
	h.Write([]byte{weighted})
	writeU64(canonFloat64(r.VectorWeight))
	writeU64(canonFloat64(r.TextWeight))
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// canonFloat32 returns the canonical bit pattern of x: one pattern for
// every NaN, +0 for -0.
func canonFloat32(x float32) uint32 {
	if x != x {
		return 0x7fc00000
	}
	b := math.Float32bits(x)
	if b == 0x80000000 {
		return 0
	}
	return b
}

// canonFloat64 is canonFloat32 for predicate operands.
func canonFloat64(x float64) uint64 {
	if x != x {
		return 0x7ff8000000000000
	}
	b := math.Float64bits(x)
	if b == 0x8000000000000000 {
		return 0
	}
	return b
}

// canonFilters encodes the conjunction in canonical form: each filter's
// canonical encoding, sorted, deduplicated, length-prefixed.
func canonFilters(fs []stats.Filter) []byte {
	if len(fs) == 0 {
		return nil
	}
	encs := make([]string, len(fs))
	for i, f := range fs {
		encs[i] = canonFilter(f)
	}
	sort.Strings(encs)
	var out []byte
	for i, e := range encs {
		if i > 0 && e == encs[i-1] {
			continue
		}
		out = appendUvarint(out, uint64(len(e)))
		out = append(out, e...)
	}
	return out
}

// canonFilter encodes one disjunction in canonical form: each predicate's
// encoding, sorted, deduplicated, length-prefixed.
func canonFilter(f stats.Filter) string {
	encs := make([]string, len(f.AnyOf))
	for i, p := range f.AnyOf {
		encs[i] = encodePredicate(p)
	}
	sort.Strings(encs)
	var out []byte
	for i, e := range encs {
		if i > 0 && e == encs[i-1] {
			continue
		}
		out = appendUvarint(out, uint64(len(e)))
		out = append(out, e...)
	}
	return string(out)
}

// encodePredicate renders one predicate injectively: length-prefixed
// column, operator byte, canonical value. Unknown operator or type bytes
// encode as themselves — garbage stays distinct from real predicates and
// never panics.
func encodePredicate(p reldb.Predicate) string {
	b := appendUvarint(nil, uint64(len(p.Column)))
	b = append(b, p.Column...)
	b = append(b, byte(p.Op))
	b = appendValue(b, p.Value)
	return string(b)
}

// appendValue appends the canonical encoding of a reldb value: a type byte
// then a type-specific payload (floats canonicalized, variable-length
// payloads length-prefixed). Unknown types encode as the bare type byte.
func appendValue(b []byte, v reldb.Value) []byte {
	b = append(b, byte(v.Type))
	switch v.Type {
	case reldb.TypeInt64:
		b = binary.BigEndian.AppendUint64(b, uint64(v.Int))
	case reldb.TypeFloat64:
		b = binary.BigEndian.AppendUint64(b, canonFloat64(v.Flt))
	case reldb.TypeText:
		b = appendUvarint(b, uint64(len(v.Str)))
		b = append(b, v.Str...)
	case reldb.TypeBlob:
		b = appendUvarint(b, uint64(len(v.Bts)))
		b = append(b, v.Bts...)
	}
	return b
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}
