package rescache

import (
	"encoding/binary"
	"math"
	"testing"

	"micronn/internal/reldb"
	"micronn/internal/stats"
)

// fuzzReader consumes fuzz input bytes as typed fields, yielding zeros when
// the input runs dry so every byte string decodes to SOME request.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzReader) u32() uint32 {
	var b [4]byte
	for i := range b {
		b[i] = r.byte()
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (r *fuzzReader) f32() float32 { return math.Float32frombits(r.u32()) }

func (r *fuzzReader) str(max int) string {
	n := int(r.byte()) % (max + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = r.byte()
	}
	return string(b)
}

// requestFromBytes decodes an arbitrary byte string into a Request,
// deliberately passing raw garbage through where the type allows it:
// unvalidated operator and value-type bytes, NaN/±0/Inf vector components,
// unnormalized parameter values.
func requestFromBytes(data []byte) Request {
	r := &fuzzReader{data: data}
	req := Request{
		Kind:         r.byte(),
		K:            int(int8(r.byte())),
		NProbe:       int(int8(r.byte())),
		RerankFactor: int(int8(r.byte())),
		Plan:         int(int8(r.byte())),
		Exact:        r.byte()&1 == 1,
	}
	nvec := int(r.byte() % 3)
	for i := 0; i < nvec; i++ {
		dim := int(r.byte() % 8)
		v := make([]float32, dim)
		for j := range v {
			v[j] = r.f32()
		}
		req.Vectors = append(req.Vectors, v)
	}
	nfil := int(r.byte() % 4)
	for i := 0; i < nfil; i++ {
		npred := int(r.byte() % 4)
		var f stats.Filter
		for j := 0; j < npred; j++ {
			p := reldb.Predicate{
				Column: r.str(6),
				Op:     reldb.Op(r.byte()), // may be garbage
			}
			switch r.byte() % 6 {
			case 0:
				p.Value = reldb.I(int64(int32(r.u32())))
			case 1:
				p.Value = reldb.F(float64(r.f32())) // NaN/±0/Inf reachable
			case 2:
				p.Value = reldb.S(r.str(6))
			case 3:
				p.Value = reldb.B([]byte(r.str(6)))
			case 4:
				p.Value = reldb.Null()
			default:
				// Garbage value type byte with text payload.
				p.Value = reldb.Value{Type: reldb.ColType(r.byte()), Str: r.str(4)}
			}
			f.AnyOf = append(f.AnyOf, p)
		}
		req.Filters = append(req.Filters, f)
	}
	return req
}

// canonNaNZero rewrites the semantically-neutral float representation
// choices in req: every NaN gets a different payload and every zero the
// opposite sign. A correct canonicalizer keys both forms identically.
func canonNaNZero(req Request) Request {
	out := req
	out.Vectors = make([][]float32, len(req.Vectors))
	for i, v := range req.Vectors {
		nv := make([]float32, len(v))
		for j, x := range v {
			switch {
			case x != x:
				nv[j] = math.Float32frombits(0xffc00000 | uint32(j+1))
			case x == 0:
				// Flip the sign of zero.
				if math.Signbit(float64(x)) {
					nv[j] = 0
				} else {
					nv[j] = float32(math.Copysign(0, -1))
				}
			default:
				nv[j] = x
			}
		}
		out.Vectors[i] = nv
	}
	out.Filters = make([]stats.Filter, len(req.Filters))
	for i, f := range req.Filters {
		nf := stats.Filter{AnyOf: make([]reldb.Predicate, len(f.AnyOf))}
		copy(nf.AnyOf, f.AnyOf)
		for j, p := range nf.AnyOf {
			if p.Value.Type == reldb.TypeFloat64 {
				if p.Value.Flt != p.Value.Flt {
					p.Value = reldb.F(math.Float64frombits(0xfff8000000000000 | uint64(j+1)))
				} else if p.Value.Flt == 0 {
					p.Value = reldb.F(math.Copysign(0, -1))
					if math.Signbit(f.AnyOf[j].Value.Flt) {
						p.Value = reldb.F(0)
					}
				}
				nf.AnyOf[j] = p
			}
		}
		out.Filters[i] = nf
	}
	return out
}

// permuteFilters rotates the conjunction, reverses every disjunction and
// duplicates the first element of each — all semantic no-ops.
func permuteFilters(req Request) Request {
	out := req
	out.Filters = make([]stats.Filter, 0, len(req.Filters)+1)
	for i := range req.Filters {
		f := req.Filters[(i+1)%len(req.Filters)]
		nf := stats.Filter{}
		for j := len(f.AnyOf) - 1; j >= 0; j-- {
			nf.AnyOf = append(nf.AnyOf, f.AnyOf[j])
		}
		if len(nf.AnyOf) > 0 {
			nf.AnyOf = append(nf.AnyOf, nf.AnyOf[len(nf.AnyOf)-1])
		}
		out.Filters = append(out.Filters, nf)
	}
	if len(out.Filters) > 0 {
		out.Filters = append(out.Filters, out.Filters[len(out.Filters)-1])
	}
	return out
}

// FuzzCacheKey asserts that key canonicalization is total and stable:
// arbitrary request bytes never panic, hashing is deterministic, and the
// semantically-neutral rewrites (filter permutation/duplication, NaN
// payloads, zero signs) always collide to the same key.
func FuzzCacheKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("S\x0a\x08\x04\x00\x00\x01\x04\x00\x00\x80\x3f\x00\x00\x80\x7f"))
	f.Add([]byte{0x42, 0xff, 0x80, 0x7f, 0x01, 0x01, 0x02, 0x03, 0x00, 0x00, 0xc0, 0x7f, 0x00, 0x00, 0x00, 0x80})
	f.Add([]byte("B\x01\x01\x01\x01\x00\x00\x03\x02\x03tag\x06\x01dog park"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req := requestFromBytes(data)
		k1 := KeyOf(req)
		if k2 := KeyOf(req); k2 != k1 {
			t.Fatalf("KeyOf is not deterministic: %x vs %x", k1, k2)
		}
		if pk := KeyOf(permuteFilters(req)); pk != k1 {
			t.Fatalf("permuted/duplicated filters changed the key: %x vs %x", k1, pk)
		}
		if ck := KeyOf(canonNaNZero(req)); ck != k1 {
			t.Fatalf("NaN payload / zero sign changed the key: %x vs %x", k1, ck)
		}
		if ck := KeyOf(permuteFilters(canonNaNZero(req))); ck != k1 {
			t.Fatalf("composed rewrites changed the key: %x vs %x", k1, ck)
		}
	})
}
