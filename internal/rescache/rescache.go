// Package rescache implements MicroNN's generation-versioned query result
// cache: a bounded LRU of search responses keyed by a canonicalized query
// fingerprint (see KeyOf) and validated against monotonically increasing
// data-generation counters.
//
// The contract is exact, not heuristic: every committed write transaction
// that can change query-visible data bumps its store's generation (see
// ivf.Index.DataGeneration), an entry records the generations of the
// store(s) it was computed against, and a lookup serves the entry only when
// every recorded generation still matches the generation visible at the
// caller's read snapshot. Matching generations mean the visible data is
// identical, so the cached response is byte-identical to re-running the
// query — the staleness oracle in micronn_cache_test.go holds the cache to
// exactly that standard.
//
// Entries carry one generation per backing store: a single-store database
// uses a one-element slice, a sharded database one generation per shard. A
// lookup whose generations differ only on some positions returns the stale
// entry (Outcome Stale) so the sharded router can reuse the candidate sets
// of unchanged shards and re-scan only the shards whose generation moved.
//
// The cache is process-local and never persisted. That makes crash
// semantics trivially safe: a post-crash reopen may reuse generation
// numbers rolled back with the WAL, but no cache survives the process that
// recorded them.
//
// Memory is bounded by both an entry count and an approximate byte budget;
// the least-recently-used entry is evicted first. Do provides singleflight
// deduplication so concurrent identical misses compute the response once.
package rescache

import (
	"container/list"
	"sync"
	"time"
)

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served entirely from the cache (every recorded
	// generation matched).
	Hits uint64
	// Misses counts lookups that found no entry.
	Misses uint64
	// Invalidations counts lookups that found an entry whose generations
	// no longer matched — the data moved underneath it.
	Invalidations uint64
	// Evictions counts entries displaced by the LRU bounds.
	Evictions uint64
	// SkippedScans counts per-shard scans avoided by partial reuse of a
	// stale entry (sharded databases only: shards whose generation had not
	// moved contributed their cached candidates without being re-scanned).
	SkippedScans uint64
	// NegativePuts counts cached negative responses (zero results) — they
	// bypass the admission doorkeeper because they are tiny and the scans
	// they avoid tend to be the expensive, filter-heavy kind.
	NegativePuts uint64
	// AdmissionDeferred counts filter-heavy responses NOT cached because
	// the doorkeeper had not seen their key recently: a filter-heavy key
	// is admitted only on its second occurrence within the admission TTL,
	// so one-off analytic queries cannot churn the LRU.
	AdmissionDeferred uint64
	// Entries and Bytes describe the current contents.
	Entries int
	Bytes   int64
}

// Outcome classifies a lookup.
type Outcome uint8

const (
	// Miss: no entry under the key.
	Miss Outcome = iota
	// Stale: an entry exists but at least one recorded generation differs
	// from the caller's. The entry is returned for partial reuse.
	Stale
	// Hit: the entry's generations all match; the value may be served.
	Hit
)

// entry is one cached response.
type entry struct {
	key  Key
	gens []int64
	val  any
	size int64
}

// entryOverhead is the accounting floor per entry (key, gens, list and map
// bookkeeping), so even tiny values cannot make the entry count outrun the
// byte budget's intent.
const entryOverhead = 128

// Cache is a bounded, generation-validated LRU result cache. All methods
// are safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	lru        *list.List // front = most recently used; values are *entry
	index      map[Key]*list.Element
	bytes      int64

	hits, misses, invalidations, evictions, skipped uint64
	negPuts, admDeferred                            uint64

	// Filter-heavy admission doorkeeper: first-sighting timestamps (unix
	// nanos) keyed by fingerprint, consulted by PutWithPolicy. nowFn is
	// injectable so tests can drive TTL expiry deterministically.
	admTTL time.Duration
	seen   map[Key]int64
	nowFn  func() int64

	fmu     sync.Mutex
	flights map[Key]*flight
}

// DefaultAdmissionTTL is the doorkeeper window: a filter-heavy key is
// admitted only when re-seen within this long of its first sighting.
const DefaultAdmissionTTL = time.Minute

// admissionMaxTracked bounds the doorkeeper's memory: past it, expired
// sightings are pruned and, if still full, the tracker resets (losing
// pending first-sightings is safe — it only defers admission again).
const admissionMaxTracked = 4096

// PutPolicy carries one response's admission inputs (see PutWithPolicy).
type PutPolicy struct {
	// FilterHeavy marks a response to a query with a large filter set —
	// subject to the second-occurrence doorkeeper.
	FilterHeavy bool
	// Negative marks an empty response (zero results). Negative responses
	// bypass the doorkeeper: caching them is nearly free and the queries
	// they answer are often repeated verbatim (UI polling an empty state).
	Negative bool
}

// flight is one in-progress singleflight computation.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache bounded by maxEntries and maxBytes (non-positive
// values pick the defaults of 1024 entries and 8 MiB).
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 8 << 20
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		lru:        list.New(),
		index:      make(map[Key]*list.Element),
		admTTL:     DefaultAdmissionTTL,
		seen:       make(map[Key]int64),
		nowFn:      func() int64 { return time.Now().UnixNano() },
		flights:    make(map[Key]*flight),
	}
}

// SetAdmissionTTL overrides the doorkeeper window (non-positive restores
// the default).
func (c *Cache) SetAdmissionTTL(d time.Duration) {
	if d <= 0 {
		d = DefaultAdmissionTTL
	}
	c.mu.Lock()
	c.admTTL = d
	c.mu.Unlock()
}

// SetClock injects the doorkeeper's time source (tests only; nil restores
// the wall clock).
func (c *Cache) SetClock(now func() int64) {
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	c.mu.Lock()
	c.nowFn = now
	c.mu.Unlock()
}

// GensEqual reports whether two generation vectors are element-wise equal
// (also exposed for the caller-side singleflight revalidation protocol).
func GensEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get looks up key and validates the stored entry against gens, recording
// the outcome in the stats. On Hit the cached value is returned; on Stale
// the (outdated) value and its recorded generations are returned so the
// caller may reuse the positions that still match. Callers must not mutate
// the returned value or generation slice.
func (c *Cache) Get(key Key, gens []int64) (any, []int64, Outcome) {
	return c.lookup(key, gens, true)
}

// Lookup is Get without the stats accounting — used to re-validate inside
// a singleflight computation whose caller already recorded the first
// outcome.
func (c *Cache) Lookup(key Key, gens []int64) (any, []int64, Outcome) {
	return c.lookup(key, gens, false)
}

func (c *Cache) lookup(key Key, gens []int64, count bool) (any, []int64, Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		if count {
			c.misses++
		}
		return nil, nil, Miss
	}
	e := el.Value.(*entry)
	c.lru.MoveToFront(el)
	if GensEqual(e.gens, gens) {
		if count {
			c.hits++
		}
		return e.val, e.gens, Hit
	}
	if count {
		c.invalidations++
	}
	return e.val, e.gens, Stale
}

// Put stores val under key, recording the generations it was computed
// against. size is the caller's estimate of the value's memory footprint;
// the cache adds a fixed bookkeeping overhead. An existing entry under the
// same key is replaced. Values too large for the whole byte budget are not
// cached (and evict any previous entry under the key, which they supersede).
func (c *Cache) Put(key Key, gens []int64, val any, size int64) {
	if size < 0 {
		size = 0
	}
	size += entryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxBytes {
		if el, ok := c.index[key]; ok {
			c.remove(el, false)
		}
		return
	}
	gcopy := append([]int64(nil), gens...)
	if el, ok := c.index[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.gens, e.val, e.size = gcopy, val, size
		c.lru.MoveToFront(el)
	} else {
		c.index[key] = c.lru.PushFront(&entry{key: key, gens: gcopy, val: val, size: size})
		c.bytes += size
	}
	for (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.lru.Len() > 1 {
		c.remove(c.lru.Back(), true)
	}
}

// PutWithPolicy is Put gated by the admission policy: a filter-heavy,
// non-negative response is cached only when its key was already seen within
// the admission TTL (the doorkeeper's second-occurrence rule) or is
// refreshing an existing entry. Negative responses always store — including
// filter-heavy ones — and are validated on lookup exactly like any entry,
// so a data-generation bump invalidates a cached empty result the same as
// a populated one.
func (c *Cache) PutWithPolicy(key Key, gens []int64, val any, size int64, pol PutPolicy) {
	if pol.FilterHeavy && !pol.Negative && !c.admit(key) {
		return
	}
	if pol.Negative {
		c.mu.Lock()
		c.negPuts++
		c.mu.Unlock()
	}
	c.Put(key, gens, val, size)
}

// admit runs the doorkeeper: true when key may enter the cache now.
func (c *Cache) admit(key Key) bool {
	now := c.nowFn()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[key]; ok {
		// Refreshing (or re-stamping) an entry that paid admission once.
		return true
	}
	ttl := int64(c.admTTL)
	if t, ok := c.seen[key]; ok && now-t <= ttl {
		delete(c.seen, key)
		return true
	}
	if len(c.seen) >= admissionMaxTracked {
		for k, t := range c.seen {
			if now-t > ttl {
				delete(c.seen, k)
			}
		}
		if len(c.seen) >= admissionMaxTracked {
			c.seen = make(map[Key]int64)
		}
	}
	c.seen[key] = now
	c.admDeferred++
	return false
}

// remove unlinks el; evicted=true counts it against the eviction stat.
func (c *Cache) remove(el *list.Element, evicted bool) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.size
	if evicted {
		c.evictions++
	}
}

// Clear drops every entry (cumulative counters are kept) — the result-cache
// half of DropCaches, so cold-start benchmarks measure true cold paths.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.index = make(map[Key]*list.Element)
	c.bytes = 0
}

// NoteSkipped records n per-shard scans avoided by partial reuse.
func (c *Cache) NoteSkipped(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.skipped += uint64(n)
	c.mu.Unlock()
}

// Stats returns a snapshot of the counters and current contents.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:              c.hits,
		Misses:            c.misses,
		Invalidations:     c.invalidations,
		Evictions:         c.evictions,
		SkippedScans:      c.skipped,
		NegativePuts:      c.negPuts,
		AdmissionDeferred: c.admDeferred,
		Entries:           c.lru.Len(),
		Bytes:             c.bytes,
	}
}

// Do coalesces concurrent computations of the same key: the first caller
// runs compute while later callers block and receive the first caller's
// value and error, with shared=true. compute is responsible for any Put;
// Do itself never touches the entry table. The shared value must be
// treated as immutable by every caller (clone before handing it out).
//
// Correctness note: a shared value was computed at the FLIGHT's snapshot,
// which may predate a joiner's call — a joiner that already observed a
// newer generation (e.g. its own committed write) must not serve it
// blindly. Callers receiving shared=true therefore re-validate the
// value's recorded generations against their own and recompute on
// mismatch; the micronn layer encodes that protocol in cachedQuery. For
// the same reason, snapshot reads pinned to an older horizon never join a
// flight at all and rely on generation validation alone.
func (c *Cache) Do(key Key, compute func() (any, error)) (val any, shared bool, err error) {
	c.fmu.Lock()
	if f, ok := c.flights[key]; ok {
		c.fmu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.fmu.Unlock()
	defer func() {
		c.fmu.Lock()
		delete(c.flights, key)
		c.fmu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	return f.val, false, f.err
}
