package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnNonPositiveK(t *testing.T) {
	for _, k := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestHeapKeepsKSmallest(t *testing.T) {
	h := New(3)
	dists := []float32{5, 1, 9, 3, 7, 2}
	for i, d := range dists {
		h.Push(Result{VectorID: int64(i), Distance: d})
	}
	got := h.Results()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	want := []float32{1, 2, 3}
	for i := range want {
		if got[i].Distance != want[i] {
			t.Errorf("[%d] = %v, want %v", i, got[i].Distance, want[i])
		}
	}
}

func TestHeapUnderfilled(t *testing.T) {
	h := New(10)
	h.Push(Result{VectorID: 1, Distance: 2})
	h.Push(Result{VectorID: 2, Distance: 1})
	if _, ok := h.WorstDistance(); ok {
		t.Error("WorstDistance should report not-full")
	}
	got := h.Results()
	if len(got) != 2 || got[0].VectorID != 2 || got[1].VectorID != 1 {
		t.Errorf("Results = %+v", got)
	}
}

func TestAcceptsMatchesPush(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New(5)
	for i := 0; i < 200; i++ {
		d := rng.Float32()
		accepts := h.Accepts(d)
		pushed := h.Push(Result{VectorID: int64(i), Distance: d})
		if accepts != pushed {
			t.Fatalf("iteration %d: Accepts=%v but Push=%v", i, accepts, pushed)
		}
	}
}

func TestWorstDistanceTracksRoot(t *testing.T) {
	h := New(2)
	h.Push(Result{VectorID: 1, Distance: 10})
	h.Push(Result{VectorID: 2, Distance: 20})
	if d, ok := h.WorstDistance(); !ok || d != 20 {
		t.Fatalf("WorstDistance = %v,%v want 20,true", d, ok)
	}
	h.Push(Result{VectorID: 3, Distance: 5})
	if d, ok := h.WorstDistance(); !ok || d != 10 {
		t.Fatalf("after eviction WorstDistance = %v,%v want 10,true", d, ok)
	}
}

func TestResultsTieBreakByVectorID(t *testing.T) {
	h := New(4)
	h.Push(Result{VectorID: 9, Distance: 1})
	h.Push(Result{VectorID: 3, Distance: 1})
	h.Push(Result{VectorID: 7, Distance: 1})
	got := h.Results()
	if got[0].VectorID != 3 || got[1].VectorID != 7 || got[2].VectorID != 9 {
		t.Errorf("tie-break order = %+v", got)
	}
}

// TestPushOrderIndependentUnderTies pins the property that motivated the
// (Distance, VectorID) total order: with coarsely quantized distances many
// candidates tie exactly at the heap boundary, and the retained set must not
// depend on the order candidates arrive — concurrent scan workers sharing a
// heap push in nondeterministic order.
func TestPushOrderIndependentUnderTies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cands := make([]Result, 60)
	for i := range cands {
		// Only 4 distinct distances across 60 candidates: heavy ties.
		cands[i] = Result{VectorID: int64(i), Distance: float32(rng.Intn(4))}
	}
	push := func(order []Result) []Result {
		h := New(10)
		for _, r := range order {
			h.Push(r)
		}
		return h.Results()
	}
	want := push(cands)
	for trial := 0; trial < 50; trial++ {
		perm := make([]Result, len(cands))
		for i, j := range rng.Perm(len(cands)) {
			perm[i] = cands[j]
		}
		got := push(perm)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: [%d] = %+v, want %+v (retained set depends on push order)",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestHeapMatchesSortReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		k := 1 + rng.Intn(50)
		dists := make([]float32, n)
		h := New(k)
		for i := 0; i < n; i++ {
			dists[i] = rng.Float32()
			h.Push(Result{VectorID: int64(i), Distance: dists[i]})
		}
		sort.Slice(dists, func(i, j int) bool { return dists[i] < dists[j] })
		want := k
		if n < k {
			want = n
		}
		got := h.Results()
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Distance != dists[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	h1, h2, h3 := New(3), New(3), New(3)
	for i, d := range []float32{1, 4, 7} {
		h1.Push(Result{VectorID: int64(i), Distance: d})
	}
	for i, d := range []float32{2, 5, 8} {
		h2.Push(Result{VectorID: int64(10 + i), Distance: d})
	}
	for i, d := range []float32{3, 6, 9} {
		h3.Push(Result{VectorID: int64(20 + i), Distance: d})
	}
	got := Merge(4, h1, h2, h3)
	want := []float32{1, 2, 3, 4}
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i := range want {
		if got[i].Distance != want[i] {
			t.Errorf("[%d] = %v, want %v", i, got[i].Distance, want[i])
		}
	}
}

func TestMergeHandlesNilAndEmpty(t *testing.T) {
	h := New(2)
	h.Push(Result{VectorID: 1, Distance: 1})
	got := Merge(5, nil, New(3), h)
	if len(got) != 1 || got[0].VectorID != 1 {
		t.Errorf("Merge = %+v", got)
	}
	if got := Merge(3); len(got) != 0 {
		t.Errorf("Merge() = %+v, want empty", got)
	}
}

func TestMergeEquivalentToGlobalHeap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(20)
		nWorkers := 1 + rng.Intn(5)
		heaps := make([]*Heap, nWorkers)
		for i := range heaps {
			heaps[i] = New(k)
		}
		global := New(k)
		n := rng.Intn(300)
		for i := 0; i < n; i++ {
			r := Result{VectorID: int64(i), Distance: rng.Float32()}
			heaps[rng.Intn(nWorkers)].Push(r)
			global.Push(r)
		}
		got := Merge(k, heaps...)
		want := global.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPush(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	dists := make([]float32, 4096)
	for i := range dists {
		dists[i] = rng.Float32()
	}
	b.ResetTimer()
	h := New(100)
	for i := 0; i < b.N; i++ {
		h.Push(Result{VectorID: int64(i), Distance: dists[i%len(dists)]})
	}
}
