// Package topk implements the bounded result heaps used during ANN search.
//
// Each scan worker maintains its own Heap of the K best (smallest-distance)
// candidates seen so far; when all workers finish, their heaps are merged
// and the union is sorted by distance (Algorithm 2, lines 2 and 11 of the
// paper). A bounded max-heap makes the per-candidate cost O(log K) with an
// O(1) reject test against the current worst member.
package topk

import "sort"

// Result is a single search hit: the caller-supplied identifier of the
// vector's asset, the internal vector id, and its distance from the query.
type Result struct {
	AssetID  string
	VectorID int64
	Distance float32
}

// Heap is a bounded max-heap of the K nearest results. The root is the
// *worst* retained candidate so it can be evicted in O(log K) when a better
// one arrives. The zero Heap is unusable; create with New.
//
// Ordering is the total order (Distance, VectorID), not distance alone:
// quantized scans produce exact distance ties at the heap boundary, and with
// a distance-only comparison the retained set would depend on push order —
// which is nondeterministic when concurrent workers share a heap.
type Heap struct {
	k     int
	items []Result
}

// New returns a Heap retaining at most k results. k must be positive.
func New(k int) *Heap {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Heap{k: k, items: make([]Result, 0, k)}
}

// K returns the heap's capacity.
func (h *Heap) K() int { return h.k }

// Len returns the number of results currently held.
func (h *Heap) Len() int { return len(h.items) }

// WorstDistance returns the distance of the worst retained result, or
// +Inf-like behaviour via ok=false when the heap is not yet full. Callers
// use it to skip Push for candidates that cannot qualify.
func (h *Heap) WorstDistance() (d float32, ok bool) {
	if len(h.items) < h.k {
		return 0, false
	}
	return h.items[0].Distance, true
}

// Accepts reports whether a candidate at distance d could enter the heap.
// It is a conservative pre-filter: a candidate tying the worst retained
// distance may still be rejected by Push on the VectorID tie-break.
func (h *Heap) Accepts(d float32) bool {
	if len(h.items) < h.k {
		return true
	}
	return d <= h.items[0].Distance
}

// less reports whether a ranks strictly better than b.
func less(a, b Result) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.VectorID < b.VectorID
}

// Push offers a candidate. It returns true if the candidate was retained.
func (h *Heap) Push(r Result) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.siftUp(len(h.items) - 1)
		return true
	}
	if !less(r, h.items[0]) {
		return false
	}
	h.items[0] = r
	h.siftDown(0)
	return true
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h.items[parent], h.items[i]) {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && less(h.items[largest], h.items[l]) {
			largest = l
		}
		if r < n && less(h.items[largest], h.items[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// Results drains the heap and returns the retained candidates sorted by
// ascending distance (ties broken by VectorID for determinism). The heap is
// empty afterwards.
func (h *Heap) Results() []Result {
	out := h.items
	h.items = nil
	sortResults(out)
	return out
}

// Merge combines per-worker heaps into a single sorted top-K list. It is
// the "parallel heap merge" step: the union of all retained candidates is
// reduced to the K best overall.
func Merge(k int, heaps ...*Heap) []Result {
	total := 0
	for _, h := range heaps {
		if h != nil {
			total += h.Len()
		}
	}
	all := make([]Result, 0, total)
	for _, h := range heaps {
		if h != nil {
			all = append(all, h.items...)
			h.items = nil
		}
	}
	sortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Distance != rs[j].Distance {
			return rs[i].Distance < rs[j].Distance
		}
		return rs[i].VectorID < rs[j].VectorID
	})
}
