package fts

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"micronn/internal/reldb"
	"micronn/internal/storage"
)

// driftOracle is a naive reference model of the index's statistics: the
// exact token set of every live document. Every statistic the index
// maintains incrementally is recomputable from it.
type driftOracle map[int64]map[string]bool

func (o driftOracle) add(id int64, text string) {
	toks := Tokenize(text)
	if len(toks) == 0 {
		return
	}
	set := o[id]
	if set == nil {
		set = make(map[string]bool)
		o[id] = set
	}
	for _, t := range toks {
		set[t] = true
	}
}

func (o driftOracle) remove(id int64, text string) {
	set := o[id]
	if set == nil {
		return
	}
	for _, t := range Tokenize(text) {
		delete(set, t)
	}
	if len(set) == 0 {
		delete(o, id)
	}
}

func (o driftOracle) docFreq(tok string) int64 {
	var n int64
	for _, set := range o {
		if set[tok] {
			n++
		}
	}
	return n
}

func (o driftOracle) totalLen() int64 {
	var n int64
	for _, set := range o {
		n += int64(len(set))
	}
	return n
}

// checkAgainstOracle compares every statistic the index maintains against
// the oracle's recomputation: document count, summed unique-token length,
// per-token document frequency and per-document length.
func checkAgainstOracle(t *testing.T, db *reldb.DB, ix *Index, o driftOracle, vocab []string, label string) {
	t.Helper()
	err := db.Store().View(func(rt *storage.ReadTxn) error {
		n, err := ix.TotalDocs(rt)
		if err != nil {
			return err
		}
		if want := int64(len(o)); n != want {
			t.Errorf("%s: TotalDocs = %d, want %d", label, n, want)
		}
		tl, err := ix.TotalTokens(rt)
		if err != nil {
			return err
		}
		if want := o.totalLen(); tl != want {
			t.Errorf("%s: TotalTokens = %d, want %d", label, tl, want)
		}
		for _, tok := range vocab {
			df, err := ix.DocFreq(rt, tok)
			if err != nil {
				return err
			}
			if want := o.docFreq(tok); df != want {
				t.Errorf("%s: DocFreq(%q) = %d, want %d", label, tok, df, want)
			}
		}
		for id, set := range o {
			dl, err := ix.DocLen(rt, id)
			if err != nil {
				return err
			}
			if want := int64(len(set)); dl != want {
				t.Errorf("%s: DocLen(%d) = %d, want %d", label, id, dl, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStatDriftRoundTripZero is the regression test for the historical
// drift bug: Add bumped #docs and every token count unconditionally, so
// re-adding an already-indexed document (the Upsert path does exactly this)
// inflated the statistics and a later Remove left them permanently skewed.
// An Add/re-Add/Remove round-trip must land on exactly zero.
func TestStatDriftRoundTripZero(t *testing.T) {
	cases := []struct {
		name       string
		adds       []string
		removeText string
	}{
		{"identical-readd", []string{"cat yarn", "cat yarn"}, "cat yarn"},
		{"overlapping-readd", []string{"cat yarn", "yarn dog"}, "cat yarn dog"},
		{"triple-readd", []string{"cat", "cat", "cat"}, "cat"},
		{"subset-readd", []string{"cat yarn dog", "yarn"}, "dog cat yarn"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db, ix := testIndex(t)
			err := db.Store().Update(func(wt *storage.WriteTxn) error {
				for _, text := range c.adds {
					if err := ix.Add(wt, 7, text); err != nil {
						return err
					}
				}
				return ix.Remove(wt, 7, c.removeText)
			})
			if err != nil {
				t.Fatal(err)
			}
			vocab := UniqueTokens(strings.Join(c.adds, " "))
			checkAgainstOracle(t, db, ix, driftOracle{}, vocab, c.name)
			// Removing an already-removed (or never-added) doc must be a
			// no-op, not an underflow.
			err = db.Store().Update(func(wt *storage.WriteTxn) error {
				if err := ix.Remove(wt, 7, c.removeText); err != nil {
					return err
				}
				return ix.Remove(wt, 99, "cat")
			})
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstOracle(t, db, ix, driftOracle{}, vocab, c.name+"/re-remove")
		})
	}
}

// TestStatDriftRandomized drives a long randomized Add/re-Add/partial-Remove/
// full-Remove sequence against the naive oracle and checks every statistic,
// both live and after closing and reopening the store (the statistics are
// persistent state, so drift would survive restarts).
func TestStatDriftRandomized(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "drift.db")
	s, err := storage.Open(path, storage.Options{Sync: storage.SyncOff, CheckpointFrames: -1})
	if err != nil {
		t.Fatal(err)
	}
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	var ix *Index
	err = s.Update(func(wt *storage.WriteTxn) error {
		ix, err = Create(db, wt, "tags")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	vocab := make([]string, 20)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%02d", i)
	}
	randText := func() string {
		n := 1 + rng.Intn(5)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = vocab[rng.Intn(len(vocab))]
		}
		return strings.Join(toks, " ")
	}
	fullText := func(o driftOracle, id int64) string {
		set := o[id]
		toks := make([]string, 0, len(set))
		for tok := range set {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
		return strings.Join(toks, " ")
	}

	oracle := driftOracle{}
	const docs = 30
	for step := 0; step < 600; step++ {
		id := int64(rng.Intn(docs))
		err := s.Update(func(wt *storage.WriteTxn) error {
			switch op := rng.Intn(4); op {
			case 0, 1: // add (often a re-add over existing tokens)
				text := randText()
				oracle.add(id, text)
				return ix.Add(wt, id, text)
			case 2: // full remove, mirroring the Upsert/Delete cleanup path
				text := fullText(oracle, id)
				oracle.remove(id, text)
				return ix.Remove(wt, id, text)
			default: // partial remove of arbitrary tokens
				text := randText()
				oracle.remove(id, text)
				return ix.Remove(wt, id, text)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if step%97 == 0 {
			checkAgainstOracle(t, db, ix, oracle, vocab, fmt.Sprintf("step %d", step))
		}
	}
	checkAgainstOracle(t, db, ix, oracle, vocab, "final")

	// Reopen from disk: the statistics must round-trip through persistence.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := storage.Open(path, storage.Options{Sync: storage.SyncOff, CheckpointFrames: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	db2, err := reldb.Open(s2)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(db2, "tags")
	if err != nil {
		t.Fatal(err)
	}
	if !ix2.HasDocLens() {
		t.Fatal("reopened index lost its doc-length table")
	}
	checkAgainstOracle(t, db2, ix2, oracle, vocab, "reopened")

	// Drain every remaining document: the index must land on exactly zero.
	ids := make([]int64, 0, len(oracle))
	for id := range oracle {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	err = s2.Update(func(wt *storage.WriteTxn) error {
		for _, id := range ids {
			text := fullText(oracle, id)
			if err := ix2.Remove(wt, id, text); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, db2, ix2, driftOracle{}, vocab, "drained")
}
