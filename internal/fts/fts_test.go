package fts

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"micronn/internal/reldb"
	"micronn/internal/storage"
)

func testIndex(t *testing.T) (*reldb.DB, *Index) {
	t.Helper()
	s, err := storage.Open(filepath.Join(t.TempDir(), "t.db"), storage.Options{
		Sync: storage.SyncOff, CheckpointFrames: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	var ix *Index
	err = s.Update(func(wt *storage.WriteTxn) error {
		ix, err = Create(db, wt, "tags")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, ix
}

func TestTokenize(t *testing.T) {
	cases := map[string][]string{
		"Hello World":        {"hello", "world"},
		"black-cat_playing!": {"black", "cat", "playing"},
		"  spaces  ":         {"spaces"},
		"":                   nil,
		"123 abc123":         {"123", "abc123"},
		"ÜNïcode Wörds":      {"ünïcode", "wörds"},
	}
	for in, want := range cases {
		if got := Tokenize(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestUniqueTokens(t *testing.T) {
	got := UniqueTokens("cat dog cat bird dog")
	want := []string{"bird", "cat", "dog"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UniqueTokens = %v, want %v", got, want)
	}
	if UniqueTokens("") != nil {
		t.Error("UniqueTokens(empty) should be nil")
	}
}

func TestMatch(t *testing.T) {
	cases := []struct {
		doc, query string
		want       bool
	}{
		{"black cat playing yarn", "cat", true},
		{"black cat playing yarn", "cat yarn", true},
		{"black cat playing yarn", "cat dog", false},
		{"black cat", "", true},
		{"", "cat", false},
		{"Cat", "CAT", true}, // case-insensitive
	}
	for _, c := range cases {
		if got := Match(c.doc, c.query); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.doc, c.query, got, c.want)
		}
	}
}

func TestAddAndMatchScan(t *testing.T) {
	db, ix := testIndex(t)
	docs := map[int64]string{
		1: "cat yarn indoor",
		2: "cat outdoor",
		3: "dog yarn",
		4: "cat yarn outdoor",
	}
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		for id, text := range docs {
			if err := ix.Add(wt, id, text); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	queryCases := []struct {
		query string
		want  []int64
	}{
		{"cat", []int64{1, 2, 4}},
		{"cat yarn", []int64{1, 4}},
		{"yarn", []int64{1, 3, 4}},
		{"dog cat", nil},
		{"absenttoken", nil},
		{"cat yarn outdoor", []int64{4}},
	}
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		for _, c := range queryCases {
			var got []int64
			err := ix.MatchScan(rt, c.query, func(id int64) error {
				got = append(got, id)
				return nil
			})
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("MatchScan(%q) = %v, want %v", c.query, got, c.want)
			}
		}
		total, err := ix.TotalDocs(rt)
		if err != nil {
			return err
		}
		if total != 4 {
			t.Errorf("TotalDocs = %d, want 4", total)
		}
		df, err := ix.DocFreq(rt, "cat")
		if err != nil {
			return err
		}
		if df != 3 {
			t.Errorf("DocFreq(cat) = %d, want 3", df)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	db, ix := testIndex(t)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		if err := ix.Add(wt, 1, "cat yarn"); err != nil {
			return err
		}
		if err := ix.Add(wt, 2, "cat"); err != nil {
			return err
		}
		return ix.Remove(wt, 1, "cat yarn")
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		df, err := ix.DocFreq(rt, "cat")
		if err != nil {
			return err
		}
		if df != 1 {
			t.Errorf("DocFreq(cat) = %d, want 1", df)
		}
		df, err = ix.DocFreq(rt, "yarn")
		if err != nil {
			return err
		}
		if df != 0 {
			t.Errorf("DocFreq(yarn) = %d, want 0", df)
		}
		n, err := ix.MatchCount(rt, "cat")
		if err != nil {
			return err
		}
		if n != 1 {
			t.Errorf("MatchCount(cat) = %d, want 1", n)
		}
		total, err := ix.TotalDocs(rt)
		if err != nil {
			return err
		}
		if total != 1 {
			t.Errorf("TotalDocs = %d, want 1", total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatchScanUsesRarestToken(t *testing.T) {
	db, ix := testIndex(t)
	// "common" appears in 500 docs, "rare" in 3; the scan should still
	// return exactly the intersection.
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		for i := int64(0); i < 500; i++ {
			text := "common"
			if i%200 == 0 {
				text = "common rare"
			}
			if err := ix.Add(wt, i, text); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		var got []int64
		err := ix.MatchScan(rt, "common rare", func(id int64) error {
			got = append(got, id)
			return nil
		})
		if err != nil {
			return err
		}
		want := []int64{0, 200, 400}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("intersection = %v, want %v", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenExisting(t *testing.T) {
	db, ix := testIndex(t)
	err := db.Store().Update(func(wt *storage.WriteTxn) error {
		return ix.Add(wt, 42, "persisted token")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !Exists(db, "tags") {
		t.Error("Exists(tags) = false")
	}
	if Exists(db, "other") {
		t.Error("Exists(other) = true")
	}
	ix2, err := Open(db, "tags")
	if err != nil {
		t.Fatal(err)
	}
	err = db.Store().View(func(rt *storage.ReadTxn) error {
		n, err := ix2.MatchCount(rt, "persisted")
		if err != nil {
			return err
		}
		if n != 1 {
			t.Errorf("MatchCount via reopened handle = %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatchScan(b *testing.B) {
	s, err := storage.Open(filepath.Join(b.TempDir(), "t.db"), storage.Options{
		Sync: storage.SyncOff, CheckpointFrames: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	db, err := reldb.Open(s)
	if err != nil {
		b.Fatal(err)
	}
	var ix *Index
	err = s.Update(func(wt *storage.WriteTxn) error {
		ix, err = Create(db, wt, "bench")
		if err != nil {
			return err
		}
		for i := int64(0); i < 10000; i++ {
			text := fmt.Sprintf("tag%d tag%d common", i%97, i%31)
			if err := ix.Add(wt, i, text); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	rt, err := s.BeginRead()
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.MatchCount(rt, "tag13 common"); err != nil {
			b.Fatal(err)
		}
	}
}
