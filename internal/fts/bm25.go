package fts

import (
	"math"
	"sort"

	"micronn/internal/btree"
	"micronn/internal/reldb"
)

// BM25 parameter defaults (the standard Robertson/Walker settings).
const (
	DefaultBM25K1 = 1.2
	DefaultBM25B  = 0.75
)

// BM25Stats carries the corpus-level statistics BM25 scoring needs. They
// are separated from scoring so a sharded router can sum the per-shard
// stats into global figures and hand the same global stats to every shard
// — making sharded and single-store rankings identical.
type BM25Stats struct {
	// DocFreq maps each query token to its document frequency.
	DocFreq map[string]int64
	// TotalDocs is the number of indexed documents (N).
	TotalDocs int64
	// TotalLen is the summed unique-token length of all documents.
	TotalLen int64
}

// Merge adds other's counts into s (token-wise df sum plus N and length
// totals), building the global view across shards.
func (s *BM25Stats) Merge(other BM25Stats) {
	if s.DocFreq == nil {
		s.DocFreq = make(map[string]int64, len(other.DocFreq))
	}
	for tok, df := range other.DocFreq {
		s.DocFreq[tok] += df
	}
	s.TotalDocs += other.TotalDocs
	s.TotalLen += other.TotalLen
}

// CollectBM25Stats gathers this index's df/N/length statistics for the
// given (already tokenized, unique) query tokens.
func (ix *Index) CollectBM25Stats(txn btree.ReadTxn, tokens []string) (BM25Stats, error) {
	st := BM25Stats{DocFreq: make(map[string]int64, len(tokens))}
	for _, tok := range tokens {
		df, err := ix.DocFreq(txn, tok)
		if err != nil {
			return BM25Stats{}, err
		}
		st.DocFreq[tok] = df
	}
	var err error
	if st.TotalDocs, err = ix.TotalDocs(txn); err != nil {
		return BM25Stats{}, err
	}
	if st.TotalLen, err = ix.TotalTokens(txn); err != nil {
		return BM25Stats{}, err
	}
	return st, nil
}

// ScoredDoc is one BM25-ranked document.
type ScoredDoc struct {
	Doc   int64
	Score float64
}

// BM25Score scores every document containing at least one query token
// (disjunctive semantics — the lexical leg of hybrid search) and returns
// all of them by descending score, ties broken by ascending doc id. The
// caller cuts to its top-k AFTER re-keying ties on a cross-store total
// order (asset ids) — doc ids are store-local, so cutting here could drop
// different tied docs on different topologies. Postings carry only unique
// tokens, so term frequency is binary and the per-term contribution
// reduces to IDF(t)·(k1+1)/(1 + k1·(1−b+b·len/avglen)).
//
// gs supplies the df/N/avglen figures, which may span more data than this
// index (global stats on a sharded store). Tokens must be the sorted unique
// token set of the query (see token.Unique); iterating them in that fixed
// order keeps float accumulation — and therefore ranking — deterministic.
// On legacy indexes without per-doc lengths the length norm degrades to 1.
func (ix *Index) BM25Score(txn btree.ReadTxn, tokens []string, gs BM25Stats, k1, b float64) ([]ScoredDoc, error) {
	if len(tokens) == 0 || gs.TotalDocs <= 0 {
		return nil, nil
	}
	if k1 <= 0 {
		k1 = DefaultBM25K1
	}
	if b < 0 || b > 1 {
		b = DefaultBM25B
	}
	avgLen := float64(gs.TotalLen) / float64(gs.TotalDocs)

	scores := make(map[int64]float64)
	for _, tok := range tokens {
		df := gs.DocFreq[tok]
		if df <= 0 {
			continue // token absent from the corpus: contributes nothing
		}
		n := float64(gs.TotalDocs)
		idf := math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
		err := ix.postings.ScanKeys(txn, []reldb.Value{reldb.S(tok)}, func(key reldb.Row) error {
			id := key[1].Int
			norm := 1.0
			if avgLen > 0 && ix.doclen != nil {
				dl, err := ix.DocLen(txn, id)
				if err != nil {
					return err
				}
				if dl > 0 {
					norm = 1 - b + b*float64(dl)/avgLen
				}
			}
			scores[id] += idf * (k1 + 1) / (1 + k1*norm)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(scores) == 0 {
		return nil, nil
	}
	out := make([]ScoredDoc, 0, len(scores))
	for id, s := range scores {
		out = append(out, ScoredDoc{Doc: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out, nil
}
