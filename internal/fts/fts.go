// Package fts implements the full-text MATCH support MicroNN gets from
// SQLite's FTS5 in the paper (§3.5): an inverted token index over a text
// attribute, document-frequency statistics for selectivity estimation, and
// conjunctive MATCH evaluation. The Big-ANN filtered-search benchmark
// (Figure 7) stores each vector's tag bag as a whitespace-separated string
// indexed through this package.
package fts

import (
	"errors"
	"sort"
	"strings"
	"unicode"

	"micronn/internal/btree"
	"micronn/internal/reldb"
	"micronn/internal/storage"
)

// docCountKey is the reserved stats key holding the total document count.
// Tokens are lowercase alphanumeric runs, so "#docs" can never collide.
const docCountKey = "#docs"

// Tokenize lowercases s and splits it into maximal letter/digit runs.
func Tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// UniqueTokens returns the deduplicated, sorted token set of s.
func UniqueTokens(s string) []string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return nil
	}
	sort.Strings(toks)
	out := toks[:1]
	for _, t := range toks[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Match reports whether doc contains every token of query (the conjunctive
// MATCH semantics used by hybrid post-filtering).
func Match(doc, query string) bool {
	queryToks := UniqueTokens(query)
	if len(queryToks) == 0 {
		return true // empty MATCH constrains nothing
	}
	docToks := Tokenize(doc)
	set := make(map[string]struct{}, len(docToks))
	for _, t := range docToks {
		set[t] = struct{}{}
	}
	for _, q := range queryToks {
		if _, ok := set[q]; !ok {
			return false
		}
	}
	return true
}

// Index is an inverted token index over int64 document ids.
type Index struct {
	postings *reldb.Table // (token TEXT, doc INTEGER) -> ()
	stats    *reldb.Table // (token TEXT) -> (count INTEGER)
}

func tableNames(name string) (postings, stats string) {
	return "__fts_" + name + "_postings", "__fts_" + name + "_stats"
}

// Create creates the index's tables inside wt.
func Create(db *reldb.DB, wt *storage.WriteTxn, name string) (*Index, error) {
	pName, sName := tableNames(name)
	err := db.CreateTable(wt, &reldb.Schema{
		Name: pName,
		Key: []reldb.Column{
			{Name: "token", Type: reldb.TypeText},
			{Name: "doc", Type: reldb.TypeInt64},
		},
	})
	if err != nil {
		return nil, err
	}
	err = db.CreateTable(wt, &reldb.Schema{
		Name: sName,
		Key:  []reldb.Column{{Name: "token", Type: reldb.TypeText}},
		Cols: []reldb.Column{{Name: "count", Type: reldb.TypeInt64}},
	})
	if err != nil {
		return nil, err
	}
	return Open(db, name)
}

// Open returns a handle to an existing index.
func Open(db *reldb.DB, name string) (*Index, error) {
	pName, sName := tableNames(name)
	postings, err := db.Table(pName)
	if err != nil {
		return nil, err
	}
	stats, err := db.Table(sName)
	if err != nil {
		return nil, err
	}
	return &Index{postings: postings, stats: stats}, nil
}

// Exists reports whether the named index exists in db.
func Exists(db *reldb.DB, name string) bool {
	pName, _ := tableNames(name)
	return db.HasTable(pName)
}

func (ix *Index) bumpStat(wt *storage.WriteTxn, token string, delta int64) error {
	row, err := ix.stats.Get(wt, reldb.S(token))
	var cur int64
	switch {
	case err == nil:
		cur = row[1].Int
	case errors.Is(err, reldb.ErrNotFound):
	default:
		return err
	}
	cur += delta
	if cur <= 0 {
		err := ix.stats.Delete(wt, reldb.S(token))
		if errors.Is(err, reldb.ErrNotFound) {
			return nil
		}
		return err
	}
	return ix.stats.Put(wt, reldb.Row{reldb.S(token), reldb.I(cur)})
}

// Add indexes doc's text under id.
func (ix *Index) Add(wt *storage.WriteTxn, id int64, text string) error {
	for _, tok := range UniqueTokens(text) {
		if err := ix.postings.Put(wt, reldb.Row{reldb.S(tok), reldb.I(id)}); err != nil {
			return err
		}
		if err := ix.bumpStat(wt, tok, 1); err != nil {
			return err
		}
	}
	return ix.bumpStat(wt, docCountKey, 1)
}

// Remove un-indexes the document (text must be the text supplied to Add).
func (ix *Index) Remove(wt *storage.WriteTxn, id int64, text string) error {
	for _, tok := range UniqueTokens(text) {
		err := ix.postings.Delete(wt, reldb.S(tok), reldb.I(id))
		if errors.Is(err, reldb.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if err := ix.bumpStat(wt, tok, -1); err != nil {
			return err
		}
	}
	return ix.bumpStat(wt, docCountKey, -1)
}

// DocFreq returns the number of documents containing token.
func (ix *Index) DocFreq(txn btree.ReadTxn, token string) (int64, error) {
	row, err := ix.stats.Get(txn, reldb.S(strings.ToLower(token)))
	if errors.Is(err, reldb.ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return row[1].Int, nil
}

// TotalDocs returns the number of indexed documents.
func (ix *Index) TotalDocs(txn btree.ReadTxn) (int64, error) {
	return ix.DocFreq(txn, docCountKey)
}

// MatchScan streams, in ascending id order, the documents containing every
// token of query. It drives the scan from the rarest token's posting list
// and probes the others, so cost is proportional to the best selectivity.
// An empty query matches nothing (callers treat it as no constraint).
func (ix *Index) MatchScan(txn btree.ReadTxn, query string, fn func(id int64) error) error {
	tokens := UniqueTokens(query)
	if len(tokens) == 0 {
		return nil
	}
	// Order tokens by ascending document frequency.
	type tokDF struct {
		tok string
		df  int64
	}
	tds := make([]tokDF, len(tokens))
	for i, tok := range tokens {
		df, err := ix.DocFreq(txn, tok)
		if err != nil {
			return err
		}
		if df == 0 {
			return nil // conjunction with an absent token is empty
		}
		tds[i] = tokDF{tok, df}
	}
	sort.Slice(tds, func(i, j int) bool { return tds[i].df < tds[j].df })

	rare := tds[0].tok
	probes := tds[1:]
	return ix.postings.ScanKeys(txn, []reldb.Value{reldb.S(rare)}, func(key reldb.Row) error {
		id := key[1].Int
		for _, p := range probes {
			_, err := ix.postings.Get(txn, reldb.S(p.tok), reldb.I(id))
			if errors.Is(err, reldb.ErrNotFound) {
				return nil // this doc lacks the token; keep scanning
			}
			if err != nil {
				return err
			}
		}
		return fn(id)
	})
}

// ContainsAll reports whether document id carries every token of query,
// answered by direct posting probes — cheaper than refetching and
// re-tokenizing the document text during post-filter partition scans.
func (ix *Index) ContainsAll(txn btree.ReadTxn, id int64, query string) (bool, error) {
	tokens := UniqueTokens(query)
	if len(tokens) == 0 {
		return true, nil
	}
	for _, tok := range tokens {
		_, err := ix.postings.Get(txn, reldb.S(tok), reldb.I(id))
		if errors.Is(err, reldb.ErrNotFound) {
			return false, nil
		}
		if err != nil {
			return false, err
		}
	}
	return true, nil
}

// MatchCount counts the documents matching query.
func (ix *Index) MatchCount(txn btree.ReadTxn, query string) (int64, error) {
	var n int64
	err := ix.MatchScan(txn, query, func(int64) error {
		n++
		return nil
	})
	return n, err
}
